//! Quickstart: build a serial dynamical core, kick it with a pressure
//! anomaly, integrate a few steps and watch the gravity waves radiate.
//!
//! ```text
//! cargo run -p agcm-core --release --example quickstart
//! ```

use agcm_core::diagnostics::local_budget;
use agcm_core::init;
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::ModelConfig;

fn main() {
    // a coarse mesh so the example runs in moments; swap in
    // `ModelConfig::paper_50km()` for the paper's 720x360x30 resolution
    let mut cfg = ModelConfig::test_medium();
    cfg.dt1 = 30.0;
    cfg.dt2 = 300.0;

    let mut model = SerialModel::new(&cfg, Iteration::Exact).expect("valid configuration");
    println!(
        "AGCM dynamical core: {} x {} x {} mesh, M = {} nonlinear iterations",
        cfg.nx, cfg.ny, cfg.nz, cfg.m_iters
    );

    // a 4 hPa surface-pressure anomaly at mid-latitudes
    let ic = init::perturbed_rest(model.geom(), 400.0, 0.0, 7);
    model.set_state(&ic);

    let b0 = local_budget(model.geom(), &model.state);
    println!(
        "initial:  energy {:12.4e}   mass {:12.4e}",
        b0.energy(),
        b0.mass
    );

    for step in 1..=10 {
        model.step();
        let b = local_budget(model.geom(), &model.state);
        println!(
            "step {step:3}: energy {:12.4e}   mass {:12.4e}   max|U| {:8.4} m/s   max|p'| {:8.2} Pa",
            b.energy(),
            b.mass,
            model.state.u.max_abs(),
            model.state.psa.max_abs(),
        );
    }

    let bn = local_budget(model.geom(), &model.state);
    println!(
        "\nThe anomaly radiates gravity waves (winds appear) as surface and \
         potential energy convert\nto kinetic energy: E = {:.3e} -> {:.3e} \
         (drift {:+.1}% over 10 steps, bounded by the polar\nfilter + \
         smoothing).  Mass is conserved: relative drift {:.2e}.",
        b0.energy(),
        bn.energy(),
        100.0 * (bn.energy() / b0.energy() - 1.0),
        (bn.mass - b0.mass).abs() / b0.mass.abs().max(1.0)
    );
}
