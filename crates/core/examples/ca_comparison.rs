//! Side-by-side run of the original Algorithm 1 and the
//! communication-avoiding Algorithm 2 on real (thread-backed) ranks.
//!
//! Prints, per algorithm: the halo-exchange frequency, point-to-point
//! message/byte counts, collective counts — and the maximum difference of
//! the final states, demonstrating that the CA algorithm reproduces the
//! approximate-iteration numerics while cutting the exchange frequency from
//! `3M + 4` to 2 (§4.3.1, §4.2.2 of Xiao et al., ICPP 2018).
//!
//! ```text
//! cargo run -p agcm-core --release --example ca_comparison
//! ```

use agcm_comm::Universe;
use agcm_core::init;
use agcm_core::par::{gather_ca_state, Alg1Model, CaModel, GlobalState};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

const STEPS: usize = 4;
const RANKS: usize = 4;

fn config() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 48; // 4 y-blocks of 12 rows hold the 3M+2 = 11-deep halo (M = 3)
    cfg
}

fn main() {
    let cfg = config();
    println!(
        "mesh {}x{}x{}, M = {}, {} steps on {} ranks (Y-Z decomposition 4x1)\n",
        cfg.nx, cfg.ny, cfg.nz, cfg.m_iters, STEPS, RANKS
    );

    // ---- Algorithm 1 (original) ----
    let cfg1 = cfg.clone();
    let mut r1 = Universe::run(RANKS, move |comm| {
        comm.stats().set_event_logging(true); // collective_events is opt-in
        let mut m = Alg1Model::new(&cfg1, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 250.0, 1.0, 11);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        let snap = comm.stats().snapshot();
        let colls = comm.stats().collective_events().len();
        (
            m.gather_state(comm).unwrap(),
            m.exchange_count(),
            snap,
            colls,
        )
    });
    let (g1, ex1, s1, c1) = r1.remove(0);
    let g1: GlobalState = g1.unwrap();

    // ---- Algorithm 2 (communication-avoiding) ----
    let cfg2 = cfg.clone();
    let mut r2 = Universe::run(RANKS, move |comm| {
        comm.stats().set_event_logging(true); // collective_events is opt-in
        let mut m = CaModel::new(&cfg2, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 250.0, 1.0, 11);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        let snap = comm.stats().snapshot();
        let colls = comm.stats().collective_events().len();
        (
            gather_ca_state(&m, comm).unwrap(),
            m.exchange_count(),
            snap,
            colls,
        )
    });
    let (g2, ex2, s2, c2) = r2.remove(0);
    let g2: GlobalState = g2.unwrap();

    let m = cfg.m_iters as u64;
    println!("                       original (Alg 1)    comm-avoiding (Alg 2)");
    println!(
        "exchanges / step       {:>10.1}           {:>10.1}   (paper: {} -> 2)",
        ex1 as f64 / STEPS as f64,
        (ex2 as f64 - 1.0) / STEPS as f64, // minus the one final smoothing
        3 * m + 4
    );
    println!(
        "p2p messages (rank 0)  {:>10}           {:>10}",
        s1.p2p_sends, s2.p2p_sends
    );
    println!(
        "p2p volume (MB)        {:>10.2}           {:>10.2}   (CA ships deeper halos)",
        s1.p2p_send_bytes() as f64 / 1e6,
        s2.p2p_send_bytes() as f64 / 1e6
    );
    println!(
        "collective events      {:>10}           {:>10}   (p_z = 1 here: the z-sum is local;",
        c1, c2
    );
    println!(
        "                                                     with p_z > 1 it is 3M vs 2M per step)"
    );

    let diff = g1.max_abs_diff(&g2);
    let scale = g1.phi.iter().fold(0.0f64, |a, &v| a.max(v.abs())).max(1.0);
    println!(
        "\nfinal-state difference: max |Alg1 - Alg2| = {diff:.3e} (solution scale {scale:.3e})"
    );
    println!(
        "the two algorithms differ exactly by the approximate nonlinear \
         iteration of Eq. 13 —\nsmall relative to the solution, by design \
         (the highest-order correction term is approximated)."
    );
}
