//! The Held–Suarez idealized dry test (§5.1 of the paper) — the benchmark
//! the paper evaluates the dynamical core with.
//!
//! Starting from rest, the Newtonian heating builds an equator-to-pole
//! temperature gradient; the Coriolis force turns the resulting meridional
//! circulation into westerly mid-latitude jets over O(100) model days.
//! The example integrates a configurable number of steps (default 60 — the
//! early thermally-driven spin-up) and prints the zonal-mean zonal wind by
//! latitude band, the classic H-S diagnostic.  Pass a few thousand steps to
//! watch the hemispheric jets emerge.
//!
//! ```text
//! cargo run -p agcm-core --release --example held_suarez -- [steps]
//! ```

use agcm_core::diagnostics::local_budget;
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::ModelConfig;

fn main() {
    let steps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let mut cfg = ModelConfig::test_medium();
    cfg.nx = 32;
    cfg.ny = 24;
    cfg.nz = 10;
    cfg.dt1 = 60.0;
    cfg.dt2 = 600.0;
    cfg.held_suarez = true;

    let mut model = SerialModel::new(&cfg, Iteration::Exact).expect("valid configuration");
    println!(
        "Held-Suarez dry test on {}x{}x{}; {} steps of {}s ({:.1} model days)",
        cfg.nx,
        cfg.ny,
        cfg.nz,
        steps,
        cfg.dt2,
        steps as f64 * cfg.dt2 / 86400.0
    );

    for s in 1..=steps {
        model.step();
        if s % (steps / 6).max(1) == 0 {
            let b = local_budget(model.geom(), &model.state);
            println!(
                "  step {s:4}: kinetic {:10.3e}  potential {:10.3e}  max|U| {:7.3}",
                b.kinetic,
                b.potential,
                model.state.u.max_abs()
            );
        }
    }
    assert!(!model.state.has_nan(), "solution must stay finite");

    // zonal-mean zonal wind at the mid-troposphere, physical units:
    // u = U/P with P ≈ 1 at rest
    println!("\nzonal-mean u(θ) at σ ≈ 0.5 (positive = westerly):");
    let geom = model.geom();
    let kmid = (geom.nz / 2) as isize;
    for j in 0..geom.ny as isize {
        let mean: f64 = (0..geom.nx as isize)
            .map(|i| model.state.u.get(i, j, kmid))
            .sum::<f64>()
            / geom.nx as f64;
        let lat = geom.grid.latitude(j as usize).to_degrees();
        let bar_len = (mean.abs() * 4.0).min(40.0) as usize;
        let bar: String =
            std::iter::repeat_n(if mean >= 0.0 { '>' } else { '<' }, bar_len).collect();
        println!("  {lat:6.1}°  {mean:8.3} m/s  {bar}");
    }

    let b = local_budget(model.geom(), &model.state);
    println!(
        "\nfinal budget: E = {:.4e} (kinetic {:.1}%)",
        b.energy(),
        100.0 * b.kinetic / b.energy().max(1e-300)
    );
}
