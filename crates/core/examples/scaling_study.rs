//! Strong-scaling study on the paper's 50 km mesh (720 × 360 × 30) using
//! the calibrated Tianhe-2 cost model: the three algorithm/decomposition
//! pairings of Figures 6–8 at 128–1024 ranks.
//!
//! ```text
//! cargo run -p agcm-core --release --example scaling_study
//! ```

use agcm_comm::CostModel;
use agcm_core::analysis::{ca_group_size, predict_step_mode, AlgKind, CaMode};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

fn main() {
    let cfg = ModelConfig::paper_50km();
    let model = CostModel::tianhe2();
    println!(
        "strong scaling of one dynamical-core step, {}x{}x{} mesh, machine '{}'",
        cfg.nx, cfg.ny, cfg.nz, model.name
    );
    println!(
        "{:>6} {:>16} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "p", "algorithm", "stencil ms", "collect ms", "compute ms", "total ms", "vs XY"
    );
    for p in [128usize, 256, 512, 1024] {
        let pz = 8.min(p / 16).max(2);
        let py = p / pz;
        let pg_yz = ProcessGrid::yz(py, pz).unwrap();
        let px = 16.min(p / 8).max(2);
        let pg_xy = ProcessGrid::xy(px, p / px).unwrap();
        let xy = predict_step_mode(&cfg, AlgKind::OriginalXY, pg_xy, &model, CaMode::Grouped);
        let runs = [
            ("original X-Y", AlgKind::OriginalXY, pg_xy),
            ("original Y-Z", AlgKind::OriginalYZ, pg_yz),
            ("comm-avoiding", AlgKind::CommAvoiding, pg_yz),
        ];
        for (name, alg, pg) in runs {
            let c = predict_step_mode(&cfg, alg, pg, &model, CaMode::Grouped);
            println!(
                "{p:>6} {name:>16} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>7.0}%",
                c.stencil_comm_s * 1e3,
                c.collective_comm_s * 1e3,
                c.compute_s * 1e3,
                c.total_s() * 1e3,
                100.0 * (1.0 - c.total_s() / xy.total_s()),
            );
        }
        let (g, fuse, ga) = ca_group_size(&cfg, &pg_yz);
        println!(
            "        CA sweep groups at p = {p}: adaptation g = {g} \
             ({} exchanges), advection g = {ga}, smoothing {}",
            (3 * cfg.m_iters).div_ceil(g),
            if fuse { "fused" } else { "separate" }
        );
    }
    println!(
        "\nThe paper reports up to a 54% total-runtime reduction of the \
         communication-avoiding algorithm\nagainst the X-Y original at \
         p = 512, and a 1.4x average speedup against the Y-Z original —\n\
         compare the 'vs XY' column and the Y-Z/CA ratio above."
    );
}
