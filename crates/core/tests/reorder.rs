//! Delivery-order robustness (ISSUE 3 satellite): the deep-halo exchanges
//! of Algorithm 1 and Algorithm 2 must produce bit-identical owned values
//! under *adversarial* message delivery — here, deterministic `delay`
//! faults that hold messages back and release them out of order.
//!
//! Tag matching (not arrival order) defines which payload lands in which
//! halo, so any reordering the fault layer produces must be invisible in
//! the state.  The seeds below are swept in CI's `chaos` job; set
//! `AGCM_FAULT_SEED` to probe a specific schedule.

use agcm_comm::{FaultPlan, Universe};
use agcm_core::init;
use agcm_core::par::{gather_ca_state, Alg1Model, CaModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use std::time::Duration;

const STEPS: usize = 2;
const DEFAULT_SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0xC0FFEE];

/// Seeds to sweep: the fixed trio, or the override from `AGCM_FAULT_SEED`.
fn seeds() -> Vec<u64> {
    match std::env::var("AGCM_FAULT_SEED") {
        Ok(s) => vec![s.trim().parse().expect("AGCM_FAULT_SEED must be u64")],
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// Hold ~1/3 of user messages back by two fault-clock events: enough to
/// interleave the split sends of a deep exchange without starving anyone.
const DELAY_SPEC: &str = "delay:user=1,prob=0.35,k=2";

fn ca_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 24; // 24/2 = 12 rows/rank ≥ the 3M+2 = 11-row deep halo
    cfg
}

fn run_alg2(cfg: &ModelConfig, fault: Option<(u64, &str)>) -> agcm_core::par::GlobalState {
    let cfg = cfg.clone();
    let fault = fault.map(|(s, spec)| (s, spec.to_string()));
    let mut results = Universe::run(2, move |comm| {
        if let Some((seed, spec)) = &fault {
            comm.install_faults(FaultPlan::parse(*seed, spec).unwrap());
        }
        comm.set_timeout(Duration::from_secs(20));
        let pgrid = ProcessGrid::yz(2, 1).unwrap();
        let mut m = CaModel::new(&cfg, pgrid, comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        gather_ca_state(&m, comm).unwrap()
    });
    results.remove(0).expect("rank 0 gathers")
}

fn run_alg1(cfg: &ModelConfig, fault: Option<(u64, &str)>) -> agcm_core::par::GlobalState {
    let cfg = cfg.clone();
    let fault = fault.map(|(s, spec)| (s, spec.to_string()));
    let mut results = Universe::run(2, move |comm| {
        if let Some((seed, spec)) = &fault {
            comm.install_faults(FaultPlan::parse(*seed, spec).unwrap());
        }
        comm.set_timeout(Duration::from_secs(20));
        let pgrid = ProcessGrid::yz(2, 1).unwrap();
        let mut m = Alg1Model::new(&cfg, pgrid, comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        m.gather_state(comm).unwrap()
    });
    results.remove(0).expect("rank 0 gathers")
}

#[test]
fn alg2_bitwise_under_adversarial_delivery_order() {
    let cfg = ca_cfg();
    let clean = run_alg2(&cfg, None);
    for seed in seeds() {
        let delayed = run_alg2(&cfg, Some((seed, DELAY_SPEC)));
        let d = clean.max_abs_diff(&delayed);
        assert_eq!(
            d, 0.0,
            "alg2 diverged under delayed delivery (seed {seed:#x}): max |diff| = {d:e}"
        );
    }
}

#[test]
fn alg1_bitwise_under_adversarial_delivery_order() {
    let cfg = ModelConfig::test_medium();
    let clean = run_alg1(&cfg, None);
    for seed in seeds() {
        let delayed = run_alg1(&cfg, Some((seed, DELAY_SPEC)));
        let d = clean.max_abs_diff(&delayed);
        assert_eq!(
            d, 0.0,
            "alg1 diverged under delayed delivery (seed {seed:#x}): max |diff| = {d:e}"
        );
    }
}

#[test]
fn delay_schedule_actually_fires() {
    // guard against a vacuous pass: at least one seed must hold back at
    // least one message in the alg2 run
    let cfg = ca_cfg();
    let cfg2 = cfg.clone();
    let fired: u64 = Universe::run(2, move |comm| {
        comm.install_faults(FaultPlan::parse(DEFAULT_SEEDS[0], DELAY_SPEC).unwrap());
        comm.set_timeout(Duration::from_secs(20));
        let pgrid = ProcessGrid::yz(2, 1).unwrap();
        let mut m = CaModel::new(&cfg2, pgrid, comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        comm.stats().fault_snapshot().delayed
    })
    .into_iter()
    .sum();
    assert!(fired > 0, "a 35% delay plan over a 2-step run must fire");
}
