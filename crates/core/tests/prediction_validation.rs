//! Validation of the cost predictor against the executing runtime.
//!
//! The figures of the paper are regenerated from [`agcm_core::analysis`]'s
//! per-rank traffic predictions evaluated at 128–1024 ranks.  These tests
//! pin the predictor to reality: at small rank counts, its per-rank message
//! and element counts must equal the statistics the message-passing runtime
//! actually measured, exactly.

use agcm_comm::{p2p_only_delta, CostModel, Universe};
use agcm_core::analysis::{predict_rank, AlgKind};
use agcm_core::init;
use agcm_core::par::{Alg1Model, CaModel};
use agcm_core::ModelConfig;
use agcm_mesh::{Decomposition, ProcessGrid};

/// Measured per-step p2p traffic (collective-internal traffic subtracted)
/// and collective call count, per rank.
fn measure<FMK>(p: usize, cfg: &ModelConfig, mk: FMK) -> Vec<(u64, u64, u64)>
where
    FMK: Fn(&ModelConfig, &mut agcm_comm::Communicator) -> Box<dyn FnMut(&agcm_comm::Communicator)>
        + Sync,
{
    let cfg = cfg.clone();
    Universe::run(p, move |comm| {
        comm.stats().set_event_logging(true); // p2p_only_delta needs events
        let mut stepper = mk(&cfg, comm);
        stepper(comm); // warm-up step (bootstraps CA cache)
        let s0 = comm.stats().snapshot();
        let ev0 = comm.stats().collective_events().len();
        stepper(comm);
        let s1 = comm.stats().snapshot();
        let events = comm.stats().collective_events()[ev0..].to_vec();
        let d = s1.delta(&s0);
        let pure = p2p_only_delta(&d, &events);
        (pure.p2p_sends, pure.p2p_send_elems, d.collective_calls)
    })
}

fn flags(cfg: &ModelConfig) -> Vec<bool> {
    // reproduce analysis::active_flags via the public filter
    let grid = cfg.grid().unwrap();
    let lats: Vec<f64> = (0..grid.ny()).map(|j| grid.latitude(j)).collect();
    let filter = agcm_fft::FourierFilter::new(grid.nx(), &lats, cfg.filter_cutoff_deg.to_radians());
    (0..grid.ny()).map(|j| filter.is_active(j)).collect()
}

#[test]
fn alg1_yz_counts_match_runtime() {
    let cfg = ModelConfig::test_medium();
    let pgrid = ProcessGrid::yz(2, 2).unwrap();
    let measured = measure(4, &cfg, |cfg, comm| {
        let mut m = Alg1Model::new(cfg, ProcessGrid::yz(2, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
        m.set_state(&ic);
        Box::new(move |c: &agcm_comm::Communicator| m.step(c).unwrap())
    });
    let decomp = Decomposition::new(cfg.extents(), pgrid).unwrap();
    let model = CostModel::tianhe2();
    let fl = flags(&cfg);
    for (rank, &(msgs, elems, colls)) in measured.iter().enumerate() {
        let rc = predict_rank(&cfg, AlgKind::OriginalYZ, &decomp, rank, &model, &fl);
        assert_eq!(rc.p2p_msgs, msgs, "rank {rank}: messages");
        assert_eq!(rc.p2p_elems, elems, "rank {rank}: elements");
        assert_eq!(rc.collective_calls, colls, "rank {rank}: collectives");
    }
}

#[test]
fn alg1_xy_counts_match_runtime() {
    let cfg = ModelConfig::test_medium();
    let pgrid = ProcessGrid::xy(2, 2).unwrap();
    let measured = measure(4, &cfg, |cfg, comm| {
        let mut m = Alg1Model::new(cfg, ProcessGrid::xy(2, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
        m.set_state(&ic);
        Box::new(move |c: &agcm_comm::Communicator| m.step(c).unwrap())
    });
    let decomp = Decomposition::new(cfg.extents(), pgrid).unwrap();
    let model = CostModel::tianhe2();
    let fl = flags(&cfg);
    for (rank, &(msgs, elems, colls)) in measured.iter().enumerate() {
        let rc = predict_rank(&cfg, AlgKind::OriginalXY, &decomp, rank, &model, &fl);
        assert_eq!(rc.p2p_msgs, msgs, "rank {rank}: messages");
        assert_eq!(rc.p2p_elems, elems, "rank {rank}: elements");
        assert_eq!(rc.collective_calls, colls, "rank {rank}: collectives");
    }
}

#[test]
fn alg2_counts_match_runtime_grouped() {
    // blocks that force a clamped group (M = 3, 5-row blocks → g = 3):
    // the predictor must track the executable's grouped schedule exactly
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 20;
    let pgrid = ProcessGrid::yz(4, 1).unwrap();
    let measured = measure(4, &cfg, |cfg, comm| {
        let mut m = CaModel::new(cfg, ProcessGrid::yz(4, 1).unwrap(), comm).unwrap();
        assert_eq!(m.group, 3, "expected a clamped group size");
        let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
        m.set_state(&ic);
        Box::new(move |c: &agcm_comm::Communicator| m.step(c).unwrap())
    });
    let decomp = Decomposition::new(cfg.extents(), pgrid).unwrap();
    let model = CostModel::tianhe2();
    let fl = flags(&cfg);
    for (rank, &(msgs, elems, _)) in measured.iter().enumerate() {
        let rc = predict_rank(&cfg, AlgKind::CommAvoiding, &decomp, rank, &model, &fl);
        assert_eq!(rc.p2p_msgs, msgs, "rank {rank}: messages");
        assert_eq!(rc.p2p_elems, elems, "rank {rank}: elements");
    }
}

#[test]
fn alg2_counts_match_runtime_degenerate_group() {
    // 2-row blocks force g = 1 (per-sweep exchanges)
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 16;
    let pgrid = ProcessGrid::yz(8, 1).unwrap();
    let measured = measure(8, &cfg, |cfg, comm| {
        let mut m = CaModel::new(cfg, ProcessGrid::yz(8, 1).unwrap(), comm).unwrap();
        assert_eq!(m.group, 1);
        let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
        m.set_state(&ic);
        Box::new(move |c: &agcm_comm::Communicator| m.step(c).unwrap())
    });
    let decomp = Decomposition::new(cfg.extents(), pgrid).unwrap();
    let model = CostModel::tianhe2();
    let fl = flags(&cfg);
    for (rank, &(msgs, elems, _)) in measured.iter().enumerate() {
        let rc = predict_rank(&cfg, AlgKind::CommAvoiding, &decomp, rank, &model, &fl);
        assert_eq!(rc.p2p_msgs, msgs, "rank {rank}: messages");
        assert_eq!(rc.p2p_elems, elems, "rank {rank}: elements");
    }
}

#[test]
fn alg2_counts_match_runtime_full_depth() {
    // a configuration whose blocks hold the full 3M-deep halo (M = 1):
    // the grouped schedule degenerates to the paper's 2-exchange form and
    // must match the executing CaModel message for message
    let mut cfg = ModelConfig::test_medium();
    cfg.m_iters = 1;
    let pgrid = ProcessGrid::yz(2, 2).unwrap();
    let measured = measure(4, &cfg, |cfg, comm| {
        let mut m = CaModel::new(cfg, ProcessGrid::yz(2, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
        m.set_state(&ic);
        Box::new(move |c: &agcm_comm::Communicator| m.step(c).unwrap())
    });
    let decomp = Decomposition::new(cfg.extents(), pgrid).unwrap();
    let model = CostModel::tianhe2();
    let fl = flags(&cfg);
    for (rank, &(msgs, elems, colls)) in measured.iter().enumerate() {
        let rc = predict_rank(&cfg, AlgKind::CommAvoiding, &decomp, rank, &model, &fl);
        assert_eq!(rc.p2p_msgs, msgs, "rank {rank}: messages");
        assert_eq!(rc.p2p_elems, elems, "rank {rank}: elements");
        assert_eq!(rc.collective_calls, colls, "rank {rank}: collectives");
    }
}
