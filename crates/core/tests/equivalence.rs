//! Correctness of the parallel algorithms against the serial reference.
//!
//! * Algorithm 1 under any decomposition must reproduce the serial *exact*
//!   integrator.
//! * Algorithm 2 (communication-avoiding) must reproduce the serial
//!   *approximate* integrator — the CA algorithm changes the numerics only
//!   through the approximate nonlinear iteration (Eq. 13); deep halos,
//!   fused smoothing, overlap and redundant halo sweeps must not change a
//!   single owned value.
//!
//! Splits along y keep floating-point summation orders identical, so those
//! comparisons use a tiny tolerance; splits along z re-associate the
//! column sums of the operator `C` (block-wise instead of level-by-level),
//! so those use a small-but-nonzero tolerance.

use agcm_comm::Universe;
use agcm_core::init;
use agcm_core::par::{gather_ca_state, gather_state_impl, Alg1Model, CaModel, GlobalState};
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

const STEPS: usize = 2;

fn serial_reference(cfg: &ModelConfig, variant: Iteration) -> GlobalState {
    let mut m = SerialModel::new(cfg, variant).unwrap();
    let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
    m.set_state(&ic);
    m.run(STEPS);
    GlobalState::from_serial(&m.state, m.geom())
}

fn run_alg1(cfg: &ModelConfig, pgrid: ProcessGrid) -> GlobalState {
    let cfg = cfg.clone();
    let mut results = Universe::run(pgrid.size(), move |comm| {
        let mut m = Alg1Model::new(&cfg, pgrid, comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        m.gather_state(comm).unwrap()
    });
    results.remove(0).expect("rank 0 gathers")
}

fn run_alg2(cfg: &ModelConfig, pgrid: ProcessGrid) -> GlobalState {
    let cfg = cfg.clone();
    let mut results = Universe::run(pgrid.size(), move |comm| {
        let mut m = CaModel::new(&cfg, pgrid, comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        gather_ca_state(&m, comm).unwrap()
    });
    results.remove(0).expect("rank 0 gathers")
}

fn assert_close(a: &GlobalState, b: &GlobalState, tol: f64, what: &str) {
    let d = a.max_abs_diff(b);
    assert!(d <= tol, "{what}: max |diff| = {d:e} > {tol:e}");
}

#[test]
fn alg1_y_split_matches_serial_bitwise() {
    let cfg = ModelConfig::test_medium();
    let serial = serial_reference(&cfg, Iteration::Exact);
    let par = run_alg1(&cfg, ProcessGrid::yz(2, 1).unwrap());
    // pure y split: identical summation order everywhere
    assert_close(&par, &serial, 0.0, "alg1 (py=2)");
    let par4 = run_alg1(&cfg, ProcessGrid::yz(4, 1).unwrap());
    assert_close(&par4, &serial, 0.0, "alg1 (py=4)");
}

#[test]
fn alg1_z_split_matches_serial() {
    let cfg = ModelConfig::test_medium();
    let serial = serial_reference(&cfg, Iteration::Exact);
    // z splits re-associate the C sums: tolerance scaled to field magnitude
    let par = run_alg1(&cfg, ProcessGrid::yz(1, 2).unwrap());
    assert_close(&par, &serial, 1e-8, "alg1 (pz=2)");
    let par22 = run_alg1(&cfg, ProcessGrid::yz(2, 2).unwrap());
    assert_close(&par22, &serial, 1e-8, "alg1 (py=2, pz=2)");
}

#[test]
fn alg1_x_split_matches_serial_bitwise() {
    let cfg = ModelConfig::test_medium();
    let serial = serial_reference(&cfg, Iteration::Exact);
    // X-Y decomposition: distributed Fourier filtering, exchanged x halos
    let par = run_alg1(&cfg, ProcessGrid::xy(2, 1).unwrap());
    assert_close(&par, &serial, 0.0, "alg1 (px=2)");
    let par22 = run_alg1(&cfg, ProcessGrid::xy(2, 2).unwrap());
    assert_close(&par22, &serial, 0.0, "alg1 (px=2, py=2)");
}

#[test]
fn alg2_matches_serial_approximate_y_split() {
    // M = 3 (the paper's setting): deep halo of 11 rows needs ny_local ≥ 11
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 24; // 24/2 = 12 ≥ 3M+2 = 11
    let serial = serial_reference(&cfg, Iteration::Approximate);
    let par = run_alg2(&cfg, ProcessGrid::yz(2, 1).unwrap());
    assert_close(&par, &serial, 0.0, "alg2 (py=2, M=3)");
}

#[test]
fn alg2_matches_serial_approximate_yz_split() {
    // M = 1 keeps the deep halo (y=5, z=3) inside the 6x4 blocks of the
    // largest grid below
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 24;
    cfg.m_iters = 1;
    let serial = serial_reference(&cfg, Iteration::Approximate);
    let par = run_alg2(&cfg, ProcessGrid::yz(2, 2).unwrap());
    assert_close(&par, &serial, 1e-8, "alg2 (py=2, pz=2, M=1)");
    let par41 = run_alg2(&cfg, ProcessGrid::yz(4, 2).unwrap());
    assert_close(&par41, &serial, 1e-8, "alg2 (py=4, pz=2, M=1)");
}

#[test]
fn alg2_grouped_sweeps_match_serial() {
    // blocks too small for the full 3M(+2)-deep halo: the CA model clamps
    // to iteration-aligned sweep groups (g = 3 here) and must still
    // reproduce the serial approximate integrator bit for bit
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 20; // py = 4 -> 5-row blocks: g = 3 fused (3 + 2 = 5 <= 5)
    let serial = serial_reference(&cfg, Iteration::Approximate);
    let par = run_alg2(&cfg, ProcessGrid::yz(4, 1).unwrap());
    assert_close(&par, &serial, 0.0, "alg2 grouped (py=4, g=3)");
}

#[test]
fn alg2_degenerate_group_matches_serial() {
    // 2-row blocks: even g = 3 cannot fit — the schedule degenerates to
    // per-sweep exchanges (g = 1) yet still matches the serial reference
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 16; // py = 8 -> 2-row blocks
    let serial = serial_reference(&cfg, Iteration::Approximate);
    let par = run_alg2(&cfg, ProcessGrid::yz(8, 1).unwrap());
    assert_close(&par, &serial, 0.0, "alg2 degenerate (py=8, g=1)");
}

#[test]
fn alg2_with_held_suarez_matches_serial() {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 24;
    cfg.held_suarez = true;
    let serial = serial_reference(&cfg, Iteration::Approximate);
    let par = run_alg2(&cfg, ProcessGrid::yz(2, 1).unwrap());
    assert_close(&par, &serial, 0.0, "alg2 + H-S");
}

#[test]
fn alg1_and_alg2_agree_to_iteration_accuracy() {
    // the two *algorithms* differ only by the approximate iteration: their
    // results must be close (O(Δt³) per step) but NOT identical
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 24;
    let a1 = run_alg1(&cfg, ProcessGrid::yz(2, 1).unwrap());
    let a2 = run_alg2(&cfg, ProcessGrid::yz(2, 1).unwrap());
    let d = a1.max_abs_diff(&a2);
    assert!(d > 0.0, "approximate iteration must differ from exact");
    // relative to the solution scale
    let scale = a1.phi.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0);
    assert!(
        d / scale < 0.05,
        "algorithms diverged: {d} vs scale {scale}"
    );
}

#[test]
fn gather_reconstructs_decomposed_state() {
    // sanity for the comparison harness itself
    let cfg = ModelConfig::test_medium();
    let results = Universe::run(4, move |comm| {
        let cfg = ModelConfig::test_medium();
        let grid = std::sync::Arc::new(cfg.grid().unwrap());
        let d =
            agcm_mesh::Decomposition::new(cfg.extents(), ProcessGrid::yz(2, 2).unwrap()).unwrap();
        let geom = agcm_core::LocalGeometry::new(
            &cfg,
            grid,
            &d,
            comm.rank(),
            agcm_mesh::HaloWidths::uniform(1),
        );
        let st = init::perturbed_rest(&geom, 100.0, 2.0, 5);
        gather_state_impl(&st, &geom, comm).unwrap()
    });
    let gathered = results[0].as_ref().unwrap();
    // compare against the serial construction
    let grid = std::sync::Arc::new(cfg.grid().unwrap());
    let d = agcm_mesh::Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
    let geom = agcm_core::LocalGeometry::new(&cfg, grid, &d, 0, agcm_mesh::HaloWidths::uniform(1));
    let st = init::perturbed_rest(&geom, 100.0, 2.0, 5);
    let serial = GlobalState::from_serial(&st, &geom);
    assert_eq!(gathered.max_abs_diff(&serial), 0.0);
}
