//! Error paths and robustness of the model constructors and runtime.

use agcm_comm::Universe;
use agcm_core::error::ModelError;
use agcm_core::init;
use agcm_core::par::{Alg1Model, CaModel};
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

#[test]
fn ca_rejects_x_decomposition() {
    let cfg = ModelConfig::test_medium();
    let results = Universe::run(2, move |comm| {
        match CaModel::new(&cfg, ProcessGrid::xy(2, 1).unwrap(), comm) {
            Err(ModelError::Config(msg)) => msg.contains("Y-Z"),
            _ => false,
        }
    });
    assert!(results.into_iter().all(|b| b));
}

#[test]
fn models_reject_wrong_communicator_size() {
    let cfg = ModelConfig::test_medium();
    let results = Universe::run(2, move |comm| {
        let a = Alg1Model::new(&cfg, ProcessGrid::yz(4, 1).unwrap(), comm);
        let c = CaModel::new(&cfg, ProcessGrid::yz(4, 1).unwrap(), comm);
        matches!(a, Err(ModelError::Config(_))) && matches!(c, Err(ModelError::Config(_)))
    });
    assert!(results.into_iter().all(|b| b));
}

#[test]
fn alg1_rejects_oversubscribed_blocks() {
    // per-sweep halo of depth 1 needs at least 1-row blocks; oversplit the
    // mesh itself so Decomposition::new fails
    let mut cfg = ModelConfig::test_small(); // ny = 10
    cfg.ny = 10;
    let results = Universe::run(16, move |comm| {
        Alg1Model::new(&cfg, ProcessGrid::yz(16, 1).unwrap(), comm).is_err()
    });
    assert!(results.into_iter().all(|b| b));
}

#[test]
fn ca_adapts_group_size_instead_of_failing() {
    // blocks of 2 rows: the full 3M-deep halo cannot fit, but construction
    // must succeed with a degenerate group
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 16;
    let results = Universe::run(8, move |comm| {
        let m = CaModel::new(&cfg, ProcessGrid::yz(8, 1).unwrap(), comm).unwrap();
        (m.group, m.fused_smoothing, m.exchanges_per_step())
    });
    for (g, fuse, freq) in results {
        assert_eq!(g, 1);
        assert!(!fuse, "2-row blocks cannot take the +2 smoothing margin");
        // 3M + ceil(3/ga) + 1 separate smoothing
        assert!((10..=13).contains(&freq), "freq = {freq}");
    }
}

#[test]
fn serial_model_rejects_invalid_grid() {
    let mut cfg = ModelConfig::test_small();
    cfg.nx = 2; // below the minimum
    assert!(SerialModel::new(&cfg, Iteration::Exact).is_err());
}

#[test]
fn long_unforced_run_stays_finite() {
    // 30 steps of gravity-wave sloshing through filter + smoothing: no NaN,
    // no blow-up
    let mut m = SerialModel::new(&ModelConfig::test_small(), Iteration::Exact).unwrap();
    let ic = init::perturbed_rest(m.geom(), 300.0, 2.0, 17);
    m.set_state(&ic);
    m.run(30);
    assert!(!m.state.has_nan());
    assert!(m.state.psa.max_abs() < 3000.0, "pressure anomaly exploded");
    assert!(m.state.u.max_abs() < 100.0, "winds exploded");
}

#[test]
fn long_forced_run_stays_finite() {
    let mut cfg = ModelConfig::test_small();
    cfg.held_suarez = true;
    let mut m = SerialModel::new(&cfg, Iteration::Approximate).unwrap();
    m.run(30);
    assert!(!m.state.has_nan());
    assert!(m.state.u.max_abs() < 200.0);
}

#[test]
fn parallel_run_with_uneven_blocks() {
    // 3-way split of 16 rows: blocks of 6/5/5 — uneven partitions must work
    let cfg = ModelConfig::test_medium();
    let cfg2 = cfg.clone();
    let results = Universe::run(3, move |comm| {
        let mut m = Alg1Model::new(&cfg2, ProcessGrid::yz(3, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 4);
        m.set_state(&ic);
        m.run(comm, 2).unwrap();
        m.gather_state(comm).unwrap()
    });
    let gathered = results[0].as_ref().unwrap();
    // against the serial reference
    let mut s = SerialModel::new(&cfg, Iteration::Exact).unwrap();
    let ic = init::perturbed_rest(s.geom(), 150.0, 1.0, 4);
    s.set_state(&ic);
    s.run(2);
    let serial = agcm_core::par::GlobalState::from_serial(&s.state, s.geom());
    assert_eq!(
        gathered.max_abs_diff(&serial),
        0.0,
        "uneven split must be exact"
    );
}

#[test]
fn six_rank_mixed_decomposition() {
    // 3 x 2 (y, z) grid with uneven y blocks AND a z split
    let cfg = ModelConfig::test_medium();
    let cfg2 = cfg.clone();
    let results = Universe::run(6, move |comm| {
        let mut m = Alg1Model::new(&cfg2, ProcessGrid::yz(3, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 150.0, 1.0, 4);
        m.set_state(&ic);
        m.run(comm, 2).unwrap();
        m.gather_state(comm).unwrap()
    });
    let gathered = results[0].as_ref().unwrap();
    let mut s = SerialModel::new(&cfg, Iteration::Exact).unwrap();
    let ic = init::perturbed_rest(s.geom(), 150.0, 1.0, 4);
    s.set_state(&ic);
    s.run(2);
    let serial = agcm_core::par::GlobalState::from_serial(&s.state, s.geom());
    assert!(
        gathered.max_abs_diff(&serial) < 1e-8,
        "mixed decomposition diverged: {}",
        gathered.max_abs_diff(&serial)
    );
}
