//! Communication counting — the paper's structural claims, asserted
//! literally:
//!
//! * §4.3.1: the communication-avoiding algorithm reduces the stencil
//!   communication *frequency* from `3M + 4 = 13` (original, `M = 3`) to
//!   `2` per time step,
//! * §4.2.2: the approximate nonlinear iteration executes the summation
//!   operator `C` twice instead of three times per iteration — one third of
//!   the collective traffic removed,
//! * §4.2.1: under the Y-Z decomposition the Fourier filtering involves no
//!   communication at all, while the X-Y baseline pays two transposes per
//!   filter application.

use agcm_comm::{CollectiveKind, StatsSnapshot, Universe};
use agcm_core::init;
use agcm_core::par::{Alg1Model, CaModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

fn cfg_for_ca() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium(); // 24 x 16 x 8
    cfg.m_iters = 1; // deep halo y=5, z=3 fits 8x4 blocks
    cfg
}

#[test]
fn alg1_exchange_frequency_is_3m_plus_4() {
    for m in [1usize, 2, 3] {
        let mut cfg = ModelConfig::test_medium();
        cfg.m_iters = m;
        let counts = Universe::run(4, move |comm| {
            let mut model = Alg1Model::new(&cfg, ProcessGrid::yz(2, 2).unwrap(), comm).unwrap();
            let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
            model.set_state(&ic);
            let before = model.exchange_count();
            model.step(comm).unwrap();
            let per_step = model.exchange_count() - before;
            model.step(comm).unwrap();
            (per_step, model.exchange_count())
        });
        for (per_step, total) in counts {
            assert_eq!(
                per_step as usize,
                3 * m + 4,
                "Algorithm 1 must exchange 3M+4 times per step (M={m})"
            );
            assert_eq!(total as usize, 2 * (3 * m + 4));
        }
    }
}

#[test]
fn alg2_exchange_frequency_is_2() {
    let cfg = cfg_for_ca();
    let counts = Universe::run(4, move |comm| {
        let mut model = CaModel::new(&cfg, ProcessGrid::yz(2, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        for _ in 0..3 {
            model.step(comm).unwrap();
        }
        let steady = model.exchange_count();
        model.finish(comm).unwrap();
        (steady, model.exchange_count())
    });
    for (steady, with_finish) in counts {
        assert_eq!(steady, 3 * 2, "Algorithm 2: exactly 2 exchanges per step");
        assert_eq!(with_finish, 3 * 2 + 1, "plus one final smoothing exchange");
    }
}

/// Count z-axis collective events (the operator `C`) per step.
fn collective_deltas<F>(p: usize, f: F) -> Vec<(u64, u64)>
where
    F: Fn(&mut agcm_comm::Communicator) -> (StatsSnapshot, StatsSnapshot, StatsSnapshot) + Sync,
{
    Universe::run(p, |comm| {
        let (s0, s1, s2) = f(comm);
        (
            s1.delta(&s0).collective_calls,
            s2.delta(&s1).collective_calls,
        )
    })
}

#[test]
fn alg1_runs_3m_collectives_per_step() {
    let mut cfg = ModelConfig::test_medium();
    cfg.m_iters = 3;
    let deltas = collective_deltas(2, |comm| {
        let mut model = Alg1Model::new(&cfg, ProcessGrid::yz(1, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        let s0 = comm.stats().snapshot();
        model.step(comm).unwrap();
        let s1 = comm.stats().snapshot();
        model.step(comm).unwrap();
        (s0, s1, comm.stats().snapshot())
    });
    for (step1, step2) in deltas {
        // one allgather per C application, 3 per nonlinear iteration
        assert_eq!(step1, 9, "original algorithm: 3M = 9 collectives");
        assert_eq!(step2, 9);
    }
}

#[test]
fn alg2_runs_2m_collectives_per_step() {
    let cfg = cfg_for_ca(); // M = 1
    let deltas = collective_deltas(2, |comm| {
        let mut model = CaModel::new(&cfg, ProcessGrid::yz(1, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        let s0 = comm.stats().snapshot();
        model.step(comm).unwrap(); // bootstrap step: cache empty → 3 C's
        let s1 = comm.stats().snapshot();
        model.step(comm).unwrap(); // steady state: 2M = 2
        (s0, s1, comm.stats().snapshot())
    });
    for (boot, steady) in deltas {
        assert_eq!(
            boot, 3,
            "first step bootstraps the cache: 3 collectives (M=1)"
        );
        assert_eq!(
            steady, 2,
            "steady state: 2 collectives per iteration — one third saved"
        );
    }
}

#[test]
fn collective_volume_reduced_by_about_one_third() {
    // compare the collective element volume of the two algorithms at M = 3
    // (CA deep z-halos of 3M = 9 need blocks of ≥ 9 levels under pz = 2)
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 24;
    cfg.nz = 20;
    cfg.m_iters = 3;
    let cfg1 = cfg.clone();
    let vol1 = Universe::run(2, move |comm| {
        let mut model = Alg1Model::new(&cfg1, ProcessGrid::yz(1, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        model.step(comm).unwrap(); // warm
        let s0 = comm.stats().snapshot();
        model.step(comm).unwrap();
        comm.stats().snapshot().delta(&s0).collective_elems
    })[0];
    let cfg2 = cfg.clone();
    let vol2 = Universe::run(2, move |comm| {
        let mut model = CaModel::new(&cfg2, ProcessGrid::yz(1, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        model.step(comm).unwrap(); // warm (bootstrap)
        let s0 = comm.stats().snapshot();
        model.step(comm).unwrap();
        comm.stats().snapshot().delta(&s0).collective_elems
    })[0];
    let ratio = vol2 as f64 / vol1 as f64;
    // CA halo sweeps widen the columns slightly, so the saving lands near
    // (not exactly at) the paper's "about 30%"
    assert!(
        (0.55..0.85).contains(&ratio),
        "CA collective volume ratio {ratio} not ≈ 2/3"
    );
}

#[test]
fn yz_filter_is_communication_free_xy_pays_transposes() {
    let cfg = ModelConfig::test_medium();
    // Y-Z: no alltoall events at all
    let cfg_yz = cfg.clone();
    let yz_alltoalls = Universe::run(2, move |comm| {
        comm.stats().set_event_logging(true); // per-kind counts need the log
        let mut model = Alg1Model::new(&cfg_yz, ProcessGrid::yz(2, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        model.step(comm).unwrap();
        comm.stats().count_collectives(CollectiveKind::Alltoall)
    });
    assert!(yz_alltoalls.iter().all(|&n| n == 0));
    // X-Y: two transposes per filter application, (3M + 3) applications
    let m = cfg.m_iters;
    let cfg_xy = cfg.clone();
    let xy_alltoalls = Universe::run(2, move |comm| {
        comm.stats().set_event_logging(true);
        let mut model = Alg1Model::new(&cfg_xy, ProcessGrid::xy(2, 1).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        model.step(comm).unwrap();
        comm.stats().count_collectives(CollectiveKind::Alltoall)
    });
    for n in xy_alltoalls {
        assert_eq!(
            n,
            2 * (3 * m + 3),
            "X-Y pays 2 transposes x (3M+3) filter applications"
        );
    }
}

#[test]
fn alg2_message_count_per_exchange() {
    // 7 arrays x messages to each neighbour in the deep exchange;
    // an interior rank of a 2-D decomposition has 8 neighbours → 56 sends,
    // "over 200 communication operations avoided" at the paper's scale
    let cfg = cfg_for_ca();
    let counts = Universe::run(9, move |comm| {
        let mut cfg = cfg.clone();
        cfg.ny = 33; // 3 x 3 process grid: blocks of 11/11/11 in y... 33/3=11 ≥ 5
        cfg.nz = 9; // 3 blocks of 3 ≥ 3
        let mut model = CaModel::new(&cfg, ProcessGrid::yz(3, 3).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        let s0 = comm.stats().snapshot();
        model.step(comm).unwrap();
        let d = comm.stats().snapshot().delta(&s0);
        (comm.rank(), d.p2p_sends, d.collective_calls)
    });
    // rank 4 is the centre of the 3x3 (y,z) grid: 8 neighbours.
    // Deep exchange: 5 3-D fields to all 8 neighbours + 2 surface (2-D)
    // fields to the 2 y-neighbours = 44 sends; advection exchange:
    // 4 3-D x 8 + 1 2-D x 2 = 34.  The collective-internal p2p of `colls`
    // allgathers on p_z = 3 (ring: 2 messages per rank per call) is
    // subtracted.
    let (_, sends, colls) = counts[4];
    let coll_p2p = colls * 2;
    assert_eq!(
        sends - coll_p2p,
        44 + 34,
        "messages per step: 78 ≈ the paper's 'about 20 Isend+Recv per \
         communication' scaled to our 7/5-field bundles"
    );
}
