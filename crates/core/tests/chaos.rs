//! Chaos acceptance tests (ISSUE 3): with a fixed `AGCM_FAULT_SEED`, a
//! run that drops one halo message and bit-corrupts one payload must
//! complete via retry (framed exchanges) or rollback (resilient runner),
//! ending bitwise equal — or equal within the degraded-mode tolerance —
//! to the fault-free run; and an identical re-run must reproduce the
//! fault schedule byte-for-byte.

use agcm_comm::{FaultPlan, FaultSnapshot, Universe};
use agcm_core::init;
use agcm_core::par::{gather_ca_state, CaModel, RetryPolicy};
use agcm_core::resilience::{ResilienceConfig, ResilienceError, ResilientRunner};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use std::time::Duration;

const STEPS: usize = 2;
const SEED: u64 = 24473;

fn seed() -> u64 {
    std::env::var("AGCM_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(SEED)
}

fn ca_cfg() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.ny = 24;
    cfg
}

struct ChaosRun {
    global: agcm_core::par::GlobalState,
    faults: FaultSnapshot,
    log_bytes: String,
}

/// Run CA at p = 2 with framed + retrying exchanges and an optional
/// fault plan; gather the global state on rank 0 plus per-run fault
/// accounting (summed over ranks, logs concatenated rank-major).
fn run_framed_ca(cfg: &ModelConfig, plan: Option<(u64, &str)>) -> ChaosRun {
    let cfg = cfg.clone();
    let plan = plan.map(|(s, spec)| (s, spec.to_string()));
    let results = Universe::run(2, move |comm| {
        if let Some((s, spec)) = &plan {
            comm.install_faults(FaultPlan::parse(*s, spec).unwrap());
        }
        comm.set_timeout(Duration::from_millis(500));
        let pgrid = ProcessGrid::yz(2, 1).unwrap();
        let mut m = CaModel::new(&cfg, pgrid, comm).unwrap();
        m.set_framed(true);
        m.set_retry(RetryPolicy {
            max_attempts: 4,
            backoff: Duration::from_millis(1),
        });
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(comm, STEPS).unwrap();
        let log: Vec<String> = comm.fault_log().iter().map(|e| e.to_string()).collect();
        (
            gather_ca_state(&m, comm).unwrap(),
            comm.stats().fault_snapshot(),
            log.join("\n"),
        )
    });
    let mut faults = FaultSnapshot::default();
    let mut log_bytes = String::new();
    let mut global = None;
    for (g, f, l) in results {
        faults.dropped += f.dropped;
        faults.corrupted += f.corrupted;
        faults.duplicated += f.duplicated;
        faults.delayed += f.delayed;
        faults.stalled += f.stalled;
        faults.crashed += f.crashed;
        faults.retries += f.retries;
        log_bytes.push_str(&l);
        log_bytes.push('\n');
        if let Some(g) = g {
            global = Some(g);
        }
    }
    ChaosRun {
        global: global.expect("rank 0 gathers"),
        faults,
        log_bytes,
    }
}

/// Acceptance: one dropped halo message + one corrupted payload, framed
/// exchanges + bounded retry → the run completes and the final state is
/// **bitwise** equal to the fault-free run; the snapshot counts exactly
/// the injected faults.
#[test]
fn framed_retry_recovers_drop_and_corruption_bitwise() {
    let cfg = ca_cfg();
    let clean = run_framed_ca(&cfg, None);
    assert_eq!(clean.faults.total(), 0);

    let spec = "drop:rank=0,user=1,nth=1;corrupt:rank=1,user=1,nth=1,bit=17";
    let faulty = run_framed_ca(&cfg, Some((seed(), spec)));
    let d = clean.global.max_abs_diff(&faulty.global);
    assert_eq!(d, 0.0, "retry recovery must be bitwise: max |diff| = {d:e}");
    assert_eq!(faulty.faults.dropped, 1, "exactly the one injected drop");
    assert_eq!(
        faulty.faults.corrupted, 1,
        "exactly the one injected corruption"
    );
    assert_eq!(
        faulty.faults.duplicated + faulty.faults.stalled + faulty.faults.crashed,
        0
    );
    // the drop times out once and the corruption is rejected once: both
    // recoveries go through the retry path
    assert!(
        faulty.faults.retries >= 2,
        "expected ≥2 retries, got {}",
        faulty.faults.retries
    );
}

/// Acceptance: an identical re-run (same seed, same spec) reproduces the
/// fault schedule byte-for-byte.
#[test]
fn identical_rerun_replays_schedule_byte_for_byte() {
    let cfg = ca_cfg();
    let spec = "drop:rank=0,user=1,nth=1;corrupt:rank=1,user=1,nth=2,bit=23;dup:user=1,prob=0.05";
    let a = run_framed_ca(&cfg, Some((seed(), spec)));
    let b = run_framed_ca(&cfg, Some((seed(), spec)));
    assert!(!a.log_bytes.trim().is_empty(), "the plan must fire");
    assert_eq!(
        a.log_bytes, b.log_bytes,
        "fault schedule must replay byte-for-byte"
    );
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.global.max_abs_diff(&b.global), 0.0);
}

/// Silent corruption (no framing) slips past the exchange layer, blows
/// up the state, and the resilient runner rolls back to the last
/// checkpoint, re-runs the window degraded, and completes within the
/// degraded-mode tolerance of the fault-free run.
#[test]
fn rollback_recovers_silent_corruption_within_degraded_tolerance() {
    let cfg = ca_cfg();
    let clean = run_framed_ca(&cfg, None);

    // bit 62 (exponent MSB) turns any halo value into ~1e300: the blow-up
    // guard's max|ξ| consensus trips at the end of the corrupted step
    let spec = "corrupt:rank=1,user=1,nth=3,bit=62";
    let cfg2 = cfg.clone();
    let results = Universe::run(2, move |comm| {
        comm.install_faults(FaultPlan::parse(seed(), spec).unwrap());
        comm.set_timeout(Duration::from_secs(2));
        let pgrid = ProcessGrid::yz(2, 1).unwrap();
        let mut m = CaModel::new(&cfg2, pgrid, comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        let mut runner = ResilientRunner::new(
            comm,
            ResilienceConfig {
                checkpoint_interval: 1,
                ring_capacity: 2,
                max_rollbacks: 4,
                max_abs_limit: 1e6,
                checkpoint_dir: None,
            },
        )
        .unwrap();
        let report = runner.run(&mut m, comm, STEPS as u64).unwrap();
        let snap = comm.stats().fault_snapshot();
        (gather_ca_state(&m, comm).unwrap(), report, snap)
    });
    let corrupted: u64 = results.iter().map(|(_, _, s)| s.corrupted).sum();
    assert_eq!(corrupted, 1, "exactly the one injected corruption");
    let (global, report, _) = results.into_iter().next().unwrap();
    let global = global.expect("rank 0 gathers");
    assert!(report.rollbacks >= 1, "the blow-up must trigger a rollback");
    assert!(
        report.degraded_steps >= 1,
        "the re-run window runs degraded"
    );
    assert_eq!(report.steps, STEPS as u64);

    // degraded re-runs use exact C instead of the Eq. 13 reuse: equal to
    // the fault-free run within the degraded-mode tolerance, not bitwise
    let d = global.max_abs_diff(&clean.global);
    let scale = clean.global.max_abs().max(1.0);
    assert!(
        d > 0.0,
        "degraded window must actually differ (exact vs Eq. 13)"
    );
    assert!(
        d / scale < 0.05,
        "degraded recovery drifted too far: {d:e} vs scale {scale:e}"
    );
}

/// When recovery cannot succeed the runner surfaces the typed
/// `RollbackExhausted` on every rank instead of hanging or panicking.
#[test]
fn exhausted_rollbacks_surface_typed_error_on_all_ranks() {
    let cfg = ca_cfg();
    let errs = Universe::run(2, move |comm| {
        comm.set_timeout(Duration::from_secs(10));
        let pgrid = ProcessGrid::yz(2, 1).unwrap();
        let mut m = CaModel::new(&cfg, pgrid, comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        let mut runner = ResilientRunner::new(
            comm,
            ResilienceConfig {
                checkpoint_interval: 1,
                ring_capacity: 2,
                max_rollbacks: 2,
                // an impossible bound: every attempt "blows up"
                max_abs_limit: 1e-12,
                checkpoint_dir: None,
            },
        )
        .unwrap();
        runner.run(&mut m, comm, STEPS as u64).unwrap_err()
    });
    for (rank, err) in errs.into_iter().enumerate() {
        match err {
            ResilienceError::RollbackExhausted { rollbacks, .. } => {
                assert!(rollbacks <= 2, "rank {rank}: budget respected")
            }
            other => panic!("rank {rank}: expected RollbackExhausted, got {other}"),
        }
    }
}
