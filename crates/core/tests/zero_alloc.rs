//! Steady-state stepping performs **zero heap allocation**.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after a
//! warm-up step has grown every scratch buffer (filter FFT arenas, column
//! sums, exchange staging, state scratch), further serial steps must not
//! allocate at all.  Scope: the serial integrator at one worker — spawning
//! scoped threads allocates by design, and the message mailbox hands out
//! fresh `Vec`s on receive, so the parallel paths are excluded.
//!
//! This test gets its own binary so the global allocator hook cannot leak
//! into unrelated tests.  It is also the only `unsafe` in the workspace
//! (every crate is `#![forbid(unsafe_code)]`): a `GlobalAlloc` impl cannot
//! be written without it.

#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

// SAFETY: pure pass-through to `System` — same layout/pointer contract,
// no additional invariants; the counter bump is allocation-free atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (non-zero
        // layout); forwarded to `System` unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `Self::alloc`, i.e. by `System`,
        // with the same `layout` — exactly what `System.dealloc` requires.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` come from `Self::alloc` (backed by
        // `System`) and the caller upholds `realloc`'s non-zero `new_size`
        // contract; forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn serial_steady_state_steps_do_not_allocate() {
    use agcm_core::init;
    use agcm_core::pool;
    use agcm_core::serial::{Iteration, SerialModel};
    use agcm_core::ModelConfig;

    pool::with_workers(1, || {
        let cfg = ModelConfig::test_small();
        let mut m = SerialModel::new(&cfg, Iteration::Approximate).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        // warm-up: grows every lazily-sized scratch buffer exactly once
        m.run(2);

        // sanity: the hook really counts (a deliberate allocation registers)
        COUNTING.store(true, Ordering::SeqCst);
        let probe: Vec<u64> = std::hint::black_box((0..17).collect());
        COUNTING.store(false, Ordering::SeqCst);
        assert!(probe.len() == 17 && ALLOCS.load(Ordering::SeqCst) > 0);
        ALLOCS.store(0, Ordering::SeqCst);
        drop(probe);

        COUNTING.store(true, Ordering::SeqCst);
        m.run(3);
        COUNTING.store(false, Ordering::SeqCst);

        let n = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(n, 0, "steady-state stepping allocated {n} times");
        assert!(!m.state.has_nan());
    });
}
