//! Stencil footprint verification by dependence probing.
//!
//! Tables 1–3 of the paper declare which neighbouring points each operator
//! may read; the halo widths and communication volumes of both algorithms
//! are derived from those declarations, so an implementation reading
//! *outside* its declared footprint would silently corrupt parallel runs.
//! These tests perturb a single input point and assert that the output
//! changes only at points whose declared footprint covers the perturbed
//! point.
//!
//! The z-global couplings (vertical sums/integrals) are charged to the
//! collective operator `C` in the paper's accounting, so the probes freeze
//! the `C` outputs (exactly like the approximate iteration does) and probe
//! the stencil parts.

use agcm_core::adaptation::adaptation_tendency;
use agcm_core::advection::advection_tendency;
use agcm_core::boundary;
use agcm_core::diag::Diag;
use agcm_core::geometry::LocalGeometry;
use agcm_core::smoothing::smooth_full;
use agcm_core::state::State;
use agcm_core::stdatm::StandardAtmosphere;
use agcm_core::tables;
use agcm_core::vertical::{apply_c, ZContext};
use agcm_core::ModelConfig;
use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid, StencilFootprint};
use std::sync::Arc;

struct Probe {
    geom: LocalGeometry,
    sa: StandardAtmosphere,
}

impl Probe {
    fn new() -> Probe {
        let mut cfg = ModelConfig::test_medium();
        cfg.nx = 24;
        cfg.ny = 18;
        cfg.nz = 10;
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(4));
        let sa = StandardAtmosphere::new(&grid);
        Probe { geom, sa }
    }

    fn base_state(&self) -> State {
        let mut st = State::new(self.geom.nx, self.geom.ny, self.geom.nz, self.geom.halo);
        for k in 0..self.geom.nz as isize {
            for j in 0..self.geom.ny as isize {
                for i in 0..self.geom.nx as isize {
                    let x = (i as f64 * 0.71 + j as f64 * 0.37 + k as f64 * 0.19).sin();
                    st.u.set(i, j, k, 6.0 * x);
                    st.v.set(i, j, k, 3.0 * (x * 1.7).cos());
                    st.phi.set(i, j, k, 25.0 * (x * 0.9).sin());
                }
            }
        }
        for j in 0..self.geom.ny as isize {
            for i in 0..self.geom.nx as isize {
                st.psa.set(i, j, 40.0 * ((i + 2 * j) as f64 * 0.23).sin());
            }
        }
        boundary::enforce_pole_v(&mut st, &self.geom);
        boundary::fill_boundaries(&mut st, &self.geom);
        st
    }

    /// Evaluate `f`'s output for `st`, returning the four tendency arrays.
    fn eval<F>(&self, st: &State, f: &F) -> State
    where
        F: Fn(&LocalGeometry, &StandardAtmosphere, &State, &mut State),
    {
        let mut out = State::new(self.geom.nx, self.geom.ny, self.geom.nz, self.geom.halo);
        f(&self.geom, &self.sa, st, &mut out);
        out
    }

    /// Perturb the 3-D prognostic components at `(qi, qj, qk)` — or, with
    /// `perturb_psa`, the 2-D surface pressure at `(qi, qj)` — and return
    /// all interior offsets `(p − q)` whose output changed.  (`p'_sa` is a
    /// column quantity: it has no z offset, so its probe checks only the
    /// horizontal footprint.)
    fn influence<F>(
        &self,
        f: &F,
        qi: isize,
        qj: isize,
        qk: isize,
        perturb_psa: bool,
    ) -> Vec<(i32, i32, i32)>
    where
        F: Fn(&LocalGeometry, &StandardAtmosphere, &State, &mut State),
    {
        let st0 = self.base_state();
        let out0 = self.eval(&st0, f);
        let mut st1 = st0.clone();
        if perturb_psa {
            st1.psa.add(qi, qj, 2.9);
        } else {
            st1.u.add(qi, qj, qk, 0.37);
            st1.v.add(qi, qj, qk, 0.53);
            st1.phi.add(qi, qj, qk, 1.7);
        }
        boundary::enforce_pole_v(&mut st1, &self.geom);
        boundary::fill_boundaries(&mut st1, &self.geom);
        let out1 = self.eval(&st1, f);
        let mut changed = Vec::new();
        let nx = self.geom.nx as isize;
        for k in 0..self.geom.nz as isize {
            for j in 0..self.geom.ny as isize {
                for i in 0..nx {
                    let d = (out1.u.get(i, j, k) - out0.u.get(i, j, k)).abs()
                        + (out1.v.get(i, j, k) - out0.v.get(i, j, k)).abs()
                        + (out1.phi.get(i, j, k) - out0.phi.get(i, j, k)).abs()
                        + if k == 0 {
                            (out1.psa.get(i, j) - out0.psa.get(i, j)).abs()
                        } else {
                            0.0
                        };
                    if d > 1e-13 {
                        // periodic x distance
                        let mut dx = i - qi;
                        if dx > nx / 2 {
                            dx -= nx;
                        }
                        if dx < -nx / 2 {
                            dx += nx;
                        }
                        changed.push((dx as i32, (j - qj) as i32, (k - qk) as i32));
                    }
                }
            }
        }
        changed
    }

    /// Assert every influenced point is allowed by the declared footprint:
    /// output at `p` may depend on input at `q` iff `(q − p)` is in the
    /// footprint, i.e. the influence offset `(p − q)` negated must be
    /// contained.
    fn assert_within(&self, fp: &StencilFootprint, influences: &[(i32, i32, i32)], what: &str) {
        self.assert_within_opts(fp, influences, what, true)
    }

    /// `check_z = false` for 2-D (column) perturbations.
    fn assert_within_opts(
        &self,
        fp: &StencilFootprint,
        influences: &[(i32, i32, i32)],
        what: &str,
        check_z: bool,
    ) {
        for &(dx, dy, dz) in influences {
            let dz = if check_z { dz } else { 0 };
            assert!(
                fp.contains(-dx, -dy, -dz),
                "{what}: output at offset ({dx},{dy},{dz}) from the perturbed \
                 point implies a read at ({},{},{}) outside the declared \
                 footprint {fp}",
                -dx,
                -dy,
                -dz
            );
        }
        assert!(
            !influences.is_empty(),
            "{what}: probe saw no influence at all"
        );
    }
}

/// The adaptation tendency with `C` outputs frozen at the base state (the
/// z-global parts are the collective's, not the stencil's).
fn adaptation_stencil(geom: &LocalGeometry, sa: &StandardAtmosphere, st: &State, out: &mut State) {
    let region = geom.interior();
    let mut diag = Diag::new(geom);
    // freeze C at the ZERO state: gw = phi_p = vsum = 0 identically, so no
    // dependence flows through them, while dsa/dp/pes/cap_p are live
    diag.update_surface(geom, sa, st, region.y0 - 1, region.y1 + 1);
    diag.update_dsa(geom, st, region.y0, region.y1);
    diag.update_dp(geom, st, region.y0, region.y1, region.z0, region.z1, 0);
    adaptation_tendency(geom, st, &diag, out, region);
}

fn advection_stencil(geom: &LocalGeometry, sa: &StandardAtmosphere, st: &State, out: &mut State) {
    let region = geom.interior();
    let mut diag = Diag::new(geom);
    diag.update_surface(geom, sa, st, region.y0 - 1, region.y1 + 1);
    // frozen σ̇ = 0: L3's dependence through g_w is the collective's
    advection_tendency(geom, st, &diag, out, region);
}

fn smoothing_op(geom: &LocalGeometry, _sa: &StandardAtmosphere, st: &State, out: &mut State) {
    smooth_full(geom, 0.1, st, out, geom.interior());
}

#[test]
fn adaptation_reads_within_table1() {
    let p = Probe::new();
    let fp = tables::adaptation_union();
    for &(qi, qj, qk) in &[(10, 8, 5), (5, 9, 4), (15, 7, 6)] {
        let inf = p.influence(&adaptation_stencil, qi, qj, qk, false);
        p.assert_within(&fp, &inf, "adaptation (3-D)");
        let inf = p.influence(&adaptation_stencil, qi, qj, qk, true);
        p.assert_within_opts(&fp, &inf, "adaptation (p'_sa)", false);
    }
}

#[test]
fn advection_reads_within_table2() {
    let p = Probe::new();
    let fp = tables::advection_union();
    for &(qi, qj, qk) in &[(10, 8, 5), (6, 10, 4)] {
        let inf = p.influence(&advection_stencil, qi, qj, qk, false);
        p.assert_within(&fp, &inf, "advection (3-D)");
        let inf = p.influence(&advection_stencil, qi, qj, qk, true);
        p.assert_within_opts(&fp, &inf, "advection (p'_sa)", false);
    }
}

#[test]
fn smoothing_reads_within_table3() {
    let p = Probe::new();
    let fp = tables::smoothing_union();
    for &(qi, qj, qk) in &[(10, 8, 5), (12, 9, 2)] {
        let inf = p.influence(&smoothing_op, qi, qj, qk, false);
        p.assert_within(&fp, &inf, "smoothing (3-D)");
        let inf = p.influence(&smoothing_op, qi, qj, qk, true);
        p.assert_within_opts(&fp, &inf, "smoothing (p'_sa)", false);
    }
}

#[test]
fn smoothing_footprint_is_tight_in_x() {
    // the ±2 x-offsets of P₁/P₂ are actually exercised (the declared
    // footprint is attained, not just an upper bound)
    let p = Probe::new();
    let inf = p.influence(&smoothing_op, 10, 8, 5, false);
    assert!(inf.contains(&(2, 0, 0)) && inf.contains(&(-2, 0, 0)));
    assert!(inf.contains(&(0, 2, 0)) && inf.contains(&(0, -2, 0)));
}

#[test]
fn c_outputs_are_z_global_as_charged_to_the_collective() {
    // perturbing one level must influence φ' at (at least) all levels above
    // it and g_w below it — the dependence the paper assigns to `C`
    let p = Probe::new();
    let st0 = p.base_state();
    let region = p.geom.interior();
    let run_c = |st: &State| {
        let mut diag = Diag::new(&p.geom);
        diag.update_surface(&p.geom, &p.sa, st, region.y0 - 1, region.y1 + 1);
        apply_c(
            &p.geom,
            &p.sa,
            st,
            &mut diag,
            region,
            &ZContext::Serial,
            true,
        )
        .unwrap();
        diag
    };
    let d0 = run_c(&st0);
    let mut st1 = st0.clone();
    let (qi, qj, qk) = (10isize, 8isize, 6isize);
    st1.phi.add(qi, qj, qk, 5.0);
    boundary::fill_boundaries(&mut st1, &p.geom);
    let d1 = run_c(&st1);
    // φ' changes at the perturbed level and every level above (hydrostatic
    // integration from the surface upward)
    for k in 0..=qk {
        assert!(
            (d1.phi_p.get(qi, qj, k) - d0.phi_p.get(qi, qj, k)).abs() > 1e-12,
            "φ' at level {k} must feel a Φ perturbation at level {qk}"
        );
    }
    // and not below
    for k in qk + 1..p.geom.nz as isize {
        assert!(
            (d1.phi_p.get(qi, qj, k) - d0.phi_p.get(qi, qj, k)).abs() < 1e-12,
            "φ' below the perturbation must be unaffected"
        );
    }
}
