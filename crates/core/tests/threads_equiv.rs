//! Worker-pool determinism: a full `dycore_step` must be bitwise identical
//! at every `AGCM_THREADS` setting, for the serial integrator and both
//! parallel algorithms.  The pool splits disjoint z-bands of each sweep, so
//! no floating-point sum is re-associated — thread count can only change
//! *when* a point is computed, never *what* is computed.

use agcm_comm::Universe;
use agcm_core::init;
use agcm_core::par::{gather_ca_state, Alg1Model, CaModel, GlobalState};
use agcm_core::pool;
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;

const STEPS: usize = 2;
const THREADS: [usize; 3] = [1, 2, 4];

fn serial_at(cfg: &ModelConfig, nt: usize) -> GlobalState {
    pool::with_workers(nt, || {
        let mut m = SerialModel::new(cfg, Iteration::Approximate).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
        m.set_state(&ic);
        m.run(STEPS);
        GlobalState::from_serial(&m.state, m.geom())
    })
}

fn alg1_at(cfg: &ModelConfig, pgrid: ProcessGrid, nt: usize) -> GlobalState {
    let cfg = cfg.clone();
    // the override is thread-local: set it inside each rank's thread
    let mut results = Universe::run(pgrid.size(), move |comm| {
        pool::with_workers(nt, || {
            let mut m = Alg1Model::new(&cfg, pgrid, comm).unwrap();
            let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
            m.set_state(&ic);
            m.run(comm, STEPS).unwrap();
            m.gather_state(comm).unwrap()
        })
    });
    results.remove(0).expect("rank 0 gathers")
}

fn alg2_at(cfg: &ModelConfig, pgrid: ProcessGrid, nt: usize) -> GlobalState {
    let cfg = cfg.clone();
    let mut results = Universe::run(pgrid.size(), move |comm| {
        pool::with_workers(nt, || {
            let mut m = CaModel::new(&cfg, pgrid, comm).unwrap();
            let ic = init::perturbed_rest(m.geom(), 200.0, 1.0, 42);
            m.set_state(&ic);
            m.run(comm, STEPS).unwrap();
            gather_ca_state(&m, comm).unwrap()
        })
    });
    results.remove(0).expect("rank 0 gathers")
}

fn assert_bitwise(a: &GlobalState, b: &GlobalState, what: &str) {
    assert_eq!(a.extents, b.extents);
    let eq = |x: &[f64], y: &[f64]| x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits());
    assert!(eq(&a.u, &b.u), "{what}: u differs");
    assert!(eq(&a.v, &b.v), "{what}: v differs");
    assert!(eq(&a.phi, &b.phi), "{what}: phi differs");
    assert!(eq(&a.psa, &b.psa), "{what}: psa differs");
}

#[test]
fn serial_step_is_thread_count_invariant() {
    let cfg = ModelConfig::test_medium();
    let want = serial_at(&cfg, 1);
    assert!(want.max_abs() > 0.0, "test must exercise nonzero dynamics");
    for nt in THREADS {
        let got = serial_at(&cfg, nt);
        assert_bitwise(&got, &want, &format!("serial at {nt} workers"));
    }
}

#[test]
fn alg1_step_is_thread_count_invariant() {
    let cfg = ModelConfig::test_medium();
    let pgrid = ProcessGrid::yz(2, 1).unwrap();
    let want = alg1_at(&cfg, pgrid, 1);
    for nt in THREADS {
        let got = alg1_at(&cfg, pgrid, nt);
        assert_bitwise(&got, &want, &format!("alg1 at {nt} workers"));
    }
}

#[test]
fn ca_step_is_thread_count_invariant() {
    let cfg = ModelConfig::test_medium();
    let pgrid = ProcessGrid::yz(2, 1).unwrap();
    let want = alg2_at(&cfg, pgrid, 1);
    for nt in THREADS {
        let got = alg2_at(&cfg, pgrid, nt);
        assert_bitwise(&got, &want, &format!("alg2 at {nt} workers"));
    }
}
