//! Property-based tests of the dynamical-core operators, driven by a
//! deterministic case generator.

use agcm_core::boundary;
use agcm_core::geometry::LocalGeometry;
use agcm_core::smoothing::{smooth_full, smooth_rows, RowMask};
use agcm_core::state::State;
use agcm_core::ModelConfig;
use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
use std::sync::Arc;

/// splitmix64 — deterministic case generator for the property loops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
    }
}

const CASES: u64 = 24;

fn geom() -> LocalGeometry {
    let cfg = ModelConfig::test_small();
    let grid = Arc::new(cfg.grid().unwrap());
    let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
    LocalGeometry::new(&cfg, grid, &d, 0, HaloWidths::uniform(3))
}

fn random_state(geom: &LocalGeometry, seed: u64) -> State {
    let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 17) % 2001) as f64 / 10.0 - 100.0
    };
    for k in 0..geom.nz as isize {
        for j in 0..geom.ny as isize {
            for i in 0..geom.nx as isize {
                st.u.set(i, j, k, next());
                st.v.set(i, j, k, next());
                st.phi.set(i, j, k, next());
            }
        }
    }
    for j in 0..geom.ny as isize {
        for i in 0..geom.nx as isize {
            st.psa.set(i, j, next());
        }
    }
    boundary::enforce_pole_v(&mut st, geom);
    boundary::fill_boundaries(&mut st, geom);
    st
}

#[test]
fn smoothing_splittings_exact() {
    // Eq. 14: both operator splittings of the smoothing reproduce the full
    // sweep on arbitrary states.
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let seed = rng.next_u64() % 100_000;
        let beta = rng.f64_in(0.01, 0.4);
        let geom = geom();
        let st = random_state(&geom, seed);
        let region = geom.interior();
        let mut full = State::like(&st);
        smooth_full(&geom, beta, &st, &mut full, region);
        for (a, b) in [
            (RowMask::L, RowMask::L_PRIME),
            (RowMask::R, RowMask::R_PRIME),
        ] {
            let mut split = State::like(&st);
            smooth_rows(&geom, beta, &st, &mut split, region, a, false);
            smooth_rows(&geom, beta, &st, &mut split, region, b, true);
            assert!(full.max_abs_diff(&split) <= 1e-10);
        }
    }
}

#[test]
fn smoothing_linear() {
    // smoothing is linear: S(a·x + b·y) = a·S(x) + b·S(y).
    for case in 0..CASES {
        let mut rng = Rng::new(100 + case);
        let seed = rng.next_u64() % 100_000;
        let a = rng.f64_in(-3.0, 3.0);
        let b = rng.f64_in(-3.0, 3.0);
        let geom = geom();
        let x = random_state(&geom, seed);
        let y = random_state(&geom, seed.wrapping_add(1));
        let region = geom.interior();
        // z = a·x + b·y over the full allocation (halos included, so the
        // stencil reads consistent data)
        let mut z = State::like(&x);
        for k in -3..geom.nz as isize + 3 {
            for j in -3..geom.ny as isize + 3 {
                for i in -3..geom.nx as isize + 3 {
                    z.u.set(i, j, k, a * x.u.get(i, j, k) + b * y.u.get(i, j, k));
                    z.phi
                        .set(i, j, k, a * x.phi.get(i, j, k) + b * y.phi.get(i, j, k));
                }
            }
        }
        let mut sz = State::like(&x);
        smooth_full(&geom, 0.1, &z, &mut sz, region);
        let mut sx = State::like(&x);
        smooth_full(&geom, 0.1, &x, &mut sx, region);
        let mut sy = State::like(&x);
        smooth_full(&geom, 0.1, &y, &mut sy, region);
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    let want = a * sx.u.get(i, j, k) + b * sy.u.get(i, j, k);
                    assert!((sz.u.get(i, j, k) - want).abs() <= 1e-7 * (1.0 + want.abs()));
                    let want = a * sx.phi.get(i, j, k) + b * sy.phi.get(i, j, k);
                    assert!((sz.phi.get(i, j, k) - want).abs() <= 1e-7 * (1.0 + want.abs()));
                }
            }
        }
    }
}

#[test]
fn boundary_fill_idempotent() {
    // boundary filling is idempotent: applying it twice equals once.
    for case in 0..CASES {
        let mut rng = Rng::new(200 + case);
        let seed = rng.next_u64() % 100_000;
        let geom = geom();
        let mut st = random_state(&geom, seed);
        boundary::fill_boundaries(&mut st, &geom);
        let once = st.clone();
        boundary::fill_boundaries(&mut st, &geom);
        // compare over the full allocated arrays
        assert_eq!(once.u.raw(), st.u.raw());
        assert_eq!(once.v.raw(), st.v.raw());
        assert_eq!(once.phi.raw(), st.phi.raw());
    }
}

#[test]
fn midpoint_is_half_sum() {
    // state algebra: midpoint == lincomb with 0.5 factors.
    for case in 0..CASES {
        let mut rng = Rng::new(300 + case);
        let seed = rng.next_u64() % 100_000;
        let geom = geom();
        let a = random_state(&geom, seed);
        let b = random_state(&geom, seed.wrapping_add(7));
        let region = geom.interior();
        let mut m = State::like(&a);
        m.midpoint_on(&a, &b, &region);
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    let want = 0.5 * (a.phi.get(i, j, k) + b.phi.get(i, j, k));
                    assert!((m.phi.get(i, j, k) - want).abs() <= 1e-12 * (1.0 + want.abs()));
                }
            }
        }
    }
}

#[test]
fn divergence_conserves_mass() {
    // the divergence D(P) of any state sums (area-weighted) to ~zero —
    // global mass is never created by the transformed divergence.
    for case in 0..CASES {
        let mut rng = Rng::new(400 + case);
        let seed = rng.next_u64() % 100_000;
        let geom = geom();
        let st = random_state(&geom, seed);
        let grid = Arc::clone(&geom.grid);
        let sa = agcm_core::stdatm::StandardAtmosphere::new(&grid);
        let mut diag = agcm_core::diag::Diag::new(&geom);
        let ny = geom.ny as isize;
        diag.update_surface(&geom, &sa, &st, -1, ny + 1);
        diag.update_dp(&geom, &st, 0, ny, 0, geom.nz as isize, 0);
        for k in 0..geom.nz as isize {
            let mut total = 0.0;
            let mut scale = 0.0;
            for j in 0..ny {
                let w = geom.sin_c(j);
                for i in 0..geom.nx as isize {
                    total += w * diag.dp.get(i, j, k);
                    scale += w * diag.dp.get(i, j, k).abs();
                }
            }
            assert!(
                total.abs() <= 1e-10 * scale.max(1e-10),
                "level {k}: {total}"
            );
        }
    }
}
