//! Declared-vs-observed footprint certification (feature `access-sanitizer`).
//!
//! Every hot kernel declares its per-field read/write offset boxes in
//! [`agcm_core::access`]; the static dataflow proof in `agcm-verify` trusts
//! those declarations.  These tests close the loop at runtime: the mesh
//! access sanitizer shadow-records the index ranges each kernel *actually*
//! touches, and the observed ranges must sit inside the declared boxes
//! dilated around the compute region — zero diffs, or the declaration (and
//! hence the proof) has rotted relative to the code.
//!
//! Reads of a field the kernel itself writes (e.g. `apply_c` summing the
//! `dp` rows it just produced) are checked against the union of the read
//! and write boxes: self-produced data needs no halo.

#![cfg(feature = "access-sanitizer")]

use agcm_core::access::{self, AccessDir, OffsetBox};
use agcm_core::adaptation::adaptation_tendency;
use agcm_core::advection::advection_tendency;
use agcm_core::boundary;
use agcm_core::config::ModelConfig;
use agcm_core::diag::Diag;
use agcm_core::filterop::{build_filter, filter_state_local};
use agcm_core::serial::{Iteration, SerialModel};
use agcm_core::smoothing::smooth_full;
use agcm_core::stdatm::StandardAtmosphere;
use agcm_core::vertical::{apply_c, ZContext};
use agcm_core::{init, LocalGeometry, Region, State};
use agcm_fft::FilterScratch;
use agcm_mesh::sanitize::{self, FieldTouches, TouchRange};
use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// The sanitizer table is process-global; serialise the tests that use it.
fn lock() -> MutexGuard<'static, ()> {
    static L: OnceLock<Mutex<()>> = OnceLock::new();
    L.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn setup() -> (LocalGeometry, StandardAtmosphere, State, Diag) {
    let cfg = ModelConfig::test_small();
    let grid = Arc::new(cfg.grid().unwrap());
    let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
    let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(3));
    let sa = StandardAtmosphere::new(&grid);
    let mut state = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
    for k in 0..geom.nz as isize {
        for j in 0..geom.ny as isize {
            for i in 0..geom.nx as isize {
                let x = i as f64 * 0.7 + j as f64 * 0.3 + k as f64 * 0.1;
                state.u.set(i, j, k, 4.0 * x.sin());
                state.v.set(i, j, k, 4.0 * (x * 1.3).cos());
                state.phi.set(i, j, k, 80.0 * (x * 0.6).sin());
            }
        }
    }
    for j in 0..geom.ny as isize {
        for i in 0..geom.nx as isize {
            state.psa.set(i, j, 30.0 * ((i * j) as f64 * 0.05).sin());
        }
    }
    boundary::enforce_pole_v(&mut state, &geom);
    boundary::fill_boundaries(&mut state, &geom);
    let diag = Diag::new(&geom);
    (geom, sa, state, diag)
}

/// Fill `diag` (surface diagnostics + the `C` outputs) with the sanitizer
/// *off*, so only the kernel under test is recorded.
fn prep_diag(
    geom: &LocalGeometry,
    sa: &StandardAtmosphere,
    state: &State,
    diag: &mut Diag,
    region: Region,
) {
    diag.update_surface(geom, sa, state, region.y0 - 1, region.y1 + 1);
    apply_c(geom, sa, state, diag, region, &ZContext::Serial, true).unwrap();
}

fn track_state(state: &State, prefix: &str) {
    sanitize::track(state.u.sanitizer_key(), &format!("{prefix}u"));
    sanitize::track(state.v.sanitizer_key(), &format!("{prefix}v"));
    sanitize::track(state.phi.sanitizer_key(), &format!("{prefix}phi"));
    sanitize::track(state.psa.sanitizer_key(), &format!("{prefix}psa"));
}

fn track_diag(diag: &Diag) {
    sanitize::track(diag.dsa.sanitizer_key(), "dsa");
    sanitize::track(diag.dp.sanitizer_key(), "dp");
    sanitize::track(diag.vsum.sanitizer_key(), "vsum");
    sanitize::track(diag.gw.sanitizer_key(), "gw");
    sanitize::track(diag.phi_p.sanitizer_key(), "phi_p");
}

/// The allowed index box: `region` (always all owned x columns) dilated by
/// the declared offset box.
fn allowed(region: Region, b: &OffsetBox, nx: isize) -> TouchRange {
    TouchRange {
        imin: -(b.xm as isize),
        imax: nx - 1 + b.xp as isize,
        jmin: region.y0 - b.ym as isize,
        jmax: region.y1 - 1 + b.yp as isize,
        kmin: region.z0 - b.zm as isize,
        kmax: region.z1 - 1 + b.zp as isize,
    }
}

fn outside(t: &TouchRange, a: &TouchRange) -> bool {
    t.imin < a.imin
        || t.imax > a.imax
        || t.jmin < a.jmin
        || t.jmax > a.jmax
        || t.kmin < a.kmin
        || t.kmax > a.kmax
}

/// Diff one kernel's sanitizer report against its declared `AccessSpec`.
/// Fields named `out.<f>` are the kernel's output buffer for `<f>`.
/// Returns human-readable violations; the empty vector is certification.
fn footprint_diffs(
    op: &str,
    region: Region,
    nx: isize,
    report: &[(String, FieldTouches)],
) -> Vec<String> {
    let spec = access::spec(op).unwrap_or_else(|| panic!("no AccessSpec for `{op}`"));
    let mut diffs = Vec::new();
    for (name, t) in report {
        let field = name.strip_prefix("out.").unwrap_or(name);
        let rd = spec.access(field, AccessDir::Read);
        let wr = spec.access(field, AccessDir::Write);
        if let Some(got) = t.read {
            // self-produced data (read-back of this kernel's own writes)
            // needs no halo: allow the union of the two declared boxes
            let b = match (rd, wr) {
                (Some(r), Some(w)) => Some(r.bounds.union(&w.bounds)),
                (Some(r), None) => Some(r.bounds),
                (None, Some(w)) => Some(w.bounds),
                (None, None) => None,
            };
            match b {
                None => diffs.push(format!("{op}: undeclared READ of `{name}`: {got:?}")),
                Some(b) => {
                    let a = allowed(region, &b, nx);
                    if outside(&got, &a) {
                        diffs.push(format!(
                            "{op}: READ of `{name}` escapes declared box: got {got:?}, allowed {a:?}"
                        ));
                    }
                }
            }
        }
        if let Some(got) = t.write {
            match wr {
                None => diffs.push(format!("{op}: undeclared WRITE of `{name}`: {got:?}")),
                Some(w) => {
                    let a = allowed(region, &w.bounds, nx);
                    if outside(&got, &a) {
                        diffs.push(format!(
                            "{op}: WRITE of `{name}` escapes declared box: got {got:?}, allowed {a:?}"
                        ));
                    }
                }
            }
        }
    }
    diffs
}

fn assert_certified(op: &str, region: Region, nx: isize) {
    let report = sanitize::take_report();
    assert!(
        !report.is_empty(),
        "{op}: sanitizer recorded nothing — hooks not active?"
    );
    let diffs = footprint_diffs(op, region, nx, &report);
    assert!(
        diffs.is_empty(),
        "{op}: declared-vs-observed footprint diffs:\n  {}",
        diffs.join("\n  ")
    );
}

#[test]
fn adaptation_footprint_matches_declaration() {
    let _g = lock();
    sanitize::reset();
    let (geom, sa, state, mut diag) = setup();
    let region = geom.interior();
    prep_diag(&geom, &sa, &state, &mut diag, region);
    let mut tend = State::new(geom.nx, geom.ny, geom.nz, geom.halo);

    track_state(&state, "");
    track_diag(&diag);
    track_state(&tend, "out.");
    sanitize::enable();
    adaptation_tendency(&geom, &state, &diag, &mut tend, region);
    sanitize::disable();
    assert_certified("adaptation", region, geom.nx as isize);
}

#[test]
fn vertical_c_footprint_matches_declaration() {
    let _g = lock();
    sanitize::reset();
    let (geom, sa, state, mut diag) = setup();
    let region = geom.interior();
    // surface diagnostics are an input contract of `apply_c`, not part of
    // the declared kernel: prepare them unrecorded
    diag.update_surface(&geom, &sa, &state, region.y0 - 1, region.y1 + 1);

    track_state(&state, "");
    track_diag(&diag);
    sanitize::enable();
    apply_c(
        &geom,
        &sa,
        &state,
        &mut diag,
        region,
        &ZContext::Serial,
        true,
    )
    .unwrap();
    sanitize::disable();
    assert_certified("vertical.c", region, geom.nx as isize);
}

#[test]
fn advection_footprint_matches_declaration() {
    let _g = lock();
    sanitize::reset();
    let (geom, sa, state, mut diag) = setup();
    let region = geom.interior();
    prep_diag(&geom, &sa, &state, &mut diag, region);
    let mut tend = State::new(geom.nx, geom.ny, geom.nz, geom.halo);

    track_state(&state, "");
    track_diag(&diag);
    track_state(&tend, "out.");
    sanitize::enable();
    advection_tendency(&geom, &state, &diag, &mut tend, region);
    sanitize::disable();
    assert_certified("advection", region, geom.nx as isize);
}

#[test]
fn smoothing_footprint_matches_declaration() {
    let _g = lock();
    sanitize::reset();
    let (geom, _sa, state, _diag) = setup();
    let region = geom.interior();
    let mut dst = State::new(geom.nx, geom.ny, geom.nz, geom.halo);

    track_state(&state, "");
    track_state(&dst, "out.");
    sanitize::enable();
    smooth_full(&geom, 0.1, &state, &mut dst, region);
    sanitize::disable();
    // `smooth.s1` and `smooth.s2` share one declaration; certify against it
    assert_certified("smooth.s1", region, geom.nx as isize);
}

#[test]
fn filter_footprint_matches_declaration() {
    let _g = lock();
    sanitize::reset();
    let (geom, _sa, mut state, _diag) = setup();
    let region = geom.interior();
    let filter = build_filter(&geom, 60.0);
    let mut scratch = FilterScratch::new();

    track_state(&state, "");
    sanitize::enable();
    filter_state_local(&geom, &filter, &mut state, region, &mut scratch);
    sanitize::disable();
    assert_certified("filter", region, geom.nx as isize);
}

/// Full golden step: every access of the prognostic state over a whole
/// `SerialModel::step` (all sweeps, `C` runs, filter, smoothing *and* the
/// boundary maintenance between them) stays inside the planned halo
/// allocation — nothing ever reaches for data the halo plan does not hold.
#[test]
fn full_serial_step_stays_inside_planned_halos() {
    let _g = lock();
    sanitize::reset();
    let cfg = ModelConfig::test_small();
    let mut model = SerialModel::new(&cfg, Iteration::Approximate).unwrap();
    let jet = init::zonal_jet(model.geom(), 30.0);
    model.set_state(&jet);

    let halo = model.geom().halo;
    let (nx, ny, nz) = (
        model.geom().nx as isize,
        model.geom().ny as isize,
        model.geom().nz as isize,
    );
    track_state(&model.state, "");
    sanitize::enable();
    model.step();
    sanitize::disable();

    let alloc3 = TouchRange {
        imin: -(halo.xm as isize),
        imax: nx - 1 + halo.xp as isize,
        jmin: -(halo.ym as isize),
        jmax: ny - 1 + halo.yp as isize,
        kmin: -(halo.zm as isize),
        kmax: nz - 1 + halo.zp as isize,
    };
    let alloc2 = TouchRange {
        kmin: 0,
        kmax: 0,
        ..alloc3
    };
    let report = sanitize::take_report();
    assert!(!report.is_empty(), "step recorded nothing");
    let mut diffs = Vec::new();
    for (name, t) in &report {
        let alloc = if name == "psa" { &alloc2 } else { &alloc3 };
        for (kind, r) in [("READ", t.read), ("WRITE", t.write)] {
            if let Some(got) = r {
                if outside(&got, alloc) {
                    diffs.push(format!(
                        "step: {kind} of `{name}` outside halo allocation: {got:?} vs {alloc:?}"
                    ));
                }
            }
        }
    }
    assert!(diffs.is_empty(), "{}", diffs.join("\n"));
}

/// Negative control: an over-read outside the declared box must produce a
/// named diff — the certification cannot pass vacuously.
#[test]
fn over_read_is_reported_as_a_diff() {
    let _g = lock();
    sanitize::reset();
    let (geom, _sa, state, _diag) = setup();
    sanitize::track(state.u.sanitizer_key(), "u");
    sanitize::enable();
    // smooth.s1 declares `u` reads at (±2, 0, 0): y = −3 is an over-read
    let _ = state.u.get(-3, -3, 0);
    sanitize::disable();
    let diffs = footprint_diffs(
        "smooth.s1",
        geom.interior(),
        geom.nx as isize,
        &sanitize::take_report(),
    );
    assert_eq!(diffs.len(), 1, "{diffs:?}");
    assert!(diffs[0].contains("READ of `u`"), "{}", diffs[0]);
}

/// Negative control: touching a field the kernel never declared is a diff.
#[test]
fn undeclared_field_is_reported_as_a_diff() {
    let _g = lock();
    sanitize::reset();
    let (geom, _sa, state, diag) = setup();
    sanitize::track(diag.gw.sanitizer_key(), "gw");
    let _ = &state;
    sanitize::enable();
    let _ = diag.gw.get(0, 0, 0);
    sanitize::disable();
    // the smoothing spec has no `gw` entry at all
    let diffs = footprint_diffs(
        "smooth.s1",
        geom.interior(),
        geom.nx as isize,
        &sanitize::take_report(),
    );
    assert_eq!(diffs.len(), 1, "{diffs:?}");
    assert!(diffs[0].contains("undeclared READ of `gw`"), "{}", diffs[0]);
}
