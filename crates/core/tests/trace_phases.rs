//! Operator-phase attribution through the observability layer.
//!
//! * Algorithm 2 splits the smoothing operator into S1 (the former part,
//!   fused into the deep exchange and overlapped) and S2 (the later part on
//!   the frame strips) — the trace must report them as *separate* operator
//!   spans (§4.3.2).
//! * The approximate nonlinear iteration cuts the vertical collectives from
//!   `3M` to `2M` per step (§4.2.2) — visible through the phase-tagged
//!   collective-event log: every z-allgather carries `Phase::C`.

use agcm_comm::Universe;
use agcm_core::init;
use agcm_core::par::{Alg1Model, CaModel};
use agcm_core::ModelConfig;
use agcm_mesh::ProcessGrid;
use agcm_obs as obs;

fn cfg_for_ca() -> ModelConfig {
    let mut cfg = ModelConfig::test_medium();
    cfg.m_iters = 1; // deep halo fits the blocks
    cfg
}

#[test]
fn alg2_smoothing_split_reports_s1_and_s2_separately() {
    let _guard = obs::exclusive();
    obs::reset();
    obs::enable();
    let cfg = cfg_for_ca();
    Universe::run(4, move |comm| {
        let mut m = CaModel::new(&cfg, ProcessGrid::yz(2, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(m.geom(), 100.0, 1.0, 3);
        m.set_state(&ic);
        m.step(comm).unwrap(); // bootstrap: leaves a smoothing pending
        m.step(comm).unwrap(); // steady state: fused S1 + S2
    });
    obs::disable();
    let events = obs::drain();
    // steady-state step, operator spans only
    let ops: Vec<_> = events
        .iter()
        .filter(|e| e.step == 1 && e.kind == obs::SpanKind::Op)
        .collect();
    let s1: Vec<_> = ops.iter().filter(|e| e.phase == obs::Phase::S1).collect();
    let s2: Vec<_> = ops.iter().filter(|e| e.phase == obs::Phase::S2).collect();
    // one fused smoothing per rank: the former part under S1, the later
    // (edge rows + halo frame) under S2 — distinct phases, distinct sites
    assert_eq!(s1.len(), 4, "one S1 span per rank");
    assert_eq!(s2.len(), 4, "one S2 span per rank");
    assert!(s1.iter().all(|e| e.name == "smooth.former"));
    assert!(s2.iter().all(|e| e.name == "smooth.later"));
}

/// Count the phase-`C` collective events of the second (steady-state) step.
fn steady_c_collectives<FMK>(mk: FMK) -> Vec<usize>
where
    FMK: Fn(&mut agcm_comm::Communicator) -> Box<dyn FnMut(&agcm_comm::Communicator)> + Sync,
{
    Universe::run(2, move |comm| {
        comm.stats().set_event_logging(true); // per-event phases need the log
        let mut step = mk(comm);
        step(comm); // warm-up (bootstraps the CA cache)
        let e0 = comm.stats().collective_events().len();
        step(comm);
        comm.stats().collective_events()[e0..]
            .iter()
            .filter(|e| e.phase == obs::Phase::C)
            .count()
    })
}

#[test]
fn vertical_collectives_drop_from_3m_to_2m_in_phase_tags() {
    let cfg = cfg_for_ca(); // M = 1
    let m = cfg.m_iters;

    let cfg1 = cfg.clone();
    let alg1 = steady_c_collectives(move |comm| {
        let mut model = Alg1Model::new(&cfg1, ProcessGrid::yz(1, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        Box::new(move |c| model.step(c).unwrap())
    });
    let cfg2 = cfg.clone();
    let alg2 = steady_c_collectives(move |comm| {
        let mut model = CaModel::new(&cfg2, ProcessGrid::yz(1, 2).unwrap(), comm).unwrap();
        let ic = init::perturbed_rest(model.geom(), 100.0, 0.0, 1);
        model.set_state(&ic);
        Box::new(move |c| model.step(c).unwrap())
    });

    for &n in &alg1 {
        assert_eq!(n, 3 * m, "Alg 1: 3M z-allgathers per step, all tagged C");
    }
    for &n in &alg2 {
        assert_eq!(n, 2 * m, "Alg 2: 2M — one third of the C collectives cut");
    }
}
