//! Parallel **Algorithm 2** — the communication-avoiding algorithm (§4.4).
//!
//! Runs under the Y-Z decomposition only (`p_x = 1`), so the Fourier
//! filtering is communication-free (§4.2.1).  Per time step:
//!
//! * deep halos feed **groups of sweeps** between exchanges: with blocks
//!   large enough for the full `3M(+2)`-deep halo the schedule is the
//!   paper's — **two** exchanges per step instead of `3M + 4` — and with
//!   smaller blocks the group size `g` clamps (iteration-aligned, see
//!   [`crate::analysis::ca_group_size`]) and the frequency degrades
//!   gracefully to `⌈3M/g⌉ + ⌈3/g_a⌉ (+1)`,
//! * the first exchange fuses the **smoothing** of the previous step
//!   (§4.3.2: former smoothing overlaps the messages; later smoothing
//!   completes edge and halo rows after they arrive) and ships the cached
//!   `C` outputs (`vsum`, `g_w`, `φ'`) alongside ξ — 7 arrays, echoing the
//!   paper's "length of ξ being ten",
//! * the **approximate nonlinear iteration** (§4.2.2) runs the collective
//!   `C` twice per iteration (the first sub-update reuses the cached
//!   outputs), eliminating one third of the collective traffic,
//! * exchanges are split into post/compute/finish so computation overlaps
//!   communication (§4.3.1),
//! * halo sweeps are redundant: with validity `v` layers left, a sweep
//!   covers the interior dilated by `v − 1`.

use crate::analysis::ca_group_size;
use crate::config::ModelConfig;
use crate::dycore::{Engine, FilterCtx};
use crate::error::ModelError;
use crate::geometry::{frame, LocalGeometry, Region};
use crate::par::exchange::{state_fields, ExField, HaloExchanger, Pending};
use crate::smoothing::smooth_full;
use crate::state::State;
use crate::vertical::ZContext;
use agcm_comm::{CommResult, Communicator};
use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
use agcm_obs as obs;
use std::sync::Arc;

/// Parallel communication-avoiding algorithm (Algorithm 2).
pub struct CaModel {
    /// The shared engine.
    pub engine: Engine,
    /// Current state — **unsmoothed** after a step: the smoothing is fused
    /// into the next step (or applied by [`CaModel::finish`]).
    pub state: State,
    /// Completed steps.
    pub steps: usize,
    /// Whether `state` still awaits its smoothing.
    pub pending_smooth: bool,
    /// Adaptation sweeps per exchange (`3M` when the blocks allow it).
    pub group: usize,
    /// Whether the smoothing is fused into the first deep exchange.
    pub fused_smoothing: bool,
    /// Advection sweeps per exchange.
    pub group_adv: usize,
    /// Degraded (post-rollback) mode: blocking instead of overlapped split
    /// exchanges, and exact `C(ψ^{i-1})` instead of the Eq. 13 reuse.
    pub degraded: bool,
    exchanger: HaloExchanger,
    zcomm: Option<Communicator>,
    deep: HaloWidths,
    group_depth: HaloWidths,
    sweep_depth: HaloWidths,
    shallow: HaloWidths,
    smooth_depth: HaloWidths,
    // scratch
    psi: State,
    psi0: State,
    base: State,
    eta1: State,
    eta2: State,
    mid: State,
    tend: State,
}

impl CaModel {
    /// Build the CA model.  `pgrid` must be a Y-Z (or serial) grid; any
    /// block sizes are supported — the sweep-group size adapts.
    pub fn new(
        cfg: &ModelConfig,
        pgrid: ProcessGrid,
        comm: &mut Communicator,
    ) -> Result<Self, ModelError> {
        if pgrid.px() != 1 {
            return Err(ModelError::Config(
                "the communication-avoiding algorithm requires a Y-Z decomposition (p_x = 1)"
                    .into(),
            ));
        }
        if comm.size() != pgrid.size() {
            return Err(ModelError::Config(format!(
                "communicator size {} != process grid size {}",
                comm.size(),
                pgrid.size()
            )));
        }
        let (g, fuse, ga) = ca_group_size(cfg, &pgrid);
        // shared with the static schedule metadata so analyzer and
        // integrator cannot drift
        let depths = super::schedule::ca_depths(g, fuse, ga);
        let deep = depths.deep;
        let group_depth = depths.group;
        let sweep_depth = depths.sweep;
        let shallow = depths.shallow;
        let smooth_depth = depths.smooth;
        // allocate the max of every depth in use
        let halo = deep.max(shallow).max(smooth_depth);

        let grid = Arc::new(cfg.grid()?);
        let decomp = Decomposition::new(cfg.extents(), pgrid)?;
        let rank = comm.rank();
        let geom = LocalGeometry::new(cfg, Arc::clone(&grid), &decomp, rank, halo);
        let exchanger = HaloExchanger::new(decomp, rank);
        exchanger.validate_depth(deep).map_err(ModelError::Config)?;
        exchanger
            .validate_depth(shallow)
            .map_err(ModelError::Config)?;

        let (_, _py, pz) = pgrid.dims();
        let (_, cy, _cz) = pgrid.coords(rank);
        let zcomm = if pz > 1 {
            Some(comm.split(cy, rank)?)
        } else {
            None
        };

        let engine = Engine::new(cfg, geom, true);
        let state = State::new(engine.geom.nx, engine.geom.ny, engine.geom.nz, halo);
        let scratch = || State::like(&state);
        Ok(CaModel {
            psi: scratch(),
            psi0: scratch(),
            base: scratch(),
            eta1: scratch(),
            eta2: scratch(),
            mid: scratch(),
            tend: scratch(),
            engine,
            state,
            steps: 0,
            pending_smooth: false,
            group: g,
            fused_smoothing: fuse,
            group_adv: ga,
            degraded: false,
            exchanger,
            zcomm,
            deep,
            group_depth,
            sweep_depth,
            shallow,
            smooth_depth,
        })
    }

    /// Replace the state with an initial condition.
    pub fn set_state(&mut self, st: &State) {
        self.state.assign(st);
        self.engine.c_cached = false;
        self.pending_smooth = false;
    }

    /// Local geometry.
    pub fn geom(&self) -> &LocalGeometry {
        &self.engine.geom
    }

    /// Enter/leave degraded mode (rollback recovery): exchanges become
    /// blocking (no compute inside the communication window) and every
    /// adaptation sub-update recomputes `C` exactly instead of reusing the
    /// cached outputs — the most conservative schedule the model has.
    pub fn set_degraded(&mut self, on: bool) {
        self.degraded = on;
    }

    /// Enable checksum-framed halo payloads with validated, retrying
    /// receives (see [`crate::par::exchange::RetryPolicy`]).
    pub fn set_framed(&mut self, on: bool) {
        self.exchanger.set_framed(on);
    }

    /// Change the framed-receive retry policy.
    pub fn set_retry(&mut self, retry: crate::par::exchange::RetryPolicy) {
        self.exchanger.set_retry(retry);
    }

    /// Re-align communication sequence numbers after a rollback (must be
    /// called collectively with the same `epoch`): halo-exchange tags and
    /// the z-communicator's collective tags jump to an epoch-derived base
    /// so the re-run can never match stragglers of the aborted attempt.
    pub fn resync(&mut self, epoch: u64) {
        self.exchanger.resync(epoch);
        if let Some(z) = &self.zcomm {
            z.resync_collectives(epoch);
        }
    }

    /// Snapshot everything a bitwise restart needs: the prognostic state,
    /// the cached `C` outputs (`vsum`, `g_w`, `φ'` — Algorithm 2 reuses
    /// them across steps, Eq. 13), and the step-loop flags.
    pub fn capture(&self) -> crate::resilience::Checkpoint {
        crate::resilience::Checkpoint {
            step: self.steps as u64,
            state: self.state.clone(),
            vsum: Some(self.engine.diag.vsum.clone()),
            gw: Some(self.engine.diag.gw.clone()),
            phi_p: Some(self.engine.diag.phi_p.clone()),
            c_cached: self.engine.c_cached,
            pending_smooth: self.pending_smooth,
        }
    }

    /// Restore a [`Self::capture`]d snapshot bit-for-bit.
    pub fn restore(&mut self, ck: &crate::resilience::Checkpoint) {
        self.steps = ck.step as usize;
        self.state.clone_from(&ck.state);
        if let (Some(vsum), Some(gw), Some(phi_p)) = (&ck.vsum, &ck.gw, &ck.phi_p) {
            self.engine.diag.vsum.clone_from(vsum);
            self.engine.diag.gw.clone_from(gw);
            self.engine.diag.phi_p.clone_from(phi_p);
            self.engine.c_cached = ck.c_cached;
        } else {
            // no cached-C arrays in the checkpoint: recompute on first use
            self.engine.c_cached = false;
        }
        self.pending_smooth = ck.pending_smooth;
    }

    /// Completed halo exchanges (all steps).
    pub fn exchange_count(&self) -> u64 {
        self.exchanger.exchanges
    }

    /// Halo exchanges one step costs at steady state:
    /// `⌈3M/g⌉ + ⌈3/g_a⌉ (+1 when the smoothing is not fused)`.
    pub fn exchanges_per_step(&self) -> u64 {
        let m = self.engine.cfg.m_iters;
        let adapt = if self.group == 1 {
            3 * m as u64 // one exchange per sweep
        } else {
            (3 * m).div_ceil(self.group) as u64
        };
        let adv = 3usize.div_ceil(self.group_adv) as u64;
        adapt + adv + u64::from(!self.fused_smoothing)
    }

    /// post+S1-overlap+recv of the step's first (deep) exchange
    fn deep_exchange(&mut self, comm: &Communicator) -> CommResult<()> {
        self.engine.fill(&mut self.state);
        let pending = {
            let mut fields = [
                ExField::F3(&mut self.state.u),
                ExField::F3(&mut self.state.v),
                ExField::F3(&mut self.state.phi),
                ExField::F2(&mut self.state.psa),
                ExField::F2(&mut self.engine.diag.vsum),
                ExField::F3(&mut self.engine.diag.gw),
                ExField::F3(&mut self.engine.diag.phi_p),
            ];
            self.exchanger.post_sends(comm, self.deep, &mut fields)?
        };
        // --- overlap: former smoothing on D1 (no neighbour data needed) ---
        let grow = self.engine.geom.grow_sides();
        let (ny, nz) = (self.engine.geom.ny, self.engine.geom.nz);
        let d1 = Region {
            y0: if grow.north { 2 } else { 0 },
            y1: if grow.south {
                ny as isize - 2
            } else {
                ny as isize
            },
            z0: 0,
            z1: nz as isize,
        };
        if self.pending_smooth && self.fused_smoothing && !self.degraded {
            // this is the compute the deep exchange hides (§4.3.1/§4.3.2)
            let _ov = obs::span(obs::SpanKind::OverlapCompute, "overlap.smooth_former");
            let _s1 = obs::span_phase(obs::SpanKind::Op, obs::Phase::S1, "smooth.former");
            smooth_full(
                &self.engine.geom,
                self.engine.cfg.smooth_beta,
                &self.state,
                &mut self.psi0,
                d1,
            );
        }
        {
            let mut fields = [
                ExField::F3(&mut self.state.u),
                ExField::F3(&mut self.state.v),
                ExField::F3(&mut self.state.phi),
                ExField::F2(&mut self.state.psa),
                ExField::F2(&mut self.engine.diag.vsum),
                ExField::F3(&mut self.engine.diag.gw),
                ExField::F3(&mut self.engine.diag.phi_p),
            ];
            self.exchanger.finish_recvs(comm, pending, &mut fields)?;
        }
        if self.pending_smooth && self.fused_smoothing && self.degraded {
            // blocking mode: the same D1 smoothing, run outside the (now
            // closed) exchange window — it reads no halo data, so the
            // result is bitwise the one the overlapped schedule produces
            let _s1 = obs::span_phase(obs::SpanKind::Op, obs::Phase::S1, "smooth.former");
            smooth_full(
                &self.engine.geom,
                self.engine.cfg.smooth_beta,
                &self.state,
                &mut self.psi0,
                d1,
            );
        }
        self.engine.fill(&mut self.state);
        self.engine.diag.gw.wrap_x_halo();
        self.engine.diag.phi_p.wrap_x_halo();
        self.engine.diag.vsum.wrap_x_halo();
        // --- later smoothing: edge rows + (redundantly) the halo areas ---
        let halo = self.engine.geom.halo;
        let outer = self.engine.geom.interior().dilate(
            self.group as isize,
            self.group as isize,
            ny,
            nz,
            halo,
            grow,
        );
        if self.pending_smooth && self.fused_smoothing {
            let _s2 = obs::span_phase(obs::SpanKind::Op, obs::Phase::S2, "smooth.later");
            for strip in frame(&outer, &d1) {
                smooth_full(
                    &self.engine.geom,
                    self.engine.cfg.smooth_beta,
                    &self.state,
                    &mut self.psi0,
                    strip,
                );
            }
            self.psi.assign_on(&self.psi0, &outer);
        } else {
            self.psi.assign_on(&self.state, &outer);
        }
        Ok(())
    }

    /// exchange the cached-C trio + an adaptation state at group depth
    fn group_exchange(&mut self, comm: &Communicator) -> CommResult<()> {
        self.engine.fill(&mut self.psi);
        let mut fields = [
            ExField::F3(&mut self.psi.u),
            ExField::F3(&mut self.psi.v),
            ExField::F3(&mut self.psi.phi),
            ExField::F2(&mut self.psi.psa),
            ExField::F2(&mut self.engine.diag.vsum),
            ExField::F3(&mut self.engine.diag.gw),
            ExField::F3(&mut self.engine.diag.phi_p),
        ];
        self.exchanger
            .exchange(comm, self.group_depth, &mut fields)?;
        self.engine.diag.gw.wrap_x_halo();
        self.engine.diag.phi_p.wrap_x_halo();
        self.engine.diag.vsum.wrap_x_halo();
        Ok(())
    }

    /// Advance one time step (Algorithm 2 body, grouped-sweep form).
    pub fn step(&mut self, comm: &Communicator) -> CommResult<()> {
        obs::set_step(self.steps as u64);
        let _step = obs::span(obs::SpanKind::Step, "alg2.step");
        let m = self.engine.cfg.m_iters;
        let g = self.group;
        let ga = self.group_adv;
        let dt1 = self.engine.cfg.dt1;
        let dt2 = self.engine.cfg.dt2;
        let interior = self.engine.geom.interior();
        let grow = self.engine.geom.grow_sides();
        let (ny, nz) = (self.engine.geom.ny, self.engine.geom.nz);
        let halo = self.engine.geom.halo;
        let dil = |d: isize| interior.dilate(d, d, ny, nz, halo, grow);

        // ---- separate smoothing exchange when fusion does not fit --------
        if self.pending_smooth && !self.fused_smoothing {
            self.exchanger
                .exchange(comm, self.smooth_depth, &mut state_fields(&mut self.state))?;
            let _s = obs::span_phase(obs::SpanKind::Op, obs::Phase::S1, "smooth.full");
            self.engine.fill(&mut self.state);
            smooth_full(
                &self.engine.geom,
                self.engine.cfg.smooth_beta,
                &self.state,
                &mut self.psi0,
                interior,
            );
            self.state.assign(&self.psi0);
        }

        // ---- first deep exchange (+ fused smoothing) ----------------------
        self.deep_exchange(comm)?;
        let mut valid = g;

        // ---- 3M adaptation sweeps in groups -------------------------------
        for _iter in 0..m {
            let _itspan = obs::span(obs::SpanKind::Iter, "adaptation.iter");
            if valid == 0 {
                // iteration-aligned group boundary
                self.group_exchange(comm)?;
                valid = g;
            }
            self.base.copy_from(&self.psi);
            // degraded mode disables the Eq. 13 reuse: every sub-update
            // recomputes C(ψ^{i-1}) exactly
            let fresh1 = !self.engine.c_cached || self.degraded;
            // sub-update 1 (cached C)
            let region1 = dil(valid as isize - 1);
            {
                let zctx = match &self.zcomm {
                    Some(z) => ZContext::Parallel(z),
                    None => ZContext::Serial,
                };
                self.engine.adaptation_subupdate(
                    &self.base,
                    &mut self.psi,
                    &mut self.eta1,
                    &mut self.tend,
                    region1,
                    dt1,
                    fresh1,
                    &zctx,
                    &FilterCtx::Local,
                )?;
            }
            // sub-update 2 (fresh C)
            if g == 1 {
                self.exchanger.exchange(
                    comm,
                    self.sweep_depth,
                    &mut state_fields(&mut self.eta1),
                )?;
            }
            let region2 = if g == 1 {
                interior
            } else {
                dil(valid as isize - 2)
            };
            {
                let zctx = match &self.zcomm {
                    Some(z) => ZContext::Parallel(z),
                    None => ZContext::Serial,
                };
                self.engine.adaptation_subupdate(
                    &self.base,
                    &mut self.eta1,
                    &mut self.eta2,
                    &mut self.tend,
                    region2,
                    dt1,
                    true,
                    &zctx,
                    &FilterCtx::Local,
                )?;
            }
            // sub-update 3 (fresh C at the midpoint).  For g = 1 the
            // midpoint is computed on the interior only — its halos are
            // refreshed by the exchange just below.
            let mid_region = if g == 1 {
                interior
            } else {
                dil(valid as isize - 2)
            };
            self.mid.midpoint_on(&self.base, &self.eta2, &mid_region);
            if g == 1 {
                self.exchanger.exchange(
                    comm,
                    self.sweep_depth,
                    &mut state_fields(&mut self.mid),
                )?;
            }
            let region3 = if g == 1 {
                interior
            } else {
                dil(valid as isize - 3)
            };
            {
                let zctx = match &self.zcomm {
                    Some(z) => ZContext::Parallel(z),
                    None => ZContext::Serial,
                };
                // η₃ lands directly in eta1 — the old mem::replace
                // placeholder was never read (bitwise-identical result)
                self.engine.adaptation_subupdate(
                    &self.base,
                    &mut self.mid,
                    &mut self.eta1,
                    &mut self.tend,
                    region3,
                    dt1,
                    true,
                    &zctx,
                    &FilterCtx::Local,
                )?;
                self.psi.assign_on(&self.eta1, &region3);
            }
            valid = valid.saturating_sub(3);
        }

        // ================ advection: grouped the same way ==================
        self.engine.fill(&mut self.psi);
        // ψM's halos are stale until the exchange lands; the inner overlap
        // sweep only touches interior rows, so a pre-exchange copy serves
        // as its base, refreshed once the halos arrive
        self.base.copy_from(&self.psi);
        let pending: Pending = {
            let mut fields = [
                ExField::F3(&mut self.psi.u),
                ExField::F3(&mut self.psi.v),
                ExField::F3(&mut self.psi.phi),
                ExField::F2(&mut self.psi.psa),
                ExField::F3(&mut self.engine.diag.gw),
            ];
            self.exchanger.post_sends(comm, self.shallow, &mut fields)?
        };
        // overlap: sweep 1 on the inner part
        let dila = |d: isize| interior.dilate(d, d, ny, nz, self.shallow, grow);
        let outer1 = dila(ga as isize - 1);
        let inner1 = interior.shrink(1, 1);
        if !self.degraded {
            // inner-region sweep deliberately placed inside the exchange
            // window (§4.3.1)
            let _ov = obs::span(obs::SpanKind::OverlapCompute, "overlap.advection_inner");
            self.engine.advection_subupdate(
                &self.base,
                &mut self.psi,
                &mut self.eta1,
                &mut self.tend,
                inner1,
                dt2,
                &FilterCtx::Local,
            )?;
        }
        {
            let mut fields = [
                ExField::F3(&mut self.psi.u),
                ExField::F3(&mut self.psi.v),
                ExField::F3(&mut self.psi.phi),
                ExField::F2(&mut self.psi.psa),
                ExField::F3(&mut self.engine.diag.gw),
            ];
            self.exchanger.finish_recvs(comm, pending, &mut fields)?;
        }
        self.engine.diag.gw.wrap_x_halo();
        self.base.copy_from(&self.psi);
        if self.degraded {
            // blocking mode: the inner sweep runs after the exchange closes
            // (no compute inside the communication window)
            self.engine.advection_subupdate(
                &self.base,
                &mut self.psi,
                &mut self.eta1,
                &mut self.tend,
                inner1,
                dt2,
                &FilterCtx::Local,
            )?;
        }
        for strip in frame(&outer1, &inner1) {
            self.engine.advection_subupdate(
                &self.base,
                &mut self.psi,
                &mut self.eta1,
                &mut self.tend,
                strip,
                dt2,
                &FilterCtx::Local,
            )?;
        }
        let mut valida = ga - 1;
        // sweep 2
        if valida == 0 {
            let mut fields = [
                ExField::F3(&mut self.eta1.u),
                ExField::F3(&mut self.eta1.v),
                ExField::F3(&mut self.eta1.phi),
                ExField::F2(&mut self.eta1.psa),
                ExField::F3(&mut self.engine.diag.gw),
            ];
            self.exchanger.exchange(comm, self.shallow, &mut fields)?;
            self.engine.diag.gw.wrap_x_halo();
            valida = ga;
        }
        let region2 = dila(valida as isize - 1).shrink(0, 0);
        let region2 = Region {
            y0: region2.y0.max(interior.y0 - 1),
            y1: region2.y1.min(interior.y1 + 1),
            z0: region2.z0.max(interior.z0 - 1),
            z1: region2.z1.min(interior.z1 + 1),
        };
        self.engine.advection_subupdate(
            &self.base,
            &mut self.eta1,
            &mut self.eta2,
            &mut self.tend,
            region2,
            dt2,
            &FilterCtx::Local,
        )?;
        valida = valida.saturating_sub(1);
        // sweep 3 (midpoint)
        self.mid.midpoint_on(&self.base, &self.eta2, &region2);
        if valida == 0 {
            let mut fields = [
                ExField::F3(&mut self.mid.u),
                ExField::F3(&mut self.mid.v),
                ExField::F3(&mut self.mid.phi),
                ExField::F2(&mut self.mid.psa),
                ExField::F3(&mut self.engine.diag.gw),
            ];
            self.exchanger.exchange(comm, self.shallow, &mut fields)?;
            self.engine.diag.gw.wrap_x_halo();
        }
        self.engine.advection_subupdate(
            &self.base,
            &mut self.mid,
            &mut self.eta1,
            &mut self.tend,
            interior,
            dt2,
            &FilterCtx::Local,
        )?;

        // ================= physics; smoothing deferred =====================
        self.engine.apply_forcing(&mut self.eta1, interior);
        self.state.assign(&self.eta1);
        self.pending_smooth = true;
        self.steps += 1;
        Ok(())
    }

    /// Apply the deferred smoothing of the final step (Algorithm 2 line 30)
    /// with one shallow exchange.  Call once after the last [`Self::step`].
    pub fn finish(&mut self, comm: &Communicator) -> CommResult<()> {
        if !self.pending_smooth {
            return Ok(());
        }
        // stamp the epilogue with the step count, not the last step's
        // index: its exchange is not part of any steady-state step and
        // must not inflate that step's span counts in a trace
        obs::set_step(self.steps as u64);
        self.exchanger
            .exchange(comm, self.smooth_depth, &mut state_fields(&mut self.state))?;
        let _s = obs::span_phase(obs::SpanKind::Op, obs::Phase::S1, "smooth.full");
        self.engine.fill(&mut self.state);
        smooth_full(
            &self.engine.geom,
            self.engine.cfg.smooth_beta,
            &self.state,
            &mut self.psi0,
            self.engine.geom.interior(),
        );
        self.state.assign(&self.psi0);
        self.pending_smooth = false;
        Ok(())
    }

    /// Run `n` steps and apply the final smoothing.
    pub fn run(&mut self, comm: &Communicator, n: usize) -> CommResult<()> {
        for _ in 0..n {
            self.step(comm)?;
        }
        self.finish(comm)
    }
}

/// Gather the CA model's state to rank 0 (see
/// [`crate::par::alg1::gather_state_impl`]).
pub fn gather_ca_state(
    model: &CaModel,
    comm: &Communicator,
) -> CommResult<Option<crate::par::alg1::GlobalState>> {
    crate::par::alg1::gather_state_impl(&model.state, &model.engine.geom, comm)
}
