//! Halo exchange over the message-passing runtime.
//!
//! One *communication* in the paper's counting is one call pair
//! [`HaloExchanger::post_sends`] / [`HaloExchanger::finish_recvs`]: every
//! field is sent to every neighbour as its own message (the paper: "one
//! communication involves about 20 MPI_Isend and MPI_Recv operations (due
//! to the length of ξ being ten)"), and the gap between posting and
//! finishing is where computation overlaps communication (§4.3.1).
//!
//! The exchange depth is a parameter: Algorithm 1 exchanges one-sweep-deep
//! halos 13 times per step; the communication-avoiding Algorithm 2
//! exchanges `3M+2`-deep halos twice.

use crate::geometry::LocalGeometry;
use agcm_comm::{CommResult, Communicator};
use agcm_mesh::{Decomposition, ExchangePlan, Field2, Field3, HaloWidths};
use agcm_obs as obs;
use std::time::Duration;

/// Bounded retry-with-backoff for transient receive failures (injected
/// drops surface as timeouts, injected corruption as `CorruptPayload`;
/// both leave the clean payload in the mailbox, so a retry of the same
/// receive can succeed — see `agcm_comm::fault`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).  1 = no retries.
    pub max_attempts: u32,
    /// Sleep before attempt `n` is `backoff * n` (linear backoff).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
        }
    }
}

/// A field participating in an exchange.
pub enum ExField<'a> {
    /// A 3-D field (any level count — interface fields have `nz+1`).
    F3(&'a mut Field3),
    /// A 2-D surface field (replicated across z ranks; exchanged only with
    /// `dz = 0` neighbours).
    F2(&'a mut Field2),
}

/// Ticket returned by [`HaloExchanger::post_sends`], consumed by
/// [`HaloExchanger::finish_recvs`].
#[must_use]
pub struct Pending {
    seq: u64,
    depth: HaloWidths,
}

/// Per-rank halo exchange driver.
pub struct HaloExchanger {
    decomp: Decomposition,
    rank: usize,
    seq: u64,
    /// Communications completed (the paper's per-step frequency metric).
    pub exchanges: u64,
    /// Checksum-framed payloads + receive-side validation and retry
    /// (resilient mode; off by default so certified traffic is unchanged).
    framed: bool,
    retry: RetryPolicy,
    /// Memoized exchange plans keyed by `(depth, extents)` — a step cycles
    /// through a handful of depths, so plans are built once and reused.
    plans: Vec<CachedPlan>,
    /// Reusable pack staging buffer (zero steady-state allocation).
    pack_buf: Vec<f64>,
}

struct CachedPlan {
    depth: HaloWidths,
    extents: (usize, usize, usize),
    plan: ExchangePlan,
}

/// Direction-of-travel index for a neighbour offset, `0..27`.  Both sides of
/// a message compute it from the *sender's* offset: the receiver negates its
/// own offset to the sender.  Public so the static schedule analyzer
/// (`agcm-verify`) can reproduce wire tags without executing an exchange.
pub fn dir_index(o: (i32, i32, i32)) -> u32 {
    ((o.0 + 1) + 3 * (o.1 + 1) + 9 * (o.2 + 1)) as u32
}

/// Wire tag of one halo message: exchange sequence number (20 bits), the
/// sender's [`dir_index`] (5 bits) and the field's position in the exchange's
/// field list (3 bits).  This is the exact tag [`HaloExchanger`] puts on the
/// wire; `agcm-verify` recomputes it to pair sends with receives statically.
pub fn wire_tag(seq: u64, dir: u32, field: usize) -> u32 {
    debug_assert!(field < 8 && dir < 27);
    (((seq & 0xFFFFF) as u32) << 8) | (dir << 3) | field as u32
}

impl HaloExchanger {
    /// Create an exchanger for `rank` of `decomp`.
    pub fn new(decomp: Decomposition, rank: usize) -> Self {
        HaloExchanger {
            decomp,
            rank,
            seq: 0,
            exchanges: 0,
            framed: false,
            retry: RetryPolicy::default(),
            plans: Vec::new(),
            pack_buf: Vec::new(),
        }
    }

    /// Enable/disable checksum framing + receive validation and retry.
    pub fn set_framed(&mut self, on: bool) {
        self.framed = on;
    }

    /// Whether halo payloads are checksum-framed.
    pub fn framed(&self) -> bool {
        self.framed
    }

    /// Change the retry policy used by framed receives.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Jump the exchange sequence to an epoch-derived base (rollback
    /// recovery: tags of the re-run must not collide with stragglers of the
    /// aborted attempt; all ranks must resync with the same `epoch`).
    pub fn resync(&mut self, epoch: u64) {
        // 4096 exchanges per epoch, far above any rollback window; the
        // 20-bit seq field of `wire_tag` wraps after 256 epochs
        self.seq = epoch << 12;
    }

    /// Index of the memoized plan for `(depth, extents)`, building it on
    /// first use.  Linear scan: a run uses at most a handful of distinct
    /// keys (sweep/group/smooth depths × field shapes).
    fn plan_idx(&mut self, depth: HaloWidths, extents: (usize, usize, usize)) -> usize {
        if let Some(i) = self
            .plans
            .iter()
            .position(|c| c.depth == depth && c.extents == extents)
        {
            return i;
        }
        let plan = ExchangePlan::with_extents(&self.decomp, self.rank, depth, extents);
        self.plans.push(CachedPlan {
            depth,
            extents,
            plan,
        });
        self.plans.len() - 1
    }

    fn field_extents(f: &ExField<'_>) -> (usize, usize, usize) {
        match f {
            ExField::F3(f) => f.extents(),
            ExField::F2(f) => {
                let (nx, ny) = f.extents();
                (nx, ny, 1)
            }
        }
    }

    /// Post all sends for one exchange of the given fields with halo depth
    /// `depth`.  Returns a ticket for [`Self::finish_recvs`].  Compute may
    /// proceed between the two calls (overlap).
    pub fn post_sends(
        &mut self,
        comm: &Communicator,
        depth: HaloWidths,
        fields: &mut [ExField<'_>],
    ) -> CommResult<Pending> {
        let seq = self.seq;
        self.seq += 1;
        let mut span = obs::span(obs::SpanKind::ExchangePost, "halo.post");
        // pull the staging buffer out so the memoized plan can stay borrowed
        // while packing; restored below even on error
        let mut buf = std::mem::take(&mut self.pack_buf);
        let res = (|| -> CommResult<()> {
            for (fi, f) in fields.iter_mut().enumerate() {
                let pi = self.plan_idx(depth, Self::field_extents(f));
                let plan = &self.plans[pi].plan;
                for spec in plan.specs() {
                    let is2d = matches!(f, ExField::F2(_));
                    if is2d && spec.link.offset.2 != 0 {
                        continue;
                    }
                    buf.clear();
                    match f {
                        ExField::F3(f3) => {
                            f3.pack_box(
                                spec.send.x.clone(),
                                spec.send.y.clone(),
                                spec.send.z.clone(),
                                &mut buf,
                            );
                        }
                        ExField::F2(f2) => {
                            f2.pack_box(spec.send.x.clone(), spec.send.y.clone(), &mut buf);
                        }
                    }
                    let t = wire_tag(seq, dir_index(spec.link.offset), fi);
                    span.add_bytes(8 * buf.len() as u64);
                    if self.framed {
                        comm.send_framed(spec.link.rank, t, &buf)?;
                    } else {
                        comm.send(spec.link.rank, t, &buf)?;
                    }
                }
            }
            Ok(())
        })();
        self.pack_buf = buf;
        res.map(|()| Pending { seq, depth })
    }

    /// Receive and unpack every message of a pending exchange.  `fields`
    /// must be the same list (same order) passed to `post_sends`.
    pub fn finish_recvs(
        &mut self,
        comm: &Communicator,
        pending: Pending,
        fields: &mut [ExField<'_>],
    ) -> CommResult<()> {
        // one wait span per completed exchange: the overlap profile sums
        // these against OverlapCompute spans, and the schedule cross-check
        // counts them (one finish_recvs == one communication)
        let mut span = obs::span(obs::SpanKind::ExchangeWait, "halo.wait");
        for (fi, f) in fields.iter_mut().enumerate() {
            let pi = self.plan_idx(pending.depth, Self::field_extents(f));
            let plan = &self.plans[pi].plan;
            for spec in plan.specs() {
                let is2d = matches!(f, ExField::F2(_));
                if is2d && spec.link.offset.2 != 0 {
                    continue;
                }
                // the sender's direction is the negation of our offset
                let (dx, dy, dz) = spec.link.offset;
                let t = wire_tag(pending.seq, dir_index((-dx, -dy, -dz)), fi);
                let data = if self.framed {
                    let len = |r: &std::ops::Range<isize>| (r.end - r.start).max(0) as usize;
                    let expected = len(&spec.recv.x)
                        * len(&spec.recv.y)
                        * if is2d { 1 } else { len(&spec.recv.z) };
                    self.recv_validated(comm, spec.link.rank, t, expected)?
                } else {
                    comm.recv(spec.link.rank, t)?
                };
                span.add_bytes(8 * data.len() as u64);
                match f {
                    ExField::F3(f3) => {
                        let n = f3.unpack_box(
                            spec.recv.x.clone(),
                            spec.recv.y.clone(),
                            spec.recv.z.clone(),
                            &data,
                        );
                        debug_assert_eq!(n, data.len());
                    }
                    ExField::F2(f2) => {
                        let n = f2.unpack_box(spec.recv.x.clone(), spec.recv.y.clone(), &data);
                        debug_assert_eq!(n, data.len());
                    }
                }
            }
        }
        self.exchanges += 1;
        Ok(())
    }

    /// Checksum-validated receive with bounded retry: a transient failure
    /// (timeout from an injected drop, rejected corrupt frame) is retried
    /// up to the policy's budget with linear backoff, because the runtime
    /// keeps the clean payload queued.  Non-transient errors and exhausted
    /// budgets propagate to the caller (the rollback driver).
    fn recv_validated(
        &self,
        comm: &Communicator,
        src: usize,
        tag: u32,
        expected: usize,
    ) -> CommResult<Vec<f64>> {
        let mut attempt = 1;
        loop {
            match comm.recv_framed(src, tag, expected) {
                Ok(data) => return Ok(data),
                Err(e) if e.is_transient() && attempt < self.retry.max_attempts => {
                    comm.stats().record_retry();
                    obs::Registry::global().counter("comm.recv_retries").inc();
                    if !self.retry.backoff.is_zero() {
                        std::thread::sleep(self.retry.backoff * attempt);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Post + finish in one call (no overlap).
    pub fn exchange(
        &mut self,
        comm: &Communicator,
        depth: HaloWidths,
        fields: &mut [ExField<'_>],
    ) -> CommResult<()> {
        let pending = self.post_sends(comm, depth, fields)?;
        self.finish_recvs(comm, pending, fields)
    }

    /// Validate that `depth` fits inside every rank's local block along the
    /// decomposed axes (a deep halo cannot exceed a neighbour's interior).
    pub fn validate_depth(&self, depth: HaloWidths) -> Result<(), String> {
        let (nx, ny, nz) = self.decomp.global_extents();
        let (px, py, pz) = self.decomp.process_grid().dims();
        let min_block = |n: usize, p: usize| n / p; // smallest balanced block
        if px > 1 && depth.xm.max(depth.xp) > min_block(nx, px) {
            return Err(format!(
                "x halo depth {} exceeds smallest x block {}",
                depth.xm.max(depth.xp),
                min_block(nx, px)
            ));
        }
        if py > 1 && depth.ym.max(depth.yp) > min_block(ny, py) {
            return Err(format!(
                "y halo depth {} exceeds smallest y block {}",
                depth.ym.max(depth.yp),
                min_block(ny, py)
            ));
        }
        if pz > 1 && depth.zm.max(depth.zp) > min_block(nz, pz) {
            return Err(format!(
                "z halo depth {} exceeds smallest z block {}",
                depth.zm.max(depth.zp),
                min_block(nz, pz)
            ));
        }
        Ok(())
    }
}

/// Convenience: exchange the four prognostic components of a state.
pub fn state_fields<'a>(st: &'a mut crate::state::State) -> [ExField<'a>; 4] {
    [
        ExField::F3(&mut st.u),
        ExField::F3(&mut st.v),
        ExField::F3(&mut st.phi),
        ExField::F2(&mut st.psa),
    ]
}

/// Fill owned-neighbour halos of `st` and physical-boundary halos so a
/// region dilated up to `depth` can be swept (used by the models around
/// their exchanges).
pub fn fill_after_exchange(st: &mut crate::state::State, geom: &LocalGeometry, px1: bool) {
    crate::boundary::enforce_pole_v(st, geom);
    crate::boundary::fill_boundaries_no_wrap(st, geom);
    if px1 {
        st.wrap_x();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_comm::Universe;
    use agcm_mesh::ProcessGrid;

    fn decomp(py: usize, pz: usize) -> Decomposition {
        Decomposition::new((8, 12, 8), ProcessGrid::yz(py, pz).unwrap()).unwrap()
    }

    /// global value of field `fi` at (i, gj, gk)
    fn val(fi: usize, i: isize, gj: i64, gk: i64) -> f64 {
        (fi as f64 + 1.0) * 1000.0 + i as f64 + 10.0 * gj as f64 + 100.0 * gk as f64
    }

    #[test]
    fn exchange_fills_halos_with_neighbor_interiors() {
        let results = Universe::run(4, |comm| {
            let d = decomp(2, 2);
            let sub = d.subdomain(comm.rank());
            let (nx, ny, nz) = sub.extents();
            let h = HaloWidths::uniform(2);
            let mut f = Field3::new(nx, ny, nz, h);
            let mut g = Field2::new(nx, ny, h);
            for k in 0..nz as isize {
                for j in 0..ny as isize {
                    for i in 0..nx as isize {
                        let gj = sub.y.start as i64 + j as i64;
                        let gk = sub.z.start as i64 + k as i64;
                        f.set(i, j, k, val(0, i, gj, gk));
                        if k == 0 {
                            g.set(i, j, val(1, i, gj, 0));
                        }
                    }
                }
            }
            let mut ex = HaloExchanger::new(d.clone(), comm.rank());
            let mut fields = [ExField::F3(&mut f), ExField::F2(&mut g)];
            ex.exchange(comm, h, &mut fields).unwrap();
            // verify every halo cell facing a real neighbour
            let mut errs = 0;
            for k in -2..nz as isize + 2 {
                for j in -2..ny as isize + 2 {
                    let gj = sub.y.start as i64 + j as i64;
                    let gk = sub.z.start as i64 + k as i64;
                    let inside_y = (0..12).contains(&gj);
                    let inside_z = (0..8).contains(&gk);
                    let interior = (0..ny as isize).contains(&j) && (0..nz as isize).contains(&k);
                    if interior || !inside_y || !inside_z {
                        continue;
                    }
                    for i in 0..nx as isize {
                        if (f.get(i, j, k) - val(0, i, gj, gk)).abs() > 0.0 {
                            errs += 1;
                        }
                        if k == 0 && (g.get(i, j) - val(1, i, gj, 0)).abs() > 0.0 {
                            errs += 1;
                        }
                    }
                }
            }
            errs
        });
        assert!(results.iter().all(|&e| e == 0), "halo errors: {results:?}");
    }

    #[test]
    fn interface_field_with_extra_level() {
        // a gw-like field with nz+1 levels exchanges consistently
        let results = Universe::run(2, |comm| {
            let d = decomp(1, 2);
            let sub = d.subdomain(comm.rank());
            let (nx, ny, nz) = sub.extents();
            let h = HaloWidths {
                xm: 0,
                xp: 0,
                ym: 0,
                yp: 0,
                zm: 2,
                zp: 2,
            };
            let mut f = Field3::new(nx, ny, nz + 1, h);
            for k in 0..(nz + 1) as isize {
                for j in 0..ny as isize {
                    for i in 0..nx as isize {
                        // interface "global" index
                        let gk = sub.z.start as i64 + k as i64;
                        f.set(i, j, k, 7.0 * gk as f64 + i as f64);
                    }
                }
            }
            let mut ex = HaloExchanger::new(d, comm.rank());
            let mut fields = [ExField::F3(&mut f)];
            ex.exchange(comm, h, &mut fields).unwrap();
            // rank 0's bottom halo should hold rank 1's first interfaces
            if comm.rank() == 0 {
                let nzl = nz as isize;
                // rank 1 owns global levels starting at 4: its k=0 value
                // is 7*4; our halo k = nzl+1 receives its k = 0..2 —
                // wait: plan sends [0, zp) = first 2 levels of the nz+1
                // field, received into [nz+1, nz+1+2) — mapped here:
                let got = f.get(0, 0, nzl + 1);
                assert_eq!(got, 7.0 * 4.0);
                let got = f.get(0, 0, nzl + 2);
                assert_eq!(got, 7.0 * 5.0);
            }
            true
        });
        assert!(results.into_iter().all(|b| b));
    }

    #[test]
    fn overlap_post_then_finish() {
        let results = Universe::run(2, |comm| {
            let d = decomp(2, 1);
            let sub = d.subdomain(comm.rank());
            let (nx, ny, nz) = sub.extents();
            let h = HaloWidths {
                xm: 0,
                xp: 0,
                ym: 1,
                yp: 1,
                zm: 0,
                zp: 0,
            };
            let mut f = Field3::new(nx, ny, nz, h);
            f.fill(comm.rank() as f64 + 1.0);
            let mut ex = HaloExchanger::new(d, comm.rank());
            let mut fields = [ExField::F3(&mut f)];
            let pending = ex.post_sends(comm, h, &mut fields).unwrap();
            // ... computation would happen here ...
            let overlap_work: f64 = (0..100).map(|i| i as f64).sum();
            ex.finish_recvs(comm, pending, &mut fields).unwrap();
            assert_eq!(ex.exchanges, 1);
            let ExField::F3(f) = &fields[0] else { panic!() };
            let other = 2.0 - comm.rank() as f64;
            // halo toward the neighbour holds its value
            if comm.rank() == 0 {
                assert_eq!(f.get(0, ny as isize, 0), other);
            } else {
                assert_eq!(f.get(0, -1, 0), other);
            }
            overlap_work > 0.0
        });
        assert!(results.into_iter().all(|b| b));
    }

    /// FNV-1a over the raw f64 bits — cheap bitwise fingerprint so the test
    /// below compares whole fields without cloning them out of each rank.
    fn fnv1a_bits(data: &[f64]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for v in data {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    #[test]
    fn framed_exchange_is_bitwise_identical_and_counts_match() {
        // the resilient (framed) exchange must move exactly the same data
        // and record exactly the same certified traffic as the plain one
        let run = |framed: bool| {
            Universe::run(4, move |comm| {
                let d = decomp(2, 2);
                let sub = d.subdomain(comm.rank());
                let (nx, ny, nz) = sub.extents();
                let h = HaloWidths::uniform(2);
                let mut f = Field3::new(nx, ny, nz, h);
                for k in 0..nz as isize {
                    for j in 0..ny as isize {
                        for i in 0..nx as isize {
                            let gj = sub.y.start as i64 + j as i64;
                            let gk = sub.z.start as i64 + k as i64;
                            f.set(i, j, k, val(0, i, gj, gk));
                        }
                    }
                }
                let mut ex = HaloExchanger::new(d, comm.rank());
                ex.set_framed(framed);
                let mut fields = [ExField::F3(&mut f)];
                ex.exchange(comm, h, &mut fields).unwrap();
                (fnv1a_bits(f.raw()), comm.stats().snapshot())
            })
        };
        let plain = run(false);
        let resilient = run(true);
        for (p, r) in plain.iter().zip(&resilient) {
            assert_eq!(p.0, r.0, "framed exchange changed the data");
            assert_eq!(
                p.1, r.1,
                "framing must not perturb certified traffic counts"
            );
        }
    }

    #[test]
    fn framed_recv_retries_through_injected_drop_and_corruption() {
        use agcm_comm::FaultPlan;
        let results = Universe::run(2, |comm| {
            comm.install_faults(
                FaultPlan::parse(77, "drop:rank=0,user=1,nth=1;corrupt:rank=1,user=1,nth=1")
                    .unwrap(),
            );
            comm.set_timeout(std::time::Duration::from_millis(300));
            let d = decomp(2, 1);
            let sub = d.subdomain(comm.rank());
            let (nx, ny, nz) = sub.extents();
            let h = HaloWidths {
                xm: 0,
                xp: 0,
                ym: 2,
                yp: 2,
                zm: 0,
                zp: 0,
            };
            let mut f = Field3::new(nx, ny, nz, h);
            f.fill(comm.rank() as f64 + 1.0);
            let mut ex = HaloExchanger::new(d, comm.rank());
            ex.set_framed(true);
            let mut fields = [ExField::F3(&mut f)];
            ex.exchange(comm, h, &mut fields).unwrap();
            let got = if comm.rank() == 0 {
                f.get(0, ny as isize, 0)
            } else {
                f.get(0, -1, 0)
            };
            (got, comm.stats().fault_snapshot())
        });
        // both faults fired and the exchange still delivered clean halos
        assert_eq!(results[0].0, 2.0);
        assert_eq!(results[1].0, 1.0);
        assert_eq!(results[0].1.dropped, 1);
        assert_eq!(results[1].1.corrupted, 1);
        let retries: u64 = results.iter().map(|r| r.1.retries).sum();
        assert!(retries >= 2, "both faults need retries, saw {retries}");
    }

    #[test]
    fn resync_jumps_sequence() {
        let d = decomp(2, 2);
        let mut ex = HaloExchanger::new(d, 0);
        assert_eq!(ex.seq, 0);
        ex.resync(3);
        assert_eq!(ex.seq, 3 << 12);
    }

    #[test]
    fn depth_validation() {
        let d = decomp(3, 2); // y blocks of 4, z blocks of 4
        let ex = HaloExchanger::new(d, 0);
        assert!(ex.validate_depth(HaloWidths::uniform(4)).is_ok());
        assert!(ex.validate_depth(HaloWidths::uniform(5)).is_err());
        // undecomposed axes are unconstrained
        let mut h = HaloWidths::uniform(2);
        h.xm = 100;
        h.xp = 100;
        assert!(ex.validate_depth(h).is_ok());
    }

    #[test]
    fn consecutive_exchanges_do_not_cross_match() {
        // two exchanges back-to-back with different data: sequence-stamped
        // tags must keep them separate even when one rank runs ahead
        let results = Universe::run(2, |comm| {
            let d = decomp(2, 1);
            let sub = d.subdomain(comm.rank());
            let (nx, ny, nz) = sub.extents();
            let h = HaloWidths {
                xm: 0,
                xp: 0,
                ym: 1,
                yp: 1,
                zm: 0,
                zp: 0,
            };
            let mut f = Field3::new(nx, ny, nz, h);
            let mut ex = HaloExchanger::new(d, comm.rank());
            f.fill(10.0 + comm.rank() as f64);
            {
                let mut fields = [ExField::F3(&mut f)];
                ex.exchange(comm, h, &mut fields).unwrap();
            }
            let first = if comm.rank() == 0 {
                f.get(0, ny as isize, 0)
            } else {
                f.get(0, -1, 0)
            };
            // mutate and exchange again
            for j in 0..ny as isize {
                for i in 0..nx as isize {
                    f.set(i, j, 0, 20.0 + comm.rank() as f64);
                }
            }
            {
                let mut fields = [ExField::F3(&mut f)];
                ex.exchange(comm, h, &mut fields).unwrap();
            }
            let second = if comm.rank() == 0 {
                f.get(0, ny as isize, 0)
            } else {
                f.get(0, -1, 0)
            };
            (first, second)
        });
        assert_eq!(results[0], (11.0, 21.0));
        assert_eq!(results[1], (10.0, 20.0));
    }
}
