//! Machine-readable per-step communication schedules of both parallel
//! algorithms.
//!
//! [`alg1_step`] and [`alg2_step`] list, in program order, every halo
//! exchange and collective one time step performs at steady state — the
//! metadata [`super::alg1`] and [`super::alg2`] execute and that the static
//! analyzer (`agcm-verify`) turns into a send/recv/collective event graph
//! without running a single rank.  The halo depths here are *the* depths the
//! integrators use ([`depth_sweep`], [`depth_smooth`], [`ca_depths`]), so
//! schedule metadata and executing code cannot drift apart.
//!
//! "Steady state" means: the operator-`C` cache is warm (`engine.c_cached`,
//! so Algorithm 2's first sub-update reuses cached outputs — the §4.2.2
//! approximate iteration) and, for Algorithm 2, the previous step left a
//! smoothing pending (every step after the first).  The exchange `seq`
//! numbering below starts at 0 for the step's first exchange; the running
//! counter of a live [`super::HaloExchanger`] is offset by a constant that
//! is identical on every rank, so tag matching is unaffected.

use crate::analysis::{ca_group_size, CaMode};
use crate::config::ModelConfig;
use agcm_mesh::{HaloWidths, ProcessGrid};

/// Shape of one exchanged array, relative to the rank's subdomain extents
/// `(nxl, nyl, nzl)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldShape {
    /// A prognostic 3-D field: `(nxl, nyl, nzl)`.
    Level3,
    /// An interface 3-D field (`g_w`): `(nxl, nyl, nzl + 1)`.
    Interface3,
    /// A surface 2-D field (`p_sa`, `vsum`): `(nxl, nyl, 1)`; never
    /// exchanged along z.
    Surface2,
}

impl FieldShape {
    /// Local extents of the field on a subdomain of the given extents.
    pub fn extents(self, sub: (usize, usize, usize)) -> (usize, usize, usize) {
        let (nx, ny, nz) = sub;
        match self {
            FieldShape::Level3 => (nx, ny, nz),
            FieldShape::Interface3 => (nx, ny, nz + 1),
            FieldShape::Surface2 => (nx, ny, 1),
        }
    }

    /// Whether the field is two-dimensional (skips z-offset neighbours).
    pub fn is_2d(self) -> bool {
        matches!(self, FieldShape::Surface2)
    }
}

/// The 4-array state exchange: `u`, `v`, `φ`, `p_sa`.
pub const STATE4: &[FieldShape] = &[
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Surface2,
];

/// The 5-array advection exchange: `STATE4` + the frozen `g_w`.
pub const ADV5: &[FieldShape] = &[
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Surface2,
    FieldShape::Interface3,
];

/// The 7-array deep/group exchange of Algorithm 2: `STATE4` + the cached
/// `C` outputs `vsum`, `g_w`, `φ'` (the paper's "length of ξ being ten").
pub const DEEP7: &[FieldShape] = &[
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Surface2,
    FieldShape::Surface2,
    FieldShape::Interface3,
    FieldShape::Level3,
];

/// One halo exchange in the step schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeOp {
    /// What the exchange carries (for reports).
    pub label: &'static str,
    /// Halo depth of the exchange.
    pub depth: HaloWidths,
    /// The arrays, in wire order: the field index of the tag is the
    /// position in this slice.
    pub fields: &'static [FieldShape],
    /// Whether the integrator splits it into post/compute/finish (§4.3.1).
    pub overlapped: bool,
}

/// One entry of a step's communication schedule, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOp {
    /// A halo exchange; consumes one exchange `seq` number.
    Exchange(ExchangeOp),
    /// One allgather of column block sums over the z-subcommunicator (the
    /// operator `C`, §4.2.2).  Present only when `p_z > 1`.
    ZAllgather,
    /// One alltoallv leg of the distributed polar filter over the
    /// x-subcommunicator (X-Y decomposition only; two per application).
    FilterTranspose,
}

/// Halo depth of the adaptation/advection sweeps of Algorithm 1 (x needs
/// the full table extent 3; y/z one layer).
pub fn depth_sweep() -> HaloWidths {
    HaloWidths {
        xm: 3,
        xp: 3,
        ym: 1,
        yp: 1,
        zm: 1,
        zp: 1,
    }
}

/// Halo depth of the smoothing exchange, `(2, 2, 0)` (Table 3).
pub fn depth_smooth() -> HaloWidths {
    HaloWidths {
        xm: 2,
        xp: 2,
        ym: 2,
        yp: 2,
        zm: 0,
        zp: 0,
    }
}

/// The five halo depths of Algorithm 2, derived from the sweep-group sizes
/// `(g, fuse, ga)` of [`ca_group_size`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaDepths {
    /// First exchange of the step: `g (+2 when the smoothing is fused)`
    /// layers in y, `g` in z.
    pub deep: HaloWidths,
    /// Iteration-aligned group boundary exchanges: `g` layers.
    pub group: HaloWidths,
    /// Mid-iteration refresh when `g = 1`: one layer.
    pub sweep: HaloWidths,
    /// Advection exchanges: `ga` layers.
    pub shallow: HaloWidths,
    /// The separate smoothing exchange when fusion does not fit.
    pub smooth: HaloWidths,
}

/// Compute [`CaDepths`] for group sizes `(g, fuse, ga)`.
pub fn ca_depths(g: usize, fuse: bool, ga: usize) -> CaDepths {
    let ysm = g + if fuse { 2 } else { 0 };
    CaDepths {
        deep: HaloWidths {
            xm: 3,
            xp: 3,
            ym: ysm,
            yp: ysm,
            zm: g,
            zp: g,
        },
        group: HaloWidths {
            xm: 3,
            xp: 3,
            ym: g,
            yp: g,
            zm: g,
            zp: g,
        },
        sweep: depth_sweep(),
        shallow: HaloWidths {
            xm: 3,
            xp: 3,
            ym: ga,
            yp: ga,
            zm: ga,
            zp: ga,
        },
        smooth: depth_smooth(),
    }
}

/// Communication schedule of one Algorithm 1 step ([`super::Alg1Model`])
/// under `pgrid`: `3M + 4` exchanges, `3M` z-allgathers when `p_z > 1` and
/// `2(3M + 3)` filter transposes when `p_x > 1`.
pub fn alg1_step(cfg: &ModelConfig, pgrid: &ProcessGrid) -> Vec<StepOp> {
    let (px, _, pz) = pgrid.dims();
    let mut ops = Vec::new();
    let sweep = depth_sweep();
    // one filter application = forward + inverse transpose
    let filter = |ops: &mut Vec<StepOp>| {
        if px > 1 {
            ops.push(StepOp::FilterTranspose);
            ops.push(StepOp::FilterTranspose);
        }
    };
    for _iter in 0..cfg.m_iters {
        for label in ["adapt ψ", "adapt η₁", "adapt mid"] {
            ops.push(StepOp::Exchange(ExchangeOp {
                label,
                depth: sweep,
                fields: STATE4,
                overlapped: false,
            }));
            // the sub-update runs C fresh (exact iteration) + one filter
            if pz > 1 {
                ops.push(StepOp::ZAllgather);
            }
            filter(&mut ops);
        }
    }
    // advection: the frozen g_w travels with the first exchange
    ops.push(StepOp::Exchange(ExchangeOp {
        label: "advect ψ+g_w",
        depth: sweep,
        fields: ADV5,
        overlapped: false,
    }));
    filter(&mut ops);
    for label in ["advect η₁", "advect mid"] {
        ops.push(StepOp::Exchange(ExchangeOp {
            label,
            depth: sweep,
            fields: STATE4,
            overlapped: false,
        }));
        filter(&mut ops);
    }
    ops.push(StepOp::Exchange(ExchangeOp {
        label: "smooth",
        depth: depth_smooth(),
        fields: STATE4,
        overlapped: false,
    }));
    ops
}

/// Communication schedule of one Algorithm 2 step ([`super::CaModel`]) at
/// steady state: `⌈3M/g⌉ + ⌈3/g_a⌉ (+1 when the smoothing is not fused)`
/// exchanges and `2M` z-allgathers — the paper's 2 exchanges and the 1/3
/// collective reduction when the full depth fits (`g = 3M`, fused).
///
/// `mode` selects the executable grouped schedule or the paper's idealized
/// full-depth accounting (see [`CaMode`]); both orderings mirror
/// `CaModel::step` exactly: an exchange lands before sweep `s` iff
/// `(s-1) % g == 0`, and sub-updates 2 and 3 of each iteration run the
/// collective `C` fresh (§4.2.2).
pub fn alg2_step(cfg: &ModelConfig, pgrid: &ProcessGrid, mode: CaMode) -> Vec<StepOp> {
    let (_, _, pz) = pgrid.dims();
    let m = cfg.m_iters;
    let total = 3 * m;
    let (g, fuse, ga) = match mode {
        CaMode::Grouped => ca_group_size(cfg, pgrid),
        CaMode::PaperIdeal => (total, true, 3),
    };
    let d = ca_depths(g, fuse, ga);
    let mut ops = Vec::new();
    if !fuse {
        ops.push(StepOp::Exchange(ExchangeOp {
            label: "smooth (separate)",
            depth: d.smooth,
            fields: STATE4,
            overlapped: false,
        }));
    }
    for s in 1..=total {
        if (s - 1) % g == 0 {
            let op = if s == 1 {
                ExchangeOp {
                    label: "deep ξ (fused smoothing)",
                    depth: d.deep,
                    fields: DEEP7,
                    overlapped: true,
                }
            } else if (s - 1) % 3 == 0 {
                ExchangeOp {
                    label: "group ξ",
                    depth: d.group,
                    fields: DEEP7,
                    overlapped: false,
                }
            } else {
                // g = 1 only: mid-iteration refresh of the evaluation state
                ExchangeOp {
                    label: "sweep refresh",
                    depth: d.sweep,
                    fields: STATE4,
                    overlapped: false,
                }
            };
            ops.push(StepOp::Exchange(op));
        }
        // sub-updates 2 and 3 run C fresh; sub-update 1 reuses the cache
        if s % 3 != 1 && pz > 1 {
            ops.push(StepOp::ZAllgather);
        }
    }
    for s in 1..=3usize {
        if (s - 1) % ga == 0 {
            ops.push(StepOp::Exchange(ExchangeOp {
                label: "advect ψ+g_w",
                depth: d.shallow,
                fields: ADV5,
                overlapped: s == 1,
            }));
        }
    }
    ops
}

/// Number of exchanges in a schedule.
pub fn exchange_count(ops: &[StepOp]) -> u64 {
    ops.iter()
        .filter(|o| matches!(o, StepOp::Exchange(_)))
        .count() as u64
}

/// Number of collective calls (z-allgathers + filter transposes).
pub fn collective_count(ops: &[StepOp]) -> u64 {
    ops.iter()
        .filter(|o| matches!(o, StepOp::ZAllgather | StepOp::FilterTranspose))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelConfig {
        ModelConfig::paper_50km()
    }

    #[test]
    fn alg1_yz_has_13_exchanges_and_3m_collectives() {
        let c = cfg();
        let ops = alg1_step(&c, &ProcessGrid::yz(16, 8).unwrap());
        assert_eq!(exchange_count(&ops), 3 * c.m_iters as u64 + 4);
        assert_eq!(collective_count(&ops), 3 * c.m_iters as u64);
    }

    #[test]
    fn alg1_xy_has_filter_transposes_instead() {
        let c = cfg();
        let ops = alg1_step(&c, &ProcessGrid::xy(16, 8).unwrap());
        assert_eq!(exchange_count(&ops), 3 * c.m_iters as u64 + 4);
        // 2 transposes per application, 3M + 3 applications, no allgathers
        assert_eq!(collective_count(&ops), 2 * (3 * c.m_iters as u64 + 3));
    }

    #[test]
    fn alg2_ideal_is_two_exchanges_and_2m_collectives() {
        let c = cfg();
        let pg = ProcessGrid::yz(16, 8).unwrap();
        let ops = alg2_step(&c, &pg, CaMode::PaperIdeal);
        assert_eq!(exchange_count(&ops), 2); // the paper's 13 -> 2
        assert_eq!(collective_count(&ops), 2 * c.m_iters as u64);
    }

    #[test]
    fn alg2_grouped_matches_exchanges_per_step_formula() {
        let c = cfg();
        for (py, pz) in [(16, 8), (64, 8), (128, 8)] {
            let pg = ProcessGrid::yz(py, pz).unwrap();
            let (g, fuse, ga) = ca_group_size(&c, &pg);
            let adapt = if g == 1 {
                3 * c.m_iters as u64
            } else {
                (3 * c.m_iters).div_ceil(g) as u64
            };
            let expect = adapt + 3u64.div_ceil(ga as u64) + u64::from(!fuse);
            let ops = alg2_step(&c, &pg, CaMode::Grouped);
            assert_eq!(exchange_count(&ops), expect, "py={py} pz={pz}");
        }
    }

    #[test]
    fn serial_grids_have_no_collectives() {
        let c = cfg();
        let ops = alg1_step(&c, &ProcessGrid::serial());
        assert_eq!(collective_count(&ops), 0);
        let ops = alg2_step(&c, &ProcessGrid::serial(), CaMode::Grouped);
        assert_eq!(collective_count(&ops), 0);
    }
}
