//! Machine-readable per-step communication schedules of both parallel
//! algorithms.
//!
//! [`alg1_step`] and [`alg2_step`] list, in program order, every halo
//! exchange and collective one time step performs at steady state — the
//! metadata [`super::alg1`] and [`super::alg2`] execute and that the static
//! analyzer (`agcm-verify`) turns into a send/recv/collective event graph
//! without running a single rank.  The halo depths here are *the* depths the
//! integrators use ([`depth_sweep`], [`depth_smooth`], [`ca_depths`]), so
//! schedule metadata and executing code cannot drift apart.
//!
//! "Steady state" means: the operator-`C` cache is warm (`engine.c_cached`,
//! so Algorithm 2's first sub-update reuses cached outputs — the §4.2.2
//! approximate iteration) and, for Algorithm 2, the previous step left a
//! smoothing pending (every step after the first).  The exchange `seq`
//! numbering below starts at 0 for the step's first exchange; the running
//! counter of a live [`super::HaloExchanger`] is offset by a constant that
//! is identical on every rank, so tag matching is unaffected.

use crate::analysis::{ca_group_size, CaMode};
use crate::config::ModelConfig;
use agcm_mesh::{HaloWidths, ProcessGrid};

/// Shape of one exchanged array, relative to the rank's subdomain extents
/// `(nxl, nyl, nzl)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldShape {
    /// A prognostic 3-D field: `(nxl, nyl, nzl)`.
    Level3,
    /// An interface 3-D field (`g_w`): `(nxl, nyl, nzl + 1)`.
    Interface3,
    /// A surface 2-D field (`p_sa`, `vsum`): `(nxl, nyl, 1)`; never
    /// exchanged along z.
    Surface2,
}

impl FieldShape {
    /// Local extents of the field on a subdomain of the given extents.
    pub fn extents(self, sub: (usize, usize, usize)) -> (usize, usize, usize) {
        let (nx, ny, nz) = sub;
        match self {
            FieldShape::Level3 => (nx, ny, nz),
            FieldShape::Interface3 => (nx, ny, nz + 1),
            FieldShape::Surface2 => (nx, ny, 1),
        }
    }

    /// Whether the field is two-dimensional (skips z-offset neighbours).
    pub fn is_2d(self) -> bool {
        matches!(self, FieldShape::Surface2)
    }
}

/// The 4-array state exchange: `u`, `v`, `φ`, `p_sa`.
pub const STATE4: &[FieldShape] = &[
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Surface2,
];

/// The 5-array advection exchange: `STATE4` + the frozen `g_w`.
pub const ADV5: &[FieldShape] = &[
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Surface2,
    FieldShape::Interface3,
];

/// The 7-array deep/group exchange of Algorithm 2: `STATE4` + the cached
/// `C` outputs `vsum`, `g_w`, `φ'` (the paper's "length of ξ being ten").
pub const DEEP7: &[FieldShape] = &[
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Level3,
    FieldShape::Surface2,
    FieldShape::Surface2,
    FieldShape::Interface3,
    FieldShape::Level3,
];

/// One halo exchange in the step schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeOp {
    /// What the exchange carries (for reports).
    pub label: &'static str,
    /// Halo depth of the exchange.
    pub depth: HaloWidths,
    /// The arrays, in wire order: the field index of the tag is the
    /// position in this slice.
    pub fields: &'static [FieldShape],
    /// Whether the integrator splits it into post/compute/finish (§4.3.1).
    pub overlapped: bool,
}

/// Where one compute op's operator-`C` diagnostics (`vsum`, `g_w`, `φ'`)
/// come from (§4.2.2's approximate iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CSource {
    /// The kernel does not touch the `C` outputs (advection, smoothing,
    /// filter).
    NotUsed,
    /// Sub-update 1 reuses the previous iteration's cached outputs, whose
    /// halos the deep/group exchange shipped (Eq. 13).
    Cached,
    /// Sub-updates 2 and 3 run `C` fresh on the region — one z-allgather
    /// when `p_z > 1`.
    Fresh,
}

/// One kernel application in the step schedule.  Compute ops carry no
/// communication; they exist so the dataflow pass (`agcm-verify`) can
/// replay *which reads happen between which exchanges* and prove every
/// one covered.  The fields mirror the integrators' call sites exactly
/// ([`super::Alg1Model`], [`super::CaModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComputeOp {
    /// Kernel key into [`crate::access::spec`] (`"adaptation"`,
    /// `"advection"`, `"smooth.s1"`, `"smooth.s2"`, `"filter"`).
    pub op: &'static str,
    /// 1-based sweep number within its phase (adaptation `1..=3M`,
    /// advection `1..=3`).
    pub sweep: u16,
    /// Sub-update within the Lin–Rood iteration (`1..=3`; 0 when not a
    /// sub-update, e.g. smoothing).
    pub sub: u8,
    /// Evaluation-region dilation beyond the interior, in halo layers
    /// (the CA validity countdown; negative = shrunk region, the fused
    /// former smoothing).
    pub dilate: i16,
    /// The kernel snapshots the evaluation state into the iteration base
    /// (`base.copy_from(psi)`) before reading.
    pub snapshot_base: bool,
    /// The kernel reads the iteration base in addition to the evaluation
    /// state.
    pub reads_base: bool,
    /// Operator-`C` usage of this kernel.
    pub c: CSource,
}

/// One entry of a step's communication schedule, in program order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOp {
    /// A halo exchange; consumes one exchange `seq` number.
    Exchange(ExchangeOp),
    /// One allgather of column block sums over the z-subcommunicator (the
    /// operator `C`, §4.2.2).  Present only when `p_z > 1`.
    ZAllgather,
    /// One alltoallv leg of the distributed polar filter over the
    /// x-subcommunicator (X-Y decomposition only; two per application).
    FilterTranspose,
    /// One kernel application (no communication of its own).
    Compute(ComputeOp),
}

/// Halo depth of the adaptation/advection sweeps of Algorithm 1 (x needs
/// the full table extent 3; y/z one layer).
pub fn depth_sweep() -> HaloWidths {
    HaloWidths {
        xm: 3,
        xp: 3,
        ym: 1,
        yp: 1,
        zm: 1,
        zp: 1,
    }
}

/// Halo depth of the smoothing exchange, `(2, 2, 0)` (Table 3).
pub fn depth_smooth() -> HaloWidths {
    HaloWidths {
        xm: 2,
        xp: 2,
        ym: 2,
        yp: 2,
        zm: 0,
        zp: 0,
    }
}

/// The five halo depths of Algorithm 2, derived from the sweep-group sizes
/// `(g, fuse, ga)` of [`ca_group_size`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaDepths {
    /// First exchange of the step: `g (+2 when the smoothing is fused)`
    /// layers in y, `g` in z.
    pub deep: HaloWidths,
    /// Iteration-aligned group boundary exchanges: `g` layers.
    pub group: HaloWidths,
    /// Mid-iteration refresh when `g = 1`: one layer.
    pub sweep: HaloWidths,
    /// Advection exchanges: `ga` layers.
    pub shallow: HaloWidths,
    /// The separate smoothing exchange when fusion does not fit.
    pub smooth: HaloWidths,
}

/// Compute [`CaDepths`] for group sizes `(g, fuse, ga)`.
pub fn ca_depths(g: usize, fuse: bool, ga: usize) -> CaDepths {
    let ysm = g + if fuse { 2 } else { 0 };
    CaDepths {
        deep: HaloWidths {
            xm: 3,
            xp: 3,
            ym: ysm,
            yp: ysm,
            zm: g,
            zp: g,
        },
        group: HaloWidths {
            xm: 3,
            xp: 3,
            ym: g,
            yp: g,
            zm: g,
            zp: g,
        },
        sweep: depth_sweep(),
        shallow: HaloWidths {
            xm: 3,
            xp: 3,
            ym: ga,
            yp: ga,
            zm: ga,
            zp: ga,
        },
        smooth: depth_smooth(),
    }
}

/// Communication schedule of one Algorithm 1 step ([`super::Alg1Model`])
/// under `pgrid`: `3M + 4` exchanges, `3M` z-allgathers when `p_z > 1` and
/// `2(3M + 3)` filter transposes when `p_x > 1`.
pub fn alg1_step(cfg: &ModelConfig, pgrid: &ProcessGrid) -> Vec<StepOp> {
    let (px, _, pz) = pgrid.dims();
    let mut ops = Vec::new();
    let sweep = depth_sweep();
    // one filter application = forward + inverse transpose
    let filter = |ops: &mut Vec<StepOp>, sweep: u16| {
        if px > 1 {
            ops.push(StepOp::FilterTranspose);
            ops.push(StepOp::FilterTranspose);
        }
        ops.push(StepOp::Compute(ComputeOp {
            op: "filter",
            sweep,
            sub: 0,
            dilate: 0,
            snapshot_base: false,
            reads_base: false,
            c: CSource::NotUsed,
        }));
    };
    for iter in 0..cfg.m_iters {
        for (si, label) in ["adapt ψ", "adapt η₁", "adapt mid"].iter().enumerate() {
            let s = (3 * iter + si + 1) as u16;
            ops.push(StepOp::Exchange(ExchangeOp {
                label,
                depth: sweep,
                fields: STATE4,
                overlapped: false,
            }));
            // the sub-update runs C fresh (exact iteration) + one filter
            if pz > 1 {
                ops.push(StepOp::ZAllgather);
            }
            ops.push(StepOp::Compute(ComputeOp {
                op: "adaptation",
                sweep: s,
                sub: (si + 1) as u8,
                dilate: 0,
                snapshot_base: si == 0,
                reads_base: true,
                c: CSource::Fresh,
            }));
            filter(&mut ops, s);
        }
    }
    // advection: the frozen g_w travels with the first exchange
    let advect = |ops: &mut Vec<StepOp>, s: u16| {
        ops.push(StepOp::Compute(ComputeOp {
            op: "advection",
            sweep: s,
            sub: s as u8,
            dilate: 0,
            snapshot_base: s == 1,
            reads_base: true,
            c: CSource::NotUsed,
        }));
    };
    ops.push(StepOp::Exchange(ExchangeOp {
        label: "advect ψ+g_w",
        depth: sweep,
        fields: ADV5,
        overlapped: false,
    }));
    advect(&mut ops, 1);
    filter(&mut ops, 1);
    for (si, label) in ["advect η₁", "advect mid"].iter().enumerate() {
        ops.push(StepOp::Exchange(ExchangeOp {
            label,
            depth: sweep,
            fields: STATE4,
            overlapped: false,
        }));
        advect(&mut ops, (si + 2) as u16);
        filter(&mut ops, (si + 2) as u16);
    }
    ops.push(StepOp::Exchange(ExchangeOp {
        label: "smooth",
        depth: depth_smooth(),
        fields: STATE4,
        overlapped: false,
    }));
    ops.push(StepOp::Compute(ComputeOp {
        op: "smooth.s1",
        sweep: 1,
        sub: 0,
        dilate: 0,
        snapshot_base: false,
        reads_base: false,
        c: CSource::NotUsed,
    }));
    ops
}

/// Communication schedule of one Algorithm 2 step ([`super::CaModel`]) at
/// steady state: `⌈3M/g⌉ + ⌈3/g_a⌉ (+1 when the smoothing is not fused)`
/// exchanges and `2M` z-allgathers — the paper's 2 exchanges and the 1/3
/// collective reduction when the full depth fits (`g = 3M`, fused).
///
/// `mode` selects the executable grouped schedule or the paper's idealized
/// full-depth accounting (see [`CaMode`]); both orderings mirror
/// `CaModel::step` exactly: an exchange lands before sweep `s` iff
/// `(s-1) % g == 0`, and sub-updates 2 and 3 of each iteration run the
/// collective `C` fresh (§4.2.2).
pub fn alg2_step(cfg: &ModelConfig, pgrid: &ProcessGrid, mode: CaMode) -> Vec<StepOp> {
    let (g, fuse, ga) = match mode {
        CaMode::Grouped => ca_group_size(cfg, pgrid),
        CaMode::PaperIdeal => (3 * cfg.m_iters, true, 3),
    };
    alg2_step_for(cfg, pgrid, g, fuse, ga)
}

/// [`alg2_step`] for explicit group sizes `(g, fuse, ga)`, bypassing
/// [`ca_group_size`].  This is how the dataflow pass builds *what-if*
/// schedules — e.g. an over-fused group that the clamp would have refused —
/// and proves the analyzer rejects them.  `g` must be a divisor-aligned
/// group size (`1` or a multiple of 3 up to `3M`), `ga` in `1..=3`.
pub fn alg2_step_for(
    cfg: &ModelConfig,
    pgrid: &ProcessGrid,
    g: usize,
    fuse: bool,
    ga: usize,
) -> Vec<StepOp> {
    let (_, _, pz) = pgrid.dims();
    let total = 3 * cfg.m_iters;
    let d = ca_depths(g, fuse, ga);
    let mut ops = Vec::new();
    let filter = |ops: &mut Vec<StepOp>, sweep: u16, dilate: i16| {
        ops.push(StepOp::Compute(ComputeOp {
            op: "filter",
            sweep,
            sub: 0,
            dilate,
            snapshot_base: false,
            reads_base: false,
            c: CSource::NotUsed,
        }));
    };
    let smooth = |ops: &mut Vec<StepOp>, op: &'static str, dilate: i16| {
        ops.push(StepOp::Compute(ComputeOp {
            op,
            sweep: 1,
            sub: 0,
            dilate,
            snapshot_base: false,
            reads_base: false,
            c: CSource::NotUsed,
        }));
    };
    if !fuse {
        ops.push(StepOp::Exchange(ExchangeOp {
            label: "smooth (separate)",
            depth: d.smooth,
            fields: STATE4,
            overlapped: false,
        }));
        smooth(&mut ops, "smooth.s1", 0);
    }
    // validity countdown of the fused adaptation sweeps (§4.3.2): a group
    // exchange makes g halo layers valid; each iteration consumes 3.
    let mut valid = 0usize;
    for s in 1..=total {
        if (s - 1) % g == 0 {
            let op = if s == 1 {
                ExchangeOp {
                    label: "deep ξ (fused smoothing)",
                    depth: d.deep,
                    fields: DEEP7,
                    overlapped: true,
                }
            } else if (s - 1) % 3 == 0 {
                ExchangeOp {
                    label: "group ξ",
                    depth: d.group,
                    fields: DEEP7,
                    overlapped: false,
                }
            } else {
                // g = 1 only: mid-iteration refresh of the evaluation state
                ExchangeOp {
                    label: "sweep refresh",
                    depth: d.sweep,
                    fields: STATE4,
                    overlapped: false,
                }
            };
            ops.push(StepOp::Exchange(op));
            if s == 1 && fuse {
                // former smoothing on the shrunk interior (overlapping the
                // deep exchange), later smoothing on edge + halo rows once
                // it lands
                smooth(&mut ops, "smooth.s1", -2);
                smooth(&mut ops, "smooth.s2", g as i16);
            }
            valid = g;
        }
        let sub = ((s - 1) % 3 + 1) as u8;
        // region_k = dilate(valid - k): halo layers still valid for this
        // sub-update's output (0 on the plain interior when g = 1)
        let dilate = if g == 1 { 0 } else { valid as i16 - sub as i16 };
        // sub-updates 2 and 3 run C fresh; sub-update 1 reuses the cache
        let c = if sub == 1 {
            CSource::Cached
        } else {
            CSource::Fresh
        };
        if c == CSource::Fresh && pz > 1 {
            ops.push(StepOp::ZAllgather);
        }
        ops.push(StepOp::Compute(ComputeOp {
            op: "adaptation",
            sweep: s as u16,
            sub,
            dilate,
            snapshot_base: sub == 1,
            reads_base: true,
            c,
        }));
        filter(&mut ops, s as u16, dilate);
        if sub == 3 {
            valid = valid.saturating_sub(3);
        }
    }
    // advection countdown: g_a valid layers per shallow exchange, one
    // consumed per sweep (CaModel: dila(g_a - 1), then min(valid - 1, 1),
    // then the interior)
    let mut valida = 0usize;
    for s in 1..=3usize {
        if (s - 1) % ga == 0 {
            ops.push(StepOp::Exchange(ExchangeOp {
                label: "advect ψ+g_w",
                depth: d.shallow,
                fields: ADV5,
                overlapped: s == 1,
            }));
            valida = ga;
        }
        let dilate = match s {
            1 => (ga - 1) as i16,
            2 => (valida as i16 - 1).min(1),
            _ => 0,
        };
        ops.push(StepOp::Compute(ComputeOp {
            op: "advection",
            sweep: s as u16,
            sub: s as u8,
            dilate,
            snapshot_base: s == 1,
            reads_base: true,
            c: CSource::NotUsed,
        }));
        filter(&mut ops, s as u16, dilate);
        valida -= 1;
    }
    ops
}

/// Number of exchanges in a schedule.
pub fn exchange_count(ops: &[StepOp]) -> u64 {
    ops.iter()
        .filter(|o| matches!(o, StepOp::Exchange(_)))
        .count() as u64
}

/// Number of collective calls (z-allgathers + filter transposes).
pub fn collective_count(ops: &[StepOp]) -> u64 {
    ops.iter()
        .filter(|o| matches!(o, StepOp::ZAllgather | StepOp::FilterTranspose))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ModelConfig {
        ModelConfig::paper_50km()
    }

    #[test]
    fn alg1_yz_has_13_exchanges_and_3m_collectives() {
        let c = cfg();
        let ops = alg1_step(&c, &ProcessGrid::yz(16, 8).unwrap());
        assert_eq!(exchange_count(&ops), 3 * c.m_iters as u64 + 4);
        assert_eq!(collective_count(&ops), 3 * c.m_iters as u64);
    }

    #[test]
    fn alg1_xy_has_filter_transposes_instead() {
        let c = cfg();
        let ops = alg1_step(&c, &ProcessGrid::xy(16, 8).unwrap());
        assert_eq!(exchange_count(&ops), 3 * c.m_iters as u64 + 4);
        // 2 transposes per application, 3M + 3 applications, no allgathers
        assert_eq!(collective_count(&ops), 2 * (3 * c.m_iters as u64 + 3));
    }

    #[test]
    fn alg2_ideal_is_two_exchanges_and_2m_collectives() {
        let c = cfg();
        let pg = ProcessGrid::yz(16, 8).unwrap();
        let ops = alg2_step(&c, &pg, CaMode::PaperIdeal);
        assert_eq!(exchange_count(&ops), 2); // the paper's 13 -> 2
        assert_eq!(collective_count(&ops), 2 * c.m_iters as u64);
    }

    #[test]
    fn alg2_grouped_matches_exchanges_per_step_formula() {
        let c = cfg();
        for (py, pz) in [(16, 8), (64, 8), (128, 8)] {
            let pg = ProcessGrid::yz(py, pz).unwrap();
            let (g, fuse, ga) = ca_group_size(&c, &pg);
            let adapt = if g == 1 {
                3 * c.m_iters as u64
            } else {
                (3 * c.m_iters).div_ceil(g) as u64
            };
            let expect = adapt + 3u64.div_ceil(ga as u64) + u64::from(!fuse);
            let ops = alg2_step(&c, &pg, CaMode::Grouped);
            assert_eq!(exchange_count(&ops), expect, "py={py} pz={pz}");
        }
    }

    #[test]
    fn serial_grids_have_no_collectives() {
        let c = cfg();
        let ops = alg1_step(&c, &ProcessGrid::serial());
        assert_eq!(collective_count(&ops), 0);
        let ops = alg2_step(&c, &ProcessGrid::serial(), CaMode::Grouped);
        assert_eq!(collective_count(&ops), 0);
    }
}
