//! Parallel **Algorithm 1** — the paper's original algorithm.
//!
//! Works under any 2-D decomposition; the paper evaluates it under X-Y
//! (`p_z = 1`, distributed Fourier filtering) and Y-Z (`p_x = 1`,
//! communication-free filtering, z-collectives for `C`).
//!
//! Communication schedule per time step (`M` nonlinear iterations):
//!
//! * one shallow halo exchange **before every stencil sweep** —
//!   `3M` adaptation + 3 advection + 1 smoothing = `3M + 4` exchanges
//!   (13 for `M = 3`, the paper's "communication frequency 13"),
//! * `3M` executions of the collective `C` (three per iteration),
//! * `3M + 3` filter applications (each a pair of transposes under X-Y).

use crate::config::ModelConfig;
use crate::dycore::{Engine, FilterCtx};
use crate::error::ModelError;
use crate::geometry::LocalGeometry;
use crate::par::exchange::{state_fields, ExField, HaloExchanger};
use crate::smoothing::smooth_full;
use crate::state::State;
use crate::tables;
use crate::vertical::ZContext;
use agcm_comm::{CommResult, Communicator};
use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
use agcm_obs as obs;
use std::sync::Arc;

/// Parallel original algorithm (Algorithm 1).
pub struct Alg1Model {
    /// The shared engine.
    pub engine: Engine,
    /// Current state.
    pub state: State,
    /// Completed steps.
    pub steps: usize,
    exchanger: HaloExchanger,
    zcomm: Option<Communicator>,
    xcomm: Option<Communicator>,
    depth_sweep: HaloWidths,
    depth_smooth: HaloWidths,
    // scratch
    psi: State,
    base: State,
    eta1: State,
    eta2: State,
    mid: State,
    tend: State,
    smoothed: State,
}

impl Alg1Model {
    /// Build the model on this rank.  `comm` must have exactly
    /// `pgrid.size()` ranks; rank ↔ cartesian coordinates follow
    /// [`ProcessGrid`]'s x-fastest numbering.
    pub fn new(
        cfg: &ModelConfig,
        pgrid: ProcessGrid,
        comm: &mut Communicator,
    ) -> Result<Self, ModelError> {
        if comm.size() != pgrid.size() {
            return Err(ModelError::Config(format!(
                "communicator size {} != process grid size {}",
                comm.size(),
                pgrid.size()
            )));
        }
        let grid = Arc::new(cfg.grid()?);
        let decomp = Decomposition::new(cfg.extents(), pgrid)?;
        let halo = HaloWidths::for_footprint(&tables::per_sweep_union());
        let rank = comm.rank();
        let geom = LocalGeometry::new(cfg, Arc::clone(&grid), &decomp, rank, halo);
        let exchanger = HaloExchanger::new(decomp.clone(), rank);
        exchanger.validate_depth(halo).map_err(ModelError::Config)?;

        let (px, py, pz) = pgrid.dims();
        let (cx, cy, cz) = pgrid.coords(rank);
        let zcomm = if pz > 1 {
            Some(comm.split(cx + cy * px, cz)?)
        } else {
            None
        };
        let xcomm = if px > 1 {
            Some(comm.split(cy + cz * py, cx)?)
        } else {
            None
        };

        let engine = Engine::new(cfg, geom, px == 1);
        let state = State::new(engine.geom.nx, engine.geom.ny, engine.geom.nz, halo);
        let scratch = || State::like(&state);
        // adaptation/advection sweeps read one row/level; x needs the full
        // table extent (3); smoothing needs (2, 2, 0).  Shared with the
        // static schedule metadata so analyzer and integrator cannot drift.
        let depth_sweep = super::schedule::depth_sweep();
        let depth_smooth = super::schedule::depth_smooth();
        Ok(Alg1Model {
            psi: scratch(),
            base: scratch(),
            eta1: scratch(),
            eta2: scratch(),
            mid: scratch(),
            tend: scratch(),
            smoothed: scratch(),
            engine,
            state,
            steps: 0,
            exchanger,
            zcomm,
            xcomm,
            depth_sweep,
            depth_smooth,
        })
    }

    /// Replace the state with an initial condition.
    pub fn set_state(&mut self, st: &State) {
        self.state.assign(st);
        self.engine.c_cached = false;
    }

    /// Local geometry.
    pub fn geom(&self) -> &LocalGeometry {
        &self.engine.geom
    }

    /// Completed halo exchanges (all steps).
    pub fn exchange_count(&self) -> u64 {
        self.exchanger.exchanges
    }

    /// Degraded mode is a no-op for Algorithm 1: its schedule is already
    /// the conservative one (blocking exchanges, exact `C` every sweep).
    pub fn set_degraded(&mut self, _on: bool) {}

    /// Enable checksum-framed halo payloads with validated, retrying
    /// receives.
    pub fn set_framed(&mut self, on: bool) {
        self.exchanger.set_framed(on);
    }

    /// Change the framed-receive retry policy.
    pub fn set_retry(&mut self, retry: crate::par::exchange::RetryPolicy) {
        self.exchanger.set_retry(retry);
    }

    /// Re-align communication sequence numbers after a rollback (collective
    /// with the same `epoch` on every rank).
    pub fn resync(&mut self, epoch: u64) {
        self.exchanger.resync(epoch);
        if let Some(z) = &self.zcomm {
            z.resync_collectives(epoch);
        }
        if let Some(x) = &self.xcomm {
            x.resync_collectives(epoch);
        }
    }

    /// Snapshot the restart state.  Algorithm 1 recomputes `C` exactly in
    /// every sweep, so the prognostic state alone restores it bit-for-bit.
    pub fn capture(&self) -> crate::resilience::Checkpoint {
        crate::resilience::Checkpoint {
            step: self.steps as u64,
            state: self.state.clone(),
            vsum: None,
            gw: None,
            phi_p: None,
            c_cached: false,
            pending_smooth: false,
        }
    }

    /// Restore a [`Self::capture`]d snapshot bit-for-bit.
    pub fn restore(&mut self, ck: &crate::resilience::Checkpoint) {
        self.steps = ck.step as usize;
        self.state.clone_from(&ck.state);
        self.engine.c_cached = false;
    }

    /// Advance one time step.
    pub fn step(&mut self, comm: &Communicator) -> CommResult<()> {
        obs::set_step(self.steps as u64);
        let _step = obs::span(obs::SpanKind::Step, "alg1.step");
        let region = self.engine.geom.interior();
        let dt1 = self.engine.cfg.dt1;
        let dt2 = self.engine.cfg.dt2;
        let m = self.engine.cfg.m_iters;
        self.psi.assign(&self.state);

        // ---- adaptation ----
        for _ in 0..m {
            let _iter = obs::span(obs::SpanKind::Iter, "adaptation.iter");
            self.base.copy_from(&self.psi);
            // sub-update 1
            self.exchanger
                .exchange(comm, self.depth_sweep, &mut state_fields(&mut self.psi))?;
            {
                let zctx = match &self.zcomm {
                    Some(z) => ZContext::Parallel(z),
                    None => ZContext::Serial,
                };
                let fctx = match &self.xcomm {
                    Some(x) => FilterCtx::Distributed(x),
                    None => FilterCtx::Local,
                };
                self.engine.adaptation_subupdate(
                    &self.base,
                    &mut self.psi,
                    &mut self.eta1,
                    &mut self.tend,
                    region,
                    dt1,
                    true,
                    &zctx,
                    &fctx,
                )?;
            }
            // sub-update 2
            self.exchanger
                .exchange(comm, self.depth_sweep, &mut state_fields(&mut self.eta1))?;
            {
                let zctx = match &self.zcomm {
                    Some(z) => ZContext::Parallel(z),
                    None => ZContext::Serial,
                };
                let fctx = match &self.xcomm {
                    Some(x) => FilterCtx::Distributed(x),
                    None => FilterCtx::Local,
                };
                self.engine.adaptation_subupdate(
                    &self.base,
                    &mut self.eta1,
                    &mut self.eta2,
                    &mut self.tend,
                    region,
                    dt1,
                    true,
                    &zctx,
                    &fctx,
                )?;
            }
            // sub-update 3 (midpoint)
            self.mid.midpoint_on(&self.base, &self.eta2, &region);
            self.exchanger
                .exchange(comm, self.depth_sweep, &mut state_fields(&mut self.mid))?;
            {
                let zctx = match &self.zcomm {
                    Some(z) => ZContext::Parallel(z),
                    None => ZContext::Serial,
                };
                let fctx = match &self.xcomm {
                    Some(x) => FilterCtx::Distributed(x),
                    None => FilterCtx::Local,
                };
                // η₃ lands directly in eta1 — the old mem::replace
                // placeholder was never read (bitwise-identical result)
                self.engine.adaptation_subupdate(
                    &self.base,
                    &mut self.mid,
                    &mut self.eta1,
                    &mut self.tend,
                    region,
                    dt1,
                    true,
                    &zctx,
                    &fctx,
                )?;
                self.psi.assign(&self.eta1);
            }
        }

        // ---- advection (frozen g_w must travel with the first exchange) --
        self.base.copy_from(&self.psi);
        {
            let mut fields = [
                ExField::F3(&mut self.psi.u),
                ExField::F3(&mut self.psi.v),
                ExField::F3(&mut self.psi.phi),
                ExField::F2(&mut self.psi.psa),
                ExField::F3(&mut self.engine.diag.gw),
            ];
            self.exchanger
                .exchange(comm, self.depth_sweep, &mut fields)?;
        }
        if self.engine.px1 {
            // x halo by periodic wrap; under X-Y splits the exchange (and
            // the extended-x computation in apply_c) already covered it
            self.engine.diag.gw.wrap_x_halo();
        }
        macro_rules! fctx {
            () => {
                match self.xcomm.as_ref() {
                    None => FilterCtx::Local,
                    Some(x) => FilterCtx::Distributed(x),
                }
            };
        }
        {
            let f = fctx!();
            self.engine.advection_subupdate(
                &self.base,
                &mut self.psi,
                &mut self.eta1,
                &mut self.tend,
                region,
                dt2,
                &f,
            )?;
        }
        self.exchanger
            .exchange(comm, self.depth_sweep, &mut state_fields(&mut self.eta1))?;
        {
            let f = fctx!();
            self.engine.advection_subupdate(
                &self.base,
                &mut self.eta1,
                &mut self.eta2,
                &mut self.tend,
                region,
                dt2,
                &f,
            )?;
        }
        self.mid.midpoint_on(&self.base, &self.eta2, &region);
        self.exchanger
            .exchange(comm, self.depth_sweep, &mut state_fields(&mut self.mid))?;
        {
            let f = fctx!();
            self.engine.advection_subupdate(
                &self.base,
                &mut self.mid,
                &mut self.eta1,
                &mut self.tend,
                region,
                dt2,
                &f,
            )?;
        }

        // ---- physics, then smoothing with its own exchange ----
        self.engine.apply_forcing(&mut self.eta1, region);
        self.exchanger
            .exchange(comm, self.depth_smooth, &mut state_fields(&mut self.eta1))?;
        {
            // Algorithm 1 smooths in one unsplit pass = the paper's S1
            let _s = obs::span_phase(obs::SpanKind::Op, obs::Phase::S1, "smooth.full");
            self.engine.fill(&mut self.eta1);
            smooth_full(
                &self.engine.geom,
                self.engine.cfg.smooth_beta,
                &self.eta1,
                &mut self.smoothed,
                region,
            );
        }
        self.state.assign(&self.smoothed);
        self.steps += 1;
        Ok(())
    }

    /// Run `n` steps.
    pub fn run(&mut self, comm: &Communicator, n: usize) -> CommResult<()> {
        for _ in 0..n {
            self.step(comm)?;
        }
        Ok(())
    }

    /// Gather the full global state to rank 0 (for test comparison):
    /// returns `(component, global field rows)` flattened per component on
    /// rank 0, `None` elsewhere.
    pub fn gather_state(&mut self, comm: &Communicator) -> CommResult<Option<GlobalState>> {
        gather_state_impl(&self.state, &self.engine.geom, comm)
    }
}

/// A gathered global state (dense, no halos) for cross-configuration
/// comparisons in tests and benches.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalState {
    /// Extents `(nx, ny, nz)`.
    pub extents: (usize, usize, usize),
    /// `U`, x-fastest dense.
    pub u: Vec<f64>,
    /// `V`.
    pub v: Vec<f64>,
    /// `Φ`.
    pub phi: Vec<f64>,
    /// `p'_sa` (2-D).
    pub psa: Vec<f64>,
}

impl GlobalState {
    /// Build from a serial model's state.
    pub fn from_serial(st: &State, geom: &LocalGeometry) -> Self {
        let (nx, ny, nz) = (geom.nx, geom.ny, geom.nz);
        let mut u = Vec::with_capacity(nx * ny * nz);
        let mut v = Vec::with_capacity(nx * ny * nz);
        let mut phi = Vec::with_capacity(nx * ny * nz);
        let mut psa = Vec::with_capacity(nx * ny);
        for k in 0..nz as isize {
            for j in 0..ny as isize {
                u.extend_from_slice(st.u.row(0, nx as isize, j, k));
                v.extend_from_slice(st.v.row(0, nx as isize, j, k));
                phi.extend_from_slice(st.phi.row(0, nx as isize, j, k));
            }
        }
        for j in 0..ny as isize {
            psa.extend_from_slice(st.psa.row(0, nx as isize, j));
        }
        GlobalState {
            extents: (nx, ny, nz),
            u,
            v,
            phi,
            psa,
        }
    }

    /// Largest absolute difference to another global state.
    pub fn max_abs_diff(&self, other: &GlobalState) -> f64 {
        assert_eq!(self.extents, other.extents);
        let d = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f64, f64::max)
        };
        d(&self.u, &other.u)
            .max(d(&self.v, &other.v))
            .max(d(&self.phi, &other.phi))
            .max(d(&self.psa, &other.psa))
    }

    /// Largest absolute value over all components.
    pub fn max_abs(&self) -> f64 {
        let m = |a: &[f64]| a.iter().fold(0.0f64, |acc, x| acc.max(x.abs()));
        m(&self.u)
            .max(m(&self.v))
            .max(m(&self.phi))
            .max(m(&self.psa))
    }
}

/// Gather a decomposed state to rank 0 of `comm`.
pub fn gather_state_impl(
    state: &State,
    geom: &LocalGeometry,
    comm: &Communicator,
) -> CommResult<Option<GlobalState>> {
    // each rank packs: [x0, y0, z0, nxl, nyl, nzl, u..., v..., phi..., psa...]
    let (nxl, nyl, nzl) = (geom.nx, geom.ny, geom.nz);
    let mut buf: Vec<f64> = vec![
        geom.sub.x.start as f64,
        geom.sub.y.start as f64,
        geom.sub.z.start as f64,
        nxl as f64,
        nyl as f64,
        nzl as f64,
    ];
    for f in [&state.u, &state.v, &state.phi] {
        for k in 0..nzl as isize {
            for j in 0..nyl as isize {
                buf.extend_from_slice(f.row(0, nxl as isize, j, k));
            }
        }
    }
    for j in 0..nyl as isize {
        buf.extend_from_slice(state.psa.row(0, nxl as isize, j));
    }
    let gathered = comm.gatherv(0, &buf)?;
    let Some(parts) = gathered else {
        return Ok(None);
    };
    let (gnx, gny, gnz) = (geom.grid.nx(), geom.grid.ny(), geom.grid.nz());
    let mut out = GlobalState {
        extents: (gnx, gny, gnz),
        u: vec![0.0; gnx * gny * gnz],
        v: vec![0.0; gnx * gny * gnz],
        phi: vec![0.0; gnx * gny * gnz],
        psa: vec![0.0; gnx * gny],
    };
    for p in parts {
        let (x0, y0, z0) = (p[0] as usize, p[1] as usize, p[2] as usize);
        let (nxl, nyl, nzl) = (p[3] as usize, p[4] as usize, p[5] as usize);
        let mut off = 6;
        for fi in 0..3 {
            let dst: &mut [f64] = match fi {
                0 => &mut out.u,
                1 => &mut out.v,
                _ => &mut out.phi,
            };
            for k in 0..nzl {
                for j in 0..nyl {
                    let g0 = (z0 + k) * gnx * gny + (y0 + j) * gnx + x0;
                    dst[g0..g0 + nxl].copy_from_slice(&p[off..off + nxl]);
                    off += nxl;
                }
            }
        }
        for j in 0..nyl {
            let g0 = (y0 + j) * gnx + x0;
            out.psa[g0..g0 + nxl].copy_from_slice(&p[off..off + nxl]);
            off += nxl;
        }
    }
    Ok(Some(out))
}
