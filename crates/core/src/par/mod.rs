//! Parallel models: halo exchange, Algorithm 1 (original) and Algorithm 2
//! (communication-avoiding), plus the machine-readable step schedules the
//! static analyzer (`agcm-verify`) consumes.

pub mod alg1;
pub mod alg2;
pub mod exchange;
pub mod schedule;

pub use alg1::{gather_state_impl, Alg1Model, GlobalState};
pub use alg2::{gather_ca_state, CaModel};
pub use exchange::{dir_index, state_fields, wire_tag, ExField, HaloExchanger, RetryPolicy};
pub use schedule::{ExchangeOp, FieldShape, StepOp};
