//! Parallel models: halo exchange, Algorithm 1 (original) and Algorithm 2
//! (communication-avoiding).

pub mod alg1;
pub mod alg2;
pub mod exchange;

pub use alg1::{gather_state_impl, Alg1Model, GlobalState};
pub use alg2::{gather_ca_state, CaModel};
pub use exchange::{state_fields, ExField, HaloExchanger};
