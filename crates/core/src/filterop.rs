//! Applying the Fourier polar filter `F̃` to a state.
//!
//! Algorithm 1/2 filter every *tendency* before it is scaled by `Δt` and
//! added (`ψ + Δt·F̃(…)`).  Under the Y-Z decomposition each rank owns full
//! latitude circles, so the filter is purely local (§4.2.1 — the whole
//! point of the communication-avoiding algorithm's decomposition choice).
//! Under the X-Y decomposition the circles are split and the transpose
//! filter of `agcm-fft` runs on the x-axis communicator.

use crate::geometry::{LocalGeometry, Region};
use crate::state::State;
use agcm_comm::{CommResult, Communicator};
use agcm_fft::{filter_rows_distributed, FilterScratch, FourierFilter};

/// Build the filter for the global grid of `geom`, with damping profiles at
/// this rank's (and its halo's) latitude rows.  Row indexing of the
/// returned filter is **global**.
pub fn build_filter(geom: &LocalGeometry, cutoff_deg: f64) -> FourierFilter {
    let grid = &geom.grid;
    // model construction, not the stepping path: lint:allow(alloc)
    let lats: Vec<f64> = (0..grid.ny()).map(|j| grid.latitude(j)).collect();
    FourierFilter::new(grid.nx(), &lats, cutoff_deg.to_radians())
}

/// Global latitude row of a local row, clamped into range for mirror halo
/// rows (their damping profile is that of the row they mirror).
#[inline]
fn filter_row(geom: &LocalGeometry, jl: isize) -> usize {
    let ny = geom.grid.ny() as i64;
    let g = geom.global_j(jl);
    let m = if g < 0 {
        -1 - g
    } else if g >= ny {
        2 * ny - 1 - g
    } else {
        g
    };
    m.clamp(0, ny - 1) as usize
}

/// Filter a state in place on `region` — the local (`p_x = 1`) path.
/// Each `(j, k)` row of the 3-D components and each `j` row of `p'_sa` is
/// transformed, damped and transformed back.  `scratch` holds the reusable
/// FFT buffers; steady-state calls allocate nothing.
pub fn filter_state_local(
    geom: &LocalGeometry,
    filter: &FourierFilter,
    state: &mut State,
    region: Region,
    scratch: &mut FilterScratch,
) {
    let nx = geom.nx as isize;
    for k in region.z0..region.z1 {
        for j in region.y0..region.y1 {
            let gj = filter_row(geom, j);
            if !filter.is_active(gj) {
                continue;
            }
            for f in [&mut state.u, &mut state.v, &mut state.phi] {
                let row = f.row_mut(0, nx, j, k);
                filter.apply_row_with(gj, row, scratch);
            }
        }
    }
    for j in region.y0..region.y1 {
        let gj = filter_row(geom, j);
        if filter.is_active(gj) {
            filter.apply_row_with(gj, state.psa.row_mut(0, nx, j), scratch);
        }
    }
}

/// Filter a state in place on `region` when longitude circles are split
/// over the ranks of `xcomm` — the X-Y-decomposition path (two `alltoallv`
/// transposes per call, the communication Theorem 4.1 lower-bounds).
pub fn filter_state_distributed(
    geom: &LocalGeometry,
    filter: &FourierFilter,
    state: &mut State,
    region: Region,
    xcomm: &Communicator,
) -> CommResult<()> {
    let nx_local = geom.nx;
    let nx_global = geom.grid.nx();
    // collect the active rows of all components into one batch so a single
    // pair of transposes carries the whole state (one "communication")
    // the zero-alloc stepping guarantee covers the Y-Z path (filtering is
    // local there); this X-Y transpose batch grows to its high-water mark
    // and the alltoallv buffers behind it are pooled: lint:allow(alloc)
    let mut rows: Vec<f64> = Vec::new(); // lint:allow(alloc)
    let mut row_j: Vec<usize> = Vec::new(); // lint:allow(alloc)
    let mut locs: Vec<(usize, isize, isize)> = Vec::new(); // (field, j, k) lint:allow(alloc)
    for k in region.z0..region.z1 {
        for j in region.y0..region.y1 {
            let gj = filter_row(geom, j);
            if !filter.is_active(gj) {
                continue;
            }
            for (fi, f) in [&state.u, &state.v, &state.phi].into_iter().enumerate() {
                rows.extend_from_slice(f.row(0, nx_local as isize, j, k));
                row_j.push(gj);
                locs.push((fi, j, k));
            }
        }
    }
    for j in region.y0..region.y1 {
        let gj = filter_row(geom, j);
        if filter.is_active(gj) {
            rows.extend_from_slice(state.psa.row(0, nx_local as isize, j));
            row_j.push(gj);
            locs.push((3, j, 0));
        }
    }
    filter_rows_distributed(xcomm, nx_global, &mut rows, &row_j, filter)?;
    // scatter the filtered rows back
    for (r, &(fi, j, k)) in locs.iter().enumerate() {
        let src = &rows[r * nx_local..(r + 1) * nx_local];
        match fi {
            0 => state
                .u
                .row_mut(0, nx_local as isize, j, k)
                .copy_from_slice(src),
            1 => state
                .v
                .row_mut(0, nx_local as isize, j, k)
                .copy_from_slice(src),
            2 => state
                .phi
                .row_mut(0, nx_local as isize, j, k)
                .copy_from_slice(src),
            _ => state
                .psa
                .row_mut(0, nx_local as isize, j)
                .copy_from_slice(src),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use agcm_comm::Universe;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    fn fill(state: &mut State, geom: &LocalGeometry, x_off: usize) {
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    let gi = i as usize + x_off;
                    let v = ((gi * 13 + j as usize * 7 + k as usize * 3) % 11) as f64;
                    state.u.set(i, j, k, v);
                    state.v.set(i, j, k, v + 1.0);
                    state.phi.set(i, j, k, v * 2.0);
                }
            }
        }
        for j in 0..geom.ny as isize {
            for i in 0..geom.nx as isize {
                let gi = i as usize + x_off;
                state.psa.set(i, j, ((gi * 5 + j as usize) % 9) as f64);
            }
        }
    }

    #[test]
    fn filter_leaves_low_latitudes_and_damps_polar_rows() {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(1));
        let filter = build_filter(&geom, cfg.filter_cutoff_deg);
        let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        fill(&mut st, &geom, 0);
        let before = st.clone();
        filter_state_local(
            &geom,
            &filter,
            &mut st,
            geom.interior(),
            &mut FilterScratch::new(),
        );
        // equatorial rows untouched
        let jm = geom.ny as isize / 2;
        for i in 0..geom.nx as isize {
            assert_eq!(st.phi.get(i, jm, 0), before.phi.get(i, jm, 0));
        }
        // polar rows changed (noise damped)
        let changed = (0..geom.nx as isize).any(|i| st.phi.get(i, 0, 0) != before.phi.get(i, 0, 0));
        assert!(changed, "polar row must be filtered");
        // zonal mean preserved on the polar row
        let mean = |f: &agcm_mesh::Field3| {
            (0..geom.nx as isize).map(|i| f.get(i, 0, 0)).sum::<f64>() / geom.nx as f64
        };
        assert!((mean(&st.phi) - mean(&before.phi)).abs() < 1e-9);
    }

    #[test]
    fn distributed_filter_matches_local() {
        let cfg = ModelConfig::test_small();
        // serial reference
        let grid = Arc::new(cfg.grid().unwrap());
        let ds = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let sgeom = LocalGeometry::new(&cfg, Arc::clone(&grid), &ds, 0, HaloWidths::uniform(1));
        let filter = build_filter(&sgeom, cfg.filter_cutoff_deg);
        let mut sref = State::new(sgeom.nx, sgeom.ny, sgeom.nz, sgeom.halo);
        fill(&mut sref, &sgeom, 0);
        filter_state_local(
            &sgeom,
            &filter,
            &mut sref,
            sgeom.interior(),
            &mut FilterScratch::new(),
        );

        // X-Y decomposition with px = 2 (py = 1): x-axis comm is the world
        let results = Universe::run(2, |comm| {
            let cfg = ModelConfig::test_small();
            let grid = Arc::new(cfg.grid().unwrap());
            let d = Decomposition::new(cfg.extents(), ProcessGrid::xy(2, 1).unwrap()).unwrap();
            let geom = LocalGeometry::new(
                &cfg,
                Arc::clone(&grid),
                &d,
                comm.rank(),
                HaloWidths::uniform(1),
            );
            let filter = build_filter(&geom, cfg.filter_cutoff_deg);
            let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
            fill(&mut st, &geom, geom.sub.x.start);
            filter_state_distributed(&geom, &filter, &mut st, geom.interior(), comm).unwrap();
            let mut out = Vec::new();
            for j in 0..geom.ny as isize {
                out.extend_from_slice(st.phi.row(0, geom.nx as isize, j, 0));
            }
            (geom.sub.x.start, geom.nx, out)
        });
        for (x0, nxl, vals) in results {
            for j in 0..sgeom.ny {
                for ii in 0..nxl {
                    let want = sref.phi.get((x0 + ii) as isize, j as isize, 0);
                    let got = vals[j * nxl + ii];
                    assert!((got - want).abs() < 1e-9, "row {j} col {}", x0 + ii);
                }
            }
        }
    }

    #[test]
    fn halo_mirror_rows_use_mirrored_profile() {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(2));
        assert_eq!(filter_row(&geom, -1), 0);
        assert_eq!(filter_row(&geom, -2), 1);
        assert_eq!(filter_row(&geom, geom.ny as isize), geom.ny - 1);
        assert_eq!(filter_row(&geom, 3), 3);
    }
}
