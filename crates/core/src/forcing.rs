//! Held–Suarez forcing — the idealized dry benchmark of §5.1.
//!
//! Held & Suarez (1994) replace the full physical parameterizations with
//! two analytic terms, making the dynamical core testable in isolation:
//!
//! * Newtonian relaxation of temperature towards a prescribed radiative
//!   equilibrium `T_eq(φ, p)` with rate `k_T(φ, σ)`,
//! * Rayleigh damping of the low-level winds with rate `k_v(σ)`.
//!
//! In the transformed variables (`Φ ∝ P(T − T̃)`), the temperature
//! relaxation becomes a relaxation of `Φ` towards
//! `Φ_eq = P·R·(T_eq − T̃)/b`, and the wind damping acts directly on `U`
//! and `V`.  The forcing is pointwise — no communication — and is applied
//! once per (advection) time step, like the physics step it stands in for.

use crate::diag::Diag;
use crate::geometry::{LocalGeometry, Region};
use crate::state::State;
use crate::stdatm::StandardAtmosphere;
use agcm_mesh::grid::constants as c;

/// Held–Suarez constants.
pub mod hs {
    /// Surface equilibrium temperature at the equator \[K\].
    pub const T_EQ_SURF: f64 = 315.0;
    /// Minimum (stratospheric) equilibrium temperature \[K\].
    pub const T_MIN: f64 = 200.0;
    /// Equator-to-pole temperature difference \[K\].
    pub const DELTA_T_Y: f64 = 60.0;
    /// Static-stability parameter \[K\].
    pub const DELTA_THETA_Z: f64 = 10.0;
    /// Base relaxation rate `k_a` \[1/s\] (1/40 day).
    pub const K_A: f64 = 1.0 / (40.0 * 86400.0);
    /// Enhanced boundary-layer relaxation `k_s` \[1/s\] (1/4 day).
    pub const K_S: f64 = 1.0 / (4.0 * 86400.0);
    /// Rayleigh friction rate `k_f` \[1/s\] (1/day).
    pub const K_F: f64 = 1.0 / 86400.0;
    /// Boundary-layer top in σ.
    pub const SIGMA_B: f64 = 0.7;
}

/// The H-S radiative-equilibrium temperature at latitude `φ` (radians) and
/// pressure `p` \[Pa\].
pub fn t_equilibrium(lat: f64, p: f64) -> f64 {
    let sin2 = lat.sin() * lat.sin();
    let cos2 = 1.0 - sin2;
    let pr = (p / c::P_REF).max(1e-6);
    let t = (hs::T_EQ_SURF - hs::DELTA_T_Y * sin2 - hs::DELTA_THETA_Z * pr.ln() * cos2)
        * pr.powf(c::KAPPA);
    t.max(hs::T_MIN)
}

/// The latitude/σ-dependent thermal relaxation rate `k_T`.
pub fn k_t(lat: f64, sigma: f64) -> f64 {
    let cos4 = lat.cos().powi(4);
    let bl = ((sigma - hs::SIGMA_B) / (1.0 - hs::SIGMA_B)).max(0.0);
    hs::K_A + (hs::K_S - hs::K_A) * bl * cos4
}

/// The σ-dependent Rayleigh friction rate `k_v`.
pub fn k_v(sigma: f64) -> f64 {
    hs::K_F * ((sigma - hs::SIGMA_B) / (1.0 - hs::SIGMA_B)).max(0.0)
}

/// Apply one Held–Suarez forcing step of length `dt` to `state` on
/// `region` (implicit/exact relaxation factors, unconditionally stable).
/// `diag.pes`/`cap_p` must be current.
pub fn apply_held_suarez(
    geom: &LocalGeometry,
    stdatm: &StandardAtmosphere,
    diag: &Diag,
    state: &mut State,
    region: Region,
    dt: f64,
) {
    let nx = geom.nx as isize;
    let grid = &geom.grid;
    for k in region.z0..region.z1 {
        let sigma = geom.sigma_c(k).clamp(0.0, 1.0);
        let kv = k_v(sigma);
        let wind_fac = (-kv * dt).exp();
        let gk = geom.global_k(k).clamp(0, grid.nz() as i64 - 1) as usize;
        let t_tilde = stdatm.t_tilde[gk];
        for j in region.y0..region.y1 {
            let gj = geom.global_j(j).clamp(0, grid.ny() as i64 - 1) as usize;
            let lat = grid.latitude(gj);
            let kt = k_t(lat, sigma);
            let temp_fac = (-kt * dt).exp();
            for i in 0..nx {
                // winds: exact Rayleigh decay
                if kv > 0.0 {
                    let u = state.u.get(i, j, k);
                    state.u.set(i, j, k, u * wind_fac);
                    let v = state.v.get(i, j, k);
                    state.v.set(i, j, k, v * wind_fac);
                }
                // temperature: relax Φ to Φ_eq
                let p_cap = diag.cap_p.get(i, j);
                let pres = c::P_TOP + sigma * diag.pes.get(i, j);
                let t_eq = t_equilibrium(lat, pres);
                let phi_eq = p_cap * c::R_DRY * (t_eq - t_tilde) / c::B_GRAVITY_WAVE;
                let phi = state.phi.get(i, j, k);
                state.phi.set(i, j, k, phi_eq + (phi - phi_eq) * temp_fac);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary;
    use crate::config::ModelConfig;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    #[test]
    fn equilibrium_profile_shape() {
        // warmer at the equator than the poles at the surface
        let p = c::P_REF;
        assert!(t_equilibrium(0.0, p) > t_equilibrium(1.2, p));
        // equatorial surface T_eq = 315 K
        assert!((t_equilibrium(0.0, p) - hs::T_EQ_SURF).abs() < 1e-9);
        // stratosphere clamps to 200 K
        assert_eq!(t_equilibrium(0.3, 3.0e3), hs::T_MIN);
    }

    #[test]
    fn relaxation_rates() {
        // boundary layer relaxes faster, most strongly at the equator
        assert!(k_t(0.0, 1.0) > k_t(0.0, 0.5));
        assert!(k_t(0.0, 1.0) > k_t(1.0, 1.0));
        assert_eq!(k_t(0.5, 0.3), hs::K_A, "free atmosphere uses k_a");
        // friction only below σ_b
        assert_eq!(k_v(0.5), 0.0);
        assert!(k_v(0.9) > 0.0);
        assert!((k_v(1.0) - hs::K_F).abs() < 1e-18);
    }

    #[test]
    fn forcing_damps_low_level_winds_only() {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(1));
        let sa = StandardAtmosphere::new(&grid);
        let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    st.u.set(i, j, k, 10.0);
                }
            }
        }
        boundary::fill_boundaries(&mut st, &geom);
        let mut diag = Diag::new(&geom);
        diag.update_surface(&geom, &sa, &st, 0, geom.ny as isize);
        apply_held_suarez(&geom, &sa, &diag, &mut st, geom.interior(), 36000.0);
        // top level (σ ~ 0.125 < σ_b): no friction
        assert_eq!(st.u.get(3, 3, 0), 10.0);
        // bottom level (σ ~ 0.875 > σ_b): damped
        let bottom = st.u.get(3, 3, geom.nz as isize - 1);
        assert!(bottom < 10.0 && bottom > 0.0);
    }

    #[test]
    fn forcing_drives_phi_towards_equilibrium() {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(1));
        let sa = StandardAtmosphere::new(&grid);
        let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        let mut diag = Diag::new(&geom);
        diag.update_surface(&geom, &sa, &st, 0, geom.ny as isize);
        // huge dt → Φ lands (almost exactly) on Φ_eq
        apply_held_suarez(&geom, &sa, &diag, &mut st, geom.interior(), 1.0e9);
        let k = geom.nz as isize - 1;
        let j = geom.ny as isize / 2;
        let lat = grid.latitude(j as usize);
        let sigma = geom.sigma_c(k);
        let pres = c::P_TOP + sigma * diag.pes.get(3, j);
        let want =
            diag.cap_p.get(3, j) * c::R_DRY * (t_equilibrium(lat, pres) - sa.t_tilde[k as usize])
                / c::B_GRAVITY_WAVE;
        assert!((st.phi.get(3, j, k) - want).abs() < 1e-9);
        // equator ends warmer than pole at the surface
        assert!(st.phi.get(3, j, k) > st.phi.get(3, 0, k));
    }
}
