//! Checkpoint/rollback resilience for the CA dynamical core.
//!
//! The communication layer (`agcm-comm`) can *detect* trouble — corrupt
//! payloads behind the checksum framing, receive timeouts, failed peers —
//! and the exchanger retries what is transient.  This module supplies the
//! *recovery* half:
//!
//! * [`Checkpoint`] — everything a bitwise restart of a model needs: the
//!   prognostic state, the cached `C` outputs that Eq. 13 reuses across
//!   steps, and the step-loop flags,
//! * [`CheckpointRing`] — a bounded in-memory ring of recent checkpoints,
//! * [`write_checkpoint`]/[`read_checkpoint`] — a versioned binary on-disk
//!   format for restart files,
//! * [`Resilient`] — the uniform capture/restore/degrade surface the
//!   serial, Algorithm 1 and Algorithm 2 models all implement,
//! * [`ResilientRunner`] — the step loop with a blow-up guard: every step
//!   ends in one small control-plane `allreduce(Max)` that agrees on
//!   health; on failure all ranks roll back to the last checkpoint in
//!   lockstep and re-run the window in degraded mode (blocking exchanges,
//!   exact `C(ψ^{i-1})`) before giving up with a typed
//!   [`ResilienceError`].
//!
//! The control plane runs on a **dedicated split communicator** so its
//! collective sequence numbers stay in lockstep no matter how many model
//! collectives the aborted attempt did or did not reach.

use crate::par::{Alg1Model, CaModel};
use crate::serial::SerialModel;
use crate::state::State;
use agcm_comm::{AllreduceAlgo, CommError, CommResult, Communicator, ReduceOp};
use agcm_mesh::{Field2, Field3, HaloWidths};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Magic + version tag of the on-disk checkpoint format.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"AGCMCKP1";

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

/// A restartable snapshot of one rank's model.
///
/// The cached-`C` trio (`vsum`, `gw`, `phi_p`) is `Some` for models that
/// reuse `C` outputs across steps (Eq. 13: the serial approximate variant
/// and Algorithm 2); Algorithm 1 recomputes `C` every sweep and stores
/// `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Completed steps at capture time.
    pub step: u64,
    /// The prognostic state (full arrays, halos included).
    pub state: State,
    /// Cached vertical sums `Σ` from the last `C` execution.
    pub vsum: Option<Field2>,
    /// Cached `g_w` from the last `C` execution.
    pub gw: Option<Field3>,
    /// Cached `φ'` from the last `C` execution.
    pub phi_p: Option<Field3>,
    /// Whether the cached trio is valid (Eq. 13 may reuse it).
    pub c_cached: bool,
    /// Whether `state` still awaits its fused smoothing (Algorithm 2).
    pub pending_smooth: bool,
}

// ---------------------------------------------------------------------------
// CheckpointRing
// ---------------------------------------------------------------------------

/// A bounded ring of recent checkpoints (oldest evicted first).
#[derive(Debug)]
pub struct CheckpointRing {
    cap: usize,
    items: VecDeque<Checkpoint>,
}

impl CheckpointRing {
    /// A ring holding at most `capacity >= 1` checkpoints.
    pub fn new(capacity: usize) -> Self {
        CheckpointRing {
            cap: capacity.max(1),
            items: VecDeque::new(),
        }
    }

    /// Insert, evicting the oldest entry when full.
    pub fn push(&mut self, ck: Checkpoint) {
        if self.items.len() == self.cap {
            self.items.pop_front();
        }
        self.items.push_back(ck);
    }

    /// The most recent checkpoint, if any.
    pub fn latest(&self) -> Option<&Checkpoint> {
        self.items.back()
    }

    /// Remove and return the most recent checkpoint (fall back to an older
    /// one after a failed degraded re-run).
    pub fn drop_latest(&mut self) -> Option<Checkpoint> {
        self.items.pop_back()
    }

    /// Stored checkpoints.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

// ---------------------------------------------------------------------------
// Binary on-disk format
// ---------------------------------------------------------------------------

fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn w_halo(w: &mut impl Write, h: HaloWidths) -> io::Result<()> {
    for v in [h.xm, h.xp, h.ym, h.yp, h.zm, h.zp] {
        w_u64(w, v as u64)?;
    }
    Ok(())
}

fn r_halo(r: &mut impl Read) -> io::Result<HaloWidths> {
    let mut v = [0usize; 6];
    for slot in &mut v {
        *slot = r_u64(r)? as usize;
    }
    Ok(HaloWidths {
        xm: v[0],
        xp: v[1],
        ym: v[2],
        yp: v[3],
        zm: v[4],
        zp: v[5],
    })
}

fn w_raw(w: &mut impl Write, data: &[f64]) -> io::Result<()> {
    w_u64(w, data.len() as u64)?;
    for v in data {
        w.write_all(&v.to_bits().to_le_bytes())?;
    }
    Ok(())
}

fn r_raw(r: &mut impl Read, into: &mut [f64]) -> io::Result<()> {
    let n = r_u64(r)? as usize;
    if n != into.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint array length {n} != allocated {}", into.len()),
        ));
    }
    let mut b = [0u8; 8];
    for v in into {
        r.read_exact(&mut b)?;
        *v = f64::from_bits(u64::from_le_bytes(b));
    }
    Ok(())
}

fn w_field3(w: &mut impl Write, f: &Field3) -> io::Result<()> {
    let (nx, ny, nz) = f.extents();
    w_u64(w, nx as u64)?;
    w_u64(w, ny as u64)?;
    w_u64(w, nz as u64)?;
    w_halo(w, f.halo())?;
    w_raw(w, f.raw())
}

fn r_field3(r: &mut impl Read) -> io::Result<Field3> {
    let nx = r_u64(r)? as usize;
    let ny = r_u64(r)? as usize;
    let nz = r_u64(r)? as usize;
    let halo = r_halo(r)?;
    let mut f = Field3::new(nx, ny, nz, halo);
    r_raw(r, f.raw_mut())?;
    Ok(f)
}

fn w_field2(w: &mut impl Write, f: &Field2) -> io::Result<()> {
    let (nx, ny) = f.extents();
    w_u64(w, nx as u64)?;
    w_u64(w, ny as u64)?;
    w_halo(w, f.halo())?;
    w_raw(w, f.raw())
}

fn r_field2(r: &mut impl Read) -> io::Result<Field2> {
    let nx = r_u64(r)? as usize;
    let ny = r_u64(r)? as usize;
    let halo = r_halo(r)?;
    let mut f = Field2::new(nx, ny, halo);
    r_raw(r, f.raw_mut())?;
    Ok(f)
}

const FLAG_C_CACHED: u64 = 1;
const FLAG_PENDING_SMOOTH: u64 = 2;
const FLAG_HAS_TRIO: u64 = 4;

/// Serialize a checkpoint to `writer` (versioned, little-endian, bitwise).
pub fn write_checkpoint_to(writer: &mut impl Write, ck: &Checkpoint) -> io::Result<()> {
    writer.write_all(CHECKPOINT_MAGIC)?;
    w_u64(writer, ck.step)?;
    let mut flags = 0;
    if ck.c_cached {
        flags |= FLAG_C_CACHED;
    }
    if ck.pending_smooth {
        flags |= FLAG_PENDING_SMOOTH;
    }
    let trio = match (&ck.vsum, &ck.gw, &ck.phi_p) {
        (Some(vsum), Some(gw), Some(phi_p)) => Some((vsum, gw, phi_p)),
        _ => None,
    };
    if trio.is_some() {
        flags |= FLAG_HAS_TRIO;
    }
    w_u64(writer, flags)?;
    w_field3(writer, &ck.state.u)?;
    w_field3(writer, &ck.state.v)?;
    w_field3(writer, &ck.state.phi)?;
    w_field2(writer, &ck.state.psa)?;
    if let Some((vsum, gw, phi_p)) = trio {
        w_field2(writer, vsum)?;
        w_field3(writer, gw)?;
        w_field3(writer, phi_p)?;
    }
    Ok(())
}

/// Deserialize a checkpoint written by [`write_checkpoint_to`].
pub fn read_checkpoint_from(reader: &mut impl Read) -> io::Result<Checkpoint> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != CHECKPOINT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an AGCM checkpoint (bad magic)",
        ));
    }
    let step = r_u64(reader)?;
    let flags = r_u64(reader)?;
    let u = r_field3(reader)?;
    let v = r_field3(reader)?;
    let phi = r_field3(reader)?;
    let psa = r_field2(reader)?;
    let (vsum, gw, phi_p) = if flags & FLAG_HAS_TRIO != 0 {
        (
            Some(r_field2(reader)?),
            Some(r_field3(reader)?),
            Some(r_field3(reader)?),
        )
    } else {
        (None, None, None)
    };
    Ok(Checkpoint {
        step,
        state: State { u, v, phi, psa },
        vsum,
        gw,
        phi_p,
        c_cached: flags & FLAG_C_CACHED != 0,
        pending_smooth: flags & FLAG_PENDING_SMOOTH != 0,
    })
}

/// Write a checkpoint file durably and atomically.
///
/// A checkpoint only earns its keep if it survives the crash that makes it
/// necessary, so the write path is the full crash-consistency dance:
/// serialize to `<path>.tmp`, `fsync` the file (a rename can commit a name
/// to an *empty* inode if the data is still in the page cache), rename over
/// `path`, then `fsync` the parent directory so the rename itself is on
/// disk.  Any mid-write error removes the `.tmp` so a failed attempt cannot
/// leave droppings that a later recovery scan could mistake for state.
pub fn write_checkpoint(path: &Path, ck: &Checkpoint) -> io::Result<()> {
    write_checkpoint_with(path, &mut |w| write_checkpoint_to(&mut &mut *w, ck))
}

/// The durable-write machinery behind [`write_checkpoint`], with the body
/// serialization injectable so tests can force a mid-write failure.
fn write_checkpoint_with(
    path: &Path,
    write_body: &mut dyn FnMut(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(&file);
        write_body(&mut w)?;
        w.flush()?;
        drop(w);
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)
    })();
    if result.is_err() {
        // best-effort: the primary error is the one worth reporting
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// `fsync` the directory containing `path`, making a just-completed rename
/// durable.  Directory handles cannot be synced on all platforms; where
/// they cannot, this is a no-op (the rename is still atomic, just not
/// crash-durable).
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Read a checkpoint file written by [`write_checkpoint`].
pub fn read_checkpoint(path: &Path) -> io::Result<Checkpoint> {
    let mut r = io::BufReader::new(std::fs::File::open(path)?);
    read_checkpoint_from(&mut r)
}

// ---------------------------------------------------------------------------
// Config + errors
// ---------------------------------------------------------------------------

/// Tunables of the [`ResilientRunner`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Take a checkpoint every this many steps (0 disables checkpointing —
    /// any failure is then immediately fatal).
    pub checkpoint_interval: u64,
    /// How many checkpoints the in-memory ring keeps.
    pub ring_capacity: usize,
    /// Give up (typed error) after this many rollbacks in one run.
    pub max_rollbacks: u32,
    /// Blow-up guard: roll back when `max|ξ|` exceeds this.
    pub max_abs_limit: f64,
    /// When set, every checkpoint is also written here as
    /// `rank{R}_step{S}.agcmckpt`.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint_interval: 5,
            ring_capacity: 2,
            max_rollbacks: 4,
            max_abs_limit: 1e6,
            checkpoint_dir: None,
        }
    }
}

/// Why a resilient run gave up.
#[derive(Debug)]
pub enum ResilienceError {
    /// The rollback budget is spent (or no checkpoint exists to return to).
    RollbackExhausted {
        /// Step whose attempt failed last.
        step: u64,
        /// Rollbacks performed before giving up.
        rollbacks: u32,
    },
    /// A peer rank died — retry/rollback cannot recover a lost rank.
    PeerLost(CommError),
    /// The control-plane communicator itself failed.
    ControlLost(CommError),
    /// Checkpoint I/O failed.
    Io(io::Error),
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::RollbackExhausted { step, rollbacks } => write!(
                f,
                "rollback budget exhausted after {rollbacks} rollback(s); \
                 last failure at step {step}"
            ),
            ResilienceError::PeerLost(e) => write!(f, "peer rank lost: {e}"),
            ResilienceError::ControlLost(e) => write!(f, "control plane failed: {e}"),
            ResilienceError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ResilienceError {}

impl From<io::Error> for ResilienceError {
    fn from(e: io::Error) -> Self {
        ResilienceError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Resilient trait
// ---------------------------------------------------------------------------

/// The uniform surface the runner drives: capture/restore, degraded mode,
/// sequence resync, and single-step advancement.
pub trait Resilient {
    /// Snapshot the restart state.
    fn capture(&self) -> Checkpoint;
    /// Restore a [`Resilient::capture`]d snapshot bit-for-bit.
    fn restore(&mut self, ck: &Checkpoint);
    /// Enter/leave degraded mode (blocking exchanges, exact `C`).
    fn set_degraded(&mut self, on: bool);
    /// Jump communication sequence numbers to an epoch-derived base.
    fn resync(&mut self, epoch: u64);
    /// Completed steps.
    fn steps_done(&self) -> u64;
    /// Advance one step.
    fn step_once(&mut self, comm: &Communicator) -> CommResult<()>;
    /// Drain deferred work after the last step (e.g. the fused smoothing).
    fn finish_run(&mut self, _comm: &Communicator) -> CommResult<()> {
        Ok(())
    }
    /// The prognostic state (for the blow-up guard).
    fn state_ref(&self) -> &State;
}

impl Resilient for SerialModel {
    fn capture(&self) -> Checkpoint {
        SerialModel::capture(self)
    }
    fn restore(&mut self, ck: &Checkpoint) {
        SerialModel::restore(self, ck)
    }
    fn set_degraded(&mut self, on: bool) {
        SerialModel::set_degraded(self, on)
    }
    fn resync(&mut self, _epoch: u64) {}
    fn steps_done(&self) -> u64 {
        self.steps as u64
    }
    fn step_once(&mut self, _comm: &Communicator) -> CommResult<()> {
        self.step();
        Ok(())
    }
    fn state_ref(&self) -> &State {
        &self.state
    }
}

impl Resilient for Alg1Model {
    fn capture(&self) -> Checkpoint {
        Alg1Model::capture(self)
    }
    fn restore(&mut self, ck: &Checkpoint) {
        Alg1Model::restore(self, ck)
    }
    fn set_degraded(&mut self, on: bool) {
        Alg1Model::set_degraded(self, on)
    }
    fn resync(&mut self, epoch: u64) {
        Alg1Model::resync(self, epoch)
    }
    fn steps_done(&self) -> u64 {
        self.steps as u64
    }
    fn step_once(&mut self, comm: &Communicator) -> CommResult<()> {
        self.step(comm)
    }
    fn state_ref(&self) -> &State {
        &self.state
    }
}

impl Resilient for CaModel {
    fn capture(&self) -> Checkpoint {
        CaModel::capture(self)
    }
    fn restore(&mut self, ck: &Checkpoint) {
        CaModel::restore(self, ck)
    }
    fn set_degraded(&mut self, on: bool) {
        CaModel::set_degraded(self, on)
    }
    fn resync(&mut self, epoch: u64) {
        CaModel::resync(self, epoch)
    }
    fn steps_done(&self) -> u64 {
        self.steps as u64
    }
    fn step_once(&mut self, comm: &Communicator) -> CommResult<()> {
        self.step(comm)
    }
    fn finish_run(&mut self, comm: &Communicator) -> CommResult<()> {
        self.finish(comm)
    }
    fn state_ref(&self) -> &State {
        &self.state
    }
}

// ---------------------------------------------------------------------------
// ResilientRunner
// ---------------------------------------------------------------------------

/// What a resilient run did.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Net completed steps (== the requested count on success).
    pub steps: u64,
    /// Step attempts, including re-runs after rollbacks.
    pub attempted_steps: u64,
    /// Rollbacks performed.
    pub rollbacks: u32,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Steps executed in degraded mode.
    pub degraded_steps: u64,
}

/// The resilient step loop: checkpoint ring + health consensus + rollback.
pub struct ResilientRunner {
    cfg: ResilienceConfig,
    ctrl: Communicator,
    ring: CheckpointRing,
    epoch: u64,
    report: RunReport,
    last_ck: Option<u64>,
    failed_at: Option<u64>,
}

// health-flag encoding on the control plane: 0 = ok, 1 = transient error /
// NaN / blow-up, 2 + peer = a peer rank is gone (unrecoverable)
const HEALTH_PEER_BASE: f64 = 2.0;

fn ctrl_err(e: CommError) -> ResilienceError {
    match e {
        CommError::PeerFailed { .. } | CommError::PeerGone { .. } => ResilienceError::PeerLost(e),
        _ => ResilienceError::ControlLost(e),
    }
}

/// How one step attempt ended, locally.
enum Attempt {
    Ok,
    /// Recoverable: a transient comm error, or a mid-step panic (a blown
    /// dycore invariant — e.g. `p_es > 0` — is a blow-up signal; the
    /// checkpoint restore discards the inconsistent model state).
    Transient,
    /// Unrecoverable: a peer rank is gone.
    PeerLoss(CommError),
}

fn classify(res: std::thread::Result<CommResult<()>>) -> Attempt {
    match res {
        Ok(Ok(())) => Attempt::Ok,
        Ok(Err(e @ (CommError::PeerFailed { .. } | CommError::PeerGone { .. }))) => {
            Attempt::PeerLoss(e)
        }
        Ok(Err(_)) => Attempt::Transient,
        Err(_panic) => Attempt::Transient,
    }
}

impl ResilientRunner {
    /// Build a runner; splits a **dedicated control communicator** off
    /// `comm` (collective — every rank of `comm` must call this).
    pub fn new(comm: &mut Communicator, cfg: ResilienceConfig) -> CommResult<Self> {
        let rank = comm.rank();
        let ctrl = comm.split(0, rank)?;
        // the control plane must outlast a peer that is still draining a
        // doomed step attempt (whose receives give up after the *model*
        // comm's timeout), so it waits strictly longer
        ctrl.set_timeout(comm.timeout() * 3 + std::time::Duration::from_secs(1));
        let ring = CheckpointRing::new(cfg.ring_capacity);
        Ok(ResilientRunner {
            cfg,
            ctrl,
            ring,
            epoch: 0,
            report: RunReport::default(),
            last_ck: None,
            failed_at: None,
        })
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// Run `model` to `n_steps` completed steps, recovering from transient
    /// faults via checkpoint rollback + degraded re-runs.
    ///
    /// Collective: every rank calls with its share of the model and the
    /// same `n_steps`.  On success the model's deferred smoothing has been
    /// drained ([`Resilient::finish_run`]).
    pub fn run<M: Resilient>(
        &mut self,
        model: &mut M,
        comm: &Communicator,
        n_steps: u64,
    ) -> Result<RunReport, ResilienceError> {
        loop {
            let s = model.steps_done();
            // leave degraded mode once safely past the failure point
            if let Some(f) = self.failed_at {
                if s > f {
                    model.set_degraded(false);
                    self.failed_at = None;
                }
            }
            if s >= n_steps {
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    model.finish_run(comm)
                }));
                if self.health_round(model, classify(res))? {
                    break;
                }
                self.rollback(model, comm, s)?;
                continue;
            }
            if self.cfg.checkpoint_interval > 0
                && s.is_multiple_of(self.cfg.checkpoint_interval)
                && self.last_ck != Some(s)
            {
                self.take_checkpoint(model)?;
            }
            let res =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.step_once(comm)));
            self.report.attempted_steps += 1;
            if self.health_round(model, classify(res))? {
                if self.failed_at.is_some() {
                    self.report.degraded_steps += 1;
                }
            } else {
                self.rollback(model, comm, s)?;
            }
        }
        self.report.steps = n_steps;
        Ok(self.report.clone())
    }

    /// One control-plane consensus: `Ok(true)` = everyone healthy,
    /// `Ok(false)` = somebody needs a rollback, `Err` = unrecoverable.
    fn health_round<M: Resilient>(
        &self,
        model: &M,
        attempt: Attempt,
    ) -> Result<bool, ResilienceError> {
        let nan = model.state_ref().has_nan();
        let mut flags = [
            match &attempt {
                Attempt::Ok => 0.0,
                Attempt::Transient => 1.0,
                Attempt::PeerLoss(CommError::PeerFailed { peer })
                | Attempt::PeerLoss(CommError::PeerGone { peer }) => {
                    HEALTH_PEER_BASE + *peer as f64
                }
                Attempt::PeerLoss(_) => HEALTH_PEER_BASE,
            },
            if nan { 1.0 } else { 0.0 },
            if nan {
                0.0
            } else {
                model.state_ref().max_abs()
            },
        ];
        self.ctrl
            .allreduce(ReduceOp::Max, &mut flags, AllreduceAlgo::Ring)
            .map_err(ctrl_err)?;
        if flags[0] >= HEALTH_PEER_BASE {
            let peer = (flags[0] - HEALTH_PEER_BASE) as usize;
            return Err(ResilienceError::PeerLost(match attempt {
                Attempt::PeerLoss(e) => e,
                _ => CommError::PeerFailed { peer },
            }));
        }
        Ok(flags[0] == 0.0 && flags[1] == 0.0 && flags[2] <= self.cfg.max_abs_limit)
    }

    fn take_checkpoint<M: Resilient>(&mut self, model: &M) -> Result<(), ResilienceError> {
        let ck = model.capture();
        if let Some(dir) = &self.cfg.checkpoint_dir {
            let path = dir.join(format!(
                "rank{:04}_step{:08}.agcmckpt",
                self.ctrl.rank(),
                ck.step
            ));
            write_checkpoint(&path, &ck)?;
        }
        self.last_ck = Some(ck.step);
        self.ring.push(ck);
        self.report.checkpoints += 1;
        agcm_obs::Registry::global()
            .counter("resilience.checkpoints")
            .inc();
        Ok(())
    }

    /// The lockstep rollback protocol (see DESIGN.md §7).
    fn rollback<M: Resilient>(
        &mut self,
        model: &mut M,
        comm: &Communicator,
        failed_step: u64,
    ) -> Result<(), ResilienceError> {
        let _sp = agcm_obs::span(agcm_obs::SpanKind::Recovery, "resilience.rollback");
        // a *degraded* re-run that fails again means the latest checkpoint
        // window is poisoned: fall back to an older checkpoint
        if self.failed_at.is_some() {
            self.ring.drop_latest();
        }
        if self.report.rollbacks >= self.cfg.max_rollbacks || self.ring.is_empty() {
            return Err(ResilienceError::RollbackExhausted {
                step: failed_step,
                rollbacks: self.report.rollbacks,
            });
        }
        self.report.rollbacks += 1;
        agcm_obs::Registry::global()
            .counter("resilience.rollbacks")
            .inc();
        self.epoch += 1;
        // 1. everyone has stopped stepping (control plane is in lockstep)
        self.ctrl.barrier().map_err(ctrl_err)?;
        // 2. drop stragglers of the aborted attempt; own-context mail and
        //    control-plane messages (which may be in flight from a rank
        //    already past its purge) survive
        comm.purge_other_contexts(&[&self.ctrl]);
        // 3. nobody re-enters the model until all queues are purged
        self.ctrl.barrier().map_err(ctrl_err)?;
        let ck = self.ring.latest().expect("ring checked non-empty above");
        model.restore(ck);
        // 4. sequence numbers jump to an epoch base: a straggler of the
        //    aborted attempt can never match a tag of the re-run
        model.resync(self.epoch);
        model.set_degraded(true);
        self.failed_at = Some(self.failed_at.map_or(failed_step, |f| f.max(failed_step)));
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::init;
    use crate::serial::{Iteration, SerialModel};
    use agcm_comm::Universe;

    fn seeded_serial(variant: Iteration) -> SerialModel {
        let cfg = ModelConfig::test_small();
        let mut m = SerialModel::new(&cfg, variant).unwrap();
        let ic = init::perturbed_rest(m.geom(), 200.0, 0.3, 3);
        m.set_state(&ic);
        m
    }

    #[test]
    fn ring_evicts_oldest_and_drops_latest() {
        let m = seeded_serial(Iteration::Exact);
        let mut ring = CheckpointRing::new(2);
        assert!(ring.is_empty());
        for step in 0..3u64 {
            let mut ck = m.capture();
            ck.step = step;
            ring.push(ck);
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.latest().unwrap().step, 2);
        assert_eq!(ring.drop_latest().unwrap().step, 2);
        assert_eq!(ring.latest().unwrap().step, 1);
        assert!(ring.drop_latest().is_some());
        assert!(ring.drop_latest().is_none());
    }

    #[test]
    fn capture_restore_is_bitwise_for_serial_approximate() {
        let mut m = seeded_serial(Iteration::Approximate);
        m.run(3);
        let ck = Resilient::capture(&m);
        m.run(2);
        let later = m.state.clone();
        Resilient::restore(&mut m, &ck);
        assert_eq!(m.steps, 3);
        m.run(2);
        // the approximate variant reuses cached C: the checkpoint must
        // restore the cache too for a bitwise replay
        assert_eq!(m.state.max_abs_diff(&later), 0.0);
    }

    #[test]
    fn disk_round_trip_is_bitwise() {
        let mut m = seeded_serial(Iteration::Approximate);
        m.run(2);
        let ck = Resilient::capture(&m);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("agcm_ckpt_test_{}.agcmckpt", std::process::id()));
        write_checkpoint(&path, &ck).unwrap();
        let back = read_checkpoint(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, ck);
        // and it must actually restart bit-for-bit
        m.run(1);
        let gold = m.state.clone();
        let mut m2 = seeded_serial(Iteration::Approximate);
        Resilient::restore(&mut m2, &back);
        m2.run(1);
        assert_eq!(m2.state.max_abs_diff(&gold), 0.0);
    }

    #[test]
    fn failed_write_cleans_up_tmp_and_preserves_previous_checkpoint() {
        let mut m = seeded_serial(Iteration::Approximate);
        m.run(1);
        let ck = Resilient::capture(&m);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("agcm_ckpt_fail_{}.agcmckpt", std::process::id()));
        let tmp = path.with_extension("tmp");
        // a good checkpoint is already on disk...
        write_checkpoint(&path, &ck).unwrap();
        assert!(!tmp.exists(), "successful write leaves no tmp");
        // ...then a later write dies mid-serialization
        let err = write_checkpoint_with(&path, &mut |w| {
            w.write_all(b"partial garbage")?;
            w.flush()?;
            Err(io::Error::other("injected disk-full"))
        })
        .unwrap_err();
        assert_eq!(err.to_string(), "injected disk-full");
        assert!(
            !tmp.exists(),
            "failed write must remove {} so recovery never sees droppings",
            tmp.display()
        );
        // the previous checkpoint survives untouched
        let back = read_checkpoint(&path).unwrap();
        assert_eq!(back, ck);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_rejects_bad_magic() {
        let mut buf: Vec<u8> = b"NOTACKPT".to_vec();
        buf.extend_from_slice(&[0u8; 64]);
        let err = read_checkpoint_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn runner_happy_path_matches_plain_run() {
        let gold = {
            let mut m = seeded_serial(Iteration::Approximate);
            m.run(4);
            m.state.clone()
        };
        let report = Universe::run(1, move |comm| {
            let mut m = seeded_serial(Iteration::Approximate);
            let mut runner = ResilientRunner::new(
                comm,
                ResilienceConfig {
                    checkpoint_interval: 2,
                    ..ResilienceConfig::default()
                },
            )
            .unwrap();
            let report = runner.run(&mut m, comm, 4).unwrap();
            assert_eq!(
                m.state.max_abs_diff(&gold),
                0.0,
                "resilient run must not perturb"
            );
            report
        })
        .pop()
        .unwrap();
        assert_eq!(report.steps, 4);
        assert_eq!(report.attempted_steps, 4);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.checkpoints, 2); // steps 0 and 2
        assert_eq!(report.degraded_steps, 0);
    }

    #[test]
    fn runner_exhausts_rollbacks_on_persistent_blowup() {
        // an absurd blow-up threshold makes every attempt "fail": the
        // runner must retry through its budget and then give up typed
        let err = Universe::run(1, |comm| {
            let mut m = seeded_serial(Iteration::Exact);
            let mut runner = ResilientRunner::new(
                comm,
                ResilienceConfig {
                    checkpoint_interval: 1,
                    ring_capacity: 2,
                    max_rollbacks: 3,
                    max_abs_limit: 1e-12,
                    checkpoint_dir: None,
                },
            )
            .unwrap();
            runner.run(&mut m, comm, 4).unwrap_err()
        })
        .pop()
        .unwrap();
        match err {
            ResilienceError::RollbackExhausted { rollbacks, .. } => {
                assert!(rollbacks <= 3, "budget respected, got {rollbacks}")
            }
            other => panic!("expected RollbackExhausted, got {other}"),
        }
    }
}
