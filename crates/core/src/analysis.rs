//! Communication/computation cost analysis (§5.3 and Theorems 4.1/4.2).
//!
//! Two layers:
//!
//! 1. the paper's **asymptotic formulas** (`W_CA`, `S_CA`, `W_YZ`, …) and
//!    lower bounds, as plain functions,
//! 2. an **exact per-rank traffic predictor** ([`predict_step`]): it walks
//!    the *same* schedule, exchange plans and collective shapes the real
//!    models execute and counts every message, byte and point-update — so
//!    its counts are testable against the runtime's measured statistics at
//!    small rank counts, and then evaluated at the paper's 128–1024 ranks
//!    where the α–β–γ model turns them into predicted seconds (Figures 1,
//!    6, 7, 8).

use crate::config::ModelConfig;
use crate::filterop::build_filter;
use crate::geometry::{GrowSides, Region};
use agcm_comm::CostModel;
use agcm_mesh::{Decomposition, ExchangePlan, HaloWidths, ProcessGrid};

// ---------------------------------------------------------------------------
// §5.3 asymptotic formulas
// ---------------------------------------------------------------------------

/// `W_CA = Θ(2MK · n_x·(n_y/p_y)·(n_z/p_z)·log p_z)` — words moved per
/// rank by the communication-avoiding algorithm over `K` steps.
pub fn w_ca(cfg: &ModelConfig, py: usize, pz: usize, k_steps: usize) -> f64 {
    let m = cfg.m_iters as f64;
    let vol = cfg.nx as f64 * (cfg.ny as f64 / py as f64) * (cfg.nz as f64 / pz as f64);
    2.0 * m * k_steps as f64 * vol * (pz as f64).log2().max(0.0)
}

/// `S_CA = Θ((2M + 2)·K)` — synchronizations of the CA algorithm.
pub fn s_ca(cfg: &ModelConfig, k_steps: usize) -> f64 {
    ((2 * cfg.m_iters + 2) * k_steps) as f64
}

/// `W_YZ = Θ(3MK · n_x·(n_y/p_y)·(n_z/p_z)·log p_z)`.
pub fn w_yz(cfg: &ModelConfig, py: usize, pz: usize, k_steps: usize) -> f64 {
    let m = cfg.m_iters as f64;
    let vol = cfg.nx as f64 * (cfg.ny as f64 / py as f64) * (cfg.nz as f64 / pz as f64);
    3.0 * m * k_steps as f64 * vol * (pz as f64).log2().max(0.0)
}

/// `S_YZ = Θ((6M + 4)·K)`.
pub fn s_yz(cfg: &ModelConfig, k_steps: usize) -> f64 {
    ((6 * cfg.m_iters + 4) * k_steps) as f64
}

/// `W_XY = Θ(6MK · n_z·(n_y/p_y)·(n_x/p_x)·log p_x)`.
pub fn w_xy(cfg: &ModelConfig, px: usize, py: usize, k_steps: usize) -> f64 {
    let m = cfg.m_iters as f64;
    let vol = cfg.nz as f64 * (cfg.ny as f64 / py as f64) * (cfg.nx as f64 / px as f64);
    6.0 * m * k_steps as f64 * vol * (px as f64).log2().max(0.0)
}

/// `S_XY = Θ((9M + 10)·K)`.
pub fn s_xy(cfg: &ModelConfig, k_steps: usize) -> f64 {
    ((9 * cfg.m_iters + 10) * k_steps) as f64
}

/// Theorem 4.1: communication lower bound of the `n_x`-input Fourier
/// filtering over `p_x` ranks, `Ω(2·n_x·log n_x / (p_x·log(n_x/p_x)))`.
pub fn fft_lower_bound(nx: usize, px: usize) -> f64 {
    if px <= 1 {
        return 0.0; // η_x = 0
    }
    let nxf = nx as f64;
    let pxf = px as f64;
    2.0 * nxf * nxf.log2() / (pxf * (nxf / pxf).log2().max(1e-9))
}

/// Theorem 4.2: communication lower bound of the summation operator `C`,
/// `Ω(2(p_z − 1)·n_x·n_y)` (total words over all ranks).
pub fn reduction_lower_bound(nx: usize, ny: usize, pz: usize) -> f64 {
    2.0 * (pz.saturating_sub(1)) as f64 * (nx * ny) as f64
}

// ---------------------------------------------------------------------------
// Exact per-step traffic prediction
// ---------------------------------------------------------------------------

/// Which algorithm/decomposition pairing a prediction covers (the three
/// lines of Figures 6–8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgKind {
    /// Algorithm 1 under the X-Y decomposition.
    OriginalXY,
    /// Algorithm 1 under the Y-Z decomposition.
    OriginalYZ,
    /// Algorithm 2 (communication-avoiding, Y-Z).
    CommAvoiding,
}

impl AlgKind {
    /// Display label used by the figures harness.
    pub fn label(&self) -> &'static str {
        match self {
            AlgKind::OriginalXY => "original X-Y",
            AlgKind::OriginalYZ => "original Y-Z",
            AlgKind::CommAvoiding => "comm-avoiding",
        }
    }
}

/// Relative per-point work of one adaptation sweep (baseline 1.0).
const W_ADAPT: f64 = 1.0;
/// Advection sweeps touch three operators per component.
const W_ADVECT: f64 = 1.2;
/// Smoothing is a light linear filter.
const W_SMOOTH: f64 = 0.35;
/// Per-point FFT work factor (multiplied by `log₂ n_x`): a forward+inverse
/// real FFT costs ≈10·n·log₂n flops ≈ 0.07·log₂n point-update units per
/// point.
const W_FFT: f64 = 0.07;
/// Local column-integral work per point per `C` application.
const W_C: f64 = 0.3;

/// Predicted per-rank, per-step costs.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankCost {
    /// Halo-exchange messages posted.
    pub p2p_msgs: u64,
    /// `f64` values sent in halo exchanges.
    pub p2p_elems: u64,
    /// Collective events (the operator `C` + filter transposes).
    pub collective_calls: u64,
    /// Predicted stencil (halo) communication seconds, after overlap credit.
    pub stencil_comm_s: f64,
    /// Predicted collective communication seconds.
    pub collective_comm_s: f64,
    /// Predicted computation seconds.
    pub compute_s: f64,
}

impl RankCost {
    /// Total predicted step seconds.
    pub fn total_s(&self) -> f64 {
        self.stencil_comm_s + self.collective_comm_s + self.compute_s
    }
}

/// Aggregate over ranks: the slowest rank bounds the step.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepCost {
    /// Cost of the most-loaded rank.
    pub max: RankCost,
    /// Per-category maxima (a step is bounded by each category's slowest
    /// rank; using per-category maxima matches how the paper reports the
    /// communication portions separately).
    pub stencil_comm_s: f64,
    /// Max collective seconds over ranks.
    pub collective_comm_s: f64,
    /// Max compute seconds over ranks.
    pub compute_s: f64,
}

impl StepCost {
    /// Total predicted step seconds (category maxima summed).
    pub fn total_s(&self) -> f64 {
        self.stencil_comm_s + self.collective_comm_s + self.compute_s
    }
}

/// exchange volume helper: messages + elems of one exchange for a list of
/// (is_2d, extents) fields at the given depth
fn exchange_traffic(
    decomp: &Decomposition,
    rank: usize,
    depth: HaloWidths,
    fields: &[(bool, (usize, usize, usize))],
) -> (u64, u64) {
    let mut msgs = 0u64;
    let mut elems = 0u64;
    for &(is2d, ext) in fields {
        let plan = ExchangePlan::with_extents(decomp, rank, depth, ext);
        for spec in plan.specs() {
            if is2d && spec.link.offset.2 != 0 {
                continue;
            }
            let send = if is2d {
                let l = |r: &std::ops::Range<isize>| (r.end - r.start).max(0) as u64;
                l(&spec.send.x) * l(&spec.send.y)
            } else {
                spec.send.len() as u64
            };
            msgs += 1;
            elems += send;
        }
    }
    (msgs, elems)
}

/// Per-global-row "is filtered" flags (computed once per prediction).
fn active_flags(cfg: &ModelConfig) -> Vec<bool> {
    let grid = cfg.grid().expect("valid config");
    let lats: Vec<f64> = (0..grid.ny()).map(|j| grid.latitude(j)).collect();
    let filter = agcm_fft::FourierFilter::new(grid.nx(), &lats, cfg.filter_cutoff_deg.to_radians());
    let _ = build_filter; // the models use the same profiles
    (0..grid.ny()).map(|j| filter.is_active(j)).collect()
}

fn active_rows(flags: &[bool], y0: usize, y1: usize) -> usize {
    flags[y0.min(flags.len())..y1.min(flags.len())]
        .iter()
        .filter(|&&a| a)
        .count()
}

/// The communication-avoiding sweep-group size: how many stencil sweeps one
/// exchange feeds.  The paper's Algorithm 2 uses `g = 3M` (one exchange for
/// the whole adaptation process), which requires every block to hold the
/// `3M(+2)`-deep halo; when blocks are smaller (large `p` on the paper's
/// mesh), the depth clamps and the exchange frequency rises — still below
/// the original algorithm's per-sweep exchanges.
///
/// Valid group sizes are **iteration-aligned** (`3M, 3(M−1), …, 3`) or `1`:
/// a group boundary inside a nonlinear iteration would invalidate the
/// iteration's base state `ψ^{i−1}` on the dilated sweep regions, whereas
/// iteration boundaries (and the degenerate interior-only `g = 1`) keep
/// every read covered.  The executable `par::alg2::CaModel` uses exactly
/// this schedule.  Returns `(g_adapt, fused_smoothing, g_advect)`.
pub fn ca_group_size(cfg: &ModelConfig, pgrid: &ProcessGrid) -> (usize, bool, usize) {
    let (_, py, pz) = pgrid.dims();
    let m = cfg.m_iters;
    let by = if py > 1 { cfg.ny / py } else { usize::MAX };
    let bz = if pz > 1 { cfg.nz / pz } else { usize::MAX };
    let fits = |g: usize, fuse: bool| g <= bz && g + if fuse { 2 } else { 0 } <= by;
    for k in (1..=m).rev() {
        let g = 3 * k;
        if fits(g, true) {
            return (g, true, 3.min(by).min(bz).max(1));
        }
        if fits(g, false) {
            return (g, false, 3.min(by).min(bz).max(1));
        }
    }
    let fuse1 = fits(1, true);
    (1, fuse1, 3.min(by).min(bz).max(1))
}

/// Predict one time step of `alg` on `pgrid` under the machine `model`.
///
/// The schedule mirrors `par::alg1` / `par::alg2` exactly — the same
/// exchange depths, field lists, collective shapes and sweep regions — and
/// generalizes the CA schedule to clamped sweep groups (see
/// [`ca_group_size`]) so large-`p` decompositions whose blocks cannot hold
/// the full `3M`-deep halo remain predictable.  Tests assert the
/// message/element counts against measured runtime statistics in the
/// full-depth regime.
pub fn predict_step(
    cfg: &ModelConfig,
    alg: AlgKind,
    pgrid: ProcessGrid,
    model: &CostModel,
) -> StepCost {
    predict_step_mode(cfg, alg, pgrid, model, CaMode::Grouped)
}

/// How the CA deep-halo schedule is costed when blocks are smaller than the
/// `3M`-deep halo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaMode {
    /// Clamp the halo depth to the block and exchange every `g` sweeps —
    /// what an executable implementation must do ([`ca_group_size`]).
    Grouped,
    /// The paper's idealized accounting: always 2 exchanges of full
    /// `3M(+2)`-deep halos, with volumes computed geometrically even where
    /// the halo would span several neighbour blocks.  On the paper's own
    /// 720x360x30 mesh the full depth does not fit any feasible Y-Z block
    /// for p ≥ 128 with M = 3, so the paper's reported per-step frequency
    /// of 2 is reproducible only under this accounting (see
    /// EXPERIMENTS.md).
    PaperIdeal,
}

/// [`predict_step`] with an explicit CA costing mode.
pub fn predict_step_mode(
    cfg: &ModelConfig,
    alg: AlgKind,
    pgrid: ProcessGrid,
    model: &CostModel,
    mode: CaMode,
) -> StepCost {
    let decomp = Decomposition::new(cfg.extents(), pgrid).expect("valid decomposition");
    let flags = active_flags(cfg);
    let p = pgrid.size();
    let mut agg = StepCost::default();
    let mut best_total = -1.0f64;
    for rank in 0..p {
        let rc = predict_rank_mode(cfg, alg, &decomp, rank, model, &flags, mode);
        agg.stencil_comm_s = agg.stencil_comm_s.max(rc.stencil_comm_s);
        agg.collective_comm_s = agg.collective_comm_s.max(rc.collective_comm_s);
        agg.compute_s = agg.compute_s.max(rc.compute_s);
        if rc.total_s() > best_total {
            best_total = rc.total_s();
            agg.max = rc;
        }
    }
    agg
}

/// Predicted cost of one specific rank (exposed for count-validation
/// tests).  `flags` are the per-global-row filter-active flags from the
/// model's polar-filter profiles.
pub fn predict_rank(
    cfg: &ModelConfig,
    alg: AlgKind,
    decomp: &Decomposition,
    rank: usize,
    model: &CostModel,
    flags: &[bool],
) -> RankCost {
    predict_rank_mode(cfg, alg, decomp, rank, model, flags, CaMode::Grouped)
}

/// [`predict_rank`] with an explicit CA costing mode.
#[allow(clippy::too_many_arguments)]
pub fn predict_rank_mode(
    cfg: &ModelConfig,
    alg: AlgKind,
    decomp: &Decomposition,
    rank: usize,
    model: &CostModel,
    flags: &[bool],
    mode: CaMode,
) -> RankCost {
    let m = cfg.m_iters;
    let sub = decomp.subdomain(rank);
    let (nxl, nyl, nzl) = sub.extents();
    let n_local = (nxl * nyl * nzl) as f64;
    let (px, _py, pz) = decomp.process_grid().dims();
    let f3 = (nxl, nyl, nzl);
    let f3i = (nxl, nyl, nzl + 1); // interface field (g_w)
    let f2 = (nxl, nyl, 1);
    let gamma = model.gamma;
    let mut rc = RankCost::default();

    // active filtered rows of this rank (each filtered at every level for
    // U, V, Phi + once for p'_sa per filter application)
    let act = active_rows(flags, sub.y.start, sub.y.end) as f64;
    let fft_work = |rows: f64| rows * nxl as f64 * W_FFT * (cfg.nx as f64).log2();
    let filter_rows_per_apply = act * (3.0 * nzl as f64 + 1.0);

    match alg {
        AlgKind::OriginalXY | AlgKind::OriginalYZ => {
            let depth_sweep = crate::par::schedule::depth_sweep();
            let depth_smooth = crate::par::schedule::depth_smooth();
            let state4 = [(false, f3), (false, f3), (false, f3), (true, f2)];
            let adv5 = [
                (false, f3),
                (false, f3),
                (false, f3),
                (true, f2),
                (false, f3i),
            ];
            // 3M adaptation + 2 advection + 1 smoothing exchanges of xi,
            // 1 advection exchange that also carries g_w
            let (em, ee) = exchange_traffic(decomp, rank, depth_sweep, &state4);
            let (am, ae) = exchange_traffic(decomp, rank, depth_sweep, &adv5);
            let (sm, se) = exchange_traffic(decomp, rank, depth_smooth, &state4);
            rc.p2p_msgs = (3 * m as u64 + 2) * em + am + sm;
            rc.p2p_elems = (3 * m as u64 + 2) * ee + ae + se;
            // 3M + 4 communication rounds, each paying the sync skew
            rc.stencil_comm_s = (3.0 * m as f64 + 2.0) * model.exchange_round(em, ee)
                + model.exchange_round(am, ae)
                + model.exchange_round(sm, se);

            // collectives: 3M allgathers for C (Y-Z), 2(3M+3) filter
            // transposes (X-Y)
            if pz > 1 {
                let elems = nxl * (2 * nyl + 2);
                rc.collective_calls += 3 * m as u64;
                rc.collective_comm_s += 3.0 * m as f64 * model.allgather_ring(pz, elems);
            }
            if px > 1 {
                let applies = 3 * m as u64 + 3;
                rc.collective_calls += 2 * applies;
                let fwd = filter_rows_per_apply * nxl as f64;
                let n_mine = filter_rows_per_apply / px as f64;
                let back = n_mine * cfg.nx as f64;
                rc.collective_comm_s += applies as f64
                    * (model.alltoall_pairwise(px, fwd as usize)
                        + model.alltoall_pairwise(px, back as usize));
            }

            // compute: (3M adaptation + 3 advection) sweeps + smoothing +
            // filter + C column work
            rc.compute_s = gamma
                * (3.0 * m as f64 * n_local * (W_ADAPT + W_C)
                    + 3.0 * n_local * W_ADVECT
                    + n_local * W_SMOOTH
                    + (3.0 * m as f64 + 3.0) * fft_work(filter_rows_per_apply));
        }
        AlgKind::CommAvoiding => {
            let total = 3 * m;
            let (g, fuse, ga) = match mode {
                CaMode::Grouped => ca_group_size(cfg, decomp.process_grid()),
                CaMode::PaperIdeal => (total, true, 3),
            };
            let ca = crate::par::schedule::ca_depths(g, fuse, ga);
            let (deep, group, sweep1, shallow) = (ca.deep, ca.group, ca.sweep, ca.shallow);
            let deep7 = [
                (false, f3),
                (false, f3),
                (false, f3),
                (true, f2),
                (true, f2),
                (false, f3i),
                (false, f3),
            ];
            let state4 = [(false, f3), (false, f3), (false, f3), (true, f2)];
            let adv5 = [
                (false, f3),
                (false, f3),
                (false, f3),
                (true, f2),
                (false, f3i),
            ];
            // exchange schedule mirroring par::alg2: before sweep s an
            // exchange happens iff (s-1) % g == 0; the step's first carries
            // the cached-C trio at deep depth, later iteration starts carry
            // it at group depth, and (g = 1 only) mid-iteration refreshes
            // carry just the evaluation state
            let (dm, de) = exchange_traffic(decomp, rank, deep, &deep7);
            let (gm, ge) = exchange_traffic(decomp, rank, group, &deep7);
            let (wm, we) = exchange_traffic(decomp, rank, sweep1, &state4);
            let (am, ae) = exchange_traffic(decomp, rank, shallow, &adv5);
            let mut msgs = 0u64;
            let mut elems = 0u64;
            let mut stencil_s = 0.0;
            // overlap credit: the first deep exchange hides behind the
            // former smoothing of D1 (when fused)
            let d1_work = if fuse {
                gamma * W_SMOOTH * ((nyl.saturating_sub(4)) * nzl * nxl) as f64
            } else {
                0.0
            };
            for s in 1..=total {
                if (s - 1) % g != 0 {
                    continue;
                }
                if s == 1 {
                    msgs += dm;
                    elems += de;
                    stencil_s += (model.exchange_round(dm, de) - d1_work).max(0.0);
                } else if (s - 1) % 3 == 0 {
                    msgs += gm;
                    elems += ge;
                    stencil_s += model.exchange_round(gm, ge);
                } else {
                    // g == 1: mid-iteration refresh of the evaluation state
                    msgs += wm;
                    elems += we;
                    stencil_s += model.exchange_round(wm, we);
                }
            }
            // advection exchanges; the first overlaps the inner sweep
            let inner_work =
                gamma * W_ADVECT * ((nyl.saturating_sub(2)) * nzl.saturating_sub(2) * nxl) as f64;
            for s in 1..=3usize {
                if (s - 1) % ga != 0 {
                    continue;
                }
                msgs += am;
                elems += ae;
                let t = model.exchange_round(am, ae);
                stencil_s += if s == 1 { (t - inner_work).max(0.0) } else { t };
            }
            // separate smoothing exchange when fusion does not fit
            if !fuse {
                let depth_smooth = HaloWidths {
                    xm: 2,
                    xp: 2,
                    ym: 2.min(nyl),
                    yp: 2.min(nyl),
                    zm: 0,
                    zp: 0,
                };
                let (sm, se) = exchange_traffic(decomp, rank, depth_smooth, &state4);
                msgs += sm;
                elems += se;
                stencil_s += model.exchange_round(sm, se);
            }
            rc.p2p_msgs = msgs;
            rc.p2p_elems = elems;
            rc.stencil_comm_s = stencil_s;

            // sweep regions: validity counts down within each group (the
            // full-depth case g = 3M reproduces Algorithm 2's dil(3M - s))
            let grow = GrowSides {
                north: !sub.at_north(),
                south: !sub.at_south(cfg.ny),
                top: !sub.at_top(),
                bottom: !sub.at_surface(cfg.nz),
            };
            let interior = Region::interior(nyl, nzl);
            let dil = |d: isize| interior.dilate(d, d, nyl, nzl, deep, grow);
            let mut adapt_points = 0.0;
            let mut coll_s = 0.0;
            let mut coll_calls = 0u64;
            let mut filt_rows = 0.0;
            for s in 1..=total {
                let valid = g - (s - 1) % g;
                let region = dil(valid as isize - 1);
                adapt_points += region.area() as f64 * nxl as f64;
                let y0 = (sub.y.start as isize + region.y0).max(0) as usize;
                let y1 = ((sub.y.start as isize + region.y1).max(0) as usize).min(cfg.ny);
                filt_rows += active_rows(flags, y0, y1) as f64
                    * ((region.z1 - region.z0) as f64 * 3.0 + 1.0);
                let fresh = s % 3 != 1; // sub-updates 2 and 3 run C fresh
                if fresh && pz > 1 {
                    let wy = (region.y1 - region.y0) as usize;
                    let elems = nxl * (2 * wy + 2);
                    coll_calls += 1;
                    coll_s += model.allgather_ring(pz, elems);
                }
            }
            rc.collective_calls = coll_calls;
            rc.collective_comm_s = coll_s;

            // advection sweeps with their own validity countdown
            let dila = |d: isize| interior.dilate(d, d, nyl, nzl, shallow, grow);
            let mut adv_points = 0.0;
            for s in 1..=3usize {
                let valid = ga - (s - 1) % ga;
                let region = dila(valid as isize - 1);
                adv_points += region.area() as f64 * nxl as f64;
                let y0 = (sub.y.start as isize + region.y0).max(0) as usize;
                let y1 = ((sub.y.start as isize + region.y1).max(0) as usize).min(cfg.ny);
                filt_rows += active_rows(flags, y0, y1) as f64
                    * ((region.z1 - region.z0) as f64 * 3.0 + 1.0);
            }
            // smoothing on interior + g halo (redundant halo smoothing)
            let smooth_points = if fuse {
                dil(g as isize).area() as f64 * nxl as f64
            } else {
                n_local
            };
            rc.compute_s = gamma
                * (adapt_points * (W_ADAPT + W_C)
                    + adv_points * W_ADVECT
                    + smooth_points * W_SMOOTH
                    + fft_work(filt_rows));
        }
    }
    rc
}

// ---------------------------------------------------------------------------
// Scaling charts and crossover prediction under any (fitted) cost model
// ---------------------------------------------------------------------------

/// One rank count of a strong-scaling prediction (one column of Figures
/// 6–8): the baseline algorithm's and the CA algorithm's predicted step
/// seconds under a common cost model.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Total rank count.
    pub p: usize,
    /// Predicted step seconds of the baseline algorithm.
    pub baseline_s: f64,
    /// Predicted step seconds of the communication-avoiding algorithm.
    pub ca_s: f64,
}

impl ScalingPoint {
    /// Baseline-over-CA speedup (> 1 when CA wins).
    pub fn speedup(&self) -> f64 {
        if self.ca_s > 0.0 {
            self.baseline_s / self.ca_s
        } else {
            f64::INFINITY
        }
    }
}

/// Chart `baseline` vs the CA algorithm across `ps` rank counts under
/// `model` — which may be a calibrated preset ([`CostModel::tianhe2`]) or
/// a machine-fitted model from measured exchange spans
/// (`agcm_comm::fit::CommFit::model`): the prediction machinery is
/// identical, only the α/β/γ/sync coefficients change.  `grid` maps a
/// rank count (and algorithm) to its process grid, decoupling this crate
/// from the bench harness's grid policy.
pub fn scaling_chart(
    cfg: &ModelConfig,
    baseline: AlgKind,
    ps: &[usize],
    grid: impl Fn(usize, AlgKind) -> ProcessGrid,
    model: &CostModel,
) -> Vec<ScalingPoint> {
    ps.iter()
        .map(|&p| ScalingPoint {
            p,
            baseline_s: predict_step(cfg, baseline, grid(p, baseline), model).total_s(),
            ca_s: predict_step(
                cfg,
                AlgKind::CommAvoiding,
                grid(p, AlgKind::CommAvoiding),
                model,
            )
            .total_s(),
        })
        .collect()
}

/// The crossover rank count: the smallest charted `p` from which the CA
/// algorithm wins (speedup ≥ 1) *and keeps winning* through the rest of
/// the chart.  `None` when the baseline still wins at the largest charted
/// `p` — under a fitted model of a latency-free loopback network, CA's
/// redundant computation can outweigh its saved messages at every
/// feasible scale, and that is a finding, not an error.
pub fn crossover_rank(chart: &[ScalingPoint]) -> Option<usize> {
    let last_loss = chart
        .iter()
        .rposition(|pt| pt.speedup() < 1.0)
        .map(|i| i + 1)
        .unwrap_or(0);
    chart.get(last_loss).map(|pt| pt.p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_cfg() -> ModelConfig {
        ModelConfig::paper_50km()
    }

    #[test]
    fn asymptotic_ordering_matches_section_5_3() {
        // W_XY >> W_YZ > W_CA and S_XY > S_YZ > S_CA (paper's conclusion)
        let cfg = paper_cfg();
        let k = 100;
        // p = 512: XY = 32x16, YZ = 512 = 32x16 in (y, z)... use the
        // paper-feasible maxima: YZ (py, pz) with pz <= 15, XY (px, py)
        let wxy = w_xy(&cfg, 32, 16, k);
        let wyz = w_yz(&cfg, 64, 8, k);
        let wca = w_ca(&cfg, 64, 8, k);
        assert!(wxy > wyz, "W_XY = {wxy} must exceed W_YZ = {wyz}");
        assert!(wyz > wca, "W_YZ = {wyz} must exceed W_CA = {wca}");
        assert!((wyz / wca - 1.5).abs() < 1e-12, "W_YZ/W_CA = 3M/2M = 1.5");
        assert!(s_xy(&cfg, k) > s_yz(&cfg, k));
        assert!(s_yz(&cfg, k) > s_ca(&cfg, k));
        // M = 3: S_XY = 37K, S_YZ = 22K, S_CA = 8K
        assert_eq!(s_xy(&cfg, 1), 37.0);
        assert_eq!(s_yz(&cfg, 1), 22.0);
        assert_eq!(s_ca(&cfg, 1), 8.0);
    }

    #[test]
    fn lower_bounds_behave() {
        // FFT bound vanishes at p_x = 1 (η_x = 0) — the whole point of the
        // Y-Z choice in §4.2.1
        assert_eq!(fft_lower_bound(720, 1), 0.0);
        assert!(fft_lower_bound(720, 2) > 0.0);
        // reduction bound grows linearly in p_z − 1
        let b2 = reduction_lower_bound(720, 360, 2);
        let b3 = reduction_lower_bound(720, 360, 3);
        assert_eq!(b2, 2.0 * 720.0 * 360.0);
        assert_eq!(b3, 2.0 * b2);
        assert_eq!(reduction_lower_bound(720, 360, 1), 0.0);
    }

    #[test]
    fn fft_term_dominates_reduction_term_per_rank() {
        // §4.2's optimization principle, stated per rank at equal p = 512:
        // the words a rank moves for the distributed filtering under X-Y
        // (Theorem 4.1 bound x its share of circles) far exceed the words
        // it moves for the summation under Y-Z (Theorem 4.2 bound / p).
        let cfg = paper_cfg();
        let (px, py_xy) = (16, 32);
        let circles_per_rank = (cfg.ny / py_xy) * cfg.nz;
        let fft_per_rank = fft_lower_bound(cfg.nx, px) * circles_per_rank as f64;
        let (py_yz, pz) = (64, 8);
        let red_per_rank = reduction_lower_bound(cfg.nx, cfg.ny, pz) / (py_yz * pz) as f64;
        assert!(
            fft_per_rank > 5.0 * red_per_rank,
            "per-rank FFT words {fft_per_rank} must dominate reduction words {red_per_rank}"
        );
    }

    #[test]
    fn predicted_ordering_at_paper_scale() {
        // Figure 8's ordering: CA < YZ < XY in total step time at p = 512
        let cfg = paper_cfg();
        let model = CostModel::tianhe2();
        let ca = predict_step(
            &cfg,
            AlgKind::CommAvoiding,
            ProcessGrid::yz(64, 8).unwrap(),
            &model,
        );
        let yz = predict_step(
            &cfg,
            AlgKind::OriginalYZ,
            ProcessGrid::yz(64, 8).unwrap(),
            &model,
        );
        let xy = predict_step(
            &cfg,
            AlgKind::OriginalXY,
            ProcessGrid::xy(32, 16).unwrap(),
            &model,
        );
        assert!(
            ca.total_s() < yz.total_s(),
            "CA {} must beat YZ {}",
            ca.total_s(),
            yz.total_s()
        );
        assert!(
            yz.total_s() < xy.total_s(),
            "YZ {} must beat XY {}",
            yz.total_s(),
            xy.total_s()
        );
        // stencil communication: 13 exchanges vs 2 → several-fold speedup
        assert!(yz.stencil_comm_s / ca.stencil_comm_s > 2.0);
        // collective communication: XY's distributed FFT dwarfs YZ's C
        assert!(xy.collective_comm_s > yz.collective_comm_s);
        // and CA's collectives are ~2/3 of YZ's
        let r = ca.collective_comm_s / yz.collective_comm_s;
        assert!((0.55..0.8).contains(&r), "collective ratio {r}");
    }

    #[test]
    fn predictions_scale_down_with_more_ranks() {
        let cfg = paper_cfg();
        let model = CostModel::tianhe2();
        let t256 = predict_step(
            &cfg,
            AlgKind::CommAvoiding,
            ProcessGrid::yz(32, 8).unwrap(),
            &model,
        );
        let t1024 = predict_step(
            &cfg,
            AlgKind::CommAvoiding,
            ProcessGrid::yz(128, 8).unwrap(),
            &model,
        );
        assert!(t1024.compute_s < t256.compute_s);
        assert!(t1024.total_s() < t256.total_s());
    }

    #[test]
    fn scaling_chart_finds_paper_crossover() {
        // under the Tianhe-2 calibration CA wins everywhere in the paper's
        // range, so the crossover is the first charted rank count
        let cfg = paper_cfg();
        let model = CostModel::tianhe2();
        let grid = |p: usize, alg: AlgKind| match alg {
            AlgKind::OriginalXY => ProcessGrid::xy(16, p / 16).expect("xy"),
            _ => ProcessGrid::yz(p / 8, 8).expect("yz"),
        };
        let chart = scaling_chart(
            &cfg,
            AlgKind::OriginalYZ,
            &[128, 256, 512, 1024],
            grid,
            &model,
        );
        assert_eq!(chart.len(), 4);
        assert!(chart.iter().all(|pt| pt.speedup() > 1.0));
        assert_eq!(crossover_rank(&chart), Some(128));
    }

    #[test]
    fn crossover_rank_respects_late_losses() {
        let pt = |p, baseline_s, ca_s| ScalingPoint {
            p,
            baseline_s,
            ca_s,
        };
        // CA loses at 128, wins from 256 on: crossover at 256
        let chart = [pt(128, 1.0, 1.2), pt(256, 1.0, 0.9), pt(512, 1.0, 0.7)];
        assert_eq!(crossover_rank(&chart), Some(256));
        // a relapse at 512 pushes the crossover past it
        let chart = [pt(128, 1.0, 0.9), pt(256, 1.0, 0.8), pt(512, 1.0, 1.1)];
        assert_eq!(crossover_rank(&chart), None);
        // baseline never beaten: first charted p
        let chart = [pt(128, 1.0, 0.5), pt(256, 1.0, 0.4)];
        assert_eq!(crossover_rank(&chart), Some(128));
        assert_eq!(crossover_rank(&[]), None);
    }
}
