//! The advection tendency `L̃(ξ) = −Σ_m L_m` (Eq. 3).
//!
//! `L₁`/`L₂` are the horizontal advection terms and `L₃` the vertical
//! convection term, in the IAP "2F′ − F" flux/advective blend
//!
//! ```text
//! L₁(F) = 1/(2a sinθ) (2 ∂(Fu)/∂λ − F ∂u/∂λ)
//! L₂(F) = 1/(2a sinθ) (2 ∂(Fv sinθ)/∂θ − F ∂(v sinθ)/∂θ)
//! L₃(F) = 1/2 (2 ∂(Fσ̇)/∂σ − F ∂σ̇/∂σ)
//! ```
//!
//! whose antisymmetry is what conserves the transformed quadratic energy.
//! The discretization is second-order with fluxes at the staggered
//! half-points, giving reads inside the Table 2 footprints.  The vertical
//! velocity `σ̇` comes from the `g_w` diagnostic of the **last** `C`
//! application of the adaptation process — the advection process itself
//! runs no collective, exactly as the operator form `(F L)³` requires.

use crate::diag::Diag;
use crate::geometry::{LocalGeometry, Region};
use crate::pool::{self, StateBand};
use crate::state::State;
use agcm_mesh::grid::constants as c;

const SIN_EPS: f64 = 1e-12;

/// Compute the advection tendency of `arg` into `tend` over `region`.
///
/// Preconditions: `arg` halos valid one row/level beyond `region`,
/// `diag.pes`/`cap_p` on `region ⊕ 1` rows, and `diag.gw` valid on `region`
/// (frozen from the adaptation process; exchanged alongside ξ by the CA
/// algorithm's advection message).  `tend.psa` is set to zero — the paper's
/// `L̃` has a zero fourth component.
///
/// Row-sliced and banded over the intra-rank worker pool; bit-identical to
/// [`advection_tendency_scalar`] at any `AGCM_THREADS`.
pub fn advection_tendency(
    geom: &LocalGeometry,
    arg: &State,
    diag: &Diag,
    tend: &mut State,
    region: Region,
) {
    let (mut bands, nb) = pool::split_state_bands(
        &mut tend.u,
        &mut tend.v,
        &mut tend.phi,
        &region,
        pool::workers_for(
            geom.nx
                * (region.y1 - region.y0).max(0) as usize
                * (region.z1 - region.z0).max(0) as usize,
        ),
    );
    pool::run(&mut bands[..nb], "advection.band", |band| {
        advection_band(geom, arg, diag, band);
    });

    // L̃'s fourth component is zero
    let nx = geom.nx as isize;
    for j in region.y0..region.y1 {
        tend.psa.row_mut(0, nx, j).fill(0.0);
    }
}

/// Row-sliced advection sweep over one worker band.
///
/// Input rows are fetched once per `(j, k)` at `x ∈ [-2, nx+1)` (the L1
/// terms reach two points west through the staggered physical velocities),
/// so the slice index of logical point `i + d` is `ii + 2 + d`.
fn advection_band(geom: &LocalGeometry, arg: &State, diag: &Diag, band: &mut StateBand<'_>) {
    let StateBand {
        region,
        u: t_u,
        v: t_v,
        phi: t_phi,
    } = band;
    let nx = geom.nx as isize;
    let a = c::EARTH_RADIUS;
    let dl = geom.dlambda();
    let dt = geom.dtheta();

    for k in region.z0..region.z1 {
        let ds = geom.dsigma(k);
        for j in region.y0..region.y1 {
            let s_c = geom.sin_c(j);
            let s_v = geom.sin_v(j);
            let sv_j = geom.sin_v(j);
            let sv_n = geom.sin_v(j - 1);
            let sc_s = geom.sin_c(j + 1);

            let r_u = arg.u.row(-2, nx + 1, j, k);
            let r_u_s = arg.u.row(-2, nx + 1, j + 1, k);
            let r_u_n = arg.u.row(-2, nx + 1, j - 1, k);
            let r_u_kl = arg.u.row(-2, nx + 1, j, k - 1);
            let r_u_kh = arg.u.row(-2, nx + 1, j, k + 1);
            let r_v = arg.v.row(-2, nx + 1, j, k);
            let r_v_s = arg.v.row(-2, nx + 1, j + 1, k);
            let r_v_n = arg.v.row(-2, nx + 1, j - 1, k);
            let r_v_kl = arg.v.row(-2, nx + 1, j, k - 1);
            let r_v_kh = arg.v.row(-2, nx + 1, j, k + 1);
            let r_f = arg.phi.row(-2, nx + 1, j, k);
            let r_f_s = arg.phi.row(-2, nx + 1, j + 1, k);
            let r_f_n = arg.phi.row(-2, nx + 1, j - 1, k);
            let r_f_kl = arg.phi.row(-2, nx + 1, j, k - 1);
            let r_f_kh = arg.phi.row(-2, nx + 1, j, k + 1);
            let r_cp = diag.cap_p.row(-2, nx + 1, j);
            let r_cp_s = diag.cap_p.row(-2, nx + 1, j + 1);
            let r_cp_n = diag.cap_p.row(-2, nx + 1, j - 1);
            let r_pes = diag.pes.row(-2, nx + 1, j);
            let r_pes_s = diag.pes.row(-2, nx + 1, j + 1);
            let r_gw = diag.gw.row(-2, nx + 1, j, k);
            let r_gw_h = diag.gw.row(-2, nx + 1, j, k + 1);
            let r_gw_s = diag.gw.row(-2, nx + 1, j + 1, k);
            let r_gw_s_h = diag.gw.row(-2, nx + 1, j + 1, k + 1);

            // physical velocities at slice index p (logical x = p - 2) and
            // σ̇ at the interfaces — same expression trees as the scalar
            // reference's `u_at`/`v_at`/`sdot_at`
            let ua = |p: usize| r_u[p] / (0.5 * (r_cp[p - 1] + r_cp[p]));
            let ua_s = |p: usize| r_u_s[p] / (0.5 * (r_cp_s[p - 1] + r_cp_s[p]));
            let va = |p: usize| r_v[p] / (0.5 * (r_cp[p] + r_cp_s[p]));
            let va_n = |p: usize| r_v_n[p] / (0.5 * (r_cp_n[p] + r_cp[p]));
            let sd = |p: usize| r_gw[p] * c::P_REF / r_pes[p];
            let sd_h = |p: usize| r_gw_h[p] * c::P_REF / r_pes[p];
            let sd_s = |p: usize| r_gw_s[p] * c::P_REF / r_pes_s[p];
            let sd_s_h = |p: usize| r_gw_s_h[p] * c::P_REF / r_pes_s[p];

            // =============== U (at U point i-1/2, j, k) ===============
            let o_u = t_u.row_mut(0, nx, j, k);
            for (ii, o) in o_u.iter_mut().enumerate() {
                let q = ii + 2;
                let f = r_u[q];
                let uc_e = 0.5 * (ua(q) + ua(q + 1));
                let uc_w = 0.5 * (ua(q - 1) + ua(q));
                let fc_e = 0.5 * (r_u[q] + r_u[q + 1]);
                let fc_w = 0.5 * (r_u[q - 1] + r_u[q]);
                let l1 =
                    (2.0 * (fc_e * uc_e - fc_w * uc_w) - f * (uc_e - uc_w)) / (2.0 * a * s_c * dl);
                let vs_s = 0.5 * (va(q - 1) + va(q)) * sv_j;
                let vs_n = 0.5 * (va_n(q - 1) + va_n(q)) * sv_n;
                let ff_s = 0.5 * (r_u[q] + r_u_s[q]);
                let ff_n = 0.5 * (r_u_n[q] + r_u[q]);
                let l2 =
                    (2.0 * (ff_s * vs_s - ff_n * vs_n) - f * (vs_s - vs_n)) / (2.0 * a * s_c * dt);
                let sd_lo = 0.5 * (sd(q - 1) + sd(q));
                let sd_hi = 0.5 * (sd_h(q - 1) + sd_h(q));
                let fk_lo = 0.5 * (r_u_kl[q] + r_u[q]);
                let fk_hi = 0.5 * (r_u[q] + r_u_kh[q]);
                let l3 = (2.0 * (fk_hi * sd_hi - fk_lo * sd_lo) - f * (sd_hi - sd_lo)) / (2.0 * ds);
                *o = -(l1 + l2 + l3);
            }

            // =============== V (at V point i, j+1/2, k) ===============
            let o_v = t_v.row_mut(0, nx, j, k);
            if s_v < SIN_EPS {
                o_v.fill(0.0);
            } else {
                for (ii, o) in o_v.iter_mut().enumerate() {
                    let q = ii + 2;
                    let f = r_v[q];
                    let ux_e = 0.5 * (ua(q + 1) + ua_s(q + 1));
                    let ux_w = 0.5 * (ua(q) + ua_s(q));
                    let fx_e = 0.5 * (r_v[q] + r_v[q + 1]);
                    let fx_w = 0.5 * (r_v[q - 1] + r_v[q]);
                    let l1 = (2.0 * (fx_e * ux_e - fx_w * ux_w) - f * (ux_e - ux_w))
                        / (2.0 * a * s_v * dl);
                    let vs_s = 0.5 * (r_v[q] + r_v_s[q]) / r_cp_s[q] * sc_s;
                    let vs_n = 0.5 * (r_v_n[q] + r_v[q]) / r_cp[q] * s_c;
                    let ff_s = 0.5 * (r_v[q] + r_v_s[q]);
                    let ff_n = 0.5 * (r_v_n[q] + r_v[q]);
                    let l2 = (2.0 * (ff_s * vs_s - ff_n * vs_n) - f * (vs_s - vs_n))
                        / (2.0 * a * s_v * dt);
                    let sd_lo = 0.5 * (sd(q) + sd_s(q));
                    let sd_hi = 0.5 * (sd_h(q) + sd_s_h(q));
                    let fk_lo = 0.5 * (r_v_kl[q] + r_v[q]);
                    let fk_hi = 0.5 * (r_v[q] + r_v_kh[q]);
                    let l3 =
                        (2.0 * (fk_hi * sd_hi - fk_lo * sd_lo) - f * (sd_hi - sd_lo)) / (2.0 * ds);
                    *o = -(l1 + l2 + l3);
                }
            }

            // =============== Φ (at cell centre i, j, k) ===============
            let o_phi = t_phi.row_mut(0, nx, j, k);
            for (ii, o) in o_phi.iter_mut().enumerate() {
                let q = ii + 2;
                let f = r_f[q];
                let u_e = ua(q + 1);
                let u_w = ua(q);
                let fx_e = 0.5 * (r_f[q] + r_f[q + 1]);
                let fx_w = 0.5 * (r_f[q - 1] + r_f[q]);
                let l1 = (2.0 * (fx_e * u_e - fx_w * u_w) - f * (u_e - u_w)) / (2.0 * a * s_c * dl);
                let v_s = va(q) * sv_j;
                let v_n = va_n(q) * sv_n;
                let fy_s = 0.5 * (r_f[q] + r_f_s[q]);
                let fy_n = 0.5 * (r_f_n[q] + r_f[q]);
                let l2 = (2.0 * (fy_s * v_s - fy_n * v_n) - f * (v_s - v_n)) / (2.0 * a * s_c * dt);
                let sd_lo = sd(q);
                let sd_hi = sd_h(q);
                let fk_lo = 0.5 * (r_f_kl[q] + r_f[q]);
                let fk_hi = 0.5 * (r_f[q] + r_f_kh[q]);
                let l3 = (2.0 * (fk_hi * sd_hi - fk_lo * sd_lo) - f * (sd_hi - sd_lo)) / (2.0 * ds);
                *o = -(l1 + l2 + l3);
            }
        }
    }
}

/// Scalar per-point reference implementation, retained verbatim as the
/// golden reference for the bitwise-equivalence property tests.
#[cfg(any(test, feature = "scalar-ref"))]
pub fn advection_tendency_scalar(
    geom: &LocalGeometry,
    arg: &State,
    diag: &Diag,
    tend: &mut State,
    region: Region,
) {
    let nx = geom.nx as isize;
    let a = c::EARTH_RADIUS;
    let dl = geom.dlambda();
    let dt = geom.dtheta();

    // physical velocities: u = U/P at U points, v = V/P at V points
    let u_at = |i: isize, j: isize, k: isize| {
        arg.u.get(i, j, k) / (0.5 * (diag.cap_p.get(i - 1, j) + diag.cap_p.get(i, j)))
    };
    let v_at = |i: isize, j: isize, k: isize| {
        arg.v.get(i, j, k) / (0.5 * (diag.cap_p.get(i, j) + diag.cap_p.get(i, j + 1)))
    };
    // σ̇ at the interface below centre k of the scalar column (i, j)
    let sdot_at = |i: isize, j: isize, k: isize| {
        let pes = diag.pes.get(i, j);
        diag.gw.get(i, j, k) * c::P_REF / pes
    };

    for k in region.z0..region.z1 {
        let ds = geom.dsigma(k);
        for j in region.y0..region.y1 {
            let s_c = geom.sin_c(j);
            let s_v = geom.sin_v(j);
            for i in 0..nx {
                // =============== U (at U point i-1/2, j, k) ===============
                {
                    let f = arg.u.get(i, j, k);
                    // --- L1: u-advection along λ; cell centres i-1, i are
                    //     the half-points of the U grid ---
                    let uc_e = 0.5 * (u_at(i, j, k) + u_at(i + 1, j, k)); // centre i
                    let uc_w = 0.5 * (u_at(i - 1, j, k) + u_at(i, j, k)); // centre i-1
                    let fc_e = 0.5 * (arg.u.get(i, j, k) + arg.u.get(i + 1, j, k));
                    let fc_w = 0.5 * (arg.u.get(i - 1, j, k) + arg.u.get(i, j, k));
                    let l1 = (2.0 * (fc_e * uc_e - fc_w * uc_w) - f * (uc_e - uc_w))
                        / (2.0 * a * s_c * dl);
                    // --- L2: v sinθ advection along θ; faces j, j-1 at the
                    //     U point's longitude ---
                    let vs_s = 0.5 * (v_at(i - 1, j, k) + v_at(i, j, k)) * geom.sin_v(j);
                    let vs_n =
                        0.5 * (v_at(i - 1, j - 1, k) + v_at(i, j - 1, k)) * geom.sin_v(j - 1);
                    let ff_s = 0.5 * (arg.u.get(i, j, k) + arg.u.get(i, j + 1, k));
                    let ff_n = 0.5 * (arg.u.get(i, j - 1, k) + arg.u.get(i, j, k));
                    let l2 = (2.0 * (ff_s * vs_s - ff_n * vs_n) - f * (vs_s - vs_n))
                        / (2.0 * a * s_c * dt);
                    // --- L3: σ̇ advection; interfaces k∓1/2 at the U point ---
                    let sd_lo = 0.5 * (sdot_at(i - 1, j, k) + sdot_at(i, j, k));
                    let sd_hi = 0.5 * (sdot_at(i - 1, j, k + 1) + sdot_at(i, j, k + 1));
                    let fk_lo = 0.5 * (arg.u.get(i, j, k - 1) + arg.u.get(i, j, k));
                    let fk_hi = 0.5 * (arg.u.get(i, j, k) + arg.u.get(i, j, k + 1));
                    let l3 =
                        (2.0 * (fk_hi * sd_hi - fk_lo * sd_lo) - f * (sd_hi - sd_lo)) / (2.0 * ds);
                    tend.u.set(i, j, k, -(l1 + l2 + l3));
                }
                // =============== V (at V point i, j+1/2, k) ===============
                {
                    if s_v < SIN_EPS {
                        tend.v.set(i, j, k, 0.0);
                    } else {
                        let f = arg.v.get(i, j, k);
                        // L1 along λ: x-faces of the V point are at i∓1/2,
                        // where u is averaged from rows j and j+1
                        let ux_e = 0.5 * (u_at(i + 1, j, k) + u_at(i + 1, j + 1, k));
                        let ux_w = 0.5 * (u_at(i, j, k) + u_at(i, j + 1, k));
                        let fx_e = 0.5 * (arg.v.get(i, j, k) + arg.v.get(i + 1, j, k));
                        let fx_w = 0.5 * (arg.v.get(i - 1, j, k) + arg.v.get(i, j, k));
                        let l1 = (2.0 * (fx_e * ux_e - fx_w * ux_w) - f * (ux_e - ux_w))
                            / (2.0 * a * s_v * dl);
                        // L2 along θ: scalar rows j, j+1 are the half-points.
                        // v there divides by the *collocated* P (the scalar
                        // row's own value), keeping the read depth at the
                        // j±1 of Table 2's L2(V) row.
                        let vs_s = 0.5 * (arg.v.get(i, j, k) + arg.v.get(i, j + 1, k))
                            / diag.cap_p.get(i, j + 1)
                            * geom.sin_c(j + 1);
                        let vs_n = 0.5 * (arg.v.get(i, j - 1, k) + arg.v.get(i, j, k))
                            / diag.cap_p.get(i, j)
                            * geom.sin_c(j);
                        let ff_s = 0.5 * (arg.v.get(i, j, k) + arg.v.get(i, j + 1, k));
                        let ff_n = 0.5 * (arg.v.get(i, j - 1, k) + arg.v.get(i, j, k));
                        let l2 = (2.0 * (ff_s * vs_s - ff_n * vs_n) - f * (vs_s - vs_n))
                            / (2.0 * a * s_v * dt);
                        // L3: σ̇ at V point interfaces
                        let sd_lo = 0.5 * (sdot_at(i, j, k) + sdot_at(i, j + 1, k));
                        let sd_hi = 0.5 * (sdot_at(i, j, k + 1) + sdot_at(i, j + 1, k + 1));
                        let fk_lo = 0.5 * (arg.v.get(i, j, k - 1) + arg.v.get(i, j, k));
                        let fk_hi = 0.5 * (arg.v.get(i, j, k) + arg.v.get(i, j, k + 1));
                        let l3 = (2.0 * (fk_hi * sd_hi - fk_lo * sd_lo) - f * (sd_hi - sd_lo))
                            / (2.0 * ds);
                        tend.v.set(i, j, k, -(l1 + l2 + l3));
                    }
                }
                // =============== Φ (at cell centre i, j, k) ===============
                {
                    let f = arg.phi.get(i, j, k);
                    // L1: x-faces are the U points i, i+1
                    let u_e = u_at(i + 1, j, k);
                    let u_w = u_at(i, j, k);
                    let fx_e = 0.5 * (arg.phi.get(i, j, k) + arg.phi.get(i + 1, j, k));
                    let fx_w = 0.5 * (arg.phi.get(i - 1, j, k) + arg.phi.get(i, j, k));
                    let l1 =
                        (2.0 * (fx_e * u_e - fx_w * u_w) - f * (u_e - u_w)) / (2.0 * a * s_c * dl);
                    // L2: y-faces are the V points j-1, j
                    let v_s = v_at(i, j, k) * geom.sin_v(j);
                    let v_n = v_at(i, j - 1, k) * geom.sin_v(j - 1);
                    let fy_s = 0.5 * (arg.phi.get(i, j, k) + arg.phi.get(i, j + 1, k));
                    let fy_n = 0.5 * (arg.phi.get(i, j - 1, k) + arg.phi.get(i, j, k));
                    let l2 =
                        (2.0 * (fy_s * v_s - fy_n * v_n) - f * (v_s - v_n)) / (2.0 * a * s_c * dt);
                    // L3: interfaces of the scalar column
                    let sd_lo = sdot_at(i, j, k);
                    let sd_hi = sdot_at(i, j, k + 1);
                    let fk_lo = 0.5 * (arg.phi.get(i, j, k - 1) + arg.phi.get(i, j, k));
                    let fk_hi = 0.5 * (arg.phi.get(i, j, k) + arg.phi.get(i, j, k + 1));
                    let l3 =
                        (2.0 * (fk_hi * sd_hi - fk_lo * sd_lo) - f * (sd_hi - sd_lo)) / (2.0 * ds);
                    tend.phi.set(i, j, k, -(l1 + l2 + l3));
                }
            }
        }
    }
    // L̃'s fourth component is zero
    for j in region.y0..region.y1 {
        for i in 0..nx {
            tend.psa.set(i, j, 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary;
    use crate::config::ModelConfig;
    use crate::stdatm::StandardAtmosphere;
    use crate::vertical::{apply_c, ZContext};
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    struct Setup {
        geom: LocalGeometry,
        sa: StandardAtmosphere,
        state: State,
        diag: Diag,
    }

    fn setup() -> Setup {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(3));
        let sa = StandardAtmosphere::new(&grid);
        let state = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        let diag = Diag::new(&geom);
        Setup {
            geom,
            sa,
            state,
            diag,
        }
    }

    fn run_tendency(s: &mut Setup) -> State {
        boundary::enforce_pole_v(&mut s.state, &s.geom);
        boundary::fill_boundaries(&mut s.state, &s.geom);
        let region = s.geom.interior();
        s.diag
            .update_surface(&s.geom, &s.sa, &s.state, region.y0 - 1, region.y1 + 1);
        // σ̇ diagnostics from the adaptation's C operator
        apply_c(
            &s.geom,
            &s.sa,
            &s.state,
            &mut s.diag,
            region,
            &ZContext::Serial,
            true,
        )
        .unwrap();
        let mut tend = State::like(&s.state);
        advection_tendency(&s.geom, &s.state, &s.diag, &mut tend, region);
        tend
    }

    #[test]
    fn rest_state_is_stationary() {
        let mut s = setup();
        let tend = run_tendency(&mut s);
        assert_eq!(tend.max_abs(), 0.0);
    }

    #[test]
    fn psa_component_is_zero() {
        let mut s = setup();
        for k in 0..s.geom.nz as isize {
            for j in 0..s.geom.ny as isize {
                for i in 0..s.geom.nx as isize {
                    s.state.u.set(i, j, k, (i as f64 * 0.5).sin() * 5.0);
                    s.state.phi.set(i, j, k, (i as f64 * 0.9).cos() * 10.0);
                }
            }
        }
        let tend = run_tendency(&mut s);
        assert_eq!(tend.psa.max_abs(), 0.0, "L̃ has no surface-pressure part");
    }

    #[test]
    fn zonal_advection_direction() {
        // uniform eastward u carrying a Φ bump: tendency at the bump's
        // eastern flank is positive (bump moves east)
        let mut s = setup();
        let nx = s.geom.nx as isize;
        for k in 0..s.geom.nz as isize {
            for j in 0..s.geom.ny as isize {
                for i in 0..nx {
                    s.state.u.set(i, j, k, 20.0);
                    let x = (i - 8) as f64;
                    s.state.phi.set(i, j, k, 30.0 * (-x * x / 4.0).exp());
                }
            }
        }
        let tend = run_tendency(&mut s);
        let jm = s.geom.ny as isize / 2;
        assert!(tend.phi.get(10, jm, 1) > 0.0, "east flank grows");
        assert!(tend.phi.get(6, jm, 1) < 0.0, "west flank shrinks");
    }

    #[test]
    fn uniform_field_unaffected_by_nondivergent_flow() {
        // If Φ is constant and the flow has no divergence, L(Φ) must vanish
        // identically (2∂(Fu) − F∂u = F·∂u when F const → (2-1)F·div).
        // Use a purely zonal, y-independent u: divergence free on the sphere
        // sections where u is x-constant.
        let mut s = setup();
        for k in 0..s.geom.nz as isize {
            for j in 0..s.geom.ny as isize {
                for i in 0..s.geom.nx as isize {
                    s.state.u.set(i, j, k, 15.0);
                    s.state.phi.set(i, j, k, 42.0);
                }
            }
        }
        let tend = run_tendency(&mut s);
        // u = U/P is x-constant → ∂u/∂λ = 0 → L1(Φ) = 0; v = 0, σ̇ = 0
        for j in 1..s.geom.ny as isize - 1 {
            for i in 0..s.geom.nx as isize {
                assert!(
                    tend.phi.get(i, j, 1).abs() < 1e-12,
                    "L(const Φ) ≠ 0 at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn advection_conserves_quadratic_energy() {
        // the 2F'−F form is antisymmetric: Σ F·L(F)·w ≈ 0 (up to boundary
        // and discretization corrections).  Verify the energy change of a
        // forward-Euler step is second order in Δt.
        let mut s = setup();
        for k in 0..s.geom.nz as isize {
            for j in 0..s.geom.ny as isize {
                for i in 0..s.geom.nx as isize {
                    let x = i as f64 / s.geom.nx as f64 * std::f64::consts::TAU;
                    s.state.u.set(i, j, k, 10.0 + 3.0 * (x * 2.0).sin());
                    s.state.phi.set(i, j, k, 20.0 * (x * 3.0).cos());
                }
            }
        }
        let tend = run_tendency(&mut s);
        let energy = |st: &State, geom: &LocalGeometry| {
            let mut e = 0.0;
            for k in 0..geom.nz as isize {
                for j in 0..geom.ny as isize {
                    let w = geom.sin_c(j) * geom.dsigma(k);
                    for i in 0..geom.nx as isize {
                        e += w * (st.u.get(i, j, k).powi(2) + st.phi.get(i, j, k).powi(2));
                    }
                }
            }
            e
        };
        let e0 = energy(&s.state, &s.geom);
        let dt = 5.0;
        let mut next = State::like(&s.state);
        next.lincomb(&s.state, dt, &tend);
        let e1 = energy(&next, &s.geom);
        let drift = (e1 - e0).abs() / e0;
        assert!(drift < 0.02, "energy drift {drift} too large");
    }
}
