//! The prognostic state `ξ = (U, V, Φ, p'_sa)`.
//!
//! `U`, `V` and `Φ` are the transformed wind and geopotential-like variables
//! of Eq. 1 of the paper (3-D, on the Arakawa C grid); `p'_sa` is the
//! surface-pressure deviation (2-D).  The state supports the linear algebra
//! Algorithm 1/2 need (`ψ + Δt·F(…)`, midpoints) plus the halo bookkeeping
//! shared by all four components.

use agcm_mesh::{Field2, Field3, HaloWidths};

/// One full prognostic state on a rank's subdomain.
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    /// Transformed zonal wind `U = P·u` at U points `(i-1/2, j, k)`.
    pub u: Field3,
    /// Transformed meridional wind `V = P·v` at V points `(i, j+1/2, k)`.
    pub v: Field3,
    /// Transformed thermal variable `Φ = P·R·(T - T̃)/b` at cell centres.
    pub phi: Field3,
    /// Surface-pressure deviation `p'_sa = p_s - p̃_s` (2-D).
    pub psa: Field2,
}

/// Number of 3-D prognostic components.
pub const N3D: usize = 3;
/// Total number of prognostic arrays (3-D + 2-D).
pub const N_COMPONENTS: usize = 4;

impl State {
    /// Allocate a zeroed state of local extents `(nx, ny, nz)` with halos.
    pub fn new(nx: usize, ny: usize, nz: usize, halo: HaloWidths) -> Self {
        State {
            u: Field3::new(nx, ny, nz, halo),
            v: Field3::new(nx, ny, nz, halo),
            phi: Field3::new(nx, ny, nz, halo),
            psa: Field2::new(nx, ny, halo),
        }
    }

    /// Allocate a state shaped like `other`, zeroed.
    pub fn like(other: &State) -> Self {
        State {
            u: Field3::like(&other.u),
            v: Field3::like(&other.v),
            phi: Field3::like(&other.phi),
            psa: Field2::like(&other.psa),
        }
    }

    /// Local interior extents.
    pub fn extents(&self) -> (usize, usize, usize) {
        self.u.extents()
    }

    /// Halo widths.
    pub fn halo(&self) -> HaloWidths {
        self.u.halo()
    }

    /// The three 3-D fields, in canonical order (U, V, Φ).
    pub fn fields3(&self) -> [&Field3; N3D] {
        [&self.u, &self.v, &self.phi]
    }

    /// Mutable access to the 3-D fields in canonical order.
    pub fn fields3_mut(&mut self) -> [&mut Field3; N3D] {
        [&mut self.u, &mut self.v, &mut self.phi]
    }

    /// Full raw copy of `a` into `self`, **including halos** — the
    /// allocation-reusing replacement for `self = a.clone()` in the step
    /// loops (the derived `Clone` allocates fresh arrays every call).
    /// Shapes must match.
    pub fn copy_from(&mut self, a: &State) {
        self.u.raw_mut().copy_from_slice(a.u.raw());
        self.v.raw_mut().copy_from_slice(a.v.raw());
        self.phi.raw_mut().copy_from_slice(a.phi.raw());
        self.psa.raw_mut().copy_from_slice(a.psa.raw());
    }

    /// `self = a` (interiors).
    pub fn assign(&mut self, a: &State) {
        self.u.assign_interior(&a.u);
        self.v.assign_interior(&a.v);
        self.phi.assign_interior(&a.phi);
        self.psa.assign_interior(&a.psa);
    }

    /// `self = x + c·y` (interiors).
    pub fn lincomb(&mut self, x: &State, c: f64, y: &State) {
        self.u.lincomb_interior(&x.u, c, &y.u);
        self.v.lincomb_interior(&x.v, c, &y.v);
        self.phi.lincomb_interior(&x.phi, c, &y.phi);
        self.psa.lincomb_interior(&x.psa, c, &y.psa);
    }

    /// Midpoint `self = (a + b)/2` (interiors).
    pub fn midpoint(&mut self, a: &State, b: &State) {
        // (a + b)/2 == a/2 + b/2 == lincomb with scaling; do it directly
        let (_, ny, nz) = self.extents();
        let region = crate::geometry::Region {
            y0: 0,
            y1: ny as isize,
            z0: 0,
            z1: nz as isize,
        };
        self.midpoint_on(a, b, &region);
    }

    /// Row helper: `d[i] = x[i] + c·y[i]`.
    #[inline]
    fn lincomb_row(d: &mut [f64], x: &[f64], c: f64, y: &[f64]) {
        for ((d, &x), &y) in d.iter_mut().zip(x).zip(y) {
            *d = x + c * y;
        }
    }

    /// Row helper: `d[i] = (a[i] + b[i])/2`.
    #[inline]
    fn midpoint_row(d: &mut [f64], a: &[f64], b: &[f64]) {
        for ((d, &a), &b) in d.iter_mut().zip(a).zip(b) {
            *d = 0.5 * (a + b);
        }
    }

    /// `self = x + c·y` on a region (all owned longitudes, rows/levels of
    /// `region`, which may extend into the halo).  `p'_sa` follows the
    /// region's y-range.
    pub fn lincomb_on(&mut self, x: &State, c: f64, y: &State, region: &crate::geometry::Region) {
        let nx = self.extents().0 as isize;
        for k in region.z0..region.z1 {
            for j in region.y0..region.y1 {
                Self::lincomb_row(
                    self.u.row_mut(0, nx, j, k),
                    x.u.row(0, nx, j, k),
                    c,
                    y.u.row(0, nx, j, k),
                );
                Self::lincomb_row(
                    self.v.row_mut(0, nx, j, k),
                    x.v.row(0, nx, j, k),
                    c,
                    y.v.row(0, nx, j, k),
                );
                Self::lincomb_row(
                    self.phi.row_mut(0, nx, j, k),
                    x.phi.row(0, nx, j, k),
                    c,
                    y.phi.row(0, nx, j, k),
                );
            }
        }
        for j in region.y0..region.y1 {
            Self::lincomb_row(
                self.psa.row_mut(0, nx, j),
                x.psa.row(0, nx, j),
                c,
                y.psa.row(0, nx, j),
            );
        }
    }

    /// `self = (a + b)/2` on a region.
    pub fn midpoint_on(&mut self, a: &State, b: &State, region: &crate::geometry::Region) {
        let nx = self.extents().0 as isize;
        for k in region.z0..region.z1 {
            for j in region.y0..region.y1 {
                Self::midpoint_row(
                    self.u.row_mut(0, nx, j, k),
                    a.u.row(0, nx, j, k),
                    b.u.row(0, nx, j, k),
                );
                Self::midpoint_row(
                    self.v.row_mut(0, nx, j, k),
                    a.v.row(0, nx, j, k),
                    b.v.row(0, nx, j, k),
                );
                Self::midpoint_row(
                    self.phi.row_mut(0, nx, j, k),
                    a.phi.row(0, nx, j, k),
                    b.phi.row(0, nx, j, k),
                );
            }
        }
        for j in region.y0..region.y1 {
            Self::midpoint_row(
                self.psa.row_mut(0, nx, j),
                a.psa.row(0, nx, j),
                b.psa.row(0, nx, j),
            );
        }
    }

    /// `self = a` on a region.
    pub fn assign_on(&mut self, a: &State, region: &crate::geometry::Region) {
        let nx = self.extents().0 as isize;
        for k in region.z0..region.z1 {
            for j in region.y0..region.y1 {
                self.u
                    .row_mut(0, nx, j, k)
                    .copy_from_slice(a.u.row(0, nx, j, k));
                self.v
                    .row_mut(0, nx, j, k)
                    .copy_from_slice(a.v.row(0, nx, j, k));
                self.phi
                    .row_mut(0, nx, j, k)
                    .copy_from_slice(a.phi.row(0, nx, j, k));
            }
        }
        for j in region.y0..region.y1 {
            self.psa
                .row_mut(0, nx, j)
                .copy_from_slice(a.psa.row(0, nx, j));
        }
    }

    /// Largest absolute difference over all components (interiors).
    pub fn max_abs_diff(&self, other: &State) -> f64 {
        self.u
            .max_abs_diff(&other.u)
            .max(self.v.max_abs_diff(&other.v))
            .max(self.phi.max_abs_diff(&other.phi))
            .max(self.psa.max_abs_diff(&other.psa))
    }

    /// Largest absolute value over all components (interiors).
    pub fn max_abs(&self) -> f64 {
        self.u
            .max_abs()
            .max(self.v.max_abs())
            .max(self.phi.max_abs())
            .max(self.psa.max_abs())
    }

    /// Whether any interior value is NaN.
    pub fn has_nan(&self) -> bool {
        self.u.has_nan_interior() || self.v.has_nan_interior() || self.phi.has_nan_interior() || {
            let (nx, ny) = self.psa.extents();
            (0..ny as isize).any(|j| self.psa.row(0, nx as isize, j).iter().any(|v| v.is_nan()))
        }
    }

    /// Fill the x halos of every component by periodic wrap (valid when the
    /// rank owns full latitude circles, i.e. `p_x = 1`).
    pub fn wrap_x(&mut self) {
        self.u.wrap_x_halo();
        self.v.wrap_x_halo();
        self.phi.wrap_x_halo();
        self.psa.wrap_x_halo();
    }

    /// Zero every array including halos.
    pub fn zero(&mut self) {
        self.u.fill(0.0);
        self.v.fill(0.0);
        self.phi.fill(0.0);
        self.psa.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(nx: usize, ny: usize, nz: usize, halo: HaloWidths, s: f64) -> State {
        let mut st = State::new(nx, ny, nz, halo);
        for k in 0..nz as isize {
            for j in 0..ny as isize {
                for i in 0..nx as isize {
                    let base = s + (i + 7 * j + 31 * k) as f64;
                    st.u.set(i, j, k, base);
                    st.v.set(i, j, k, base * 2.0);
                    st.phi.set(i, j, k, base * 3.0);
                }
            }
        }
        for j in 0..ny as isize {
            for i in 0..nx as isize {
                st.psa.set(i, j, s - (i + j) as f64);
            }
        }
        st
    }

    #[test]
    fn lincomb_and_assign() {
        let h = HaloWidths::uniform(1);
        let a = seeded(6, 4, 3, h, 1.0);
        let b = seeded(6, 4, 3, h, 2.0);
        let mut c = State::like(&a);
        c.lincomb(&a, 2.0, &b);
        assert_eq!(c.u.get(1, 1, 1), a.u.get(1, 1, 1) + 2.0 * b.u.get(1, 1, 1));
        assert_eq!(c.psa.get(2, 3), a.psa.get(2, 3) + 2.0 * b.psa.get(2, 3));
        let mut d = State::like(&a);
        d.assign(&c);
        assert_eq!(d.max_abs_diff(&c), 0.0);
    }

    #[test]
    fn midpoint() {
        let h = HaloWidths::zero();
        let a = seeded(6, 4, 3, h, 0.0);
        let b = seeded(6, 4, 3, h, 10.0);
        let mut m = State::like(&a);
        m.midpoint(&a, &b);
        assert_eq!(
            m.phi.get(0, 0, 0),
            0.5 * (a.phi.get(0, 0, 0) + b.phi.get(0, 0, 0))
        );
        assert_eq!(m.max_abs_diff(&a), 5.0 * 3.0 / 2.0 * 2.0); // phi differs by 3*10/... just check consistency:
        let mut m2 = State::like(&a);
        m2.lincomb(&a, 0.5, &b);
        // lincomb is a + 0.5 b, not the midpoint — they must differ
        assert!(m.max_abs_diff(&m2) > 0.0);
    }

    #[test]
    fn nan_detection_and_zero() {
        let mut a = seeded(6, 4, 3, HaloWidths::uniform(1), 1.0);
        assert!(!a.has_nan());
        a.phi.set(0, 0, 0, f64::NAN);
        assert!(a.has_nan());
        a.zero();
        assert!(!a.has_nan());
        assert_eq!(a.max_abs(), 0.0);
    }

    #[test]
    fn wrap_x_applies_to_all_components() {
        let mut a = seeded(6, 4, 3, HaloWidths::uniform(2), 1.0);
        a.wrap_x();
        assert_eq!(a.u.get(-1, 0, 0), a.u.get(5, 0, 0));
        assert_eq!(a.v.get(7, 1, 2), a.v.get(1, 1, 2));
        assert_eq!(a.psa.get(-2, 3), a.psa.get(4, 3));
    }

    #[test]
    fn component_counts() {
        let a = State::new(6, 4, 3, HaloWidths::zero());
        assert_eq!(a.fields3().len(), N3D);
        assert_eq!(N_COMPONENTS, 4);
    }
}
