//! The shared integration engine.
//!
//! Every integrator — serial reference, parallel Algorithm 1 (original,
//! X-Y or Y-Z decomposition) and Algorithm 2 (communication-avoiding) —
//! drives the same [`Engine`] sub-update methods, so that any two of them
//! produce the *same arithmetic* on the mesh points they both own.  The
//! algorithms differ only in when they exchange halos, how often the
//! collective operator `C` runs fresh, and on which regions they sweep —
//! exactly the knobs the paper turns.

use crate::adaptation::adaptation_tendency;
use crate::advection::advection_tendency;
use crate::boundary;
use crate::config::ModelConfig;
use crate::diag::Diag;
use crate::filterop::{build_filter, filter_state_distributed, filter_state_local};
use crate::geometry::{LocalGeometry, Region};
use crate::state::State;
use crate::stdatm::StandardAtmosphere;
use crate::vertical::{apply_c, ZContext};
use agcm_comm::{CommResult, Communicator};
use agcm_fft::{FilterScratch, FourierFilter};
use agcm_obs as obs;

/// How the Fourier filtering `F̃` runs for this rank.
pub enum FilterCtx<'a> {
    /// Full circles owned locally (`p_x = 1`): the communication-free path.
    Local,
    /// Circles split along x: transpose filter on this x-axis communicator.
    Distributed(&'a Communicator),
}

/// The per-rank integration engine: geometry, reference atmosphere, filter
/// and the diagnostic scratch (which doubles as the `C`-output cache of the
/// approximate nonlinear iteration).
pub struct Engine {
    /// Model configuration.
    pub cfg: ModelConfig,
    /// Local geometry.
    pub geom: LocalGeometry,
    /// Standard stratification.
    pub stdatm: StandardAtmosphere,
    /// Polar filter profiles.
    pub filter: FourierFilter,
    /// Diagnostics / C-output cache.
    pub diag: Diag,
    /// Reusable FFT buffers for the local filter path (zero steady-state
    /// allocation).
    fscratch: FilterScratch,
    /// Whether `diag.{vsum, gw, phi_p}` hold valid (possibly stale) values.
    pub c_cached: bool,
    /// Whether this rank owns full longitude circles (enables the local
    /// x-wrap; false only under X-Y decompositions).
    pub px1: bool,
}

impl Engine {
    /// Build an engine for one rank.
    pub fn new(cfg: &ModelConfig, geom: LocalGeometry, px1: bool) -> Self {
        let stdatm = StandardAtmosphere::new(&geom.grid);
        let filter = build_filter(&geom, cfg.filter_cutoff_deg);
        let diag = Diag::new(&geom);
        Engine {
            cfg: cfg.clone(),
            geom,
            stdatm,
            filter,
            diag,
            fscratch: FilterScratch::new(),
            c_cached: false,
            px1,
        }
    }

    /// Fill physical-boundary halos of `st` (and wrap x when owned whole).
    pub fn fill(&self, st: &mut State) {
        boundary::enforce_pole_v(st, &self.geom);
        boundary::fill_boundaries_no_wrap(st, &self.geom);
        if self.px1 {
            st.wrap_x();
        }
    }

    fn apply_filter(
        &mut self,
        tend: &mut State,
        region: Region,
        fctx: &FilterCtx<'_>,
    ) -> CommResult<()> {
        // F̃ span; the distributed path's alltoallv inherits Phase::F
        let _f = obs::span_phase(obs::SpanKind::Op, obs::Phase::F, "filter");
        match fctx {
            FilterCtx::Local => {
                filter_state_local(&self.geom, &self.filter, tend, region, &mut self.fscratch);
                Ok(())
            }
            FilterCtx::Distributed(xc) => {
                filter_state_distributed(&self.geom, &self.filter, tend, region, xc)
            }
        }
    }

    /// One adaptation sub-update: `out = base + dt·F̃(Ĉ + Â(arg))` on
    /// `region`.
    ///
    /// * `fresh_c = true` — the original iteration: run the collective `C`
    ///   on `arg` (refreshing `vsum`, `g_w`, `φ'`),
    /// * `fresh_c = false` — the approximate iteration (§4.2.2): reuse the
    ///   cached `C` outputs of an earlier state; only the local stencil
    ///   diagnostics (`D_sa`, `D(P)`, surface fields) are recomputed.
    ///
    /// Requires `arg` valid one row/level beyond `region` (owned halos via
    /// exchange; boundary halos are filled here).
    #[allow(clippy::too_many_arguments)]
    pub fn adaptation_subupdate(
        &mut self,
        base: &State,
        arg: &mut State,
        out: &mut State,
        tend: &mut State,
        region: Region,
        dt: f64,
        fresh_c: bool,
        zctx: &ZContext<'_>,
        fctx: &FilterCtx<'_>,
    ) -> CommResult<()> {
        // Â spans bracket only the stencil work; the nested C (collective)
        // and F̃ (filter) operators open their own spans, so per-operator
        // wall times are disjoint and sum to the sub-update total.
        {
            let _a = obs::span_phase(obs::SpanKind::Op, obs::Phase::A, "adaptation.local");
            self.fill(arg);
            self.diag
                .update_surface(&self.geom, &self.stdatm, arg, region.y0 - 1, region.y1 + 1);
            if !fresh_c {
                debug_assert!(self.c_cached, "approximate iteration without a cache");
                // stencil (Â) parts still evaluate at `arg`
                self.diag.update_dsa(&self.geom, arg, region.y0, region.y1);
                self.diag.update_dp(
                    &self.geom,
                    arg,
                    region.y0,
                    region.y1,
                    region.z0,
                    region.z1,
                    if self.px1 { 0 } else { 1 },
                );
            }
        }
        if fresh_c {
            // dsa/dp are inputs of apply_c's column sums
            apply_c(
                &self.geom,
                &self.stdatm,
                arg,
                &mut self.diag,
                region,
                zctx,
                self.px1,
            )?;
            self.c_cached = true;
        }
        {
            let _a = obs::span_phase(obs::SpanKind::Op, obs::Phase::A, "adaptation.tendency");
            adaptation_tendency(&self.geom, arg, &self.diag, tend, region);
        }
        self.apply_filter(tend, region, fctx)?;
        {
            let _a = obs::span_phase(obs::SpanKind::Op, obs::Phase::A, "adaptation.lincomb");
            out.lincomb_on(base, dt, tend, &region);
        }
        Ok(())
    }

    /// One advection sub-update: `out = base + dt·F̃(L̃(arg))` on `region`,
    /// using the frozen `g_w` diagnostic (no collective — the `(F̃ L̃)³`
    /// factor of the operator form is collective-free).
    #[allow(clippy::too_many_arguments)]
    pub fn advection_subupdate(
        &mut self,
        base: &State,
        arg: &mut State,
        out: &mut State,
        tend: &mut State,
        region: Region,
        dt: f64,
        fctx: &FilterCtx<'_>,
    ) -> CommResult<()> {
        {
            let _l = obs::span_phase(obs::SpanKind::Op, obs::Phase::L, "advection.tendency");
            self.fill(arg);
            self.diag
                .update_surface(&self.geom, &self.stdatm, arg, region.y0 - 1, region.y1 + 1);
            advection_tendency(&self.geom, arg, &self.diag, tend, region);
        }
        self.apply_filter(tend, region, fctx)?;
        {
            let _l = obs::span_phase(obs::SpanKind::Op, obs::Phase::L, "advection.lincomb");
            out.lincomb_on(base, dt, tend, &region);
        }
        Ok(())
    }

    /// Apply the Held–Suarez forcing (if enabled) to `st` on `region`.
    pub fn apply_forcing(&mut self, st: &mut State, region: Region) {
        if !self.cfg.held_suarez {
            return;
        }
        self.fill(st);
        self.diag
            .update_surface(&self.geom, &self.stdatm, st, region.y0, region.y1);
        crate::forcing::apply_held_suarez(
            &self.geom,
            &self.stdatm,
            &self.diag,
            st,
            region,
            self.cfg.dt2,
        );
    }

    /// The per-sweep target region of the communication-avoiding schedule:
    /// sweep `s` (1-based) of `total` sweeps covers the interior dilated by
    /// `total − s` rows/levels on every side facing a real neighbour.
    pub fn ca_region(&self, s: usize, total: usize) -> Region {
        let d = (total - s) as isize;
        self.geom.interior().dilate(
            d,
            d,
            self.geom.ny,
            self.geom.nz,
            self.geom.halo,
            self.geom.grow_sides(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    fn engine() -> Engine {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, grid, &d, 0, HaloWidths::uniform(3));
        Engine::new(&cfg, geom, true)
    }

    #[test]
    fn subupdate_of_rest_is_identity() {
        let mut e = engine();
        let mut psi = crate::init::rest(&e.geom);
        let base = psi.clone();
        let mut out = State::like(&psi);
        let mut tend = State::like(&psi);
        let region = e.geom.interior();
        e.adaptation_subupdate(
            &base,
            &mut psi,
            &mut out,
            &mut tend,
            region,
            e.cfg.dt1,
            true,
            &ZContext::Serial,
            &FilterCtx::Local,
        )
        .unwrap();
        assert_eq!(out.max_abs_diff(&base), 0.0);
        e.advection_subupdate(
            &base,
            &mut psi,
            &mut out,
            &mut tend,
            region,
            e.cfg.dt2,
            &FilterCtx::Local,
        )
        .unwrap();
        assert_eq!(out.max_abs_diff(&base), 0.0);
    }

    #[test]
    fn cached_c_subupdate_reuses_stale_outputs() {
        let mut e = engine();
        let mut psi = crate::init::perturbed_rest(&e.geom, 200.0, 0.0, 3);
        let base = psi.clone();
        let mut out_fresh = State::like(&psi);
        let mut out_cached = State::like(&psi);
        let mut tend = State::like(&psi);
        let region = e.geom.interior();
        // fresh C at psi — establishes the cache
        e.adaptation_subupdate(
            &base,
            &mut psi,
            &mut out_fresh,
            &mut tend,
            region,
            10.0,
            true,
            &ZContext::Serial,
            &FilterCtx::Local,
        )
        .unwrap();
        // cached C on the SAME state must reproduce the same update
        e.adaptation_subupdate(
            &base,
            &mut psi,
            &mut out_cached,
            &mut tend,
            region,
            10.0,
            false,
            &ZContext::Serial,
            &FilterCtx::Local,
        )
        .unwrap();
        assert!(out_fresh.max_abs_diff(&out_cached) < 1e-13);
        // but on a DIFFERENT state the cached-C update differs from fresh
        let mut psi2 = crate::init::perturbed_rest(&e.geom, 350.0, 0.0, 4);
        let mut out_cached2 = State::like(&psi);
        e.adaptation_subupdate(
            &base,
            &mut psi2,
            &mut out_cached2,
            &mut tend,
            region,
            10.0,
            false,
            &ZContext::Serial,
            &FilterCtx::Local,
        )
        .unwrap();
        let mut out_fresh2 = State::like(&psi);
        e.adaptation_subupdate(
            &base,
            &mut psi2,
            &mut out_fresh2,
            &mut tend,
            region,
            10.0,
            true,
            &ZContext::Serial,
            &FilterCtx::Local,
        )
        .unwrap();
        assert!(out_cached2.max_abs_diff(&out_fresh2) > 0.0);
    }

    #[test]
    fn ca_regions_shrink_per_sweep() {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::yz(2, 2).unwrap()).unwrap();
        // interior rank in y (rank cy=1 of 2 is at south — pick a 2x2 grid
        // middle-ish rank: coords (0, 1, 0): south in y? ny=10, py=2: rank 1
        let geom = LocalGeometry::new(&cfg, grid, &d, 1, HaloWidths::uniform(3));
        let e = Engine::new(&cfg, geom, true);
        let r1 = e.ca_region(1, 3);
        let r2 = e.ca_region(2, 3);
        let r3 = e.ca_region(3, 3);
        assert!(r1.contains(&r2) && r2.contains(&r3));
        assert_eq!(r3, e.geom.interior());
        // the north side faces a neighbour → dilated; the south is a pole
        assert!(r1.y0 < 0);
        assert_eq!(r1.y1, e.geom.ny as isize);
    }
}
