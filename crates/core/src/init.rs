//! Initial conditions.
//!
//! H-S runs traditionally start from a resting, horizontally uniform
//! atmosphere plus a small perturbation that breaks the zonal symmetry so
//! baroclinic eddies can develop.  A zonal-jet initial state is provided
//! for tests that need nontrivial winds immediately.
//!
//! All generators are deterministic: the "random" perturbation uses an
//! explicit 64-bit LCG seeded by the caller, so a decomposed run seeds the
//! *global* field identically regardless of the process grid — which is
//! what lets the tests demand bit-identical results across decompositions.

use crate::geometry::LocalGeometry;
use crate::state::State;

/// Deterministic pseudo-random value in `[-1, 1)` for global coordinates.
fn hash_noise(seed: u64, i: u64, j: u64, k: u64, comp: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(i.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(j.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(k.wrapping_mul(0xD6E8FEB86659FD93))
        .wrapping_add(comp.wrapping_mul(0xFF51AFD7ED558CCD));
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// A resting atmosphere (`U = V = Φ = p'_sa = 0`): the exact equilibrium of
/// the unforced equations.
pub fn rest(geom: &LocalGeometry) -> State {
    State::new(geom.nx, geom.ny, geom.nz, geom.halo)
}

/// Rest plus a smooth mid-latitude surface-pressure anomaly and small
/// deterministic noise on `Φ` — the standard "perturbed rest" start.
///
/// * `bump_amp` — peak `p'_sa` \[Pa\],
/// * `noise_amp` — noise amplitude on `Φ` \[m/s·(m/s)\],
/// * `seed` — noise seed.
pub fn perturbed_rest(geom: &LocalGeometry, bump_amp: f64, noise_amp: f64, seed: u64) -> State {
    let mut st = rest(geom);
    let grid = &geom.grid;
    let (gnx, gny) = (grid.nx() as f64, grid.ny() as f64);
    // bump centred at (λ, θ) = (90°E, 45°N-ish)
    let ic = gnx / 4.0;
    let jc = gny / 3.0;
    let rx = gnx / 12.0;
    let ry = gny / 12.0;
    for j in 0..geom.ny as isize {
        let gj = geom.global_j(j) as f64;
        for i in 0..geom.nx as isize {
            let gi = (geom.sub.x.start + i as usize) as f64;
            // periodic distance in x
            let mut dx = (gi - ic).abs();
            dx = dx.min(gnx - dx);
            let r2 = (dx / rx).powi(2) + ((gj - jc) / ry).powi(2);
            st.psa.set(i, j, bump_amp * (-r2).exp());
        }
    }
    if noise_amp > 0.0 {
        for k in 0..geom.nz as isize {
            let gk = geom.global_k(k) as u64;
            for j in 0..geom.ny as isize {
                let gj = geom.global_j(j) as u64;
                for i in 0..geom.nx as isize {
                    let gi = (geom.sub.x.start + i as usize) as u64;
                    let n = hash_noise(seed, gi, gj, gk, 2);
                    st.phi.set(i, j, k, noise_amp * n);
                }
            }
        }
    }
    st
}

/// A broad westerly jet in each hemisphere (transformed wind
/// `U = u₀ · sin²(2θ)`-shaped) with zero `Φ` deviation — *not* balanced;
/// the adaptation process immediately responds, which is exactly what
/// dynamics tests want to exercise.
pub fn zonal_jet(geom: &LocalGeometry, u0: f64) -> State {
    let mut st = rest(geom);
    for k in 0..geom.nz as isize {
        let sigma = geom.sigma_c(k).clamp(0.0, 1.0);
        let vert = (std::f64::consts::PI * sigma).sin(); // max mid-troposphere
        for j in 0..geom.ny as isize {
            let theta = {
                // colatitude of the row (mirror-safe through the tables)
                geom.sin_c(j).asin()
            };
            let shape = (2.0 * theta).sin().powi(2);
            for i in 0..geom.nx as isize {
                st.u.set(i, j, k, u0 * shape * vert);
            }
        }
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    fn geom_for(pg: ProcessGrid, rank: usize) -> LocalGeometry {
        let cfg = ModelConfig::test_medium();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), pg).unwrap();
        LocalGeometry::new(&cfg, grid, &d, rank, HaloWidths::uniform(2))
    }

    #[test]
    fn rest_is_zero() {
        let g = geom_for(ProcessGrid::serial(), 0);
        assert_eq!(rest(&g).max_abs(), 0.0);
    }

    #[test]
    fn perturbation_peak_location_and_amplitude() {
        let g = geom_for(ProcessGrid::serial(), 0);
        let st = perturbed_rest(&g, 400.0, 0.0, 1);
        let mut peak = (0, 0, f64::MIN);
        for j in 0..g.ny as isize {
            for i in 0..g.nx as isize {
                if st.psa.get(i, j) > peak.2 {
                    peak = (i, j, st.psa.get(i, j));
                }
            }
        }
        assert!((peak.2 - 400.0).abs() < 40.0, "peak {}", peak.2);
        assert_eq!(peak.0, (g.nx / 4) as isize);
        // winds start at rest
        assert_eq!(st.u.max_abs(), 0.0);
        assert_eq!(st.v.max_abs(), 0.0);
    }

    #[test]
    fn decomposed_init_matches_serial() {
        let serial = perturbed_rest(&geom_for(ProcessGrid::serial(), 0), 300.0, 1.0, 7);
        // y-z split: each rank's block must equal the serial slice
        for rank in 0..4 {
            let g = geom_for(ProcessGrid::yz(2, 2).unwrap(), rank);
            let st = perturbed_rest(&g, 300.0, 1.0, 7);
            for k in 0..g.nz as isize {
                for j in 0..g.ny as isize {
                    for i in 0..g.nx as isize {
                        let gj = g.global_j(j) as isize;
                        let gk = g.global_k(k) as isize;
                        assert_eq!(st.phi.get(i, j, k), serial.phi.get(i, gj, gk));
                        assert_eq!(st.psa.get(i, j), serial.psa.get(i, gj));
                    }
                }
            }
        }
    }

    #[test]
    fn noise_depends_on_seed() {
        let g = geom_for(ProcessGrid::serial(), 0);
        let a = perturbed_rest(&g, 0.0, 1.0, 1);
        let b = perturbed_rest(&g, 0.0, 1.0, 2);
        assert!(a.max_abs_diff(&b) > 0.0);
        let a2 = perturbed_rest(&g, 0.0, 1.0, 1);
        assert_eq!(a.max_abs_diff(&a2), 0.0, "same seed → same field");
    }

    #[test]
    fn jet_shape() {
        let g = geom_for(ProcessGrid::serial(), 0);
        let st = zonal_jet(&g, 30.0);
        let kmid = g.nz as isize / 2;
        // mid-latitude faster than equator-adjacent and near-pole rows
        let jm = g.ny as isize / 4; // ~45°N
        let je = g.ny as isize / 2; // equator
        assert!(st.u.get(0, jm, kmid) > st.u.get(0, je, kmid));
        assert!(st.u.get(0, jm, kmid) > st.u.get(0, 0, kmid));
        assert!(st.u.get(0, jm, kmid) > 10.0);
        // vertical profile peaks mid-column
        assert!(st.u.get(0, jm, kmid) > st.u.get(0, jm, 0));
    }
}
