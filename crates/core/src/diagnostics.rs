//! Conservation diagnostics.
//!
//! The IAP transform (Eq. 1) is chosen precisely because the transformed
//! system conserves the sum of kinetic energy, available potential energy
//! and available surface potential energy (§2.2) — in the transformed
//! variables this total is the quadratic form
//!
//! ```text
//! E = ∫ (U² + V² + Φ²)/2 dσ dA  +  ∫ b²·(p'_sa/p₀)²·(p₀/p̃_es)/2 dA
//! ```
//!
//! with `dA = sin θ dθ dλ`.  The discretization conserves it approximately
//! (the advection form is antisymmetric; the filter and smoothing only
//! remove variance), which the tests and the H-S example monitor.  Total
//! mass `∫ p'_sa dA` is conserved by the flux-form divergence exactly, up
//! to the `D_sa` diffusion (which preserves the integral) and rounding.

use crate::geometry::LocalGeometry;
use crate::state::State;
use agcm_comm::{CommResult, Communicator};
use agcm_mesh::grid::constants as c;

/// Pointwise-summable budget of one (sub)domain.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Budget {
    /// Kinetic part `Σ (U² + V²)/2 · w`.
    pub kinetic: f64,
    /// Available potential part `Σ Φ²/2 · w`.
    pub potential: f64,
    /// Surface part `Σ b²(p'_sa/p₀)²/2 · w`.
    pub surface: f64,
    /// Mass `Σ p'_sa · w`.
    pub mass: f64,
    /// Sum of area weights (for normalization).
    pub weight: f64,
}

impl Budget {
    /// Total transformed energy.
    pub fn energy(&self) -> f64 {
        self.kinetic + self.potential + self.surface
    }

    /// Element-wise accumulate (for cross-rank reduction).
    pub fn accumulate(&mut self, o: &Budget) {
        self.kinetic += o.kinetic;
        self.potential += o.potential;
        self.surface += o.surface;
        self.mass += o.mass;
        self.weight += o.weight;
    }

    fn to_vec(self) -> [f64; 5] {
        [
            self.kinetic,
            self.potential,
            self.surface,
            self.mass,
            self.weight,
        ]
    }

    fn from_slice(v: &[f64]) -> Budget {
        Budget {
            kinetic: v[0],
            potential: v[1],
            surface: v[2],
            mass: v[3],
            weight: v[4],
        }
    }
}

/// Compute the budget of this rank's interior.
pub fn local_budget(geom: &LocalGeometry, state: &State) -> Budget {
    let mut b = Budget::default();
    let nx = geom.nx as isize;
    for k in 0..geom.nz as isize {
        let ds = geom.dsigma(k);
        for j in 0..geom.ny as isize {
            let w = geom.sin_c(j) * ds;
            for i in 0..nx {
                let u = state.u.get(i, j, k);
                let v = state.v.get(i, j, k);
                let f = state.phi.get(i, j, k);
                b.kinetic += 0.5 * w * (u * u + v * v);
                b.potential += 0.5 * w * f * f;
            }
        }
    }
    // surface (2-D) terms are replicated across the z layer of ranks;
    // only the top layer contributes them to a cross-rank reduction
    if !geom.at_top() {
        return b;
    }
    let bsq = (c::B_GRAVITY_WAVE / c::P_REF).powi(2) * c::P_REF / (c::P_REF - c::P_TOP);
    for j in 0..geom.ny as isize {
        let w = geom.sin_c(j);
        for i in 0..nx {
            let ps = state.psa.get(i, j);
            b.surface += 0.5 * w * bsq * ps * ps;
            b.mass += w * ps;
            b.weight += w;
        }
    }
    b
}

/// Budget reduced over all ranks of `comm` (every rank gets the global
/// values).  Serial callers can use [`local_budget`] directly.
pub fn global_budget(
    geom: &LocalGeometry,
    state: &State,
    comm: &Communicator,
) -> CommResult<Budget> {
    let mut v = local_budget(geom, state).to_vec();
    comm.allreduce_sum(&mut v)?;
    Ok(Budget::from_slice(&v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::init;
    use crate::serial::{Iteration, SerialModel};
    use agcm_comm::Universe;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    #[test]
    fn rest_budget_is_zero() {
        let m = SerialModel::new(&ModelConfig::test_small(), Iteration::Exact).unwrap();
        let b = local_budget(m.geom(), &m.state);
        assert_eq!(b.energy(), 0.0);
        assert_eq!(b.mass, 0.0);
        assert!(b.weight > 0.0);
    }

    #[test]
    fn budget_components_positive_for_perturbed_state() {
        let m = SerialModel::new(&ModelConfig::test_small(), Iteration::Exact).unwrap();
        let st = init::perturbed_rest(m.geom(), 200.0, 5.0, 1);
        let b = local_budget(m.geom(), &st);
        assert!(b.surface > 0.0);
        assert!(b.potential > 0.0);
        assert_eq!(b.kinetic, 0.0, "perturbed rest has no wind");
        assert!(b.mass > 0.0, "positive pressure bump adds mass");
    }

    #[test]
    fn unforced_run_conserves_mass_and_bounds_energy() {
        let mut m = SerialModel::new(&ModelConfig::test_small(), Iteration::Exact).unwrap();
        let ic = init::perturbed_rest(m.geom(), 150.0, 0.0, 2);
        m.set_state(&ic);
        let b0 = local_budget(m.geom(), &m.state);
        m.run(6);
        let b1 = local_budget(m.geom(), &m.state);
        // mass: conserved to rounding
        // the P2 smoothing's meridional fourth difference is not in flux
        // form, so it exchanges a little mass with the pole mirrors —
        // bounded well below the dynamics scales
        let mass_scale = 150.0 * b0.weight;
        assert!(
            (b1.mass - b0.mass).abs() / mass_scale < 1e-4,
            "mass drift {} -> {}",
            b0.mass,
            b1.mass
        );
        // energy: never grows (filter + smoothing dissipate; the dynamics
        // is neutral); must not collapse either
        assert!(b1.energy() <= b0.energy() * 1.02);
        assert!(b1.energy() >= b0.energy() * 0.2, "energy collapsed");
    }

    #[test]
    fn global_budget_sums_ranks() {
        let results = Universe::run(4, |comm| {
            let cfg = ModelConfig::test_medium();
            let grid = Arc::new(cfg.grid().unwrap());
            let d = Decomposition::new(cfg.extents(), ProcessGrid::yz(2, 2).unwrap()).unwrap();
            let geom = crate::geometry::LocalGeometry::new(
                &cfg,
                grid,
                &d,
                comm.rank(),
                HaloWidths::uniform(1),
            );
            let st = init::perturbed_rest(&geom, 100.0, 2.0, 5);
            global_budget(&geom, &st, comm).unwrap()
        });
        // every rank agrees on the global budget
        for r in &results[1..] {
            assert!((r.energy() - results[0].energy()).abs() < 1e-9);
            assert!((r.mass - results[0].mass).abs() < 1e-9);
        }
        // and it equals the serial budget of the same global state
        let cfg = ModelConfig::test_medium();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = crate::geometry::LocalGeometry::new(&cfg, grid, &d, 0, HaloWidths::uniform(1));
        let st = init::perturbed_rest(&geom, 100.0, 2.0, 5);
        let serial = local_budget(&geom, &st);
        assert!((serial.energy() - results[0].energy()).abs() < 1e-9 * serial.energy().max(1.0));
        assert!((serial.weight - results[0].weight).abs() < 1e-9);
    }
}
