//! Diagnostic fields derived from the prognostic state.
//!
//! One [`Diag`] buffer is reused across sweeps; each operator application
//! recomputes the pieces it needs on the region it targets.  The split
//! follows the paper's operator decomposition:
//!
//! * `pes`, `cap_p` — pointwise surface diagnostics (`p_es = p̃_es + p'_sa`,
//!   `P = √(p_es/p₀)`),
//! * `dsa`, `dp` — the horizontal stencil terms `D_sa` and `D(P)` of
//!   Table 1 (local computation),
//! * `vsum`, `gw`, `phi_p` — the outputs of the **collective operator `C`**
//!   (vertical sum, the continuity mass flux `σ̇·p_es/p₀` at interfaces, and
//!   the hydrostatic geopotential deviation `φ'`), produced in
//!   [`crate::vertical`].

use crate::geometry::LocalGeometry;
use crate::state::State;
use crate::stdatm::StandardAtmosphere;
use agcm_mesh::grid::constants as c;
use agcm_mesh::{Field2, Field3};

/// Scratch diagnostics for one rank.
#[derive(Debug, Clone)]
pub struct Diag {
    /// `p_es = p̃_es + p'_sa` (2-D).
    pub pes: Field2,
    /// `P = √(p_es/p₀)` (2-D).
    pub cap_p: Field2,
    /// `D_sa` — surface-pressure diffusion (2-D).
    pub dsa: Field2,
    /// `D(P)` — transformed mass divergence (3-D).
    pub dp: Field3,
    /// `Σ_k Δσ_k D(P)` over **all** global levels (2-D, from the collective).
    pub vsum: Field2,
    /// `g_w = σ̇·p_es/p₀` at interfaces: entry `k` holds interface `k−1/2`
    /// (3-D with `nz+1` levels).
    pub gw: Field3,
    /// Geopotential deviation `φ'` at level centres (3-D).
    pub phi_p: Field3,
    /// Reusable scratch for [`crate::vertical::apply_c`]'s column sums —
    /// kept here so steady-state stepping allocates nothing.
    pub(crate) zscratch: ZScratch,
}

/// Column-sum scratch buffers for the `C` operator.  Pulled out of [`Diag`]
/// with `mem::take` for the duration of an `apply_c` call (disjoint-borrow
/// convenience) and put back afterwards, so the capacity is reused across
/// steps.
#[derive(Debug, Clone, Default)]
pub(crate) struct ZScratch {
    /// Per-column block sums (dp rows then φ'-integrand rows).
    pub sums: Vec<f64>,
    /// Σ of blocks on lower-k ranks.
    pub prefix: Vec<f64>,
    /// Σ of blocks on higher-k ranks.
    pub suffix: Vec<f64>,
    /// Σ over all ranks.
    pub total: Vec<f64>,
    /// Running per-row accumulator for the interface walks.
    pub run: Vec<f64>,
    /// Per-row integrand values `c_k` for the φ' walk.
    pub ck: Vec<f64>,
}

impl Diag {
    /// Allocate diagnostics matching the shape of `geom`'s state fields.
    pub fn new(geom: &LocalGeometry) -> Self {
        let (nx, ny, nz) = (geom.nx, geom.ny, geom.nz);
        let h = geom.halo;
        Diag {
            pes: Field2::new(nx, ny, h),
            cap_p: Field2::new(nx, ny, h),
            dsa: Field2::new(nx, ny, h),
            dp: Field3::new(nx, ny, nz, h),
            vsum: Field2::new(nx, ny, h),
            gw: Field3::new(nx, ny, nz + 1, h),
            phi_p: Field3::new(nx, ny, nz, h),
            zscratch: ZScratch::default(),
        }
    }

    /// Compute `p_es` and `P` from `p'_sa` on rows `[y0, y1)`, over the
    /// full x range *including the x halo* (pointwise — `p'_sa`'s x halo is
    /// valid by wrap or exchange, so the surface diagnostics need neither).
    pub fn update_surface(
        &mut self,
        geom: &LocalGeometry,
        stdatm: &StandardAtmosphere,
        state: &State,
        y0: isize,
        y1: isize,
    ) {
        let x0 = -(geom.halo.xm as isize);
        let x1 = geom.nx as isize + geom.halo.xp as isize;
        for j in y0..y1 {
            for i in x0..x1 {
                let pes = stdatm.pes_tilde + state.psa.get(i, j);
                debug_assert!(pes > 0.0, "p_es must stay positive");
                self.pes.set(i, j, pes);
                self.cap_p.set(i, j, (pes / c::P_REF).sqrt());
            }
        }
    }

    /// Compute `D_sa = ∇·(ρ̃_sa k_sa ∇(p'_sa/(ρ̃_sa p₀)))` (Eq. 6) on rows
    /// `[y0, y1)`.  With constant `ρ̃_sa` this is `k_sa/p₀` times the
    /// spherical Laplacian of `p'_sa` — a 5-point stencil (Table 1's `D_sa`
    /// row: x: i, i±1; y: j, j±1).
    pub fn update_dsa(&mut self, geom: &LocalGeometry, state: &State, y0: isize, y1: isize) {
        let nx = geom.nx as isize;
        let a = c::EARTH_RADIUS;
        let dl = geom.dlambda();
        let dt = geom.dtheta();
        let coef = c::K_SA / c::P_REF;
        for j in y0..y1 {
            let s = geom.sin_c(j);
            let s_n = geom.sin_v(j - 1); // face between j-1 and j
            let s_s = geom.sin_v(j); // face between j and j+1
            for i in 0..nx {
                let q = state.psa.get(i, j);
                let d2x = (state.psa.get(i + 1, j) - 2.0 * q + state.psa.get(i - 1, j))
                    / (dl * dl * s * s);
                let dyn_ =
                    (state.psa.get(i, j + 1) - q) * s_s - (q - state.psa.get(i, j - 1)) * s_n;
                let d2y = dyn_ / (dt * dt * s);
                self.dsa.set(i, j, coef * (d2x + d2y) / (a * a));
            }
        }
    }

    /// Compute the transformed divergence
    /// `D(P) = (1/(a sin θ)) [∂(PU)/∂λ + ∂(PV sin θ)/∂θ]`
    /// on rows `[y0, y1)` and levels `[z0, z1)` — the C-grid flux form whose
    /// reads sit inside Table 1's `D(P)` footprint.  `xe` extends the x
    /// range into the halo (used by X-Y decompositions, where the x halo is
    /// exchanged rather than wrapped).
    #[allow(clippy::too_many_arguments)]
    pub fn update_dp(
        &mut self,
        geom: &LocalGeometry,
        state: &State,
        y0: isize,
        y1: isize,
        z0: isize,
        z1: isize,
        xe: isize,
    ) {
        let a = c::EARTH_RADIUS;
        let dl = geom.dlambda();
        let dt = geom.dtheta();
        let (x0, x1) = (-xe, geom.nx as isize + xe);
        for k in z0..z1 {
            for j in y0..y1 {
                let s = geom.sin_c(j);
                let sv_n = geom.sin_v(j - 1);
                let sv_s = geom.sin_v(j);
                for i in x0..x1 {
                    // PU at x faces i∓1/2 (U index i, i+1)
                    let pu_w = state.u.get(i, j, k)
                        * 0.5
                        * (self.cap_p.get(i - 1, j) + self.cap_p.get(i, j));
                    let pu_e = state.u.get(i + 1, j, k)
                        * 0.5
                        * (self.cap_p.get(i, j) + self.cap_p.get(i + 1, j));
                    // PV·sinθ at y faces j∓1/2 (V index j-1, j)
                    let pv_n = state.v.get(i, j - 1, k)
                        * 0.5
                        * (self.cap_p.get(i, j - 1) + self.cap_p.get(i, j))
                        * sv_n;
                    let pv_s = state.v.get(i, j, k)
                        * 0.5
                        * (self.cap_p.get(i, j) + self.cap_p.get(i, j + 1))
                        * sv_s;
                    let div = ((pu_e - pu_w) / dl + (pv_s - pv_n) / dt) / (a * s);
                    self.dp.set(i, j, k, div);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary;
    use crate::config::ModelConfig;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    fn setup() -> (LocalGeometry, StandardAtmosphere, State, Diag) {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(3));
        let sa = StandardAtmosphere::new(&grid);
        let state = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        let diag = Diag::new(&geom);
        (geom, sa, state, diag)
    }

    #[test]
    fn surface_diag_of_rest_state() {
        let (geom, sa, state, mut diag) = setup();
        diag.update_surface(&geom, &sa, &state, 0, geom.ny as isize);
        // p'_sa = 0 → p_es = p̃_es, P = √(p̃_es/p₀) slightly below 1
        let p = diag.cap_p.get(3, 3);
        assert!((diag.pes.get(3, 3) - sa.pes_tilde).abs() < 1e-9);
        assert!(p < 1.0 && p > 0.99);
        // x halo wrapped
        assert_eq!(diag.pes.get(-1, 2), diag.pes.get(geom.nx as isize - 1, 2));
    }

    #[test]
    fn dsa_is_zero_for_constant_psa_and_negative_for_peak() {
        let (geom, sa, mut state, mut diag) = setup();
        let ny = geom.ny as isize;
        // constant p'_sa → Laplacian 0
        for j in 0..ny {
            for i in 0..geom.nx as isize {
                state.psa.set(i, j, 50.0);
            }
        }
        boundary::fill_boundaries(&mut state, &geom);
        diag.update_surface(&geom, &sa, &state, 0, ny);
        diag.update_dsa(&geom, &state, 0, ny);
        for j in 0..ny {
            for i in 0..geom.nx as isize {
                assert!(diag.dsa.get(i, j).abs() < 1e-18, "({i},{j})");
            }
        }
        // a single positive bump diffuses down: D_sa < 0 at the peak
        state.psa.set(8, 5, 150.0);
        boundary::fill_boundaries(&mut state, &geom);
        diag.update_dsa(&geom, &state, 0, ny);
        assert!(diag.dsa.get(8, 5) < 0.0);
        assert!(diag.dsa.get(7, 5) > 0.0, "neighbours gain mass");
    }

    #[test]
    fn dp_zero_for_rest_and_sign_for_divergent_flow() {
        let (geom, sa, mut state, mut diag) = setup();
        let (nx, ny) = (geom.nx as isize, geom.ny as isize);
        boundary::fill_boundaries(&mut state, &geom);
        diag.update_surface(&geom, &sa, &state, -1, ny + 1);
        diag.update_dp(&geom, &state, 0, ny, 0, geom.nz as isize, 0);
        for j in 0..ny {
            for i in 0..nx {
                assert_eq!(diag.dp.get(i, j, 0), 0.0);
            }
        }
        // a lone positive U at face i=5 creates divergence at i=4, conv at 5
        state.u.set(5, 4, 1, 10.0);
        boundary::fill_boundaries(&mut state, &geom);
        diag.update_dp(&geom, &state, 0, ny, 0, geom.nz as isize, 0);
        assert!(diag.dp.get(4, 4, 1) > 0.0);
        assert!(diag.dp.get(5, 4, 1) < 0.0);
        assert_eq!(diag.dp.get(4, 4, 0), 0.0, "other levels untouched");
    }

    #[test]
    fn dp_conserves_global_mass_weighted_sum() {
        // flux-form divergence: Σ_ij D(P)·a²·sinθ·ΔλΔθ = 0 (periodic x,
        // vanishing fluxes at the poles)
        let (geom, sa, mut state, mut diag) = setup();
        let (nx, ny) = (geom.nx as isize, geom.ny as isize);
        // arbitrary smooth winds
        for k in 0..geom.nz as isize {
            for j in 0..ny {
                for i in 0..nx {
                    let x = i as f64 / nx as f64 * std::f64::consts::TAU;
                    state.u.set(i, j, k, (x * 2.0).sin() + 0.3);
                    state.v.set(i, j, k, (x + j as f64).cos());
                }
            }
        }
        crate::boundary::enforce_pole_v(&mut state, &geom);
        boundary::fill_boundaries(&mut state, &geom);
        diag.update_surface(&geom, &sa, &state, -1, ny + 1);
        diag.update_dp(&geom, &state, 0, ny, 0, 1, 0);
        let mut total = 0.0;
        for j in 0..ny {
            total += diag.dp.row(0, nx, j, 0).iter().sum::<f64>() * geom.sin_c(j);
        }
        let scale: f64 = (0..ny).map(|j| geom.sin_c(j)).sum::<f64>() * nx as f64;
        assert!(
            total.abs() / scale < 1e-12,
            "global mass tendency {total} not ~0"
        );
    }
}
