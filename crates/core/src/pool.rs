//! Intra-rank worker pool: a std-only scoped-thread parallel-for over
//! z-bands of a [`Region`].
//!
//! The paper removes the *communication* bottleneck; once that is done the
//! step time is dominated by the pointwise tendency sweeps.  Those sweeps
//! write disjoint `(j, k)` points, so they can be split across OS threads
//! with **no** change to the floating-point result: each point's expression
//! tree is evaluated exactly as in the serial sweep, only by a different
//! worker.  Band splitting is therefore deterministic and bit-identical at
//! any thread count.
//!
//! Design constraints honoured here:
//!
//! * **std-only** — `std::thread::scope`, no external thread-pool crate;
//! * **zero allocation at one thread** — the band lists live in stack arrays
//!   (`[Option<T>; MAX_WORKERS]`) and the single-band path runs inline
//!   without entering `thread::scope` (which allocates per spawn);
//! * **aliasing-safe splitting** — mutable output fields are carved into
//!   disjoint [`SlabMut3`] views via `split_at_mut`, never by sharing a
//!   `&mut Field3` across threads.

use crate::geometry::Region;
use agcm_mesh::{Field3, SlabMut3};
use std::cell::Cell;
use std::sync::OnceLock;

/// Upper bound on worker count; keeps band lists on the stack.
pub const MAX_WORKERS: usize = 16;

static ENV_WORKERS: OnceLock<usize> = OnceLock::new();

thread_local! {
    /// 0 = no override (use the `AGCM_THREADS` environment variable).
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn env_workers() -> usize {
    // strict parse: `AGCM_THREADS=8x` must fail loudly, not silently run
    // single-threaded
    agcm_comm::env::parse_env_or("AGCM_THREADS", 1usize).clamp(1, MAX_WORKERS)
}

/// Number of intra-rank workers for kernel sweeps.
///
/// Reads `AGCM_THREADS` once (default 1, clamped to [`MAX_WORKERS`]); tests
/// override it per-thread via [`with_workers`] so parallel test binaries
/// never mutate the process environment.
#[inline]
pub fn workers() -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o != 0 {
        return o;
    }
    *ENV_WORKERS.get_or_init(env_workers)
}

/// Minimum grid points per band before a sweep is worth another worker:
/// below this, scoped-thread spawn overhead outweighs the parallel gain.
pub const MIN_BAND_POINTS: usize = 8192;

/// Worker count for a sweep over `points` grid points.
///
/// The `AGCM_THREADS` setting is clamped so every band keeps at least
/// [`MIN_BAND_POINTS`] points — small sweeps run inline rather than paying
/// thread-spawn latency.  A [`with_workers`] override is returned verbatim
/// (tests force exact band counts to pin bit-identity).  Band splitting is
/// bit-identical at any worker count, so this is purely a scheduling
/// heuristic.
#[inline]
pub fn workers_for(points: usize) -> usize {
    let o = OVERRIDE.with(Cell::get);
    if o != 0 {
        return o;
    }
    workers().min((points / MIN_BAND_POINTS).max(1))
}

/// Run `f` with the worker count forced to `n` on the current thread.
///
/// The override is thread-local: worker threads spawned *by* the pool do not
/// consult it (they never re-enter the pool), and concurrently running tests
/// cannot race each other through the environment.
pub fn with_workers<T>(n: usize, f: impl FnOnce() -> T) -> T {
    assert!((1..=MAX_WORKERS).contains(&n));
    let prev = OVERRIDE.with(|c| c.replace(n));
    let out = f();
    OVERRIDE.with(|c| c.set(prev));
    out
}

/// Split `[z0, z1)` into `nw` contiguous, balanced, non-empty bands.
///
/// Returns the number of bands actually produced (`min(nw, z1 - z0)`, zero
/// for an empty range) and fills `cuts[0..=nb]` with the band boundaries.
pub fn band_cuts(z0: isize, z1: isize, nw: usize, cuts: &mut [isize; MAX_WORKERS + 1]) -> usize {
    if z1 <= z0 {
        return 0;
    }
    let len = (z1 - z0) as usize;
    let nb = nw.clamp(1, MAX_WORKERS).min(len);
    for (b, c) in cuts.iter_mut().enumerate().take(nb + 1) {
        *c = z0 + (len * b / nb) as isize;
    }
    nb
}

/// One worker's share of a tendency sweep: a z-band of the region plus
/// disjoint mutable views of the three 3-D output fields.
pub struct StateBand<'a> {
    /// Sub-region this band covers (`y` span unchanged, `z` restricted).
    pub region: Region,
    /// Output view of the zonal-wind field.
    pub u: SlabMut3<'a>,
    /// Output view of the meridional-wind field.
    pub v: SlabMut3<'a>,
    /// Output view of the geopotential field.
    pub phi: SlabMut3<'a>,
}

/// Carve three output fields into per-worker [`StateBand`]s over `region`.
///
/// Returns the stack-allocated band list and the band count (0 when the
/// region has an empty z-range).  All splitting is allocation-free.
pub fn split_state_bands<'a>(
    u: &'a mut Field3,
    v: &'a mut Field3,
    phi: &'a mut Field3,
    region: &Region,
    nw: usize,
) -> ([Option<StateBand<'a>>; MAX_WORKERS], usize) {
    let mut out: [Option<StateBand<'a>>; MAX_WORKERS] = std::array::from_fn(|_| None);
    let mut cuts = [0isize; MAX_WORKERS + 1];
    let nb = band_cuts(region.z0, region.z1, nw, &mut cuts);
    if nb == 0 {
        return (out, 0);
    }
    let mut rest_u = Some(u.slab_mut(region.z0, region.z1));
    let mut rest_v = Some(v.slab_mut(region.z0, region.z1));
    let mut rest_phi = Some(phi.slab_mut(region.z0, region.z1));
    for b in 0..nb {
        let hi = cuts[b + 1];
        let (bu, ru) = rest_u.take().expect("band split").split_at_k(hi);
        let (bv, rv) = rest_v.take().expect("band split").split_at_k(hi);
        let (bp, rp) = rest_phi.take().expect("band split").split_at_k(hi);
        rest_u = Some(ru);
        rest_v = Some(rv);
        rest_phi = Some(rp);
        out[b] = Some(StateBand {
            region: Region {
                y0: region.y0,
                y1: region.y1,
                z0: cuts[b],
                z1: hi,
            },
            u: bu,
            v: bv,
            phi: bp,
        });
    }
    (out, nb)
}

/// Parallel-for over band items.
///
/// With zero or one item this runs inline on the calling thread — no
/// `thread::scope`, no spawn, no allocation.  With more, item 0 runs on the
/// calling thread while items `1..` run on scoped worker threads; every band
/// (including the caller's) is wrapped in a [`agcm_obs::SpanKind::Worker`]
/// span named `label` so the overlap profiler can attribute worker time.
///
/// `f` must only write through the `&mut T` it is handed; since the items
/// were built from disjoint field views, the result is independent of the
/// band count and of scheduling.
pub fn run<T: Send>(items: &mut [Option<T>], label: &'static str, f: impl Fn(&mut T) + Sync) {
    match items {
        [] => {}
        [only] => {
            if let Some(item) = only.as_mut() {
                f(item);
            }
        }
        [first, rest @ ..] => {
            std::thread::scope(|scope| {
                let f = &f;
                for item in rest.iter_mut() {
                    if let Some(item) = item.as_mut() {
                        scope.spawn(move || {
                            let _s = agcm_obs::span(agcm_obs::SpanKind::Worker, label);
                            f(item);
                        });
                    }
                }
                if let Some(item) = first.as_mut() {
                    let _s = agcm_obs::span(agcm_obs::SpanKind::Worker, label);
                    f(item);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mesh::HaloWidths;

    #[test]
    fn band_cuts_cover_range_without_gaps() {
        let mut cuts = [0isize; MAX_WORKERS + 1];
        for nw in 1..=6 {
            for (z0, z1) in [(0isize, 7isize), (-1, 3), (2, 2), (0, 1)] {
                let nb = band_cuts(z0, z1, nw, &mut cuts);
                if z1 <= z0 {
                    assert_eq!(nb, 0);
                    continue;
                }
                assert!(nb >= 1 && nb <= nw);
                assert_eq!(cuts[0], z0);
                assert_eq!(cuts[nb], z1);
                for b in 0..nb {
                    assert!(cuts[b] < cuts[b + 1], "empty band");
                }
            }
        }
    }

    #[test]
    fn with_workers_overrides_thread_locally() {
        with_workers(4, || assert_eq!(workers(), 4));
        with_workers(2, || {
            with_workers(1, || assert_eq!(workers(), 1));
            assert_eq!(workers(), 2);
        });
    }

    #[test]
    fn run_executes_every_band_exactly_once() {
        let h = HaloWidths::uniform(1);
        let mut u = Field3::new(4, 3, 6, h);
        let mut v = Field3::new(4, 3, 6, h);
        let mut phi = Field3::new(4, 3, 6, h);
        let region = Region {
            y0: 0,
            y1: 3,
            z0: 0,
            z1: 6,
        };
        for nw in [1usize, 2, 3, 4] {
            let (mut bands, nb) = split_state_bands(&mut u, &mut v, &mut phi, &region, nw);
            run(&mut bands[..nb], "test.band", |band| {
                for k in band.region.z0..band.region.z1 {
                    for j in band.region.y0..band.region.y1 {
                        for i in 0..4 {
                            band.u.add(i, j, k, 1.0);
                            band.v.add(i, j, k, 2.0);
                            band.phi.add(i, j, k, 3.0);
                        }
                    }
                }
            });
        }
        for k in 0..6 {
            for j in 0..3 {
                for i in 0..4 {
                    assert_eq!(u.get(i, j, k), 4.0);
                    assert_eq!(v.get(i, j, k), 8.0);
                    assert_eq!(phi.get(i, j, k), 12.0);
                }
            }
        }
    }
}
