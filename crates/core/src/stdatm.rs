//! Standard stratification (the reference atmosphere of the IAP transform).
//!
//! The variable substitution of Eq. 1 subtracts a *standard stratification*
//! — reference profiles `T̃(σ)` and `p̃_s` — so the prognostic variables
//! carry only deviations, which is what makes the transformed system
//! energy-conserving.  We use the International Standard Atmosphere
//! temperature profile (6.5 K/km lapse rate capped by an isothermal
//! stratosphere), sampled at the model's σ levels.

use agcm_mesh::grid::constants as c;
use agcm_mesh::LatLonGrid;

/// Reference (standard-stratification) profiles.
#[derive(Debug, Clone)]
pub struct StandardAtmosphere {
    /// `T̃` at each σ level centre \[K\], length `nz`.
    pub t_tilde: Vec<f64>,
    /// Standard surface pressure `p̃_s` \[Pa\].
    pub ps_tilde: f64,
    /// `p̃_es = p̃_s − p_t`.
    pub pes_tilde: f64,
    /// Surface temperature `T̃_s` \[K\].
    pub ts: f64,
    /// Surface air density of the standard atmosphere
    /// `ρ̃_sa = p̃_s/(R·T̃_s)` \[kg m⁻³\] (Eq. 6).
    pub rho_sa: f64,
}

/// ISA sea-level temperature \[K\].
pub const T_SEA_LEVEL: f64 = 288.15;
/// ISA tropospheric lapse rate \[K/m\].
pub const LAPSE_RATE: f64 = 6.5e-3;
/// ISA stratospheric (isothermal) temperature \[K\].
pub const T_STRATOSPHERE: f64 = 216.65;

/// ISA temperature at pressure `p` \[Pa\].
pub fn isa_temperature(p: f64) -> f64 {
    // T = T0 (p/p0)^(RΓ/g), floored at the tropopause temperature
    let expo = c::R_DRY * LAPSE_RATE / c::GRAVITY;
    (T_SEA_LEVEL * (p / c::P_REF).max(1e-6).powf(expo)).max(T_STRATOSPHERE)
}

impl StandardAtmosphere {
    /// Sample the standard atmosphere at the σ levels of `grid`.
    pub fn new(grid: &LatLonGrid) -> Self {
        let ps_tilde = c::P_REF;
        let pes_tilde = ps_tilde - c::P_TOP;
        let t_tilde: Vec<f64> = grid
            .sigma()
            .centers()
            .iter()
            .map(|&s| isa_temperature(c::P_TOP + s * pes_tilde))
            .collect();
        let ts = isa_temperature(ps_tilde);
        StandardAtmosphere {
            t_tilde,
            ps_tilde,
            pes_tilde,
            ts,
            rho_sa: ps_tilde / (c::R_DRY * ts),
        }
    }

    /// `T̃` at global level `k`, clamped into range for halo levels.
    #[inline]
    pub fn t_at(&self, k: i64) -> f64 {
        let n = self.t_tilde.len() as i64;
        self.t_tilde[k.clamp(0, n - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isa_profile_shape() {
        assert!((isa_temperature(c::P_REF) - T_SEA_LEVEL).abs() < 1e-9);
        // monotone decreasing with height until the stratosphere
        assert!(isa_temperature(8.0e4) < isa_temperature(9.0e4));
        // stratospheric floor
        assert_eq!(isa_temperature(5.0e3), T_STRATOSPHERE);
    }

    #[test]
    fn sampled_profile() {
        let grid = LatLonGrid::new(8, 6, 10).unwrap();
        let sa = StandardAtmosphere::new(&grid);
        assert_eq!(sa.t_tilde.len(), 10);
        // colder aloft (k = 0 is the top)
        assert!(sa.t_tilde[0] <= sa.t_tilde[9]);
        assert!(sa.t_tilde[0] >= T_STRATOSPHERE);
        assert!(sa.ts > 280.0 && sa.ts < 295.0);
        // sea-level density ≈ 1.2 kg/m³
        assert!((sa.rho_sa - 1.2).abs() < 0.1);
        assert!((sa.pes_tilde - (c::P_REF - c::P_TOP)).abs() < 1e-9);
    }

    #[test]
    fn t_at_clamps_halo_levels() {
        let grid = LatLonGrid::new(8, 6, 4).unwrap();
        let sa = StandardAtmosphere::new(&grid);
        assert_eq!(sa.t_at(-2), sa.t_tilde[0]);
        assert_eq!(sa.t_at(7), sa.t_tilde[3]);
    }
}
