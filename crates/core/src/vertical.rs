//! The collective operator `C` — all z-direction global computation.
//!
//! The paper writes `Ã = Ĉ + Â`, with `Ĉ` "a summation function along the
//! z direction" that owns the collective communication of the adaptation
//! process.  In this implementation `Ĉ` produces every z-global diagnostic
//! the tendencies read:
//!
//! * `vsum = Σ_k Δσ_k D(P)` — the vertical sum of the paper's fourth
//!   equation (surface-pressure tendency),
//! * `g_w(σ) = σ·vsum − ∫₀^σ D(P) dσ'` — the continuity mass flux
//!   `σ̇·p_es/p₀` at interfaces (zero at the model top and surface by
//!   construction),
//! * `φ'` — the hydrostatic geopotential deviation,
//!   `∂φ'/∂σ = −bΦ/(Pσ)`, integrated up from the surface where
//!   `φ'_s = R·T̃_s·p'_sa/p̃_s`.
//!
//! Under a z-decomposed process grid all three reduce to *one* allgather of
//! per-rank column partial sums on the z-axis communicator (plus local
//! prefix/suffix walks), so one `C` application = one collective event —
//! matching the paper's counting, where the approximate nonlinear iteration
//! drops `C` executions from 3 to 2 per iteration (§4.2.2) and the cost
//! attains the `Ω(2(p_z−1)·n_x·n_y)` bound of Theorem 4.2.

use crate::diag::Diag;
use crate::geometry::{LocalGeometry, Region};
use crate::state::State;
use crate::stdatm::StandardAtmosphere;
use agcm_comm::{CommResult, Communicator};
use agcm_mesh::grid::constants as c;

/// How the z-direction global sums are realized.
pub enum ZContext<'a> {
    /// Single rank owns the whole column (serial, X-Y or Y-only splits).
    Serial,
    /// Columns are split over the ranks of this z-axis communicator.
    Parallel(&'a Communicator),
}

impl ZContext<'_> {
    /// Number of ranks sharing each column.
    pub fn size(&self) -> usize {
        match self {
            ZContext::Serial => 1,
            ZContext::Parallel(c) => c.size(),
        }
    }
}

/// Apply the operator `C` for an evaluation state `arg`: fill `diag.dsa`,
/// `diag.dp`, `diag.vsum`, `diag.gw` and `diag.phi_p`.
///
/// * `region` — the sweep's target region.  `dsa`, `dp`, `vsum` and `gw`
///   are produced on it; `φ'` on the region grown by one latitude row (the
///   pressure-gradient stencils read `φ'` at `j±1`).
/// * Requires `arg`'s halos valid one row/level beyond `region` and the
///   surface diagnostics (`pes`, `cap_p`) already updated on the grown
///   rows (see [`Diag::update_surface`]).
///
/// All ranks of the z communicator must call this collectively with the
/// same y-extent (they share the same y-range by construction of the
/// cartesian decomposition).
///
/// Row-sliced with all column-sum buffers drawn from `diag`'s persistent
/// scratch, so a steady-state serial call allocates nothing; bit-identical
/// to [`apply_c_scalar`].
pub fn apply_c(
    geom: &LocalGeometry,
    stdatm: &StandardAtmosphere,
    arg: &State,
    diag: &mut Diag,
    region: Region,
    zctx: &ZContext<'_>,
    wrap_x: bool,
) -> CommResult<()> {
    // the whole of C — the nested allgather inherits Phase::C
    let _c = agcm_obs::span_phase(agcm_obs::SpanKind::Op, agcm_obs::Phase::C, "apply_c");
    let nx = geom.nx as isize;
    let nz = geom.nz as isize;
    // X-Y decompositions exchange (not wrap) the x halo, so the C outputs
    // must be computed one x column into the halo; their z collectives are
    // serial there (p_z = 1), so the extended width never reaches an
    // allgather.
    let xe: isize = if wrap_x { 0 } else { 1 };
    debug_assert!(
        wrap_x || matches!(zctx, ZContext::Serial),
        "3-D decompositions (split x AND z) are not supported"
    );
    // φ' needs one extra row on each side (clamped to the allocation)
    let gy0 = (region.y0 - 1).max(-(geom.halo.ym as isize));
    let gy1 = (region.y1 + 1).min(geom.ny as isize + geom.halo.yp as isize);

    // --- local stencil diagnostics -------------------------------------
    diag.update_dsa(geom, arg, region.y0, region.y1);
    diag.update_dp(geom, arg, region.y0, region.y1, region.z0, region.z1, xe);

    // scratch lives in `diag` across calls; taken out for disjoint borrows
    // (`Default` leaves empty Vecs behind — no allocation either way)
    let mut zs = std::mem::take(&mut diag.zscratch);

    // --- per-column block sums over OWNED levels ------------------------
    // layout: [dp-sums over region rows | φ'-integrand sums over grown rows]
    let wy = (region.y1 - region.y0).max(0) as usize;
    let wyg = (gy1 - gy0).max(0) as usize;
    let nxu = geom.nx + 2 * xe as usize;
    zs.sums.clear();
    zs.sums.resize(nxu * (wy + wyg), 0.0);
    for k in 0..nz {
        let ds = geom.dsigma(k);
        for (jj, j) in (region.y0..region.y1).enumerate() {
            let row = &mut zs.sums[jj * nxu..(jj + 1) * nxu];
            let r_dp = diag.dp.row(-xe, nx + xe, j, k);
            for (s, &d) in row.iter_mut().zip(r_dp) {
                *s += ds * d;
            }
        }
    }
    // φ'-integrand c_l = b·Φ·Δσ/(P·σ) at owned levels, on grown rows
    for k in 0..nz {
        let ds = geom.dsigma(k);
        let sigc = geom.sigma_c(k);
        for (jj, j) in (gy0..gy1).enumerate() {
            let row = &mut zs.sums[(wy + jj) * nxu..(wy + jj + 1) * nxu];
            let r_phi = arg.phi.row(-xe, nx + xe, j, k);
            let r_cp = diag.cap_p.row(-xe, nx + xe, j);
            for ((s, &phi), &cp) in row.iter_mut().zip(r_phi).zip(r_cp) {
                *s += c::B_GRAVITY_WAVE * phi * ds / (cp * sigc);
            }
        }
    }

    // --- the collective: allgather of block sums along z ----------------
    // prefix = Σ of blocks above (lower global k), suffix = Σ of blocks
    // below, total = everything.
    let n = zs.sums.len();
    match zctx {
        ZContext::Serial => {
            zs.prefix.clear();
            zs.prefix.resize(n, 0.0);
            zs.suffix.clear();
            zs.suffix.resize(n, 0.0);
            zs.total.clear();
            zs.total.extend_from_slice(&zs.sums);
        }
        ZContext::Parallel(comm) => {
            let all = match comm.allgather(&zs.sums) {
                Ok(all) => all,
                Err(e) => {
                    diag.zscratch = zs;
                    return Err(e);
                }
            };
            zs.prefix.clear();
            zs.prefix.resize(n, 0.0);
            zs.suffix.clear();
            zs.suffix.resize(n, 0.0);
            zs.total.clear();
            zs.total.resize(n, 0.0);
            for r in 0..comm.size() {
                let blk = &all[r * n..(r + 1) * n];
                for (t, &v) in zs.total.iter_mut().zip(blk) {
                    *t += v;
                }
                if r < comm.rank() {
                    for (p, &v) in zs.prefix.iter_mut().zip(blk) {
                        *p += v;
                    }
                } else if r > comm.rank() {
                    for (s, &v) in zs.suffix.iter_mut().zip(blk) {
                        *s += v;
                    }
                }
            }
        }
    }

    // --- vsum and g_w on the region --------------------------------------
    for (jj, j) in (region.y0..region.y1).enumerate() {
        let total_row = &zs.total[jj * nxu..(jj + 1) * nxu];
        diag.vsum
            .row_mut(-xe, nx + xe, j)
            .copy_from_slice(total_row);
    }
    for (jj, j) in (region.y0..region.y1).enumerate() {
        // per-row running prefix of Δσ·dp below global interface z0 − 1/2;
        // each column's accumulation order matches the scalar walk exactly
        zs.run.clear();
        zs.run
            .extend_from_slice(&zs.prefix[jj * nxu..(jj + 1) * nxu]);
        for l in region.z0..0 {
            let ds = geom.dsigma(l);
            let r_dp = diag.dp.row(-xe, nx + xe, j, l);
            for (r, &d) in zs.run.iter_mut().zip(r_dp) {
                *r -= ds * d;
            }
        }
        let total_row = &zs.total[jj * nxu..(jj + 1) * nxu];
        // walk interfaces k−1/2 for k = z0 ..= z1
        let mut k = region.z0;
        loop {
            let gk = geom.sigma_lo(k).clamp(0.0, 1.0);
            let out = diag.gw.row_mut(-xe, nx + xe, j, k);
            for ((o, &vs), &run) in out.iter_mut().zip(total_row).zip(zs.run.iter()) {
                *o = gk * vs - run;
            }
            if k == region.z1 {
                break;
            }
            let ds = geom.dsigma(k);
            let r_dp = diag.dp.row(-xe, nx + xe, j, k);
            for (r, &d) in zs.run.iter_mut().zip(r_dp) {
                *r += ds * d;
            }
            k += 1;
        }
    }

    // --- φ' on the grown rows -------------------------------------------
    for (jj, j) in (gy0..gy1).enumerate() {
        let base = (wy + jj) * nxu;
        // running suffix Σ_{l > k} c_l, starting at k = z1 − 1
        zs.run.clear();
        zs.run.extend_from_slice(&zs.suffix[base..base + nxu]);
        for l in nz..region.z1 {
            let ds = geom.dsigma(l);
            let sigc = geom.sigma_c(l);
            let r_phi = arg.phi.row(-xe, nx + xe, j, l);
            let r_cp = diag.cap_p.row(-xe, nx + xe, j);
            for ((r, &phi), &cp) in zs.run.iter_mut().zip(r_phi).zip(r_cp) {
                *r -= c::B_GRAVITY_WAVE * phi * ds / (cp * sigc);
            }
        }
        let mut k = region.z1 - 1;
        loop {
            let ds = geom.dsigma(k);
            let sigc = geom.sigma_c(k);
            {
                let r_phi = arg.phi.row(-xe, nx + xe, j, k);
                let r_cp = diag.cap_p.row(-xe, nx + xe, j);
                zs.ck.clear();
                zs.ck.extend(
                    r_phi
                        .iter()
                        .zip(r_cp)
                        .map(|(&phi, &cp)| c::B_GRAVITY_WAVE * phi * ds / (cp * sigc)),
                );
            }
            let r_psa = arg.psa.row(-xe, nx + xe, j);
            let out = diag.phi_p.row_mut(-xe, nx + xe, j, k);
            for (ii, o) in out.iter_mut().enumerate() {
                // surface geopotential deviation: φ'_s = R·T̃_s·p'_sa/p̃_s
                let phi_s = c::R_DRY * stdatm.ts * r_psa[ii] / stdatm.ps_tilde;
                *o = phi_s + 0.5 * zs.ck[ii] + zs.run[ii];
            }
            if k == region.z0 {
                break;
            }
            for (r, &ck) in zs.run.iter_mut().zip(zs.ck.iter()) {
                *r += ck;
            }
            k -= 1;
        }
    }

    diag.zscratch = zs;

    // x halos of the C outputs (read at i±1 by the tendencies); under X-Y
    // decompositions the extended-x computation above covered them instead
    if wrap_x {
        diag.phi_p.wrap_x_halo();
        diag.gw.wrap_x_halo();
        diag.vsum.wrap_x_halo();
    }
    Ok(())
}

/// Scalar per-point reference implementation, retained verbatim as the
/// golden reference for the bitwise-equivalence property tests.
#[cfg(any(test, feature = "scalar-ref"))]
pub fn apply_c_scalar(
    geom: &LocalGeometry,
    stdatm: &StandardAtmosphere,
    arg: &State,
    diag: &mut Diag,
    region: Region,
    zctx: &ZContext<'_>,
    wrap_x: bool,
) -> CommResult<()> {
    // the whole of C — the nested allgather inherits Phase::C
    let _c = agcm_obs::span_phase(agcm_obs::SpanKind::Op, agcm_obs::Phase::C, "apply_c");
    let nx = geom.nx as isize;
    let nz = geom.nz as isize;
    // X-Y decompositions exchange (not wrap) the x halo, so the C outputs
    // must be computed one x column into the halo; their z collectives are
    // serial there (p_z = 1), so the extended width never reaches an
    // allgather.
    let xe: isize = if wrap_x { 0 } else { 1 };
    debug_assert!(
        wrap_x || matches!(zctx, ZContext::Serial),
        "3-D decompositions (split x AND z) are not supported"
    );
    // φ' needs one extra row on each side (clamped to the allocation)
    let gy0 = (region.y0 - 1).max(-(geom.halo.ym as isize));
    let gy1 = (region.y1 + 1).min(geom.ny as isize + geom.halo.yp as isize);

    // --- local stencil diagnostics -------------------------------------
    diag.update_dsa(geom, arg, region.y0, region.y1);
    diag.update_dp(geom, arg, region.y0, region.y1, region.z0, region.z1, xe);

    // --- per-column block sums over OWNED levels ------------------------
    // layout: [dp-sums over region rows | φ'-integrand sums over grown rows]
    let wy = (region.y1 - region.y0).max(0) as usize;
    let wyg = (gy1 - gy0).max(0) as usize;
    let nxu = geom.nx + 2 * xe as usize;
    let mut sums = vec![0.0; nxu * (wy + wyg)];
    for k in 0..nz {
        let ds = geom.dsigma(k);
        for (jj, j) in (region.y0..region.y1).enumerate() {
            let row = &mut sums[jj * nxu..(jj + 1) * nxu];
            for (ii, s) in row.iter_mut().enumerate() {
                *s += ds * diag.dp.get(ii as isize - xe, j, k);
            }
        }
    }
    // φ'-integrand c_l = b·Φ·Δσ/(P·σ) at owned levels, on grown rows
    let integrand =
        |geom: &LocalGeometry, diag: &Diag, arg: &State, i: isize, j: isize, k: isize| {
            c::B_GRAVITY_WAVE * arg.phi.get(i, j, k) * geom.dsigma(k)
                / (diag.cap_p.get(i, j) * geom.sigma_c(k))
        };
    for k in 0..nz {
        for (jj, j) in (gy0..gy1).enumerate() {
            let base = (wy + jj) * nxu;
            for i in -xe..nx + xe {
                sums[base + (i + xe) as usize] += integrand(geom, diag, arg, i, j, k);
            }
        }
    }

    // --- the collective: allgather of block sums along z ----------------
    // prefix = Σ of blocks above (lower global k), suffix = Σ of blocks
    // below, total = everything.
    let (prefix, suffix, total) = match zctx {
        ZContext::Serial => {
            let zeros = vec![0.0; sums.len()];
            (zeros.clone(), zeros, sums.clone())
        }
        ZContext::Parallel(comm) => {
            let all = comm.allgather(&sums)?;
            let n = sums.len();
            let mut prefix = vec![0.0; n];
            let mut suffix = vec![0.0; n];
            let mut total = vec![0.0; n];
            for r in 0..comm.size() {
                let blk = &all[r * n..(r + 1) * n];
                for (t, &v) in total.iter_mut().zip(blk) {
                    *t += v;
                }
                if r < comm.rank() {
                    for (p, &v) in prefix.iter_mut().zip(blk) {
                        *p += v;
                    }
                } else if r > comm.rank() {
                    for (s, &v) in suffix.iter_mut().zip(blk) {
                        *s += v;
                    }
                }
            }
            (prefix, suffix, total)
        }
    };

    // --- vsum and g_w on the region --------------------------------------
    for (jj, j) in (region.y0..region.y1).enumerate() {
        for i in -xe..nx + xe {
            let vs = total[jj * nxu + (i + xe) as usize];
            diag.vsum.set(i, j, vs);
        }
    }
    for (jj, j) in (region.y0..region.y1).enumerate() {
        for i in -xe..nx + xe {
            let vs = total[jj * nxu + (i + xe) as usize];
            // prefix of Δσ·dp below global interface region.z0 − 1/2
            let mut run = prefix[jj * nxu + (i + xe) as usize];
            for l in region.z0..0 {
                run -= geom.dsigma(l) * diag.dp.get(i, j, l);
            }
            // walk interfaces k−1/2 for k = z0 ..= z1
            let mut k = region.z0;
            loop {
                let gk = geom.sigma_lo(k).clamp(0.0, 1.0);
                diag.gw.set(i, j, k, gk * vs - run);
                if k == region.z1 {
                    break;
                }
                run += geom.dsigma(k) * diag.dp.get(i, j, k);
                k += 1;
            }
        }
    }

    // --- φ' on the grown rows -------------------------------------------
    for (jj, j) in (gy0..gy1).enumerate() {
        let base = (wy + jj) * nxu;
        for i in -xe..nx + xe {
            // surface geopotential deviation: φ'_s = R·T̃_s·p'_sa/p̃_s
            let phi_s = c::R_DRY * stdatm.ts * arg.psa.get(i, j) / stdatm.ps_tilde;
            // running suffix Σ_{l > k} c_l, starting at k = z1 − 1
            let mut run = suffix[base + (i + xe) as usize];
            for l in nz..region.z1 {
                run -= integrand(geom, diag, arg, i, j, l);
            }
            let mut k = region.z1 - 1;
            loop {
                let ck = integrand(geom, diag, arg, i, j, k);
                diag.phi_p.set(i, j, k, phi_s + 0.5 * ck + run);
                if k == region.z0 {
                    break;
                }
                run += ck;
                k -= 1;
            }
        }
    }

    // x halos of the C outputs (read at i±1 by the tendencies); under X-Y
    // decompositions the extended-x computation above covered them instead
    if wrap_x {
        diag.phi_p.wrap_x_halo();
        diag.gw.wrap_x_halo();
        diag.vsum.wrap_x_halo();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary;
    use crate::config::ModelConfig;
    use agcm_comm::Universe;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    fn serial_setup(cfg: &ModelConfig) -> (LocalGeometry, StandardAtmosphere, State, Diag) {
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(3));
        let sa = StandardAtmosphere::new(&grid);
        let state = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        let diag = Diag::new(&geom);
        (geom, sa, state, diag)
    }

    fn seed(state: &mut State, geom: &LocalGeometry, amp: f64) {
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    let x = i as f64 * 0.7 + j as f64 * 0.3 + k as f64 * 0.1;
                    state.u.set(i, j, k, amp * x.sin());
                    state.v.set(i, j, k, amp * (x * 1.3).cos());
                    state.phi.set(i, j, k, amp * (x * 0.6).sin() * 20.0);
                }
            }
        }
        for j in 0..geom.ny as isize {
            for i in 0..geom.nx as isize {
                state
                    .psa
                    .set(i, j, amp * ((i * j) as f64 * 0.05).sin() * 30.0);
            }
        }
        boundary::enforce_pole_v(state, geom);
        boundary::fill_boundaries(state, geom);
    }

    fn run_c(geom: &LocalGeometry, sa: &StandardAtmosphere, state: &State, diag: &mut Diag) {
        let region = geom.interior();
        diag.update_surface(geom, sa, state, region.y0 - 1, region.y1 + 1);
        apply_c(geom, sa, state, diag, region, &ZContext::Serial, true).unwrap();
    }

    #[test]
    fn gw_vanishes_at_top_and_surface() {
        let cfg = ModelConfig::test_small();
        let (geom, sa, mut state, mut diag) = serial_setup(&cfg);
        seed(&mut state, &geom, 5.0);
        run_c(&geom, &sa, &state, &mut diag);
        let nz = geom.nz as isize;
        for j in 0..geom.ny as isize {
            for i in 0..geom.nx as isize {
                assert!(diag.gw.get(i, j, 0).abs() < 1e-12, "top σ̇ ≠ 0");
                assert!(
                    diag.gw.get(i, j, nz).abs() < 1e-10,
                    "surface σ̇ = {} ≠ 0",
                    diag.gw.get(i, j, nz)
                );
            }
        }
    }

    #[test]
    fn gw_consistent_with_divergence_derivative() {
        // d(gw)/dσ at level k = vsum − dp(k) by construction
        let cfg = ModelConfig::test_small();
        let (geom, sa, mut state, mut diag) = serial_setup(&cfg);
        seed(&mut state, &geom, 3.0);
        run_c(&geom, &sa, &state, &mut diag);
        for k in 0..geom.nz as isize {
            let d = (diag.gw.get(4, 5, k + 1) - diag.gw.get(4, 5, k)) / geom.dsigma(k);
            let want = diag.vsum.get(4, 5) - diag.dp.get(4, 5, k);
            assert!((d - want).abs() < 1e-10 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn phi_prime_zero_for_zero_deviation() {
        // Φ = 0 and p'_sa = 0 → φ' ≡ 0
        let cfg = ModelConfig::test_small();
        let (geom, sa, state, mut diag) = serial_setup(&cfg);
        run_c(&geom, &sa, &state, &mut diag);
        assert_eq!(diag.phi_p.max_abs(), 0.0);
        assert_eq!(diag.vsum.max_abs(), 0.0);
    }

    #[test]
    fn phi_prime_hydrostatic_sign() {
        // warm column (Φ > 0) → thickness increases upward: φ' grows with
        // height (decreasing k)
        let cfg = ModelConfig::test_small();
        let (geom, sa, mut state, mut diag) = serial_setup(&cfg);
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    state.phi.set(i, j, k, 50.0);
                }
            }
        }
        boundary::fill_boundaries(&mut state, &geom);
        run_c(&geom, &sa, &state, &mut diag);
        for k in 0..geom.nz as isize - 1 {
            assert!(
                diag.phi_p.get(3, 3, k) > diag.phi_p.get(3, 3, k + 1),
                "φ' must increase with height"
            );
        }
        // surface value from p'_sa = 0 is c_k/2 of the lowest level only
        assert!(diag.phi_p.get(3, 3, geom.nz as isize - 1) > 0.0);
    }

    #[test]
    fn parallel_c_matches_serial() {
        // Y-Z decomposition with pz = 2 and 4: C outputs must equal serial
        let cfg = ModelConfig::test_medium(); // nz = 8
        let (sgeom, ssa, mut sstate, mut sdiag) = serial_setup(&cfg);
        seed(&mut sstate, &sgeom, 4.0);
        run_c(&sgeom, &ssa, &sstate, &mut sdiag);

        for pz in [2usize, 4] {
            let results = Universe::run(pz, |comm| {
                let cfg = ModelConfig::test_medium();
                let grid = Arc::new(cfg.grid().unwrap());
                let d = Decomposition::new(cfg.extents(), ProcessGrid::yz(1, pz).unwrap()).unwrap();
                let geom = LocalGeometry::new(
                    &cfg,
                    Arc::clone(&grid),
                    &d,
                    comm.rank(),
                    HaloWidths::uniform(3),
                );
                let sa = StandardAtmosphere::new(&grid);
                let mut state = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
                // seed with the GLOBAL pattern at this rank's offset in z
                let z0 = geom.sub.z.start as isize;
                for k in 0..geom.nz as isize {
                    for j in 0..geom.ny as isize {
                        for i in 0..geom.nx as isize {
                            let x = i as f64 * 0.7 + j as f64 * 0.3 + (k + z0) as f64 * 0.1;
                            state.u.set(i, j, k, 4.0 * x.sin());
                            state.v.set(i, j, k, 4.0 * (x * 1.3).cos());
                            state.phi.set(i, j, k, 4.0 * (x * 0.6).sin() * 20.0);
                        }
                    }
                }
                for j in 0..geom.ny as isize {
                    for i in 0..geom.nx as isize {
                        state
                            .psa
                            .set(i, j, 4.0 * ((i * j) as f64 * 0.05).sin() * 30.0);
                    }
                }
                boundary::enforce_pole_v(&mut state, &geom);
                boundary::fill_boundaries(&mut state, &geom);
                // z halos between ranks: fill from the analytic pattern so
                // the dp stencil (x/y only) is exact; dp needs no z halo
                let mut diag = Diag::new(&geom);
                let region = geom.interior();
                diag.update_surface(&geom, &sa, &state, region.y0 - 1, region.y1 + 1);
                apply_c(
                    &geom,
                    &sa,
                    &state,
                    &mut diag,
                    region,
                    &ZContext::Parallel(comm),
                    true,
                )
                .unwrap();
                // return this rank's gw + phi_p + vsum samples
                let mut out = Vec::new();
                for k in 0..geom.nz as isize {
                    out.push(diag.gw.get(5, 3, k));
                    out.push(diag.phi_p.get(5, 3, k));
                }
                out.push(diag.vsum.get(5, 3));
                (geom.sub.z.start, out)
            });
            for (z0, vals) in results {
                let nzl = (vals.len() - 1) / 2;
                for kk in 0..nzl {
                    let want_gw = sdiag.gw.get(5, 3, (z0 + kk) as isize);
                    let want_phi = sdiag.phi_p.get(5, 3, (z0 + kk) as isize);
                    assert!(
                        (vals[2 * kk] - want_gw).abs() < 1e-10,
                        "gw mismatch pz={pz} k={}",
                        z0 + kk
                    );
                    assert!(
                        (vals[2 * kk + 1] - want_phi).abs() < 1e-10,
                        "phi' mismatch pz={pz} k={}",
                        z0 + kk
                    );
                }
                assert!((vals[vals.len() - 1] - sdiag.vsum.get(5, 3)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn one_collective_event_per_application() {
        let results = Universe::run(2, |comm| {
            let cfg = ModelConfig::test_medium();
            let grid = Arc::new(cfg.grid().unwrap());
            let d = Decomposition::new(cfg.extents(), ProcessGrid::yz(1, 2).unwrap()).unwrap();
            let geom = LocalGeometry::new(
                &cfg,
                Arc::clone(&grid),
                &d,
                comm.rank(),
                HaloWidths::uniform(3),
            );
            let sa = StandardAtmosphere::new(&grid);
            let mut state = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
            boundary::fill_boundaries(&mut state, &geom);
            let mut diag = Diag::new(&geom);
            let region = geom.interior();
            diag.update_surface(&geom, &sa, &state, region.y0 - 1, region.y1 + 1);
            apply_c(
                &geom,
                &sa,
                &state,
                &mut diag,
                region,
                &ZContext::Parallel(comm),
                true,
            )
            .unwrap();
            comm.stats().snapshot().collective_calls
        });
        assert!(results.iter().all(|&n| n == 1));
    }
}
