//! Physical boundary conditions: poles and vertical caps.
//!
//! The latitude–longitude mesh has no neighbours beyond the poles or beyond
//! the model top/surface.  Halo rows there are filled from a **free-slip
//! wall** condition so that the operator loops can sweep interior and halo
//! uniformly:
//!
//! * scalars (`Φ`, `p'_sa`) and the zonal wind `U` mirror symmetrically
//!   across the boundary,
//! * the meridional wind `V` is antisymmetric across a pole and pinned to
//!   zero on the pole face itself (`V` rows sit on faces; the southernmost
//!   stored row *is* the south-pole face),
//! * all fields mirror symmetrically across the top/surface, which combined
//!   with `σ̇ = 0` at those interfaces closes the vertical fluxes.
//!
//! A real GCM treats the pole with cross-pole averaging (column `i` couples
//! to column `i + n_x/2`); the wall condition used here is local in every
//! decomposition, which keeps the communication structure identical to the
//! paper's while avoiding a special cross-pole exchange the paper does not
//! discuss.  See DESIGN.md §2.

use crate::geometry::LocalGeometry;
use crate::state::State;
use agcm_mesh::{Field2, Field3};

/// clamped reflection of halo offset `d ∈ 1..` into interior rows
#[inline]
fn reflect(d: isize, n: isize) -> isize {
    (d - 1).min(n - 1)
}

fn mirror_y_field3(f: &mut Field3, sym: f64, north: bool, south: bool, v_stagger: bool) {
    let (nx, ny, nz) = f.extents();
    let h = f.halo();
    let (nx, ny, nz) = (nx as isize, ny as isize, nz as isize);
    // cover the x halo too: under X-Y decompositions the x halo of the
    // mirror rows cannot be wrapped locally, and the halo exchange only
    // carries interior rows — the mirror itself must extend sideways
    // (interior rows' x halos are valid by exchange/wrap at this point)
    for k in -(h.zm as isize)..nz + h.zp as isize {
        for i in -(h.xm as isize)..nx + h.xp as isize {
            if north {
                for d in 1..=h.ym as isize {
                    let v = if v_stagger {
                        // face -1 is the pole: zero; deeper faces reflect
                        if d == 1 {
                            0.0
                        } else {
                            sym * f.get(i, reflect(d - 1, ny), k)
                        }
                    } else {
                        sym * f.get(i, reflect(d, ny), k)
                    };
                    f.set(i, -d, k, v);
                }
            }
            if south {
                if v_stagger {
                    // the southernmost stored row is the pole face
                    f.set(i, ny - 1, k, 0.0);
                }
                for d in 1..=h.yp as isize {
                    let v = if v_stagger {
                        sym * f.get(i, (ny - 1 - d).max(0), k)
                    } else {
                        sym * f.get(i, (ny - d).max(0).min(ny - 1), k)
                    };
                    f.set(i, ny - 1 + d, k, v);
                }
            }
        }
    }
}

fn mirror_y_field2(f: &mut Field2, north: bool, south: bool) {
    let (nx, ny) = f.extents();
    let h = f.halo();
    let (nx, ny) = (nx as isize, ny as isize);
    for i in -(h.xm as isize)..nx + h.xp as isize {
        if north {
            for d in 1..=h.ym as isize {
                let v = f.get(i, reflect(d, ny));
                f.set(i, -d, v);
            }
        }
        if south {
            for d in 1..=h.yp as isize {
                let v = f.get(i, (ny - d).max(0).min(ny - 1));
                f.set(i, ny - 1 + d, v);
            }
        }
    }
}

fn mirror_z_field3(f: &mut Field3, top: bool, bottom: bool) {
    let (nx, ny, nz) = f.extents();
    let h = f.halo();
    let (nx, ny, nz) = (nx as isize, ny as isize, nz as isize);
    for j in -(h.ym as isize)..ny + h.yp as isize {
        for i in -(h.xm as isize)..nx + h.xp as isize {
            if top {
                for d in 1..=h.zm as isize {
                    let v = f.get(i, j, reflect(d, nz));
                    f.set(i, j, -d, v);
                }
            }
            if bottom {
                for d in 1..=h.zp as isize {
                    let v = f.get(i, j, (nz - d).max(0).min(nz - 1));
                    f.set(i, j, nz - 1 + d, v);
                }
            }
        }
    }
}

/// Pin the meridional wind to zero on the south-pole face (an interior row
/// when this rank touches the south pole).  Called after every update.
pub fn enforce_pole_v(state: &mut State, geom: &LocalGeometry) {
    if geom.at_south() {
        let (nx, ny, nz) = state.v.extents();
        for k in 0..nz as isize {
            for i in 0..nx as isize {
                state.v.set(i, ny as isize - 1, k, 0.0);
            }
        }
    }
}

/// Fill every physical-boundary halo of the state (y mirrors where this
/// rank touches a pole, z mirrors where it touches top/surface) and then
/// wrap the periodic x halos.  Halos facing real neighbours are left alone
/// (the halo exchange owns them).
///
/// Requires `p_x = 1` (full circles owned locally) for the x wrap; the X-Y
/// decomposition path exchanges x halos instead and calls
/// [`fill_boundaries_no_wrap`].
pub fn fill_boundaries(state: &mut State, geom: &LocalGeometry) {
    fill_boundaries_no_wrap(state, geom);
    state.wrap_x();
}

/// As [`fill_boundaries`] but without the periodic x wrap.
pub fn fill_boundaries_no_wrap(state: &mut State, geom: &LocalGeometry) {
    let (n, s) = (geom.at_north(), geom.at_south());
    let (t, b) = (geom.at_top(), geom.at_surface());
    if n || s {
        mirror_y_field3(&mut state.u, 1.0, n, s, false);
        mirror_y_field3(&mut state.v, -1.0, n, s, true);
        mirror_y_field3(&mut state.phi, 1.0, n, s, false);
        mirror_y_field2(&mut state.psa, n, s);
    }
    if t || b {
        mirror_z_field3(&mut state.u, t, b);
        mirror_z_field3(&mut state.v, t, b);
        mirror_z_field3(&mut state.phi, t, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    fn serial_geom(halo: HaloWidths) -> LocalGeometry {
        let cfg = ModelConfig::test_small(); // 16 x 10 x 4
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        LocalGeometry::new(&cfg, grid, &d, 0, halo)
    }

    fn seeded_state(geom: &LocalGeometry) -> State {
        let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    let v = 1.0 + (i + 10 * j + 100 * k) as f64;
                    st.u.set(i, j, k, v);
                    st.v.set(i, j, k, -v);
                    st.phi.set(i, j, k, 2.0 * v);
                }
            }
        }
        for j in 0..geom.ny as isize {
            for i in 0..geom.nx as isize {
                st.psa.set(i, j, (i * j) as f64);
            }
        }
        st
    }

    #[test]
    fn scalar_mirror_at_north() {
        let geom = serial_geom(HaloWidths::uniform(2));
        let mut st = seeded_state(&geom);
        fill_boundaries(&mut st, &geom);
        for i in 0..geom.nx as isize {
            assert_eq!(st.phi.get(i, -1, 0), st.phi.get(i, 0, 0));
            assert_eq!(st.phi.get(i, -2, 0), st.phi.get(i, 1, 0));
            assert_eq!(st.u.get(i, -1, 1), st.u.get(i, 0, 1));
            assert_eq!(st.psa.get(i, -2), st.psa.get(i, 1));
        }
    }

    #[test]
    fn v_antisymmetric_at_poles() {
        let geom = serial_geom(HaloWidths::uniform(2));
        let mut st = seeded_state(&geom);
        enforce_pole_v(&mut st, &geom);
        fill_boundaries(&mut st, &geom);
        let ny = geom.ny as isize;
        for i in 0..geom.nx as isize {
            // north: face -1 is the pole (V = 0), face -2 reflects face 0
            assert_eq!(st.v.get(i, -1, 0), 0.0);
            assert_eq!(st.v.get(i, -2, 0), -st.v.get(i, 0, 0));
            // south: stored row ny-1 is the pole (pinned to 0)
            assert_eq!(st.v.get(i, ny - 1, 0), 0.0);
            assert_eq!(st.v.get(i, ny, 0), -st.v.get(i, ny - 2, 0));
            assert_eq!(st.v.get(i, ny + 1, 0), -st.v.get(i, ny - 3, 0));
        }
    }

    #[test]
    fn z_mirror_top_and_surface() {
        let geom = serial_geom(HaloWidths::uniform(2));
        let mut st = seeded_state(&geom);
        fill_boundaries(&mut st, &geom);
        let nz = geom.nz as isize;
        for i in 0..geom.nx as isize {
            assert_eq!(st.phi.get(i, 2, -1), st.phi.get(i, 2, 0));
            assert_eq!(st.phi.get(i, 2, -2), st.phi.get(i, 2, 1));
            assert_eq!(st.u.get(i, 2, nz), st.u.get(i, 2, nz - 1));
            assert_eq!(st.u.get(i, 2, nz + 1), st.u.get(i, 2, nz - 2));
        }
    }

    #[test]
    fn corner_halos_consistent_after_wrap() {
        // y-halo rows must also have valid x halo (wrap happens last)
        let geom = serial_geom(HaloWidths::uniform(2));
        let mut st = seeded_state(&geom);
        fill_boundaries(&mut st, &geom);
        let nx = geom.nx as isize;
        assert_eq!(st.phi.get(-1, -1, 0), st.phi.get(nx - 1, -1, 0));
        assert_eq!(st.phi.get(nx, -2, -1), st.phi.get(0, -2, -1));
    }

    #[test]
    fn interior_rank_untouched_in_y() {
        // a rank away from both poles must not have its y halos modified
        let cfg = ModelConfig::test_medium();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::yz(4, 1).unwrap()).unwrap();
        let geom = LocalGeometry::new(&cfg, grid, &d, 1, HaloWidths::uniform(1));
        assert!(!geom.at_north() && !geom.at_south());
        let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        st.phi.fill(7.0);
        st.phi.set(0, -1, 0, 99.0); // pretend exchanged halo
        fill_boundaries(&mut st, &geom);
        assert_eq!(st.phi.get(0, -1, 0), 99.0, "exchange-owned halo preserved");
    }

    #[test]
    fn deep_halo_clamped_reflection() {
        // halo deeper than the local row count must not panic
        let geom = serial_geom(HaloWidths {
            xm: 1,
            xp: 1,
            ym: 12,
            yp: 12,
            zm: 6,
            zp: 6,
        });
        let mut st = seeded_state(&geom);
        enforce_pole_v(&mut st, &geom);
        fill_boundaries(&mut st, &geom);
        assert!(!st.has_nan());
    }
}
