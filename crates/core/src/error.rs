//! Unified error type for model construction and stepping.

use agcm_comm::CommError;
use agcm_mesh::MeshError;
use std::fmt;

/// Errors from building or running a (parallel) model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Grid / decomposition problem.
    Mesh(MeshError),
    /// Communication failure.
    Comm(CommError),
    /// Configuration inconsistent with the decomposition (e.g. deep halos
    /// larger than a local block).
    Config(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Mesh(e) => write!(f, "mesh error: {e}"),
            ModelError::Comm(e) => write!(f, "communication error: {e}"),
            ModelError::Config(m) => write!(f, "configuration error: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<MeshError> for ModelError {
    fn from(e: MeshError) -> Self {
        ModelError::Mesh(e)
    }
}

impl From<CommError> for ModelError {
    fn from(e: CommError) -> Self {
        ModelError::Comm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ModelError = MeshError::InvalidProcessGrid {
            px: 0,
            py: 1,
            pz: 1,
        }
        .into();
        assert!(e.to_string().contains("mesh error"));
        let e: ModelError = CommError::PeerGone { peer: 3 }.into();
        assert!(e.to_string().contains("communication error"));
        assert!(ModelError::Config("x".into()).to_string().contains("x"));
    }
}
