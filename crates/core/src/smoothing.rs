//! The smoothing operator `S̃` and its splitting (§4.3.2, Eq. 14).
//!
//! For `ξ = (U, V, Φ, p'_sa)`,
//! `S̃(ξ) = (P₁(U), P₁(V), P₂(Φ), P₂(p'_sa))` with
//!
//! ```text
//! P₁(φ) = φ − (β/2⁴)·δ⁴_λ φ
//! P₂(φ) = φ − (β/2⁴)·(δ⁴_λ + δ⁴_θ) φ + (β²/2⁸)·δ⁴_θ δ⁴_λ φ
//! ```
//!
//! where `δ⁴` is the five-point fourth difference.  Because each output is a
//! linear combination of the five latitude rows `j−2 … j+2`, `S̃` splits into
//! per-row contributions `S̃_l` (Eq. 14); the paper groups them into the
//! *former smoothing* (contributions available before the halo exchange)
//! and *later smoothing* (the rest, applied after messages arrive), which
//! fuses the smoothing communication into the next adaptation exchange.
//! [`smooth_rows`] implements the general row-mask form so the split
//! identity `S̃ = S̃_L + S̃'_L = S̃_R + S̃'_R` is testable literally.

use crate::geometry::{LocalGeometry, Region};
use crate::pool::{self, StateBand};
use crate::state::State;
#[cfg(any(test, feature = "scalar-ref"))]
use agcm_mesh::{Field2, Field3};

/// Fourth-difference coefficients for offsets −2..=+2.
const A4: [f64; 5] = [1.0, -4.0, 6.0, -4.0, 1.0];

/// Which of the five row contributions `S̃_{j+m}`, `m ∈ −2..=2`, to include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMask(pub [bool; 5]);

impl RowMask {
    /// All five rows: the full smoothing.
    pub const FULL: RowMask = RowMask([true; 5]);
    /// `S̃_L = S̃_j + S̃_{j−1} + S̃_{j−2}` (own row + the two north of it).
    pub const L: RowMask = RowMask([true, true, true, false, false]);
    /// `S̃'_L = S̃_{j+1} + S̃_{j+2}`.
    pub const L_PRIME: RowMask = RowMask([false, false, false, true, true]);
    /// `S̃_R = S̃_j + S̃_{j+1} + S̃_{j+2}`.
    pub const R: RowMask = RowMask([false, false, true, true, true]);
    /// `S̃'_R = S̃_{j−1} + S̃_{j−2}`.
    pub const R_PRIME: RowMask = RowMask([true, true, false, false, false]);

    #[inline]
    fn has(&self, m: isize) -> bool {
        self.0[(m + 2) as usize]
    }
}

/// Five-point fourth difference on a row slice; `q` is the slice index of
/// the centre point.  Same expression order as [`d4_lambda_f3`].
#[inline]
fn d4_row(r: &[f64], q: usize) -> f64 {
    r[q - 2] - 4.0 * r[q - 1] + 6.0 * r[q] - 4.0 * r[q + 1] + r[q + 2]
}

#[cfg(any(test, feature = "scalar-ref"))]
#[inline]
fn d4_lambda_f3(f: &Field3, i: isize, j: isize, k: isize) -> f64 {
    f.get(i - 2, j, k) - 4.0 * f.get(i - 1, j, k) + 6.0 * f.get(i, j, k) - 4.0 * f.get(i + 1, j, k)
        + f.get(i + 2, j, k)
}

#[cfg(any(test, feature = "scalar-ref"))]
#[inline]
fn d4_lambda_f2(f: &Field2, i: isize, j: isize) -> f64 {
    f.get(i - 2, j) - 4.0 * f.get(i - 1, j) + 6.0 * f.get(i, j) - 4.0 * f.get(i + 1, j)
        + f.get(i + 2, j)
}

/// `P₁` applied to one 3-D field on `region` (x-only smoothing — U and V).
#[cfg(any(test, feature = "scalar-ref"))]
fn p1_field(beta: f64, src: &Field3, dst: &mut Field3, region: Region, nx: isize, mask: RowMask) {
    // P₁ has no y coupling: it belongs entirely to the m = 0 contribution
    let include = mask.has(0);
    let b16 = beta / 16.0;
    for k in region.z0..region.z1 {
        for j in region.y0..region.y1 {
            for i in 0..nx {
                let v = if include {
                    src.get(i, j, k) - b16 * d4_lambda_f3(src, i, j, k)
                } else {
                    0.0
                };
                dst.set(i, j, k, v);
            }
        }
    }
}

/// The `m`-row contribution of `P₂` at `(i, j)` (3-D).
#[cfg(any(test, feature = "scalar-ref"))]
#[inline]
fn p2_contrib_f3(beta: f64, src: &Field3, i: isize, j: isize, k: isize, m: isize) -> f64 {
    let b16 = beta / 16.0;
    let b2 = beta * beta / 256.0;
    let a = A4[(m + 2) as usize];
    let mut v = -b16 * a * src.get(i, j + m, k) + b2 * a * d4_lambda_f3(src, i, j + m, k);
    if m == 0 {
        v += src.get(i, j, k) - b16 * d4_lambda_f3(src, i, j, k);
    }
    v
}

#[cfg(any(test, feature = "scalar-ref"))]
#[inline]
fn p2_contrib_f2(beta: f64, src: &Field2, i: isize, j: isize, m: isize) -> f64 {
    let b16 = beta / 16.0;
    let b2 = beta * beta / 256.0;
    let a = A4[(m + 2) as usize];
    let mut v = -b16 * a * src.get(i, j + m) + b2 * a * d4_lambda_f2(src, i, j + m);
    if m == 0 {
        v += src.get(i, j) - b16 * d4_lambda_f2(src, i, j);
    }
    v
}

/// Write `Σ_{m ∈ mask} S̃_m(src)` into `dst` over `region`
/// (`add = true` accumulates instead — the "later smoothing" completion).
///
/// Preconditions: `src` valid two rows/columns beyond `region` in x and y
/// (wrap + exchange/boundary fill).
///
/// Row-sliced and banded over the intra-rank worker pool; bit-identical to
/// [`smooth_rows_scalar`] at any `AGCM_THREADS`.
pub fn smooth_rows(
    geom: &LocalGeometry,
    beta: f64,
    src: &State,
    dst: &mut State,
    region: Region,
    mask: RowMask,
    add: bool,
) {
    let (mut bands, nb) = pool::split_state_bands(
        &mut dst.u,
        &mut dst.v,
        &mut dst.phi,
        &region,
        pool::workers_for(
            geom.nx
                * (region.y1 - region.y0).max(0) as usize
                * (region.z1 - region.z0).max(0) as usize,
        ),
    );
    pool::run(&mut bands[..nb], "smoothing.band", |band| {
        smooth_band(geom, beta, src, band, mask, add);
    });

    // p'_sa: P₂ (2-D) on the calling thread
    let nx = geom.nx as isize;
    let b16 = beta / 16.0;
    let b2 = beta * beta / 256.0;
    for j in region.y0..region.y1 {
        let rows: [Option<&[f64]>; 5] = std::array::from_fn(|mi| {
            mask.0[mi].then(|| src.psa.row(-2, nx + 2, j + (mi as isize - 2)))
        });
        let out = dst.psa.row_mut(0, nx, j);
        for (ii, o) in out.iter_mut().enumerate() {
            let q = ii + 2;
            let mut v = 0.0;
            for (mi, row) in rows.iter().enumerate() {
                if let Some(r) = row {
                    let a = A4[mi];
                    let d4 = d4_row(r, q);
                    let mut cv = -b16 * a * r[q] + b2 * a * d4;
                    if mi == 2 {
                        cv += r[q] - b16 * d4;
                    }
                    v += cv;
                }
            }
            if add {
                *o += v;
            } else {
                *o = v;
            }
        }
    }
}

/// Row-sliced smoothing sweep over one worker band.
///
/// Rows are fetched at `x ∈ [-2, nx+2)` (the δ⁴ stencil's full width), so
/// the slice index of logical point `i + d` is `ii + 2 + d`.  Only the
/// latitude rows selected by `mask` are touched, preserving the scalar
/// reference's read footprint exactly.
fn smooth_band(
    geom: &LocalGeometry,
    beta: f64,
    src: &State,
    band: &mut StateBand<'_>,
    mask: RowMask,
    add: bool,
) {
    let StateBand {
        region,
        u: t_u,
        v: t_v,
        phi: t_phi,
    } = band;
    let nx = geom.nx as isize;
    let b16 = beta / 16.0;
    let b2 = beta * beta / 256.0;
    let include = mask.has(0);

    for k in region.z0..region.z1 {
        for j in region.y0..region.y1 {
            // U, V: P₁ (x only); accumulate semantics match the P₂ path
            if !add {
                for (src_f, dst_f) in [(&src.u, &mut *t_u), (&src.v, &mut *t_v)] {
                    let out = dst_f.row_mut(0, nx, j, k);
                    if include {
                        let r = src_f.row(-2, nx + 2, j, k);
                        for (ii, o) in out.iter_mut().enumerate() {
                            let q = ii + 2;
                            *o = r[q] - b16 * d4_row(r, q);
                        }
                    } else {
                        out.fill(0.0);
                    }
                }
            } else if include {
                for (src_f, dst_f) in [(&src.u, &mut *t_u), (&src.v, &mut *t_v)] {
                    let r = src_f.row(-2, nx + 2, j, k);
                    let out = dst_f.row_mut(0, nx, j, k);
                    for (ii, o) in out.iter_mut().enumerate() {
                        let q = ii + 2;
                        *o += r[q] - b16 * d4_row(r, q);
                    }
                }
            }

            // Φ: P₂ — sum the masked row contributions exactly as the
            // scalar reference's `p2_contrib_f3` does
            let rows: [Option<&[f64]>; 5] = std::array::from_fn(|mi| {
                mask.0[mi].then(|| src.phi.row(-2, nx + 2, j + (mi as isize - 2), k))
            });
            let out = t_phi.row_mut(0, nx, j, k);
            for (ii, o) in out.iter_mut().enumerate() {
                let q = ii + 2;
                let mut v = 0.0;
                for (mi, row) in rows.iter().enumerate() {
                    if let Some(r) = row {
                        let a = A4[mi];
                        let d4 = d4_row(r, q);
                        let mut cv = -b16 * a * r[q] + b2 * a * d4;
                        if mi == 2 {
                            cv += r[q] - b16 * d4;
                        }
                        v += cv;
                    }
                }
                if add {
                    *o += v;
                } else {
                    *o = v;
                }
            }
        }
    }
}

/// Scalar per-point reference implementation, retained verbatim as the
/// golden reference for the bitwise-equivalence property tests.
#[cfg(any(test, feature = "scalar-ref"))]
pub fn smooth_rows_scalar(
    geom: &LocalGeometry,
    beta: f64,
    src: &State,
    dst: &mut State,
    region: Region,
    mask: RowMask,
    add: bool,
) {
    let nx = geom.nx as isize;
    // U, V: P₁ (x only); accumulate semantics match the P₂ path
    if !add {
        p1_field(beta, &src.u, &mut dst.u, region, nx, mask);
        p1_field(beta, &src.v, &mut dst.v, region, nx, mask);
    } else if mask.has(0) {
        for k in region.z0..region.z1 {
            for j in region.y0..region.y1 {
                for i in 0..nx {
                    let v = src.u.get(i, j, k) - beta / 16.0 * d4_lambda_f3(&src.u, i, j, k);
                    dst.u.add(i, j, k, v);
                    let v = src.v.get(i, j, k) - beta / 16.0 * d4_lambda_f3(&src.v, i, j, k);
                    dst.v.add(i, j, k, v);
                }
            }
        }
    }
    // Φ: P₂
    for k in region.z0..region.z1 {
        for j in region.y0..region.y1 {
            for i in 0..nx {
                let mut v = 0.0;
                for m in -2isize..=2 {
                    if mask.has(m) {
                        v += p2_contrib_f3(beta, &src.phi, i, j, k, m);
                    }
                }
                if add {
                    dst.phi.add(i, j, k, v);
                } else {
                    dst.phi.set(i, j, k, v);
                }
            }
        }
    }
    // p'_sa: P₂ (2-D)
    for j in region.y0..region.y1 {
        for i in 0..nx {
            let mut v = 0.0;
            for m in -2isize..=2 {
                if mask.has(m) {
                    v += p2_contrib_f2(beta, &src.psa, i, j, m);
                }
            }
            if add {
                dst.psa.add(i, j, v);
            } else {
                dst.psa.set(i, j, v);
            }
        }
    }
}

/// Full smoothing `dst = S̃(src)` over `region`.
pub fn smooth_full(geom: &LocalGeometry, beta: f64, src: &State, dst: &mut State, region: Region) {
    smooth_rows(geom, beta, src, dst, region, RowMask::FULL, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary;
    use crate::config::ModelConfig;
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    fn setup() -> (LocalGeometry, State) {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(3));
        let mut state = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    let x = (i as f64 * 1.1 + j as f64 * 0.7 + k as f64 * 0.3).sin();
                    state.u.set(i, j, k, 10.0 * x);
                    state.v.set(i, j, k, 5.0 * (x * 2.0).cos());
                    state.phi.set(i, j, k, 20.0 * (x * 3.0).sin());
                }
            }
        }
        for j in 0..geom.ny as isize {
            for i in 0..geom.nx as isize {
                state.psa.set(i, j, ((i * 3 + j * 5) % 7) as f64 * 10.0);
            }
        }
        boundary::enforce_pole_v(&mut state, &geom);
        boundary::fill_boundaries(&mut state, &geom);
        (geom, state)
    }

    const BETA: f64 = 0.1;

    #[test]
    fn constant_field_is_fixed_point() {
        let (geom, _) = setup();
        let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        // constant everywhere (δ⁴ annihilates constants)
        st.u.fill(3.0);
        st.v.fill(-2.0);
        st.phi.fill(7.0);
        st.psa.fill(1.5);
        let mut out = State::like(&st);
        smooth_full(&geom, BETA, &st, &mut out, geom.interior());
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    assert!((out.u.get(i, j, k) - 3.0).abs() < 1e-12);
                    assert!((out.phi.get(i, j, k) - 7.0).abs() < 1e-12);
                }
            }
        }
        for j in 0..geom.ny as isize {
            assert!((out.psa.get(2, j) - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn damps_grid_scale_noise() {
        let (geom, _) = setup();
        let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        // 2Δx checkerboard in x, the mode δ⁴λ is built to kill:
        // δ⁴((−1)^i) = 16(−1)^i → P₁ multiplies by (1 − β)
        for k in 0..geom.nz as isize {
            for j in 0..geom.ny as isize {
                for i in 0..geom.nx as isize {
                    st.u.set(i, j, k, if i % 2 == 0 { 1.0 } else { -1.0 });
                }
            }
        }
        st.wrap_x();
        let mut out = State::like(&st);
        smooth_full(&geom, BETA, &st, &mut out, geom.interior());
        for i in 0..geom.nx as isize {
            let want = (1.0 - BETA) * st.u.get(i, 3, 1);
            assert!((out.u.get(i, 3, 1) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn p2_matches_operator_composition() {
        // P₂ = (1 − β/16 δ⁴θ)(1 − β/16 δ⁴λ) expanded; verify against a
        // direct two-pass computation on Φ
        let (geom, st) = setup();
        let mut out = State::like(&st);
        smooth_full(&geom, BETA, &st, &mut out, geom.interior());
        // two-pass reference at an interior point
        let (i, j, k) = (5isize, 4isize, 2isize);
        // pass 1: ψ = φ − β/16 δ⁴λ φ on rows j−2..j+2
        let psi = |jj: isize| st.phi.get(i, jj, k) - BETA / 16.0 * d4_lambda_f3(&st.phi, i, jj, k);
        let d4t: f64 = (-2..=2).map(|m| A4[(m + 2) as usize] * psi(j + m)).sum();
        let want = psi(j) - BETA / 16.0 * d4t;
        assert!(
            (out.phi.get(i, j, k) - want).abs() < 1e-12,
            "{} vs {want}",
            out.phi.get(i, j, k)
        );
    }

    #[test]
    fn split_identity_left() {
        // Eq. 14: S̃ = S̃_L + S̃'_L
        let (geom, st) = setup();
        let region = geom.interior();
        let mut full = State::like(&st);
        smooth_full(&geom, BETA, &st, &mut full, region);
        let mut split = State::like(&st);
        smooth_rows(&geom, BETA, &st, &mut split, region, RowMask::L, false);
        smooth_rows(&geom, BETA, &st, &mut split, region, RowMask::L_PRIME, true);
        assert!(full.max_abs_diff(&split) < 1e-12);
    }

    #[test]
    fn split_identity_right() {
        // Eq. 14: S̃ = S̃_R + S̃'_R
        let (geom, st) = setup();
        let region = geom.interior();
        let mut full = State::like(&st);
        smooth_full(&geom, BETA, &st, &mut full, region);
        let mut split = State::like(&st);
        smooth_rows(&geom, BETA, &st, &mut split, region, RowMask::R, false);
        smooth_rows(&geom, BETA, &st, &mut split, region, RowMask::R_PRIME, true);
        assert!(full.max_abs_diff(&split) < 1e-12);
    }

    #[test]
    fn five_single_rows_sum_to_full() {
        let (geom, st) = setup();
        let region = geom.interior();
        let mut full = State::like(&st);
        smooth_full(&geom, BETA, &st, &mut full, region);
        let mut acc = State::like(&st);
        for m in 0..5usize {
            let mut mask = [false; 5];
            mask[m] = true;
            smooth_rows(&geom, BETA, &st, &mut acc, region, RowMask(mask), m != 0);
        }
        assert!(full.max_abs_diff(&acc) < 1e-12);
    }

    #[test]
    fn smoothing_reduces_variance() {
        let (geom, st) = setup();
        let mut out = State::like(&st);
        smooth_full(&geom, BETA, &st, &mut out, geom.interior());
        let var = |f: &Field3| {
            let (nx, ny, nz) = f.extents();
            let mut mean = 0.0;
            let mut n = 0.0;
            for k in 0..nz as isize {
                for j in 0..ny as isize {
                    for i in 0..nx as isize {
                        mean += f.get(i, j, k);
                        n += 1.0;
                    }
                }
            }
            mean /= n;
            let mut v = 0.0;
            for k in 0..nz as isize {
                for j in 0..ny as isize {
                    for i in 0..nx as isize {
                        v += (f.get(i, j, k) - mean).powi(2);
                    }
                }
            }
            v / n
        };
        assert!(var(&out.phi) < var(&st.phi));
        assert!(var(&out.u) < var(&st.u));
    }
}
