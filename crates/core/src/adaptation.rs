//! The adaptation tendency `Ã(ξ) = Ĉ(ξ) + Â(ξ)` (Eq. 2, first/second/third
//! rows plus the surface-pressure row).
//!
//! The stencil parts (`Â`) are second-order Arakawa-C differences whose
//! reads sit inside the footprints of Table 1 (verified by probe tests in
//! `tests/footprints.rs`).  The z-global parts come in through the `C`
//! diagnostics (`vsum`, `g_w`, `φ'`) computed by [`crate::vertical`] —
//! possibly from an *older* state in the approximate nonlinear iteration
//! (§4.2.2 of the paper), which is why the tendency takes the diagnostics
//! as an explicit argument rather than recomputing them.
//!
//! Standard-stratification approximation: `δ = δ_p = δ_c = 0` (as stated
//! below Eq. 2), so the Φ equation's bracket reduces to `b`.  The Coriolis
//! signs are the energy-neutral pair (`+f*V̄` in the U equation, `−f*Ū` in
//! the V equation); the paper prints `−f*V` and `−f*U`, which cannot both
//! hold for an antisymmetric Coriolis force and is a known typo family in
//! transformed-variable write-ups.

use crate::diag::Diag;
use crate::geometry::{LocalGeometry, Region};
use crate::pool::{self, StateBand};
use crate::state::State;
use agcm_mesh::grid::constants as c;

/// Small sin θ guard: V faces on a pole have `sin θ = 0`; tendencies there
/// are pinned to zero (the wind through the pole is zero).
const SIN_EPS: f64 = 1e-12;

/// Compute the adaptation tendency of `arg` into `tend` on `region`.
///
/// Preconditions:
/// * `arg` halos valid one row/level beyond `region` (x via wrap),
/// * `diag.pes`/`diag.cap_p` updated on `region ⊕ 1` rows,
/// * `diag.dsa`, `diag.dp`, `diag.vsum`, `diag.gw` valid on `region` and
///   `diag.phi_p` on `region ⊕ 1` rows — i.e. [`crate::vertical::apply_c`]
///   has run (for the state the `C` terms should be evaluated at).
///
/// The 3-D sweep runs row-sliced over z-bands of the intra-rank worker pool;
/// every point evaluates the same expression tree as the scalar reference
/// ([`adaptation_tendency_scalar`]), so the result is bit-identical at any
/// `AGCM_THREADS`.
pub fn adaptation_tendency(
    geom: &LocalGeometry,
    arg: &State,
    diag: &Diag,
    tend: &mut State,
    region: Region,
) {
    let (mut bands, nb) = pool::split_state_bands(
        &mut tend.u,
        &mut tend.v,
        &mut tend.phi,
        &region,
        pool::workers_for(
            geom.nx
                * (region.y1 - region.y0).max(0) as usize
                * (region.z1 - region.z0).max(0) as usize,
        ),
    );
    pool::run(&mut bands[..nb], "adaptation.band", |band| {
        adaptation_band(geom, arg, diag, band);
    });

    // ---- p'_sa equation (2-D): p₀·(κ*·D_sa − Σ Δσ D(P)) with κ* = 1 ----
    let nx = geom.nx as isize;
    for j in region.y0..region.y1 {
        let r_dsa = diag.dsa.row(0, nx, j);
        let r_vsum = diag.vsum.row(0, nx, j);
        let out = tend.psa.row_mut(0, nx, j);
        for (o, (&d, &v)) in out.iter_mut().zip(r_dsa.iter().zip(r_vsum)) {
            *o = c::P_REF * (d - v);
        }
    }
}

/// Row-sliced adaptation sweep over one worker band.
///
/// Input rows are fetched once per `(j, k)` at `x ∈ [-1, nx+1)`, so the
/// slice index of logical point `i + d` is `ii + 1 + d`; all per-`(j, k)`
/// geometry is hoisted out of the x loop.
fn adaptation_band(geom: &LocalGeometry, arg: &State, diag: &Diag, band: &mut StateBand<'_>) {
    let StateBand {
        region,
        u: t_u,
        v: t_v,
        phi: t_phi,
    } = band;
    let nx = geom.nx as isize;
    let a = c::EARTH_RADIUS;
    let dl = geom.dlambda();
    let dt = geom.dtheta();
    let b = c::B_GRAVITY_WAVE;
    let two_omega = 2.0 * c::EARTH_OMEGA;

    for k in region.z0..region.z1 {
        for j in region.y0..region.y1 {
            let s_c = geom.sin_c(j);
            let cos_c = geom.cos_c(j);
            let s_v = geom.sin_v(j);
            let cos_v = geom.cos_v(j);
            let sig_lo = geom.sigma_lo(k).clamp(0.0, 1.0);
            let sig_hi = geom.sigma_lo(k + 1).clamp(0.0, 1.0);
            let ds = geom.dsigma(k);

            let r_u = arg.u.row(-1, nx + 1, j, k);
            let r_u_s = arg.u.row(-1, nx + 1, j + 1, k);
            let r_v = arg.v.row(-1, nx + 1, j, k);
            let r_v_n = arg.v.row(-1, nx + 1, j - 1, k);
            let r_phi = arg.phi.row(-1, nx + 1, j, k);
            let r_phi_s = arg.phi.row(-1, nx + 1, j + 1, k);
            let r_pp = diag.phi_p.row(-1, nx + 1, j, k);
            let r_pp_s = diag.phi_p.row(-1, nx + 1, j + 1, k);
            let r_gw_lo = diag.gw.row(-1, nx + 1, j, k);
            let r_gw_hi = diag.gw.row(-1, nx + 1, j, k + 1);
            let r_dp = diag.dp.row(-1, nx + 1, j, k);
            let r_cp = diag.cap_p.row(-1, nx + 1, j);
            let r_cp_s = diag.cap_p.row(-1, nx + 1, j + 1);
            let r_pes = diag.pes.row(-1, nx + 1, j);
            let r_pes_n = diag.pes.row(-1, nx + 1, j - 1);
            let r_pes_s = diag.pes.row(-1, nx + 1, j + 1);

            let o_u = t_u.row_mut(0, nx, j, k);
            // ---- U equation at U point (i-1/2, j, k) ----
            for (ii, o) in o_u.iter_mut().enumerate() {
                let q = ii + 1;
                let p_u = 0.5 * (r_cp[q - 1] + r_cp[q]);
                let pes_u = 0.5 * (r_pes[q - 1] + r_pes[q]);
                let phi_u = 0.5 * (r_phi[q - 1] + r_phi[q]);
                let p_l1 = p_u * (r_pp[q] - r_pp[q - 1]) / (a * s_c * dl);
                let p_l2 = b * phi_u / pes_u * (r_pes[q] - r_pes[q - 1]) / (a * s_c * dl);
                let u_phys = r_u[q] / p_u;
                let fstar = two_omega * cos_c + u_phys * cos_c / (s_c * a);
                let v_bar = 0.25 * (r_v[q - 1] + r_v[q] + r_v_n[q - 1] + r_v_n[q]);
                *o = -p_l1 - p_l2 + fstar * v_bar;
            }

            // ---- V equation at V point (i, j+1/2, k) ----
            let o_v = t_v.row_mut(0, nx, j, k);
            if s_v < SIN_EPS {
                o_v.fill(0.0); // pole face: V pinned
            } else {
                for (ii, o) in o_v.iter_mut().enumerate() {
                    let q = ii + 1;
                    let p_v = 0.5 * (r_cp[q] + r_cp_s[q]);
                    let pes_v = 0.5 * (r_pes[q] + r_pes_s[q]);
                    let phi_v = 0.5 * (r_phi[q] + r_phi_s[q]);
                    let p_t1 = p_v * (r_pp_s[q] - r_pp[q]) / (a * dt);
                    let p_t2 = b * phi_v / pes_v * (r_pes_s[q] - r_pes[q]) / (a * dt);
                    let u_bar = 0.25 * (r_u[q] + r_u[q + 1] + r_u_s[q] + r_u_s[q + 1]);
                    let u_phys = u_bar / p_v;
                    let fstar = two_omega * cos_v + u_phys * cos_v / (s_v * a);
                    *o = -p_t1 - p_t2 - fstar * u_bar;
                }
            }

            // ---- Φ equation at cell centre (i, j, k) ----
            let o_phi = t_phi.row_mut(0, nx, j, k);
            for (ii, o) in o_phi.iter_mut().enumerate() {
                let q = ii + 1;
                let p = r_cp[q];
                let pes = r_pes[q];
                let gw_lo = r_gw_lo[q];
                let gw_hi = r_gw_hi[q];
                let gw_c = 0.5 * (gw_lo + gw_hi);
                let dpw_dsig = (gw_hi * sig_hi - gw_lo * sig_lo) / ds;
                let omega1 = (gw_c - r_dp[q] - dpw_dsig) / p;
                let v_c = 0.5 * (r_v[q] + r_v_n[q]);
                let omega_t2 = v_c / pes * (r_pes_s[q] - r_pes_n[q]) / (2.0 * a * dt);
                let u_c = 0.5 * (r_u[q] + r_u[q + 1]);
                let omega_l2 = u_c / pes * (r_pes[q + 1] - r_pes[q - 1]) / (2.0 * a * s_c * dl);
                *o = b * (omega1 + omega_t2 + omega_l2);
            }
        }
    }
}

/// Scalar per-point reference implementation (the pre-row-API kernel),
/// retained verbatim as the golden reference for the bitwise-equivalence
/// property tests.
#[cfg(any(test, feature = "scalar-ref"))]
pub fn adaptation_tendency_scalar(
    geom: &LocalGeometry,
    arg: &State,
    diag: &Diag,
    tend: &mut State,
    region: Region,
) {
    let nx = geom.nx as isize;
    let a = c::EARTH_RADIUS;
    let dl = geom.dlambda();
    let dt = geom.dtheta();
    let b = c::B_GRAVITY_WAVE;
    let two_omega = 2.0 * c::EARTH_OMEGA;

    for k in region.z0..region.z1 {
        for j in region.y0..region.y1 {
            let s_c = geom.sin_c(j);
            let cos_c = geom.cos_c(j);
            let s_v = geom.sin_v(j);
            let cos_v = geom.cos_v(j);
            let sig_lo = geom.sigma_lo(k).clamp(0.0, 1.0);
            let sig_hi = geom.sigma_lo(k + 1).clamp(0.0, 1.0);
            let ds = geom.dsigma(k);
            for i in 0..nx {
                // ---- U equation at U point (i-1/2, j, k) ----
                {
                    let p_u = 0.5 * (diag.cap_p.get(i - 1, j) + diag.cap_p.get(i, j));
                    let pes_u = 0.5 * (diag.pes.get(i - 1, j) + diag.pes.get(i, j));
                    let phi_u = 0.5 * (arg.phi.get(i - 1, j, k) + arg.phi.get(i, j, k));
                    let p_l1 = p_u * (diag.phi_p.get(i, j, k) - diag.phi_p.get(i - 1, j, k))
                        / (a * s_c * dl);
                    let p_l2 = b * phi_u / pes_u * (diag.pes.get(i, j) - diag.pes.get(i - 1, j))
                        / (a * s_c * dl);
                    let u_phys = arg.u.get(i, j, k) / p_u;
                    let fstar = two_omega * cos_c + u_phys * cos_c / (s_c * a);
                    let v_bar = 0.25
                        * (arg.v.get(i - 1, j, k)
                            + arg.v.get(i, j, k)
                            + arg.v.get(i - 1, j - 1, k)
                            + arg.v.get(i, j - 1, k));
                    tend.u.set(i, j, k, -p_l1 - p_l2 + fstar * v_bar);
                }
                // ---- V equation at V point (i, j+1/2, k) ----
                {
                    if s_v < SIN_EPS {
                        tend.v.set(i, j, k, 0.0); // pole face: V pinned
                    } else {
                        let p_v = 0.5 * (diag.cap_p.get(i, j) + diag.cap_p.get(i, j + 1));
                        let pes_v = 0.5 * (diag.pes.get(i, j) + diag.pes.get(i, j + 1));
                        let phi_v = 0.5 * (arg.phi.get(i, j, k) + arg.phi.get(i, j + 1, k));
                        let p_t1 = p_v * (diag.phi_p.get(i, j + 1, k) - diag.phi_p.get(i, j, k))
                            / (a * dt);
                        let p_t2 = b * phi_v / pes_v
                            * (diag.pes.get(i, j + 1) - diag.pes.get(i, j))
                            / (a * dt);
                        let u_bar = 0.25
                            * (arg.u.get(i, j, k)
                                + arg.u.get(i + 1, j, k)
                                + arg.u.get(i, j + 1, k)
                                + arg.u.get(i + 1, j + 1, k));
                        let u_phys = u_bar / p_v;
                        let fstar = two_omega * cos_v + u_phys * cos_v / (s_v * a);
                        tend.v.set(i, j, k, -p_t1 - p_t2 - fstar * u_bar);
                    }
                }
                // ---- Φ equation at cell centre (i, j, k) ----
                {
                    let p = diag.cap_p.get(i, j);
                    let pes = diag.pes.get(i, j);
                    let gw_lo = diag.gw.get(i, j, k);
                    let gw_hi = diag.gw.get(i, j, k + 1);
                    let gw_c = 0.5 * (gw_lo + gw_hi);
                    let dpw_dsig = (gw_hi * sig_hi - gw_lo * sig_lo) / ds;
                    let omega1 = (gw_c - diag.dp.get(i, j, k) - dpw_dsig) / p;
                    let v_c = 0.5 * (arg.v.get(i, j, k) + arg.v.get(i, j - 1, k));
                    let omega_t2 = v_c / pes * (diag.pes.get(i, j + 1) - diag.pes.get(i, j - 1))
                        / (2.0 * a * dt);
                    let u_c = 0.5 * (arg.u.get(i, j, k) + arg.u.get(i + 1, j, k));
                    let omega_l2 = u_c / pes * (diag.pes.get(i + 1, j) - diag.pes.get(i - 1, j))
                        / (2.0 * a * s_c * dl);
                    tend.phi.set(i, j, k, b * (omega1 + omega_t2 + omega_l2));
                }
            }
        }
    }

    // ---- p'_sa equation (2-D): p₀·(κ*·D_sa − Σ Δσ D(P)) with κ* = 1 ----
    for j in region.y0..region.y1 {
        for i in 0..nx {
            tend.psa
                .set(i, j, c::P_REF * (diag.dsa.get(i, j) - diag.vsum.get(i, j)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary;
    use crate::config::ModelConfig;
    use crate::stdatm::StandardAtmosphere;
    use crate::vertical::{apply_c, ZContext};
    use agcm_mesh::{Decomposition, HaloWidths, ProcessGrid};
    use std::sync::Arc;

    struct Setup {
        geom: LocalGeometry,
        sa: StandardAtmosphere,
        state: State,
        diag: Diag,
    }

    fn setup() -> Setup {
        let cfg = ModelConfig::test_small();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
        let geom = LocalGeometry::new(&cfg, Arc::clone(&grid), &d, 0, HaloWidths::uniform(3));
        let sa = StandardAtmosphere::new(&grid);
        let state = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
        let diag = Diag::new(&geom);
        Setup {
            geom,
            sa,
            state,
            diag,
        }
    }

    fn run_tendency(s: &mut Setup) -> State {
        boundary::enforce_pole_v(&mut s.state, &s.geom);
        boundary::fill_boundaries(&mut s.state, &s.geom);
        let region = s.geom.interior();
        s.diag
            .update_surface(&s.geom, &s.sa, &s.state, region.y0 - 1, region.y1 + 1);
        apply_c(
            &s.geom,
            &s.sa,
            &s.state,
            &mut s.diag,
            region,
            &ZContext::Serial,
            true,
        )
        .unwrap();
        let mut tend = State::like(&s.state);
        adaptation_tendency(&s.geom, &s.state, &s.diag, &mut tend, region);
        tend
    }

    #[test]
    fn rest_state_is_stationary() {
        let mut s = setup();
        let tend = run_tendency(&mut s);
        assert_eq!(tend.max_abs(), 0.0, "rest atmosphere must not accelerate");
    }

    #[test]
    fn pressure_high_accelerates_outflow() {
        // positive p'_sa bump → pes gradient pushes U away from the bump
        let mut s = setup();
        let (ic, jc) = (8isize, 5isize);
        s.state.psa.set(ic, jc, 500.0);
        let tend = run_tendency(&mut s);
        // U point east of the bump (i = ic+1 reads pes at ic, ic+1):
        // pressure decreases eastward → force eastward (positive U tendency
        // from -P_λ² with Φ = 0? P_λ² ∝ Φ = 0... the φ' surface term drives)
        // φ'_s > 0 at the bump → -P_λ¹ pushes away from the bump:
        assert!(
            tend.u.get(ic + 1, jc, s.geom.nz as isize - 1) > 0.0,
            "eastward acceleration east of a high"
        );
        assert!(
            tend.u.get(ic, jc, s.geom.nz as isize - 1) < 0.0,
            "westward acceleration west of a high"
        );
        // mass flows away: vsum initially 0 (no wind) so psa tendency is
        // only diffusion, which is negative at the bump
        assert!(tend.psa.get(ic, jc) < 0.0);
    }

    #[test]
    fn coriolis_turns_zonal_flow() {
        // uniform eastward U in the northern hemisphere: tendency on V must
        // be negative (−f*Ū with f* > 0 north of the equator)
        let mut s = setup();
        for k in 0..s.geom.nz as isize {
            for j in 0..s.geom.ny as isize {
                for i in 0..s.geom.nx as isize {
                    s.state.u.set(i, j, k, 10.0);
                }
            }
        }
        let tend = run_tendency(&mut s);
        let jn = 2isize; // northern hemisphere row
        assert!(s.geom.cos_c(jn) > 0.0);
        assert!(tend.v.get(3, jn, 1) < 0.0, "northern: V pushed equatorward");
        let js = s.geom.ny as isize - 3; // southern hemisphere (cos < 0)
        assert!(tend.v.get(3, js, 1) > 0.0, "southern: mirrored");
    }

    #[test]
    fn divergent_wind_lowers_surface_pressure() {
        // uniform divergence from a U ramp: vsum > 0 → psa tendency < 0
        let mut s = setup();
        let nx = s.geom.nx as isize;
        for k in 0..s.geom.nz as isize {
            for j in 0..s.geom.ny as isize {
                for i in 0..nx {
                    // sawtooth creating divergence at i where U jumps up
                    s.state.u.set(
                        i,
                        j,
                        k,
                        if i == 5 {
                            -10.0
                        } else if i == 6 {
                            10.0
                        } else {
                            0.0
                        },
                    );
                }
            }
        }
        let tend = run_tendency(&mut s);
        // divergence at i = 5 (U_east = +10 at face 6, U_west = −10 at face 5)
        assert!(s.diag.vsum.get(5, 4) > 0.0);
        assert!(tend.psa.get(5, 4) < 0.0, "mass leaves the divergent column");
    }

    #[test]
    fn pole_faces_have_zero_v_tendency() {
        let mut s = setup();
        s.state.psa.set(3, s.geom.ny as isize - 1, 300.0);
        let tend = run_tendency(&mut s);
        let jp = s.geom.ny as isize - 1; // south pole face row
        for i in 0..s.geom.nx as isize {
            assert_eq!(tend.v.get(i, jp, 0), 0.0);
        }
    }

    #[test]
    fn adaptation_energy_neutral_linear_terms() {
        // For the linearized system (small amplitudes), the pressure-
        // gradient + divergence coupling conserves Σ (U² + V² + Φ² + b²/…)·w
        // to first order: check that a forward-Euler step changes the
        // quadratic energy only at O(Δt²) — i.e. E(t+Δt) − E(t) scales like
        // Δt² when the tendency is energy-neutral.
        let mut s = setup();
        for k in 0..s.geom.nz as isize {
            for j in 0..s.geom.ny as isize {
                for i in 0..s.geom.nx as isize {
                    let x = i as f64 / s.geom.nx as f64 * std::f64::consts::TAU;
                    s.state.phi.set(i, j, k, 5.0 * (2.0 * x).sin());
                }
            }
        }
        let tend = run_tendency(&mut s);
        let energy = |st: &State, geom: &LocalGeometry| {
            let mut e = 0.0;
            for k in 0..geom.nz as isize {
                for j in 0..geom.ny as isize {
                    let w = geom.sin_c(j) * geom.dsigma(k);
                    for i in 0..geom.nx as isize {
                        e += w
                            * (st.u.get(i, j, k).powi(2)
                                + st.v.get(i, j, k).powi(2)
                                + st.phi.get(i, j, k).powi(2));
                    }
                }
            }
            e
        };
        let e0 = energy(&s.state, &s.geom);
        for &dt in &[1.0f64, 0.5] {
            let mut next = State::like(&s.state);
            next.lincomb(&s.state, dt, &tend);
            let e1 = energy(&next, &s.geom);
            // relative drift small and shrinking ~quadratically with dt
            let drift = (e1 - e0).abs() / e0;
            assert!(drift < 0.05, "dt={dt}: drift {drift}");
        }
    }
}
