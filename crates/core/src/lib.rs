//! # agcm-core — the communication-avoiding AGCM dynamical core
//!
//! From-scratch reproduction of the dynamical core and the
//! communication-avoiding algorithm of Xiao et al., "Communication-Avoiding
//! for Dynamical Core of Atmospheric General Circulation Model"
//! (ICPP 2018).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod access;
pub mod adaptation;
pub mod advection;
pub mod analysis;
pub mod boundary;
pub mod config;
pub mod diag;
pub mod diagnostics;
pub mod dycore;
pub mod error;
pub mod filterop;
pub mod forcing;
pub mod geometry;
#[cfg(test)]
mod golden;
pub mod init;
pub mod par;
pub mod pool;
pub mod resilience;
pub mod serial;
pub mod smoothing;
pub mod state;
pub mod stdatm;
pub mod tables;
pub mod vertical;

pub use config::ModelConfig;
pub use geometry::{LocalGeometry, Region};
pub use resilience::{
    read_checkpoint, write_checkpoint, Checkpoint, CheckpointRing, ResilienceConfig,
    ResilienceError, Resilient, ResilientRunner, RunReport,
};
pub use state::State;
