//! Golden bitwise-equivalence property tests.
//!
//! Every row-sliced kernel is pinned to its scalar reference
//! (`*_scalar`, kept under `cfg(test)`/the `scalar-ref` feature) across
//! randomized states, diagnostics, regions, halo widths and worker counts.
//! Equality is `f64::to_bits` — the vectorized paths must be *bit*-identical,
//! not merely close, because the paper's correctness statement (parallel CA
//! ≡ serial approximate) is itself bitwise.

use crate::adaptation::{adaptation_tendency, adaptation_tendency_scalar};
use crate::advection::{advection_tendency, advection_tendency_scalar};
use crate::config::ModelConfig;
use crate::diag::Diag;
use crate::geometry::{LocalGeometry, Region};
use crate::pool;
use crate::smoothing::{smooth_rows, smooth_rows_scalar, RowMask};
use crate::state::State;
use crate::stdatm::StandardAtmosphere;
use crate::vertical::{apply_c, apply_c_scalar, ZContext};
use agcm_mesh::{Decomposition, Field2, Field3, HaloWidths, ProcessGrid};
use std::sync::Arc;

fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// uniform in [-1, 1)
fn rand_sym(s: &mut u64) -> f64 {
    (splitmix64(s) >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

/// uniform in [0.5, 1.5) — for fields the kernels divide by
fn rand_pos(s: &mut u64) -> f64 {
    0.5 + (splitmix64(s) >> 12) as f64 / (1u64 << 52) as f64
}

fn geom_with_halo(h: usize) -> LocalGeometry {
    let cfg = ModelConfig::test_small();
    let grid = Arc::new(cfg.grid().unwrap());
    let d = Decomposition::new(cfg.extents(), ProcessGrid::serial()).unwrap();
    LocalGeometry::new(&cfg, grid, &d, 0, HaloWidths::uniform(h))
}

fn fill3(f: &mut Field3, s: &mut u64) {
    for v in f.raw_mut() {
        *v = rand_sym(s);
    }
}

fn fill2(f: &mut Field2, s: &mut u64) {
    for v in f.raw_mut() {
        *v = rand_sym(s);
    }
}

fn fill2_pos(f: &mut Field2, s: &mut u64) {
    for v in f.raw_mut() {
        *v = rand_pos(s);
    }
}

/// every point including halos gets a random value — halo reads of the
/// kernels then exercise arbitrary data, not just boundary-filled patterns
fn random_state(geom: &LocalGeometry, seed: u64) -> State {
    let mut s = seed;
    let mut st = State::new(geom.nx, geom.ny, geom.nz, geom.halo);
    fill3(&mut st.u, &mut s);
    fill3(&mut st.v, &mut s);
    fill3(&mut st.phi, &mut s);
    fill2(&mut st.psa, &mut s);
    st
}

fn random_diag(geom: &LocalGeometry, seed: u64) -> Diag {
    let mut s = seed;
    let mut d = Diag::new(geom);
    fill2_pos(&mut d.pes, &mut s); // divided by: keep positive
    fill2_pos(&mut d.cap_p, &mut s); // divided by: keep positive
    fill2(&mut d.dsa, &mut s);
    fill3(&mut d.dp, &mut s);
    fill2(&mut d.vsum, &mut s);
    fill3(&mut d.gw, &mut s);
    fill3(&mut d.phi_p, &mut s);
    d
}

/// random subregion of the interior, at least one row/level thick
fn random_region(geom: &LocalGeometry, s: &mut u64) -> Region {
    let (ny, nz) = (geom.ny as isize, geom.nz as isize);
    let y0 = (splitmix64(s) % 3) as isize;
    let y1 = (ny - (splitmix64(s) % 3) as isize).max(y0 + 1);
    let z0 = (splitmix64(s) % 2) as isize;
    let z1 = (nz - (splitmix64(s) % 2) as isize).max(z0 + 1);
    Region { y0, y1, z0, z1 }
}

fn assert_bits3(a: &Field3, b: &Field3, what: &str) {
    for (i, (x, y)) in a.raw().iter().zip(b.raw()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: raw index {i}");
    }
}

fn assert_bits2(a: &Field2, b: &Field2, what: &str) {
    for (i, (x, y)) in a.raw().iter().zip(b.raw()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: raw index {i}");
    }
}

fn assert_state_bits(a: &State, b: &State, what: &str) {
    assert_bits3(&a.u, &b.u, what);
    assert_bits3(&a.v, &b.v, what);
    assert_bits3(&a.phi, &b.phi, what);
    assert_bits2(&a.psa, &b.psa, what);
}

const HALOS: [usize; 2] = [2, 3];
const THREADS: [usize; 3] = [1, 2, 4];
const SEEDS: [u64; 3] = [7, 1234, 0xDEADBEEF];

#[test]
fn adaptation_row_kernel_matches_scalar_bitwise() {
    for h in HALOS {
        let geom = geom_with_halo(h);
        for seed in SEEDS {
            let mut s = seed;
            let arg = random_state(&geom, splitmix64(&mut s));
            let diag = random_diag(&geom, splitmix64(&mut s));
            let region = random_region(&geom, &mut s);
            let init = random_state(&geom, splitmix64(&mut s));
            let mut want = init.clone();
            adaptation_tendency_scalar(&geom, &arg, &diag, &mut want, region);
            for nt in THREADS {
                let mut got = init.clone();
                pool::with_workers(nt, || {
                    adaptation_tendency(&geom, &arg, &diag, &mut got, region)
                });
                assert_state_bits(
                    &got,
                    &want,
                    &format!("adaptation h={h} nt={nt} seed={seed}"),
                );
            }
        }
    }
}

#[test]
fn advection_row_kernel_matches_scalar_bitwise() {
    for h in HALOS {
        let geom = geom_with_halo(h);
        for seed in SEEDS {
            let mut s = seed.wrapping_mul(3);
            let arg = random_state(&geom, splitmix64(&mut s));
            let diag = random_diag(&geom, splitmix64(&mut s));
            let region = random_region(&geom, &mut s);
            let init = random_state(&geom, splitmix64(&mut s));
            let mut want = init.clone();
            advection_tendency_scalar(&geom, &arg, &diag, &mut want, region);
            for nt in THREADS {
                let mut got = init.clone();
                pool::with_workers(nt, || {
                    advection_tendency(&geom, &arg, &diag, &mut got, region)
                });
                assert_state_bits(&got, &want, &format!("advection h={h} nt={nt} seed={seed}"));
            }
        }
    }
}

#[test]
fn smoothing_row_kernel_matches_scalar_bitwise() {
    let masks = [
        RowMask::FULL,
        RowMask::L,
        RowMask::L_PRIME,
        RowMask::R,
        RowMask::R_PRIME,
    ];
    for h in HALOS {
        let geom = geom_with_halo(h);
        for seed in SEEDS {
            for (mi, &mask) in masks.iter().enumerate() {
                for add in [false, true] {
                    let mut s = seed.wrapping_add(mi as u64) ^ u64::from(add);
                    let src = random_state(&geom, splitmix64(&mut s));
                    let region = random_region(&geom, &mut s);
                    let init = random_state(&geom, splitmix64(&mut s));
                    let mut want = init.clone();
                    smooth_rows_scalar(&geom, 0.1, &src, &mut want, region, mask, add);
                    for nt in THREADS {
                        let mut got = init.clone();
                        pool::with_workers(nt, || {
                            smooth_rows(&geom, 0.1, &src, &mut got, region, mask, add)
                        });
                        assert_state_bits(
                            &got,
                            &want,
                            &format!("smoothing h={h} nt={nt} mask={mi} add={add} seed={seed}"),
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn apply_c_row_kernel_matches_scalar_bitwise() {
    for h in HALOS {
        let geom = geom_with_halo(h);
        let stdatm = StandardAtmosphere::new(&geom.grid);
        for seed in SEEDS {
            let mut s = seed.wrapping_mul(17);
            let dseed = splitmix64(&mut s);
            let arg = random_state(&geom, splitmix64(&mut s));
            let region = random_region(&geom, &mut s);
            let mut want = random_diag(&geom, dseed);
            apply_c_scalar(
                &geom,
                &stdatm,
                &arg,
                &mut want,
                region,
                &ZContext::Serial,
                true,
            )
            .unwrap();
            // apply_c is not banded, but still honor the worker-count sweep
            // so a future banding of C stays pinned
            for nt in THREADS {
                let mut got = random_diag(&geom, dseed);
                pool::with_workers(nt, || {
                    apply_c(
                        &geom,
                        &stdatm,
                        &arg,
                        &mut got,
                        region,
                        &ZContext::Serial,
                        true,
                    )
                })
                .unwrap();
                let what = format!("apply_c h={h} nt={nt} seed={seed}");
                assert_bits3(&got.dp, &want.dp, &what);
                assert_bits2(&got.vsum, &want.vsum, &what);
                assert_bits3(&got.gw, &want.gw, &what);
                assert_bits3(&got.phi_p, &want.phi_p, &what);
                assert_bits2(&got.dsa, &want.dsa, &what);
            }
        }
    }
}
