//! The serial reference integrator — Algorithm 1 on a single rank.
//!
//! This is the ground truth every parallel configuration is checked
//! against.  Two variants exist:
//!
//! * `exact` — Algorithm 1 verbatim: every sub-update runs the operator `C`
//!   fresh (3 per nonlinear iteration),
//! * `approximate` — the nonlinear iteration of Eq. 13: the *first*
//!   sub-update of each iteration reuses the most recent `C` outputs
//!   (2 fresh `C` per iteration).  The communication-avoiding Algorithm 2
//!   computes exactly this variant, so "parallel CA ≡ serial approximate"
//!   is the correctness statement tested in `tests/equivalence.rs`.

use crate::config::ModelConfig;
use crate::dycore::{Engine, FilterCtx};
use crate::geometry::LocalGeometry;
use crate::smoothing::smooth_full;
use crate::state::State;
use crate::tables;
use crate::vertical::ZContext;
use agcm_mesh::{Decomposition, HaloWidths, MeshError, ProcessGrid};
use std::sync::Arc;

/// Which nonlinear iteration the adaptation process uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Iteration {
    /// Algorithm 1: 3 `C` executions per iteration.
    Exact,
    /// Eq. 13: first sub-update reuses the cached `C` (2 executions).
    Approximate,
}

/// Serial (single-rank) dynamical core.
pub struct SerialModel {
    /// The integration engine.
    pub engine: Engine,
    /// Current prognostic state `ξ^{(k)}`.
    pub state: State,
    /// Iteration variant.
    pub variant: Iteration,
    /// Completed steps.
    pub steps: usize,
    // scratch
    psi: State,
    base: State,
    eta1: State,
    eta2: State,
    mid: State,
    tend: State,
    smoothed: State,
}

impl SerialModel {
    /// Create a serial model at rest.
    pub fn new(cfg: &ModelConfig, variant: Iteration) -> Result<Self, MeshError> {
        let grid = Arc::new(cfg.grid()?);
        let decomp = Decomposition::new(cfg.extents(), ProcessGrid::serial())?;
        // the per-sweep union halo is enough: serial fills all halos locally
        let halo = HaloWidths::for_footprint(&tables::per_sweep_union());
        let geom = LocalGeometry::new(cfg, grid, &decomp, 0, halo);
        let engine = Engine::new(cfg, geom, true);
        let state = State::new(engine.geom.nx, engine.geom.ny, engine.geom.nz, halo);
        let scratch = || State::like(&state);
        Ok(SerialModel {
            psi: scratch(),
            base: scratch(),
            eta1: scratch(),
            eta2: scratch(),
            mid: scratch(),
            tend: scratch(),
            smoothed: scratch(),
            engine,
            state,
            variant,
            steps: 0,
        })
    }

    /// Replace the state (e.g. with an initial condition from
    /// [`crate::init`]).
    pub fn set_state(&mut self, st: &State) {
        self.state.assign(st);
        self.engine.c_cached = false;
    }

    /// Degraded mode forces the exact iteration (fresh `C` in every
    /// sub-update) until cleared.
    pub fn set_degraded(&mut self, on: bool) {
        if on {
            self.variant = Iteration::Exact;
            self.engine.c_cached = false;
        }
    }

    /// Snapshot the restart state, including the cached `C` outputs the
    /// approximate iteration reuses across steps (Eq. 13).
    pub fn capture(&self) -> crate::resilience::Checkpoint {
        crate::resilience::Checkpoint {
            step: self.steps as u64,
            state: self.state.clone(),
            vsum: Some(self.engine.diag.vsum.clone()),
            gw: Some(self.engine.diag.gw.clone()),
            phi_p: Some(self.engine.diag.phi_p.clone()),
            c_cached: self.engine.c_cached,
            pending_smooth: false,
        }
    }

    /// Restore a [`Self::capture`]d snapshot bit-for-bit.
    pub fn restore(&mut self, ck: &crate::resilience::Checkpoint) {
        self.steps = ck.step as usize;
        self.state.clone_from(&ck.state);
        if let (Some(vsum), Some(gw), Some(phi_p)) = (&ck.vsum, &ck.gw, &ck.phi_p) {
            self.engine.diag.vsum.clone_from(vsum);
            self.engine.diag.gw.clone_from(gw);
            self.engine.diag.phi_p.clone_from(phi_p);
            self.engine.c_cached = ck.c_cached;
        } else {
            self.engine.c_cached = false;
        }
    }

    /// Advance one full time step (Algorithm 1 body).
    pub fn step(&mut self) {
        agcm_obs::set_step(self.steps as u64);
        let _step = agcm_obs::span(agcm_obs::SpanKind::Step, "serial.step");
        let region = self.engine.geom.interior();
        let zctx = ZContext::Serial;
        let fctx = FilterCtx::Local;
        let dt1 = self.engine.cfg.dt1;
        let dt2 = self.engine.cfg.dt2;
        let m = self.engine.cfg.m_iters;

        // ψ⁰ = ξ^{(k-1)}
        self.psi.assign(&self.state);

        // ---- adaptation: M nonlinear iterations of 3 sub-updates --------
        for _ in 0..m {
            let _iter = agcm_obs::span(agcm_obs::SpanKind::Iter, "adaptation.iter");
            // first sub-update: exact → fresh C; approximate → cached C
            // (bootstrap: the very first sub-update ever has no cache yet)
            let fresh1 = match self.variant {
                Iteration::Exact => true,
                Iteration::Approximate => !self.engine.c_cached,
            };
            self.eta1.assign(&self.psi);
            // persistent scratch instead of a per-iteration clone: halos
            // matter (subupdates read base through lincomb only on `region`,
            // but copy_from carries them anyway, matching the old clone)
            self.base.copy_from(&self.psi);
            self.engine
                .adaptation_subupdate(
                    &self.base,
                    &mut self.psi,
                    &mut self.eta1,
                    &mut self.tend,
                    region,
                    dt1,
                    fresh1,
                    &zctx,
                    &fctx,
                )
                .expect("serial subupdate cannot fail");
            self.engine
                .adaptation_subupdate(
                    &self.base,
                    &mut self.eta1,
                    &mut self.eta2,
                    &mut self.tend,
                    region,
                    dt1,
                    true,
                    &zctx,
                    &fctx,
                )
                .expect("serial subupdate cannot fail");
            self.mid.midpoint_on(&self.base, &self.eta2, &region);
            // η₃ lands directly in eta1 (the old mem::replace placeholder
            // was never read, and eta1's out-of-region content is what the
            // swapped-out η₃ buffer held — bitwise the same result)
            self.engine
                .adaptation_subupdate(
                    &self.base,
                    &mut self.mid,
                    &mut self.eta1,
                    &mut self.tend,
                    region,
                    dt1,
                    true,
                    &zctx,
                    &fctx,
                )
                .expect("serial subupdate cannot fail");
            self.psi.assign(&self.eta1);
        }

        // ---- advection: one nonlinear iteration with Δt₂ ----------------
        self.base.copy_from(&self.psi);
        self.engine
            .advection_subupdate(
                &self.base,
                &mut self.psi,
                &mut self.eta1,
                &mut self.tend,
                region,
                dt2,
                &fctx,
            )
            .expect("serial subupdate cannot fail");
        self.engine
            .advection_subupdate(
                &self.base,
                &mut self.eta1,
                &mut self.eta2,
                &mut self.tend,
                region,
                dt2,
                &fctx,
            )
            .expect("serial subupdate cannot fail");
        self.mid.midpoint_on(&self.base, &self.eta2, &region);
        self.engine
            .advection_subupdate(
                &self.base,
                &mut self.mid,
                &mut self.eta1,
                &mut self.tend,
                region,
                dt2,
                &fctx,
            )
            .expect("serial subupdate cannot fail");

        // ---- physics (H-S) then smoothing ξ^{(k)} = S̃(ζ₃) ---------------
        self.engine.apply_forcing(&mut self.eta1, region);
        {
            let _s =
                agcm_obs::span_phase(agcm_obs::SpanKind::Op, agcm_obs::Phase::S1, "smooth.full");
            self.engine.fill(&mut self.eta1);
            smooth_full(
                &self.engine.geom,
                self.engine.cfg.smooth_beta,
                &self.eta1,
                &mut self.smoothed,
                region,
            );
        }
        self.state.assign(&self.smoothed);
        self.steps += 1;
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Local geometry (for building initial conditions).
    pub fn geom(&self) -> &LocalGeometry {
        &self.engine.geom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;

    fn model(variant: Iteration) -> SerialModel {
        let cfg = ModelConfig::test_small();
        SerialModel::new(&cfg, variant).unwrap()
    }

    #[test]
    fn rest_stays_at_rest() {
        let mut m = model(Iteration::Exact);
        m.run(3);
        assert_eq!(m.state.max_abs(), 0.0);
        assert_eq!(m.steps, 3);
    }

    #[test]
    fn perturbation_evolves_and_stays_finite() {
        let mut m = model(Iteration::Exact);
        let ic = init::perturbed_rest(m.geom(), 200.0, 0.0, 1);
        m.set_state(&ic);
        m.run(5);
        assert!(!m.state.has_nan(), "solution blew up");
        assert!(m.state.max_abs() > 0.0);
        // the pressure bump radiates gravity waves: winds appear
        assert!(m.state.u.max_abs() > 1e-6);
        assert!(m.state.v.max_abs() > 1e-6);
        // amplitudes remain bounded (filter + smoothing keep it stable)
        assert!(m.state.psa.max_abs() < 1000.0);
    }

    #[test]
    fn approximate_close_to_exact_at_small_dt() {
        // Eq. 13 modifies only the highest-order correction: one step of
        // the two variants must agree to O(Δt²)-ish
        let cfg = {
            let mut c = ModelConfig::test_small();
            c.dt1 = 5.0;
            c
        };
        let mut me = SerialModel::new(&cfg, Iteration::Exact).unwrap();
        let mut ma = SerialModel::new(&cfg, Iteration::Approximate).unwrap();
        let ic = init::perturbed_rest(me.geom(), 200.0, 0.5, 2);
        me.set_state(&ic);
        ma.set_state(&ic);
        me.run(2);
        ma.run(2);
        let diff = me.state.max_abs_diff(&ma.state);
        let scale = me.state.max_abs().max(1.0);
        assert!(diff > 0.0, "variants must actually differ");
        assert!(
            diff / scale < 0.02,
            "approximate iteration drifted too far: {diff} vs scale {scale}"
        );
    }

    #[test]
    fn forcing_spins_up_circulation_from_rest() {
        let mut cfg = ModelConfig::test_small();
        cfg.held_suarez = true;
        let mut m = SerialModel::new(&cfg, Iteration::Exact).unwrap();
        m.run(3);
        // H-S heating creates an equator-pole Φ gradient → winds spin up
        assert!(m.state.phi.max_abs() > 0.0, "thermal forcing acted");
        assert!(!m.state.has_nan());
    }

    #[test]
    fn mass_approximately_conserved_without_forcing() {
        let mut m = model(Iteration::Exact);
        let ic = init::perturbed_rest(m.geom(), 150.0, 0.0, 9);
        m.set_state(&ic);
        let mass = |st: &State, g: &LocalGeometry| {
            let mut t = 0.0;
            for j in 0..g.ny as isize {
                let w = g.sin_c(j);
                for i in 0..g.nx as isize {
                    t += w * st.psa.get(i, j);
                }
            }
            t
        };
        let m0 = mass(&m.state, m.geom());
        m.run(4);
        let m1 = mass(&m.state, m.geom());
        // flux-form D(P) conserves ∫p'_sa up to the smoothing/filter and
        // D_sa diffusion, all of which preserve the weighted mean closely
        let scale = 150.0 * (m.geom().nx * m.geom().ny) as f64;
        assert!((m1 - m0).abs() / scale < 1e-3, "mass drift {m0} -> {m1}");
    }
}
