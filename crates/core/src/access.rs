//! Machine-checkable access declarations for every hot kernel.
//!
//! The paper's Tables 1–3 state, per operator term, which mesh-point
//! offsets the update of `(i, j, k)` reads.  [`crate::tables`] keeps those
//! printed rows as data; this module states the same contract at the level
//! the certification pass needs: **per kernel, per field**, as read/write
//! offset *boxes* in `(x, y, z)` — an [`AccessSpec`] per hot kernel
//! (adaptation, advection, S1/S2 smoothing, the vertical-sum operator `C`,
//! and the Fourier filter).
//!
//! Three consumers keep the declarations honest:
//!
//! * `agcm-verify`'s dataflow pass composes these boxes over the per-step
//!   operation list ([`crate::par::schedule`]) and proves every read is
//!   covered by the preceding exchange's halo depth,
//! * the registry self-tests below assert each kernel's union equals the
//!   corresponding Tables 1–3 union from [`crate::tables`], so the
//!   field-level refinement can never drift from the paper's footprints,
//! * `agcm-mesh`'s access sanitizer (feature `access-sanitizer`) diffs the
//!   index ranges a kernel *actually* touches at runtime against the box
//!   declared here.

use agcm_mesh::Axis;

/// A per-field offset box: how many layers beyond the evaluation region the
/// kernel may touch on each side of each axis (all extents are ≥ 0; e.g.
/// `xm = 3` means offsets down to `i − 3` may be read).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetBox {
    /// Layers on the negative x side.
    pub xm: u32,
    /// Layers on the positive x side.
    pub xp: u32,
    /// Layers on the negative y side.
    pub ym: u32,
    /// Layers on the positive y side.
    pub yp: u32,
    /// Layers on the negative z side.
    pub zm: u32,
    /// Layers on the positive z side.
    pub zp: u32,
}

impl OffsetBox {
    /// Build a box from per-side extents.
    pub const fn new(xm: u32, xp: u32, ym: u32, yp: u32, zm: u32, zp: u32) -> Self {
        OffsetBox {
            xm,
            xp,
            ym,
            yp,
            zm,
            zp,
        }
    }

    /// The point-wise box (touches only the evaluation region itself).
    pub const fn pointwise() -> Self {
        OffsetBox::new(0, 0, 0, 0, 0, 0)
    }

    /// Extents (negative side, positive side) along `axis`.
    pub fn along(&self, axis: Axis) -> (u32, u32) {
        match axis {
            Axis::X => (self.xm, self.xp),
            Axis::Y => (self.ym, self.yp),
            Axis::Z => (self.zm, self.zp),
        }
    }

    /// Component-wise union (max of extents).
    pub fn union(&self, o: &OffsetBox) -> OffsetBox {
        OffsetBox {
            xm: self.xm.max(o.xm),
            xp: self.xp.max(o.xp),
            ym: self.ym.max(o.ym),
            yp: self.yp.max(o.yp),
            zm: self.zm.max(o.zm),
            zp: self.zp.max(o.zp),
        }
    }

    /// Whether an offset `(di, dj, dk)` relative to the evaluation region
    /// lies inside the box.
    pub fn contains(&self, di: i64, dj: i64, dk: i64) -> bool {
        -(self.xm as i64) <= di
            && di <= self.xp as i64
            && -(self.ym as i64) <= dj
            && dj <= self.yp as i64
            && -(self.zm as i64) <= dk
            && dk <= self.zp as i64
    }
}

/// Whether a field access is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDir {
    /// The kernel reads the field.
    Read,
    /// The kernel writes the field.
    Write,
}

/// One field's declared access within a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldAccess {
    /// Field name (`"u"`, `"v"`, `"phi"`, `"psa"`, `"vsum"`, `"gw"`,
    /// `"phi_p"`, `"dp"`, `"dsa"`).
    pub field: &'static str,
    /// Read or write.
    pub dir: AccessDir,
    /// The offset box relative to the evaluation region.
    pub bounds: OffsetBox,
    /// The access spans the whole (periodic) x circle — the Fourier
    /// filter's rows.  The box's x extents are ignored when set.
    pub whole_x: bool,
    /// The access spans the whole global column — the collective operator
    /// `C`'s sums, satisfied by a z-allgather (or `p_z = 1`), never by a
    /// halo.  The box's z extents still apply to the *local* prefix walks.
    pub whole_z: bool,
}

impl FieldAccess {
    const fn read(field: &'static str, bounds: OffsetBox) -> Self {
        FieldAccess {
            field,
            dir: AccessDir::Read,
            bounds,
            whole_x: false,
            whole_z: false,
        }
    }

    const fn write(field: &'static str, bounds: OffsetBox) -> Self {
        FieldAccess {
            field,
            dir: AccessDir::Write,
            bounds,
            whole_x: false,
            whole_z: false,
        }
    }

    const fn whole_x(mut self) -> Self {
        self.whole_x = true;
        self
    }

    const fn whole_z(mut self) -> Self {
        self.whole_z = true;
        self
    }
}

/// The declared access contract of one hot kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessSpec {
    /// Registry key — also the `op` of [`crate::par::schedule::ComputeOp`].
    pub op: &'static str,
    /// Every field the kernel touches.
    pub fields: &'static [FieldAccess],
}

impl AccessSpec {
    /// The declared accesses of `field` in `dir`, if any.
    pub fn access(&self, field: &str, dir: AccessDir) -> Option<&'static FieldAccess> {
        self.fields
            .iter()
            .find(|a| a.field == field && a.dir == dir)
    }

    /// Union box over all reads.
    pub fn read_union(&self) -> OffsetBox {
        self.fields
            .iter()
            .filter(|a| a.dir == AccessDir::Read)
            .fold(OffsetBox::pointwise(), |acc, a| acc.union(&a.bounds))
    }

    /// All read accesses.
    pub fn reads(&self) -> impl Iterator<Item = &'static FieldAccess> {
        self.fields.iter().filter(|a| a.dir == AccessDir::Read)
    }

    /// All write accesses.
    pub fn writes(&self) -> impl Iterator<Item = &'static FieldAccess> {
        self.fields.iter().filter(|a| a.dir == AccessDir::Write)
    }
}

const PW: OffsetBox = OffsetBox::pointwise();

/// The adaptation sweep `Â` (Table 1's stencil part; the z-global terms
/// enter through the `C` diagnostics declared in [`VERTICAL_C`]).
pub const ADAPTATION: AccessSpec = AccessSpec {
    op: "adaptation",
    fields: &[
        // prognostic reads: the Table 1 x extent (±3) and the C-grid
        // meridional coupling (±1); single level.
        FieldAccess::read("u", OffsetBox::new(3, 3, 1, 1, 0, 0)),
        FieldAccess::read("v", OffsetBox::new(3, 3, 1, 1, 0, 0)),
        FieldAccess::read("phi", OffsetBox::new(3, 3, 1, 1, 0, 0)),
        // p'_sa feeds the point-wise surface diagnostics `p_es`/`P`, read
        // at j ± 1 by the pressure-gradient and Ω terms.
        FieldAccess::read("psa", OffsetBox::new(3, 3, 1, 1, 0, 0)),
        // C outputs: φ' at (j, j+1) — declared symmetric in y like D(P);
        // g_w at interfaces (k, k+1); vsum/dsa/dp produced on the region.
        FieldAccess::read("phi_p", OffsetBox::new(3, 3, 1, 1, 0, 0)),
        FieldAccess::read("gw", OffsetBox::new(1, 1, 0, 0, 0, 1)),
        FieldAccess::read("dp", OffsetBox::new(1, 1, 0, 0, 0, 0)),
        FieldAccess::read("vsum", OffsetBox::new(1, 1, 0, 0, 0, 0)),
        FieldAccess::read("dsa", PW),
        FieldAccess::write("u", PW),
        FieldAccess::write("v", PW),
        FieldAccess::write("phi", PW),
        FieldAccess::write("psa", PW),
    ],
};

/// The collective operator `C` ([`crate::vertical::apply_c`]): whole-column
/// sums (the z-allgather) plus local prefix/suffix walks that read one
/// row/level beyond the region — the `z ± 1` widening of
/// [`crate::tables::adaptation_impl_union`].
pub const VERTICAL_C: AccessSpec = AccessSpec {
    op: "vertical.c",
    fields: &[
        // D(P) inputs (Table 1 row `D(P)`: x ±3 declared, y ±1).
        FieldAccess::read("u", OffsetBox::new(3, 3, 1, 1, 0, 0)).whole_z(),
        FieldAccess::read("v", OffsetBox::new(3, 3, 1, 1, 0, 0)).whole_z(),
        // φ'-integrand on rows grown by one, one level into the halo.
        FieldAccess::read("phi", OffsetBox::new(1, 1, 1, 1, 1, 1)).whole_z(),
        FieldAccess::read("psa", OffsetBox::new(1, 1, 1, 1, 0, 0)),
        FieldAccess::write("dsa", PW),
        FieldAccess::write("dp", OffsetBox::new(1, 1, 0, 0, 0, 0)),
        FieldAccess::write("vsum", OffsetBox::new(1, 1, 0, 0, 0, 0)),
        // g_w holds interfaces k − 1/2 … one entry past the region.
        FieldAccess::write("gw", OffsetBox::new(1, 1, 0, 0, 0, 1)),
        // φ' is produced on the region grown by one latitude row.
        FieldAccess::write("phi_p", OffsetBox::new(1, 1, 1, 1, 0, 0)),
    ],
};

/// The advection sweep `L̃` (Table 2).
pub const ADVECTION: AccessSpec = AccessSpec {
    op: "advection",
    fields: &[
        FieldAccess::read("u", OffsetBox::new(3, 3, 1, 1, 1, 1)),
        FieldAccess::read("v", OffsetBox::new(3, 3, 1, 1, 1, 1)),
        FieldAccess::read("phi", OffsetBox::new(3, 3, 1, 1, 1, 1)),
        FieldAccess::read("psa", OffsetBox::new(3, 3, 1, 1, 0, 0)),
        // the frozen continuity flux, read at (j, j+1) × (k, k+1); the
        // row-sliced kernel fetches the common x slice ±2 (uses ±1)
        FieldAccess::read("gw", OffsetBox::new(2, 2, 0, 1, 0, 1)),
        FieldAccess::write("u", PW),
        FieldAccess::write("v", PW),
        FieldAccess::write("phi", PW),
        FieldAccess::write("psa", PW),
    ],
};

/// The smoothing operator (Table 3): `P₁` (x-only, ±2) on winds, `P₂`
/// (x and y, ±2) on `Φ` and `p'_sa`.  `smooth.s1` is the former/full
/// smoothing; `smooth.s2` the later smoothing that completes edge and halo
/// rows after the fused deep exchange lands (§4.3.2) — same footprint.
pub const SMOOTH_S1: AccessSpec = AccessSpec {
    op: "smooth.s1",
    fields: &SMOOTH_FIELDS,
};

/// The later (post-exchange) smoothing: identical contract to
/// [`SMOOTH_S1`], evaluated on edge rows and (redundantly) the halo.
pub const SMOOTH_S2: AccessSpec = AccessSpec {
    op: "smooth.s2",
    fields: &SMOOTH_FIELDS,
};

const SMOOTH_FIELDS: [FieldAccess; 8] = [
    FieldAccess::read("u", OffsetBox::new(2, 2, 0, 0, 0, 0)),
    FieldAccess::read("v", OffsetBox::new(2, 2, 0, 0, 0, 0)),
    FieldAccess::read("phi", OffsetBox::new(2, 2, 2, 2, 0, 0)),
    FieldAccess::read("psa", OffsetBox::new(2, 2, 2, 2, 0, 0)),
    FieldAccess::write("u", PW),
    FieldAccess::write("v", PW),
    FieldAccess::write("phi", PW),
    FieldAccess::write("psa", PW),
];

/// The polar Fourier filter: whole-x rows (communication-free under the
/// Y-Z decomposition, §4.2.1; two transposes per application when x is
/// decomposed).
pub const FILTER: AccessSpec = AccessSpec {
    op: "filter",
    fields: &[
        FieldAccess::read("u", PW).whole_x(),
        FieldAccess::read("v", PW).whole_x(),
        FieldAccess::read("phi", PW).whole_x(),
        FieldAccess::read("psa", PW).whole_x(),
        FieldAccess::write("u", PW).whole_x(),
        FieldAccess::write("v", PW).whole_x(),
        FieldAccess::write("phi", PW).whole_x(),
        FieldAccess::write("psa", PW).whole_x(),
    ],
};

/// Every registered kernel spec.
pub fn registry() -> &'static [AccessSpec] {
    &[
        ADAPTATION, VERTICAL_C, ADVECTION, SMOOTH_S1, SMOOTH_S2, FILTER,
    ]
}

/// Look a kernel up by its registry key.
pub fn spec(op: &str) -> Option<&'static AccessSpec> {
    registry().iter().find(|s| s.op == op)
}

/// Union of the read boxes of a set of specs — the per-sweep footprint the
/// dataflow analysis dilates.
pub fn read_union_of(ops: &[&AccessSpec]) -> OffsetBox {
    ops.iter()
        .fold(OffsetBox::pointwise(), |acc, s| acc.union(&s.read_union()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;
    use agcm_mesh::StencilFootprint;

    fn footprint_extents(fp: &StencilFootprint, axis: Axis) -> (u32, u32) {
        fp.required_halo(axis)
    }

    fn assert_union_matches(b: OffsetBox, fp: &StencilFootprint) {
        for axis in Axis::ALL {
            assert_eq!(
                b.along(axis),
                footprint_extents(fp, axis),
                "{}: {axis} extents",
                fp.name
            );
        }
    }

    #[test]
    fn adaptation_spec_union_equals_table1_impl_union() {
        // one adaptation sub-update = stencil part + C diagnostics
        let u = read_union_of(&[&ADAPTATION, &VERTICAL_C]);
        assert_union_matches(u, &tables::adaptation_impl_union());
    }

    #[test]
    fn advection_spec_union_equals_table2_union() {
        assert_union_matches(ADVECTION.read_union(), &tables::advection_union());
    }

    #[test]
    fn smoothing_spec_union_equals_table3_union() {
        assert_union_matches(SMOOTH_S1.read_union(), &tables::smoothing_union());
        assert_union_matches(SMOOTH_S2.read_union(), &tables::smoothing_union());
    }

    #[test]
    fn registry_lookup_and_roles() {
        for s in registry() {
            assert!(spec(s.op).is_some(), "{} not found", s.op);
            assert!(s.reads().count() > 0, "{} declares no reads", s.op);
            assert!(s.writes().count() > 0, "{} declares no writes", s.op);
        }
        assert!(spec("nonexistent").is_none());
        let a = spec("adaptation").unwrap();
        let gw = a.access("gw", AccessDir::Read).unwrap();
        assert_eq!(gw.bounds.along(Axis::Z), (0, 1));
        assert!(!gw.whole_z);
        let c = spec("vertical.c").unwrap();
        assert!(c.access("phi", AccessDir::Read).unwrap().whole_z);
        assert!(
            spec("filter")
                .unwrap()
                .access("u", AccessDir::Read)
                .unwrap()
                .whole_x
        );
    }

    #[test]
    fn offset_box_contains_and_union() {
        let b = OffsetBox::new(1, 2, 0, 1, 0, 0);
        assert!(b.contains(-1, 0, 0));
        assert!(b.contains(2, 1, 0));
        assert!(!b.contains(-2, 0, 0));
        assert!(!b.contains(0, -1, 0));
        let u = b.union(&OffsetBox::new(0, 0, 3, 0, 1, 0));
        assert_eq!(u, OffsetBox::new(1, 2, 3, 1, 1, 0));
    }
}
