//! Per-rank geometry: the owned subdomain plus trigonometric and σ tables
//! extended into the halo.
//!
//! Halo rows beyond the poles (and layers beyond the model top/surface) are
//! fictitious mirror rows — the free-slip-wall boundary described in
//! `boundary.rs`.  Their geometric factors are mirrored so that operator
//! loops can sweep interior and halo uniformly, without per-row branches.

use crate::config::ModelConfig;
use agcm_mesh::{Decomposition, HaloWidths, LatLonGrid, Subdomain};
use std::sync::Arc;

/// A rectangular compute region in local coordinates: all owned longitudes
/// (x is never split in the algorithms that use regions) and the half-open
/// local ranges `[y0, y1) × [z0, z1)`, which may extend into the halo.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First latitude row (inclusive, may be negative = halo).
    pub y0: isize,
    /// Last latitude row (exclusive).
    pub y1: isize,
    /// First level (inclusive, may be negative = halo).
    pub z0: isize,
    /// Last level (exclusive).
    pub z1: isize,
}

impl Region {
    /// The interior of a subdomain with local extents `(ny, nz)`.
    pub fn interior(ny: usize, nz: usize) -> Region {
        Region {
            y0: 0,
            y1: ny as isize,
            z0: 0,
            z1: nz as isize,
        }
    }

    /// Grow the region by `dy` rows and `dz` levels on each applicable side,
    /// clamped to the allocated halo `halo` around extents `(ny, nz)` and to
    /// the physical boundary: sides where the subdomain touches a pole /
    /// the model top / the surface do not grow (there is no neighbour data
    /// there — the boundary condition fills those rows instead, and they are
    /// updated by the boundary fill, not by sweeps).
    #[allow(clippy::too_many_arguments)]
    pub fn dilate(
        &self,
        dy: isize,
        dz: isize,
        ny: usize,
        nz: usize,
        halo: HaloWidths,
        grow: GrowSides,
    ) -> Region {
        let y0 = if grow.north {
            (self.y0 - dy).max(-(halo.ym as isize))
        } else {
            self.y0
        };
        let y1 = if grow.south {
            (self.y1 + dy).min(ny as isize + halo.yp as isize)
        } else {
            self.y1
        };
        let z0 = if grow.top {
            (self.z0 - dz).max(-(halo.zm as isize))
        } else {
            self.z0
        };
        let z1 = if grow.bottom {
            (self.z1 + dz).min(nz as isize + halo.zp as isize)
        } else {
            self.z1
        };
        Region { y0, y1, z0, z1 }
    }

    /// Shrink the region by `dy`/`dz` on every side, never past empty.
    pub fn shrink(&self, dy: isize, dz: isize) -> Region {
        let mut r = Region {
            y0: self.y0 + dy,
            y1: self.y1 - dy,
            z0: self.z0 + dz,
            z1: self.z1 - dz,
        };
        if r.y0 > r.y1 {
            let m = (self.y0 + self.y1) / 2;
            r.y0 = m;
            r.y1 = m;
        }
        if r.z0 > r.z1 {
            let m = (self.z0 + self.z1) / 2;
            r.z0 = m;
            r.z1 = m;
        }
        r
    }

    /// Number of `(j, k)` columns in the region.
    pub fn area(&self) -> usize {
        ((self.y1 - self.y0).max(0) * (self.z1 - self.z0).max(0)) as usize
    }

    /// Whether the region covers nothing.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }

    /// Whether `other` is fully inside `self`.
    pub fn contains(&self, other: &Region) -> bool {
        self.y0 <= other.y0 && other.y1 <= self.y1 && self.z0 <= other.z0 && other.z1 <= self.z1
    }
}

/// Decompose `outer \ inner` into at most four disjoint rectangles (north /
/// south full-width strips, then top / bottom strips of the remaining
/// middle band).  `inner` must be contained in `outer`.  Used by the
/// overlap scheme: the *inner* part computes while messages fly; the frame
/// strips are swept after the halos arrive (§4.3.1).
pub fn frame(outer: &Region, inner: &Region) -> Vec<Region> {
    debug_assert!(outer.contains(inner));
    let mut out = Vec::with_capacity(4);
    if inner.y0 > outer.y0 {
        out.push(Region {
            y0: outer.y0,
            y1: inner.y0,
            z0: outer.z0,
            z1: outer.z1,
        });
    }
    if inner.y1 < outer.y1 {
        out.push(Region {
            y0: inner.y1,
            y1: outer.y1,
            z0: outer.z0,
            z1: outer.z1,
        });
    }
    if inner.z0 > outer.z0 {
        out.push(Region {
            y0: inner.y0,
            y1: inner.y1,
            z0: outer.z0,
            z1: inner.z0,
        });
    }
    if inner.z1 < outer.z1 {
        out.push(Region {
            y0: inner.y0,
            y1: inner.y1,
            z0: inner.z1,
            z1: outer.z1,
        });
    }
    out.retain(|r| !r.is_empty());
    out
}

/// Which sides of a region may grow into the halo (sides facing a real
/// neighbour, as opposed to a physical boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowSides {
    /// Low-y side has a neighbour.
    pub north: bool,
    /// High-y side has a neighbour.
    pub south: bool,
    /// Low-z side has a neighbour.
    pub top: bool,
    /// High-z side has a neighbour.
    pub bottom: bool,
}

/// Everything an operator loop needs about the local patch of the sphere.
#[derive(Debug, Clone)]
pub struct LocalGeometry {
    /// The global grid.
    pub grid: Arc<LatLonGrid>,
    /// This rank's subdomain.
    pub sub: Subdomain,
    /// Halo widths the state fields carry.
    pub halo: HaloWidths,
    /// Local interior extents.
    pub nx: usize,
    /// Local latitude rows.
    pub ny: usize,
    /// Local levels.
    pub nz: usize,
    // trig tables indexed by (local j + y_off), covering the halo
    sin_c: Vec<f64>,
    cos_c: Vec<f64>,
    sin_v: Vec<f64>,
    cos_v: Vec<f64>,
    y_off: usize,
    // σ tables indexed by (local k + z_off)
    sigma_c: Vec<f64>,
    dsigma: Vec<f64>,
    /// σ at the interface *below* centre k (i.e. `σ_{k-1/2}`), same indexing.
    sigma_lo: Vec<f64>,
    z_off: usize,
}

impl LocalGeometry {
    /// Build the local geometry of `rank` under `decomp` for a model `cfg`
    /// with fields carrying `halo`.
    pub fn new(
        cfg: &ModelConfig,
        grid: Arc<LatLonGrid>,
        decomp: &Decomposition,
        rank: usize,
        halo: HaloWidths,
    ) -> Self {
        let sub = decomp.subdomain(rank);
        let (nx, ny, nz) = sub.extents();
        debug_assert_eq!(grid.nx(), cfg.nx);
        let gny = grid.ny();
        let gnz = grid.nz();

        // --- latitude tables with mirrored halo rows ---
        let y_off = halo.ym;
        let rows = ny + halo.ym + halo.yp;
        let mut sin_c = Vec::with_capacity(rows);
        let mut cos_c = Vec::with_capacity(rows);
        let mut sin_v = Vec::with_capacity(rows);
        let mut cos_v = Vec::with_capacity(rows);
        // mirror a global scalar-row index into [0, gny)
        let mirror = |g: i64, n: i64| -> usize {
            let mut g = g;
            if g < 0 {
                g = -1 - g;
            }
            if g >= n {
                g = 2 * n - 1 - g;
            }
            g.clamp(0, n - 1) as usize
        };
        for jl in 0..rows as i64 {
            let g = sub.y.start as i64 + jl - y_off as i64;
            let m = mirror(g, gny as i64);
            sin_c.push(grid.sin_center()[m]);
            cos_c.push(grid.cos_center()[m]);
            // V faces: face g sits at θ_{g+1}; face -1 is the north pole,
            // face gny-1 the south pole.  Mirror about the poles: face
            // -1-d ↔ face -1+d, face (gny-1)+d ↔ face (gny-1)-d.
            let gv = g; // faces share the row indexing
            let mv: i64 = if gv < -1 {
                -2 - gv // face -1-d -> face d-1... (-1 - (gv+1)) reflected
            } else if gv > gny as i64 - 1 {
                2 * (gny as i64 - 1) - gv
            } else {
                gv
            };
            if mv == -1 || mv >= gny as i64 - 1 {
                // a pole face (north pole = face −1, south pole = face
                // gny−1, which is a *stored* row): sinθ = 0 exactly
                sin_v.push(0.0);
                cos_v.push(if g < 0 { 1.0 } else { -1.0 });
            } else {
                let mvu = mv.clamp(0, gny as i64 - 1) as usize;
                sin_v.push(grid.sin_vface()[mvu]);
                cos_v.push(grid.cos_vface()[mvu]);
            }
        }

        // --- σ tables with linearly extended halo levels ---
        let z_off = halo.zm;
        let levels = nz + halo.zm + halo.zp;
        let sig = grid.sigma();
        let mut sigma_c = Vec::with_capacity(levels);
        let mut dsigma = Vec::with_capacity(levels);
        let mut sigma_lo = Vec::with_capacity(levels);
        for kl in 0..levels as i64 {
            let g = sub.z.start as i64 + kl - z_off as i64;
            if (0..gnz as i64).contains(&g) {
                let gu = g as usize;
                sigma_c.push(sig.centers()[gu]);
                dsigma.push(sig.thickness()[gu]);
                sigma_lo.push(sig.interfaces()[gu]);
            } else if g < 0 {
                // extend above the top with the first thickness
                let d = sig.thickness()[0];
                sigma_c.push(sig.centers()[0] + g as f64 * d);
                dsigma.push(d);
                sigma_lo.push(sig.interfaces()[0] + g as f64 * d);
            } else {
                let d = sig.thickness()[gnz - 1];
                let over = (g - gnz as i64 + 1) as f64;
                sigma_c.push(sig.centers()[gnz - 1] + over * d);
                dsigma.push(d);
                sigma_lo.push(sig.interfaces()[gnz - 1] + over * d);
            }
        }

        LocalGeometry {
            grid,
            sub,
            halo,
            nx,
            ny,
            nz,
            sin_c,
            cos_c,
            sin_v,
            cos_v,
            y_off,
            sigma_c,
            dsigma,
            sigma_lo,
            z_off,
        }
    }

    /// `sin θ` at scalar row `jl` (local, halo reachable).
    #[inline]
    pub fn sin_c(&self, jl: isize) -> f64 {
        self.sin_c[(jl + self.y_off as isize) as usize]
    }

    /// `cos θ` at scalar row `jl`.
    #[inline]
    pub fn cos_c(&self, jl: isize) -> f64 {
        self.cos_c[(jl + self.y_off as isize) as usize]
    }

    /// `sin θ` at the V face below row `jl` (face between rows `jl`,`jl+1`).
    #[inline]
    pub fn sin_v(&self, jl: isize) -> f64 {
        self.sin_v[(jl + self.y_off as isize) as usize]
    }

    /// `cos θ` at the V face below row `jl`.
    #[inline]
    pub fn cos_v(&self, jl: isize) -> f64 {
        self.cos_v[(jl + self.y_off as isize) as usize]
    }

    /// σ at level centre `kl`.
    #[inline]
    pub fn sigma_c(&self, kl: isize) -> f64 {
        self.sigma_c[(kl + self.z_off as isize) as usize]
    }

    /// `Δσ` of level `kl`.
    #[inline]
    pub fn dsigma(&self, kl: isize) -> f64 {
        self.dsigma[(kl + self.z_off as isize) as usize]
    }

    /// σ at the interface below centre `kl` (`σ_{k-1/2}`).
    #[inline]
    pub fn sigma_lo(&self, kl: isize) -> f64 {
        self.sigma_lo[(kl + self.z_off as isize) as usize]
    }

    /// Global latitude row of local row `jl` (may fall outside `[0, ny)` in
    /// the halo).
    #[inline]
    pub fn global_j(&self, jl: isize) -> i64 {
        self.sub.y.start as i64 + jl as i64
    }

    /// Global level of local level `kl`.
    #[inline]
    pub fn global_k(&self, kl: isize) -> i64 {
        self.sub.z.start as i64 + kl as i64
    }

    /// Whether this rank's subdomain touches the north pole.
    pub fn at_north(&self) -> bool {
        self.sub.at_north()
    }

    /// Whether this rank's subdomain touches the south pole.
    pub fn at_south(&self) -> bool {
        self.sub.at_south(self.grid.ny())
    }

    /// Whether this rank owns the model-top level.
    pub fn at_top(&self) -> bool {
        self.sub.at_top()
    }

    /// Whether this rank owns the surface level.
    pub fn at_surface(&self) -> bool {
        self.sub.at_surface(self.grid.nz())
    }

    /// Which region sides may grow into exchanged halo (true where a real
    /// neighbour exists).
    pub fn grow_sides(&self) -> GrowSides {
        GrowSides {
            north: !self.at_north(),
            south: !self.at_south(),
            top: !self.at_top(),
            bottom: !self.at_surface(),
        }
    }

    /// The interior region of this rank.
    pub fn interior(&self) -> Region {
        Region::interior(self.ny, self.nz)
    }

    /// Longitude spacing.
    #[inline]
    pub fn dlambda(&self) -> f64 {
        self.grid.dlambda()
    }

    /// Latitude spacing.
    #[inline]
    pub fn dtheta(&self) -> f64 {
        self.grid.dtheta()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mesh::ProcessGrid;

    fn geom(py: usize, pz: usize, rank: usize, halo: HaloWidths) -> LocalGeometry {
        let cfg = ModelConfig::test_medium(); // 24 x 16 x 8
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::yz(py, pz).unwrap()).unwrap();
        LocalGeometry::new(&cfg, grid, &d, rank, halo)
    }

    #[test]
    fn interior_tables_match_grid() {
        let g = geom(2, 2, 3, HaloWidths::uniform(2)); // cy=1, cz=1
        assert_eq!((g.ny, g.nz), (8, 4));
        let grid = Arc::clone(&g.grid);
        for jl in 0..g.ny as isize {
            let gj = g.global_j(jl) as usize;
            assert_eq!(g.sin_c(jl), grid.sin_center()[gj]);
            assert_eq!(g.cos_c(jl), grid.cos_center()[gj]);
        }
        for kl in 0..g.nz as isize {
            let gk = g.global_k(kl) as usize;
            assert_eq!(g.sigma_c(kl), grid.sigma().centers()[gk]);
            assert_eq!(g.dsigma(kl), grid.sigma().thickness()[gk]);
        }
    }

    #[test]
    fn halo_rows_mirror_at_pole() {
        // rank at the north pole: halo rows mirror rows 0,1,...
        let g = geom(2, 1, 0, HaloWidths::uniform(2));
        assert!(g.at_north());
        assert_eq!(g.sin_c(-1), g.sin_c(0));
        assert_eq!(g.sin_c(-2), g.sin_c(1));
        assert!(g.sin_c(-1) > 0.0, "mirrored sinθ stays positive");
        // pole V face has sinθ = 0
        assert_eq!(g.sin_v(-1), 0.0);
    }

    #[test]
    fn south_pole_mirror() {
        let cfg = ModelConfig::test_medium();
        let grid = Arc::new(cfg.grid().unwrap());
        let d = Decomposition::new(cfg.extents(), ProcessGrid::yz(2, 1).unwrap()).unwrap();
        let g = LocalGeometry::new(&cfg, grid, &d, 1, HaloWidths::uniform(2));
        assert!(g.at_south());
        let last = g.ny as isize - 1;
        assert_eq!(g.sin_c(last + 1), g.sin_c(last));
        // southernmost V face is the pole
        assert_eq!(g.sin_v(last), 0.0);
        assert!(g.sin_v(last + 1) > 0.0, "face beyond pole mirrors inward");
    }

    #[test]
    fn interior_rank_halo_rows_are_real() {
        // halo rows of a non-polar rank are real neighbouring latitudes
        let g = geom(2, 1, 1, HaloWidths::uniform(2));
        assert!(!g.at_north());
        let grid = Arc::clone(&g.grid);
        let gj = g.global_j(-1);
        assert!(gj >= 0);
        assert_eq!(g.sin_c(-1), grid.sin_center()[gj as usize]);
    }

    #[test]
    fn sigma_extension_monotone() {
        let g = geom(1, 2, 0, HaloWidths::uniform(2));
        // σ centres increase monotonically through the halo extension
        for kl in -1..(g.nz as isize + 2 - 1) {
            assert!(g.sigma_c(kl) < g.sigma_c(kl + 1));
        }
        // thickness positive everywhere
        for kl in -2..(g.nz as isize + 2) {
            assert!(g.dsigma(kl) > 0.0);
        }
    }

    #[test]
    fn region_dilate_respects_boundaries() {
        let g = geom(2, 2, 0, HaloWidths::uniform(3)); // north + top corner
        let r = g.interior();
        let grown = r.dilate(2, 2, g.ny, g.nz, g.halo, g.grow_sides());
        assert_eq!(grown.y0, 0, "no growth past the north pole");
        assert_eq!(grown.z0, 0, "no growth past the model top");
        assert_eq!(grown.y1, g.ny as isize + 2);
        assert_eq!(grown.z1, g.nz as isize + 2);
        // clamped by allocated halo
        let big = r.dilate(9, 9, g.ny, g.nz, g.halo, g.grow_sides());
        assert_eq!(big.y1, g.ny as isize + 3);
    }

    #[test]
    fn frame_covers_difference_disjointly() {
        let outer = Region {
            y0: -3,
            y1: 11,
            z0: -2,
            z1: 6,
        };
        let inner = Region {
            y0: 0,
            y1: 8,
            z0: 0,
            z1: 4,
        };
        let strips = frame(&outer, &inner);
        assert_eq!(strips.len(), 4);
        let total: usize = strips.iter().map(|r| r.area()).sum();
        assert_eq!(total + inner.area(), outer.area());
        // disjointness: no (j,k) cell in two strips
        for (a, b) in [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            let (ra, rb) = (&strips[a], &strips[b]);
            let overlap_y = ra.y0.max(rb.y0) < ra.y1.min(rb.y1);
            let overlap_z = ra.z0.max(rb.z0) < ra.z1.min(rb.z1);
            assert!(!(overlap_y && overlap_z), "strips {a} and {b} overlap");
        }
        // inner == outer → empty frame
        assert!(frame(&inner, &inner).is_empty());
    }

    #[test]
    fn region_shrink_and_contains() {
        let r = Region {
            y0: -2,
            y1: 10,
            z0: 0,
            z1: 4,
        };
        let s = r.shrink(1, 1);
        assert_eq!(
            s,
            Region {
                y0: -1,
                y1: 9,
                z0: 1,
                z1: 3
            }
        );
        assert!(r.contains(&s));
        assert!(!s.contains(&r));
        assert_eq!(r.area(), 12 * 4);
        // shrinking past empty collapses
        let tiny = Region {
            y0: 0,
            y1: 1,
            z0: 0,
            z1: 1,
        };
        assert!(tiny.shrink(3, 3).is_empty());
    }
}
