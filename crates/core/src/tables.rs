//! The paper's stencil tables (Tables 1, 2 and 3) as data.
//!
//! Each row of the tables gives the mesh-point offsets the update of
//! `v_{i,j,k}` reads for one term of the dynamical core, expressed in the
//! prognostic variables.  These declared footprints drive the halo widths
//! and communication volumes of every algorithm in this crate; tests verify
//! that the actual operator implementations read **within** them (the
//! implementations use standard second-order C-grid differences, which are
//! subsets of the paper's footprints — see `DESIGN.md`).

use agcm_mesh::{Axis, StencilFootprint};

// ---------------------------------------------------------------------------
// Table 1: stencil computation in the adaptation process
// ---------------------------------------------------------------------------

/// `P_λ^(1)`: x: i, i±1, i−2; y: j; z: k, k+1.
pub fn t1_p_lambda_1() -> StencilFootprint {
    StencilFootprint::new("P_lambda^(1)", vec![-2, -1, 1], vec![], vec![1])
}

/// `P_λ^(2)`: x: i, i±1, i−2; y: j; z: k.
pub fn t1_p_lambda_2() -> StencilFootprint {
    StencilFootprint::new("P_lambda^(2)", vec![-2, -1, 1], vec![], vec![])
}

/// `f*V`: x: i, i−1; y: j, j−1; z: k.
pub fn t1_fstar_v() -> StencilFootprint {
    StencilFootprint::new("f*V", vec![-1], vec![-1], vec![])
}

/// `P_θ^(1)`: x: i; y: j, j+1; z: k, k+1.
pub fn t1_p_theta_1() -> StencilFootprint {
    StencilFootprint::new("P_theta^(1)", vec![], vec![1], vec![1])
}

/// `P_θ^(2)`: x: i; y: j, j+1; z: k.
pub fn t1_p_theta_2() -> StencilFootprint {
    StencilFootprint::new("P_theta^(2)", vec![], vec![1], vec![])
}

/// `f*U`: x: i, i+1; y: j, j+1; z: k.
pub fn t1_fstar_u() -> StencilFootprint {
    StencilFootprint::new("f*U", vec![1], vec![1], vec![])
}

/// `Ω^(1)`: x: i; y: j; z: k, k+1.
pub fn t1_omega_1() -> StencilFootprint {
    StencilFootprint::new("Omega^(1)", vec![], vec![], vec![1])
}

/// `Ω_θ^(2)`: x: i; y: j, j±1; z: k.
pub fn t1_omega_theta_2() -> StencilFootprint {
    StencilFootprint::new("Omega_theta^(2)", vec![], vec![-1, 1], vec![])
}

/// `Ω_λ^(2)`: x: i, i±1, i−2, i±3; y: j; z: k.
pub fn t1_omega_lambda_2() -> StencilFootprint {
    StencilFootprint::new("Omega_lambda^(2)", vec![-3, -2, -1, 1, 3], vec![], vec![])
}

/// `D(P)`: printed as "x: i, i−1 i+2, i±3; y: j, j−1; z: k" — the x list is
/// garbled in the paper (it omits `i+1`, which any C-grid flux divergence
/// reads); declared here as the symmetric superset `i, i±1, i±2, i±3`,
/// which leaves every halo width and communication volume unchanged
/// (the x-extent stays 3).
/// The y list is also widened from the printed "j, j−1" to `j, j±1`: the
/// C-grid meridional mass flux `(PV sin θ)_{j+1/2}` reads `P` on both sides
/// of the V face.  The adaptation union's y-extent (±1) is unchanged.
pub fn t1_d_of_p() -> StencilFootprint {
    StencilFootprint::new("D(P)", vec![-3, -2, -1, 1, 2, 3], vec![-1, 1], vec![])
}

/// `D_sa`: x: i, i±1; y: j, j±1; z: k.
pub fn t1_d_sa() -> StencilFootprint {
    StencilFootprint::new("D_sa", vec![-1, 1], vec![-1, 1], vec![])
}

/// All Table 1 rows in printed order.
pub fn table1() -> Vec<StencilFootprint> {
    vec![
        t1_p_lambda_1(),
        t1_p_lambda_2(),
        t1_fstar_v(),
        t1_p_theta_1(),
        t1_p_theta_2(),
        t1_fstar_u(),
        t1_omega_1(),
        t1_omega_theta_2(),
        t1_omega_lambda_2(),
        t1_d_of_p(),
        t1_d_sa(),
    ]
}

// ---------------------------------------------------------------------------
// Table 2: stencil computation in the advection process
// ---------------------------------------------------------------------------

/// `L₁(U)`: x: i, i±1, i±2, i±3; y: j; z: k, k+1.
pub fn t2_l1_u() -> StencilFootprint {
    StencilFootprint::new("L1(U)", vec![-3, -2, -1, 1, 2, 3], vec![], vec![1])
}

/// `L₂(U)`: x: i, i−1; y: j, j±1; z: k.
pub fn t2_l2_u() -> StencilFootprint {
    StencilFootprint::new("L2(U)", vec![-1], vec![-1, 1], vec![])
}

/// `L₃(U)`: x: i, i−1; y: j; z: k, k±1.
pub fn t2_l3_u() -> StencilFootprint {
    StencilFootprint::new("L3(U)", vec![-1], vec![], vec![-1, 1])
}

/// `L₁(V)`: x: i, i±1, i+2, i±3; y: j, j+1; z: k.
pub fn t2_l1_v() -> StencilFootprint {
    StencilFootprint::new("L1(V)", vec![-3, -1, 1, 2, 3], vec![1], vec![])
}

/// `L₂(V)`: x: i; y: j, j±1; z: k.
pub fn t2_l2_v() -> StencilFootprint {
    StencilFootprint::new("L2(V)", vec![], vec![-1, 1], vec![])
}

/// `L₃(V)`: x: i; y: j, j+1; z: k, k±1.
pub fn t2_l3_v() -> StencilFootprint {
    StencilFootprint::new("L3(V)", vec![], vec![1], vec![-1, 1])
}

/// `L₁(Φ)`: x: i, i±1, i+2, i±3; y: j; z: k.
pub fn t2_l1_phi() -> StencilFootprint {
    StencilFootprint::new("L1(Phi)", vec![-3, -1, 1, 2, 3], vec![], vec![])
}

/// `L₂(Φ)`: x: i; y: j, j±1; z: k.
pub fn t2_l2_phi() -> StencilFootprint {
    StencilFootprint::new("L2(Phi)", vec![], vec![-1, 1], vec![])
}

/// `L₃(Φ)`: x: i; y: j; z: k, k±1.
pub fn t2_l3_phi() -> StencilFootprint {
    StencilFootprint::new("L3(Phi)", vec![], vec![], vec![-1, 1])
}

/// All Table 2 rows in printed order.
pub fn table2() -> Vec<StencilFootprint> {
    vec![
        t2_l1_u(),
        t2_l2_u(),
        t2_l3_u(),
        t2_l1_v(),
        t2_l2_v(),
        t2_l3_v(),
        t2_l1_phi(),
        t2_l2_phi(),
        t2_l3_phi(),
    ]
}

// ---------------------------------------------------------------------------
// Table 3: stencil computation in the smoothing
// ---------------------------------------------------------------------------

/// `P₁`: x: i, i±1, i±2; y: j; z: k.
pub fn t3_p1() -> StencilFootprint {
    StencilFootprint::new("P1", vec![-2, -1, 1, 2], vec![], vec![])
}

/// `P₂`: x: i, i±1, i±2; y: j, j±1, j±2; z: k.
pub fn t3_p2() -> StencilFootprint {
    StencilFootprint::new("P2", vec![-2, -1, 1, 2], vec![-2, -1, 1, 2], vec![])
}

/// Both Table 3 rows.
pub fn table3() -> Vec<StencilFootprint> {
    vec![t3_p1(), t3_p2()]
}

// ---------------------------------------------------------------------------
// Unions and halo derivation
// ---------------------------------------------------------------------------

/// Union footprint of one adaptation sweep (`Â`).
pub fn adaptation_union() -> StencilFootprint {
    StencilFootprint::union_of("adaptation", &table1())
}

/// Union footprint of one advection sweep (`L̃`).
pub fn advection_union() -> StencilFootprint {
    StencilFootprint::union_of("advection", &table2())
}

/// Union footprint of the smoothing (`S̃`).
pub fn smoothing_union() -> StencilFootprint {
    StencilFootprint::union_of("smoothing", &table3())
}

/// Union of everything applied between exchanges in the *original*
/// algorithm (one sweep of any operator): determines Algorithm 1's
/// (shallow) halo widths.
pub fn per_sweep_union() -> StencilFootprint {
    adaptation_union()
        .union(&advection_union())
        .union(&smoothing_union())
}

/// Per-sweep footprint of the adaptation process *as implemented*: the
/// paper's Table 1 union, widened to `k−1` in z.  Table 1 charges the
/// vertical mass-flux/geopotential integrals to the collective operator `C`,
/// but when a sweep is evaluated redundantly on deep z-halo layers (the CA
/// scheme), extending those integrals into the halo reads one layer further
/// on *both* z sides per sweep — which is also what the paper's Figure 4
/// depicts: halo areas of depth 3M on all four sides of the (y, z) block.
pub fn adaptation_impl_union() -> StencilFootprint {
    adaptation_union().union(&StencilFootprint::new("z-prefix", vec![], vec![], vec![-1]))
}

/// Deep-halo footprint of the communication-avoiding algorithm: `3M`
/// adaptation sweeps between exchanges (§4.3.1) plus the two extra latitude
/// rows the fused smoothing needs (§4.3.2); the same halos are reused for
/// the 3 advection sweeps, whose dilated footprint is also covered when
/// `M ≥ 1`.
pub fn ca_union(m_iters: u32) -> StencilFootprint {
    let adap = adaptation_impl_union().repeated(3 * m_iters);
    let adv = advection_union().repeated(3);
    let smooth = smoothing_union();
    adap.union(&adv).union(&smooth.union(&adap))
}

/// Halo widths (low, high) along an axis for the CA deep-halo scheme, with
/// the smoothing fusion margin added in y.
pub fn ca_halo_extent(m_iters: u32, axis: Axis) -> (u32, u32) {
    let u = ca_union(m_iters);
    let (lo, hi) = u.required_halo(axis);
    match axis {
        Axis::Y => (lo + 2, hi + 2), // former/later smoothing margin
        _ => (lo, hi),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_mesh::Axis;

    /// Assert a footprint's offsets along each axis match exactly.
    fn assert_fp(fp: &StencilFootprint, x: &[i32], y: &[i32], z: &[i32]) {
        assert_eq!(fp.x.offsets(), x, "{}: x", fp.name);
        assert_eq!(fp.y.offsets(), y, "{}: y", fp.name);
        assert_eq!(fp.z.offsets(), z, "{}: z", fp.name);
    }

    #[test]
    fn adaptation_footprints_match_table1() {
        assert_fp(&t1_p_lambda_1(), &[-2, -1, 0, 1], &[0], &[0, 1]);
        assert_fp(&t1_p_lambda_2(), &[-2, -1, 0, 1], &[0], &[0]);
        assert_fp(&t1_fstar_v(), &[-1, 0], &[-1, 0], &[0]);
        assert_fp(&t1_p_theta_1(), &[0], &[0, 1], &[0, 1]);
        assert_fp(&t1_p_theta_2(), &[0], &[0, 1], &[0]);
        assert_fp(&t1_fstar_u(), &[0, 1], &[0, 1], &[0]);
        assert_fp(&t1_omega_1(), &[0], &[0], &[0, 1]);
        assert_fp(&t1_omega_theta_2(), &[0], &[-1, 0, 1], &[0]);
        assert_fp(&t1_omega_lambda_2(), &[-3, -2, -1, 0, 1, 3], &[0], &[0]);
        assert_fp(&t1_d_of_p(), &[-3, -2, -1, 0, 1, 2, 3], &[-1, 0, 1], &[0]);
        assert_fp(&t1_d_sa(), &[-1, 0, 1], &[-1, 0, 1], &[0]);
        assert_eq!(table1().len(), 11);
    }

    #[test]
    fn advection_footprints_match_table2() {
        assert_fp(&t2_l1_u(), &[-3, -2, -1, 0, 1, 2, 3], &[0], &[0, 1]);
        assert_fp(&t2_l2_u(), &[-1, 0], &[-1, 0, 1], &[0]);
        assert_fp(&t2_l3_u(), &[-1, 0], &[0], &[-1, 0, 1]);
        assert_fp(&t2_l1_v(), &[-3, -1, 0, 1, 2, 3], &[0, 1], &[0]);
        assert_fp(&t2_l2_v(), &[0], &[-1, 0, 1], &[0]);
        assert_fp(&t2_l3_v(), &[0], &[0, 1], &[-1, 0, 1]);
        assert_fp(&t2_l1_phi(), &[-3, -1, 0, 1, 2, 3], &[0], &[0]);
        assert_fp(&t2_l2_phi(), &[0], &[-1, 0, 1], &[0]);
        assert_fp(&t2_l3_phi(), &[0], &[0], &[-1, 0, 1]);
        assert_eq!(table2().len(), 9);
    }

    #[test]
    fn smoothing_footprints_match_table3() {
        assert_fp(&t3_p1(), &[-2, -1, 0, 1, 2], &[0], &[0]);
        assert_fp(&t3_p2(), &[-2, -1, 0, 1, 2], &[-2, -1, 0, 1, 2], &[0]);
    }

    #[test]
    fn unions_have_expected_extents() {
        let a = adaptation_union();
        assert_eq!(a.required_halo(Axis::X), (3, 3));
        assert_eq!(a.required_halo(Axis::Y), (1, 1));
        assert_eq!(a.required_halo(Axis::Z), (0, 1));
        let l = advection_union();
        assert_eq!(l.required_halo(Axis::X), (3, 3));
        assert_eq!(l.required_halo(Axis::Y), (1, 1));
        assert_eq!(l.required_halo(Axis::Z), (1, 1));
        let s = smoothing_union();
        assert_eq!(s.required_halo(Axis::X), (2, 2));
        assert_eq!(s.required_halo(Axis::Y), (2, 2));
        assert_eq!(s.required_halo(Axis::Z), (0, 0));
    }

    #[test]
    fn ca_halo_depth_scales_with_m() {
        // 3M adaptation sweeps, each of y-extent 1 → y halo 3M (+2 smoothing)
        let (ylo, yhi) = ca_halo_extent(3, Axis::Y);
        assert_eq!((ylo, yhi), (11, 11));
        let (ylo1, _) = ca_halo_extent(1, Axis::Y);
        assert_eq!(ylo1, 5);
        // z: 3M deep on both sides (Figure 4) — the implemented adaptation
        // sweep couples to k±1 through the vertical prefix integrals
        let (zlo, zhi) = ca_halo_extent(3, Axis::Z);
        assert_eq!((zlo, zhi), (9, 9));
    }

    #[test]
    fn per_sweep_union_is_algorithm1_halo() {
        let u = per_sweep_union();
        assert_eq!(u.required_halo(Axis::X), (3, 3));
        assert_eq!(u.required_halo(Axis::Y), (2, 2)); // smoothing dominates
        assert_eq!(u.required_halo(Axis::Z), (1, 1));
    }
}
