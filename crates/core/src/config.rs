//! Model configuration.

use agcm_mesh::{LatLonGrid, MeshError};

/// Configuration of one dynamical-core run.
///
/// Defaults follow the paper's evaluation setup (§5.1): `M = 3` nonlinear
/// iterations per step, adaptation sub-step `Δt₁` much smaller than the
/// advection step `Δt₂`, Fourier filtering poleward of 70°, and Held–Suarez
/// forcing for the idealized dry test.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Longitude points.
    pub nx: usize,
    /// Latitude rows.
    pub ny: usize,
    /// Vertical σ levels.
    pub nz: usize,
    /// Adaptation (gravity-wave) sub-step `Δt₁` \[s\].
    pub dt1: f64,
    /// Advection step `Δt₂` \[s\] (`Δt₁ ≪ Δt₂`).
    pub dt2: f64,
    /// Number of nonlinear iterations `M` of the adaptation process per step.
    pub m_iters: usize,
    /// Critical latitude of the Fourier polar filter \[degrees\].
    pub filter_cutoff_deg: f64,
    /// Smoothing strength `β` of the `P₁`/`P₂` operators (0 disables).
    pub smooth_beta: f64,
    /// Apply Held–Suarez forcing each step (the H-S benchmark of §5.1).
    pub held_suarez: bool,
}

impl ModelConfig {
    /// The paper's 50 km evaluation configuration
    /// (`n_x × n_y × n_z = 720 × 360 × 30`, `M = 3`).
    pub fn paper_50km() -> Self {
        ModelConfig {
            nx: 720,
            ny: 360,
            nz: 30,
            dt1: 60.0,
            dt2: 600.0,
            m_iters: 3,
            filter_cutoff_deg: 70.0,
            smooth_beta: 0.1,
            held_suarez: true,
        }
    }

    /// A small configuration for tests: coarse mesh, short steps.
    pub fn test_small() -> Self {
        ModelConfig {
            nx: 16,
            ny: 10,
            nz: 4,
            dt1: 20.0,
            dt2: 200.0,
            m_iters: 3,
            filter_cutoff_deg: 60.0,
            smooth_beta: 0.1,
            held_suarez: false,
        }
    }

    /// A slightly larger configuration exercising deeper decompositions.
    pub fn test_medium() -> Self {
        ModelConfig {
            nx: 24,
            ny: 16,
            nz: 8,
            dt1: 20.0,
            dt2: 200.0,
            m_iters: 3,
            filter_cutoff_deg: 60.0,
            smooth_beta: 0.1,
            held_suarez: false,
        }
    }

    /// Build the global grid of this configuration.
    pub fn grid(&self) -> Result<LatLonGrid, MeshError> {
        LatLonGrid::new(self.nx, self.ny, self.nz)
    }

    /// Mesh extents `(nx, ny, nz)`.
    pub fn extents(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_evaluation_section() {
        let c = ModelConfig::paper_50km();
        assert_eq!(c.extents(), (720, 360, 30));
        assert_eq!(c.m_iters, 3);
        assert!(c.dt1 < c.dt2, "Δt₁ ≪ Δt₂");
        assert!(c.held_suarez);
        assert!(c.grid().is_ok());
    }

    #[test]
    fn test_configs_are_valid() {
        assert!(ModelConfig::test_small().grid().is_ok());
        assert!(ModelConfig::test_medium().grid().is_ok());
    }
}
