//! # agcm-comm — simulated MPI runtime + communication cost model
//!
//! A thread-backed message-passing runtime with MPI-like semantics
//! (non-blocking buffered sends, tag matching, communicator contexts,
//! collectives) plus per-rank traffic statistics and an α–β–γ cost model.
//!
//! Together these substitute for MPI-on-Tianhe-2 in the reproduction of
//! Xiao et al. (ICPP 2018): the runtime executes the real data movement of
//! the dynamical core at small rank counts (validated bit-for-bit against a
//! serial reference), while the cost model converts the *same* per-rank
//! traffic into predicted wall time at the paper's 128–1024 rank scales.
//! See `DESIGN.md` §2 for the substitution argument.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collective;
pub mod env;
pub mod error;
pub mod fault;
pub mod fit;
#[cfg(loom)]
mod loom_model;
pub mod model;
pub mod runtime;
pub mod stats;
pub mod telemetry;
pub mod transport;

pub use collective::{AllreduceAlgo, ReduceOp};
pub use env::{parse_env, parse_env_or, EnvError};
pub use error::{CommError, CommResult};
pub use fault::{
    checksum, checksum_bytes, splitmix64, FaultAction, FaultEvent, FaultKind, FaultPlan, FaultRule,
    FaultSite,
};
pub use fit::{fit_alpha_beta, fit_gamma, CommFit, ExchangeSample, FitResidual, FitTerms};
pub use model::{p2p_only_delta, CostModel};
pub use runtime::{default_timeout, Communicator, Universe, FRAME_WORDS};
pub use stats::{CollectiveEvent, CollectiveKind, CommStats, FaultSnapshot, StatsSnapshot};
pub use telemetry::RankTelemetry;
pub use transport::{
    Endpoint, Envelope, MpscTransport, SocketTransport, Transport, WireStats, WIRE_OVERHEAD_BYTES,
};
