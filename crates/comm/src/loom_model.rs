//! `loom`-based concurrency model of the runtime's handshake primitives.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` with the `loom` crate
//! vendored (it is not available in the offline build environment; the
//! exhaustive interleaving explorer in `tests/interleavings.rs` is the
//! always-on fallback covering the same matching semantics at the message
//! level).  Under loom, these models check the *memory-ordering* level the
//! explorer abstracts away: every permitted reordering of the channel
//! hand-off and the unexpected-queue publication.

#[cfg(test)]
mod tests {
    use loom::sync::mpsc::channel;
    use loom::sync::{Arc, Mutex};
    use loom::thread;

    /// The send/recv hand-off: an eager send into the channel must be
    /// visible to a receive that drains it, under every memory ordering.
    #[test]
    fn eager_send_handoff_is_visible() {
        loom::model(|| {
            let (tx, rx) = channel::<(u32, Vec<f64>)>();
            let t = thread::spawn(move || {
                tx.send((7, vec![1.0, 2.0])).unwrap();
            });
            let (tag, data) = rx.recv().unwrap();
            assert_eq!(tag, 7);
            assert_eq!(data.len(), 2);
            t.join().unwrap();
        });
    }

    /// Two producers into one mailbox with an unexpected-message queue:
    /// matching by tag must never lose or duplicate a message regardless
    /// of arrival interleaving — the `Mailbox::pending` invariant.
    #[test]
    fn pending_queue_never_loses_messages() {
        loom::model(|| {
            let (tx, rx) = channel::<(usize, u32)>();
            let tx2 = tx.clone();
            let a = thread::spawn(move || tx.send((1, 0xA)).unwrap());
            let b = thread::spawn(move || tx2.send((2, 0xB)).unwrap());
            let pending = Mutex::new(Vec::new());
            // receive tag 0xB first, then 0xA: park non-matches
            for want in [0xB_u32, 0xA] {
                let mut got = None;
                let mut pend = pending.lock().unwrap();
                if let Some(pos) = pend.iter().position(|&(_, t)| t == want) {
                    got = Some(pend.remove(pos));
                }
                drop(pend);
                while got.is_none() {
                    let env = rx.recv().unwrap();
                    if env.1 == want {
                        got = Some(env);
                    } else {
                        pending.lock().unwrap().push(env);
                    }
                }
            }
            assert!(pending.lock().unwrap().is_empty());
            a.join().unwrap();
            b.join().unwrap();
        });
    }

    /// The collective rendezvous skeleton (leaves -> root -> leaves) is
    /// deadlock-free under every schedule loom can produce.
    #[test]
    fn gather_bcast_rendezvous_completes() {
        loom::model(|| {
            let (to_root_tx, to_root_rx) = channel::<usize>();
            let from_root: Arc<
                [(
                    loom::sync::mpsc::Sender<usize>,
                    Mutex<Option<loom::sync::mpsc::Receiver<usize>>>,
                ); 2],
            > = Arc::new(std::array::from_fn(|_| {
                let (tx, rx) = channel();
                (tx, Mutex::new(Some(rx)))
            }));
            let mut leaves = Vec::new();
            for leaf in 0..2 {
                let tx = to_root_tx.clone();
                let fr = Arc::clone(&from_root);
                leaves.push(thread::spawn(move || {
                    tx.send(leaf).unwrap();
                    let rx = fr[leaf].1.lock().unwrap().take().unwrap();
                    rx.recv().unwrap()
                }));
            }
            let mut sum = 0;
            for _ in 0..2 {
                sum += to_root_rx.recv().unwrap();
            }
            for leaf in 0..2 {
                from_root[leaf].0.send(sum).unwrap();
            }
            for l in leaves {
                assert_eq!(l.join().unwrap(), 1);
            }
        });
    }
}
