//! Strict parsing of `AGCM_*` environment variables.
//!
//! Every runtime knob read from the environment goes through this module.
//! The original readers used `.ok().and_then(parse).unwrap_or(default)`
//! chains, which silently swallowed typos: `AGCM_THREADS=8x` ran
//! single-threaded, `AGCM_COMM_TIMEOUT_MS=30s` silently fell back to the
//! 30 s default, and a malformed `AGCM_FAULT_SEED` replayed the *default*
//! fault schedule instead of the requested one — the worst possible failure
//! mode for knobs whose whole point is reproducibility.  Here a set-but-
//! malformed value is a loud, typed error; only a genuinely *unset*
//! variable falls back to its default.

use std::fmt;
use std::str::FromStr;

/// A set-but-unusable environment variable: the name, the offending value,
/// and why it was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvError {
    /// Variable name, e.g. `AGCM_THREADS`.
    pub name: String,
    /// The raw value found in the environment.
    pub value: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: {} (unset the variable to use the default)",
            self.name, self.value, self.reason
        )
    }
}

impl std::error::Error for EnvError {}

/// Parse an optional environment variable strictly.
///
/// * unset → `Ok(None)`;
/// * set to a value that parses (after trimming surrounding whitespace) →
///   `Ok(Some(v))`;
/// * set but empty, whitespace-only, or unparsable → `Err(EnvError)`.
pub fn parse_env<T>(name: &str) -> Result<Option<T>, EnvError>
where
    T: FromStr,
    T::Err: fmt::Display,
{
    let Ok(raw) = std::env::var(name) else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(EnvError {
            name: name.to_string(),
            value: raw.clone(),
            reason: "empty value".to_string(),
        });
    }
    trimmed.parse::<T>().map(Some).map_err(|e| EnvError {
        name: name.to_string(),
        value: raw.clone(),
        reason: e.to_string(),
    })
}

/// Like [`parse_env`] but panics on a malformed value, naming the variable
/// and the offending value.  Used at initialization sites where there is no
/// error channel to the caller (thread pools, lazily-initialized timeouts):
/// failing loudly beats silently running with a default the user did not
/// ask for.
pub fn parse_env_or<T>(name: &str, default: T) -> T
where
    T: FromStr,
    T::Err: fmt::Display,
{
    match parse_env(name) {
        Ok(v) => v.unwrap_or(default),
        Err(e) => panic!("{e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global environment mutations: each test uses its own unique
    // variable name so concurrently running tests cannot race.

    #[test]
    fn unset_is_none() {
        assert_eq!(parse_env::<u64>("AGCM_TEST_ENV_UNSET"), Ok(None));
        assert_eq!(parse_env_or("AGCM_TEST_ENV_UNSET", 7u64), 7);
    }

    #[test]
    fn valid_value_parses() {
        std::env::set_var("AGCM_TEST_ENV_VALID", "42");
        assert_eq!(parse_env::<usize>("AGCM_TEST_ENV_VALID"), Ok(Some(42)));
        assert_eq!(parse_env_or("AGCM_TEST_ENV_VALID", 0usize), 42);
    }

    #[test]
    fn surrounding_whitespace_is_trimmed() {
        std::env::set_var("AGCM_TEST_ENV_TRIM", "  1500\n");
        assert_eq!(parse_env::<u64>("AGCM_TEST_ENV_TRIM"), Ok(Some(1500)));
    }

    #[test]
    fn malformed_value_is_an_error() {
        std::env::set_var("AGCM_TEST_ENV_BAD", "8x");
        let err = parse_env::<usize>("AGCM_TEST_ENV_BAD").unwrap_err();
        assert_eq!(err.name, "AGCM_TEST_ENV_BAD");
        assert_eq!(err.value, "8x");
        assert!(err.to_string().contains("8x"), "error names the value");
    }

    #[test]
    fn empty_value_is_an_error() {
        std::env::set_var("AGCM_TEST_ENV_EMPTY", "");
        let err = parse_env::<u64>("AGCM_TEST_ENV_EMPTY").unwrap_err();
        assert_eq!(err.reason, "empty value");
    }

    #[test]
    fn whitespace_only_value_is_an_error() {
        std::env::set_var("AGCM_TEST_ENV_WS", " \t ");
        let err = parse_env::<u64>("AGCM_TEST_ENV_WS").unwrap_err();
        assert_eq!(err.reason, "empty value");
    }

    #[test]
    fn negative_into_unsigned_is_an_error() {
        std::env::set_var("AGCM_TEST_ENV_NEG", "-3");
        assert!(parse_env::<u64>("AGCM_TEST_ENV_NEG").is_err());
    }

    #[test]
    #[should_panic(expected = "AGCM_TEST_ENV_PANIC")]
    fn parse_env_or_panics_with_variable_name() {
        std::env::set_var("AGCM_TEST_ENV_PANIC", "not-a-number");
        let _ = parse_env_or("AGCM_TEST_ENV_PANIC", 1u64);
    }
}
