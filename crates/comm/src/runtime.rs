//! The message-passing runtime: a simulated MPI.
//!
//! A [`Universe`] runs `p` ranks as OS threads.  Each rank gets a
//! [`Communicator`] with MPI-like semantics:
//!
//! * **buffered, non-blocking sends** ([`Communicator::send`]) — the payload
//!   is copied into the destination's mailbox immediately, like `MPI_Isend`
//!   with an eager protocol; computation can proceed while messages are in
//!   flight, which is what the paper's overlap scheme (§4.3.1) relies on,
//! * **tag- and source-matched receives** ([`Communicator::recv`]) with an
//!   unexpected-message queue, so out-of-order arrival is handled exactly as
//!   MPI does,
//! * **deadlock detection**: a receive that cannot be matched within the
//!   configurable timeout returns [`CommError::DeadlockTimeout`] instead of
//!   hanging the test suite,
//! * communicator **contexts**: messages from a split sub-communicator can
//!   never be matched by receives on the parent, mirroring MPI context ids.
//!
//! The runtime transfers real data (the dynamical core built on it is
//! checked bit-for-bit against a serial reference); the wall-clock cost of
//! running at `p = 1024` is instead *modelled* (see [`crate::model`]) from
//! the traffic this runtime counts, as explained in `DESIGN.md`.

use crate::error::{CommError, CommResult};
use crate::stats::CommStats;
use agcm_obs as obs;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Default deadlock-detection timeout: `AGCM_COMM_TIMEOUT_MS` (milliseconds)
/// if set in the environment, otherwise 30 s.  Tests that exercise failure
/// paths should either set the env var for the whole run or call
/// [`Communicator::set_timeout`] / [`Universe::run_with_timeout`] so
/// expected deadlocks fail in milliseconds.
pub fn default_timeout() -> Duration {
    static MS: OnceLock<u64> = OnceLock::new();
    let ms = *MS.get_or_init(|| {
        std::env::var("AGCM_COMM_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30_000)
    });
    Duration::from_millis(ms)
}

/// Tags with this bit set are reserved for collectives.
pub(crate) const COLLECTIVE_TAG_BIT: u32 = 0x8000_0000;

/// Message-latency histogram: time a rank spends blocked in `recv` waiting
/// for the matching message (only sampled while tracing is enabled, so the
/// hot path pays one relaxed load).
fn recv_wait_hist() -> &'static Arc<obs::Histogram> {
    static H: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| obs::Registry::global().histogram("comm.recv_wait_ns"))
}

/// A message in flight.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub ctx: u64,
    pub src_global: usize,
    pub tag: u32,
    pub data: Vec<f64>,
}

pub(crate) struct Shared {
    senders: Vec<Sender<Envelope>>,
    next_ctx: AtomicU64,
}

/// A set of ranks executing one SPMD program.
pub struct Universe {
    size: usize,
}

impl Universe {
    /// Run `f` on `p` ranks (threads).  Returns the per-rank results in rank
    /// order.  Panics in any rank are propagated (the whole run fails).
    pub fn run<T, F>(p: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Communicator) -> T + Sync,
    {
        assert!(p >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            senders,
            next_ctx: AtomicU64::new(1),
        });
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let f = &f;
                handles.push(scope.spawn(move || {
                    // tag trace events from this thread with its rank
                    obs::set_rank(rank);
                    let mut comm = Communicator::world(shared, rank, p, rx);
                    f(&mut comm)
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => out[rank] = Some(v),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
        out.into_iter().map(|v| v.expect("joined")).collect()
    }

    /// Like [`Universe::run`], but with an explicit deadlock-detection
    /// timeout applied to every rank's world communicator before `f` runs.
    pub fn run_with_timeout<T, F>(p: usize, timeout: Duration, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Communicator) -> T + Sync,
    {
        Self::run(p, move |comm| {
            comm.set_timeout(timeout);
            f(comm)
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// Per-thread mailbox: the raw channel plus the unexpected-message queue.
pub(crate) struct Mailbox {
    rx: Receiver<Envelope>,
    pending: RefCell<Vec<Envelope>>,
}

impl Mailbox {
    fn new(rx: Receiver<Envelope>) -> Self {
        Mailbox {
            rx,
            pending: RefCell::new(Vec::new()),
        }
    }
}

/// A communication handle for one rank, scoped to a group of ranks and a
/// context (like an `MPI_Comm`).
///
/// Not `Send`: a communicator lives on the thread of its rank, exactly like
/// an MPI rank's communicator handle.
pub struct Communicator {
    shared: Arc<Shared>,
    mailbox: Rc<Mailbox>,
    ctx: u64,
    rank: usize,
    /// local rank -> global rank
    members: Arc<Vec<usize>>,
    timeout: Cell<Duration>,
    /// Collective sequence number (same on every rank of the communicator,
    /// because collectives are called in the same order by all of them).
    pub(crate) coll_seq: Cell<u64>,
    stats: CommStats,
}

impl Communicator {
    fn world(shared: Arc<Shared>, rank: usize, size: usize, rx: Receiver<Envelope>) -> Self {
        Communicator {
            shared,
            mailbox: Rc::new(Mailbox::new(rx)),
            ctx: 0,
            rank,
            members: Arc::new((0..size).collect()),
            timeout: Cell::new(default_timeout()),
            coll_seq: Cell::new(0),
            stats: CommStats::new(),
        }
    }

    /// This rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global (world) rank of a local rank.
    pub fn global_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Shared traffic counters of this rank (shared with sub-communicators).
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Change the deadlock-detection timeout (default: [`default_timeout`]).
    pub fn set_timeout(&self, t: Duration) {
        self.timeout.set(t);
    }

    /// The currently configured deadlock-detection timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout.get()
    }

    fn check_rank(&self, r: usize) -> CommResult<()> {
        if r >= self.size() {
            Err(CommError::InvalidRank {
                rank: r,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    /// Buffered non-blocking send of `data` to local rank `dest` with `tag`
    /// (user tags must not use the collective bit).
    pub fn send(&self, dest: usize, tag: u32, data: &[f64]) -> CommResult<()> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must leave the top bit clear"
        );
        self.send_raw(dest, tag, data.to_vec())
    }

    pub(crate) fn send_raw(&self, dest: usize, tag: u32, data: Vec<f64>) -> CommResult<()> {
        self.check_rank(dest)?;
        let peer = self.members[dest];
        let n = data.len();
        let env = Envelope {
            ctx: self.ctx,
            src_global: self.members[self.rank],
            tag,
            data,
        };
        self.shared.senders[peer]
            .send(env)
            .map_err(|_| CommError::PeerGone { peer })?;
        self.stats.record_send(n);
        Ok(())
    }

    /// Blocking receive of the message from local rank `src` with `tag`.
    pub fn recv(&self, src: usize, tag: u32) -> CommResult<Vec<f64>> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must leave the top bit clear"
        );
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw(&self, src: usize, tag: u32) -> CommResult<Vec<f64>> {
        self.check_rank(src)?;
        let want_src = self.members[src];
        // 1. check the unexpected-message queue
        {
            let mut pending = self.mailbox.pending.borrow_mut();
            if let Some(pos) = pending
                .iter()
                .position(|e| e.ctx == self.ctx && e.src_global == want_src && e.tag == tag)
            {
                let env = pending.swap_remove(pos);
                self.stats.record_recv(env.data.len());
                return Ok(env.data);
            }
        }
        // 2. drain the channel until the match arrives
        let entered = Instant::now();
        let deadline = entered + self.timeout.get();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::DeadlockTimeout {
                    rank: self.rank,
                    src,
                    tag,
                    waited: self.timeout.get(),
                });
            }
            match self.mailbox.rx.recv_timeout(remaining) {
                Ok(env) => {
                    if env.ctx == self.ctx && env.src_global == want_src && env.tag == tag {
                        if obs::enabled() {
                            recv_wait_hist().record(entered.elapsed().as_nanos() as u64);
                        }
                        self.stats.record_recv(env.data.len());
                        return Ok(env.data);
                    }
                    self.mailbox.pending.borrow_mut().push(env);
                }
                Err(_) => {
                    return Err(CommError::DeadlockTimeout {
                        rank: self.rank,
                        src,
                        tag,
                        waited: self.timeout.get(),
                    });
                }
            }
        }
    }

    /// Receive into a preallocated buffer; errors if the message length
    /// differs from `buf.len()`.
    pub fn recv_into(&self, src: usize, tag: u32, buf: &mut [f64]) -> CommResult<()> {
        let data = self.recv(src, tag)?;
        if data.len() != buf.len() {
            return Err(CommError::SizeMismatch {
                expected: buf.len(),
                got: data.len(),
            });
        }
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// Blocking send-and-receive with (possibly different) partners, safe
    /// against head-of-line deadlock thanks to buffered sends.
    pub fn sendrecv(
        &self,
        dest: usize,
        send_tag: u32,
        data: &[f64],
        src: usize,
        recv_tag: u32,
    ) -> CommResult<Vec<f64>> {
        self.send(dest, send_tag, data)?;
        self.recv(src, recv_tag)
    }

    /// Create a sub-communicator per distinct `color`; ranks are ordered by
    /// `key` (ties broken by parent rank).  Collective over the parent.
    pub fn split(&mut self, color: usize, key: usize) -> CommResult<Communicator> {
        // Gather (color, key, parent_rank) from everyone.
        let mine = [color as f64, key as f64, self.rank as f64];
        let all = self.allgather(&mine)?;
        let mut triples: Vec<(usize, usize, usize)> = all
            .chunks_exact(3)
            .map(|c| (c[0] as usize, c[1] as usize, c[2] as usize))
            .collect();
        triples.sort_by_key(|&(c, k, r)| (c, k, r));
        // Distinct colors in sorted order determine ctx allocation.
        let mut colors: Vec<usize> = triples.iter().map(|t| t.0).collect();
        colors.dedup();
        let num_groups = colors.len();
        // Parent rank 0 allocates a contiguous ctx block and broadcasts it.
        let mut base = [0.0f64];
        if self.rank == 0 {
            base[0] = self
                .shared
                .next_ctx
                .fetch_add(num_groups as u64, Ordering::Relaxed) as f64;
        }
        self.bcast(0, &mut base)?;
        let base = base[0] as u64;
        // Both lookups are guaranteed by construction (our own triple is in
        // the allgather result); corruption of the exchanged triples must
        // surface as a typed error, not a panic inside the runtime.
        let color_index = colors.iter().position(|&c| c == color).ok_or_else(|| {
            CommError::CollectiveMismatch(format!("split: own color {color} missing from gather"))
        })?;
        let members: Vec<usize> = triples
            .iter()
            .filter(|t| t.0 == color)
            .map(|t| self.members[t.2])
            .collect();
        let my_global = self.members[self.rank];
        let new_rank = members
            .iter()
            .position(|&g| g == my_global)
            .ok_or_else(|| {
                CommError::CollectiveMismatch(format!(
                    "split: rank {} missing from its color group {color}",
                    self.rank
                ))
            })?;
        Ok(Communicator {
            shared: Arc::clone(&self.shared),
            mailbox: Rc::clone(&self.mailbox),
            ctx: base + color_index as u64,
            rank: new_rank,
            members: Arc::new(members),
            timeout: Cell::new(self.timeout.get()),
            coll_seq: Cell::new(0),
            stats: self.stats.clone(),
        })
    }

    /// Next collective tag (sequence-stamped so consecutive collectives on
    /// the same communicator cannot cross-match).
    pub(crate) fn next_coll_tag(&self, round: u32) -> u32 {
        debug_assert!(round < 1 << 12);
        let seq = self.coll_seq.get();
        COLLECTIVE_TAG_BIT | (((seq & 0x7FFFF) as u32) << 12) | round
    }

    /// Advance the collective sequence number; call once per collective.
    pub(crate) fn bump_coll_seq(&self) {
        self.coll_seq.set(self.coll_seq.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = Universe::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, &[comm.rank() as f64]).unwrap();
            comm.recv(prev, 1).unwrap()[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn single_rank_universe() {
        let r = Universe::run(1, |comm| comm.rank() + comm.size());
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn out_of_order_matching() {
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[7.0]).unwrap();
                comm.send(1, 8, &[8.0]).unwrap();
                comm.send(1, 9, &[9.0]).unwrap();
                0.0
            } else {
                // receive in reverse tag order: unexpected-queue must stash
                let a = comm.recv(0, 9).unwrap()[0];
                let b = comm.recv(0, 8).unwrap()[0];
                let c = comm.recv(0, 7).unwrap()[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(results[1], 987.0);
    }

    #[test]
    fn deadlock_detection() {
        let results = Universe::run(2, |comm| {
            comm.set_timeout(Duration::from_millis(50));
            if comm.rank() == 1 {
                comm.recv(0, 42).err()
            } else {
                None
            }
        });
        match &results[1] {
            Some(CommError::DeadlockTimeout {
                src: 0, tag: 42, ..
            }) => {}
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn run_with_timeout_applies_to_all_ranks() {
        let results = Universe::run_with_timeout(2, Duration::from_millis(20), |comm| {
            assert_eq!(comm.timeout(), Duration::from_millis(20));
            if comm.rank() == 1 {
                comm.recv(0, 99).err()
            } else {
                None
            }
        });
        match &results[1] {
            Some(CommError::DeadlockTimeout {
                src: 0, tag: 99, ..
            }) => {}
            other => panic!("expected fast deadlock, got {other:?}"),
        }
    }

    #[test]
    fn size_mismatch_detected() {
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0, 2.0, 3.0]).unwrap();
                None
            } else {
                let mut buf = [0.0; 2];
                comm.recv_into(0, 1, &mut buf).err()
            }
        });
        assert_eq!(
            results[1],
            Some(CommError::SizeMismatch {
                expected: 2,
                got: 3
            })
        );
    }

    #[test]
    fn invalid_rank_rejected() {
        let results = Universe::run(2, |comm| comm.send(5, 0, &[1.0]).err());
        assert_eq!(
            results[0],
            Some(CommError::InvalidRank { rank: 5, size: 2 })
        );
    }

    #[test]
    fn sendrecv_exchanges() {
        let results = Universe::run(2, |comm| {
            let other = 1 - comm.rank();
            comm.sendrecv(other, 3, &[comm.rank() as f64 + 10.0], other, 3)
                .unwrap()[0]
        });
        assert_eq!(results, vec![11.0, 10.0]);
    }

    #[test]
    fn stats_count_p2p() {
        let results = Universe::run(2, |comm| {
            let other = 1 - comm.rank();
            comm.send(other, 1, &[0.0; 16]).unwrap();
            comm.recv(other, 1).unwrap();
            comm.stats().snapshot()
        });
        for s in results {
            assert_eq!(s.p2p_sends, 1);
            assert_eq!(s.p2p_send_elems, 16);
            assert_eq!(s.p2p_recvs, 1);
        }
    }

    #[test]
    fn overlap_send_compute_recv() {
        // the paper's overlap pattern: post sends, compute, then receive
        let results = Universe::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, &[comm.rank() as f64]).unwrap();
            // "inner computation" happens here — no recv posted yet
            let local: f64 = (0..1000).map(|i| i as f64).sum();
            let remote = comm.recv(prev, 1).unwrap()[0];
            local + remote
        });
        let local: f64 = (0..1000).map(|i| i as f64).sum();
        assert_eq!(results[0], local + 3.0);
    }

    #[test]
    fn split_isolates_contexts() {
        // even/odd sub-communicators exchange on the same tags concurrently;
        // contexts must keep the traffic separate
        let results = Universe::run(4, |comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank()).unwrap();
            assert_eq!(sub.size(), 2);
            let other = 1 - sub.rank();
            sub.send(other, 1, &[comm.rank() as f64 * 2.0]).unwrap();
            sub.recv(other, 1).unwrap()[0]
        });
        // world ranks: 0<->2 (colors 0), 1<->3 (colors 1)
        assert_eq!(results, vec![4.0, 6.0, 0.0, 2.0]);
    }

    #[test]
    fn split_key_reorders() {
        let results = Universe::run(3, |comm| {
            // reverse order by key
            let sub = comm.split(0, comm.size() - comm.rank()).unwrap();
            sub.rank()
        });
        assert_eq!(results, vec![2, 1, 0]);
    }
}
