//! The message-passing runtime: a simulated MPI.
//!
//! A [`Universe`] runs `p` ranks as OS threads.  Each rank gets a
//! [`Communicator`] with MPI-like semantics:
//!
//! * **buffered, non-blocking sends** ([`Communicator::send`]) — the payload
//!   is copied into the destination's mailbox immediately, like `MPI_Isend`
//!   with an eager protocol; computation can proceed while messages are in
//!   flight, which is what the paper's overlap scheme (§4.3.1) relies on,
//! * **tag- and source-matched receives** ([`Communicator::recv`]) with an
//!   unexpected-message queue, so out-of-order arrival is handled exactly as
//!   MPI does,
//! * **deadlock detection**: a receive that cannot be matched within the
//!   configurable timeout returns [`CommError::DeadlockTimeout`] instead of
//!   hanging the test suite,
//! * communicator **contexts**: messages from a split sub-communicator can
//!   never be matched by receives on the parent, mirroring MPI context ids.
//!
//! All of those semantics — plus [`crate::CommStats`] accounting, fault
//! injection and tracing — live *above* the pluggable
//! [`crate::transport::Transport`] trait, so they are identical
//! over thread-backed channels ([`crate::transport::MpscTransport`], the
//! default) and over real OS byte streams
//! ([`crate::transport::SocketTransport`], one process per rank via the
//! `agcm-run` launcher).
//!
//! The runtime transfers real data (the dynamical core built on it is
//! checked bit-for-bit against a serial reference); the wall-clock cost of
//! running at `p = 1024` is instead *modelled* (see [`crate::model`]) from
//! the traffic this runtime counts, as explained in `DESIGN.md`.

use crate::error::{CommError, CommResult};
use crate::fault::{self, FaultAction, FaultEvent, FaultKind, FaultPlan, FaultSite};
use crate::stats::CommStats;
use crate::transport::{
    Endpoint, Envelope, MpscTransport, SocketTransport, Transport, WireStats, POISON_CTX,
};
use agcm_obs as obs;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default deadlock-detection timeout: `AGCM_COMM_TIMEOUT_MS` (milliseconds)
/// if set in the environment, otherwise 30 s.  A malformed value panics (see
/// [`crate::env`]).  Tests that exercise failure paths should either set the
/// env var for the whole run or call [`Communicator::set_timeout`] /
/// [`Universe::run_with_timeout`] so expected deadlocks fail in
/// milliseconds.
pub fn default_timeout() -> Duration {
    static MS: OnceLock<u64> = OnceLock::new();
    let ms = *MS.get_or_init(|| crate::env::parse_env_or("AGCM_COMM_TIMEOUT_MS", 30_000));
    Duration::from_millis(ms)
}

/// Tags with this bit set are reserved for collectives.
pub(crate) const COLLECTIVE_TAG_BIT: u32 = 0x8000_0000;

/// Trailer words appended by [`Communicator::send_framed`]:
/// `[payload_len, checksum_lo32, checksum_hi32]`, each stored as an
/// exactly-representable small `f64`.
pub const FRAME_WORDS: usize = 3;

/// Message-latency histogram: time a rank spends blocked in `recv` waiting
/// for the matching message (only sampled while tracing is enabled, so the
/// hot path pays one relaxed load).
fn recv_wait_hist() -> &'static Arc<obs::Histogram> {
    static H: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| obs::Registry::global().histogram("comm.recv_wait_ns"))
}

/// Per-rank fault-injection state, shared (via `Rc`) by every communicator
/// split from the one the plan was installed on, so the per-rank event
/// counter — the deterministic clock fault specs pin to — is global to the
/// rank, not per-communicator.
pub(crate) struct FaultCtx {
    plan: FaultPlan,
    /// Index of the next send/recv operation on this rank.
    event: Cell<u64>,
    /// Per-rule match counters backing `nth=` selectors.
    nth: RefCell<Vec<u64>>,
    /// Messages held back by `delay` faults: `(release_event, peer, env)`.
    held: RefCell<Vec<(u64, usize, Envelope)>>,
    /// Every fault fired so far, in firing order (the replayable schedule).
    log: RefCell<Vec<FaultEvent>>,
}

impl FaultCtx {
    fn new(plan: FaultPlan) -> Self {
        let n = plan.rules.len();
        FaultCtx {
            plan,
            event: Cell::new(0),
            nth: RefCell::new(vec![0; n]),
            held: RefCell::new(Vec::new()),
            log: RefCell::new(Vec::new()),
        }
    }
}

fn fault_metric_name(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Drop => "comm.fault.drop",
        FaultKind::Corrupt => "comm.fault.corrupt",
        FaultKind::Dup => "comm.fault.dup",
        FaultKind::Delay => "comm.fault.delay",
        FaultKind::Stall => "comm.fault.stall",
        FaultKind::Crash => "comm.fault.crash",
    }
}

/// A set of ranks executing one SPMD program.
pub struct Universe {
    size: usize,
}

impl Universe {
    /// Run `f` on `p` ranks (threads) over the in-memory transport.
    /// Returns the per-rank results in rank order.  Panics in any rank are
    /// propagated (the whole run fails).
    pub fn run<T, F>(p: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Communicator) -> T + Sync,
    {
        assert!(p >= 1, "need at least one rank");
        let mesh: Vec<Mutex<Option<MpscTransport>>> = MpscTransport::mesh(p)
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        run_scoped(
            p,
            |rank| {
                let tr = mesh[rank]
                    .lock()
                    .expect("mesh slot")
                    .take()
                    .expect("one transport per rank");
                Communicator::on_transport(Rc::new(tr))
            },
            f,
        )
    }

    /// Like [`Universe::run`], but every rank talks through its own
    /// [`SocketTransport`] at `endpoint` — real kernel byte streams between
    /// threads of this process.  Used by the cross-transport test suites
    /// and benches; the `agcm-run` launcher runs the same transport with
    /// one OS *process* per rank instead.
    pub fn run_sockets<T, F>(p: usize, endpoint: &Endpoint, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Communicator) -> T + Sync,
    {
        assert!(p >= 1, "need at least one rank");
        run_scoped(
            p,
            |rank| {
                let tr = SocketTransport::connect(rank, p, endpoint)
                    .unwrap_or_else(|e| panic!("rank {rank}: socket transport: {e}"));
                Communicator::on_transport(Rc::new(tr))
            },
            f,
        )
    }

    /// Like [`Universe::run`], but with an explicit deadlock-detection
    /// timeout applied to every rank's world communicator before `f` runs.
    pub fn run_with_timeout<T, F>(p: usize, timeout: Duration, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Communicator) -> T + Sync,
    {
        Self::run(p, move |comm| {
            comm.set_timeout(timeout);
            f(comm)
        })
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// Shared SPMD harness: one scoped thread per rank, a communicator built
/// *on* that thread (communicators are `!Send`), panics caught so peers
/// get poisoned (fail-fast [`CommError::PeerFailed`]) and re-thrown at
/// join.
fn run_scoped<T, F, S>(p: usize, setup: S, f: F) -> Vec<T>
where
    T: Send,
    S: Fn(usize) -> Communicator + Sync,
    F: Fn(&mut Communicator) -> T + Sync,
{
    let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let f = &f;
            let setup = &setup;
            handles.push(scope.spawn(move || {
                // tag trace events from this thread with its rank
                obs::set_rank(rank);
                let mut comm = setup(rank);
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut comm)));
                if r.is_err() {
                    comm.poison_peers();
                }
                r
            }));
        }
        let mut first_panic = None;
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(Ok(v)) => out[rank] = Some(v),
                Ok(Err(payload)) | Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    out.into_iter().map(|v| v.expect("joined")).collect()
}

/// Per-rank mailbox state above the transport: the unexpected-message
/// queue plus the sticky poison flag.
pub(crate) struct Mailbox {
    pending: RefCell<Vec<Envelope>>,
    /// Set when a poison envelope arrives: the global rank that panicked.
    /// Sticky — every subsequent receive fails fast with `PeerFailed`.
    poisoned: Cell<Option<usize>>,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            pending: RefCell::new(Vec::new()),
            poisoned: Cell::new(None),
        }
    }
}

/// A communication handle for one rank, scoped to a group of ranks and a
/// context (like an `MPI_Comm`).
///
/// Not `Send`: a communicator lives on the thread of its rank, exactly like
/// an MPI rank's communicator handle.
pub struct Communicator {
    transport: Rc<dyn Transport>,
    mailbox: Rc<Mailbox>,
    /// Next free slot in this world rank's private context-id space (shared
    /// by every communicator split from the same world handle).
    ctx_alloc: Rc<Cell<u64>>,
    ctx: u64,
    rank: usize,
    /// local rank -> global rank
    members: Arc<Vec<usize>>,
    timeout: Cell<Duration>,
    /// Collective sequence number (same on every rank of the communicator,
    /// because collectives are called in the same order by all of them).
    pub(crate) coll_seq: Cell<u64>,
    stats: CommStats,
    /// Fault-injection state, shared with every sub-communicator split off
    /// after [`Communicator::install_faults`].
    fault: Option<Rc<FaultCtx>>,
}

impl Communicator {
    /// The world communicator of this rank over an already-connected
    /// transport.  The fault plan (if `AGCM_FAULT_SPEC` is set) and the
    /// default deadlock timeout are read from the environment, exactly as
    /// for thread-backed worlds — chaos replays and timeouts are
    /// transport-independent.
    pub fn on_transport(transport: Rc<dyn Transport>) -> Self {
        let rank = transport.world_rank();
        let size = transport.world_size();
        Communicator {
            transport,
            mailbox: Rc::new(Mailbox::new()),
            ctx_alloc: Rc::new(Cell::new(1)),
            ctx: 0,
            rank,
            members: Arc::new((0..size).collect()),
            timeout: Cell::new(default_timeout()),
            coll_seq: Cell::new(0),
            stats: CommStats::new(),
            fault: FaultPlan::from_env().map(|p| Rc::new(FaultCtx::new(p))),
        }
    }

    /// This rank within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Global (world) rank of a local rank.
    pub fn global_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    /// Shared traffic counters of this rank (shared with sub-communicators).
    pub fn stats(&self) -> &CommStats {
        &self.stats
    }

    /// Wire-level byte/frame counters of the underlying transport (`None`
    /// on in-memory transports).  Unlike [`Communicator::stats`], these
    /// count *everything* that crosses the wire: checksum framing and
    /// redundant duplicate deliveries included.
    pub fn wire_stats(&self) -> Option<WireStats> {
        self.transport.wire_stats()
    }

    /// Short name of the underlying transport (`"mpsc"`, `"uds"`, `"tcp"`).
    pub fn transport_name(&self) -> &'static str {
        self.transport.name()
    }

    /// Change the deadlock-detection timeout (default: [`default_timeout`]).
    pub fn set_timeout(&self, t: Duration) {
        self.timeout.set(t);
    }

    /// The currently configured deadlock-detection timeout.
    pub fn timeout(&self) -> Duration {
        self.timeout.get()
    }

    fn check_rank(&self, r: usize) -> CommResult<()> {
        if r >= self.size() {
            Err(CommError::InvalidRank {
                rank: r,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    /// Buffered non-blocking send of `data` to local rank `dest` with `tag`
    /// (user tags must not use the collective bit).
    pub fn send(&self, dest: usize, tag: u32, data: &[f64]) -> CommResult<()> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must leave the top bit clear"
        );
        self.send_raw(dest, tag, data.to_vec())
    }

    pub(crate) fn send_raw(&self, dest: usize, tag: u32, data: Vec<f64>) -> CommResult<()> {
        self.check_rank(dest)?;
        let peer = self.members[dest];
        self.send_impl(peer, tag, data, 0)
    }

    /// Checksum-framed send: the payload travels with a
    /// `[len, checksum_lo, checksum_hi]` trailer that [`Self::recv_framed`]
    /// validates, turning silent in-flight corruption into a typed,
    /// retryable [`CommError::CorruptPayload`].  Traffic stats count the
    /// *logical* payload only, so framing does not perturb the certified
    /// communication counts.
    pub fn send_framed(&self, dest: usize, tag: u32, data: &[f64]) -> CommResult<()> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must leave the top bit clear"
        );
        self.check_rank(dest)?;
        let peer = self.members[dest];
        let ck = fault::checksum(data);
        let mut framed = Vec::with_capacity(data.len() + FRAME_WORDS);
        framed.extend_from_slice(data);
        framed.push(data.len() as f64);
        framed.push((ck & 0xFFFF_FFFF) as u32 as f64);
        framed.push((ck >> 32) as u32 as f64);
        self.send_impl(peer, tag, framed, FRAME_WORDS)
    }

    /// The shared send path: applies the fault plan (if any) and records
    /// the logical (`data.len() - frame_words`) element count.
    fn send_impl(
        &self,
        peer_global: usize,
        tag: u32,
        data: Vec<f64>,
        frame_words: usize,
    ) -> CommResult<()> {
        let n = data.len() - frame_words;
        let mut env = Envelope::new(self.ctx, self.members[self.rank], tag, data);
        let mut dup = false;
        match self.fault_tick(peer_global, tag) {
            None => {}
            Some(FaultAction::Drop) => env.drops = 1,
            Some(FaultAction::Corrupt { bit, elem_seed }) => {
                env.corrupt = 1;
                env.corrupt_bit = bit;
                env.corrupt_seed = elem_seed;
            }
            Some(FaultAction::Dup) => dup = true,
            Some(FaultAction::Delay { events }) => {
                // hold the message; it is released (possibly out of order)
                // once this rank's event counter passes the release point,
                // or at the latest when the last communicator drops
                let ctx = self.fault.as_ref().expect("delay fired without plan");
                let release = ctx.event.get() + events;
                ctx.held.borrow_mut().push((release, peer_global, env));
                self.stats.record_send(n);
                return Ok(());
            }
            Some(FaultAction::Stall { ms }) => std::thread::sleep(Duration::from_millis(ms)),
            Some(FaultAction::Crash) => panic!(
                "injected fault: crash at world rank {} (tag {tag:#x})",
                self.members[self.rank]
            ),
        }
        let redundant = dup.then(|| {
            let mut copy = env.clone();
            copy.redundant = true;
            copy
        });
        self.transport.send(peer_global, env)?;
        self.stats.record_send(n);
        if let Some(copy) = redundant {
            // the duplicate is best-effort and never counted
            let _ = self.transport.send(peer_global, copy);
        }
        Ok(())
    }

    /// Install a deterministic fault plan on this rank.  Shared with every
    /// sub-communicator split off *afterwards*; install before splitting.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        self.fault = Some(Rc::new(FaultCtx::new(plan)));
    }

    /// Every fault fired on this rank so far, in firing order.  Two runs
    /// with the same plan and program produce identical logs — the
    /// determinism contract chaos tests assert on (over *any* transport).
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.fault
            .as_ref()
            .map(|c| c.log.borrow().clone())
            .unwrap_or_default()
    }

    /// Advance the per-rank fault clock by one **send**, release due
    /// delayed messages, and decide whether a fault fires here.
    ///
    /// Only sends tick the clock: a receive may legitimately run more than
    /// once (retry after an injected drop/corruption — or after a spurious
    /// deadlock timeout on a loaded machine), so a clock that counted
    /// receives would drift between otherwise identical runs and break the
    /// byte-for-byte replay contract.  Sends are posted exactly once per
    /// logical operation, timing cannot change their count.
    fn fault_tick(&self, peer_global: usize, tag: u32) -> Option<FaultAction> {
        let ctx = self.fault.as_ref()?;
        let event = ctx.event.get();
        ctx.event.set(event + 1);
        self.flush_held(event + 1, false);
        let site = FaultSite {
            rank: self.members[self.rank],
            peer: peer_global,
            tag,
            user_tag: tag & COLLECTIVE_TAG_BIT == 0,
            event,
            phase: obs::current_phase(),
            is_send: true,
        };
        let action = {
            let mut nth = ctx.nth.borrow_mut();
            ctx.plan.decide(&site, &mut nth)?
        };
        let kind = match action {
            FaultAction::Drop => FaultKind::Drop,
            FaultAction::Corrupt { .. } => FaultKind::Corrupt,
            FaultAction::Dup => FaultKind::Dup,
            FaultAction::Delay { .. } => FaultKind::Delay,
            FaultAction::Stall { .. } => FaultKind::Stall,
            FaultAction::Crash => FaultKind::Crash,
        };
        self.stats.record_fault(kind);
        let name = fault_metric_name(kind);
        obs::Registry::global().counter(name).inc();
        if obs::enabled() {
            obs::record_value(name, event as f64);
        }
        ctx.log.borrow_mut().push(FaultEvent {
            kind,
            rank: site.rank,
            peer: peer_global,
            tag,
            event,
        });
        Some(action)
    }

    /// Send delayed messages whose release point has passed (`all`: every
    /// held message, used at teardown).
    fn flush_held(&self, now: u64, all: bool) {
        let Some(ctx) = self.fault.as_ref() else {
            return;
        };
        let mut held = ctx.held.borrow_mut();
        let mut i = 0;
        while i < held.len() {
            if all || held[i].0 <= now {
                let (_, peer, env) = held.swap_remove(i);
                let _ = self.transport.send(peer, env);
            } else {
                i += 1;
            }
        }
    }

    /// Notify every peer that this rank is dying (poison envelopes make
    /// their receives fail fast with [`CommError::PeerFailed`]).
    fn poison_peers(&self) {
        let me = self.members[self.rank];
        for g in 0..self.transport.world_size() {
            if g != me {
                let _ = self.transport.send(g, Envelope::poison(me));
            }
        }
    }

    /// Per-rank operation count for error context: the (send-only) fault
    /// clock when a plan is installed, otherwise the total p2p operations
    /// from the stats.
    fn events_so_far(&self) -> u64 {
        match &self.fault {
            Some(ctx) => ctx.event.get(),
            None => {
                let s = self.stats.snapshot();
                s.p2p_sends + s.p2p_recvs
            }
        }
    }

    /// Blocking receive of the message from local rank `src` with `tag`.
    pub fn recv(&self, src: usize, tag: u32) -> CommResult<Vec<f64>> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must leave the top bit clear"
        );
        self.recv_raw(src, tag)
    }

    pub(crate) fn recv_raw(&self, src: usize, tag: u32) -> CommResult<Vec<f64>> {
        self.recv_inner(src, tag, 0)
    }

    /// Checksum-validated receive of a [`Self::send_framed`] message
    /// carrying `expected` logical elements.  A corrupted or truncated
    /// frame returns [`CommError::CorruptPayload`]; because the runtime
    /// keeps the clean payload for injected corruption, a retry of the same
    /// receive can succeed (see [`crate::fault`]).
    pub fn recv_framed(&self, src: usize, tag: u32, expected: usize) -> CommResult<Vec<f64>> {
        assert!(
            tag & COLLECTIVE_TAG_BIT == 0,
            "user tags must leave the top bit clear"
        );
        let mut data = self.recv_inner(src, tag, FRAME_WORDS)?;
        if data.len() < FRAME_WORDS {
            return Err(CommError::CorruptPayload {
                src,
                tag,
                detail: format!("framed message of {} words has no trailer", data.len()),
            });
        }
        if data.len() != expected + FRAME_WORDS {
            return Err(CommError::SizeMismatch {
                expected,
                got: data.len() - FRAME_WORDS,
                src,
                tag,
            });
        }
        let trailer = data.split_off(data.len() - FRAME_WORDS);
        if trailer[0] != data.len() as f64 {
            return Err(CommError::CorruptPayload {
                src,
                tag,
                detail: format!(
                    "length word {} != payload length {}",
                    trailer[0],
                    data.len()
                ),
            });
        }
        // the trailer words are u32 values; `as` saturates on corrupted
        // garbage (NaN, negatives), which just fails the comparison below
        let stored = (trailer[1] as u32 as u64) | ((trailer[2] as u32 as u64) << 32);
        let computed = fault::checksum(&data);
        if stored != computed {
            return Err(CommError::CorruptPayload {
                src,
                tag,
                detail: format!("checksum {computed:#018x} != framed {stored:#018x}"),
            });
        }
        Ok(data)
    }

    /// The shared receive path.  Fails fast on poisoned mailboxes, honours
    /// injected drop/corrupt riders on matching envelopes, and records the
    /// logical (`len - frame_words`) element count.  Receives do **not**
    /// tick the fault clock (see [`Self::fault_tick`]): retried receives
    /// would make the clock timing-dependent.  They do release every held
    /// (delayed) message first — this rank is about to block, and a message
    /// held past the end of its send batch would deadlock the peer; the
    /// flush point is fixed by program order, so replay stays exact.
    fn recv_inner(&self, src: usize, tag: u32, frame_words: usize) -> CommResult<Vec<f64>> {
        self.check_rank(src)?;
        self.flush_held(0, true);
        let want_src = self.members[src];
        if let Some(peer) = self.mailbox.poisoned.get() {
            return Err(CommError::PeerFailed { peer });
        }
        let record = |env: &Envelope| {
            if !env.redundant {
                self.stats
                    .record_recv(env.data.len() - frame_words.min(env.data.len()));
            }
        };
        // 1. check the unexpected-message queue
        {
            let mut pending = self.mailbox.pending.borrow_mut();
            if let Some(pos) = pending
                .iter()
                .position(|e| e.ctx == self.ctx && e.src_global == want_src && e.tag == tag)
            {
                if pending[pos].drops > 0 {
                    // injected loss of this delivery; the payload stays
                    // queued so a later retry can still succeed.  Fail fast
                    // instead of sleeping out the timeout: recovery must
                    // cost one retry, not one deadlock-detection window —
                    // otherwise every rank waiting on this one races its
                    // own identical timeout while we sleep
                    pending[pos].drops -= 1;
                    return self.timeout_err(src, tag);
                } else if pending[pos].corrupt > 0 {
                    pending[pos].corrupt -= 1;
                    let env = &pending[pos];
                    record(env);
                    return Ok(env.corrupted_copy());
                } else {
                    let env = pending.swap_remove(pos);
                    record(&env);
                    return Ok(env.data);
                }
            }
        }
        // 2. drain the transport until the match arrives
        let entered = Instant::now();
        let deadline = entered + self.timeout.get();
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return self.timeout_err(src, tag);
            }
            match self.transport.recv(remaining) {
                Some(env) => {
                    if env.ctx == POISON_CTX {
                        self.mailbox.poisoned.set(Some(env.src_global));
                        return Err(CommError::PeerFailed {
                            peer: env.src_global,
                        });
                    }
                    if env.ctx == self.ctx && env.src_global == want_src && env.tag == tag {
                        let mut env = env;
                        if env.drops > 0 {
                            // injected loss: queue the payload for a retry
                            // and fail fast (see the pending-queue branch)
                            env.drops -= 1;
                            self.mailbox.pending.borrow_mut().push(env);
                            return self.timeout_err(src, tag);
                        }
                        if env.corrupt > 0 {
                            env.corrupt -= 1;
                            record(&env);
                            let data = env.corrupted_copy();
                            self.mailbox.pending.borrow_mut().push(env);
                            return Ok(data);
                        }
                        if obs::enabled() {
                            recv_wait_hist().record(entered.elapsed().as_nanos() as u64);
                        }
                        record(&env);
                        return Ok(env.data);
                    }
                    self.mailbox.pending.borrow_mut().push(env);
                }
                None => {
                    return self.timeout_err(src, tag);
                }
            }
        }
    }

    fn timeout_err(&self, src: usize, tag: u32) -> CommResult<Vec<f64>> {
        Err(CommError::DeadlockTimeout {
            rank: self.rank,
            src,
            tag,
            waited: self.timeout.get(),
            phase: obs::current_phase(),
            events_so_far: self.events_so_far(),
        })
    }

    /// Receive into a preallocated buffer; errors if the message length
    /// differs from `buf.len()`.
    pub fn recv_into(&self, src: usize, tag: u32, buf: &mut [f64]) -> CommResult<()> {
        let data = self.recv(src, tag)?;
        if data.len() != buf.len() {
            return Err(CommError::SizeMismatch {
                expected: buf.len(),
                got: data.len(),
                src,
                tag,
            });
        }
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// Drop every queued message that does not belong to this communicator's
    /// context (rollback hygiene: stale messages from an aborted step
    /// attempt must not survive into the re-run).  Messages for any of the
    /// `keep` communicators survive — the resilient runner passes its
    /// control communicator here so an in-flight control barrier can never
    /// be purged on the receiving side.  Poison envelopes still take
    /// effect.
    pub fn purge_other_contexts(&self, keep: &[&Communicator]) {
        let mut pending = self.mailbox.pending.borrow_mut();
        while let Some(env) = self.transport.try_recv() {
            if env.ctx == POISON_CTX {
                self.mailbox.poisoned.set(Some(env.src_global));
                continue;
            }
            pending.push(env);
        }
        pending.retain(|e| e.ctx == self.ctx || keep.iter().any(|c| c.ctx == e.ctx));
    }

    /// Jump the collective sequence to an epoch-derived base (must be
    /// called collectively with the same `epoch` on every rank).  After a
    /// rollback this guarantees post-recovery collective tags can never
    /// cross-match stragglers from the aborted attempt.
    pub fn resync_collectives(&self, epoch: u64) {
        self.coll_seq.set(epoch << 10);
    }

    /// Blocking send-and-receive with (possibly different) partners, safe
    /// against head-of-line deadlock thanks to buffered sends.
    pub fn sendrecv(
        &self,
        dest: usize,
        send_tag: u32,
        data: &[f64],
        src: usize,
        recv_tag: u32,
    ) -> CommResult<Vec<f64>> {
        self.send(dest, send_tag, data)?;
        self.recv(src, recv_tag)
    }

    /// Allocate a contiguous block of `n` context ids from this world
    /// rank's private id space.
    ///
    /// There is no cross-process shared counter in a socket-backed world,
    /// so context ids are namespaced by the *allocating* world rank:
    /// `((world_rank + 1) << 32) | counter`.  Two distinct communicators
    /// can only collide if the same allocator handed out the same counter
    /// value — impossible.  The salted ids are identical across transports
    /// (the mpsc world uses the same scheme), exceed every user context of
    /// the pre-salt scheme, and can never reach the poison id.
    fn alloc_ctx_block(&self, n: u64) -> u64 {
        let c = self.ctx_alloc.get();
        self.ctx_alloc.set(c + n);
        debug_assert!(c + n < 1 << 32, "context space exhausted");
        ((self.members[self.rank] as u64 + 1) << 32) | c
    }

    /// Create a sub-communicator per distinct `color`; ranks are ordered by
    /// `key` (ties broken by parent rank).  Collective over the parent.
    pub fn split(&mut self, color: usize, key: usize) -> CommResult<Communicator> {
        // Gather (color, key, parent_rank) from everyone.
        let mine = [color as f64, key as f64, self.rank as f64];
        let all = self.allgather(&mine)?;
        let mut triples: Vec<(usize, usize, usize)> = all
            .chunks_exact(3)
            .map(|c| (c[0] as usize, c[1] as usize, c[2] as usize))
            .collect();
        triples.sort_by_key(|&(c, k, r)| (c, k, r));
        // Distinct colors in sorted order determine ctx allocation.
        let mut colors: Vec<usize> = triples.iter().map(|t| t.0).collect();
        colors.dedup();
        let num_groups = colors.len();
        // Parent rank 0 allocates a contiguous ctx block from its own id
        // space and broadcasts the base (exactly representable as f64:
        // world ranks are far below 2^20, so the id fits in 52 bits).
        let mut base = [0.0f64];
        if self.rank == 0 {
            base[0] = self.alloc_ctx_block(num_groups as u64) as f64;
        }
        self.bcast(0, &mut base)?;
        let base = base[0] as u64;
        // Both lookups are guaranteed by construction (our own triple is in
        // the allgather result); corruption of the exchanged triples must
        // surface as a typed error, not a panic inside the runtime.
        let color_index = colors.iter().position(|&c| c == color).ok_or_else(|| {
            CommError::CollectiveMismatch(format!("split: own color {color} missing from gather"))
        })?;
        let members: Vec<usize> = triples
            .iter()
            .filter(|t| t.0 == color)
            .map(|t| self.members[t.2])
            .collect();
        let my_global = self.members[self.rank];
        let new_rank = members
            .iter()
            .position(|&g| g == my_global)
            .ok_or_else(|| {
                CommError::CollectiveMismatch(format!(
                    "split: rank {} missing from its color group {color}",
                    self.rank
                ))
            })?;
        Ok(Communicator {
            transport: Rc::clone(&self.transport),
            mailbox: Rc::clone(&self.mailbox),
            ctx_alloc: Rc::clone(&self.ctx_alloc),
            ctx: base + color_index as u64,
            rank: new_rank,
            members: Arc::new(members),
            timeout: Cell::new(self.timeout.get()),
            coll_seq: Cell::new(0),
            stats: self.stats.clone(),
            fault: self.fault.clone(),
        })
    }

    /// Next collective tag (sequence-stamped so consecutive collectives on
    /// the same communicator cannot cross-match).
    pub(crate) fn next_coll_tag(&self, round: u32) -> u32 {
        debug_assert!(round < 1 << 12);
        let seq = self.coll_seq.get();
        COLLECTIVE_TAG_BIT | (((seq & 0x7FFFF) as u32) << 12) | round
    }

    /// Advance the collective sequence number; call once per collective.
    pub(crate) fn bump_coll_seq(&self) {
        self.coll_seq.set(self.coll_seq.get() + 1);
    }
}

impl Drop for Communicator {
    fn drop(&mut self) {
        if let Some(ctx) = &self.fault {
            if Rc::strong_count(ctx) == 1 {
                // last communicator of this rank: flush every still-held
                // delayed message so injected delays cannot strand payloads
                self.flush_held(u64::MAX, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = Universe::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, &[comm.rank() as f64]).unwrap();
            comm.recv(prev, 1).unwrap()[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn single_rank_universe() {
        let r = Universe::run(1, |comm| comm.rank() + comm.size());
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn out_of_order_matching() {
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[7.0]).unwrap();
                comm.send(1, 8, &[8.0]).unwrap();
                comm.send(1, 9, &[9.0]).unwrap();
                0.0
            } else {
                // receive in reverse tag order: unexpected-queue must stash
                let a = comm.recv(0, 9).unwrap()[0];
                let b = comm.recv(0, 8).unwrap()[0];
                let c = comm.recv(0, 7).unwrap()[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(results[1], 987.0);
    }

    #[test]
    fn deadlock_detection() {
        let results = Universe::run(2, |comm| {
            comm.set_timeout(Duration::from_millis(50));
            if comm.rank() == 1 {
                comm.recv(0, 42).err()
            } else {
                None
            }
        });
        match &results[1] {
            Some(CommError::DeadlockTimeout {
                src: 0, tag: 42, ..
            }) => {}
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn run_with_timeout_applies_to_all_ranks() {
        let results = Universe::run_with_timeout(2, Duration::from_millis(20), |comm| {
            assert_eq!(comm.timeout(), Duration::from_millis(20));
            if comm.rank() == 1 {
                comm.recv(0, 99).err()
            } else {
                None
            }
        });
        match &results[1] {
            Some(CommError::DeadlockTimeout {
                src: 0, tag: 99, ..
            }) => {}
            other => panic!("expected fast deadlock, got {other:?}"),
        }
    }

    #[test]
    fn size_mismatch_detected() {
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &[1.0, 2.0, 3.0]).unwrap();
                None
            } else {
                let mut buf = [0.0; 2];
                comm.recv_into(0, 1, &mut buf).err()
            }
        });
        assert_eq!(
            results[1],
            Some(CommError::SizeMismatch {
                expected: 2,
                got: 3,
                src: 0,
                tag: 1
            })
        );
    }

    #[test]
    fn invalid_rank_rejected() {
        let results = Universe::run(2, |comm| comm.send(5, 0, &[1.0]).err());
        assert_eq!(
            results[0],
            Some(CommError::InvalidRank { rank: 5, size: 2 })
        );
    }

    #[test]
    fn sendrecv_exchanges() {
        let results = Universe::run(2, |comm| {
            let other = 1 - comm.rank();
            comm.sendrecv(other, 3, &[comm.rank() as f64 + 10.0], other, 3)
                .unwrap()[0]
        });
        assert_eq!(results, vec![11.0, 10.0]);
    }

    #[test]
    fn stats_count_p2p() {
        let results = Universe::run(2, |comm| {
            let other = 1 - comm.rank();
            comm.send(other, 1, &[0.0; 16]).unwrap();
            comm.recv(other, 1).unwrap();
            comm.stats().snapshot()
        });
        for s in results {
            assert_eq!(s.p2p_sends, 1);
            assert_eq!(s.p2p_send_elems, 16);
            assert_eq!(s.p2p_recvs, 1);
        }
    }

    #[test]
    fn overlap_send_compute_recv() {
        // the paper's overlap pattern: post sends, compute, then receive
        let results = Universe::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, &[comm.rank() as f64]).unwrap();
            // "inner computation" happens here — no recv posted yet
            let local: f64 = (0..1000).map(|i| i as f64).sum();
            let remote = comm.recv(prev, 1).unwrap()[0];
            local + remote
        });
        let local: f64 = (0..1000).map(|i| i as f64).sum();
        assert_eq!(results[0], local + 3.0);
    }

    #[test]
    fn split_isolates_contexts() {
        // even/odd sub-communicators exchange on the same tags concurrently;
        // contexts must keep the traffic separate
        let results = Universe::run(4, |comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank()).unwrap();
            assert_eq!(sub.size(), 2);
            let other = 1 - sub.rank();
            sub.send(other, 1, &[comm.rank() as f64 * 2.0]).unwrap();
            sub.recv(other, 1).unwrap()[0]
        });
        // world ranks: 0<->2 (colors 0), 1<->3 (colors 1)
        assert_eq!(results, vec![4.0, 6.0, 0.0, 2.0]);
    }

    #[test]
    fn split_key_reorders() {
        let results = Universe::run(3, |comm| {
            // reverse order by key
            let sub = comm.split(0, comm.size() - comm.rank()).unwrap();
            sub.rank()
        });
        assert_eq!(results, vec![2, 1, 0]);
    }

    #[test]
    fn salted_ctx_allocation_never_collides_across_allocators() {
        // two different allocator ranks (world rank 0 for the world split,
        // the pair's lowest rank for a nested split) must hand out disjoint
        // context ids, even without a shared counter
        let results = Universe::run(4, |comm| {
            let sub = comm.split(comm.rank() % 2, comm.rank()).unwrap();
            // nested split allocates from the *sub* communicator's rank 0
            // (world rank 0 or 1 depending on color)
            let mut sub = sub;
            let nested = sub.split(0, sub.rank()).unwrap();
            (sub.ctx, nested.ctx)
        });
        let mut ids: Vec<u64> = results.iter().flat_map(|&(a, b)| [a, b]).collect();
        ids.sort_unstable();
        ids.dedup();
        // 2 sub-communicator contexts + 2 nested contexts, all distinct
        assert_eq!(ids.len(), 4, "ctx ids must be globally unique: {ids:?}");
        for id in ids {
            assert!(id >= 1 << 32, "salted ids live above the world context");
            assert_ne!(id, u64::MAX);
        }
    }

    #[cfg(unix)]
    #[test]
    fn socket_universe_matches_mpsc_semantics() {
        // same program as ring_pass + out_of_order_matching, over real
        // kernel byte streams
        let ep = Endpoint::unique_uds();
        let results = Universe::run_sockets(4, &ep, |comm| {
            assert_eq!(comm.transport_name(), "uds");
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, &[comm.rank() as f64]).unwrap();
            let ring = comm.recv(prev, 1).unwrap()[0];
            let sub = comm.split(comm.rank() % 2, comm.rank()).unwrap();
            let other = 1 - sub.rank();
            sub.send(other, 1, &[ring * 2.0]).unwrap();
            sub.recv(other, 1).unwrap()[0]
        });
        assert_eq!(results, vec![2.0, 4.0, 6.0, 0.0]);
        assert!(comm_wire_identity_holds(&ep));
    }

    /// Helper: re-run a tiny exchange and check the wire-byte identity
    /// `bytes == 8·elems + overhead·msgs` against the logical stats.
    #[cfg(unix)]
    fn comm_wire_identity_holds(_: &Endpoint) -> bool {
        use crate::transport::WIRE_OVERHEAD_BYTES;
        let ep = Endpoint::unique_uds();
        let ok = Universe::run_sockets(2, &ep, |comm| {
            let other = 1 - comm.rank();
            comm.send(other, 1, &[1.0; 10]).unwrap();
            comm.recv(other, 1).unwrap();
            let s = comm.stats().snapshot();
            let w = comm.wire_stats().expect("socket transport has wire stats");
            w.msgs_sent == s.p2p_sends
                && w.bytes_sent == 8 * s.p2p_send_elems + WIRE_OVERHEAD_BYTES * w.msgs_sent
        });
        ok.into_iter().all(|b| b)
    }

    #[cfg(unix)]
    #[test]
    fn socket_poison_fails_peers_fast() {
        let ep = Endpoint::unique_uds();
        let caught = std::panic::catch_unwind(|| {
            Universe::run_sockets(2, &ep, |comm| {
                comm.set_timeout(Duration::from_secs(30));
                if comm.rank() == 0 {
                    panic!("rank 0 dies");
                }
                // must fail fast with PeerFailed, not wait out 30 s
                let t0 = Instant::now();
                let err = comm.recv(0, 1).unwrap_err();
                assert!(matches!(err, CommError::PeerFailed { peer: 0 }));
                assert!(t0.elapsed() < Duration::from_secs(10));
            })
        });
        assert!(caught.is_err(), "the injected panic propagates");
    }
}
