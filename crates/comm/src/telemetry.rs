//! The control-channel telemetry protocol of distributed observability.
//!
//! A multi-process run keeps one per-rank tracer; at run end every rank
//! ships its drained span stream and metrics snapshot to rank 0, which
//! merges them into a single timeline (`agcm_obs::dist`).  The shipping
//! rides the ordinary [`Communicator`] point-to-point layer — the same
//! frames, checksums and fault semantics as model traffic — on reserved
//! user tags, so a dedicated *control communicator* (a [`Communicator::split`]
//! clone of the world) keeps telemetry out of the model's tag space and
//! its traffic out of the measured step brackets.
//!
//! The wall-clock problem: each process's `obs::now_ns` counts from its own
//! trace epoch (first use), so raw timestamps are mutually meaningless.
//! [`clock_align`] runs a Cristian-style ping/pong handshake against rank 0
//! ([`clock_serve`]): each round brackets rank 0's clock reading between a
//! local send and receive, the minimum-RTT round wins, and the resulting
//! [`OffsetEstimate`] maps this rank's clock onto rank 0's within ±RTT/2
//! (sub-microsecond over Unix-domain sockets in practice — the spans being
//! aligned are tens of microseconds long).
//!
//! Payload encoding: byte blobs travel as `f64` bit patterns
//! ([`agcm_obs::dist::bytes_to_words`]); both transports move payload bits
//! exactly (NaN round-trip is tested), so this is lossless.

use crate::error::{CommError, CommResult};
use crate::runtime::Communicator;
use agcm_obs as obs;
use agcm_obs::dist::{self, ClockSample, OffsetEstimate};

/// Reserved tag range of the telemetry protocol (user tag space: bit 31
/// clear).  Use a split control communicator to keep even these away from
/// model traffic.
pub const TAG_CLOCK_PING: u32 = 0x7C1A_0001;
/// Rank 0's reply to a [`TAG_CLOCK_PING`], carrying its clock reading.
pub const TAG_CLOCK_PONG: u32 = 0x7C1A_0002;
/// A rank's full encoded event stream (end of run).
pub const TAG_EVENTS: u32 = 0x7C1A_0003;
/// A rank's encoded metrics snapshot (end of run).
pub const TAG_METRICS: u32 = 0x7C1A_0004;
/// A small live progress snapshot (`[step, events_so_far]`), shipped
/// between steps so rank 0 can watch a long run move.
pub const TAG_LIVE: u32 = 0x7C1A_0005;

/// Ping/pong rounds of the default clock handshake: enough that at least
/// one round dodges scheduler noise, cheap enough to be invisible (~8
/// round trips of 9-byte payloads per rank).
pub const CLOCK_ROUNDS: usize = 8;

// ---------------------------------------------------------------------------
// clock alignment handshake
// ---------------------------------------------------------------------------

/// Rank 0's side of the clock handshake: answer `rounds` pings from every
/// other rank (clients are served in rank order; each client's rounds are
/// strictly ping/pong ordered, so one blocking loop is deadlock-free).
pub fn clock_serve(comm: &Communicator, rounds: usize) -> CommResult<()> {
    for client in 1..comm.size() {
        for _ in 0..rounds {
            let _ping = comm.recv(client, TAG_CLOCK_PING)?;
            let now = obs::now_ns();
            comm.send(client, TAG_CLOCK_PONG, &[f64::from_bits(now)])?;
        }
    }
    Ok(())
}

/// A non-zero rank's side: run `rounds` ping/pongs against rank 0 and
/// return the offset mapping this rank's clock onto rank 0's
/// (`t_rank0 ≈ t_local + offset_ns`).
pub fn clock_align(comm: &Communicator, rounds: usize) -> CommResult<OffsetEstimate> {
    let mut samples = Vec::with_capacity(rounds);
    for round in 0..rounds.max(1) {
        let t_send_ns = obs::now_ns();
        comm.send(0, TAG_CLOCK_PING, &[round as f64])?;
        let pong = comm.recv(0, TAG_CLOCK_PONG)?;
        let t_recv_ns = obs::now_ns();
        let t_peer_ns = pong
            .first()
            .ok_or_else(|| CommError::CorruptPayload {
                src: 0,
                tag: TAG_CLOCK_PONG,
                detail: "empty clock pong".to_string(),
            })?
            .to_bits();
        samples.push(ClockSample {
            t_send_ns,
            t_peer_ns,
            t_recv_ns,
        });
    }
    dist::estimate_offset(&samples).map_err(|detail| CommError::CorruptPayload {
        src: 0,
        tag: TAG_CLOCK_PONG,
        detail,
    })
}

// ---------------------------------------------------------------------------
// blob shipping
// ---------------------------------------------------------------------------

/// Ship a byte blob to `dest` under `tag` (one envelope; the transports
/// carry word counts far beyond any trace stream this repo produces).
pub fn send_blob(comm: &Communicator, dest: usize, tag: u32, bytes: &[u8]) -> CommResult<()> {
    comm.send(dest, tag, &dist::bytes_to_words(bytes))
}

/// Receive a byte blob from `src` under `tag`.
pub fn recv_blob(comm: &Communicator, src: usize, tag: u32) -> CommResult<Vec<u8>> {
    let words = comm.recv(src, tag)?;
    dist::words_to_bytes(&words).map_err(|detail| CommError::CorruptPayload { src, tag, detail })
}

/// Everything one rank contributes to the merged picture.
#[derive(Debug, Clone)]
pub struct RankTelemetry {
    /// Offset mapping the rank's clock onto rank 0's (0 for rank 0).
    pub offset_ns: i64,
    /// Error bound of the offset (RTT of the chosen handshake round).
    pub rtt_ns: u64,
    /// The rank's drained span stream (local timestamps).
    pub events: Vec<obs::Event>,
    /// The rank's metrics snapshot.
    pub metrics: obs::MetricsSnapshot,
}

/// Ship this rank's telemetry to rank 0 at run end.  The events blob is
/// prefixed with the rank's clock offset and its error bound so rank 0
/// needs no separate bookkeeping.
pub fn ship_telemetry(
    comm: &Communicator,
    offset: &OffsetEstimate,
    events: &[obs::Event],
    metrics: &obs::MetricsSnapshot,
) -> CommResult<()> {
    let mut blob = Vec::with_capacity(16 + events.len() * 56);
    blob.extend_from_slice(&offset.offset_ns.to_le_bytes());
    blob.extend_from_slice(&offset.rtt_ns.to_le_bytes());
    blob.extend_from_slice(&dist::encode_events(events));
    send_blob(comm, 0, TAG_EVENTS, &blob)?;
    send_blob(comm, 0, TAG_METRICS, &dist::encode_metrics(metrics))
}

/// Rank 0: collect one rank's telemetry shipped by [`ship_telemetry`].
pub fn collect_telemetry(comm: &Communicator, src: usize) -> CommResult<RankTelemetry> {
    let corrupt = |detail: String| CommError::CorruptPayload {
        src,
        tag: TAG_EVENTS,
        detail,
    };
    let blob = recv_blob(comm, src, TAG_EVENTS)?;
    if blob.len() < 16 {
        return Err(corrupt(format!("telemetry blob of {} bytes", blob.len())));
    }
    let offset_ns = i64::from_le_bytes(blob[0..8].try_into().expect("8 bytes"));
    let rtt_ns = u64::from_le_bytes(blob[8..16].try_into().expect("8 bytes"));
    let events = dist::decode_events(&blob[16..]).map_err(corrupt)?;
    let metrics_blob = recv_blob(comm, src, TAG_METRICS)?;
    let metrics =
        dist::decode_metrics(&metrics_blob).map_err(|detail| CommError::CorruptPayload {
            src,
            tag: TAG_METRICS,
            detail,
        })?;
    Ok(RankTelemetry {
        offset_ns,
        rtt_ns,
        events,
        metrics,
    })
}

/// Ship a live progress snapshot (`step`, cumulative event count) to
/// rank 0.  Sends are eager/buffered: the sender never blocks, rank 0
/// drains at its leisure.
pub fn send_live_snapshot(comm: &Communicator, step: u64, events_so_far: u64) -> CommResult<()> {
    comm.send(
        0,
        TAG_LIVE,
        &[f64::from_bits(step), f64::from_bits(events_so_far)],
    )
}

/// Rank 0: receive one live snapshot from `src`; `(step, events_so_far)`.
pub fn recv_live_snapshot(comm: &Communicator, src: usize) -> CommResult<(u64, u64)> {
    let words = comm.recv(src, TAG_LIVE)?;
    match words.as_slice() {
        [step, events] => Ok((step.to_bits(), events.to_bits())),
        _ => Err(CommError::CorruptPayload {
            src,
            tag: TAG_LIVE,
            detail: format!("live snapshot of {} words, want 2", words.len()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Universe;
    use agcm_obs::{Phase, SpanKind};

    fn ev(rank: usize, name: &'static str, t0: u64, t1: u64) -> obs::Event {
        obs::Event {
            rank,
            step: 2,
            kind: SpanKind::Op,
            phase: Phase::A,
            name,
            t0_ns: t0,
            t1_ns: t1,
            seq: t0,
            bytes: 0,
            value: 0.0,
        }
    }

    #[test]
    fn clock_handshake_estimates_small_offset_in_process() {
        // threads share one process clock: the true offset is 0 and the
        // estimate must land within the reported RTT bound
        let results = Universe::run(3, |comm| {
            if comm.rank() == 0 {
                clock_serve(comm, CLOCK_ROUNDS).expect("serve");
                None
            } else {
                Some(clock_align(comm, CLOCK_ROUNDS).expect("align"))
            }
        });
        for est in results.into_iter().flatten() {
            assert!(
                est.offset_ns.unsigned_abs() <= est.rtt_ns,
                "offset {} exceeds rtt bound {}",
                est.offset_ns,
                est.rtt_ns
            );
        }
    }

    #[test]
    fn telemetry_ships_and_merges() {
        let merged = Universe::run(3, |comm| {
            let rank = comm.rank();
            if rank == 0 {
                let mut streams = vec![(0i64, vec![ev(0, "alg2.step", 100, 900)])];
                for src in 1..comm.size() {
                    let t = collect_telemetry(comm, src).expect("collect");
                    assert_eq!(t.metrics.counters["steps"], src as u64);
                    streams.push((t.offset_ns, t.events));
                }
                Some(dist::merge_events(&streams))
            } else {
                let events = vec![ev(rank, "alg2.step", 50 * rank as u64, 800)];
                let mut snap = obs::MetricsSnapshot::default();
                snap.counters.insert("steps".into(), rank as u64);
                let est = OffsetEstimate {
                    offset_ns: 10 * rank as i64,
                    rtt_ns: 4,
                };
                ship_telemetry(comm, &est, &events, &snap).expect("ship");
                None
            }
        });
        let merged = merged.into_iter().flatten().next().expect("rank 0 merged");
        assert_eq!(merged.len(), 3);
        let ranks: Vec<usize> = merged.iter().map(|e| e.rank).collect();
        assert!(ranks.contains(&0) && ranks.contains(&1) && ranks.contains(&2));
        // rank 1's event: local 50 + offset 10 = 60; rank 2's: 100 + 20 =
        // 120; rank 0's at 100 -> origin is rank 1's 60
        assert_eq!(merged[0].rank, 1);
        assert_eq!(merged[0].t0_ns, 0);
    }

    #[test]
    fn live_snapshots_drain_in_any_order() {
        let got = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..3 {
                    seen.push(recv_live_snapshot(comm, 1).expect("live"));
                }
                Some(seen)
            } else {
                for step in 2..5u64 {
                    send_live_snapshot(comm, step, step * 100).expect("send");
                }
                None
            }
        });
        let seen = got.into_iter().flatten().next().expect("rank 0");
        assert_eq!(seen, vec![(2, 200), (3, 300), (4, 400)]);
    }
}
