//! Empirical α–β–γ cost-model fitting from measured communication spans.
//!
//! The repo's scaling predictions ([`crate::CostModel`],
//! `agcm_core::analysis`) have so far used *assumed* machine constants
//! (Tianhe-2 presets).  This module closes the loop: given per-exchange
//! measurements — messages waited for, payload bytes moved, wall seconds
//! from the posting span's start to the wait span's end — it regresses
//!
//! ```text
//! t_round = sync + α · msgs + β · bytes
//! ```
//!
//! by linear least squares (3×3 normal equations, partial-pivot Gaussian
//! elimination — the workspace is std-only) and reports per-sample
//! residuals so the fit's honesty is part of the artifact.  γ (seconds per
//! point update) comes from compute spans instead ([`fit_gamma`]): it is a
//! throughput, not a latency, and needs no regression.
//!
//! Degenerate designs are the common case, not the exception: on a 1-D
//! Y decomposition every interior rank posts exactly 2 messages per round,
//! making the α and sync columns collinear.  The fitter detects rank
//! deficiency via the pivot magnitude and falls back along the ladder
//! full → {α, β} (sync = 0) → {β} → {α}, so it always returns a usable
//! model plus the honest story of which terms were identifiable.

use crate::model::CostModel;

/// One measured exchange round on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeSample {
    /// Schedule op index this round executed (`u32::MAX` when unknown).
    pub op: u32,
    /// Site name (e.g. `"halo.wait"`).
    pub name: &'static str,
    /// Messages this rank received in the round.
    pub msgs: u64,
    /// Payload bytes this rank received in the round.
    pub bytes: u64,
    /// Measured wall time of the round in seconds.
    pub seconds: f64,
}

/// Measured vs fitted time of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitResidual {
    /// Schedule op index.
    pub op: u32,
    /// Site name.
    pub name: &'static str,
    /// Messages in the round.
    pub msgs: u64,
    /// Bytes in the round.
    pub bytes: u64,
    /// Measured seconds.
    pub measured_s: f64,
    /// Model-predicted seconds.
    pub predicted_s: f64,
}

impl FitResidual {
    /// Relative error `|measured - predicted| / measured` (0 when the
    /// measurement itself is 0).
    pub fn rel_err(&self) -> f64 {
        if self.measured_s > 0.0 {
            (self.measured_s - self.predicted_s).abs() / self.measured_s
        } else {
            0.0
        }
    }
}

/// Which terms of `sync + α·msgs + β·bytes` the design could identify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitTerms {
    /// All three coefficients.
    Full,
    /// α and β with sync pinned to 0 (constant-column collinearity).
    AlphaBeta,
    /// β only.
    BetaOnly,
    /// α only.
    AlphaOnly,
    /// sync only (no traffic varied at all — the mean round time).
    SyncOnly,
}

impl FitTerms {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FitTerms::Full => "sync+alpha+beta",
            FitTerms::AlphaBeta => "alpha+beta",
            FitTerms::BetaOnly => "beta",
            FitTerms::AlphaOnly => "alpha",
            FitTerms::SyncOnly => "sync",
        }
    }
}

/// The fitted communication coefficients plus the evidence.
#[derive(Debug, Clone)]
pub struct CommFit {
    /// Fitted per-message latency (s/msg), clamped non-negative.
    pub alpha: f64,
    /// Fitted per-byte cost (s/B), clamped non-negative.
    pub beta: f64,
    /// Fitted per-round synchronization cost (s), clamped non-negative.
    pub sync: f64,
    /// Which terms were identifiable from the design.
    pub terms: FitTerms,
    /// Per-sample measured vs predicted.
    pub residuals: Vec<FitResidual>,
}

impl CommFit {
    /// Predicted round time under the fitted coefficients.
    pub fn predict(&self, msgs: u64, bytes: u64) -> f64 {
        self.sync + self.alpha * msgs as f64 + self.beta * bytes as f64
    }

    /// Root-mean-square relative error over samples with nonzero
    /// measurements.
    pub fn rel_rmse(&self) -> f64 {
        let errs: Vec<f64> = self
            .residuals
            .iter()
            .filter(|r| r.measured_s > 0.0)
            .map(|r| r.rel_err())
            .collect();
        if errs.is_empty() {
            0.0
        } else {
            (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt()
        }
    }

    /// Largest single-sample relative error.
    pub fn max_rel_err(&self) -> f64 {
        self.residuals
            .iter()
            .fold(0.0f64, |m, r| m.max(r.rel_err()))
    }

    /// The fitted [`CostModel`], with γ supplied from compute measurements
    /// ([`fit_gamma`]).
    pub fn model(&self, gamma: f64) -> CostModel {
        CostModel {
            alpha: self.alpha,
            beta: self.beta,
            gamma,
            sync: self.sync,
            name: "fitted",
        }
    }
}

/// γ (seconds per point update) from aggregated compute measurements: the
/// total compute-span wall time divided by the total point updates those
/// spans performed.
pub fn fit_gamma(compute_seconds: f64, point_updates: f64) -> f64 {
    if point_updates > 0.0 && compute_seconds.is_finite() && compute_seconds > 0.0 {
        compute_seconds / point_updates
    } else {
        0.0
    }
}

/// Fit `t = sync + α·msgs + β·bytes` to the samples by least squares.
///
/// Errors only when no sample exists; rank-deficient designs degrade along
/// the documented ladder instead of failing.
pub fn fit_alpha_beta(samples: &[ExchangeSample]) -> Result<CommFit, String> {
    if samples.is_empty() {
        return Err("no exchange samples to fit".to_string());
    }
    // column scaling keeps the normal equations conditioned: seconds are
    // ~1e-5 while bytes are ~1e5
    let s_msgs = samples.iter().map(|s| s.msgs as f64).fold(0.0, f64::max);
    let s_bytes = samples.iter().map(|s| s.bytes as f64).fold(0.0, f64::max);
    let s_msgs = if s_msgs > 0.0 { s_msgs } else { 1.0 };
    let s_bytes = if s_bytes > 0.0 { s_bytes } else { 1.0 };
    let row = |s: &ExchangeSample| [1.0, s.msgs as f64 / s_msgs, s.bytes as f64 / s_bytes];

    let mut solved: Option<([f64; 3], FitTerms)> = None;
    // ladder of designs: drop columns until the system is full-rank
    let designs: [(&[usize], FitTerms); 5] = [
        (&[0, 1, 2], FitTerms::Full),
        (&[1, 2], FitTerms::AlphaBeta),
        (&[2], FitTerms::BetaOnly),
        (&[1], FitTerms::AlphaOnly),
        (&[0], FitTerms::SyncOnly),
    ];
    for (cols, terms) in designs {
        if let Some(x) = solve_normal(samples, cols, &row) {
            let mut full = [0.0f64; 3];
            for (i, &c) in cols.iter().enumerate() {
                full[c] = x[i];
            }
            solved = Some((full, terms));
            break;
        }
    }
    let (coef, terms) = solved.ok_or_else(|| "degenerate design: all columns zero".to_string())?;

    // unscale and clamp: a slightly negative intercept from noise is
    // reported as 0, not as a time machine
    let sync = coef[0].max(0.0);
    let alpha = (coef[1] / s_msgs).max(0.0);
    let beta = (coef[2] / s_bytes).max(0.0);

    let residuals = samples
        .iter()
        .map(|s| FitResidual {
            op: s.op,
            name: s.name,
            msgs: s.msgs,
            bytes: s.bytes,
            measured_s: s.seconds,
            predicted_s: sync + alpha * s.msgs as f64 + beta * s.bytes as f64,
        })
        .collect();

    Ok(CommFit {
        alpha,
        beta,
        sync,
        terms,
        residuals,
    })
}

/// Solve the least-squares normal equations over the selected columns;
/// `None` when the design is rank-deficient.
fn solve_normal(
    samples: &[ExchangeSample],
    cols: &[usize],
    row: &impl Fn(&ExchangeSample) -> [f64; 3],
) -> Option<Vec<f64>> {
    let k = cols.len();
    let mut ata = vec![0.0f64; k * k];
    let mut atb = vec![0.0f64; k];
    for s in samples {
        let r = row(s);
        for i in 0..k {
            let ri = r[cols[i]];
            atb[i] += ri * s.seconds;
            for j in 0..k {
                ata[i * k + j] += ri * r[cols[j]];
            }
        }
    }
    gauss_solve(&mut ata, &mut atb, k)
}

/// In-place Gaussian elimination with partial pivoting on a `k×k` system.
fn gauss_solve(a: &mut [f64], b: &mut [f64], k: usize) -> Option<Vec<f64>> {
    let scale = a
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(f64::MIN_POSITIVE);
    for col in 0..k {
        // pivot: largest remaining entry in this column
        let piv =
            (col..k).max_by(|&i, &j| a[i * k + col].abs().total_cmp(&a[j * k + col].abs()))?;
        if a[piv * k + col].abs() < 1e-9 * scale {
            return None; // rank-deficient
        }
        if piv != col {
            for j in 0..k {
                a.swap(col * k + j, piv * k + j);
            }
            b.swap(col, piv);
        }
        for i in col + 1..k {
            let f = a[i * k + col] / a[col * k + col];
            for j in col..k {
                a[i * k + j] -= f * a[col * k + j];
            }
            b[i] -= f * b[col];
        }
    }
    let mut x = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut v = b[col];
        for j in col + 1..k {
            v -= a[col * k + j] * x[j];
        }
        x[col] = v / a[col * k + col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(alpha: f64, beta: f64, sync: f64, rounds: &[(u64, u64)]) -> Vec<ExchangeSample> {
        rounds
            .iter()
            .enumerate()
            .map(|(i, &(msgs, bytes))| ExchangeSample {
                op: i as u32,
                name: "halo.wait",
                msgs,
                bytes,
                seconds: sync + alpha * msgs as f64 + beta * bytes as f64,
            })
            .collect()
    }

    #[test]
    fn recovers_exact_coefficients_from_varied_design() {
        let (alpha, beta, sync) = (5e-6, 1e-10, 2e-5);
        // msgs and bytes vary independently -> full rank
        let rounds = [
            (2u64, 10_000u64),
            (4, 10_000),
            (2, 80_000),
            (4, 80_000),
            (8, 40_000),
            (2, 160_000),
        ];
        let fit = fit_alpha_beta(&synth(alpha, beta, sync, &rounds)).expect("fit");
        assert_eq!(fit.terms, FitTerms::Full);
        assert!(
            (fit.alpha - alpha).abs() / alpha < 1e-6,
            "alpha {}",
            fit.alpha
        );
        assert!((fit.beta - beta).abs() / beta < 1e-6, "beta {}", fit.beta);
        assert!((fit.sync - sync).abs() / sync < 1e-6, "sync {}", fit.sync);
        assert!(fit.rel_rmse() < 1e-9, "rmse {}", fit.rel_rmse());
        let m = fit.model(1.2e-8);
        assert_eq!(m.name, "fitted");
        // the CostModel reproduces the fitted round prediction exactly
        // (exchange_round takes elems; bytes = 8 * elems)
        let pred = m.exchange_round(4, 10_000 / 8);
        assert!((pred - fit.predict(4, 10_000)).abs() < 1e-15);
    }

    #[test]
    fn noisy_fit_stays_within_tolerance() {
        let (alpha, beta, sync) = (4e-6, 2e-10, 1e-5);
        let rounds = [
            (2u64, 12_000u64),
            (4, 9_000),
            (6, 50_000),
            (2, 120_000),
            (8, 30_000),
            (4, 200_000),
            (2, 64_000),
            (6, 150_000),
        ];
        let mut samples = synth(alpha, beta, sync, &rounds);
        // deterministic ±8% multiplicative noise
        let mut state = 0x9E37_79B9u64;
        for s in &mut samples {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0; // [-1, 1)
            s.seconds *= 1.0 + 0.08 * u;
        }
        let fit = fit_alpha_beta(&samples).expect("fit");
        assert!(fit.rel_rmse() < 0.15, "rmse {}", fit.rel_rmse());
        assert!(fit.max_rel_err() < 0.3, "max {}", fit.max_rel_err());
        assert!((fit.beta - beta).abs() / beta < 0.5, "beta {}", fit.beta);
    }

    #[test]
    fn constant_msgs_falls_back_and_still_predicts() {
        // every round has 2 msgs: sync and alpha are collinear; the ladder
        // must drop to {alpha, beta} and still reproduce the observations
        let (alpha, beta, sync) = (5e-6, 1e-10, 0.0);
        let rounds = [(2u64, 10_000u64), (2, 40_000), (2, 90_000), (2, 160_000)];
        let fit = fit_alpha_beta(&synth(alpha, beta, sync, &rounds)).expect("fit");
        assert_eq!(fit.terms, FitTerms::AlphaBeta);
        for r in &fit.residuals {
            assert!(r.rel_err() < 1e-6, "residual {:?}", r);
        }
    }

    #[test]
    fn all_identical_rounds_collapse_to_single_term() {
        let samples = synth(1e-6, 1e-10, 0.0, &[(2, 8_000), (2, 8_000), (2, 8_000)]);
        let fit = fit_alpha_beta(&samples).expect("fit");
        // one distinct design point: only a single ratio is identifiable,
        // but it must still reproduce that point
        assert!(fit.residuals.iter().all(|r| r.rel_err() < 1e-6));
    }

    #[test]
    fn degenerate_inputs_error_cleanly() {
        assert!(fit_alpha_beta(&[]).is_err());
        // zero msgs and bytes on every sample: nothing identifiable
        let z = [ExchangeSample {
            op: 0,
            name: "z",
            msgs: 0,
            bytes: 0,
            seconds: 1e-6,
        }];
        // the ladder bottoms out at intercept-only: sync = mean seconds
        let fit = fit_alpha_beta(&z).expect("intercept fit");
        assert_eq!(fit.terms, FitTerms::SyncOnly);
        assert!((fit.sync - 1e-6).abs() < 1e-12);
    }

    #[test]
    fn gamma_from_compute_totals() {
        assert_eq!(fit_gamma(2.0, 1e8), 2e-8);
        assert_eq!(fit_gamma(0.0, 1e8), 0.0);
        assert_eq!(fit_gamma(1.0, 0.0), 0.0);
    }
}
