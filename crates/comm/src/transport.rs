//! Pluggable rank-to-rank transports beneath the [`crate::Communicator`].
//!
//! The communicator implements *all* message-passing semantics — tag/source
//! matching, the unexpected-message queue, communicator contexts, deadlock
//! timeouts, [`crate::CommStats`] traffic accounting, fault injection and
//! the obs span tracer — **above** this trait.  A transport only moves
//! whole [`Envelope`]s between world ranks, so schedules, fault replays and
//! traces are transport-independent by construction: the same program over
//! [`MpscTransport`] (thread-backed, in-memory) and [`SocketTransport`]
//! (byte-stream over Unix-domain sockets or TCP) produces bitwise-identical
//! results and identical logical traffic counts.
//!
//! # Wire format of the byte-stream transport
//!
//! Each envelope is one length-prefixed frame (all integers little-endian):
//!
//! ```text
//! u32  payload word count n
//! u64  ctx            (communicator context id; u64::MAX = poison)
//! u32  src_global     (sender's world rank)
//! u32  tag
//! u32  drops          (fault rider: deliveries to lose)
//! u32  corrupt        (fault rider: deliveries to bit-flip)
//! u32  corrupt_bit
//! u32  flags          (bit 0: redundant duplicate)
//! u64  corrupt_seed
//! 8n   payload        (f64 bit patterns)
//! u64  FNV-1a checksum over all preceding frame bytes
//! ```
//!
//! The checksum reuses the same FNV-1a hash as the in-runtime
//! [`crate::fault::checksum`] frames ([`crate::fault::checksum_bytes`]); a
//! frame that fails validation poisons the receiving mailbox (the stream
//! position can no longer be trusted), which surfaces as a typed
//! [`crate::CommError::PeerFailed`] instead of silent corruption.
//!
//! Connection setup is a full-mesh handshake: rank `i` listens on
//! `<endpoint>.<i>` (Unix) or `port + i` (TCP), and every ordered pair of
//! ranks gets one simplex connection opened by the sender, announced by a
//! 20-byte hello (`"AGCMWIRE"`, version, sender rank, world size).
//! [`SocketTransport::connect`] returns only once every peer connection is
//! up in both directions, so a successful construction doubles as the
//! launcher's barrier that the whole world exists.

use crate::error::{CommError, CommResult};
use crate::fault;
use agcm_obs as obs;
use std::cell::RefCell;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Context id of poison envelopes (sent when a rank panics — or when a
/// byte-stream frame fails validation — so peers fail fast instead of
/// waiting out the deadlock timeout).  Real contexts can never reach this
/// value.
pub(crate) const POISON_CTX: u64 = u64::MAX;

/// A message in flight between two world ranks.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Communicator context id (`POISON_CTX` marks a poison envelope).
    pub ctx: u64,
    /// Sender's world rank.
    pub src_global: usize,
    /// Message tag.
    pub tag: u32,
    /// Payload.
    pub data: Vec<f64>,
    /// Injected link faults riding on the envelope: how many deliveries to
    /// lose before the clean payload gets through (the receiver applies
    /// these, modelling loss on the wire while keeping the runtime's
    /// eager-copy architecture).
    pub drops: u32,
    /// Fault rider: deliveries to corrupt before the clean payload.
    pub corrupt: u32,
    /// Fault rider: which bit the injected corruption flips.
    pub corrupt_bit: u32,
    /// Fault rider: seeds the corrupted element choice.
    pub corrupt_seed: u64,
    /// Injected duplicate: delivered, but never counted as traffic.
    pub redundant: bool,
}

impl Envelope {
    /// A fresh fault-free envelope.
    pub fn new(ctx: u64, src_global: usize, tag: u32, data: Vec<f64>) -> Self {
        Envelope {
            ctx,
            src_global,
            tag,
            data,
            drops: 0,
            corrupt: 0,
            corrupt_bit: 0,
            corrupt_seed: 0,
            redundant: false,
        }
    }

    /// A poison envelope announcing that world rank `src_global` died.
    pub fn poison(src_global: usize) -> Self {
        Envelope::new(POISON_CTX, src_global, 0, Vec::new())
    }

    /// The payload with the injected bit flip applied (the stored data
    /// stays clean for a retry).
    pub(crate) fn corrupted_copy(&self) -> Vec<f64> {
        let mut data = self.data.clone();
        if !data.is_empty() {
            let idx = (self.corrupt_seed % data.len() as u64) as usize;
            data[idx] = f64::from_bits(data[idx].to_bits() ^ (1u64 << self.corrupt_bit));
        }
        data
    }
}

/// Raw envelope delivery between the world ranks of one job.
///
/// Implementations must provide reliable, per-sender-ordered delivery of
/// whole envelopes (like MPI's transport layer); everything above — tag
/// matching, contexts, timeouts, statistics, fault injection — lives in the
/// [`crate::Communicator`] and is shared by every transport.
pub trait Transport {
    /// This process/thread's world rank.
    fn world_rank(&self) -> usize;

    /// Number of ranks in the world.
    fn world_size(&self) -> usize;

    /// Deliver `env` to world rank `peer` (buffered, non-blocking: the
    /// call returns once the envelope is handed to the wire, not when the
    /// peer receives it).  Sending to the own rank loops back locally.
    fn send(&self, peer: usize, env: Envelope) -> CommResult<()>;

    /// Next incoming envelope, waiting up to `timeout`; `None` on timeout
    /// (or when delivery has shut down, which the caller treats the same).
    fn recv(&self, timeout: Duration) -> Option<Envelope>;

    /// Next incoming envelope if one is already queued.
    fn try_recv(&self) -> Option<Envelope>;

    /// Wire-level traffic counters, for transports that move real bytes
    /// (`None` for in-memory transports).
    fn wire_stats(&self) -> Option<WireStats> {
        None
    }

    /// Short transport name for diagnostics (`"mpsc"`, `"uds"`, `"tcp"`).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// In-memory transport (thread-backed ranks)
// ---------------------------------------------------------------------------

/// The original in-memory transport: one `std::sync::mpsc` channel per
/// rank, all ranks living in one process as threads.
pub struct MpscTransport {
    rank: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    rx: Receiver<Envelope>,
}

impl MpscTransport {
    /// Build the full mesh for a `p`-rank world; element `i` is rank `i`'s
    /// transport (move it to that rank's thread).
    pub fn mesh(p: usize) -> Vec<MpscTransport> {
        assert!(p >= 1, "need at least one rank");
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = channel::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| MpscTransport {
                rank,
                senders: Arc::clone(&senders),
                rx,
            })
            .collect()
    }
}

impl Transport for MpscTransport {
    fn world_rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.senders.len()
    }

    fn send(&self, peer: usize, env: Envelope) -> CommResult<()> {
        self.senders[peer]
            .send(env)
            .map_err(|_| CommError::PeerGone { peer })
    }

    fn recv(&self, timeout: Duration) -> Option<Envelope> {
        self.rx.recv_timeout(timeout).ok()
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    fn name(&self) -> &'static str {
        "mpsc"
    }
}

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

/// Fixed frame header size in bytes (see the module docs for the layout).
pub const WIRE_HEADER_BYTES: u64 = 44;

/// Trailing checksum size in bytes.
pub const WIRE_TRAILER_BYTES: u64 = 8;

/// Total per-message wire overhead: a frame carrying `n` payload words is
/// exactly `WIRE_OVERHEAD_BYTES + 8 n` bytes on the wire.
pub const WIRE_OVERHEAD_BYTES: u64 = WIRE_HEADER_BYTES + WIRE_TRAILER_BYTES;

/// Upper bound on payload words accepted from the wire; a corrupted length
/// prefix must not trigger a multi-gigabyte allocation.
const MAX_WIRE_WORDS: u32 = 1 << 28;

fn encode_frame(env: &Envelope) -> Vec<u8> {
    let n = env.data.len();
    let mut buf = Vec::with_capacity(WIRE_OVERHEAD_BYTES as usize + 8 * n);
    buf.extend_from_slice(&(n as u32).to_le_bytes());
    buf.extend_from_slice(&env.ctx.to_le_bytes());
    buf.extend_from_slice(&(env.src_global as u32).to_le_bytes());
    buf.extend_from_slice(&env.tag.to_le_bytes());
    buf.extend_from_slice(&env.drops.to_le_bytes());
    buf.extend_from_slice(&env.corrupt.to_le_bytes());
    buf.extend_from_slice(&env.corrupt_bit.to_le_bytes());
    buf.extend_from_slice(&(env.redundant as u32).to_le_bytes());
    buf.extend_from_slice(&env.corrupt_seed.to_le_bytes());
    for v in &env.data {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let ck = fault::checksum_bytes(&buf);
    buf.extend_from_slice(&ck.to_le_bytes());
    buf
}

fn u32_at(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn u64_at(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Fill `buf`; `Ok(false)` on clean EOF *before* the first byte,
/// `UnexpectedEof` on EOF mid-buffer.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Read and validate one frame; `Ok(None)` on clean EOF.  Returns the
/// envelope plus its total on-wire size.
fn read_frame(r: &mut impl Read) -> io::Result<Option<(Envelope, u64)>> {
    let mut header = [0u8; WIRE_HEADER_BYTES as usize];
    if !read_exact_or_eof(r, &mut header)? {
        return Ok(None);
    }
    let n = u32_at(&header, 0);
    if n > MAX_WIRE_WORDS {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame claims {n} payload words"),
        ));
    }
    let mut body = vec![0u8; 8 * n as usize + WIRE_TRAILER_BYTES as usize];
    r.read_exact(&mut body)?;
    let (payload, trailer) = body.split_at(8 * n as usize);
    let stored = u64_at(trailer, 0);
    let mut h = fault::checksum_bytes(&header);
    // continue the running FNV-1a over the payload bytes
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    if stored != h {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum {h:#018x} != stored {stored:#018x}"),
        ));
    }
    let data: Vec<f64> = payload
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect();
    let env = Envelope {
        ctx: u64_at(&header, 4),
        src_global: u32_at(&header, 12) as usize,
        tag: u32_at(&header, 16),
        drops: u32_at(&header, 20),
        corrupt: u32_at(&header, 24),
        corrupt_bit: u32_at(&header, 28),
        corrupt_seed: u64_at(&header, 36),
        redundant: u32_at(&header, 32) & 1 != 0,
        data,
    };
    Ok(Some((env, WIRE_OVERHEAD_BYTES + 8 * n as u64)))
}

// ---------------------------------------------------------------------------
// Wire statistics
// ---------------------------------------------------------------------------

/// Wire-level traffic counters of a byte-stream transport: *actual* frames
/// and bytes moved, including checksum framing and redundant (injected
/// duplicate) deliveries that the logical [`crate::CommStats`] deliberately
/// excludes.  Loopback (self-send) frames are counted as if they crossed
/// the wire, so the identity `bytes = 8·elems + OVERHEAD·msgs` holds
/// exactly against the logical counters on fault-free runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Frames written.
    pub msgs_sent: u64,
    /// Bytes written (headers + payloads + checksums).
    pub bytes_sent: u64,
    /// Frames read.
    pub msgs_recvd: u64,
    /// Bytes read.
    pub bytes_recvd: u64,
}

impl WireStats {
    /// Counters accumulated since `earlier` (a previous snapshot).
    pub fn delta(&self, earlier: &WireStats) -> WireStats {
        WireStats {
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            msgs_recvd: self.msgs_recvd - earlier.msgs_recvd,
            bytes_recvd: self.bytes_recvd - earlier.bytes_recvd,
        }
    }
}

#[derive(Default)]
struct WireCounters {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recvd: AtomicU64,
    bytes_recvd: AtomicU64,
}

impl WireCounters {
    fn record_sent(&self, bytes: u64) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    fn record_recvd(&self, bytes: u64) {
        self.msgs_recvd.fetch_add(1, Ordering::Relaxed);
        self.bytes_recvd.fetch_add(bytes, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireStats {
        WireStats {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            msgs_recvd: self.msgs_recvd.load(Ordering::Relaxed),
            bytes_recvd: self.bytes_recvd.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Socket transport
// ---------------------------------------------------------------------------

/// Where a socket-backed world lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix-domain sockets: rank `i` listens on path `<base>.<i>`.
    #[cfg(unix)]
    Unix(PathBuf),
    /// TCP fallback: rank `i` listens on `host : port + i`.
    Tcp(String, u16),
}

impl Endpoint {
    /// Parse an endpoint string: `tcp:<host>:<base-port>` selects TCP,
    /// anything else is a Unix-domain socket base path.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            let (host, port) = rest
                .rsplit_once(':')
                .ok_or_else(|| format!("tcp endpoint '{s}' needs host:port"))?;
            let port: u16 = port
                .parse()
                .map_err(|e| format!("tcp endpoint '{s}': bad port: {e}"))?;
            if host.is_empty() {
                return Err(format!("tcp endpoint '{s}' has an empty host"));
            }
            return Ok(Endpoint::Tcp(host.to_string(), port));
        }
        #[cfg(unix)]
        {
            if s.is_empty() {
                return Err("empty endpoint".to_string());
            }
            Ok(Endpoint::Unix(PathBuf::from(s)))
        }
        #[cfg(not(unix))]
        Err(format!(
            "unix-domain endpoint '{s}' unsupported on this platform"
        ))
    }

    /// A fresh Unix-domain endpoint under the system temp directory, unique
    /// to this process and call (test/bench convenience).
    #[cfg(unix)]
    pub fn unique_uds() -> Endpoint {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        Endpoint::Unix(std::env::temp_dir().join(format!("agcm-{}-{n}.ep", std::process::id())))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(host, port) => write!(f, "tcp:{host}:{port}"),
        }
    }
}

enum Conn {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(t),
            Conn::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    #[cfg(unix)]
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self, v: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(v),
            Listener::Tcp(l) => l.set_nonblocking(v),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                let _ = s.set_nodelay(true);
                Conn::Tcp(s)
            }),
        }
    }
}

const HELLO_MAGIC: u64 = u64::from_le_bytes(*b"AGCMWIRE");
const HELLO_VERSION: u32 = 1;
const HELLO_BYTES: usize = 20;

fn encode_hello(rank: usize, size: usize) -> [u8; HELLO_BYTES] {
    let mut b = [0u8; HELLO_BYTES];
    b[0..8].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
    b[8..12].copy_from_slice(&HELLO_VERSION.to_le_bytes());
    b[12..16].copy_from_slice(&(rank as u32).to_le_bytes());
    b[16..20].copy_from_slice(&(size as u32).to_le_bytes());
    b
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn decode_hello(b: &[u8; HELLO_BYTES], expect_size: usize) -> io::Result<usize> {
    if u64_at(b, 0) != HELLO_MAGIC {
        return Err(bad_data("handshake: bad magic".to_string()));
    }
    let version = u32_at(b, 8);
    if version != HELLO_VERSION {
        return Err(bad_data(format!("handshake: wire version {version}")));
    }
    let rank = u32_at(b, 12) as usize;
    let size = u32_at(b, 16) as usize;
    if size != expect_size || rank >= size {
        return Err(bad_data(format!(
            "handshake: rank {rank} of world {size}, expected world {expect_size}"
        )));
    }
    Ok(rank)
}

/// A byte-stream transport over Unix-domain sockets (or TCP): each rank is
/// its own OS process (or thread), envelopes travel as checksummed frames
/// through the kernel.  See the module docs for the wire format.
pub struct SocketTransport {
    rank: usize,
    size: usize,
    kind: &'static str,
    /// One simplex outgoing connection per peer (`None` at the own rank).
    writers: Vec<Option<RefCell<Conn>>>,
    /// Local loopback for self-sends; also keeps `rx` alive after every
    /// reader thread exited.
    loopback: Sender<Envelope>,
    rx: Receiver<Envelope>,
    counters: Arc<WireCounters>,
    /// Own listening socket path, removed on drop (Unix only).
    listen_path: Option<PathBuf>,
}

impl SocketTransport {
    /// Join the `size`-rank world at `endpoint` as world rank `rank`,
    /// using [`crate::default_timeout`] as the handshake deadline.
    pub fn connect(rank: usize, size: usize, endpoint: &Endpoint) -> io::Result<SocketTransport> {
        Self::connect_timeout(rank, size, endpoint, crate::runtime::default_timeout())
    }

    /// Build a transport from the launcher handshake environment
    /// (`AGCM_RANK`, `AGCM_WORLD_SIZE`, `AGCM_ENDPOINT`); `None` when
    /// `AGCM_RANK` is unset (not launched by `agcm-run`).  Malformed values
    /// fail loudly via the strict env parser.
    pub fn from_env() -> Option<io::Result<SocketTransport>> {
        let rank: usize = match crate::env::parse_env("AGCM_RANK") {
            Ok(v) => v?,
            Err(e) => panic!("{e}"),
        };
        let size: usize = crate::env::parse_env_or("AGCM_WORLD_SIZE", 0);
        let ep = match crate::env::parse_env::<String>("AGCM_ENDPOINT") {
            Ok(Some(s)) => s,
            Ok(None) => return Some(Err(bad_data("AGCM_RANK set without AGCM_ENDPOINT".into()))),
            Err(e) => panic!("{e}"),
        };
        Some(match Endpoint::parse(&ep) {
            Ok(ep) if rank < size => Self::connect(rank, size, &ep),
            Ok(_) => Err(bad_data(format!(
                "AGCM_RANK={rank} outside AGCM_WORLD_SIZE={size}"
            ))),
            Err(e) => Err(bad_data(format!("AGCM_ENDPOINT: {e}"))),
        })
    }

    /// Like [`SocketTransport::connect`] with an explicit handshake
    /// deadline covering listener setup, all outgoing connections and all
    /// incoming handshakes.
    pub fn connect_timeout(
        rank: usize,
        size: usize,
        endpoint: &Endpoint,
        timeout: Duration,
    ) -> io::Result<SocketTransport> {
        assert!(size >= 1, "need at least one rank");
        assert!(rank < size, "rank {rank} outside world of {size}");
        // the whole mesh handshake (listen + dial-out + incoming hellos) as
        // one transport span; one relaxed load when tracing is disabled
        let _handshake = obs::span(obs::SpanKind::Transport, "transport.handshake");
        let deadline = Instant::now() + timeout;
        let (kind, listener, listen_path) = match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(base) => {
                let path = uds_path(base, rank);
                // a stale socket file from a crashed previous run would
                // make bind fail; the path is namespaced per run by the
                // launcher, so removing it is safe
                let _ = std::fs::remove_file(&path);
                (
                    "uds",
                    Listener::Unix(UnixListener::bind(&path)?),
                    Some(path),
                )
            }
            Endpoint::Tcp(host, port) => (
                "tcp",
                Listener::Tcp(TcpListener::bind((host.as_str(), tcp_port(*port, rank)?))?),
                None,
            ),
        };
        let (tx, rx) = channel::<Envelope>();
        let counters = Arc::new(WireCounters::default());

        // Accept the size-1 incoming connections on a helper thread while
        // this thread dials out, so no connect ordering can deadlock the
        // mesh.  Each accepted peer gets a detached reader thread that
        // decodes frames into the internal channel; draining the wire
        // eagerly is what preserves the runtime's buffered non-blocking
        // send semantics (a sender can never block on a full pipe).
        let (done_tx, done_rx) = channel::<io::Result<()>>();
        if size > 1 {
            let tx = tx.clone();
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                let r = accept_all(listener, rank, size, deadline, &tx, &counters);
                let _ = done_tx.send(r);
            });
        } else {
            drop(listener);
            let _ = done_tx.send(Ok(()));
        }

        let mut writers = Vec::with_capacity(size);
        for peer in 0..size {
            if peer == rank {
                writers.push(None);
                continue;
            }
            let mut conn = dial(endpoint, peer, deadline)?;
            conn.write_all(&encode_hello(rank, size))?;
            conn.flush()?;
            writers.push(Some(RefCell::new(conn)));
        }

        // wait for the incoming half of the mesh: a successful return
        // means every peer process is up and fully connected to us
        let remaining = deadline.saturating_duration_since(Instant::now());
        match done_rx.recv_timeout(remaining.max(Duration::from_millis(1))) {
            Ok(r) => r?,
            Err(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("rank {rank}: incoming mesh incomplete after {timeout:?}"),
                ))
            }
        }

        Ok(SocketTransport {
            rank,
            size,
            kind,
            writers,
            loopback: tx,
            rx,
            counters,
            listen_path,
        })
    }
}

#[cfg(unix)]
fn uds_path(base: &std::path::Path, rank: usize) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(format!(".{rank}"));
    PathBuf::from(os)
}

fn tcp_port(base: u16, rank: usize) -> io::Result<u16> {
    base.checked_add(
        u16::try_from(rank)
            .ok()
            .ok_or_else(|| bad_data(format!("rank {rank} too large for a tcp port range")))?,
    )
    .ok_or_else(|| bad_data(format!("tcp port {base}+{rank} overflows")))
}

/// Dial `peer`'s listener, retrying while it may not be up yet.
fn dial(endpoint: &Endpoint, peer: usize, deadline: Instant) -> io::Result<Conn> {
    let _sp = obs::span(obs::SpanKind::Transport, "transport.dial");
    loop {
        let attempt = match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(base) => UnixStream::connect(uds_path(base, peer)).map(Conn::Unix),
            Endpoint::Tcp(host, port) => {
                TcpStream::connect((host.as_str(), tcp_port(*port, peer)?)).map(|s| {
                    let _ = s.set_nodelay(true);
                    Conn::Tcp(s)
                })
            }
        };
        match attempt {
            Ok(conn) => return Ok(conn),
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionRefused
                        | io::ErrorKind::ConnectionReset
                        | io::ErrorKind::NotFound
                        | io::ErrorKind::AddrNotAvailable
                );
                if !transient || Instant::now() >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("dialing peer {peer}: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Accept, handshake and spawn a reader for each of the `size - 1` peers.
/// `my_rank` tags the accept helper and its reader threads so their spans
/// land on the owning rank's trace track.
fn accept_all(
    listener: Listener,
    my_rank: usize,
    size: usize,
    deadline: Instant,
    tx: &Sender<Envelope>,
    counters: &Arc<WireCounters>,
) -> io::Result<()> {
    obs::set_rank(my_rank);
    let _sp = obs::span(obs::SpanKind::Transport, "transport.accept");
    listener.set_nonblocking(true)?;
    let mut seen = vec![false; size];
    for _ in 0..size - 1 {
        let mut conn = loop {
            match listener.accept() {
                Ok(c) => break c,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "timed out accepting peer connections",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        conn.set_read_timeout(Some(
            deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1)),
        ))?;
        let mut hello = [0u8; HELLO_BYTES];
        conn.read_exact(&mut hello)?;
        let peer = decode_hello(&hello, size)?;
        if std::mem::replace(&mut seen[peer], true) {
            return Err(bad_data(format!("peer {peer} connected twice")));
        }
        conn.set_read_timeout(None)?;
        let tx = tx.clone();
        let counters = Arc::clone(counters);
        std::thread::spawn(move || reader_loop(conn, my_rank, peer, tx, counters));
    }
    Ok(())
}

/// Decode frames from one incoming connection into the internal queue.  A
/// clean EOF (peer finished and dropped its transport) simply ends the
/// stream; a validation failure poisons the mailbox — after a torn or
/// corrupted frame the stream position cannot be trusted, so the peer is
/// treated as failed rather than risking silent desynchronization.
fn reader_loop(
    mut conn: Conn,
    my_rank: usize,
    peer: usize,
    tx: Sender<Envelope>,
    counters: Arc<WireCounters>,
) {
    obs::set_rank(my_rank);
    loop {
        // bracket the blocking read so traces show what each connection's
        // reader was doing; the span carries the frame's wire bytes
        let t0 = if obs::enabled() { obs::now_ns() } else { 0 };
        match read_frame(&mut conn) {
            Ok(Some((env, bytes))) => {
                counters.record_recvd(bytes);
                if obs::enabled() {
                    obs::record_span(
                        obs::SpanKind::Transport,
                        obs::Phase::Other,
                        "transport.read",
                        t0,
                        bytes,
                    );
                }
                if tx.send(env).is_err() {
                    return;
                }
            }
            Ok(None) => return,
            Err(_) => {
                let _ = tx.send(Envelope::poison(peer));
                return;
            }
        }
    }
}

impl Transport for SocketTransport {
    fn world_rank(&self) -> usize {
        self.rank
    }

    fn world_size(&self) -> usize {
        self.size
    }

    fn send(&self, peer: usize, env: Envelope) -> CommResult<()> {
        if peer == self.rank {
            // loopback: counted as if it crossed the wire so the byte
            // identity against the logical stats stays exact
            let bytes = WIRE_OVERHEAD_BYTES + 8 * env.data.len() as u64;
            self.counters.record_sent(bytes);
            self.counters.record_recvd(bytes);
            return self
                .loopback
                .send(env)
                .map_err(|_| CommError::PeerGone { peer });
        }
        let buf = encode_frame(&env);
        let cell = self.writers[peer]
            .as_ref()
            .ok_or(CommError::PeerGone { peer })?;
        cell.borrow_mut()
            .write_all(&buf)
            .map_err(|_| CommError::PeerGone { peer })?;
        self.counters.record_sent(buf.len() as u64);
        Ok(())
    }

    fn recv(&self, timeout: Duration) -> Option<Envelope> {
        self.rx.recv_timeout(timeout).ok()
    }

    fn try_recv(&self) -> Option<Envelope> {
        self.rx.try_recv().ok()
    }

    fn wire_stats(&self) -> Option<WireStats> {
        Some(self.counters.snapshot())
    }

    fn name(&self) -> &'static str {
        self.kind
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // closing the writers (field drop) EOFs every peer's reader; the
        // listening socket file is ours to clean up
        if let Some(path) = &self.listen_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_env() -> Envelope {
        let mut env = Envelope::new(7, 3, 0x8000_1234, vec![1.5, -2.25, f64::NAN, 0.0]);
        env.drops = 1;
        env.corrupt = 2;
        env.corrupt_bit = 51;
        env.corrupt_seed = 0xDEAD_BEEF;
        env.redundant = true;
        env
    }

    fn assert_env_eq(a: &Envelope, b: &Envelope) {
        assert_eq!(a.ctx, b.ctx);
        assert_eq!(a.src_global, b.src_global);
        assert_eq!(a.tag, b.tag);
        assert_eq!(a.drops, b.drops);
        assert_eq!(a.corrupt, b.corrupt);
        assert_eq!(a.corrupt_bit, b.corrupt_bit);
        assert_eq!(a.corrupt_seed, b.corrupt_seed);
        assert_eq!(a.redundant, b.redundant);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.data), bits(&b.data));
    }

    #[test]
    fn frame_round_trips_bitwise() {
        let env = sample_env();
        let buf = encode_frame(&env);
        assert_eq!(buf.len() as u64, WIRE_OVERHEAD_BYTES + 8 * 4);
        let (back, bytes) = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(bytes, buf.len() as u64);
        assert_env_eq(&env, &back);
    }

    #[test]
    fn empty_payload_frame_round_trips() {
        let env = Envelope::poison(5);
        let buf = encode_frame(&env);
        assert_eq!(buf.len() as u64, WIRE_OVERHEAD_BYTES);
        let (back, _) = read_frame(&mut &buf[..]).unwrap().unwrap();
        assert_eq!(back.ctx, POISON_CTX);
        assert_eq!(back.src_global, 5);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(read_frame(&mut io::empty()).unwrap().is_none());
    }

    #[test]
    fn corrupted_frame_is_rejected() {
        let buf = encode_frame(&sample_env());
        // flip one bit anywhere except the (self-checking) length prefix
        for at in [6usize, 20, 50, buf.len() - 1] {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            let err = read_frame(&mut &bad[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte {at}");
        }
    }

    #[test]
    fn truncated_frame_is_mid_frame_eof() {
        let buf = encode_frame(&sample_env());
        let err = read_frame(&mut &buf[..buf.len() - 3]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocating() {
        let mut buf = encode_frame(&Envelope::new(0, 0, 0, vec![]));
        buf[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn endpoint_parse_round_trips() {
        let tcp = Endpoint::parse("tcp:127.0.0.1:9000").unwrap();
        assert_eq!(tcp, Endpoint::Tcp("127.0.0.1".into(), 9000));
        assert_eq!(Endpoint::parse(&tcp.to_string()).unwrap(), tcp);
        assert!(Endpoint::parse("tcp:nohost").is_err());
        assert!(Endpoint::parse("tcp::9000").is_err());
        assert!(Endpoint::parse("tcp:h:notaport").is_err());
        #[cfg(unix)]
        {
            let uds = Endpoint::parse("/tmp/agcm.ep").unwrap();
            assert_eq!(uds, Endpoint::Unix(PathBuf::from("/tmp/agcm.ep")));
            assert_eq!(Endpoint::parse(&uds.to_string()).unwrap(), uds);
        }
    }

    #[test]
    fn hello_round_trips_and_validates() {
        let b = encode_hello(3, 8);
        assert_eq!(decode_hello(&b, 8).unwrap(), 3);
        assert!(decode_hello(&b, 4).is_err(), "world size mismatch");
        let mut bad = b;
        bad[0] ^= 1;
        assert!(decode_hello(&bad, 8).is_err(), "bad magic");
    }

    #[test]
    fn mpsc_mesh_delivers_and_loops_back() {
        let mesh = MpscTransport::mesh(2);
        assert_eq!(mesh[0].world_size(), 2);
        mesh[0].send(1, Envelope::new(0, 0, 9, vec![4.0])).unwrap();
        mesh[1].send(1, Envelope::new(0, 1, 9, vec![5.0])).unwrap();
        let a = mesh[1].recv(Duration::from_secs(1)).unwrap();
        let b = mesh[1].recv(Duration::from_secs(1)).unwrap();
        assert_eq!(a.data, vec![4.0]);
        assert_eq!(b.data, vec![5.0]);
        assert!(mesh[0].try_recv().is_none());
        assert!(mesh[0].wire_stats().is_none());
    }

    /// One mesh world as threads, each with its own socket transport.
    fn socket_world<T: Send>(
        p: usize,
        endpoint: &Endpoint,
        f: impl Fn(SocketTransport) -> T + Sync,
    ) -> Vec<T> {
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (rank, slot) in out.iter_mut().enumerate() {
                let f = &f;
                scope.spawn(move || {
                    let tr = SocketTransport::connect_timeout(
                        rank,
                        p,
                        endpoint,
                        Duration::from_secs(20),
                    )
                    .expect("connect");
                    *slot = Some(f(tr));
                });
            }
        });
        out.into_iter().map(|v| v.expect("joined")).collect()
    }

    #[cfg(unix)]
    #[test]
    fn uds_world_exchanges_envelopes_bitwise() {
        let ep = Endpoint::unique_uds();
        let results = socket_world(3, &ep, |tr| {
            assert_eq!(tr.name(), "uds");
            let next = (tr.world_rank() + 1) % 3;
            let payload = vec![
                tr.world_rank() as f64,
                f64::from_bits(0x7FF0_0000_0000_0001),
            ];
            tr.send(next, Envelope::new(0, tr.world_rank(), 1, payload))
                .unwrap();
            let env = tr.recv(Duration::from_secs(10)).expect("delivered");
            (
                env.src_global,
                env.data.iter().map(|v| v.to_bits()).sum::<u64>(),
            )
        });
        for (rank, (src, _)) in results.iter().enumerate() {
            assert_eq!(*src, (rank + 2) % 3);
        }
        let payload_bits = |r: usize| (r as f64).to_bits().wrapping_add(0x7FF0_0000_0000_0001);
        for (rank, (_, bits)) in results.iter().enumerate() {
            assert_eq!(*bits, payload_bits((rank + 2) % 3), "bitwise payload");
        }
    }

    #[test]
    fn tcp_world_exchanges_envelopes() {
        // fixed base port for the test; retried dial tolerates slow bind
        let ep = Endpoint::Tcp("127.0.0.1".into(), 39211);
        let results = socket_world(2, &ep, |tr| {
            assert_eq!(tr.name(), "tcp");
            let other = 1 - tr.world_rank();
            tr.send(other, Envelope::new(0, tr.world_rank(), 2, vec![2.5]))
                .unwrap();
            tr.recv(Duration::from_secs(10))
                .expect("delivered")
                .src_global
        });
        assert_eq!(results, vec![1, 0]);
    }

    #[cfg(unix)]
    #[test]
    fn wire_stats_count_exact_frame_bytes() {
        let ep = Endpoint::unique_uds();
        let stats = socket_world(2, &ep, |tr| {
            let other = 1 - tr.world_rank();
            tr.send(other, Envelope::new(0, tr.world_rank(), 1, vec![0.0; 16]))
                .unwrap();
            tr.send(
                tr.world_rank(),
                Envelope::new(0, tr.world_rank(), 2, vec![]),
            )
            .unwrap();
            let mut got = 0;
            while got < 2 {
                if tr.recv(Duration::from_secs(10)).is_some() {
                    got += 1;
                }
            }
            tr.wire_stats().unwrap()
        });
        for s in stats {
            // one 16-word frame to the peer + one empty loopback frame
            assert_eq!(s.msgs_sent, 2);
            assert_eq!(
                s.bytes_sent,
                (WIRE_OVERHEAD_BYTES + 128) + WIRE_OVERHEAD_BYTES
            );
            assert_eq!(s.msgs_recvd, 2);
            assert_eq!(s.bytes_recvd, s.bytes_sent);
        }
    }

    #[cfg(unix)]
    #[test]
    fn single_rank_world_needs_no_peers() {
        let ep = Endpoint::unique_uds();
        let tr =
            SocketTransport::connect_timeout(0, 1, &ep, Duration::from_secs(5)).expect("connect");
        tr.send(0, Envelope::new(0, 0, 1, vec![1.0])).unwrap();
        assert_eq!(tr.recv(Duration::from_secs(1)).unwrap().data, vec![1.0]);
    }

    #[cfg(unix)]
    #[test]
    fn listener_socket_file_removed_on_drop() {
        let ep = Endpoint::unique_uds();
        let path = match &ep {
            Endpoint::Unix(base) => uds_path(base, 0),
            #[allow(unreachable_patterns)]
            _ => unreachable!(),
        };
        let tr = SocketTransport::connect_timeout(0, 1, &ep, Duration::from_secs(5)).unwrap();
        assert!(path.exists());
        drop(tr);
        assert!(!path.exists());
    }
}
