//! Error types of the communication runtime.

use std::fmt;
use std::time::Duration;

/// Errors surfaced by the message-passing runtime.
///
/// A real MPI job would abort on most of these; the simulated runtime turns
/// them into values so tests can inject failures and assert on the exact
/// failure mode (deadlock, size mismatch, invalid rank).
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// A receive matched no message within the deadlock timeout.
    DeadlockTimeout {
        /// Receiving rank (within its communicator).
        rank: usize,
        /// Expected source rank.
        src: usize,
        /// Expected tag.
        tag: u32,
        /// How long the receive waited.
        waited: Duration,
    },
    /// A rank index was outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// A received message had a different length than the receiver expected.
    SizeMismatch {
        /// Expected number of `f64` values.
        expected: usize,
        /// Received number of `f64` values.
        got: usize,
    },
    /// The peer's mailbox is gone (its thread panicked or returned early).
    PeerGone {
        /// The unreachable peer (global rank).
        peer: usize,
    },
    /// A collective was called with inconsistent arguments across ranks.
    CollectiveMismatch(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::DeadlockTimeout {
                rank,
                src,
                tag,
                waited,
            } => write!(
                f,
                "rank {rank}: no message from src {src} tag {tag} after {waited:?} (deadlock?)"
            ),
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} outside communicator of size {size}")
            }
            CommError::SizeMismatch { expected, got } => {
                write!(f, "message size mismatch: expected {expected}, got {got}")
            }
            CommError::PeerGone { peer } => write!(f, "peer rank {peer} is gone"),
            CommError::CollectiveMismatch(m) => write!(f, "collective mismatch: {m}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Convenience alias.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CommError::DeadlockTimeout {
            rank: 1,
            src: 0,
            tag: 7,
            waited: Duration::from_secs(3),
        };
        assert!(e.to_string().contains("deadlock"));
        assert!(CommError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("size 4"));
        assert!(CommError::SizeMismatch {
            expected: 3,
            got: 4
        }
        .to_string()
        .contains("expected 3"));
        assert!(CommError::PeerGone { peer: 2 }.to_string().contains("2"));
        assert!(CommError::CollectiveMismatch("x".into())
            .to_string()
            .contains("x"));
    }
}
