//! Error types of the communication runtime.

use std::fmt;
use std::time::Duration;

/// Errors surfaced by the message-passing runtime.
///
/// A real MPI job would abort on most of these; the simulated runtime turns
/// them into values so tests can inject failures and assert on the exact
/// failure mode (deadlock, size mismatch, invalid rank, peer failure,
/// payload corruption).
#[derive(Debug, Clone, PartialEq)]
pub enum CommError {
    /// A receive matched no message within the deadlock timeout.
    DeadlockTimeout {
        /// Receiving rank (within its communicator).
        rank: usize,
        /// Expected source rank.
        src: usize,
        /// Expected tag.
        tag: u32,
        /// How long the receive waited.
        waited: Duration,
        /// Operator phase active on the receiving thread.
        phase: agcm_obs::Phase,
        /// Per-rank send/recv event index when the wait gave up (the
        /// deterministic clock fault specs pin to — see
        /// [`crate::FaultPlan`]).
        events_so_far: u64,
    },
    /// A rank index was outside `0..size`.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// A received message had a different length than the receiver expected.
    SizeMismatch {
        /// Expected number of `f64` values.
        expected: usize,
        /// Received number of `f64` values.
        got: usize,
        /// Source rank of the offending message (communicator-local).
        src: usize,
        /// Tag of the offending message.
        tag: u32,
    },
    /// The peer's mailbox is gone (its thread panicked or returned early).
    PeerGone {
        /// The unreachable peer (global rank).
        peer: usize,
    },
    /// A peer rank panicked mid-run and poisoned the mailboxes; the
    /// operation can never complete.
    PeerFailed {
        /// The failed peer (global rank).
        peer: usize,
    },
    /// A framed receive failed payload validation (length/checksum frame),
    /// i.e. the payload was corrupted in flight.
    CorruptPayload {
        /// Source rank of the corrupt message (communicator-local).
        src: usize,
        /// Tag of the corrupt message.
        tag: u32,
        /// What the validation found.
        detail: String,
    },
    /// A collective was called with inconsistent arguments across ranks.
    CollectiveMismatch(String),
}

impl CommError {
    /// Whether a retry of the same receive could plausibly succeed
    /// (transient corruption / lost first delivery) as opposed to a
    /// permanent condition (dead peer, wrong program).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CommError::CorruptPayload { .. } | CommError::DeadlockTimeout { .. }
        )
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::DeadlockTimeout {
                rank,
                src,
                tag,
                waited,
                phase,
                events_so_far,
            } => write!(
                f,
                "rank {rank}: no message from src {src} tag {tag} after {waited:?} \
                 (phase {phase:?}, {events_so_far} events so far; deadlock?)"
            ),
            CommError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} outside communicator of size {size}")
            }
            CommError::SizeMismatch {
                expected,
                got,
                src,
                tag,
            } => {
                write!(
                    f,
                    "message size mismatch from src {src} tag {tag}: \
                     expected {expected}, got {got}"
                )
            }
            CommError::PeerGone { peer } => write!(f, "peer rank {peer} is gone"),
            CommError::PeerFailed { peer } => {
                write!(f, "peer rank {peer} failed (panicked mid-run)")
            }
            CommError::CorruptPayload { src, tag, detail } => {
                write!(f, "corrupt payload from src {src} tag {tag}: {detail}")
            }
            CommError::CollectiveMismatch(m) => write!(f, "collective mismatch: {m}"),
        }
    }
}

impl std::error::Error for CommError {}

/// Convenience alias.
pub type CommResult<T> = Result<T, CommError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = CommError::DeadlockTimeout {
            rank: 1,
            src: 0,
            tag: 7,
            waited: Duration::from_secs(3),
            phase: agcm_obs::Phase::Other,
            events_so_far: 12,
        };
        assert!(e.to_string().contains("deadlock"));
        assert!(e.to_string().contains("12 events"));
        assert!(CommError::InvalidRank { rank: 9, size: 4 }
            .to_string()
            .contains("size 4"));
        let sm = CommError::SizeMismatch {
            expected: 3,
            got: 4,
            src: 2,
            tag: 0x55,
        };
        assert!(sm.to_string().contains("expected 3"));
        assert!(sm.to_string().contains("src 2"));
        assert!(CommError::PeerGone { peer: 2 }.to_string().contains("2"));
        assert!(CommError::PeerFailed { peer: 3 }
            .to_string()
            .contains("panicked"));
        assert!(CommError::CorruptPayload {
            src: 1,
            tag: 9,
            detail: "checksum".into()
        }
        .to_string()
        .contains("checksum"));
        assert!(CommError::CollectiveMismatch("x".into())
            .to_string()
            .contains("x"));
    }

    #[test]
    fn transient_classification() {
        assert!(CommError::CorruptPayload {
            src: 0,
            tag: 1,
            detail: String::new()
        }
        .is_transient());
        assert!(CommError::DeadlockTimeout {
            rank: 0,
            src: 1,
            tag: 2,
            waited: Duration::ZERO,
            phase: agcm_obs::Phase::Other,
            events_so_far: 0,
        }
        .is_transient());
        assert!(!CommError::PeerFailed { peer: 1 }.is_transient());
        assert!(!CommError::PeerGone { peer: 1 }.is_transient());
        assert!(!CommError::SizeMismatch {
            expected: 1,
            got: 2,
            src: 0,
            tag: 0
        }
        .is_transient());
    }
}
