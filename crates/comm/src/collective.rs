//! Collective operations.
//!
//! The summation operator `C` of the dynamical core is an `allreduce` along
//! the z direction; the distributed FFT of the X-Y decomposition needs
//! `alltoall`; `split` (in [`crate::runtime`]) builds the per-axis
//! communicators from the world.  All collectives here are implemented on
//! top of the point-to-point layer, so every byte they move is counted by
//! the same statistics the benchmark harness reads.
//!
//! Two allreduce algorithms are provided, because the paper's Theorem 4.2
//! cites the **ring** algorithm as the one attaining the data-movement lower
//! bound `Ω(2(p_z - 1) n_x n_y)` for long vectors (Thakur, Rabenseifner &
//! Gropp 2005):
//!
//! * [`AllreduceAlgo::Ring`] — reduce-scatter + allgather; bandwidth-optimal,
//!   `2(p-1)` messages of `n/p` elements per rank,
//! * [`AllreduceAlgo::RecursiveDoubling`] — `log₂ p` rounds of full-vector
//!   exchanges; latency-optimal for short vectors (used for ablation).

use crate::error::{CommError, CommResult};
use crate::runtime::Communicator;
use crate::stats::CollectiveKind;
use agcm_obs as obs;

/// Reduction operator for `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    #[inline]
    fn apply(self, acc: &mut [f64], other: &[f64]) {
        debug_assert_eq!(acc.len(), other.len());
        match self {
            ReduceOp::Sum => acc.iter_mut().zip(other).for_each(|(a, &b)| *a += b),
            ReduceOp::Max => acc.iter_mut().zip(other).for_each(|(a, &b)| *a = a.max(b)),
            ReduceOp::Min => acc.iter_mut().zip(other).for_each(|(a, &b)| *a = a.min(b)),
        }
    }
}

/// Allreduce algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllreduceAlgo {
    /// Bandwidth-optimal ring (the paper's reference algorithm).
    #[default]
    Ring,
    /// Latency-optimal recursive doubling.
    RecursiveDoubling,
}

/// Balanced block partition (same convention as `agcm_mesh::decomp`): the
/// first `n mod p` blocks get one extra element.
fn block(n: usize, p: usize, r: usize) -> std::ops::Range<usize> {
    let base = n / p;
    let rem = n % p;
    let start = r * base + r.min(rem);
    start..start + base + usize::from(r < rem)
}

impl Communicator {
    /// Synchronize all ranks (dissemination barrier, ⌈log₂ p⌉ rounds).
    pub fn barrier(&self) -> CommResult<()> {
        self.bump_coll_seq();
        let _span = obs::span(obs::SpanKind::Collective, "barrier");
        let p = self.size();
        self.stats()
            .record_collective(CollectiveKind::Barrier, p, 0);
        let mut k = 0u32;
        let mut step = 1usize;
        while step < p {
            let tag = self.next_coll_tag(k);
            let to = (self.rank() + step) % p;
            let from = (self.rank() + p - step) % p;
            self.send_raw(to, tag, Vec::new())?;
            self.recv_raw(from, tag)?;
            step <<= 1;
            k += 1;
        }
        Ok(())
    }

    /// In-place allreduce with the default (ring) algorithm.
    pub fn allreduce_sum(&self, data: &mut [f64]) -> CommResult<()> {
        self.allreduce(ReduceOp::Sum, data, AllreduceAlgo::Ring)
    }

    /// In-place allreduce.
    pub fn allreduce(&self, op: ReduceOp, data: &mut [f64], algo: AllreduceAlgo) -> CommResult<()> {
        self.bump_coll_seq();
        let mut span = obs::span(obs::SpanKind::Collective, "allreduce");
        span.add_bytes(8 * data.len() as u64);
        let p = self.size();
        self.stats()
            .record_collective(CollectiveKind::Allreduce, p, data.len());
        if p == 1 {
            return Ok(());
        }
        match algo {
            AllreduceAlgo::Ring => self.allreduce_ring(op, data),
            AllreduceAlgo::RecursiveDoubling => self.allreduce_rd(op, data),
        }
    }

    /// Ring allreduce: reduce-scatter then allgather, `2(p-1)` rounds.
    fn allreduce_ring(&self, op: ReduceOp, data: &mut [f64]) -> CommResult<()> {
        let p = self.size();
        let r = self.rank();
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        let n = data.len();
        // reduce-scatter
        for s in 0..p - 1 {
            let tag = self.next_coll_tag(s as u32);
            let send_b = block(n, p, (r + p - s) % p);
            let recv_b = block(n, p, (r + p - s - 1) % p);
            self.send_raw(next, tag, data[send_b].to_vec())?;
            let incoming = self.recv_raw(prev, tag)?;
            if incoming.len() != recv_b.len() {
                return Err(CommError::SizeMismatch {
                    expected: recv_b.len(),
                    got: incoming.len(),
                    src: prev,
                    tag,
                });
            }
            op.apply(&mut data[recv_b], &incoming);
        }
        // allgather of the reduced blocks
        for s in 0..p - 1 {
            let tag = self.next_coll_tag((p - 1 + s) as u32);
            let send_b = block(n, p, (r + 1 + p - s) % p);
            let recv_b = block(n, p, (r + p - s) % p);
            self.send_raw(next, tag, data[send_b].to_vec())?;
            let incoming = self.recv_raw(prev, tag)?;
            if incoming.len() != recv_b.len() {
                return Err(CommError::SizeMismatch {
                    expected: recv_b.len(),
                    got: incoming.len(),
                    src: prev,
                    tag,
                });
            }
            data[recv_b].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// Recursive-doubling allreduce (MPICH-style non-power-of-two handling).
    fn allreduce_rd(&self, op: ReduceOp, data: &mut [f64]) -> CommResult<()> {
        let p = self.size();
        let r = self.rank();
        let pof2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
        let rem = p - pof2;
        // Fold the first 2*rem ranks pairwise so pof2 ranks stay active.
        let new_rank: Option<usize> = if r < 2 * rem {
            if r % 2 == 1 {
                let tag = self.next_coll_tag(0);
                self.send_raw(r - 1, tag, data.to_vec())?;
                None
            } else {
                let tag = self.next_coll_tag(0);
                let incoming = self.recv_raw(r + 1, tag)?;
                op.apply(data, &incoming);
                Some(r / 2)
            }
        } else {
            Some(r - rem)
        };
        if let Some(nr) = new_rank {
            let to_real = |v: usize| if v < rem { v * 2 } else { v + rem };
            let mut mask = 1usize;
            let mut round = 1u32;
            while mask < pof2 {
                let partner = to_real(nr ^ mask);
                let tag = self.next_coll_tag(round);
                self.send_raw(partner, tag, data.to_vec())?;
                let incoming = self.recv_raw(partner, tag)?;
                op.apply(data, &incoming);
                mask <<= 1;
                round += 1;
            }
        }
        // Send results back to the folded (odd) ranks.
        if r < 2 * rem {
            let tag = self.next_coll_tag(63);
            if r.is_multiple_of(2) {
                self.send_raw(r + 1, tag, data.to_vec())?;
            } else {
                let incoming = self.recv_raw(r - 1, tag)?;
                data.copy_from_slice(&incoming);
            }
        }
        Ok(())
    }

    /// Reduce to `root` (binomial tree).  `data` holds this rank's
    /// contribution on entry and the reduced result on exit at the root
    /// (other ranks' buffers end up holding partial sums).
    pub fn reduce(&self, root: usize, op: ReduceOp, data: &mut [f64]) -> CommResult<()> {
        self.bump_coll_seq();
        let mut span = obs::span(obs::SpanKind::Collective, "reduce");
        span.add_bytes(8 * data.len() as u64);
        let p = self.size();
        self.stats()
            .record_collective(CollectiveKind::Reduce, p, data.len());
        if p == 1 {
            return Ok(());
        }
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            let tag = self.next_coll_tag(round);
            if vr & mask == 0 {
                let src = vr | mask;
                if src < p {
                    let incoming = self.recv_raw((src + root) % p, tag)?;
                    op.apply(data, &incoming);
                }
            } else {
                let dst = vr & !mask;
                self.send_raw((dst + root) % p, tag, data.to_vec())?;
                break;
            }
            mask <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcast `data` from `root` (binomial tree).
    pub fn bcast(&self, root: usize, data: &mut [f64]) -> CommResult<()> {
        self.bump_coll_seq();
        let mut span = obs::span(obs::SpanKind::Collective, "bcast");
        span.add_bytes(8 * data.len() as u64);
        let p = self.size();
        self.stats()
            .record_collective(CollectiveKind::Bcast, p, data.len());
        if p == 1 {
            return Ok(());
        }
        let vr = (self.rank() + p - root) % p;
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            if vr & mask != 0 {
                let src = vr - mask;
                let tag = self.next_coll_tag(round);
                let incoming = self.recv_raw((src + root) % p, tag)?;
                if incoming.len() != data.len() {
                    return Err(CommError::SizeMismatch {
                        expected: data.len(),
                        got: incoming.len(),
                        src: (src + root) % p,
                        tag,
                    });
                }
                data.copy_from_slice(&incoming);
                break;
            }
            mask <<= 1;
            round += 1;
        }
        // rounds below `mask` are mine to forward
        let mut m = mask >> 1;
        loop {
            if m == 0 {
                break;
            }
            if vr + m < p {
                let dst = vr + m;
                let round = m.trailing_zeros();
                let tag = self.next_coll_tag(round);
                self.send_raw((dst + root) % p, tag, data.to_vec())?;
            }
            m >>= 1;
        }
        Ok(())
    }

    /// All-gather equal-size contributions; returns the concatenation in
    /// rank order (`p * data.len()` values).  Ring algorithm, `p-1` rounds.
    pub fn allgather(&self, data: &[f64]) -> CommResult<Vec<f64>> {
        self.bump_coll_seq();
        let mut span = obs::span(obs::SpanKind::Collective, "allgather");
        span.add_bytes(8 * data.len() as u64);
        let p = self.size();
        self.stats()
            .record_collective(CollectiveKind::Allgather, p, data.len());
        let n = data.len();
        let mut out = vec![0.0; p * n];
        let r = self.rank();
        out[r * n..(r + 1) * n].copy_from_slice(data);
        if p == 1 {
            return Ok(out);
        }
        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        for s in 0..p - 1 {
            let tag = self.next_coll_tag(s as u32);
            let send_blk = (r + p - s) % p;
            let recv_blk = (r + p - s - 1) % p;
            self.send_raw(next, tag, out[send_blk * n..(send_blk + 1) * n].to_vec())?;
            let incoming = self.recv_raw(prev, tag)?;
            if incoming.len() != n {
                return Err(CommError::SizeMismatch {
                    expected: n,
                    got: incoming.len(),
                    src: prev,
                    tag,
                });
            }
            out[recv_blk * n..(recv_blk + 1) * n].copy_from_slice(&incoming);
        }
        Ok(out)
    }

    /// Gather variable-size contributions to `root`; returns `Some(per-rank
    /// vectors)` at the root, `None` elsewhere.
    pub fn gatherv(&self, root: usize, data: &[f64]) -> CommResult<Option<Vec<Vec<f64>>>> {
        self.bump_coll_seq();
        let mut span = obs::span(obs::SpanKind::Collective, "gatherv");
        span.add_bytes(8 * data.len() as u64);
        let p = self.size();
        self.stats()
            .record_collective(CollectiveKind::Gather, p, data.len());
        if self.rank() == root {
            let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
            out[root] = data.to_vec();
            for (r, slot) in out.iter_mut().enumerate() {
                if r != root {
                    let tag = self.next_coll_tag(0);
                    *slot = self.recv_raw(r, tag)?;
                }
            }
            Ok(Some(out))
        } else {
            let tag = self.next_coll_tag(0);
            self.send_raw(root, tag, data.to_vec())?;
            Ok(None)
        }
    }

    /// Exclusive prefix sum across ranks: on return `data` holds the
    /// element-wise sum of the `data` of all ranks with a *lower* rank
    /// (zeros on rank 0).  Implemented over allgather — the dynamical core
    /// uses this for the hydrostatic / continuity integrals along z, whose
    /// data movement the paper folds into the summation operator `C`.
    pub fn exscan_sum(&self, data: &mut [f64]) -> CommResult<()> {
        let all = self.allgather(data)?;
        let n = data.len();
        data.fill(0.0);
        for r in 0..self.rank() {
            for (d, &v) in data.iter_mut().zip(&all[r * n..(r + 1) * n]) {
                *d += v;
            }
        }
        Ok(())
    }

    /// Personalized all-to-all with per-destination payloads.
    /// `send[d]` goes to rank `d`; returns `recv[s]` from each rank `s`.
    /// Pairwise exchange, `p-1` rounds.
    pub fn alltoallv(&self, send: &[Vec<f64>]) -> CommResult<Vec<Vec<f64>>> {
        self.bump_coll_seq();
        let p = self.size();
        if send.len() != p {
            return Err(CommError::CollectiveMismatch(format!(
                "alltoallv needs {p} send buffers, got {}",
                send.len()
            )));
        }
        let r = self.rank();
        // record only what actually crosses the network (the own-block
        // copy below is local), so traffic accounting stays exact
        let total: usize = send
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != r)
            .map(|(_, v)| v.len())
            .sum();
        let mut span = obs::span(obs::SpanKind::Collective, "alltoallv");
        span.add_bytes(8 * total as u64);
        self.stats()
            .record_collective(CollectiveKind::Alltoall, p, total);
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); p];
        out[r] = send[r].clone();
        for i in 1..p {
            let dst = (r + i) % p;
            let src = (r + p - i) % p;
            let tag = self.next_coll_tag(i as u32);
            self.send_raw(dst, tag, send[dst].clone())?;
            out[src] = self.recv_raw(src, tag)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Universe;

    fn expected_sum(p: usize, n: usize) -> Vec<f64> {
        // rank r contributes [r, r+1, ..]: sum over r of (r + i)
        (0..n)
            .map(|i| (0..p).map(|r| (r + i) as f64).sum())
            .collect()
    }

    #[test]
    fn allreduce_ring_matches_serial_fold() {
        for p in [1usize, 2, 3, 4, 5, 8] {
            for n in [1usize, 3, 7, 16, 33] {
                let results = Universe::run(p, |comm| {
                    let mut data: Vec<f64> = (0..n).map(|i| (comm.rank() + i) as f64).collect();
                    comm.allreduce(ReduceOp::Sum, &mut data, AllreduceAlgo::Ring)
                        .unwrap();
                    data
                });
                let want = expected_sum(p, n);
                for r in &results {
                    assert_eq!(r, &want, "p={p} n={n}");
                }
            }
        }
    }

    #[test]
    fn allreduce_recursive_doubling_matches() {
        for p in [2usize, 3, 4, 5, 6, 7, 8] {
            let n = 10;
            let results = Universe::run(p, |comm| {
                let mut data: Vec<f64> = (0..n).map(|i| (comm.rank() + i) as f64).collect();
                comm.allreduce(ReduceOp::Sum, &mut data, AllreduceAlgo::RecursiveDoubling)
                    .unwrap();
                data
            });
            let want = expected_sum(p, n);
            for r in &results {
                assert_eq!(r, &want, "p={p}");
            }
        }
    }

    #[test]
    fn allreduce_max_min() {
        let results = Universe::run(4, |comm| {
            let mut mx = vec![comm.rank() as f64];
            comm.allreduce(ReduceOp::Max, &mut mx, AllreduceAlgo::Ring)
                .unwrap();
            let mut mn = vec![comm.rank() as f64];
            comm.allreduce(ReduceOp::Min, &mut mn, AllreduceAlgo::RecursiveDoubling)
                .unwrap();
            (mx[0], mn[0])
        });
        for (mx, mn) in results {
            assert_eq!(mx, 3.0);
            assert_eq!(mn, 0.0);
        }
    }

    #[test]
    fn allreduce_shorter_than_comm() {
        // vector shorter than p: some ring blocks are empty
        let results = Universe::run(6, |comm| {
            let mut data = vec![comm.rank() as f64, 1.0];
            comm.allreduce_sum(&mut data).unwrap();
            data
        });
        for r in results {
            assert_eq!(r, vec![15.0, 6.0]);
        }
    }

    #[test]
    fn reduce_to_each_root() {
        for root in 0..4 {
            let results = Universe::run(4, |comm| {
                let mut data = vec![comm.rank() as f64 + 1.0];
                comm.reduce(root, ReduceOp::Sum, &mut data).unwrap();
                data[0]
            });
            assert_eq!(results[root], 10.0, "root={root}");
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..5 {
            let results = Universe::run(5, |comm| {
                let mut data = vec![0.0; 4];
                if comm.rank() == root {
                    data = vec![1.0, 2.0, 3.0, 4.0];
                }
                comm.bcast(root, &mut data).unwrap();
                data
            });
            for r in results {
                assert_eq!(r, vec![1.0, 2.0, 3.0, 4.0], "root={root}");
            }
        }
    }

    #[test]
    fn allgather_rank_order() {
        for p in [1usize, 2, 3, 5, 8] {
            let results = Universe::run(p, |comm| {
                comm.allgather(&[comm.rank() as f64, -(comm.rank() as f64)])
                    .unwrap()
            });
            let want: Vec<f64> = (0..p).flat_map(|r| [r as f64, -(r as f64)]).collect();
            for r in &results {
                assert_eq!(r, &want, "p={p}");
            }
        }
    }

    #[test]
    fn gatherv_variable_sizes() {
        let results = Universe::run(4, |comm| {
            let data: Vec<f64> = (0..comm.rank() + 1).map(|i| i as f64).collect();
            comm.gatherv(2, &data).unwrap()
        });
        let gathered = results[2].as_ref().unwrap();
        assert_eq!(gathered.len(), 4);
        for (r, v) in gathered.iter().enumerate() {
            assert_eq!(v.len(), r + 1);
        }
        assert!(results[0].is_none());
    }

    #[test]
    fn alltoallv_transpose() {
        let p = 4;
        let results = Universe::run(p, |comm| {
            let send: Vec<Vec<f64>> = (0..p)
                .map(|d| vec![(comm.rank() * 10 + d) as f64])
                .collect();
            comm.alltoallv(&send).unwrap()
        });
        for (r, recv) in results.iter().enumerate() {
            for (s, v) in recv.iter().enumerate() {
                assert_eq!(v[0], (s * 10 + r) as f64, "recv[{s}] at rank {r}");
            }
        }
    }

    #[test]
    fn alltoallv_wrong_bufcount() {
        let results = Universe::run(2, |comm| comm.alltoallv(&[vec![1.0]]).err());
        assert!(matches!(results[0], Some(CommError::CollectiveMismatch(_))));
    }

    #[test]
    fn exscan_prefix_sums() {
        for p in [1usize, 2, 4, 5] {
            let results = Universe::run(p, |comm| {
                let mut data = vec![comm.rank() as f64 + 1.0, 10.0];
                comm.exscan_sum(&mut data).unwrap();
                data
            });
            for (r, d) in results.iter().enumerate() {
                // sum of (1..=r) and r copies of 10
                let want0: f64 = (1..=r).map(|v| v as f64).sum();
                assert_eq!(d[0], want0, "p={p} r={r}");
                assert_eq!(d[1], 10.0 * r as f64);
            }
        }
    }

    #[test]
    fn barrier_completes() {
        for p in [1usize, 2, 3, 7] {
            let results = Universe::run(p, |comm| {
                for _ in 0..5 {
                    comm.barrier().unwrap();
                }
                true
            });
            assert!(results.iter().all(|&b| b));
        }
    }

    #[test]
    fn consecutive_collectives_do_not_cross_match() {
        // two back-to-back allreduces with different data; sequence-stamped
        // tags must keep the rounds separate even under thread-timing skew
        let results = Universe::run(4, |comm| {
            let mut a = vec![1.0];
            comm.allreduce_sum(&mut a).unwrap();
            let mut b = vec![10.0];
            comm.allreduce_sum(&mut b).unwrap();
            (a[0], b[0])
        });
        for (a, b) in results {
            assert_eq!((a, b), (4.0, 40.0));
        }
    }

    #[test]
    fn collective_on_split_axis_comm() {
        // 2x3 grid: allreduce along "rows" — the dynamical core's z-sum
        let results = Universe::run(6, |comm| {
            let row = comm.rank() / 3;
            let sub = comm.split(row, comm.rank()).unwrap();
            let mut v = vec![comm.rank() as f64];
            sub.allreduce_sum(&mut v).unwrap();
            v[0]
        });
        assert_eq!(results, vec![3.0, 3.0, 3.0, 12.0, 12.0, 12.0]);
    }

    #[test]
    fn stats_see_collective_traffic() {
        let results = Universe::run(4, |comm| {
            let mut v = vec![0.0; 64];
            comm.allreduce_sum(&mut v).unwrap();
            comm.stats().snapshot()
        });
        for s in results {
            assert_eq!(s.collective_calls, 1);
            assert_eq!(s.collective_elems, 64);
            // ring: 2(p-1) = 6 messages of ~n/p = 16 elements
            assert_eq!(s.p2p_sends, 6);
            assert_eq!(s.p2p_send_elems, 96);
        }
    }
}
