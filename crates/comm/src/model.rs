//! α–β communication and compute cost model.
//!
//! The paper's measurements were taken on Tianhe-2 at up to 1024 MPI ranks.
//! Running 1024 OS threads on one machine would measure scheduler noise, not
//! network behaviour, so the benchmark harness predicts wall time from the
//! *exact traffic* the algorithms generate (message counts, byte volumes,
//! collective shapes — all produced by the same code that executes the real
//! data movement at small rank counts) through this model:
//!
//! * a point-to-point message of `b` bytes costs `α + β·b`,
//! * the ring allreduce of `n` elements on `p` ranks costs
//!   `2(p-1)·α + 2·((p-1)/p)·8n·β` (Thakur et al. 2005 — the algorithm the
//!   paper's Theorem 4.2 cites as attaining the lower bound),
//! * computation costs `γ` per point-update,
//! * overlapped communication is credited against concurrent computation
//!   ([`CostModel::overlap`]), which is how §4.3.1's
//!   compute/communication overlap enters the predictions.
//!
//! The `tianhe2` preset is calibrated to the scales reported in the paper
//! (TH Express-2: ~µs latency, ~GB/s per-rank effective bandwidth, Ivy
//! Bridge cores).  Absolute seconds are indicative; EXPERIMENTS.md compares
//! *shapes* (orderings, speedup ratios, crossover points), which are
//! insensitive to the exact calibration.

use crate::stats::{CollectiveEvent, CollectiveKind, StatsSnapshot};

/// Linear (α–β–γ) machine model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency \[s\] (software + injection overhead).
    pub alpha: f64,
    /// Per-byte transfer time \[s/B\] (inverse effective bandwidth).
    pub beta: f64,
    /// Per point-update compute time \[s\] for one operator application on
    /// one mesh point.
    pub gamma: f64,
    /// Per communication-*round* synchronization cost \[s\]: load-imbalance
    /// skew absorbed at every exchange or collective, independent of how
    /// many messages the round carries.  This is the dominant term in the
    /// paper's measurements (its per-exchange stencil cost is nearly
    /// constant: 17,400 s/13 ≈ 2,800 s/2 per step-exchange over the run).
    pub sync: f64,
    /// Human-readable preset name.
    pub name: &'static str,
}

impl CostModel {
    /// Tianhe-2-like preset, calibrated to the *application-level* costs
    /// the paper measures rather than micro-benchmark numbers:
    ///
    /// * `α = 5 µs` per message (MPI + injection overhead),
    /// * `sync = 2.2 ms` per communication round — the synchronization
    ///   skew of the load-imbalanced latitude–longitude mesh, pinned down
    ///   by the paper's own stencil numbers (≈ constant cost per exchange:
    ///   17,400 s / 13 per-step exchanges ≈ 2,800 s / 2 over the 10-year
    ///   run ≈ 2.5 ms each),
    /// * `β = 1/(10 GB/s)` effective per-rank bandwidth,
    /// * `γ = 12 ns` per ~150-flop point-update (Ivy Bridge core at
    ///   ~12 Gflop/s effective).
    pub fn tianhe2() -> Self {
        CostModel {
            alpha: 5.0e-6,
            beta: 1.0 / 1.0e10,
            gamma: 1.2e-8,
            sync: 2.2e-3,
            name: "tianhe2",
        }
    }

    /// A latency-heavy commodity cluster (Gigabit-Ethernet-like): stresses
    /// the message-count reduction of the communication-avoiding algorithm.
    pub fn ethernet_cluster() -> Self {
        CostModel {
            alpha: 3.0e-5,
            beta: 1.0 / 1.0e9,
            gamma: 5.0e-8,
            sync: 5.0e-3,
            name: "ethernet",
        }
    }

    /// An idealized zero-latency, infinite-bandwidth network: isolates pure
    /// computation (used by ablation benches).
    pub fn ideal_network() -> Self {
        CostModel {
            alpha: 0.0,
            beta: 0.0,
            gamma: 5.0e-8,
            sync: 0.0,
            name: "ideal",
        }
    }

    /// Time of one point-to-point message of `elems` `f64` values.
    pub fn p2p_message(&self, elems: usize) -> f64 {
        self.alpha + self.beta * (elems as f64 * 8.0)
    }

    /// Time of `msgs` messages carrying `elems` values in total.
    pub fn p2p_total(&self, msgs: u64, elems: u64) -> f64 {
        self.alpha * msgs as f64 + self.beta * (elems as f64 * 8.0)
    }

    /// One halo-exchange round of `msgs` messages totalling `elems` values:
    /// the per-round synchronization plus the per-message and per-byte
    /// terms.
    pub fn exchange_round(&self, msgs: u64, elems: u64) -> f64 {
        self.sync + self.p2p_total(msgs, elems)
    }

    /// Ring allreduce of `elems` values over `p` ranks.
    pub fn allreduce_ring(&self, p: usize, elems: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        self.sync
            + 2.0 * (pf - 1.0) * self.alpha
            + 2.0 * ((pf - 1.0) / pf) * (elems as f64 * 8.0) * self.beta
    }

    /// Recursive-doubling allreduce of `elems` values over `p` ranks.
    pub fn allreduce_rd(&self, p: usize, elems: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        self.sync + rounds * (self.alpha + elems as f64 * 8.0 * self.beta)
    }

    /// Binomial broadcast/reduce of `elems` values over `p` ranks.
    pub fn binomial(&self, p: usize, elems: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.sync + (p as f64).log2().ceil() * (self.alpha + elems as f64 * 8.0 * self.beta)
    }

    /// Ring allgather where each rank contributes `elems` values.
    pub fn allgather_ring(&self, p: usize, elems: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.sync + (p as f64 - 1.0) * (self.alpha + elems as f64 * 8.0 * self.beta)
    }

    /// Pairwise alltoall moving `total_elems` values from this rank.
    pub fn alltoall_pairwise(&self, p: usize, total_elems: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.sync + (p as f64 - 1.0) * self.alpha + total_elems as f64 * 8.0 * self.beta
    }

    /// Dissemination barrier over `p` ranks.
    pub fn barrier(&self, p: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        self.sync + (p as f64).log2().ceil() * self.alpha
    }

    /// Time of one recorded collective event.
    pub fn collective_event(&self, e: &CollectiveEvent) -> f64 {
        match e.kind {
            CollectiveKind::Allreduce => self.allreduce_ring(e.comm_size, e.elems),
            CollectiveKind::Reduce | CollectiveKind::Bcast => self.binomial(e.comm_size, e.elems),
            CollectiveKind::Allgather | CollectiveKind::Gather => {
                self.allgather_ring(e.comm_size, e.elems)
            }
            CollectiveKind::Alltoall => self.alltoall_pairwise(e.comm_size, e.elems),
            CollectiveKind::Barrier => self.barrier(e.comm_size),
        }
    }

    /// Total predicted time of a batch of collective events.
    pub fn collective_total(&self, events: &[CollectiveEvent]) -> f64 {
        events.iter().map(|e| self.collective_event(e)).sum()
    }

    /// Compute time of `updates` point-updates.
    pub fn compute(&self, updates: u64) -> f64 {
        self.gamma * updates as f64
    }

    /// Effective time of a communication phase overlapped with concurrent
    /// computation: the exposed communication is what exceeds the overlap
    /// window, and both always cost at least the computation itself.
    pub fn overlap(&self, comm_time: f64, concurrent_compute: f64) -> f64 {
        comm_time.max(concurrent_compute)
    }

    /// Predicted point-to-point time of a stats delta (collectives excluded;
    /// their internal p2p traffic is billed via [`Self::collective_event`],
    /// so callers must subtract it — see [`p2p_only_delta`]).
    pub fn p2p_from_snapshot(&self, d: &StatsSnapshot) -> f64 {
        self.p2p_total(d.p2p_sends, d.p2p_send_elems)
    }
}

/// Remove the internal point-to-point traffic of the listed collectives from
/// a stats delta, leaving only genuine (stencil/halo) p2p traffic.
///
/// The runtime implements collectives on top of p2p, so its counters see
/// both; the paper reports them separately (Figures 6 vs 7).  Ring
/// allreduce contributes `2(p-1)` messages of `≈n/p` elements, etc.
pub fn p2p_only_delta(d: &StatsSnapshot, events: &[CollectiveEvent]) -> StatsSnapshot {
    let mut msgs: u64 = 0;
    let mut elems: u64 = 0;
    for e in events {
        let p = e.comm_size as u64;
        if p <= 1 {
            continue;
        }
        let (m, v) = match e.kind {
            CollectiveKind::Allreduce => {
                // ring: 2(p-1) messages totalling ~2n(p-1)/p elements
                (2 * (p - 1), 2 * (e.elems as u64) * (p - 1) / p)
            }
            CollectiveKind::Bcast => {
                // binomial: a rank sends/recvs <= log2 p messages; count the
                // average of 1 recv + forwarded sends ~ log2(p) bound
                (
                    p.ilog2() as u64 + 1,
                    (p.ilog2() as u64 + 1) * e.elems as u64,
                )
            }
            CollectiveKind::Reduce => (1, e.elems as u64),
            CollectiveKind::Allgather => (p - 1, (p - 1) * e.elems as u64),
            CollectiveKind::Gather => (1, e.elems as u64),
            CollectiveKind::Alltoall => (p - 1, e.elems as u64),
            CollectiveKind::Barrier => (p.ilog2() as u64 + 1, 0),
        };
        msgs += m;
        elems += v;
    }
    StatsSnapshot {
        p2p_sends: d.p2p_sends.saturating_sub(msgs),
        p2p_send_elems: d.p2p_send_elems.saturating_sub(elems),
        p2p_recvs: d.p2p_recvs.saturating_sub(msgs),
        p2p_recv_elems: d.p2p_recv_elems.saturating_sub(elems),
        collective_calls: d.collective_calls,
        collective_elems: d.collective_elems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_linear_in_size_and_count() {
        let m = CostModel::tianhe2();
        let one = m.p2p_message(1000);
        assert!(one > m.alpha);
        assert!((m.p2p_total(2, 2000) - 2.0 * one).abs() < 1e-15);
    }

    #[test]
    fn ring_allreduce_bandwidth_term_saturates() {
        let m = CostModel::tianhe2();
        // as p grows, bandwidth term approaches 2*n*8*beta, latency grows
        let t4 = m.allreduce_ring(4, 1_000_000);
        let t1024 = m.allreduce_ring(1024, 1_000_000);
        let bw_limit = 2.0 * 8.0e6 * m.beta;
        assert!(t4 < t1024); // latency term dominates growth here
        assert!(t1024 > bw_limit);
        assert!(m.allreduce_ring(1, 100) == 0.0);
    }

    #[test]
    fn rd_beats_ring_for_small_vectors() {
        let m = CostModel::tianhe2();
        // short vector: recursive doubling (log p latency) wins
        assert!(m.allreduce_rd(64, 4) < m.allreduce_ring(64, 4));
        // long vector: ring (bandwidth-optimal) wins
        assert!(m.allreduce_ring(64, 10_000_000) < m.allreduce_rd(64, 10_000_000));
    }

    #[test]
    fn overlap_credits_computation() {
        let m = CostModel::tianhe2();
        assert_eq!(m.overlap(2.0, 5.0), 5.0); // comm fully hidden
        assert_eq!(m.overlap(5.0, 2.0), 5.0); // comm exposed
    }

    #[test]
    fn collective_event_dispatch() {
        let m = CostModel::tianhe2();
        let e = CollectiveEvent {
            kind: CollectiveKind::Allreduce,
            comm_size: 8,
            elems: 100,
            phase: agcm_obs::Phase::Other,
        };
        assert!((m.collective_event(&e) - m.allreduce_ring(8, 100)).abs() < 1e-18);
        let b = CollectiveEvent {
            kind: CollectiveKind::Barrier,
            comm_size: 8,
            elems: 0,
            phase: agcm_obs::Phase::Other,
        };
        assert!((m.collective_event(&b) - (m.sync + 3.0 * m.alpha)).abs() < 1e-18);
        assert!(m.collective_total(&[e, b]) > 0.0);
    }

    #[test]
    fn p2p_only_subtracts_ring_traffic() {
        // 1 allreduce of 64 elems on 4 ranks = 6 msgs, 96 elems (measured in
        // collective.rs test); plus 2 genuine halo messages of 50 elems
        let d = StatsSnapshot {
            p2p_sends: 8,
            p2p_send_elems: 196,
            p2p_recvs: 8,
            p2p_recv_elems: 196,
            collective_calls: 1,
            collective_elems: 64,
        };
        let ev = [CollectiveEvent {
            kind: CollectiveKind::Allreduce,
            comm_size: 4,
            elems: 64,
            phase: agcm_obs::Phase::Other,
        }];
        let p = p2p_only_delta(&d, &ev);
        assert_eq!(p.p2p_sends, 2);
        assert_eq!(p.p2p_send_elems, 100);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        let th = CostModel::tianhe2();
        let eth = CostModel::ethernet_cluster();
        assert!(th.alpha < eth.alpha);
        assert!(th.beta < eth.beta);
        assert_eq!(CostModel::ideal_network().p2p_message(1 << 20), 0.0);
    }

    #[test]
    fn compute_scales_linearly() {
        let m = CostModel::tianhe2();
        assert!((m.compute(2_000_000) - 2.0 * m.compute(1_000_000)).abs() < 1e-12);
    }
}
