//! Per-rank communication statistics.
//!
//! The paper's evaluation separates *collective* communication (Figure 6)
//! from *stencil* (point-to-point) communication (Figure 7).  The runtime
//! counts every message and collective it executes; the dynamical core takes
//! [`StatsSnapshot`]s around each phase and reports deltas, which is how the
//! per-figure numbers are produced without the runtime knowing anything
//! about atmospheric physics.
//!
//! Counters are atomics shared (via `Arc`) between a communicator and all
//! sub-communicators split from it, so traffic on an axis communicator (the
//! z-direction `allreduce` of the summation operator `C`, say) still lands
//! in the owning rank's totals.

use agcm_obs::Phase;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Which collective operation an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// All-reduce (ring or recursive doubling).
    Allreduce,
    /// Reduce to a root.
    Reduce,
    /// Broadcast from a root.
    Bcast,
    /// All-gather.
    Allgather,
    /// Personalized all-to-all (used by the distributed FFT transpose).
    Alltoall,
    /// Barrier.
    Barrier,
    /// Gather to a root.
    Gather,
}

/// One collective executed by this rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveEvent {
    /// Operation type.
    pub kind: CollectiveKind,
    /// Size of the communicator it ran on.
    pub comm_size: usize,
    /// Payload `f64` element count (per-rank contribution).
    pub elems: usize,
    /// Operator phase (`A`/`C`/`F`/`L`/`S1`/`S2`) active on the calling
    /// thread when the collective ran; [`Phase::Other`] outside any
    /// operator span.
    pub phase: Phase,
}

#[derive(Debug, Default)]
struct Inner {
    p2p_sends: AtomicU64,
    p2p_send_elems: AtomicU64,
    p2p_recvs: AtomicU64,
    p2p_recv_elems: AtomicU64,
    collective_calls: AtomicU64,
    collective_elems: AtomicU64,
    // Injected-fault counters (see crate::fault).  Kept out of
    // StatsSnapshot: that struct is the certified-traffic contract the
    // verifier constructs literally; faults get their own snapshot type.
    faults_dropped: AtomicU64,
    faults_corrupted: AtomicU64,
    faults_duplicated: AtomicU64,
    faults_delayed: AtomicU64,
    faults_stalled: AtomicU64,
    faults_crashed: AtomicU64,
    retries: AtomicU64,
    // The per-event log is opt-in: the unconditional push-under-mutex it
    // used to do both grew without bound in long runs and serialized every
    // rank's collectives on one lock.  Counters above stay always-on.
    event_log: AtomicBool,
    events: Mutex<Vec<CollectiveEvent>>,
}

/// Shared, thread-safe communication counters for one rank.
#[derive(Debug, Clone, Default)]
pub struct CommStats {
    inner: Arc<Inner>,
}

impl CommStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        CommStats::default()
    }

    /// Lock the event log, recovering from poisoning (a panicking rank must
    /// not wedge the survivors' bookkeeping).
    fn events(&self) -> MutexGuard<'_, Vec<CollectiveEvent>> {
        self.inner
            .events
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Record a point-to-point send of `elems` `f64` values.
    pub fn record_send(&self, elems: usize) {
        self.inner.p2p_sends.fetch_add(1, Ordering::Relaxed);
        self.inner
            .p2p_send_elems
            .fetch_add(elems as u64, Ordering::Relaxed);
    }

    /// Record a point-to-point receive of `elems` `f64` values.
    pub fn record_recv(&self, elems: usize) {
        self.inner.p2p_recvs.fetch_add(1, Ordering::Relaxed);
        self.inner
            .p2p_recv_elems
            .fetch_add(elems as u64, Ordering::Relaxed);
    }

    /// Turn the per-event collective log on or off (off by default; the
    /// scalar counters are unaffected).  Shared by all clones / split
    /// communicators of this rank.
    pub fn set_event_logging(&self, on: bool) {
        self.inner.event_log.store(on, Ordering::Relaxed);
    }

    /// Whether the per-event collective log is recording.
    pub fn event_logging(&self) -> bool {
        self.inner.event_log.load(Ordering::Relaxed)
    }

    /// Record a collective call.  Counters always update; the per-event
    /// log only when [`Self::set_event_logging`] enabled it (one relaxed
    /// atomic check on the hot path otherwise).
    pub fn record_collective(&self, kind: CollectiveKind, comm_size: usize, elems: usize) {
        self.inner.collective_calls.fetch_add(1, Ordering::Relaxed);
        self.inner
            .collective_elems
            .fetch_add(elems as u64, Ordering::Relaxed);
        if self.inner.event_log.load(Ordering::Relaxed) {
            self.events().push(CollectiveEvent {
                kind,
                comm_size,
                elems,
                phase: agcm_obs::current_phase(),
            });
        }
    }

    /// Record an injected fault of `kind` (bumps the matching counter and
    /// the process-wide `comm.fault.<kind>` obs counter).
    pub fn record_fault(&self, kind: crate::fault::FaultKind) {
        use crate::fault::FaultKind::*;
        let ctr = match kind {
            Drop => &self.inner.faults_dropped,
            Corrupt => &self.inner.faults_corrupted,
            Dup => &self.inner.faults_duplicated,
            Delay => &self.inner.faults_delayed,
            Stall => &self.inner.faults_stalled,
            Crash => &self.inner.faults_crashed,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one receive retry attempt (resilience layer bookkeeping).
    pub fn record_retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Current injected-fault totals.
    pub fn fault_snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            dropped: self.inner.faults_dropped.load(Ordering::Relaxed),
            corrupted: self.inner.faults_corrupted.load(Ordering::Relaxed),
            duplicated: self.inner.faults_duplicated.load(Ordering::Relaxed),
            delayed: self.inner.faults_delayed.load(Ordering::Relaxed),
            stalled: self.inner.faults_stalled.load(Ordering::Relaxed),
            crashed: self.inner.faults_crashed.load(Ordering::Relaxed),
            retries: self.inner.retries.load(Ordering::Relaxed),
        }
    }

    /// Current totals.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            p2p_sends: self.inner.p2p_sends.load(Ordering::Relaxed),
            p2p_send_elems: self.inner.p2p_send_elems.load(Ordering::Relaxed),
            p2p_recvs: self.inner.p2p_recvs.load(Ordering::Relaxed),
            p2p_recv_elems: self.inner.p2p_recv_elems.load(Ordering::Relaxed),
            collective_calls: self.inner.collective_calls.load(Ordering::Relaxed),
            collective_elems: self.inner.collective_elems.load(Ordering::Relaxed),
        }
    }

    /// All collective events recorded so far (clone).
    pub fn collective_events(&self) -> Vec<CollectiveEvent> {
        self.events().clone()
    }

    /// Number of collective events of a given kind.
    pub fn count_collectives(&self, kind: CollectiveKind) -> usize {
        self.events().iter().filter(|e| e.kind == kind).count()
    }
}

/// A point-in-time copy of the injected-fault counters (separate from
/// [`StatsSnapshot`], which only carries certified traffic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    /// Messages whose first delivery was dropped.
    pub dropped: u64,
    /// Messages whose first delivery was bit-corrupted.
    pub corrupted: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages held back for reordering.
    pub delayed: u64,
    /// Rank stalls injected.
    pub stalled: u64,
    /// Rank crashes injected.
    pub crashed: u64,
    /// Receive retry attempts performed by the resilience layer.
    pub retries: u64,
}

impl FaultSnapshot {
    /// Total injected message/process faults (retries are reactions, not
    /// faults, and are excluded).
    pub fn total(&self) -> u64 {
        self.dropped + self.corrupted + self.duplicated + self.delayed + self.stalled + self.crashed
    }
}

/// A point-in-time copy of the counters; subtract two to get per-phase
/// traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Point-to-point messages sent.
    pub p2p_sends: u64,
    /// `f64` values sent point-to-point.
    pub p2p_send_elems: u64,
    /// Point-to-point messages received.
    pub p2p_recvs: u64,
    /// `f64` values received point-to-point.
    pub p2p_recv_elems: u64,
    /// Collective operations executed.
    pub collective_calls: u64,
    /// `f64` values contributed to collectives.
    pub collective_elems: u64,
}

impl StatsSnapshot {
    /// `self - earlier`, component-wise (saturating).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            p2p_sends: self.p2p_sends.saturating_sub(earlier.p2p_sends),
            p2p_send_elems: self.p2p_send_elems.saturating_sub(earlier.p2p_send_elems),
            p2p_recvs: self.p2p_recvs.saturating_sub(earlier.p2p_recvs),
            p2p_recv_elems: self.p2p_recv_elems.saturating_sub(earlier.p2p_recv_elems),
            collective_calls: self
                .collective_calls
                .saturating_sub(earlier.collective_calls),
            collective_elems: self
                .collective_elems
                .saturating_sub(earlier.collective_elems),
        }
    }

    /// Bytes sent point-to-point (8 bytes per `f64`).
    pub fn p2p_send_bytes(&self) -> u64 {
        self.p2p_send_elems * 8
    }

    /// Bytes received point-to-point (8 bytes per `f64`).
    pub fn p2p_recv_bytes(&self) -> u64 {
        self.p2p_recv_elems * 8
    }

    /// Bytes contributed to collectives (8 bytes per `f64`).
    pub fn collective_bytes(&self) -> u64 {
        self.collective_elems * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CommStats::new();
        s.record_send(100);
        s.record_send(50);
        s.record_recv(100);
        s.record_collective(CollectiveKind::Allreduce, 4, 32);
        let snap = s.snapshot();
        assert_eq!(snap.p2p_sends, 2);
        assert_eq!(snap.p2p_send_elems, 150);
        assert_eq!(snap.p2p_recvs, 1);
        assert_eq!(snap.collective_calls, 1);
        assert_eq!(snap.collective_elems, 32);
        assert_eq!(snap.p2p_send_bytes(), 1200);
        assert_eq!(snap.p2p_recv_bytes(), 800);
        assert_eq!(snap.collective_bytes(), 256);
    }

    #[test]
    fn snapshot_delta() {
        let s = CommStats::new();
        s.record_send(10);
        let a = s.snapshot();
        s.record_send(5);
        s.record_collective(CollectiveKind::Bcast, 8, 1);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.p2p_sends, 1);
        assert_eq!(d.p2p_send_elems, 5);
        assert_eq!(d.collective_calls, 1);
    }

    #[test]
    fn clones_share_counters() {
        let s = CommStats::new();
        let t = s.clone();
        t.record_send(7);
        assert_eq!(s.snapshot().p2p_send_elems, 7);
    }

    #[test]
    fn events_recorded_per_kind() {
        let s = CommStats::new();
        s.set_event_logging(true);
        s.record_collective(CollectiveKind::Allreduce, 4, 8);
        s.record_collective(CollectiveKind::Allreduce, 4, 8);
        s.record_collective(CollectiveKind::Barrier, 4, 0);
        assert_eq!(s.count_collectives(CollectiveKind::Allreduce), 2);
        assert_eq!(s.count_collectives(CollectiveKind::Barrier), 1);
        assert_eq!(s.collective_events().len(), 3);
        assert!(s
            .collective_events()
            .iter()
            .all(|e| e.phase == Phase::Other));
    }

    #[test]
    fn event_log_off_by_default_counters_still_on() {
        let s = CommStats::new();
        assert!(!s.event_logging());
        s.record_collective(CollectiveKind::Allreduce, 4, 8);
        assert_eq!(s.snapshot().collective_calls, 1);
        assert!(s.collective_events().is_empty());
        // clones share the flag, like the counters
        let t = s.clone();
        t.set_event_logging(true);
        assert!(s.event_logging());
        s.record_collective(CollectiveKind::Bcast, 4, 1);
        assert_eq!(t.collective_events().len(), 1);
    }

    #[test]
    fn fault_counters_accumulate() {
        use crate::fault::FaultKind;
        let s = CommStats::new();
        s.record_fault(FaultKind::Drop);
        s.record_fault(FaultKind::Drop);
        s.record_fault(FaultKind::Corrupt);
        s.record_fault(FaultKind::Stall);
        s.record_retry();
        let f = s.fault_snapshot();
        assert_eq!(f.dropped, 2);
        assert_eq!(f.corrupted, 1);
        assert_eq!(f.stalled, 1);
        assert_eq!(f.retries, 1);
        assert_eq!(f.total(), 4);
        // fault counters are shared across clones like the traffic ones
        let t = s.clone();
        t.record_fault(FaultKind::Crash);
        assert_eq!(s.fault_snapshot().crashed, 1);
    }

    #[test]
    fn concurrent_updates() {
        let s = CommStats::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_send(1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().p2p_sends, 8000);
    }
}
