//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes a set of network/process faults to inject into
//! a run: message **drop**, **bit-corruption**, **duplication** and
//! **delay** (reordering), plus rank **stall** and **crash**.  Every
//! decision is a pure function of the plan's seed and the *site* of the
//! communication operation — `(rank, peer, tag, event#, phase)` — mixed
//! through splitmix64, so a given seed replays the exact same fault
//! schedule on every run, independent of thread timing.  The per-rank
//! *event index* (a counter of that rank's **sends**, shared by all
//! communicators split from it) provides the deterministic clock: sends
//! are posted exactly once per logical operation, whereas receives may be
//! retried (after an injected fault, or after a load-induced spurious
//! timeout), so only a send-counting clock is immune to thread timing.
//!
//! Plans come from the API ([`crate::Communicator::install_faults`]) or
//! from the environment:
//!
//! * `AGCM_FAULT_SPEC` — `;`-separated rules, e.g.
//!   `drop:rank=1,user=1,nth=3;corrupt:prob=0.01;stall:rank=2,event=40,ms=20`
//! * `AGCM_FAULT_SEED` — decimal seed (default `24473` when only the spec
//!   is set).
//!
//! Rule grammar: `<kind>:<key>=<value>,...` with kinds `drop`, `corrupt`,
//! `dup`, `delay`, `stall`, `crash` and keys
//!
//! | key     | meaning                                                    |
//! |---------|------------------------------------------------------------|
//! | `rank`  | only this injecting (world) rank                           |
//! | `peer`  | only messages to this destination (world rank)             |
//! | `tag`   | only this exact wire tag                                   |
//! | `user`  | `1`: only user (non-collective) tags                       |
//! | `event` | only this per-rank event (send) index                      |
//! | `nth`   | the n-th (1-based) operation matching the other filters    |
//! | `prob`  | fire with this probability per matching event (seeded)     |
//! | `phase` | only inside this operator phase (`A,C,F,L,S1,S2,other`)    |
//! | `k`     | *delay*: release after this many further events (default 2)|
//! | `ms`    | *stall*: sleep milliseconds (default 20)                   |
//! | `bit`   | *corrupt*: flip this bit (0–63; default seeded mantissa)   |
//!
//! All kinds fire at send sites (the clock ticks on sends); `stall` and
//! `crash` model slow-rank jitter and fail-stop process faults at the
//! chosen send.  Every fired fault is appended to a per-rank log
//! ([`crate::Communicator::fault_log`]) and counted in
//! [`crate::stats::FaultSnapshot`]; with tracing enabled each firing also
//! emits an `agcm-obs` instant event and bumps a `comm.fault.*` counter.

use agcm_obs::Phase;
use std::fmt;

/// One splitmix64 output for input `z` (stateless mixer; the de-facto
/// standard seeding PRNG, also used by the repo's property tests).
#[inline]
pub fn splitmix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What a fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// First delivery of the message is lost (a retry finds the payload —
    /// the runtime models a link-layer loss with the copy surviving in the
    /// receiver's mailbox, so recovery needs no sender cooperation).
    Drop,
    /// One bit of the payload flips on the wire for the first delivery;
    /// the clean payload survives for a retry.
    Corrupt,
    /// The message is delivered twice (the duplicate is marked redundant
    /// and not counted as traffic).
    Dup,
    /// The send is held back and released a few events later (reordering).
    Delay,
    /// The rank sleeps at this event (slow-rank / OS-jitter model).
    Stall,
    /// The rank panics at this event (fail-stop process fault).
    Crash,
}

impl FaultKind {
    /// Stable lower-case label (spec syntax and metric names).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Dup => "dup",
            FaultKind::Delay => "delay",
            FaultKind::Stall => "stall",
            FaultKind::Crash => "crash",
        }
    }

    fn sends_only(self) -> bool {
        matches!(
            self,
            FaultKind::Drop | FaultKind::Corrupt | FaultKind::Dup | FaultKind::Delay
        )
    }
}

/// One selection rule of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// Only this injecting world rank (`None` = any).
    pub rank: Option<usize>,
    /// Only sends to this destination world rank.
    pub peer: Option<usize>,
    /// Only this exact wire tag.
    pub tag: Option<u32>,
    /// Only user (non-collective) tags.
    pub user_only: bool,
    /// Only this per-rank event index.
    pub event: Option<u64>,
    /// Only the n-th (1-based) event matching every other filter.
    pub nth: Option<u64>,
    /// Firing probability per matching event (ignored when `event`/`nth`
    /// pins the rule).
    pub prob: f64,
    /// Only inside this operator phase.
    pub phase: Option<Phase>,
    /// `Delay`: release the held message after this many further events.
    pub delay_events: u64,
    /// `Stall`: sleep duration in milliseconds.
    pub stall_ms: u64,
    /// `Corrupt`: fixed bit to flip (0–63); `None` picks a seeded mantissa
    /// bit.
    pub bit: Option<u32>,
}

impl FaultRule {
    /// A wildcard rule of `kind` (matches nothing until `prob`/`event`/
    /// `nth` make it fire).
    pub fn new(kind: FaultKind) -> Self {
        FaultRule {
            kind,
            rank: None,
            peer: None,
            tag: None,
            user_only: false,
            event: None,
            nth: None,
            prob: 0.0,
            phase: None,
            delay_events: 2,
            stall_ms: 20,
            bit: None,
        }
    }
}

/// The site of one communication operation, as seen by the injector.
#[derive(Debug, Clone, Copy)]
pub struct FaultSite {
    /// World rank executing the operation.
    pub rank: usize,
    /// Destination world rank (sends) / expected source (recvs).
    pub peer: usize,
    /// Wire tag.
    pub tag: u32,
    /// Whether the tag is a user (non-collective) tag.
    pub user_tag: bool,
    /// Per-rank event (send) index of this operation.
    pub event: u64,
    /// Operator phase active on the calling thread.
    pub phase: Phase,
    /// Whether the operation is a send (always `true` for sites built by
    /// the runtime — only sends tick the fault clock).
    pub is_send: bool,
}

/// A resolved fault to apply at a site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Lose the first delivery.
    Drop,
    /// Flip `bit` of element `elem_seed % len`.
    Corrupt {
        /// Bit index to flip (0–63).
        bit: u32,
        /// Seed selecting the payload element.
        elem_seed: u64,
    },
    /// Deliver a redundant duplicate.
    Dup,
    /// Hold the message for this many further events.
    Delay {
        /// Events to hold the message for.
        events: u64,
    },
    /// Sleep for this many milliseconds.
    Stall {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Panic on the calling rank.
    Crash,
}

/// A fired fault (the deterministic schedule record; two runs with the
/// same plan produce identical logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What fired.
    pub kind: FaultKind,
    /// Injecting world rank.
    pub rank: usize,
    /// Peer world rank of the operation.
    pub peer: usize,
    /// Wire tag of the operation.
    pub tag: u32,
    /// Per-rank event index.
    pub event: u64,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@rank{} peer={} tag={:#x} event={}",
            self.kind.label(),
            self.rank,
            self.peer,
            self.tag,
            self.event
        )
    }
}

/// A seeded, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Selection rules; the first firing rule wins.
    pub rules: Vec<FaultRule>,
}

/// Default seed when `AGCM_FAULT_SPEC` is set without `AGCM_FAULT_SEED`.
pub const DEFAULT_SEED: u64 = 24473;

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(seed: u64, spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind_s, args) = part.split_once(':').unwrap_or((part, ""));
            let kind = match kind_s.trim() {
                "drop" => FaultKind::Drop,
                "corrupt" => FaultKind::Corrupt,
                "dup" => FaultKind::Dup,
                "delay" => FaultKind::Delay,
                "stall" => FaultKind::Stall,
                "crash" => FaultKind::Crash,
                other => return Err(format!("unknown fault kind '{other}'")),
            };
            let mut rule = FaultRule::new(kind);
            let mut selective = false;
            for kv in args.split(',') {
                let kv = kv.trim();
                if kv.is_empty() {
                    continue;
                }
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("'{kv}': expected key=value"))?;
                let (k, v) = (k.trim(), v.trim());
                if v == "*" {
                    continue; // explicit wildcard
                }
                let parse_u64 =
                    |v: &str| v.parse::<u64>().map_err(|_| format!("'{v}': not a number"));
                match k {
                    "rank" => rule.rank = Some(parse_u64(v)? as usize),
                    "peer" => rule.peer = Some(parse_u64(v)? as usize),
                    "tag" => rule.tag = Some(parse_u64(v)? as u32),
                    "user" => rule.user_only = parse_u64(v)? != 0,
                    "event" => {
                        rule.event = Some(parse_u64(v)?);
                        selective = true;
                    }
                    "nth" => {
                        let n = parse_u64(v)?;
                        if n == 0 {
                            return Err("nth is 1-based".into());
                        }
                        rule.nth = Some(n);
                        selective = true;
                    }
                    "prob" => {
                        rule.prob = v
                            .parse::<f64>()
                            .map_err(|_| format!("'{v}': not a probability"))?;
                        selective = true;
                    }
                    "phase" => {
                        rule.phase = Some(match v {
                            "A" | "a" => Phase::A,
                            "C" | "c" => Phase::C,
                            "F" | "f" => Phase::F,
                            "L" | "l" => Phase::L,
                            "S1" | "s1" => Phase::S1,
                            "S2" | "s2" => Phase::S2,
                            "other" => Phase::Other,
                            other => return Err(format!("unknown phase '{other}'")),
                        })
                    }
                    "k" => rule.delay_events = parse_u64(v)?.max(1),
                    "ms" => rule.stall_ms = parse_u64(v)?,
                    "bit" => {
                        let b = parse_u64(v)? as u32;
                        if b > 63 {
                            return Err(format!("bit {b} out of range 0..64"));
                        }
                        rule.bit = Some(b);
                    }
                    other => return Err(format!("unknown fault key '{other}'")),
                }
            }
            if !selective {
                // bare rule like `stall:rank=2` fires on every matching
                // event unless pinned; require an explicit selector so a
                // typo cannot melt a run silently
                return Err(format!(
                    "rule '{part}' needs a selector (event=, nth= or prob=)"
                ));
            }
            rules.push(rule);
        }
        Ok(FaultPlan { seed, rules })
    }

    /// Build a plan from `AGCM_FAULT_SPEC` / `AGCM_FAULT_SEED`.  Returns
    /// `None` when no spec is set; panics on a malformed spec (a chaos run
    /// with a typo'd spec must not silently run fault-free).
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("AGCM_FAULT_SPEC").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        // strict parse: a typo'd seed must not silently replay the
        // *default* schedule instead of the requested one
        let seed = crate::env::parse_env_or("AGCM_FAULT_SEED", DEFAULT_SEED);
        match FaultPlan::parse(seed, &spec) {
            Ok(p) => Some(p),
            Err(e) => panic!("invalid AGCM_FAULT_SPEC: {e}"),
        }
    }

    /// Decide deterministically whether a fault fires at `site`.
    /// `nth_counts` must hold one counter per rule (the per-rank match
    /// counters backing `nth=`); the first firing rule wins.
    pub fn decide(&self, site: &FaultSite, nth_counts: &mut [u64]) -> Option<FaultAction> {
        debug_assert_eq!(nth_counts.len(), self.rules.len());
        for (i, rule) in self.rules.iter().enumerate() {
            if rule.kind.sends_only() && !site.is_send {
                continue;
            }
            if rule.rank.is_some_and(|r| r != site.rank)
                || rule.peer.is_some_and(|p| p != site.peer)
                || rule.tag.is_some_and(|t| t != site.tag)
                || (rule.user_only && !site.user_tag)
                || rule.phase.is_some_and(|p| p != site.phase)
            {
                continue;
            }
            let fired = if let Some(ev) = rule.event {
                ev == site.event
            } else if let Some(n) = rule.nth {
                nth_counts[i] += 1;
                nth_counts[i] == n
            } else {
                // seeded Bernoulli: pure function of (seed, rule, site)
                let h = splitmix64(
                    self.seed
                        ^ splitmix64(i as u64)
                        ^ splitmix64(site.rank as u64 ^ (site.peer as u64) << 20)
                        ^ splitmix64(site.tag as u64 ^ site.event << 32),
                );
                (h >> 11) as f64 / (1u64 << 53) as f64 > 1.0 - rule.prob
            };
            if !fired {
                continue;
            }
            let aux = splitmix64(self.seed ^ splitmix64(site.event ^ (i as u64) << 48));
            return Some(match rule.kind {
                FaultKind::Drop => FaultAction::Drop,
                FaultKind::Corrupt => FaultAction::Corrupt {
                    // default: a mantissa bit — silent data corruption the
                    // checksum frame must catch; bit= can force exponent
                    // bits for blow-up-guard tests
                    bit: rule.bit.unwrap_or((aux % 52) as u32),
                    elem_seed: aux,
                },
                FaultKind::Dup => FaultAction::Dup,
                FaultKind::Delay => FaultAction::Delay {
                    events: rule.delay_events,
                },
                FaultKind::Stall => FaultAction::Stall { ms: rule.stall_ms },
                FaultKind::Crash => FaultAction::Crash,
            });
        }
        None
    }
}

/// FNV-1a over the bit patterns of a payload (the checksum carried by the
/// framed send/recv pair, [`crate::Communicator::send_framed`]).
pub fn checksum(data: &[f64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// The same FNV-1a hash applied to a raw byte stream.  For a payload of
/// little-endian `f64` bit patterns this equals [`checksum`] of the values;
/// the socket transport checksums each encoded wire frame (header + payload
/// bytes) with it.
pub fn checksum_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(rank: usize, peer: usize, tag: u32, event: u64, is_send: bool) -> FaultSite {
        FaultSite {
            rank,
            peer,
            tag,
            user_tag: tag & crate::runtime::COLLECTIVE_TAG_BIT == 0,
            event,
            phase: Phase::Other,
            is_send,
        }
    }

    #[test]
    fn parse_round_trip() {
        let p = FaultPlan::parse(
            7,
            "drop:rank=1,user=1,nth=3; corrupt:prob=0.5,bit=62 ;stall:rank=2,event=40,ms=5",
        )
        .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].kind, FaultKind::Drop);
        assert_eq!(p.rules[0].rank, Some(1));
        assert!(p.rules[0].user_only);
        assert_eq!(p.rules[0].nth, Some(3));
        assert_eq!(p.rules[1].bit, Some(62));
        assert_eq!(p.rules[2].stall_ms, 5);
        assert_eq!(p.rules[2].event, Some(40));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse(1, "melt:prob=1").is_err());
        assert!(FaultPlan::parse(1, "drop:frobnicate=2,prob=1").is_err());
        assert!(FaultPlan::parse(1, "drop:rank=x,prob=1").is_err());
        assert!(FaultPlan::parse(1, "corrupt:bit=64,prob=1").is_err());
        assert!(FaultPlan::parse(1, "drop:nth=0").is_err());
        // a rule without any selector is a footgun, not a wildcard
        assert!(FaultPlan::parse(1, "crash:rank=1").is_err());
        assert!(FaultPlan::parse(1, "").unwrap().rules.is_empty());
    }

    #[test]
    fn decisions_are_deterministic() {
        let p = FaultPlan::parse(42, "drop:prob=0.3").unwrap();
        let mut c1 = vec![0u64; 1];
        let mut c2 = vec![0u64; 1];
        for ev in 0..200 {
            let s = site(0, 1, 9, ev, true);
            assert_eq!(p.decide(&s, &mut c1), p.decide(&s, &mut c2));
        }
    }

    #[test]
    fn prob_rate_roughly_matches() {
        let p = FaultPlan::parse(99, "drop:prob=0.25").unwrap();
        let mut c = vec![0u64; 1];
        let fired = (0..4000)
            .filter(|&ev| p.decide(&site(0, 1, 5, ev, true), &mut c).is_some())
            .count();
        assert!((700..=1300).contains(&fired), "rate off: {fired}/4000");
    }

    #[test]
    fn nth_fires_exactly_once() {
        let p = FaultPlan::parse(1, "corrupt:nth=3").unwrap();
        let mut c = vec![0u64; 1];
        let fired: Vec<u64> = (0..10)
            .filter(|&ev| p.decide(&site(0, 1, 5, ev, true), &mut c).is_some())
            .collect();
        assert_eq!(fired, vec![2]); // 3rd matching event, 0-based index 2
    }

    #[test]
    fn filters_respected() {
        let p = FaultPlan::parse(1, "drop:rank=1,peer=2,tag=7,event=5").unwrap();
        let mut c = vec![0u64; 1];
        assert!(p.decide(&site(1, 2, 7, 5, true), &mut c).is_some());
        assert!(p.decide(&site(0, 2, 7, 5, true), &mut c).is_none());
        assert!(p.decide(&site(1, 3, 7, 5, true), &mut c).is_none());
        assert!(p.decide(&site(1, 2, 8, 5, true), &mut c).is_none());
        assert!(p.decide(&site(1, 2, 7, 6, true), &mut c).is_none());
        // send-only kinds never fire on receives
        assert!(p.decide(&site(1, 2, 7, 5, false), &mut c).is_none());
    }

    #[test]
    fn user_only_skips_collective_tags() {
        let p = FaultPlan::parse(1, "drop:user=1,nth=1").unwrap();
        let mut c = vec![0u64; 1];
        let coll = crate::runtime::COLLECTIVE_TAG_BIT | 3;
        assert!(p.decide(&site(0, 1, coll, 0, true), &mut c).is_none());
        assert!(p.decide(&site(0, 1, 3, 1, true), &mut c).is_some());
    }

    #[test]
    fn stall_and_crash_fire_on_recvs_too() {
        let p = FaultPlan::parse(1, "stall:event=4,ms=1").unwrap();
        let mut c = vec![0u64; 1];
        assert_eq!(
            p.decide(&site(0, 1, 5, 4, false), &mut c),
            Some(FaultAction::Stall { ms: 1 })
        );
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let data: Vec<f64> = (0..64).map(|i| i as f64 * 0.37 - 3.0).collect();
        let base = checksum(&data);
        for elem in [0usize, 17, 63] {
            for bit in [0u32, 31, 52, 63] {
                let mut d = data.clone();
                d[elem] = f64::from_bits(d[elem].to_bits() ^ (1u64 << bit));
                assert_ne!(checksum(&d), base, "flip at {elem}/{bit} undetected");
            }
        }
    }

    #[test]
    fn splitmix_known_values() {
        // reference values of the standard splitmix64 sequence from seed 0
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
