//! Integration tests of the deterministic fault-injection layer: each
//! fault kind end to end through real rank threads, the byte-for-byte
//! schedule-replay guarantee, and the fail-fast poison path when a rank
//! panics (ISSUE 3 satellite: no more full-timeout hangs at p = 4).

use agcm_comm::{CommError, FaultKind, FaultPlan, Universe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHORT: Duration = Duration::from_millis(200);

#[test]
fn identical_plans_replay_identical_schedules() {
    let run = || {
        Universe::run(2, |comm| {
            comm.install_faults(FaultPlan::parse(0xA11CE, "drop:prob=0.4;dup:prob=0.2").unwrap());
            comm.set_timeout(SHORT);
            let other = 1 - comm.rank();
            for i in 0..20u32 {
                comm.send(other, i, &[comm.rank() as f64, i as f64])
                    .unwrap();
            }
            for i in 0..20u32 {
                // dropped first deliveries time out; the payload survives
                // in the mailbox, so one retry always succeeds
                if comm.recv(other, i).is_err() {
                    comm.recv(other, i).expect("retry after drop");
                }
            }
            (comm.fault_log(), comm.stats().fault_snapshot())
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a[0].0, b[0].0, "rank 0 schedule must replay byte-for-byte");
    assert_eq!(a[1].0, b[1].0, "rank 1 schedule must replay byte-for-byte");
    assert_eq!(a[0].1, b[0].1);
    let total: u64 = a.iter().map(|(_, s)| s.total()).sum();
    assert!(total > 0, "a 40%/20% plan over 40 sends must fire");
}

#[test]
fn different_seeds_differ() {
    let run = |seed: u64| {
        Universe::run(2, |comm| {
            comm.install_faults(FaultPlan::parse(seed, "drop:prob=0.5").unwrap());
            comm.set_timeout(SHORT);
            let other = 1 - comm.rank();
            for i in 0..32u32 {
                comm.send(other, i, &[i as f64]).unwrap();
            }
            for i in 0..32u32 {
                if comm.recv(other, i).is_err() {
                    comm.recv(other, i).unwrap();
                }
            }
            comm.fault_log()
        })
    };
    assert_ne!(run(1), run(2), "seeds must select different schedules");
}

#[test]
fn drop_times_out_then_retry_succeeds() {
    let results = Universe::run(2, |comm| {
        comm.install_faults(FaultPlan::parse(7, "drop:rank=0,user=1,nth=1").unwrap());
        comm.set_timeout(SHORT);
        if comm.rank() == 0 {
            comm.send(1, 5, &[1.0, 2.0, 3.0]).unwrap();
            None
        } else {
            let first = comm.recv(0, 5);
            let second = comm.recv(0, 5);
            Some((first, second))
        }
    });
    let (first, second) = results[1].clone().unwrap();
    match first {
        Err(CommError::DeadlockTimeout { src: 0, tag: 5, .. }) => {}
        other => panic!("dropped delivery should time out, got {other:?}"),
    }
    assert_eq!(second.unwrap(), vec![1.0, 2.0, 3.0]);
}

#[test]
fn corrupt_framed_rejected_then_retry_recovers() {
    let payload: Vec<f64> = (0..40).map(|i| i as f64 * 0.5 - 3.0).collect();
    let results = Universe::run(2, |comm| {
        comm.install_faults(FaultPlan::parse(11, "corrupt:rank=0,user=1,nth=1").unwrap());
        comm.set_timeout(SHORT);
        let payload: Vec<f64> = (0..40).map(|i| i as f64 * 0.5 - 3.0).collect();
        if comm.rank() == 0 {
            comm.send_framed(1, 9, &payload).unwrap();
            (None, comm.stats().fault_snapshot())
        } else {
            let first = comm.recv_framed(0, 9, payload.len());
            assert!(
                matches!(first, Err(CommError::CorruptPayload { src: 0, tag: 9, .. })),
                "corrupted frame must be rejected, got {first:?}"
            );
            let second = comm.recv_framed(0, 9, payload.len()).unwrap();
            (Some(second), comm.stats().fault_snapshot())
        }
    });
    // the retry sees the clean payload bit-for-bit
    assert_eq!(results[1].0.as_ref().unwrap(), &payload);
    assert_eq!(results[0].1.corrupted, 1, "exactly the injected fault");
}

#[test]
fn unframed_corruption_is_silent() {
    // without framing a mantissa flip sails through — the motivation for
    // checksum framing on halo payloads
    let results = Universe::run(2, |comm| {
        comm.install_faults(FaultPlan::parse(3, "corrupt:rank=0,user=1,nth=1,bit=51").unwrap());
        comm.set_timeout(SHORT);
        if comm.rank() == 0 {
            comm.send(1, 2, &[1.0; 8]).unwrap();
            None
        } else {
            Some(comm.recv(0, 2).unwrap())
        }
    });
    let got = results[1].as_ref().unwrap();
    assert_ne!(got, &vec![1.0; 8], "bit flip must reach the payload");
}

#[test]
fn dup_delivers_once_and_is_not_counted() {
    let results = Universe::run(2, |comm| {
        comm.install_faults(FaultPlan::parse(5, "dup:rank=0,user=1,nth=1").unwrap());
        comm.set_timeout(SHORT);
        if comm.rank() == 0 {
            comm.send(1, 4, &[7.0; 10]).unwrap();
            comm.stats().snapshot()
        } else {
            let data = comm.recv(0, 4).unwrap();
            assert_eq!(data, vec![7.0; 10]);
            // the redundant copy must not satisfy a second receive as a
            // *distinct* message in the traffic stats
            comm.stats().snapshot()
        }
    });
    assert_eq!(results[0].p2p_sends, 1, "dup is not a second logical send");
    assert_eq!(results[0].p2p_send_elems, 10);
    assert!(results[1].p2p_recvs <= 1, "redundant delivery not counted");
}

#[test]
fn delay_reorders_but_all_messages_arrive() {
    let results = Universe::run(2, |comm| {
        comm.install_faults(FaultPlan::parse(9, "delay:rank=0,user=1,nth=1,k=4").unwrap());
        comm.set_timeout(Duration::from_secs(2));
        if comm.rank() == 0 {
            for i in 0..6u32 {
                comm.send(1, i, &[i as f64]).unwrap();
            }
            comm.stats().fault_snapshot().delayed
        } else {
            for i in (0..6u32).rev() {
                assert_eq!(comm.recv(0, i).unwrap(), vec![i as f64]);
            }
            0
        }
    });
    assert_eq!(results[0], 1, "exactly one send delayed");
}

#[test]
fn delayed_message_flushed_at_teardown() {
    // a delay whose release point is never reached must still be delivered
    // when the sender's communicator winds down (Drop flush)
    let results = Universe::run(2, |comm| {
        comm.install_faults(FaultPlan::parse(2, "delay:rank=0,user=1,nth=1,k=100000").unwrap());
        comm.set_timeout(Duration::from_secs(5));
        if comm.rank() == 0 {
            comm.send(1, 3, &[42.0]).unwrap();
            None
        } else {
            Some(comm.recv(0, 3).unwrap())
        }
    });
    assert_eq!(results[1].as_ref().unwrap(), &vec![42.0]);
}

#[test]
fn stall_injects_measurable_latency() {
    let results = Universe::run(2, |comm| {
        comm.install_faults(FaultPlan::parse(1, "stall:rank=0,event=0,ms=60").unwrap());
        let t0 = Instant::now();
        let other = 1 - comm.rank();
        comm.send(other, 1, &[0.0]).unwrap();
        comm.recv(other, 1).unwrap();
        (t0.elapsed(), comm.stats().fault_snapshot().stalled)
    });
    assert!(
        results[0].0 >= Duration::from_millis(50),
        "rank 0 must feel the stall, took {:?}",
        results[0].0
    );
    assert_eq!(results[0].1, 1);
}

#[test]
fn crash_fails_survivors_fast_at_p4() {
    // rank 2 crashes on its first operation; the other three ranks are
    // blocked in recv and must fail with PeerFailed well before the
    // deadlock timeout (the pre-poison behaviour was a full-timeout hang)
    let timeout = Duration::from_secs(30);
    let survivor_errs: Arc<[AtomicU64; 4]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    let errs = Arc::clone(&survivor_errs);
    let t0 = Instant::now();
    let panicked = std::panic::catch_unwind(move || {
        Universe::run(4, move |comm| {
            comm.install_faults(FaultPlan::parse(1, "crash:rank=2,event=0").unwrap());
            comm.set_timeout(timeout);
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(next, 1, &[comm.rank() as f64]).unwrap();
            if let Err(CommError::PeerFailed { peer: 2 }) = comm.recv(prev, 1) {
                errs[comm.rank()].store(1, Ordering::SeqCst);
            }
        })
    })
    .is_err();
    assert!(panicked, "the injected crash must propagate at join");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "survivors must fail fast, not wait out the 30 s timeout"
    );
    // ranks 1 and 3 receive from a live peer and may succeed; rank 3
    // receives *from* rank 2 and must observe the failure
    assert_eq!(survivor_errs[3].load(Ordering::SeqCst), 1);
}

#[test]
fn plain_panic_poisons_peers() {
    // the poison path is independent of fault injection: any rank panic
    // (assertion, bug) must fail peers fast with PeerFailed
    let t0 = Instant::now();
    let flag = Arc::new(AtomicU64::new(0));
    let f = Arc::clone(&flag);
    let panicked = std::panic::catch_unwind(move || {
        Universe::run(2, move |comm| {
            comm.set_timeout(Duration::from_secs(30));
            if comm.rank() == 1 {
                panic!("boom");
            }
            if let Err(CommError::PeerFailed { peer: 1 }) = comm.recv(1, 7) {
                f.store(1, Ordering::SeqCst);
            }
        })
    })
    .is_err();
    assert!(panicked);
    assert_eq!(flag.load(Ordering::SeqCst), 1, "rank 0 saw PeerFailed");
    assert!(t0.elapsed() < Duration::from_secs(10));
}

#[test]
fn timeout_error_carries_context() {
    let results = Universe::run(2, |comm| {
        comm.set_timeout(Duration::from_millis(40));
        if comm.rank() == 0 {
            comm.send(1, 1, &[0.0]).unwrap(); // give rank 0 some history
            comm.recv(1, 99).err()
        } else {
            comm.recv(0, 1)
                .ok()
                .map(|_| CommError::PeerGone { peer: 0 })
        }
    });
    match results[0].as_ref().unwrap() {
        CommError::DeadlockTimeout {
            src: 1,
            tag: 99,
            events_so_far,
            ..
        } => {
            assert!(
                *events_so_far >= 1,
                "context must count the preceding send, got {events_so_far}"
            );
        }
        other => panic!("expected contextual timeout, got {other:?}"),
    }
}

#[test]
fn framed_roundtrip_counts_logical_payload_only() {
    let results = Universe::run(2, |comm| {
        let other = 1 - comm.rank();
        comm.send_framed(other, 1, &[0.5; 32]).unwrap();
        let got = comm.recv_framed(other, 1, 32).unwrap();
        assert_eq!(got, vec![0.5; 32]);
        comm.stats().snapshot()
    });
    for s in results {
        // the 3 trailer words must be invisible to the certified counts
        assert_eq!(s.p2p_sends, 1);
        assert_eq!(s.p2p_send_elems, 32);
        assert_eq!(s.p2p_recvs, 1);
        assert_eq!(s.p2p_recv_elems, 32);
    }
}

#[test]
fn faults_reach_split_communicators() {
    // install on world, then split: the shared per-rank event clock keeps
    // firing inside the sub-communicator
    let results = Universe::run(4, |comm| {
        comm.install_faults(FaultPlan::parse(13, "drop:user=1,nth=1").unwrap());
        comm.set_timeout(SHORT);
        let sub = comm.split(comm.rank() % 2, comm.rank()).unwrap();
        let other = 1 - sub.rank();
        sub.send(other, 1, &[1.0]).unwrap();
        let first = sub.recv(other, 1);
        if first.is_err() {
            sub.recv(other, 1).unwrap();
        }
        comm.stats().fault_snapshot().dropped
    });
    assert!(
        results.iter().all(|&d| d == 1),
        "each rank's first user send dropped: {results:?}"
    );
}

#[test]
fn fault_log_records_kinds() {
    let results = Universe::run(2, |comm| {
        comm.install_faults(
            FaultPlan::parse(21, "drop:rank=0,tag=1,nth=1;dup:rank=0,tag=2,nth=1").unwrap(),
        );
        comm.set_timeout(SHORT);
        if comm.rank() == 0 {
            comm.send(1, 1, &[1.0]).unwrap();
            comm.send(1, 2, &[2.0]).unwrap();
        } else {
            let _ = comm.recv(0, 1); // times out (dropped)
            let _ = comm.recv(0, 1); // retry
            let _ = comm.recv(0, 2);
        }
        comm.fault_log()
    });
    let kinds: Vec<FaultKind> = results[0].iter().map(|e| e.kind).collect();
    assert_eq!(kinds, vec![FaultKind::Drop, FaultKind::Dup]);
    assert_eq!(results[0][0].event, 0);
    assert_eq!(results[0][1].event, 1);
    assert!(results[1].is_empty(), "rank 1 injected nothing");
}
