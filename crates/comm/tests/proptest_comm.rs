//! Property-based tests of the message-passing runtime's collectives
//! against serial folds.

use agcm_comm::{AllreduceAlgo, ReduceOp, Universe};
use proptest::prelude::*;

/// deterministic per-rank data for a given seed
fn rank_data(seed: u64, rank: usize, n: usize) -> Vec<f64> {
    let mut s = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(rank as u64 + 1);
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 17) % 2001) as f64 - 1000.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// both allreduce algorithms equal the serial fold (up to FP
    /// re-association) for any p and vector length.
    #[test]
    fn allreduce_equals_serial_fold(
        p in 1usize..7,
        n in 1usize..40,
        seed in 0u64..10_000,
        ring in proptest::bool::ANY,
    ) {
        let algo = if ring { AllreduceAlgo::Ring } else { AllreduceAlgo::RecursiveDoubling };
        let expected: Vec<f64> = (0..n)
            .map(|i| (0..p).map(|r| rank_data(seed, r, n)[i]).sum())
            .collect();
        let results = Universe::run(p, move |comm| {
            let mut data = rank_data(seed, comm.rank(), n);
            comm.allreduce(ReduceOp::Sum, &mut data, algo).unwrap();
            data
        });
        for r in results {
            for (a, b) in r.iter().zip(&expected) {
                prop_assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
            }
        }
    }

    /// max/min reductions are exact (no rounding).
    #[test]
    fn allreduce_max_min_exact(p in 1usize..7, n in 1usize..20, seed in 0u64..10_000) {
        let expected_max: Vec<f64> = (0..n)
            .map(|i| (0..p).map(|r| rank_data(seed, r, n)[i]).fold(f64::MIN, f64::max))
            .collect();
        let results = Universe::run(p, move |comm| {
            let mut mx = rank_data(seed, comm.rank(), n);
            comm.allreduce(ReduceOp::Max, &mut mx, AllreduceAlgo::Ring).unwrap();
            mx
        });
        for r in results {
            prop_assert_eq!(&r, &expected_max);
        }
    }

    /// allgather returns every rank's contribution in rank order, exactly.
    #[test]
    fn allgather_exact(p in 1usize..7, n in 1usize..16, seed in 0u64..10_000) {
        let expected: Vec<f64> = (0..p).flat_map(|r| rank_data(seed, r, n)).collect();
        let results = Universe::run(p, move |comm| {
            comm.allgather(&rank_data(seed, comm.rank(), n)).unwrap()
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    /// exscan is the prefix of the allreduce: exscan[r] + own + suffix = total.
    #[test]
    fn exscan_prefix_property(p in 1usize..7, n in 1usize..12, seed in 0u64..10_000) {
        let results = Universe::run(p, move |comm| {
            let own = rank_data(seed, comm.rank(), n);
            let mut pre = own.clone();
            comm.exscan_sum(&mut pre).unwrap();
            (own, pre)
        });
        for i in 0..n {
            let mut running = 0.0;
            for (own, pre) in &results {
                prop_assert!((pre[i] - running).abs() <= 1e-9 * (1.0 + running.abs()));
                running += own[i];
            }
        }
    }

    /// bcast distributes the root's data to everyone, from any root.
    #[test]
    fn bcast_any_root(p in 1usize..7, n in 1usize..16, seed in 0u64..10_000, root_pick in 0usize..8) {
        let root = root_pick % p;
        let expected = rank_data(seed, root, n);
        let results = Universe::run(p, move |comm| {
            let mut data = if comm.rank() == root {
                rank_data(seed, root, n)
            } else {
                vec![0.0; n]
            };
            comm.bcast(root, &mut data).unwrap();
            data
        });
        for r in results {
            prop_assert_eq!(&r, &expected);
        }
    }

    /// alltoallv is a transpose: recv[s][..] at rank r == send[r] at rank s.
    #[test]
    fn alltoall_transposes(p in 1usize..6, n in 1usize..8, seed in 0u64..10_000) {
        let results = Universe::run(p, move |comm| {
            let send: Vec<Vec<f64>> = (0..p)
                .map(|d| rank_data(seed.wrapping_add(d as u64 * 977), comm.rank(), n))
                .collect();
            comm.alltoallv(&send).unwrap()
        });
        for (r, recv) in results.iter().enumerate() {
            for (s, v) in recv.iter().enumerate() {
                let want = rank_data(seed.wrapping_add(r as u64 * 977), s, n);
                prop_assert_eq!(v, &want);
            }
        }
    }

    /// point-to-point messages are delivered unmodified in FIFO order per
    /// (source, tag).
    #[test]
    fn p2p_fifo_per_tag(n_msgs in 1usize..10, seed in 0u64..10_000) {
        let results = Universe::run(2, move |comm| {
            if comm.rank() == 0 {
                for m in 0..n_msgs {
                    let data = rank_data(seed.wrapping_add(m as u64), 0, 4);
                    comm.send(1, 7, &data).unwrap();
                }
                true
            } else {
                for m in 0..n_msgs {
                    let got = comm.recv(0, 7).unwrap();
                    let want = rank_data(seed.wrapping_add(m as u64), 0, 4);
                    if got != want {
                        return false;
                    }
                }
                true
            }
        });
        prop_assert!(results.into_iter().all(|b| b));
    }
}
