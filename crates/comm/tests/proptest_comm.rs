//! Property-based tests of the message-passing runtime's collectives
//! against serial folds, driven by a deterministic case generator.

use agcm_comm::{AllreduceAlgo, ReduceOp, Universe};

/// deterministic per-rank data for a given seed
fn rank_data(seed: u64, rank: usize, n: usize) -> Vec<f64> {
    let mut s = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(rank as u64 + 1);
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 17) % 2001) as f64 - 1000.0
        })
        .collect()
}

/// splitmix64 — deterministic case generator for the property loops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    /// uniform in `[lo, hi)`
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

const CASES: u64 = 24;

#[test]
fn allreduce_equals_serial_fold() {
    // both allreduce algorithms equal the serial fold (up to FP
    // re-association) for any p and vector length.
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let p = rng.usize_in(1, 7);
        let n = rng.usize_in(1, 40);
        let seed = rng.next_u64() % 10_000;
        let algo = if rng.next_u64() & 1 == 0 {
            AllreduceAlgo::Ring
        } else {
            AllreduceAlgo::RecursiveDoubling
        };
        let expected: Vec<f64> = (0..n)
            .map(|i| (0..p).map(|r| rank_data(seed, r, n)[i]).sum())
            .collect();
        let results = Universe::run(p, move |comm| {
            let mut data = rank_data(seed, comm.rank(), n);
            comm.allreduce(ReduceOp::Sum, &mut data, algo).unwrap();
            data
        });
        for r in results {
            for (a, b) in r.iter().zip(&expected) {
                assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
            }
        }
    }
}

#[test]
fn allreduce_max_min_exact() {
    // max/min reductions are exact (no rounding).
    for case in 0..CASES {
        let mut rng = Rng::new(100 + case);
        let p = rng.usize_in(1, 7);
        let n = rng.usize_in(1, 20);
        let seed = rng.next_u64() % 10_000;
        let expected_max: Vec<f64> = (0..n)
            .map(|i| {
                (0..p)
                    .map(|r| rank_data(seed, r, n)[i])
                    .fold(f64::MIN, f64::max)
            })
            .collect();
        let results = Universe::run(p, move |comm| {
            let mut mx = rank_data(seed, comm.rank(), n);
            comm.allreduce(ReduceOp::Max, &mut mx, AllreduceAlgo::Ring)
                .unwrap();
            mx
        });
        for r in results {
            assert_eq!(&r, &expected_max);
        }
    }
}

#[test]
fn allgather_exact() {
    // allgather returns every rank's contribution in rank order, exactly.
    for case in 0..CASES {
        let mut rng = Rng::new(200 + case);
        let p = rng.usize_in(1, 7);
        let n = rng.usize_in(1, 16);
        let seed = rng.next_u64() % 10_000;
        let expected: Vec<f64> = (0..p).flat_map(|r| rank_data(seed, r, n)).collect();
        let results = Universe::run(p, move |comm| {
            comm.allgather(&rank_data(seed, comm.rank(), n)).unwrap()
        });
        for r in results {
            assert_eq!(&r, &expected);
        }
    }
}

#[test]
fn exscan_prefix_property() {
    // exscan is the prefix of the allreduce: exscan[r] + own + suffix = total.
    for case in 0..CASES {
        let mut rng = Rng::new(300 + case);
        let p = rng.usize_in(1, 7);
        let n = rng.usize_in(1, 12);
        let seed = rng.next_u64() % 10_000;
        let results = Universe::run(p, move |comm| {
            let own = rank_data(seed, comm.rank(), n);
            let mut pre = own.clone();
            comm.exscan_sum(&mut pre).unwrap();
            (own, pre)
        });
        for i in 0..n {
            let mut running = 0.0;
            for (own, pre) in &results {
                assert!((pre[i] - running).abs() <= 1e-9 * (1.0 + running.abs()));
                running += own[i];
            }
        }
    }
}

#[test]
fn bcast_any_root() {
    // bcast distributes the root's data to everyone, from any root.
    for case in 0..CASES {
        let mut rng = Rng::new(400 + case);
        let p = rng.usize_in(1, 7);
        let n = rng.usize_in(1, 16);
        let seed = rng.next_u64() % 10_000;
        let root = rng.usize_in(0, 8) % p;
        let expected = rank_data(seed, root, n);
        let results = Universe::run(p, move |comm| {
            let mut data = if comm.rank() == root {
                rank_data(seed, root, n)
            } else {
                vec![0.0; n]
            };
            comm.bcast(root, &mut data).unwrap();
            data
        });
        for r in results {
            assert_eq!(&r, &expected);
        }
    }
}

#[test]
fn alltoall_transposes() {
    // alltoallv is a transpose: recv[s][..] at rank r == send[r] at rank s.
    for case in 0..CASES {
        let mut rng = Rng::new(500 + case);
        let p = rng.usize_in(1, 6);
        let n = rng.usize_in(1, 8);
        let seed = rng.next_u64() % 10_000;
        let results = Universe::run(p, move |comm| {
            let send: Vec<Vec<f64>> = (0..p)
                .map(|d| rank_data(seed.wrapping_add(d as u64 * 977), comm.rank(), n))
                .collect();
            comm.alltoallv(&send).unwrap()
        });
        for (r, recv) in results.iter().enumerate() {
            for (s, v) in recv.iter().enumerate() {
                let want = rank_data(seed.wrapping_add(r as u64 * 977), s, n);
                assert_eq!(v, &want);
            }
        }
    }
}

#[test]
fn p2p_fifo_per_tag() {
    // point-to-point messages are delivered unmodified in FIFO order per
    // (source, tag).
    for case in 0..CASES {
        let mut rng = Rng::new(600 + case);
        let n_msgs = rng.usize_in(1, 10);
        let seed = rng.next_u64() % 10_000;
        let results = Universe::run(2, move |comm| {
            if comm.rank() == 0 {
                for m in 0..n_msgs {
                    let data = rank_data(seed.wrapping_add(m as u64), 0, 4);
                    comm.send(1, 7, &data).unwrap();
                }
                true
            } else {
                for m in 0..n_msgs {
                    let got = comm.recv(0, 7).unwrap();
                    let want = rank_data(seed.wrapping_add(m as u64), 0, 4);
                    if got != want {
                        return false;
                    }
                }
                true
            }
        });
        assert!(results.into_iter().all(|b| b));
    }
}
