//! Exhaustive model checking of the runtime's message-matching semantics.
//!
//! `loom` is not available offline, so this is the fallback the design
//! calls for: a small state-space explorer over a model that mirrors
//! `Communicator::{send, recv}` exactly — eager buffered sends into a
//! per-destination FIFO arrival queue, receives that drain the queue into
//! an unexpected-message list until the `(src, tag)` match arrives — and a
//! DFS over **every** interleaving of rank micro-steps (with memoization,
//! so the exploration is over reachable states, not paths).
//!
//! Checked properties, over all interleavings:
//! 1. quiescence — schedules that should complete, complete (no reachable
//!    stuck state);
//! 2. confluence — every receive obtains the *same* message in every
//!    interleaving (per-channel FIFO + tag matching is deterministic, the
//!    property the halo exchanger's correctness rests on);
//! 3. broken schedules get stuck on every maximal path, never silently
//!    mis-deliver.
//!
//! The final test drives the real thread-backed runtime through the same
//! programs to pin the model to the implementation.

use std::collections::{HashMap, HashSet};

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Op {
    Send { dst: usize, tag: u32 },
    Recv { src: usize, tag: u32 },
}

/// Envelope in flight or parked in the unexpected queue: (src, tag, id).
type Env = (usize, u32, usize);

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    pc: Vec<usize>,
    /// Per-destination arrival queue (the mpsc channel), FIFO.
    chan: Vec<Vec<Env>>,
    /// Per-rank unexpected-message queue (`Mailbox::pending`).
    pending: Vec<Vec<Env>>,
}

struct Explorer {
    progs: Vec<Vec<Op>>,
    /// Unique id of each send op: `ids[rank][op index]`.
    ids: Vec<Vec<usize>>,
    /// (rank, op index) of a recv -> set of message ids it ever received.
    outcomes: HashMap<(usize, usize), HashSet<usize>>,
    seen: HashSet<State>,
    stuck: Vec<State>,
    completions: usize,
}

impl Explorer {
    fn new(progs: Vec<Vec<Op>>) -> Self {
        let mut next = 0;
        let ids = progs
            .iter()
            .map(|p| {
                p.iter()
                    .map(|op| match op {
                        Op::Send { .. } => {
                            next += 1;
                            next - 1
                        }
                        Op::Recv { .. } => usize::MAX,
                    })
                    .collect()
            })
            .collect();
        Explorer {
            progs,
            ids,
            outcomes: HashMap::new(),
            seen: HashSet::new(),
            stuck: Vec::new(),
            completions: 0,
        }
    }

    /// Try to execute one micro-step of `r`; `None` when blocked or done.
    fn step(&mut self, st: &State, r: usize) -> Option<State> {
        let i = st.pc[r];
        if i >= self.progs[r].len() {
            return None;
        }
        let mut nxt = st.clone();
        nxt.pc[r] += 1;
        match self.progs[r][i] {
            Op::Send { dst, tag } => {
                nxt.chan[dst].push((r, tag, self.ids[r][i]));
                Some(nxt)
            }
            Op::Recv { src, tag } => {
                // 1. the unexpected queue (swap_remove order is irrelevant
                //    to matching: the position scan is front-to-back)
                if let Some(pos) = nxt.pending[r]
                    .iter()
                    .position(|&(s, t, _)| s == src && t == tag)
                {
                    let (_, _, id) = nxt.pending[r].remove(pos);
                    self.outcomes.entry((r, i)).or_default().insert(id);
                    return Some(nxt);
                }
                // 2. drain the arrival queue, parking non-matches
                while !nxt.chan[r].is_empty() {
                    let env = nxt.chan[r].remove(0);
                    if env.0 == src && env.1 == tag {
                        self.outcomes.entry((r, i)).or_default().insert(env.2);
                        return Some(nxt);
                    }
                    nxt.pending[r].push(env);
                }
                None // would block (the runtime's timeout path)
            }
        }
    }

    fn explore(&mut self) {
        let p = self.progs.len();
        let init = State {
            pc: vec![0; p],
            chan: vec![Vec::new(); p],
            pending: vec![Vec::new(); p],
        };
        let mut stack = vec![init];
        while let Some(st) = stack.pop() {
            if !self.seen.insert(st.clone()) {
                continue;
            }
            let mut moved = false;
            for r in 0..p {
                if let Some(nxt) = self.step(&st, r) {
                    moved = true;
                    stack.push(nxt);
                }
            }
            if !moved {
                if (0..p).all(|r| st.pc[r] >= self.progs[r].len()) {
                    self.completions += 1;
                } else {
                    self.stuck.push(st);
                }
            }
        }
    }

    fn assert_quiescent_and_confluent(&self) {
        assert!(
            self.stuck.is_empty(),
            "reachable stuck state: pcs {:?}",
            self.stuck.first().map(|s| s.pc.clone())
        );
        assert!(self.completions >= 1, "no completed interleaving");
        for ((r, i), ids) in &self.outcomes {
            assert_eq!(
                ids.len(),
                1,
                "recv at rank {r} op {i} got different messages across \
                 interleavings: {ids:?}"
            );
        }
    }
}

const S: fn(usize, u32) -> Op = |dst, tag| Op::Send { dst, tag };
const R: fn(usize, u32) -> Op = |src, tag| Op::Recv { src, tag };

#[test]
fn halo_exchange_ring_is_quiescent_and_confluent() {
    // 3 ranks on a ring, each sends both ways then receives both ways —
    // the shape of one HaloExchanger pass (sends first, then recvs)
    let progs = (0..3)
        .map(|r: usize| {
            let left = (r + 2) % 3;
            let right = (r + 1) % 3;
            vec![S(left, 1), S(right, 2), R(right, 1), R(left, 2)]
        })
        .collect();
    let mut e = Explorer::new(progs);
    e.explore();
    e.assert_quiescent_and_confluent();
    assert!(
        e.seen.len() > 50,
        "exploration covered {} states",
        e.seen.len()
    );
}

#[test]
fn fifo_keeps_same_tag_messages_in_posted_order() {
    // two messages on the *same* (src, dst, tag) channel: every
    // interleaving must deliver them in posted order — this is what lets
    // HaloExchanger reuse tags across steps once seq is folded in
    let progs = vec![vec![S(1, 7), S(1, 7)], vec![R(0, 7), R(0, 7)]];
    let mut e = Explorer::new(progs);
    e.explore();
    e.assert_quiescent_and_confluent();
    let first = e.outcomes[&(1, 0)].iter().next().copied().unwrap();
    let second = e.outcomes[&(1, 1)].iter().next().copied().unwrap();
    assert!(first < second, "FIFO violated: {first} after {second}");
}

#[test]
fn unexpected_queue_allows_out_of_order_tags() {
    // receiver asks for tag B before tag A while the sender posted A then
    // B: the pending queue must park A and still complete every time
    let progs = vec![vec![S(1, 0xA), S(1, 0xB)], vec![R(0, 0xB), R(0, 0xA)]];
    let mut e = Explorer::new(progs);
    e.explore();
    e.assert_quiescent_and_confluent();
}

#[test]
fn gather_bcast_collective_pattern_completes() {
    // the p2p skeleton of a root collective: leaves send to root, root
    // answers — no interleaving of the 3 ranks can wedge it
    let progs = vec![
        vec![R(1, 1), R(2, 1), S(1, 2), S(2, 2)],
        vec![S(0, 1), R(0, 2)],
        vec![S(0, 1), R(0, 2)],
    ];
    let mut e = Explorer::new(progs);
    e.explore();
    e.assert_quiescent_and_confluent();
}

#[test]
fn missing_send_wedges_every_interleaving() {
    let progs = vec![
        vec![S(1, 1)],
        vec![R(0, 1), R(0, 99)], // nobody ever sends tag 99
    ];
    let mut e = Explorer::new(progs);
    e.explore();
    assert_eq!(e.completions, 0, "a lost message must never complete");
    assert!(!e.stuck.is_empty());
    // and the messages that *did* flow were still delivered uniquely
    assert_eq!(e.outcomes[&(1, 0)].len(), 1);
}

#[test]
fn mismatched_tag_wedges_instead_of_misdelivering() {
    let progs = vec![vec![S(1, 3)], vec![R(0, 4)]];
    let mut e = Explorer::new(progs);
    e.explore();
    assert_eq!(e.completions, 0);
    assert!(
        e.outcomes.is_empty(),
        "no recv may consume a wrong-tag message"
    );
}

/// Pin the model to the implementation: the same programs on the real
/// thread-backed runtime, with the scheduler perturbing interleavings.
#[test]
fn real_runtime_agrees_with_model() {
    use agcm_comm::Universe;
    use std::time::Duration;
    for trial in 0..8u64 {
        let got = Universe::run(3, move |comm| {
            comm.set_timeout(Duration::from_secs(5));
            let r = comm.rank();
            let left = (r + 2) % 3;
            let right = (r + 1) % 3;
            // perturb timing so different trials exercise different
            // real interleavings
            if (r as u64 + trial).is_multiple_of(3) {
                std::thread::yield_now();
            }
            comm.send(left, 1, &[r as f64]).unwrap();
            comm.send(right, 2, &[r as f64 + 10.0]).unwrap();
            let a = comm.recv(right, 1).unwrap();
            let b = comm.recv(left, 2).unwrap();
            (a[0], b[0])
        });
        for (r, &(a, b)) in got.iter().enumerate() {
            assert_eq!(a, ((r + 1) % 3) as f64, "trial {trial} rank {r}");
            assert_eq!(b, ((r + 2) % 3) as f64 + 10.0, "trial {trial} rank {r}");
        }
    }
}
