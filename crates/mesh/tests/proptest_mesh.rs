//! Property-based tests of the mesh substrate invariants.

use agcm_mesh::{
    decomp::block_range, AxisOffsets, BoxRange, Decomposition, ExchangePlan, Field3, HaloWidths,
    ProcessGrid, StencilFootprint,
};
use proptest::prelude::*;

proptest! {
    /// block_range tiles [0, n) exactly: disjoint, covering, ordered.
    #[test]
    fn block_range_partitions(n in 1usize..200, p in 1usize..32) {
        prop_assume!(p <= n);
        let mut next = 0usize;
        for r in 0..p {
            let rng = block_range(n, p, r);
            prop_assert_eq!(rng.start, next, "gap or overlap at part {}", r);
            prop_assert!(!rng.is_empty(), "empty part {}", r);
            next = rng.end;
        }
        prop_assert_eq!(next, n);
    }

    /// block sizes differ by at most one (balanced partition).
    #[test]
    fn block_range_balanced(n in 1usize..500, p in 1usize..64) {
        prop_assume!(p <= n);
        let sizes: Vec<usize> = (0..p).map(|r| block_range(n, p, r).len()).collect();
        let mn = *sizes.iter().min().unwrap();
        let mx = *sizes.iter().max().unwrap();
        prop_assert!(mx - mn <= 1, "sizes {:?}", sizes);
    }

    /// every mesh point has exactly one owner, and owner() agrees with the
    /// subdomain ranges.
    #[test]
    fn ownership_is_a_partition(
        nx in 4usize..20, ny in 4usize..20, nz in 1usize..10,
        px in 1usize..4, py in 1usize..4, pz in 1usize..4,
    ) {
        prop_assume!(px <= nx && py <= ny && pz <= nz);
        let d = Decomposition::new((nx, ny, nz), ProcessGrid::new(px, py, pz).unwrap()).unwrap();
        let total: usize = d.subdomains().iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, nx * ny * nz);
        // spot-check owner() on a grid sample
        for i in (0..nx).step_by(3) {
            for j in (0..ny).step_by(3) {
                for k in (0..nz).step_by(2) {
                    let o = d.owner(i, j, k);
                    let s = d.subdomain(o);
                    prop_assert!(s.x.contains(&i) && s.y.contains(&j) && s.z.contains(&k));
                }
            }
        }
    }

    /// exchange plans pair up: every send I post has a matching recv box of
    /// identical size at the destination rank.
    #[test]
    fn exchange_plans_pair(
        ny in 6usize..24, nz in 4usize..16,
        py in 2usize..4, pz in 2usize..4,
        h in 1usize..3,
    ) {
        prop_assume!(py <= ny / 2 && pz <= nz / 2);
        prop_assume!(ny / py >= h && nz / pz >= h);
        let d = Decomposition::new((8, ny, nz), ProcessGrid::yz(py, pz).unwrap()).unwrap();
        let plans: Vec<ExchangePlan> = (0..d.size())
            .map(|r| ExchangePlan::new(&d, r, HaloWidths::uniform(h)))
            .collect();
        for (rank, plan) in plans.iter().enumerate() {
            for spec in plan.specs() {
                let (dx, dy, dz) = spec.link.offset;
                let peer = &plans[spec.link.rank];
                // the peer's spec pointing back at us with the negated offset
                let back = peer.specs().iter().find(|s| {
                    s.link.rank == rank && s.link.offset == (-dx, -dy, -dz)
                });
                prop_assert!(back.is_some(), "no reciprocal spec");
                prop_assert_eq!(back.unwrap().recv.len(), spec.send.len());
            }
        }
    }

    /// total send volume equals total receive volume across all ranks.
    #[test]
    fn exchange_volume_balances(
        ny in 6usize..24, nz in 4usize..16, py in 1usize..4, pz in 1usize..4, h in 1usize..3,
    ) {
        prop_assume!(py <= ny && pz <= nz);
        prop_assume!(ny / py >= h && nz / pz >= h);
        let d = Decomposition::new((8, ny, nz), ProcessGrid::yz(py, pz).unwrap()).unwrap();
        let mut sent = 0usize;
        let mut received = 0usize;
        for r in 0..d.size() {
            let plan = ExchangePlan::new(&d, r, HaloWidths::uniform(h));
            sent += plan.send_volume();
            received += plan.recv_volume();
        }
        prop_assert_eq!(sent, received);
    }

    /// footprint composition is monotone: repeated(k+1) contains repeated(k).
    #[test]
    fn footprint_dilation_monotone(
        xs in proptest::collection::vec(-3i32..=3, 1..5),
        ys in proptest::collection::vec(-2i32..=2, 1..4),
        k in 1u32..4,
    ) {
        let fp = StencilFootprint::new("t", xs, ys, vec![]);
        let a = fp.repeated(k);
        let b = fp.repeated(k + 1);
        for (dx, dy, dz) in a.iter() {
            prop_assert!(b.contains(dx, dy, dz));
        }
    }

    /// union is commutative and contains both operands.
    #[test]
    fn footprint_union_properties(
        xs1 in proptest::collection::vec(-3i32..=3, 0..4),
        xs2 in proptest::collection::vec(-3i32..=3, 0..4),
    ) {
        let a = StencilFootprint::new("a", xs1, vec![], vec![]);
        let b = StencilFootprint::new("b", xs2, vec![], vec![]);
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        prop_assert_eq!(u1.x.offsets(), u2.x.offsets());
        for (dx, dy, dz) in a.iter() {
            prop_assert!(u1.contains(dx, dy, dz));
        }
        for (dx, dy, dz) in b.iter() {
            prop_assert!(u1.contains(dx, dy, dz));
        }
    }

    /// offsets compose like Minkowski sums: extents add.
    #[test]
    fn axis_offsets_compose_extents(
        a_neg in 0u32..4, a_pos in 0u32..4, b_neg in 0u32..4, b_pos in 0u32..4,
    ) {
        let a = AxisOffsets::range(a_neg, a_pos);
        let b = AxisOffsets::range(b_neg, b_pos);
        let c = a.compose(&b);
        prop_assert_eq!(c.neg_extent(), a_neg + b_neg);
        prop_assert_eq!(c.pos_extent(), a_pos + b_pos);
    }

    /// pack_box / unpack_box round-trips arbitrary boxes.
    #[test]
    fn pack_unpack_roundtrip(
        nx in 2usize..8, ny in 2usize..8, nz in 1usize..5,
        x0 in 0usize..3, y0 in 0usize..3, z0 in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(x0 < nx && y0 < ny && z0 < nz);
        let mut a = Field3::new(nx, ny, nz, HaloWidths::uniform(1));
        let mut s = seed;
        for k in 0..nz as isize {
            for j in 0..ny as isize {
                for i in 0..nx as isize {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    a.set(i, j, k, (s >> 16) as f64);
                }
            }
        }
        let bx = BoxRange {
            x: x0 as isize..nx as isize,
            y: y0 as isize..ny as isize,
            z: z0 as isize..nz as isize,
        };
        let mut buf = Vec::new();
        let n = a.pack_box(bx.x.clone(), bx.y.clone(), bx.z.clone(), &mut buf);
        prop_assert_eq!(n, bx.len());
        let mut b = Field3::like(&a);
        let consumed = b.unpack_box(bx.x.clone(), bx.y.clone(), bx.z.clone(), &buf);
        prop_assert_eq!(consumed, n);
        for k in bx.z.clone() {
            for j in bx.y.clone() {
                for i in bx.x.clone() {
                    prop_assert_eq!(b.get(i, j, k), a.get(i, j, k));
                }
            }
        }
    }

    /// wrap_x_halo makes the field exactly periodic.
    #[test]
    fn wrap_is_periodic(nx in 4usize..12, h in 1usize..4, seed in 0u64..1000) {
        prop_assume!(h <= nx);
        let mut f = Field3::new(nx, 3, 2, HaloWidths {
            xm: h, xp: h, ym: 0, yp: 0, zm: 0, zp: 0,
        });
        let mut s = seed;
        for k in 0..2isize {
            for j in 0..3isize {
                for i in 0..nx as isize {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    f.set(i, j, k, (s >> 16) as f64);
                }
            }
        }
        f.wrap_x_halo();
        for k in 0..2isize {
            for j in 0..3isize {
                for d in 1..=h as isize {
                    prop_assert_eq!(f.get(-d, j, k), f.get(nx as isize - d, j, k));
                    prop_assert_eq!(f.get(nx as isize + d - 1, j, k), f.get(d - 1, j, k));
                }
            }
        }
    }
}
