//! Property-based tests of the mesh substrate invariants, driven by a
//! small deterministic case generator (no external dependencies).

use agcm_mesh::{
    decomp::block_range, AxisOffsets, BoxRange, Decomposition, ExchangePlan, Field3, HaloWidths,
    ProcessGrid, StencilFootprint,
};

/// splitmix64 — deterministic case generator for the property loops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    /// uniform in `[lo, hi)`
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
    fn i32_in(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.next_u64() % (hi - lo) as u64) as i32
    }
}

const CASES: u64 = 64;

#[test]
fn block_range_partitions() {
    // block_range tiles [0, n) exactly: disjoint, covering, ordered.
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let n = rng.usize_in(1, 200);
        let p = rng.usize_in(1, 32.min(n) + 1);
        let mut next = 0usize;
        for r in 0..p {
            let range = block_range(n, p, r);
            assert_eq!(
                range.start, next,
                "gap or overlap at part {r} (n={n}, p={p})"
            );
            assert!(!range.is_empty(), "empty part {r} (n={n}, p={p})");
            next = range.end;
        }
        assert_eq!(next, n);
    }
}

#[test]
fn block_range_balanced() {
    // block sizes differ by at most one (balanced partition).
    for case in 0..CASES {
        let mut rng = Rng::new(1000 + case);
        let n = rng.usize_in(1, 500);
        let p = rng.usize_in(1, 64.min(n) + 1);
        let sizes: Vec<usize> = (0..p).map(|r| block_range(n, p, r).len()).collect();
        let mn = *sizes.iter().min().unwrap();
        let mx = *sizes.iter().max().unwrap();
        assert!(mx - mn <= 1, "sizes {sizes:?}");
    }
}

#[test]
fn ownership_is_a_partition() {
    // every mesh point has exactly one owner, and owner() agrees with the
    // subdomain ranges.
    for case in 0..CASES {
        let mut rng = Rng::new(2000 + case);
        let nx = rng.usize_in(4, 20);
        let ny = rng.usize_in(4, 20);
        let nz = rng.usize_in(1, 10);
        let px = rng.usize_in(1, 4.min(nx) + 1);
        let py = rng.usize_in(1, 4.min(ny) + 1);
        let pz = rng.usize_in(1, 4.min(nz) + 1);
        let d = Decomposition::new((nx, ny, nz), ProcessGrid::new(px, py, pz).unwrap()).unwrap();
        let total: usize = d.subdomains().iter().map(|s| s.len()).sum();
        assert_eq!(total, nx * ny * nz);
        // spot-check owner() on a grid sample
        for i in (0..nx).step_by(3) {
            for j in (0..ny).step_by(3) {
                for k in (0..nz).step_by(2) {
                    let o = d.owner(i, j, k);
                    let s = d.subdomain(o);
                    assert!(s.x.contains(&i) && s.y.contains(&j) && s.z.contains(&k));
                }
            }
        }
    }
}

#[test]
fn exchange_plans_pair() {
    // exchange plans pair up: every send I post has a matching recv box of
    // identical size at the destination rank.
    for case in 0..CASES {
        let mut rng = Rng::new(3000 + case);
        let ny = rng.usize_in(6, 24);
        let nz = rng.usize_in(4, 16);
        let py = rng.usize_in(2, 4);
        let pz = rng.usize_in(2, 4);
        let h = rng.usize_in(1, 3);
        if py > ny / 2 || pz > nz / 2 || ny / py < h || nz / pz < h {
            continue;
        }
        let d = Decomposition::new((8, ny, nz), ProcessGrid::yz(py, pz).unwrap()).unwrap();
        let plans: Vec<ExchangePlan> = (0..d.size())
            .map(|r| ExchangePlan::new(&d, r, HaloWidths::uniform(h)))
            .collect();
        for (rank, plan) in plans.iter().enumerate() {
            for spec in plan.specs() {
                let (dx, dy, dz) = spec.link.offset;
                let peer = &plans[spec.link.rank];
                // the peer's spec pointing back at us with the negated offset
                let back = peer
                    .specs()
                    .iter()
                    .find(|s| s.link.rank == rank && s.link.offset == (-dx, -dy, -dz));
                assert!(back.is_some(), "no reciprocal spec");
                assert_eq!(back.unwrap().recv.len(), spec.send.len());
            }
        }
    }
}

#[test]
fn exchange_volume_balances() {
    // total send volume equals total receive volume across all ranks.
    for case in 0..CASES {
        let mut rng = Rng::new(4000 + case);
        let ny = rng.usize_in(6, 24);
        let nz = rng.usize_in(4, 16);
        let py = rng.usize_in(1, 4);
        let pz = rng.usize_in(1, 4);
        let h = rng.usize_in(1, 3);
        if py > ny || pz > nz || ny / py < h || nz / pz < h {
            continue;
        }
        let d = Decomposition::new((8, ny, nz), ProcessGrid::yz(py, pz).unwrap()).unwrap();
        let mut sent = 0usize;
        let mut received = 0usize;
        for r in 0..d.size() {
            let plan = ExchangePlan::new(&d, r, HaloWidths::uniform(h));
            sent += plan.send_volume();
            received += plan.recv_volume();
        }
        assert_eq!(sent, received);
    }
}

#[test]
fn footprint_dilation_monotone() {
    // footprint composition is monotone: repeated(k+1) contains repeated(k).
    for case in 0..CASES {
        let mut rng = Rng::new(5000 + case);
        let xs: Vec<i32> = (0..rng.usize_in(1, 5)).map(|_| rng.i32_in(-3, 4)).collect();
        let ys: Vec<i32> = (0..rng.usize_in(1, 4)).map(|_| rng.i32_in(-2, 3)).collect();
        let k = rng.usize_in(1, 4) as u32;
        let fp = StencilFootprint::new("t", xs, ys, vec![]);
        let a = fp.repeated(k);
        let b = fp.repeated(k + 1);
        for (dx, dy, dz) in a.iter() {
            assert!(b.contains(dx, dy, dz));
        }
    }
}

#[test]
fn footprint_union_properties() {
    // union is commutative and contains both operands.
    for case in 0..CASES {
        let mut rng = Rng::new(6000 + case);
        let xs1: Vec<i32> = (0..rng.usize_in(0, 4)).map(|_| rng.i32_in(-3, 4)).collect();
        let xs2: Vec<i32> = (0..rng.usize_in(0, 4)).map(|_| rng.i32_in(-3, 4)).collect();
        let a = StencilFootprint::new("a", xs1, vec![], vec![]);
        let b = StencilFootprint::new("b", xs2, vec![], vec![]);
        let u1 = a.union(&b);
        let u2 = b.union(&a);
        assert_eq!(u1.x.offsets(), u2.x.offsets());
        for (dx, dy, dz) in a.iter() {
            assert!(u1.contains(dx, dy, dz));
        }
        for (dx, dy, dz) in b.iter() {
            assert!(u1.contains(dx, dy, dz));
        }
    }
}

#[test]
fn axis_offsets_compose_extents() {
    // offsets compose like Minkowski sums: extents add.
    for case in 0..CASES {
        let mut rng = Rng::new(7000 + case);
        let a_neg = rng.usize_in(0, 4) as u32;
        let a_pos = rng.usize_in(0, 4) as u32;
        let b_neg = rng.usize_in(0, 4) as u32;
        let b_pos = rng.usize_in(0, 4) as u32;
        let a = AxisOffsets::range(a_neg, a_pos);
        let b = AxisOffsets::range(b_neg, b_pos);
        let c = a.compose(&b);
        assert_eq!(c.neg_extent(), a_neg + b_neg);
        assert_eq!(c.pos_extent(), a_pos + b_pos);
    }
}

#[test]
fn pack_unpack_roundtrip() {
    // pack_box / unpack_box round-trips arbitrary boxes.
    for case in 0..CASES {
        let mut rng = Rng::new(8000 + case);
        let nx = rng.usize_in(2, 8);
        let ny = rng.usize_in(2, 8);
        let nz = rng.usize_in(1, 5);
        let x0 = rng.usize_in(0, 3.min(nx));
        let y0 = rng.usize_in(0, 3.min(ny));
        let z0 = rng.usize_in(0, 2.min(nz));
        let mut a = Field3::new(nx, ny, nz, HaloWidths::uniform(1));
        let mut s = rng.next_u64();
        for k in 0..nz as isize {
            for j in 0..ny as isize {
                for i in 0..nx as isize {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    a.set(i, j, k, (s >> 16) as f64);
                }
            }
        }
        let bx = BoxRange {
            x: x0 as isize..nx as isize,
            y: y0 as isize..ny as isize,
            z: z0 as isize..nz as isize,
        };
        let mut buf = Vec::new();
        let n = a.pack_box(bx.x.clone(), bx.y.clone(), bx.z.clone(), &mut buf);
        assert_eq!(n, bx.len());
        let mut b = Field3::like(&a);
        let consumed = b.unpack_box(bx.x.clone(), bx.y.clone(), bx.z.clone(), &buf);
        assert_eq!(consumed, n);
        for k in bx.z.clone() {
            for j in bx.y.clone() {
                for i in bx.x.clone() {
                    assert_eq!(b.get(i, j, k), a.get(i, j, k));
                }
            }
        }
    }
}

#[test]
fn wrap_is_periodic() {
    // wrap_x_halo makes the field exactly periodic.
    for case in 0..CASES {
        let mut rng = Rng::new(9000 + case);
        let nx = rng.usize_in(4, 12);
        let h = rng.usize_in(1, 4.min(nx + 1));
        let mut f = Field3::new(
            nx,
            3,
            2,
            HaloWidths {
                xm: h,
                xp: h,
                ym: 0,
                yp: 0,
                zm: 0,
                zp: 0,
            },
        );
        let mut s = rng.next_u64();
        for k in 0..2isize {
            for j in 0..3isize {
                for i in 0..nx as isize {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    f.set(i, j, k, (s >> 16) as f64);
                }
            }
        }
        f.wrap_x_halo();
        for k in 0..2isize {
            for j in 0..3isize {
                for d in 1..=h as isize {
                    assert_eq!(f.get(-d, j, k), f.get(nx as isize - d, j, k));
                    assert_eq!(f.get(nx as isize + d - 1, j, k), f.get(d - 1, j, k));
                }
            }
        }
    }
}
