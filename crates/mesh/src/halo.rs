//! Halo exchange planning.
//!
//! Given a decomposition, a rank and the halo widths a field carries, the
//! [`ExchangePlan`] lists which rectangular boxes must be sent to / received
//! from which neighbours to fill the halo.  The plan is pure geometry — the
//! actual message passing lives in `agcm-comm` and the dynamical core — so
//! the *same* plan is used both to execute an exchange and to compute its
//! exact communication volume for the cost model (Figure 7 of the paper is
//! regenerated from these volumes).
//!
//! The eight halo areas of the paper's Figure 4 are exactly the eight
//! [`ExchangeSpec`]s an interior rank of a Y-Z decomposition gets: four edge
//! slabs (north/south/up/down in the (y, z) process plane) and four corner
//! boxes ("four small triangle halos" in the paper's wording — rectangular
//! here, which only over-approximates the redundant data slightly and is the
//! common practical choice).

use crate::decomp::{Decomposition, NeighborLink};
use crate::field::HaloWidths;
use crate::stencil::Axis;
use std::ops::Range;

/// A rectangular box in *local* field coordinates (may extend into halo).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoxRange {
    /// x extent.
    pub x: Range<isize>,
    /// y extent.
    pub y: Range<isize>,
    /// z extent.
    pub z: Range<isize>,
}

impl BoxRange {
    /// Number of points in the box.
    pub fn len(&self) -> usize {
        let l = |r: &Range<isize>| (r.end - r.start).max(0) as usize;
        l(&self.x) * l(&self.y) * l(&self.z)
    }

    /// Whether the box is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One send/receive pairing with a single neighbour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeSpec {
    /// The neighbour and its process-grid offset.
    pub link: NeighborLink,
    /// Interior box to pack and send (what the neighbour's halo needs).
    pub send: BoxRange,
    /// Halo box to receive into.
    pub recv: BoxRange,
    /// Message tag disambiguating direction: the neighbour's matching send
    /// for our `recv` carries this tag.
    pub tag: u32,
}

/// Tag derived from the *receiver-relative* direction of travel.  A message
/// we receive from offset `(dx,dy,dz)` was sent by the neighbour as its
/// direction `(-dx,-dy,-dz)`; both sides compute the same tag from the
/// sender's offset.
pub fn direction_tag(dx: i32, dy: i32, dz: i32) -> u32 {
    ((dx + 1) + 3 * (dy + 1) + 9 * (dz + 1)) as u32
}

/// The full exchange plan of one rank for fields with halo widths `halo`.
#[derive(Debug, Clone)]
pub struct ExchangePlan {
    specs: Vec<ExchangeSpec>,
    /// Local interior extents of the owning subdomain.
    extents: (usize, usize, usize),
    halo: HaloWidths,
}

impl ExchangePlan {
    /// Build the plan for `rank` under `decomp`, for fields carrying `halo`.
    ///
    /// Axes with a single process along them produce no exchanges: the x
    /// halo is then filled by local periodic wrap, and y/z boundaries by the
    /// physical boundary conditions.
    pub fn new(decomp: &Decomposition, rank: usize, halo: HaloWidths) -> Self {
        let (nx, ny, nz) = decomp.subdomain(rank).extents();
        Self::with_extents(decomp, rank, halo, (nx, ny, nz))
    }

    /// Build a plan for a field whose local extents differ from the
    /// subdomain's (e.g. a field with `nz+1` levels for interface values).
    /// The neighbour topology comes from `decomp`; the box geometry from
    /// `extents`.
    pub fn with_extents(
        decomp: &Decomposition,
        rank: usize,
        halo: HaloWidths,
        extents: (usize, usize, usize),
    ) -> Self {
        let (nx, ny, nz) = extents;
        let mut specs = Vec::new();
        for link in decomp.neighbors(rank) {
            let (dx, dy, dz) = link.offset;
            // Along each axis: which interior slab do we SEND for a
            // neighbour in direction d, and which halo slab do we RECV from
            // it.  d = -1 neighbour fills our low halo and wants our low
            // interior slab of width = halo on *its* high side (halo widths
            // are uniform across ranks).
            let axis_ranges =
                |d: i32, n: usize, hlo: usize, hhi: usize| -> (Range<isize>, Range<isize>) {
                    let n = n as isize;
                    match d {
                        -1 => (0..hhi as isize, -(hlo as isize)..0),
                        0 => (0..n, 0..n),
                        1 => ((n - hlo as isize)..n, n..n + hhi as isize),
                        _ => unreachable!("offsets are in -1..=1"),
                    }
                };
            let (hx, hy, hz) = (
                halo.along(Axis::X),
                halo.along(Axis::Y),
                halo.along(Axis::Z),
            );
            let (sx, rx) = axis_ranges(dx, nx, hx.0, hx.1);
            let (sy, ry) = axis_ranges(dy, ny, hy.0, hy.1);
            let (sz, rz) = axis_ranges(dz, nz, hz.0, hz.1);
            let send = BoxRange {
                x: sx,
                y: sy,
                z: sz,
            };
            let recv = BoxRange {
                x: rx,
                y: ry,
                z: rz,
            };
            if send.is_empty() && recv.is_empty() {
                continue;
            }
            specs.push(ExchangeSpec {
                link,
                send,
                recv,
                // our send travels in direction `offset`; the tag encodes it
                tag: direction_tag(dx, dy, dz),
            });
        }
        ExchangePlan {
            specs,
            extents: (nx, ny, nz),
            halo,
        }
    }

    /// The individual exchanges.
    pub fn specs(&self) -> &[ExchangeSpec] {
        &self.specs
    }

    /// Number of neighbours communicated with.
    pub fn neighbor_count(&self) -> usize {
        self.specs.len()
    }

    /// Total `f64` values sent per field per exchange.
    pub fn send_volume(&self) -> usize {
        self.specs.iter().map(|s| s.send.len()).sum()
    }

    /// Total `f64` values received per field per exchange.
    pub fn recv_volume(&self) -> usize {
        self.specs.iter().map(|s| s.recv.len()).sum()
    }

    /// Local interior extents the plan was built for.
    pub fn extents(&self) -> (usize, usize, usize) {
        self.extents
    }

    /// Halo widths the plan was built for.
    pub fn halo(&self) -> HaloWidths {
        self.halo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::ProcessGrid;

    fn yz_plan(h: usize) -> (Decomposition, ExchangePlan) {
        let d = Decomposition::new((8, 12, 9), ProcessGrid::yz(3, 3).unwrap()).unwrap();
        let center = d.process_grid().rank(0, 1, 1);
        let plan = ExchangePlan::new(&d, center, HaloWidths::uniform(h));
        (d, plan)
    }

    #[test]
    fn interior_yz_rank_has_eight_exchanges() {
        let (_, plan) = yz_plan(1);
        assert_eq!(plan.neighbor_count(), 8);
    }

    #[test]
    fn edge_and_corner_volumes() {
        let (_, plan) = yz_plan(2);
        // center rank owns 8 x 4 x 3 (y: 12/3 = 4, z: 9/3 = 3)
        // y-edge slab: 8 * 2 * 3 = 48; z-edge slab: 8 * 4 * 2 = 64;
        // corner: 8 * 2 * 2 = 32
        let mut vols: Vec<usize> = plan.specs().iter().map(|s| s.send.len()).collect();
        vols.sort_unstable();
        assert_eq!(vols, vec![32, 32, 32, 32, 48, 48, 64, 64]);
        assert_eq!(plan.send_volume(), plan.recv_volume());
    }

    #[test]
    fn send_recv_boxes_mirror_between_neighbors() {
        // what rank A sends towards +y must have the same shape as what the
        // +y neighbour expects to receive from -y
        let d = Decomposition::new((8, 12, 9), ProcessGrid::yz(3, 3).unwrap()).unwrap();
        let a = d.process_grid().rank(0, 0, 1);
        let b = d.process_grid().rank(0, 1, 1);
        let pa = ExchangePlan::new(&d, a, HaloWidths::uniform(2));
        let pb = ExchangePlan::new(&d, b, HaloWidths::uniform(2));
        let send = pa
            .specs()
            .iter()
            .find(|s| s.link.rank == b && s.link.offset == (0, 1, 0))
            .unwrap();
        let recv = pb
            .specs()
            .iter()
            .find(|s| s.link.rank == a && s.link.offset == (0, -1, 0))
            .unwrap();
        assert_eq!(send.send.len(), recv.recv.len());
        // tags must match: A sends with direction (0,1,0); B receives from
        // offset (0,-1,0) and must expect the sender's tag
        assert_eq!(send.tag, direction_tag(0, 1, 0));
        assert_eq!(recv.tag, direction_tag(0, -1, 0));
    }

    #[test]
    fn recv_boxes_lie_in_halo() {
        let (_, plan) = yz_plan(3);
        let (nx, ny, nz) = plan.extents();
        for s in plan.specs() {
            let r = &s.recv;
            let outside = r.x.start < 0
                || r.x.end > nx as isize
                || r.y.start < 0
                || r.y.end > ny as isize
                || r.z.start < 0
                || r.z.end > nz as isize;
            assert!(outside, "recv box {r:?} is not in the halo");
            // and send boxes lie fully in the interior
            let sb = &s.send;
            assert!(sb.x.start >= 0 && sb.x.end <= nx as isize);
            assert!(sb.y.start >= 0 && sb.y.end <= ny as isize);
            assert!(sb.z.start >= 0 && sb.z.end <= nz as isize);
        }
    }

    #[test]
    fn boundary_rank_skips_missing_neighbors() {
        let d = Decomposition::new((8, 12, 9), ProcessGrid::yz(3, 3).unwrap()).unwrap();
        let corner = d.process_grid().rank(0, 0, 0);
        let plan = ExchangePlan::new(&d, corner, HaloWidths::uniform(1));
        assert_eq!(plan.neighbor_count(), 3); // S, down, S-down corner
    }

    #[test]
    fn xy_plan_wraps_longitude() {
        let d = Decomposition::new((16, 12, 4), ProcessGrid::xy(4, 3).unwrap()).unwrap();
        let west_edge = d.process_grid().rank(0, 1, 0);
        let plan = ExchangePlan::new(&d, west_edge, HaloWidths::uniform(1));
        // full 8-neighbourhood despite being at cx = 0, due to x periodicity
        assert_eq!(plan.neighbor_count(), 8);
    }

    #[test]
    fn serial_plan_is_empty() {
        let d = Decomposition::new((8, 8, 4), ProcessGrid::serial()).unwrap();
        let plan = ExchangePlan::new(&d, 0, HaloWidths::uniform(2));
        assert_eq!(plan.neighbor_count(), 0);
        assert_eq!(plan.send_volume(), 0);
    }

    #[test]
    fn volume_scales_with_halo_width() {
        let (_, p1) = yz_plan(1);
        let (_, p3) = yz_plan(3);
        // deeper halos move more data per exchange — the communication-
        // avoiding trade-off (fewer exchanges, each bigger)
        assert!(p3.send_volume() > 2 * p1.send_volume());
    }

    #[test]
    fn direction_tags_unique() {
        let mut seen = std::collections::HashSet::new();
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    assert!(seen.insert(direction_tag(dx, dy, dz)));
                }
            }
        }
        assert_eq!(seen.len(), 27);
    }
}
