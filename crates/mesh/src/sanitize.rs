//! Runtime access sanitizer (feature `access-sanitizer`).
//!
//! When the feature is on, every element/row accessor of [`crate::Field3`],
//! [`crate::Field2`] and [`crate::SlabMut3`] shadow-records the index
//! ranges it touches into a global table, keyed by the field's allocation.
//! Tests register a human name per tracked field, run a kernel, and diff
//! the observed read/write ranges against the kernel's declared
//! `AccessSpec` (the `core::access` registry) — so the declarations the
//! static dataflow proof relies on can never rot relative to the code.
//!
//! The table is process-global and mutex-guarded: recording is *off* until
//! [`enable`] flips it on, so production paths built with the feature (CI
//! sanitizer jobs) pay one relaxed atomic load per accessor call until a
//! test opts in.  This is a debug instrument, not a production feature —
//! the default build does not compile any of it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Inclusive index bounds touched on one field, in the field's own local
/// coordinates (halo indices negative / overflowing, exactly as passed to
/// the accessors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchRange {
    /// Smallest x index touched.
    pub imin: isize,
    /// Largest x index touched.
    pub imax: isize,
    /// Smallest y index touched.
    pub jmin: isize,
    /// Largest y index touched.
    pub jmax: isize,
    /// Smallest z index touched (0 for 2-D fields).
    pub kmin: isize,
    /// Largest z index touched (0 for 2-D fields).
    pub kmax: isize,
}

impl TouchRange {
    fn absorb(&mut self, i0: isize, i1: isize, j: isize, k: isize) {
        self.imin = self.imin.min(i0);
        self.imax = self.imax.max(i1);
        self.jmin = self.jmin.min(j);
        self.jmax = self.jmax.max(j);
        self.kmin = self.kmin.min(k);
        self.kmax = self.kmax.max(k);
    }

    fn seed(i0: isize, i1: isize, j: isize, k: isize) -> TouchRange {
        TouchRange {
            imin: i0,
            imax: i1,
            jmin: j,
            jmax: j,
            kmin: k,
            kmax: k,
        }
    }
}

/// Observed accesses of one tracked field.
#[derive(Debug, Clone, Copy, Default)]
pub struct FieldTouches {
    /// Range covered by reads (`get`, `row`), if any.
    pub read: Option<TouchRange>,
    /// Range covered by writes (`set`, `add`, `row_mut`, `row_pair`), if
    /// any.
    pub write: Option<TouchRange>,
}

struct Table {
    /// Allocation key (base pointer) → registered name.
    names: HashMap<usize, String>,
    /// Allocation key → observed ranges.
    touches: HashMap<usize, FieldTouches>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn table() -> &'static Mutex<Table> {
    static TABLE: OnceLock<Mutex<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        Mutex::new(Table {
            names: HashMap::new(),
            touches: HashMap::new(),
        })
    })
}

/// Start recording accesses of tracked fields.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stop recording (tracked names and collected ranges are kept).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Register a field allocation under `name`.  Accesses to unregistered
/// allocations are ignored, so scratch buffers do not pollute reports.
/// The key is the field's [`sanitizer key`](crate::Field3::sanitizer_key).
pub fn track(key: usize, name: &str) {
    let mut t = table().lock().expect("sanitizer table poisoned");
    t.names.insert(key, name.to_string());
}

/// Drain the collected ranges: returns `(name, touches)` for every tracked
/// field that was accessed while enabled, and clears the collection (names
/// stay registered).
pub fn take_report() -> Vec<(String, FieldTouches)> {
    let mut t = table().lock().expect("sanitizer table poisoned");
    let drained: Vec<(usize, FieldTouches)> = t.touches.drain().collect();
    let mut out: Vec<(String, FieldTouches)> = drained
        .into_iter()
        .filter_map(|(k, v)| t.names.get(&k).map(|n| (n.clone(), v)))
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Forget all tracked names and collected ranges.
pub fn reset() {
    let mut t = table().lock().expect("sanitizer table poisoned");
    t.names.clear();
    t.touches.clear();
}

/// Record one access (called from the field accessors; `i0..=i1`
/// inclusive).  No-op unless [`enable`]d and `key` is tracked.
#[inline]
pub fn record(key: usize, write: bool, i0: isize, i1: isize, j: isize, k: isize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let mut t = table().lock().expect("sanitizer table poisoned");
    if !t.names.contains_key(&key) {
        return;
    }
    let entry = t.touches.entry(key).or_default();
    let slot = if write {
        &mut entry.write
    } else {
        &mut entry.read
    };
    match slot {
        Some(r) => r.absorb(i0, i1, j, k),
        None => *slot = Some(TouchRange::seed(i0, i1, j, k)),
    }
}
