//! Stencil footprints.
//!
//! The paper characterizes every term of the dynamical core by which
//! neighbouring mesh points the update of a point `(i, j, k)` reads
//! (Tables 1, 2 and 3).  A [`StencilFootprint`] is that characterization as
//! data: the set of offsets read along each of the three mesh directions.
//!
//! Footprints drive the whole communication layer:
//!
//! * the union of the footprints of all terms applied between two halo
//!   exchanges determines the halo width each field needs
//!   ([`StencilFootprint::required_halo`]),
//! * repeated application without communication (the communication-avoiding
//!   deep-halo scheme of §4.3.1) corresponds to footprint *dilation*
//!   ([`StencilFootprint::repeated`]),
//! * tests assert that the implementation of each operator term touches
//!   exactly the offsets its declared footprint allows.

use std::fmt;

/// One of the three mesh directions of the latitude–longitude mesh.
///
/// Following the paper's notation, `X` is longitude (periodic), `Y` is
/// latitude (bounded by the poles) and `Z` is the vertical σ direction
/// (bounded by the model top and the surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Longitude (index `i`, periodic).
    X,
    /// Latitude (index `j`, non-periodic).
    Y,
    /// Vertical σ level (index `k`, non-periodic).
    Z,
}

impl Axis {
    /// All three axes in `X`, `Y`, `Z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// Index of the axis (X → 0, Y → 1, Z → 2).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

/// The set of offsets a stencil reads along a single axis.
///
/// Offsets are stored sorted and deduplicated.  An empty set is not
/// representable: every stencil reads at least offset `0` (the point being
/// updated is always an input of the tables in the paper; terms that happen
/// not to read the centre still declare it for halo purposes).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AxisOffsets {
    offsets: Vec<i32>,
}

impl AxisOffsets {
    /// Build from an arbitrary list of offsets; `0` is inserted if missing.
    pub fn new(mut offsets: Vec<i32>) -> Self {
        if !offsets.contains(&0) {
            offsets.push(0);
        }
        offsets.sort_unstable();
        offsets.dedup();
        AxisOffsets { offsets }
    }

    /// Only the centre point.
    pub fn center() -> Self {
        AxisOffsets { offsets: vec![0] }
    }

    /// The contiguous range `[-neg, +pos]`.
    pub fn range(neg: u32, pos: u32) -> Self {
        AxisOffsets {
            offsets: (-(neg as i32)..=pos as i32).collect(),
        }
    }

    /// The sorted offsets.
    pub fn offsets(&self) -> &[i32] {
        &self.offsets
    }

    /// Largest read distance towards negative indices (≥ 0).
    pub fn neg_extent(&self) -> u32 {
        (-self.offsets[0]).max(0) as u32
    }

    /// Largest read distance towards positive indices (≥ 0).
    pub fn pos_extent(&self) -> u32 {
        (*self.offsets.last().expect("non-empty")).max(0) as u32
    }

    /// Whether the stencil is wider than a single point along this axis.
    pub fn is_nontrivial(&self) -> bool {
        self.offsets.len() > 1
    }

    /// Union with another offset set.
    pub fn union(&self, other: &AxisOffsets) -> AxisOffsets {
        let mut v = self.offsets.clone();
        v.extend_from_slice(&other.offsets);
        AxisOffsets::new(v)
    }

    /// Offsets reachable by chaining `self` then `other`
    /// (Minkowski sum of the offset sets).
    pub fn compose(&self, other: &AxisOffsets) -> AxisOffsets {
        let mut v = Vec::with_capacity(self.offsets.len() * other.offsets.len());
        for &a in &self.offsets {
            for &b in &other.offsets {
                v.push(a + b);
            }
        }
        AxisOffsets::new(v)
    }
}

impl fmt::Display for AxisOffsets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &o in &self.offsets {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            match o {
                0 => write!(f, "i")?,
                o if o > 0 => write!(f, "i+{o}")?,
                o => write!(f, "i-{}", -o)?,
            }
        }
        Ok(())
    }
}

/// The full 3-D footprint of a stencil term: which `(Δi, Δj, Δk)` offsets the
/// update of a point may read, expressed as the cross product of per-axis
/// offset sets (which is how Tables 1–3 of the paper present them).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StencilFootprint {
    /// Human-readable name of the term, e.g. `"P_lambda^(1)"` or `"L1(U)"`.
    pub name: &'static str,
    /// Offsets along x (longitude).
    pub x: AxisOffsets,
    /// Offsets along y (latitude).
    pub y: AxisOffsets,
    /// Offsets along z (vertical).
    pub z: AxisOffsets,
}

impl StencilFootprint {
    /// Build from explicit offset lists (`0` added automatically).
    pub fn new(name: &'static str, x: Vec<i32>, y: Vec<i32>, z: Vec<i32>) -> Self {
        StencilFootprint {
            name,
            x: AxisOffsets::new(x),
            y: AxisOffsets::new(y),
            z: AxisOffsets::new(z),
        }
    }

    /// A pure point-wise term (reads only the point itself).
    pub fn pointwise(name: &'static str) -> Self {
        StencilFootprint {
            name,
            x: AxisOffsets::center(),
            y: AxisOffsets::center(),
            z: AxisOffsets::center(),
        }
    }

    /// Offsets along the given axis.
    pub fn along(&self, axis: Axis) -> &AxisOffsets {
        match axis {
            Axis::X => &self.x,
            Axis::Y => &self.y,
            Axis::Z => &self.z,
        }
    }

    /// Union of two footprints (the footprint of computing both terms).
    pub fn union(&self, other: &StencilFootprint) -> StencilFootprint {
        StencilFootprint {
            name: "(union)",
            x: self.x.union(&other.x),
            y: self.y.union(&other.y),
            z: self.z.union(&other.z),
        }
    }

    /// Union of many footprints.
    pub fn union_of(name: &'static str, fps: &[StencilFootprint]) -> StencilFootprint {
        let mut acc = StencilFootprint::pointwise(name);
        for fp in fps {
            acc = StencilFootprint {
                name,
                ..acc.union(fp)
            };
        }
        acc
    }

    /// The footprint of applying this stencil `times` times back-to-back
    /// without communication (dilation).  This is the deep-halo footprint of
    /// §4.3.1: `3M` sweeps of the adaptation stencil need the `repeated(3M)`
    /// footprint's halo.
    pub fn repeated(&self, times: u32) -> StencilFootprint {
        let mut x = self.x.clone();
        let mut y = self.y.clone();
        let mut z = self.z.clone();
        for _ in 1..times.max(1) {
            x = x.compose(&self.x);
            y = y.compose(&self.y);
            z = z.compose(&self.z);
        }
        StencilFootprint {
            name: self.name,
            x,
            y,
            z,
        }
    }

    /// Halo width (negative side, positive side) required along `axis` so
    /// that the stencil can be evaluated on every interior point without
    /// communication.
    pub fn required_halo(&self, axis: Axis) -> (u32, u32) {
        let o = self.along(axis);
        (o.neg_extent(), o.pos_extent())
    }

    /// Whether the update of a point at offset `(di, dj, dk)` from it is
    /// allowed to read this point.
    pub fn contains(&self, di: i32, dj: i32, dk: i32) -> bool {
        self.x.offsets().contains(&di)
            && self.y.offsets().contains(&dj)
            && self.z.offsets().contains(&dk)
    }

    /// Total number of `(Δi, Δj, Δk)` points in the footprint.
    pub fn len(&self) -> usize {
        self.x.offsets().len() * self.y.offsets().len() * self.z.offsets().len()
    }

    /// Footprints are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate over all `(Δi, Δj, Δk)` offsets of the footprint.
    pub fn iter(&self) -> impl Iterator<Item = (i32, i32, i32)> + '_ {
        self.z.offsets().iter().flat_map(move |&dk| {
            self.y
                .offsets()
                .iter()
                .flat_map(move |&dj| self.x.offsets().iter().map(move |&di| (di, dj, dk)))
        })
    }
}

impl fmt::Display for StencilFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} x:[{}] y:[{}] z:[{}]",
            self.name, self.x, self.y, self.z
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_offsets_sorted_dedup_center() {
        let o = AxisOffsets::new(vec![3, -1, 3, 1]);
        assert_eq!(o.offsets(), &[-1, 0, 1, 3]);
        assert_eq!(o.neg_extent(), 1);
        assert_eq!(o.pos_extent(), 3);
        assert!(o.is_nontrivial());
        assert!(!AxisOffsets::center().is_nontrivial());
    }

    #[test]
    fn axis_offsets_range() {
        let o = AxisOffsets::range(2, 1);
        assert_eq!(o.offsets(), &[-2, -1, 0, 1]);
    }

    #[test]
    fn axis_union_and_compose() {
        let a = AxisOffsets::new(vec![-1, 1]);
        let b = AxisOffsets::new(vec![-2]);
        assert_eq!(a.union(&b).offsets(), &[-2, -1, 0, 1]);
        // compose: {-1,0,1} ⊕ {-2,0} = {-3,-2,-1,0,1}
        assert_eq!(a.compose(&b).offsets(), &[-3, -2, -1, 0, 1]);
    }

    #[test]
    fn footprint_required_halo() {
        // P_lambda^(1) from Table 1: x: i, i±1, i-2; y: j; z: k, k+1.
        let fp = StencilFootprint::new("P_lambda^(1)", vec![-2, -1, 1], vec![], vec![1]);
        assert_eq!(fp.required_halo(Axis::X), (2, 1));
        assert_eq!(fp.required_halo(Axis::Y), (0, 0));
        assert_eq!(fp.required_halo(Axis::Z), (0, 1));
    }

    #[test]
    fn footprint_repeated_dilates() {
        let fp = StencilFootprint::new("s", vec![-1, 1], vec![-1, 1], vec![]);
        let r = fp.repeated(3);
        assert_eq!(r.required_halo(Axis::X), (3, 3));
        assert_eq!(r.required_halo(Axis::Y), (3, 3));
        assert_eq!(r.required_halo(Axis::Z), (0, 0));
        // repeated(1) is identity
        assert_eq!(fp.repeated(1), fp);
    }

    #[test]
    fn footprint_union_of_many() {
        let a = StencilFootprint::new("a", vec![-2], vec![], vec![]);
        let b = StencilFootprint::new("b", vec![3], vec![1], vec![-1]);
        let u = StencilFootprint::union_of("u", &[a, b]);
        assert_eq!(u.required_halo(Axis::X), (2, 3));
        assert_eq!(u.required_halo(Axis::Y), (0, 1));
        assert_eq!(u.required_halo(Axis::Z), (1, 0));
    }

    #[test]
    fn footprint_contains_and_iter() {
        let fp = StencilFootprint::new("f", vec![-1, 1], vec![1], vec![]);
        assert!(fp.contains(0, 0, 0));
        assert!(fp.contains(-1, 1, 0));
        assert!(!fp.contains(-2, 0, 0));
        assert!(!fp.contains(0, -1, 0));
        let pts: Vec<_> = fp.iter().collect();
        assert_eq!(pts.len(), fp.len());
        assert_eq!(fp.len(), 3 * 2);
        assert!(pts.contains(&(1, 1, 0)));
    }

    #[test]
    fn pointwise_footprint() {
        let fp = StencilFootprint::pointwise("p");
        assert_eq!(fp.len(), 1);
        assert_eq!(fp.required_halo(Axis::X), (0, 0));
        assert!(!fp.is_empty());
    }
}
