//! # agcm-mesh — latitude–longitude mesh substrate
//!
//! Grid geometry, domain decomposition, field storage and halo planning for
//! the communication-avoiding AGCM dynamical core (Xiao et al., ICPP 2018).
//!
//! This crate is deliberately free of any message-passing: it describes
//! *what* lives *where* and *which boxes must move*, leaving *how* they move
//! to `agcm-comm`.  That separation lets the benchmark harness compute exact
//! communication volumes (for the paper's Figures 6-8) from the very same
//! geometry the executing code uses.
//!
//! ## Modules
//!
//! * [`grid`] — global lat-lon mesh with Arakawa C staggering and σ levels,
//! * [`stencil`] — stencil footprints (the paper's Tables 1-3 as data),
//! * [`decomp`] — X-Y / Y-Z / 3-D domain decomposition,
//! * [`field`] — flat-array field storage with halos,
//! * [`halo`] — halo exchange planning (Figure 4's eight halo areas),
//! * `sanitize` — runtime access sanitizer (feature `access-sanitizer`):
//!   shadow-records the index ranges kernels actually touch so tests can
//!   diff them against the declared `AccessSpec` footprints.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod decomp;
pub mod error;
pub mod field;
pub mod grid;
pub mod halo;
#[cfg(feature = "access-sanitizer")]
pub mod sanitize;
pub mod stencil;

pub use decomp::{DecompKind, Decomposition, NeighborLink, ProcessGrid, Subdomain};
pub use error::MeshError;
pub use field::{Field2, Field3, HaloWidths, SlabMut3};
pub use grid::{constants, LatLonGrid, SigmaLevels};
pub use halo::{BoxRange, ExchangePlan, ExchangeSpec};
pub use stencil::{Axis, AxisOffsets, StencilFootprint};
