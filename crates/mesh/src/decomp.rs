//! Domain decomposition of the latitude–longitude mesh.
//!
//! The dynamical core distributes the `nx × ny × nz` mesh over a cartesian
//! grid of `p = px·py·pz` processes (§3 of the paper).  Three schemes appear
//! in the paper:
//!
//! * **X-Y decomposition** (`pz = 1`): avoids the collective along `z` in the
//!   summation operator `C` but forces a distributed FFT for the Fourier
//!   filtering `F`,
//! * **Y-Z decomposition** (`px = 1`): each rank owns full latitude circles,
//!   so `F` involves no communication (§4.2.1) — the scheme chosen by the
//!   communication-avoiding algorithm,
//! * a general 3-D decomposition, mentioned by the paper as less efficient in
//!   practice; implemented here as a baseline for ablation.
//!
//! Axis periodicity: `x` (longitude) is periodic; `y` ends at the poles and
//! `z` at the model top/surface, so those directions have boundaries, not
//! wrap-around neighbours.

use crate::error::MeshError;
use std::ops::Range;

/// Which 2-D/3-D decomposition family a process grid belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecompKind {
    /// `pz = 1`: decompose longitude and latitude.
    XY,
    /// `px = 1`: decompose latitude and vertical (the paper's choice).
    YZ,
    /// All three directions decomposed.
    ThreeD,
    /// Single process (serial reference).
    Serial,
}

/// A cartesian grid of processes over the mesh directions.
///
/// Rank numbering is x-fastest: `rank = cx + cy·px + cz·px·py`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessGrid {
    px: usize,
    py: usize,
    pz: usize,
}

impl ProcessGrid {
    /// General constructor.
    pub fn new(px: usize, py: usize, pz: usize) -> Result<Self, MeshError> {
        if px == 0 || py == 0 || pz == 0 {
            return Err(MeshError::InvalidProcessGrid { px, py, pz });
        }
        Ok(ProcessGrid { px, py, pz })
    }

    /// X-Y decomposition: `px × py × 1`.
    pub fn xy(px: usize, py: usize) -> Result<Self, MeshError> {
        Self::new(px, py, 1)
    }

    /// Y-Z decomposition: `1 × py × pz`.
    pub fn yz(py: usize, pz: usize) -> Result<Self, MeshError> {
        Self::new(1, py, pz)
    }

    /// Serial (single process).
    pub fn serial() -> Self {
        ProcessGrid {
            px: 1,
            py: 1,
            pz: 1,
        }
    }

    /// Process counts along each direction.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.px, self.py, self.pz)
    }

    /// `px`.
    pub fn px(&self) -> usize {
        self.px
    }

    /// `py`.
    pub fn py(&self) -> usize {
        self.py
    }

    /// `pz`.
    pub fn pz(&self) -> usize {
        self.pz
    }

    /// Total process count `p = px·py·pz`.
    pub fn size(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// Classify the grid.
    pub fn kind(&self) -> DecompKind {
        match (self.px, self.py, self.pz) {
            (1, 1, 1) => DecompKind::Serial,
            (1, _, _) => DecompKind::YZ,
            (_, _, 1) => DecompKind::XY,
            _ => DecompKind::ThreeD,
        }
    }

    /// Cartesian coordinates of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        debug_assert!(rank < self.size());
        let cx = rank % self.px;
        let cy = (rank / self.px) % self.py;
        let cz = rank / (self.px * self.py);
        (cx, cy, cz)
    }

    /// Rank of cartesian coordinates.
    pub fn rank(&self, cx: usize, cy: usize, cz: usize) -> usize {
        debug_assert!(cx < self.px && cy < self.py && cz < self.pz);
        cx + cy * self.px + cz * self.px * self.py
    }

    /// The rank at coordinate offset `(dx, dy, dz)` from `rank`, honouring
    /// periodicity (x wraps, y and z do not).  `None` when the offset walks
    /// off a non-periodic boundary.
    pub fn neighbor(&self, rank: usize, dx: i32, dy: i32, dz: i32) -> Option<usize> {
        let (cx, cy, cz) = self.coords(rank);
        let nxt = |c: usize, d: i32, p: usize, periodic: bool| -> Option<usize> {
            let t = c as i64 + d as i64;
            if periodic {
                Some(t.rem_euclid(p as i64) as usize)
            } else if (0..p as i64).contains(&t) {
                Some(t as usize)
            } else {
                None
            }
        };
        let cx = nxt(cx, dx, self.px, true)?;
        let cy = nxt(cy, dy, self.py, false)?;
        let cz = nxt(cz, dz, self.pz, false)?;
        Some(self.rank(cx, cy, cz))
    }
}

/// Balanced 1-D block partition of `n` items over `p` parts: the first
/// `n mod p` parts get `⌈n/p⌉` items, the rest `⌊n/p⌋`.
pub fn block_range(n: usize, p: usize, r: usize) -> Range<usize> {
    debug_assert!(p > 0 && r < p);
    let base = n / p;
    let rem = n % p;
    let start = r * base + r.min(rem);
    let len = base + usize::from(r < rem);
    start..start + len
}

/// The portion of the global mesh owned by one rank: half-open global index
/// ranges along each axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subdomain {
    /// Owning rank.
    pub rank: usize,
    /// Cartesian coordinates of the rank in the process grid.
    pub coords: (usize, usize, usize),
    /// Global x (longitude) indices owned.
    pub x: Range<usize>,
    /// Global y (latitude) indices owned.
    pub y: Range<usize>,
    /// Global z (level) indices owned.
    pub z: Range<usize>,
}

impl Subdomain {
    /// Local extents `(nx_local, ny_local, nz_local)`.
    pub fn extents(&self) -> (usize, usize, usize) {
        (self.x.len(), self.y.len(), self.z.len())
    }

    /// Number of owned mesh points.
    pub fn len(&self) -> usize {
        self.x.len() * self.y.len() * self.z.len()
    }

    /// True when the subdomain owns no points (can happen when `p` exceeds
    /// the axis extent; such configurations are rejected by
    /// [`Decomposition::new`], so owned subdomains are never empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this subdomain touches the north pole boundary (`j = 0`).
    pub fn at_north(&self) -> bool {
        self.y.start == 0
    }

    /// Whether this subdomain touches the south pole boundary.
    pub fn at_south(&self, ny: usize) -> bool {
        self.y.end == ny
    }

    /// Whether this subdomain includes the model top (`k = 0`).
    pub fn at_top(&self) -> bool {
        self.z.start == 0
    }

    /// Whether this subdomain includes the surface level.
    pub fn at_surface(&self, nz: usize) -> bool {
        self.z.end == nz
    }
}

/// A full decomposition: global mesh extents + process grid, with subdomain
/// and neighbourhood queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    nx: usize,
    ny: usize,
    nz: usize,
    pgrid: ProcessGrid,
}

impl Decomposition {
    /// Create a decomposition.  Every rank must own at least one point along
    /// every axis (`px ≤ nx`, `py ≤ ny`, `pz ≤ nz`).
    pub fn new((nx, ny, nz): (usize, usize, usize), pgrid: ProcessGrid) -> Result<Self, MeshError> {
        if pgrid.px() > nx || pgrid.py() > ny || pgrid.pz() > nz {
            return Err(MeshError::Oversubscribed {
                nx,
                ny,
                nz,
                px: pgrid.px(),
                py: pgrid.py(),
                pz: pgrid.pz(),
            });
        }
        Ok(Decomposition { nx, ny, nz, pgrid })
    }

    /// Global mesh extents.
    pub fn global_extents(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// The process grid.
    pub fn process_grid(&self) -> &ProcessGrid {
        &self.pgrid
    }

    /// Decomposition family.
    pub fn kind(&self) -> DecompKind {
        self.pgrid.kind()
    }

    /// Total process count.
    pub fn size(&self) -> usize {
        self.pgrid.size()
    }

    /// Subdomain of `rank`.
    pub fn subdomain(&self, rank: usize) -> Subdomain {
        let coords = self.pgrid.coords(rank);
        Subdomain {
            rank,
            coords,
            x: block_range(self.nx, self.pgrid.px(), coords.0),
            y: block_range(self.ny, self.pgrid.py(), coords.1),
            z: block_range(self.nz, self.pgrid.pz(), coords.2),
        }
    }

    /// All subdomains, indexed by rank.
    pub fn subdomains(&self) -> Vec<Subdomain> {
        (0..self.size()).map(|r| self.subdomain(r)).collect()
    }

    /// Rank owning global point `(i, j, k)`.
    pub fn owner(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        let find = |n: usize, p: usize, g: usize| -> usize {
            // invert block_range
            let base = n / p;
            let rem = n % p;
            let cut = rem * (base + 1);
            if g < cut {
                g / (base + 1)
            } else {
                rem + (g - cut) / base.max(1)
            }
        };
        let cx = find(self.nx, self.pgrid.px(), i);
        let cy = find(self.ny, self.pgrid.py(), j);
        let cz = find(self.nz, self.pgrid.pz(), k);
        self.pgrid.rank(cx, cy, cz)
    }

    /// The neighbouring ranks of `rank` within coordinate offset 1 in any
    /// combination of decomposed directions (up to 26 in 3-D; the paper's
    /// "eight neighbors" under a 2-D decomposition).  Offsets along
    /// non-decomposed axes (`p_axis == 1`) are skipped: a rank is never its
    /// own neighbour, and periodic wrap to itself is excluded.
    pub fn neighbors(&self, rank: usize) -> Vec<NeighborLink> {
        let (px, py, pz) = self.pgrid.dims();
        let mut out = Vec::new();
        for dz in -1i32..=1 {
            if pz == 1 && dz != 0 {
                continue;
            }
            for dy in -1i32..=1 {
                if py == 1 && dy != 0 {
                    continue;
                }
                for dx in -1i32..=1 {
                    if px == 1 && dx != 0 {
                        continue;
                    }
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    if let Some(nr) = self.pgrid.neighbor(rank, dx, dy, dz) {
                        if nr != rank {
                            out.push(NeighborLink {
                                rank: nr,
                                offset: (dx, dy, dz),
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// A link to a neighbouring rank, annotated with the coordinate offset in the
/// process grid (each component in {-1, 0, 1}).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborLink {
    /// Neighbouring rank.
    pub rank: usize,
    /// Process-grid coordinate offset from the owner to the neighbour.
    pub offset: (i32, i32, i32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_range_balanced() {
        // 10 items over 3 parts: 4,3,3
        assert_eq!(block_range(10, 3, 0), 0..4);
        assert_eq!(block_range(10, 3, 1), 4..7);
        assert_eq!(block_range(10, 3, 2), 7..10);
        // exact division
        assert_eq!(block_range(8, 4, 2), 4..6);
    }

    #[test]
    fn block_range_covers_disjoint() {
        for n in [1usize, 7, 16, 33] {
            for p in 1..=n {
                let mut covered = vec![false; n];
                for r in 0..p {
                    for g in block_range(n, p, r) {
                        assert!(!covered[g], "overlap at {g} (n={n}, p={p})");
                        covered[g] = true;
                    }
                }
                assert!(covered.iter().all(|&c| c), "gap (n={n}, p={p})");
            }
        }
    }

    #[test]
    fn process_grid_kinds() {
        assert_eq!(ProcessGrid::serial().kind(), DecompKind::Serial);
        assert_eq!(ProcessGrid::xy(4, 2).unwrap().kind(), DecompKind::XY);
        assert_eq!(ProcessGrid::yz(4, 2).unwrap().kind(), DecompKind::YZ);
        assert_eq!(
            ProcessGrid::new(2, 2, 2).unwrap().kind(),
            DecompKind::ThreeD
        );
        assert!(ProcessGrid::new(0, 1, 1).is_err());
    }

    #[test]
    fn rank_coords_roundtrip() {
        let g = ProcessGrid::new(3, 4, 2).unwrap();
        assert_eq!(g.size(), 24);
        for r in 0..g.size() {
            let (cx, cy, cz) = g.coords(r);
            assert_eq!(g.rank(cx, cy, cz), r);
        }
    }

    #[test]
    fn neighbor_periodicity() {
        let g = ProcessGrid::new(4, 3, 2).unwrap();
        let r = g.rank(0, 1, 0);
        // x wraps
        assert_eq!(g.neighbor(r, -1, 0, 0), Some(g.rank(3, 1, 0)));
        // y does not wrap at the pole
        let rn = g.rank(1, 0, 0);
        assert_eq!(g.neighbor(rn, 0, -1, 0), None);
        assert_eq!(g.neighbor(rn, 0, 1, 0), Some(g.rank(1, 1, 0)));
        // z does not wrap
        assert_eq!(g.neighbor(r, 0, 0, -1), None);
    }

    #[test]
    fn decomposition_tiles_mesh() {
        let d = Decomposition::new((16, 12, 8), ProcessGrid::new(2, 3, 2).unwrap()).unwrap();
        let total: usize = d.subdomains().iter().map(|s| s.len()).sum();
        assert_eq!(total, 16 * 12 * 8);
        // owner() is consistent with subdomain()
        for s in d.subdomains() {
            for k in s.z.clone() {
                for j in s.y.clone() {
                    for i in s.x.clone() {
                        assert_eq!(d.owner(i, j, k), s.rank);
                    }
                }
            }
        }
    }

    #[test]
    fn yz_neighbors_are_eight() {
        // Interior rank of a Y-Z decomposition has exactly the paper's
        // "eight neighbors" (Figure 4).
        let d = Decomposition::new((8, 12, 9), ProcessGrid::yz(4, 3).unwrap()).unwrap();
        let g = d.process_grid();
        let interior = g.rank(0, 1, 1); // middle of 4x3 (y,z) grid
        assert_eq!(d.neighbors(interior).len(), 8);
        // corner rank (north pole, model top) has 3
        let corner = g.rank(0, 0, 0);
        assert_eq!(d.neighbors(corner).len(), 3);
    }

    #[test]
    fn xy_neighbors_wrap_in_x() {
        let d = Decomposition::new((16, 12, 4), ProcessGrid::xy(4, 3).unwrap()).unwrap();
        let g = d.process_grid();
        let interior = g.rank(1, 1, 0);
        assert_eq!(d.neighbors(interior).len(), 8);
        // north-row rank still has x neighbours both ways thanks to wrap
        let north = g.rank(0, 0, 0);
        let n = d.neighbors(north);
        assert_eq!(n.len(), 5); // W, E, S, SW, SE
        assert!(n.iter().any(|l| l.offset == (-1, 0, 0)));
        assert!(n.iter().any(|l| l.offset == (1, 0, 0)));
    }

    #[test]
    fn px2_wraps_but_excludes_self() {
        // with px = 2, offsets -1 and +1 reach the same neighbour (listed
        // twice, once per offset) but never the rank itself
        let d = Decomposition::new((8, 8, 4), ProcessGrid::xy(2, 2).unwrap()).unwrap();
        let n = d.neighbors(0);
        assert!(n.iter().all(|l| l.rank != 0));
    }

    #[test]
    fn oversubscription_rejected() {
        assert!(Decomposition::new((8, 8, 2), ProcessGrid::new(1, 1, 4).unwrap()).is_err());
        assert!(Decomposition::new((8, 8, 2), ProcessGrid::new(16, 1, 1).unwrap()).is_err());
    }

    #[test]
    fn subdomain_boundary_flags() {
        let d = Decomposition::new((8, 12, 9), ProcessGrid::yz(3, 3).unwrap()).unwrap();
        let g = d.process_grid();
        let s = d.subdomain(g.rank(0, 0, 0));
        assert!(s.at_north() && !s.at_south(12) && s.at_top() && !s.at_surface(9));
        let s = d.subdomain(g.rank(0, 2, 2));
        assert!(!s.at_north() && s.at_south(12) && !s.at_top() && s.at_surface(9));
    }

    #[test]
    fn serial_decomposition() {
        let d = Decomposition::new((8, 8, 4), ProcessGrid::serial()).unwrap();
        assert_eq!(d.kind(), DecompKind::Serial);
        let s = d.subdomain(0);
        assert_eq!(s.extents(), (8, 8, 4));
        assert!(d.neighbors(0).is_empty());
    }
}
