//! Distributed field storage with halo (ghost) regions.
//!
//! A [`Field3`] stores one scalar variable on the subdomain a rank owns,
//! surrounded by halo layers whose widths are chosen from the stencil
//! footprints (see [`crate::stencil`]).  The memory layout is a single flat
//! `Vec<f64>` with **x fastest** (stride 1 along longitude), matching the
//! direction the inner loops of the operators sweep and the direction of the
//! per-latitude-circle FFT of the Fourier filtering.
//!
//! Indexing is in *local interior coordinates*: `(0, 0, 0)` is the first
//! owned point; negative indices and indices `≥ n` reach into the halo.
//! Accessors take `isize` and are bounds-checked in debug builds.
//!
//! [`Field2`] is the 2-D (surface) analogue used for `p'_sa` and the other
//! single-level variables.

use crate::error::MeshError;
use crate::stencil::{Axis, StencilFootprint};

/// Halo widths of a field, per axis and side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HaloWidths {
    /// Layers on the low-x side.
    pub xm: usize,
    /// Layers on the high-x side.
    pub xp: usize,
    /// Layers on the low-y (northern) side.
    pub ym: usize,
    /// Layers on the high-y (southern) side.
    pub yp: usize,
    /// Layers on the low-z (top) side.
    pub zm: usize,
    /// Layers on the high-z (surface) side.
    pub zp: usize,
}

impl HaloWidths {
    /// No halo at all.
    pub fn zero() -> Self {
        HaloWidths::default()
    }

    /// The same width on every side of every axis.
    pub fn uniform(w: usize) -> Self {
        HaloWidths {
            xm: w,
            xp: w,
            ym: w,
            yp: w,
            zm: w,
            zp: w,
        }
    }

    /// Halo implied by a stencil footprint: the negative extent of the
    /// footprint along an axis becomes the low-side halo, etc.
    pub fn for_footprint(fp: &StencilFootprint) -> Self {
        let (xm, xp) = fp.required_halo(Axis::X);
        let (ym, yp) = fp.required_halo(Axis::Y);
        let (zm, zp) = fp.required_halo(Axis::Z);
        HaloWidths {
            xm: xm as usize,
            xp: xp as usize,
            ym: ym as usize,
            yp: yp as usize,
            zm: zm as usize,
            zp: zp as usize,
        }
    }

    /// Component-wise maximum.
    pub fn max(self, o: HaloWidths) -> HaloWidths {
        HaloWidths {
            xm: self.xm.max(o.xm),
            xp: self.xp.max(o.xp),
            ym: self.ym.max(o.ym),
            yp: self.yp.max(o.yp),
            zm: self.zm.max(o.zm),
            zp: self.zp.max(o.zp),
        }
    }

    /// Widths as `(low, high)` for one axis.
    pub fn along(&self, axis: Axis) -> (usize, usize) {
        match axis {
            Axis::X => (self.xm, self.xp),
            Axis::Y => (self.ym, self.yp),
            Axis::Z => (self.zm, self.zp),
        }
    }
}

/// A 3-D scalar field on one rank's subdomain, with halos.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    data: Vec<f64>,
    nx: usize,
    ny: usize,
    nz: usize,
    halo: HaloWidths,
    /// stride along y (x stride is 1)
    sy: usize,
    /// stride along z
    sz: usize,
    /// linear index of interior origin (0,0,0)
    base: usize,
}

impl Field3 {
    /// Allocate a zero-filled field of interior extents `(nx, ny, nz)` with
    /// the given halo widths.
    pub fn new(nx: usize, ny: usize, nz: usize, halo: HaloWidths) -> Self {
        let tx = nx + halo.xm + halo.xp;
        let ty = ny + halo.ym + halo.yp;
        let tz = nz + halo.zm + halo.zp;
        let sy = tx;
        let sz = tx * ty;
        let base = halo.xm + halo.ym * sy + halo.zm * sz;
        Field3 {
            data: vec![0.0; tx * ty * tz],
            nx,
            ny,
            nz,
            halo,
            sy,
            sz,
            base,
        }
    }

    /// Allocate with no halo.
    pub fn dense(nx: usize, ny: usize, nz: usize) -> Self {
        Self::new(nx, ny, nz, HaloWidths::zero())
    }

    /// A new field with the same shape (extents and halos), zero-filled.
    pub fn like(other: &Field3) -> Self {
        Field3::new(other.nx, other.ny, other.nz, other.halo)
    }

    /// Interior extents.
    pub fn extents(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Halo widths.
    pub fn halo(&self) -> HaloWidths {
        self.halo
    }

    /// Number of interior points.
    pub fn interior_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Total allocated points (interior + halo).
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn idx(&self, i: isize, j: isize, k: isize) -> usize {
        debug_assert!(
            i >= -(self.halo.xm as isize) && i < (self.nx + self.halo.xp) as isize,
            "x index {i} out of range [-{}, {})",
            self.halo.xm,
            self.nx + self.halo.xp
        );
        debug_assert!(
            j >= -(self.halo.ym as isize) && j < (self.ny + self.halo.yp) as isize,
            "y index {j} out of range [-{}, {})",
            self.halo.ym,
            self.ny + self.halo.yp
        );
        debug_assert!(
            k >= -(self.halo.zm as isize) && k < (self.nz + self.halo.zp) as isize,
            "z index {k} out of range [-{}, {})",
            self.halo.zm,
            self.nz + self.halo.zp
        );
        (self.base as isize + i + j * self.sy as isize + k * self.sz as isize) as usize
    }

    /// Bounds-check one local coordinate triple against interior + halo,
    /// returning the linear index.  The hot-path accessors ([`Field3::get`]
    /// and friends) skip this in release builds; use the `try_*` accessors
    /// on paths where an out-of-range index must surface as a typed error
    /// instead of a panic (or worse, a wrapped index into the wrong point).
    pub fn checked_idx(&self, i: isize, j: isize, k: isize) -> Result<usize, MeshError> {
        let check = |axis, index, m: usize, n: usize, p: usize| {
            let (lo, hi) = (-(m as isize), (n + p) as isize);
            if index < lo || index >= hi {
                Err(MeshError::OutOfBounds {
                    axis,
                    index,
                    lo,
                    hi,
                })
            } else {
                Ok(())
            }
        };
        check('x', i, self.halo.xm, self.nx, self.halo.xp)?;
        check('y', j, self.halo.ym, self.ny, self.halo.yp)?;
        check('z', k, self.halo.zm, self.nz, self.halo.zp)?;
        Ok((self.base as isize + i + j * self.sy as isize + k * self.sz as isize) as usize)
    }

    /// Bounds-checked read at local coordinates.
    pub fn try_get(&self, i: isize, j: isize, k: isize) -> Result<f64, MeshError> {
        Ok(self.data[self.checked_idx(i, j, k)?])
    }

    /// Bounds-checked write at local coordinates.
    pub fn try_set(&mut self, i: isize, j: isize, k: isize, v: f64) -> Result<(), MeshError> {
        let ix = self.checked_idx(i, j, k)?;
        self.data[ix] = v;
        Ok(())
    }

    /// Sanitizer identity of this field's allocation: pass to
    /// [`crate::sanitize::track`] to have its accesses recorded.
    #[cfg(feature = "access-sanitizer")]
    pub fn sanitizer_key(&self) -> usize {
        self.data.as_ptr() as usize
    }

    #[cfg(feature = "access-sanitizer")]
    #[inline]
    fn san(&self, write: bool, i0: isize, i1: isize, j: isize, k: isize) {
        crate::sanitize::record(self.data.as_ptr() as usize, write, i0, i1, j, k);
    }

    /// Read the value at local coordinates (halo reachable with negative /
    /// overflowing indices).
    #[inline]
    pub fn get(&self, i: isize, j: isize, k: isize) -> f64 {
        #[cfg(feature = "access-sanitizer")]
        self.san(false, i, i, j, k);
        self.data[self.idx(i, j, k)]
    }

    /// Write the value at local coordinates.
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, k: isize, v: f64) {
        #[cfg(feature = "access-sanitizer")]
        self.san(true, i, i, j, k);
        let ix = self.idx(i, j, k);
        self.data[ix] = v;
    }

    /// Add to the value at local coordinates.
    #[inline]
    pub fn add(&mut self, i: isize, j: isize, k: isize, v: f64) {
        #[cfg(feature = "access-sanitizer")]
        self.san(true, i, i, j, k);
        let ix = self.idx(i, j, k);
        self.data[ix] += v;
    }

    /// Contiguous x-row `[x0, x1)` at `(j, k)` (may extend into the x halo).
    ///
    /// # Safety contract
    ///
    /// x is stride-1, so the returned slice is exactly the points
    /// `(x0..x1, j, k)` in order.  Both endpoints must lie within
    /// `[-halo.xm, nx + halo.xp]`; this is checked by `debug_assert` only
    /// (like the scalar accessors), because row extraction happens once per
    /// `(j, k)` on hot paths whose loop bounds are already validated by the
    /// region/stencil machinery.  Out-of-range rows in release builds slice
    /// into *adjacent rows* of the same allocation — never out of the
    /// allocation for in-halo `j`/`k` (the slice bounds themselves are still
    /// checked by the indexing operation), but logically wrong.  Callers
    /// that take untrusted coordinates must use [`Self::checked_idx`] first.
    #[inline]
    pub fn row(&self, x0: isize, x1: isize, j: isize, k: isize) -> &[f64] {
        debug_assert!(x0 <= x1);
        debug_assert!(x1 <= (self.nx + self.halo.xp) as isize);
        #[cfg(feature = "access-sanitizer")]
        self.san(false, x0, (x1 - 1).max(x0), j, k);
        let a = self.idx(x0, j, k);
        let b = a + (x1 - x0) as usize;
        &self.data[a..b]
    }

    /// Mutable contiguous x-row.  Same safety contract as [`Self::row`].
    #[inline]
    pub fn row_mut(&mut self, x0: isize, x1: isize, j: isize, k: isize) -> &mut [f64] {
        debug_assert!(x0 <= x1);
        debug_assert!(x1 <= (self.nx + self.halo.xp) as isize);
        #[cfg(feature = "access-sanitizer")]
        self.san(true, x0, (x1 - 1).max(x0), j, k);
        let a = self.idx(x0, j, k);
        let b = a + (x1 - x0) as usize;
        &mut self.data[a..b]
    }

    /// Two *disjoint* mutable x-rows at `(ja, ka)` and `(jb, kb)`, in that
    /// order.  Panics if the rows coincide.  Same bounds contract as
    /// [`Self::row`].
    #[inline]
    pub fn row_pair(
        &mut self,
        x0: isize,
        x1: isize,
        (ja, ka): (isize, isize),
        (jb, kb): (isize, isize),
    ) -> (&mut [f64], &mut [f64]) {
        assert!(
            (ja, ka) != (jb, kb),
            "row_pair requires two distinct (j, k) rows"
        );
        debug_assert!(x0 <= x1);
        #[cfg(feature = "access-sanitizer")]
        {
            self.san(true, x0, (x1 - 1).max(x0), ja, ka);
            self.san(true, x0, (x1 - 1).max(x0), jb, kb);
        }
        let w = (x1 - x0) as usize;
        let a = self.idx(x0, ja, ka);
        let b = self.idx(x0, jb, kb);
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b);
            (&mut lo[a..a + w], &mut hi[..w])
        } else {
            let (lo, hi) = self.data.split_at_mut(a);
            let second = &mut lo[b..b + w];
            (&mut hi[..w], second)
        }
    }

    /// One mutable z-slab covering `k ∈ [k0, k1)` (full x/y extents
    /// including halos).  Allocation-free; combined with
    /// [`SlabMut3::split_at_k`] this is the worker pool's way of carving a
    /// field into disjoint per-thread bands without heap traffic.
    pub fn slab_mut(&mut self, k0: isize, k1: isize) -> SlabMut3<'_> {
        let zm = self.halo.zm as isize;
        assert!(k0 <= k1, "slab range must be non-decreasing");
        assert!(k0 >= -zm && k1 <= (self.nz + self.halo.zp) as isize);
        #[cfg(feature = "access-sanitizer")]
        let san_key = self.data.as_ptr() as usize;
        let sz = self.sz;
        let a = ((k0 + zm) * sz as isize) as usize;
        let b = ((k1 + zm) * sz as isize) as usize;
        SlabMut3 {
            data: &mut self.data[a..b],
            nx: self.nx,
            ny: self.ny,
            halo: self.halo,
            sy: self.sy,
            sz,
            k0,
            k1,
            #[cfg(feature = "access-sanitizer")]
            san_key,
        }
    }

    /// Split the field into mutable z-slabs along the given global-k cut
    /// points.  `cuts` must be strictly increasing and lie within
    /// `[-halo.zm, nz + halo.zp]`; slab `n` covers `k ∈ [cuts[n], cuts[n+1])`
    /// with full x/y extents (interior + halo).  The returned views write
    /// through disjoint ranges of the underlying allocation, so they can be
    /// sent to different worker threads; indexing stays in *global* local
    /// coordinates, identical to the parent field's.
    pub fn split_z_slabs(&mut self, cuts: &[isize]) -> Vec<SlabMut3<'_>> {
        assert!(cuts.len() >= 2, "need at least one slab");
        let zm = self.halo.zm as isize;
        assert!(cuts[0] >= -zm && *cuts.last().unwrap() <= (self.nz + self.halo.zp) as isize);
        for w in cuts.windows(2) {
            assert!(w[0] < w[1], "cuts must be strictly increasing");
        }
        #[cfg(feature = "access-sanitizer")]
        let san_key = self.data.as_ptr() as usize;
        let sz = self.sz;
        let plane0 = ((cuts[0] + zm) * sz as isize) as usize;
        let plane1 = ((cuts[cuts.len() - 1] + zm) * sz as isize) as usize;
        let mut rest = &mut self.data[plane0..plane1];
        let mut out = Vec::with_capacity(cuts.len() - 1);
        for w in cuts.windows(2) {
            let n = ((w[1] - w[0]) as usize) * sz;
            let (head, tail) = rest.split_at_mut(n);
            rest = tail;
            out.push(SlabMut3 {
                data: head,
                nx: self.nx,
                ny: self.ny,
                halo: self.halo,
                sy: self.sy,
                sz,
                k0: w[0],
                k1: w[1],
                #[cfg(feature = "access-sanitizer")]
                san_key,
            });
        }
        out
    }

    /// Raw data (including halos) — escape hatch for the FFT, which
    /// processes full x rows in place.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable data.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Set every interior *and* halo point to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Poison the halo with NaN.  Tests use this to prove an operator never
    /// reads outside the region its footprint declares.
    pub fn poison_halo(&mut self) {
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        let h = self.halo;
        for k in -(h.zm as isize)..nz + h.zp as isize {
            for j in -(h.ym as isize)..ny + h.yp as isize {
                for i in -(h.xm as isize)..nx + h.xp as isize {
                    let interior =
                        (0..nx).contains(&i) && (0..ny).contains(&j) && (0..nz).contains(&k);
                    if !interior {
                        self.set(i, j, k, f64::NAN);
                    }
                }
            }
        }
    }

    /// `self = a` (interiors must have identical extents; halos may differ —
    /// only the interior is copied).
    pub fn assign_interior(&mut self, a: &Field3) {
        assert_eq!(self.extents(), a.extents());
        for k in 0..self.nz as isize {
            for j in 0..self.ny as isize {
                let src = a.row(0, a.nx as isize, j, k);
                self.row_mut(0, self.nx as isize, j, k).copy_from_slice(src);
            }
        }
    }

    /// `self = x + c*y` over the interior.
    pub fn lincomb_interior(&mut self, x: &Field3, c: f64, y: &Field3) {
        assert_eq!(self.extents(), x.extents());
        assert_eq!(self.extents(), y.extents());
        for k in 0..self.nz as isize {
            for j in 0..self.ny as isize {
                let n = self.nx as isize;
                let xr = x.row(0, n, j, k);
                let yr = y.row(0, n, j, k);
                let dr = self.row_mut(0, n, j, k);
                for ((d, &xv), &yv) in dr.iter_mut().zip(xr).zip(yr) {
                    *d = xv + c * yv;
                }
            }
        }
    }

    /// Maximum absolute difference over interiors.
    pub fn max_abs_diff(&self, other: &Field3) -> f64 {
        assert_eq!(self.extents(), other.extents());
        let mut m: f64 = 0.0;
        for k in 0..self.nz as isize {
            for j in 0..self.ny as isize {
                let n = self.nx as isize;
                let a = self.row(0, n, j, k);
                let b = other.row(0, n, j, k);
                for (&x, &y) in a.iter().zip(b) {
                    m = m.max((x - y).abs());
                }
            }
        }
        m
    }

    /// Maximum absolute interior value.
    pub fn max_abs(&self) -> f64 {
        let mut m: f64 = 0.0;
        for k in 0..self.nz as isize {
            for j in 0..self.ny as isize {
                for &v in self.row(0, self.nx as isize, j, k) {
                    m = m.max(v.abs());
                }
            }
        }
        m
    }

    /// Whether any interior value is NaN.
    pub fn has_nan_interior(&self) -> bool {
        for k in 0..self.nz as isize {
            for j in 0..self.ny as isize {
                if self
                    .row(0, self.nx as isize, j, k)
                    .iter()
                    .any(|v| v.is_nan())
                {
                    return true;
                }
            }
        }
        false
    }

    /// Pack a rectangular box (local coordinates, may include halo cells)
    /// into `buf`, x-fastest.  Returns the number of values written.
    pub fn pack_box(
        &self,
        xr: std::ops::Range<isize>,
        yr: std::ops::Range<isize>,
        zr: std::ops::Range<isize>,
        buf: &mut Vec<f64>,
    ) -> usize {
        let n0 = buf.len();
        for k in zr {
            for j in yr.clone() {
                buf.extend_from_slice(self.row(xr.start, xr.end, j, k));
            }
        }
        buf.len() - n0
    }

    /// Unpack a rectangular box previously produced by [`Self::pack_box`].
    /// Returns the number of values consumed.
    pub fn unpack_box(
        &mut self,
        xr: std::ops::Range<isize>,
        yr: std::ops::Range<isize>,
        zr: std::ops::Range<isize>,
        buf: &[f64],
    ) -> usize {
        let w = (xr.end - xr.start) as usize;
        let mut off = 0;
        for k in zr {
            for j in yr.clone() {
                self.row_mut(xr.start, xr.end, j, k)
                    .copy_from_slice(&buf[off..off + w]);
                off += w;
            }
        }
        off
    }

    /// Fill the x halo by periodic wrap within this rank.  Valid only when
    /// the rank owns the full longitude circle (`px = 1`, i.e. Y-Z or serial
    /// decomposition) — the wrap is then purely local, which is exactly why
    /// the paper's Y-Z scheme makes the x direction communication-free for
    /// stencils too.
    pub fn wrap_x_halo(&mut self) {
        let nx = self.nx;
        let (hm, hp) = (self.halo.xm, self.halo.xp);
        if hm == 0 && hp == 0 {
            return;
        }
        let ny = self.ny as isize;
        let nz = self.nz as isize;
        let (hym, hyp) = (self.halo.ym as isize, self.halo.yp as isize);
        let (hzm, hzp) = (self.halo.zm as isize, self.halo.zp as isize);
        for k in -hzm..nz + hzp {
            for j in -hym..ny + hyp {
                let a = self.idx(-(hm as isize), j, k);
                let row = &mut self.data[a..a + hm + nx + hp];
                // halo[-d] = interior[nx-d]: row[0..hm) = row[nx..nx+hm)
                row.copy_within(nx..nx + hm, 0);
                // halo[nx+d] = interior[d]: row[hm+nx..) = row[hm..hm+hp)
                row.copy_within(hm..hm + hp, hm + nx);
            }
        }
    }
}

/// A mutable z-slab view of a [`Field3`], produced by
/// [`Field3::split_z_slabs`].
///
/// The view owns the planes `k ∈ [k0, k1)` of the parent allocation (full
/// x/y extents including halos).  All accessors take the *same global local
/// coordinates* as the parent field, so kernels can be written once and run
/// unchanged against the whole field (one slab) or a band of it (one slab
/// per worker).  Accesses outside the slab's k-range are a bug and panic in
/// debug builds.
#[derive(Debug)]
pub struct SlabMut3<'a> {
    data: &'a mut [f64],
    nx: usize,
    ny: usize,
    halo: HaloWidths,
    sy: usize,
    sz: usize,
    k0: isize,
    k1: isize,
    /// Sanitizer identity of the parent field's allocation.
    #[cfg(feature = "access-sanitizer")]
    san_key: usize,
}

impl<'a> SlabMut3<'a> {
    /// The global-k range `[k0, k1)` this slab covers.
    pub fn k_range(&self) -> (isize, isize) {
        (self.k0, self.k1)
    }

    #[inline]
    fn idx(&self, i: isize, j: isize, k: isize) -> usize {
        debug_assert!(
            k >= self.k0 && k < self.k1,
            "z index {k} outside slab [{}, {})",
            self.k0,
            self.k1
        );
        debug_assert!(
            i >= -(self.halo.xm as isize) && i < (self.nx + self.halo.xp) as isize,
            "x index {i} out of range"
        );
        debug_assert!(
            j >= -(self.halo.ym as isize) && j < (self.ny + self.halo.yp) as isize,
            "y index {j} out of range"
        );
        let base = (self.halo.xm + self.halo.ym * self.sy) as isize;
        (base + i + j * self.sy as isize + (k - self.k0) * self.sz as isize) as usize
    }

    #[cfg(feature = "access-sanitizer")]
    #[inline]
    fn san(&self, write: bool, i0: isize, i1: isize, j: isize, k: isize) {
        crate::sanitize::record(self.san_key, write, i0, i1, j, k);
    }

    /// Read at global local coordinates (must lie in this slab's k-range).
    #[inline]
    pub fn get(&self, i: isize, j: isize, k: isize) -> f64 {
        #[cfg(feature = "access-sanitizer")]
        self.san(false, i, i, j, k);
        self.data[self.idx(i, j, k)]
    }

    /// Write at global local coordinates.
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, k: isize, v: f64) {
        #[cfg(feature = "access-sanitizer")]
        self.san(true, i, i, j, k);
        let ix = self.idx(i, j, k);
        self.data[ix] = v;
    }

    /// Add at global local coordinates.
    #[inline]
    pub fn add(&mut self, i: isize, j: isize, k: isize, v: f64) {
        #[cfg(feature = "access-sanitizer")]
        self.san(true, i, i, j, k);
        let ix = self.idx(i, j, k);
        self.data[ix] += v;
    }

    /// Contiguous x-row `[x0, x1)` at `(j, k)` — same contract as
    /// [`Field3::row`].
    #[inline]
    pub fn row(&self, x0: isize, x1: isize, j: isize, k: isize) -> &[f64] {
        debug_assert!(x0 <= x1);
        #[cfg(feature = "access-sanitizer")]
        self.san(false, x0, (x1 - 1).max(x0), j, k);
        let a = self.idx(x0, j, k);
        &self.data[a..a + (x1 - x0) as usize]
    }

    /// Mutable contiguous x-row — same contract as [`Field3::row_mut`].
    #[inline]
    pub fn row_mut(&mut self, x0: isize, x1: isize, j: isize, k: isize) -> &mut [f64] {
        debug_assert!(x0 <= x1);
        #[cfg(feature = "access-sanitizer")]
        self.san(true, x0, (x1 - 1).max(x0), j, k);
        let a = self.idx(x0, j, k);
        &mut self.data[a..a + (x1 - x0) as usize]
    }

    /// Split this slab at global plane `k` into `[k0, k)` and `[k, k1)`.
    ///
    /// Allocation-free (consumes `self`, splitting the underlying slice), so
    /// the worker pool can carve a field into per-thread bands without heap
    /// traffic.
    pub fn split_at_k(self, k: isize) -> (SlabMut3<'a>, SlabMut3<'a>) {
        assert!(k >= self.k0 && k <= self.k1, "split plane outside slab");
        let cut = ((k - self.k0) * self.sz as isize) as usize;
        let (lo, hi) = self.data.split_at_mut(cut);
        (
            SlabMut3 {
                data: lo,
                nx: self.nx,
                ny: self.ny,
                halo: self.halo,
                sy: self.sy,
                sz: self.sz,
                k0: self.k0,
                k1: k,
                #[cfg(feature = "access-sanitizer")]
                san_key: self.san_key,
            },
            SlabMut3 {
                data: hi,
                nx: self.nx,
                ny: self.ny,
                halo: self.halo,
                sy: self.sy,
                sz: self.sz,
                k0: k,
                k1: self.k1,
                #[cfg(feature = "access-sanitizer")]
                san_key: self.san_key,
            },
        )
    }
}

/// A 2-D (single-level) scalar field with halos, used for the surface
/// variables (`p'_sa`, `p_es`, …).
#[derive(Debug, Clone, PartialEq)]
pub struct Field2 {
    data: Vec<f64>,
    nx: usize,
    ny: usize,
    hx: (usize, usize),
    hy: (usize, usize),
    sy: usize,
    base: usize,
}

impl Field2 {
    /// Allocate a zero-filled 2-D field; `halo.z*` components are ignored.
    pub fn new(nx: usize, ny: usize, halo: HaloWidths) -> Self {
        let tx = nx + halo.xm + halo.xp;
        let ty = ny + halo.ym + halo.yp;
        let sy = tx;
        let base = halo.xm + halo.ym * sy;
        Field2 {
            data: vec![0.0; tx * ty],
            nx,
            ny,
            hx: (halo.xm, halo.xp),
            hy: (halo.ym, halo.yp),
            sy,
            base,
        }
    }

    /// Allocate with no halo.
    pub fn dense(nx: usize, ny: usize) -> Self {
        Self::new(nx, ny, HaloWidths::zero())
    }

    /// A new field with the same shape, zero-filled.
    pub fn like(other: &Field2) -> Self {
        let mut h = HaloWidths::zero();
        h.xm = other.hx.0;
        h.xp = other.hx.1;
        h.ym = other.hy.0;
        h.yp = other.hy.1;
        Field2::new(other.nx, other.ny, h)
    }

    /// Interior extents.
    pub fn extents(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Halo widths (z components zero).
    pub fn halo(&self) -> HaloWidths {
        HaloWidths {
            xm: self.hx.0,
            xp: self.hx.1,
            ym: self.hy.0,
            yp: self.hy.1,
            zm: 0,
            zp: 0,
        }
    }

    /// Raw data (including halos) — escape hatch for checkpoint I/O.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable data.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    #[inline]
    fn idx(&self, i: isize, j: isize) -> usize {
        debug_assert!(
            i >= -(self.hx.0 as isize) && i < (self.nx + self.hx.1) as isize,
            "x index {i} out of range"
        );
        debug_assert!(
            j >= -(self.hy.0 as isize) && j < (self.ny + self.hy.1) as isize,
            "y index {j} out of range"
        );
        (self.base as isize + i + j * self.sy as isize) as usize
    }

    /// Bounds-check one local coordinate pair; see [`Field3::checked_idx`].
    pub fn checked_idx(&self, i: isize, j: isize) -> Result<usize, MeshError> {
        let check = |axis, index, m: usize, n: usize, p: usize| {
            let (lo, hi) = (-(m as isize), (n + p) as isize);
            if index < lo || index >= hi {
                Err(MeshError::OutOfBounds {
                    axis,
                    index,
                    lo,
                    hi,
                })
            } else {
                Ok(())
            }
        };
        check('x', i, self.hx.0, self.nx, self.hx.1)?;
        check('y', j, self.hy.0, self.ny, self.hy.1)?;
        Ok((self.base as isize + i + j * self.sy as isize) as usize)
    }

    /// Bounds-checked read at local coordinates.
    pub fn try_get(&self, i: isize, j: isize) -> Result<f64, MeshError> {
        Ok(self.data[self.checked_idx(i, j)?])
    }

    /// Bounds-checked write at local coordinates.
    pub fn try_set(&mut self, i: isize, j: isize, v: f64) -> Result<(), MeshError> {
        let ix = self.checked_idx(i, j)?;
        self.data[ix] = v;
        Ok(())
    }

    /// Sanitizer identity of this field's allocation: pass to
    /// [`crate::sanitize::track`] to have its accesses recorded.
    #[cfg(feature = "access-sanitizer")]
    pub fn sanitizer_key(&self) -> usize {
        self.data.as_ptr() as usize
    }

    #[cfg(feature = "access-sanitizer")]
    #[inline]
    fn san(&self, write: bool, i0: isize, i1: isize, j: isize) {
        crate::sanitize::record(self.data.as_ptr() as usize, write, i0, i1, j, 0);
    }

    /// Read at local coordinates.
    #[inline]
    pub fn get(&self, i: isize, j: isize) -> f64 {
        #[cfg(feature = "access-sanitizer")]
        self.san(false, i, i, j);
        self.data[self.idx(i, j)]
    }

    /// Write at local coordinates.
    #[inline]
    pub fn set(&mut self, i: isize, j: isize, v: f64) {
        #[cfg(feature = "access-sanitizer")]
        self.san(true, i, i, j);
        let ix = self.idx(i, j);
        self.data[ix] = v;
    }

    /// Add at local coordinates.
    #[inline]
    pub fn add(&mut self, i: isize, j: isize, v: f64) {
        #[cfg(feature = "access-sanitizer")]
        self.san(true, i, i, j);
        let ix = self.idx(i, j);
        self.data[ix] += v;
    }

    /// Contiguous x-row `[x0, x1)` at row `j` — same safety contract as
    /// [`Field3::row`].
    #[inline]
    pub fn row(&self, x0: isize, x1: isize, j: isize) -> &[f64] {
        debug_assert!(x0 <= x1);
        debug_assert!(x1 <= (self.nx + self.hx.1) as isize);
        #[cfg(feature = "access-sanitizer")]
        self.san(false, x0, (x1 - 1).max(x0), j);
        let a = self.idx(x0, j);
        &self.data[a..a + (x1 - x0) as usize]
    }

    /// Mutable contiguous x-row — same safety contract as
    /// [`Field3::row_mut`].
    #[inline]
    pub fn row_mut(&mut self, x0: isize, x1: isize, j: isize) -> &mut [f64] {
        debug_assert!(x0 <= x1);
        debug_assert!(x1 <= (self.nx + self.hx.1) as isize);
        #[cfg(feature = "access-sanitizer")]
        self.san(true, x0, (x1 - 1).max(x0), j);
        let a = self.idx(x0, j);
        &mut self.data[a..a + (x1 - x0) as usize]
    }

    /// Set every point (interior and halo) to `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// `self = a` over the interior.
    pub fn assign_interior(&mut self, a: &Field2) {
        assert_eq!(self.extents(), a.extents());
        for j in 0..self.ny as isize {
            let src = a.row(0, a.nx as isize, j);
            self.row_mut(0, self.nx as isize, j).copy_from_slice(src);
        }
    }

    /// `self = x + c*y` over the interior.
    pub fn lincomb_interior(&mut self, x: &Field2, c: f64, y: &Field2) {
        assert_eq!(self.extents(), x.extents());
        assert_eq!(self.extents(), y.extents());
        for j in 0..self.ny as isize {
            let n = self.nx as isize;
            let xr = x.row(0, n, j);
            let yr = y.row(0, n, j);
            let dr = self.row_mut(0, n, j);
            for ((d, &xv), &yv) in dr.iter_mut().zip(xr).zip(yr) {
                *d = xv + c * yv;
            }
        }
    }

    /// Maximum absolute difference over interiors.
    pub fn max_abs_diff(&self, other: &Field2) -> f64 {
        assert_eq!(self.extents(), other.extents());
        let mut m: f64 = 0.0;
        for j in 0..self.ny as isize {
            let n = self.nx as isize;
            for (&x, &y) in self.row(0, n, j).iter().zip(other.row(0, n, j)) {
                m = m.max((x - y).abs());
            }
        }
        m
    }

    /// Maximum absolute interior value.
    pub fn max_abs(&self) -> f64 {
        let mut m: f64 = 0.0;
        for j in 0..self.ny as isize {
            for &v in self.row(0, self.nx as isize, j) {
                m = m.max(v.abs());
            }
        }
        m
    }

    /// Pack a rectangular box into `buf`.
    pub fn pack_box(
        &self,
        xr: std::ops::Range<isize>,
        yr: std::ops::Range<isize>,
        buf: &mut Vec<f64>,
    ) -> usize {
        let n0 = buf.len();
        for j in yr {
            buf.extend_from_slice(self.row(xr.start, xr.end, j));
        }
        buf.len() - n0
    }

    /// Unpack a rectangular box from `buf`; returns values consumed.
    pub fn unpack_box(
        &mut self,
        xr: std::ops::Range<isize>,
        yr: std::ops::Range<isize>,
        buf: &[f64],
    ) -> usize {
        let w = (xr.end - xr.start) as usize;
        let mut off = 0;
        for j in yr {
            self.row_mut(xr.start, xr.end, j)
                .copy_from_slice(&buf[off..off + w]);
            off += w;
        }
        off
    }

    /// Fill the x halo by periodic wrap within this rank (requires `px = 1`,
    /// see [`Field3::wrap_x_halo`]).
    pub fn wrap_x_halo(&mut self) {
        let nx = self.nx;
        let (hm, hp) = (self.hx.0, self.hx.1);
        if hm == 0 && hp == 0 {
            return;
        }
        let ny = self.ny as isize;
        let (hym, hyp) = (self.hy.0 as isize, self.hy.1 as isize);
        for j in -hym..ny + hyp {
            let a = self.idx(-(hm as isize), j);
            let row = &mut self.data[a..a + hm + nx + hp];
            row.copy_within(nx..nx + hm, 0);
            row.copy_within(hm..hm + hp, hm + nx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_pattern(f: &mut Field3) {
        let (nx, ny, nz) = f.extents();
        for k in 0..nz as isize {
            for j in 0..ny as isize {
                for i in 0..nx as isize {
                    f.set(i, j, k, (i + 10 * j + 100 * k) as f64);
                }
            }
        }
    }

    #[test]
    fn field3_basic_indexing() {
        let mut f = Field3::new(4, 3, 2, HaloWidths::uniform(1));
        assert_eq!(f.extents(), (4, 3, 2));
        assert_eq!(f.total_len(), 6 * 5 * 4);
        assert_eq!(f.interior_len(), 24);
        f.set(0, 0, 0, 1.5);
        f.set(3, 2, 1, 2.5);
        f.set(-1, -1, -1, 9.0); // halo corner
        assert_eq!(f.get(0, 0, 0), 1.5);
        assert_eq!(f.get(3, 2, 1), 2.5);
        assert_eq!(f.get(-1, -1, -1), 9.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn field3_out_of_halo_panics() {
        let f = Field3::new(4, 3, 2, HaloWidths::uniform(1));
        let _ = f.get(5, 0, 0);
    }

    #[test]
    fn field3_rows_are_contiguous() {
        let mut f = Field3::new(4, 3, 2, HaloWidths::uniform(2));
        fill_pattern(&mut f);
        let r = f.row(0, 4, 1, 1);
        assert_eq!(r, &[110.0, 111.0, 112.0, 113.0]);
        f.row_mut(0, 4, 1, 1).iter_mut().for_each(|v| *v += 1.0);
        assert_eq!(f.get(2, 1, 1), 113.0);
    }

    #[test]
    fn field3_asymmetric_halo() {
        let h = HaloWidths {
            xm: 3,
            xp: 1,
            ym: 0,
            yp: 2,
            zm: 1,
            zp: 0,
        };
        let mut f = Field3::new(4, 3, 2, h);
        f.set(-3, 0, 0, 7.0);
        f.set(4, 4, -1, 8.0);
        assert_eq!(f.get(-3, 0, 0), 7.0);
        assert_eq!(f.get(4, 4, -1), 8.0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut a = Field3::new(5, 4, 3, HaloWidths::uniform(1));
        fill_pattern(&mut a);
        let mut b = Field3::like(&a);
        let mut buf = Vec::new();
        let n = a.pack_box(1..4, 0..3, 1..3, &mut buf);
        assert_eq!(n, 3 * 3 * 2);
        let c = b.unpack_box(1..4, 0..3, 1..3, &buf);
        assert_eq!(c, n);
        for k in 1..3isize {
            for j in 0..3isize {
                for i in 1..4isize {
                    assert_eq!(b.get(i, j, k), a.get(i, j, k));
                }
            }
        }
    }

    #[test]
    fn pack_into_halo_region() {
        // packing from interior of a, unpacking into halo of b — the halo
        // exchange primitive
        let mut a = Field3::new(4, 4, 2, HaloWidths::uniform(2));
        fill_pattern(&mut a);
        let mut b = Field3::like(&a);
        let mut buf = Vec::new();
        // a's two southernmost rows -> b's northern halo
        a.pack_box(0..4, 2..4, 0..2, &mut buf);
        b.unpack_box(0..4, -2..0, 0..2, &buf);
        assert_eq!(b.get(0, -2, 0), a.get(0, 2, 0));
        assert_eq!(b.get(3, -1, 1), a.get(3, 3, 1));
    }

    #[test]
    fn wrap_x_halo_periodic() {
        let mut f = Field3::new(6, 3, 2, HaloWidths::uniform(2));
        fill_pattern(&mut f);
        f.wrap_x_halo();
        for k in 0..2isize {
            for j in 0..3isize {
                assert_eq!(f.get(-1, j, k), f.get(5, j, k));
                assert_eq!(f.get(-2, j, k), f.get(4, j, k));
                assert_eq!(f.get(6, j, k), f.get(0, j, k));
                assert_eq!(f.get(7, j, k), f.get(1, j, k));
            }
        }
    }

    #[test]
    fn lincomb_and_diff() {
        let mut x = Field3::dense(3, 3, 2);
        let mut y = Field3::dense(3, 3, 2);
        fill_pattern(&mut x);
        fill_pattern(&mut y);
        let mut d = Field3::like(&x);
        d.lincomb_interior(&x, 2.0, &y);
        assert_eq!(d.get(1, 1, 1), 3.0 * 111.0);
        assert_eq!(d.max_abs_diff(&x), 2.0 * x.max_abs());
        let mut z = Field3::like(&x);
        z.assign_interior(&d);
        assert_eq!(z.max_abs_diff(&d), 0.0);
    }

    #[test]
    fn poison_and_nan_detection() {
        let mut f = Field3::new(3, 3, 2, HaloWidths::uniform(1));
        fill_pattern(&mut f);
        f.poison_halo();
        assert!(!f.has_nan_interior());
        assert!(f.get(-1, 0, 0).is_nan());
        assert!(f.get(3, 2, 1).is_nan());
        f.set(1, 1, 0, f64::NAN);
        assert!(f.has_nan_interior());
    }

    #[test]
    fn halo_from_footprint() {
        let fp = StencilFootprint::new("t", vec![-2, -1, 1], vec![-1, 1], vec![1]);
        let h = HaloWidths::for_footprint(&fp);
        assert_eq!((h.xm, h.xp), (2, 1));
        assert_eq!((h.ym, h.yp), (1, 1));
        assert_eq!((h.zm, h.zp), (0, 1));
        let m = h.max(HaloWidths::uniform(1));
        assert_eq!((m.xm, m.zm), (2, 1));
    }

    #[test]
    fn field2_basics() {
        let mut f = Field2::new(5, 4, HaloWidths::uniform(2));
        for j in 0..4isize {
            for i in 0..5isize {
                f.set(i, j, (i + 10 * j) as f64);
            }
        }
        assert_eq!(f.get(3, 2), 23.0);
        f.wrap_x_halo();
        assert_eq!(f.get(-1, 1), f.get(4, 1));
        assert_eq!(f.get(6, 3), f.get(1, 3));

        let mut b = Field2::like(&f);
        let mut buf = Vec::new();
        f.pack_box(0..5, 2..4, &mut buf);
        b.unpack_box(0..5, -2..0, &buf);
        assert_eq!(b.get(2, -1), f.get(2, 3));

        let mut c = Field2::like(&f);
        c.lincomb_interior(&f, -1.0, &f);
        assert_eq!(c.max_abs(), 0.0);
        c.assign_interior(&f);
        assert_eq!(c.max_abs_diff(&f), 0.0);
    }

    #[test]
    fn row_pair_disjoint_rows() {
        let mut f = Field3::new(4, 3, 2, HaloWidths::uniform(1));
        fill_pattern(&mut f);
        let (a, b) = f.row_pair(0, 4, (0, 0), (2, 1));
        assert_eq!(a, &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(b, &[120.0, 121.0, 122.0, 123.0]);
        a[0] = -1.0;
        b[3] = -2.0;
        assert_eq!(f.get(0, 0, 0), -1.0);
        assert_eq!(f.get(3, 2, 1), -2.0);
        // order is preserved even when the first row is the later one
        let (c, d) = f.row_pair(0, 4, (2, 1), (0, 0));
        assert_eq!(c[3], -2.0);
        assert_eq!(d[0], -1.0);
    }

    #[test]
    #[should_panic]
    fn row_pair_same_row_panics() {
        let mut f = Field3::new(4, 3, 2, HaloWidths::uniform(1));
        let _ = f.row_pair(0, 4, (1, 1), (1, 1));
    }

    #[test]
    fn split_z_slabs_cover_disjoint_planes() {
        let mut f = Field3::new(4, 3, 4, HaloWidths::uniform(1));
        fill_pattern(&mut f);
        let mut slabs = f.split_z_slabs(&[0, 2, 4]);
        assert_eq!(slabs.len(), 2);
        assert_eq!(slabs[0].k_range(), (0, 2));
        assert_eq!(slabs[1].k_range(), (2, 4));
        // global addressing matches the parent field
        assert_eq!(slabs[0].get(1, 2, 1), (1 + 10 * 2 + 100) as f64);
        assert_eq!(slabs[1].get(3, 0, 3), (3 + 300) as f64);
        // writes land in the parent field, rows are contiguous
        slabs[0].set(0, 0, 0, -5.0);
        slabs[1].row_mut(0, 4, 1, 2).fill(-7.0);
        slabs[1].add(0, 1, 2, -1.0);
        drop(slabs);
        assert_eq!(f.get(0, 0, 0), -5.0);
        assert_eq!(f.get(0, 1, 2), -8.0);
        assert_eq!(f.get(3, 1, 2), -7.0);
        // halo planes can be included in a slab
        let slabs = f.split_z_slabs(&[-1, 5]);
        assert_eq!(slabs.len(), 1);
        assert_eq!(slabs[0].k_range(), (-1, 5));
    }

    #[test]
    fn wrap_x_halo_asymmetric() {
        let h = HaloWidths {
            xm: 2,
            xp: 1,
            ym: 1,
            yp: 0,
            zm: 0,
            zp: 1,
        };
        let mut f = Field3::new(5, 2, 2, h);
        fill_pattern(&mut f);
        f.wrap_x_halo();
        assert_eq!(f.get(-1, 0, 0), f.get(4, 0, 0));
        assert_eq!(f.get(-2, 1, 1), f.get(3, 1, 1));
        assert_eq!(f.get(5, 1, 0), f.get(0, 1, 0));
    }

    #[test]
    fn checked_accessors_bound_interior_plus_halo() {
        let mut f = Field3::new(4, 3, 2, HaloWidths::uniform(1));
        f.set(0, 0, 0, 5.0);
        assert_eq!(f.try_get(0, 0, 0).unwrap(), 5.0);
        assert!(f.try_get(-1, -1, -1).is_ok(), "halo is reachable");
        assert!(f.try_set(4, 2, 1, 1.0).is_ok(), "upper halo is reachable");
        let e = f.try_get(5, 0, 0).unwrap_err();
        assert!(
            matches!(
                e,
                MeshError::OutOfBounds {
                    axis: 'x',
                    index: 5,
                    ..
                }
            ),
            "{e}"
        );
        assert!(f.try_get(0, -2, 0).is_err());
        assert!(f.try_set(0, 0, 3, 0.0).is_err());
        // checked and unchecked agree on in-range points
        assert_eq!(f.checked_idx(2, 1, 1).unwrap(), f.idx(2, 1, 1));

        let mut g = Field2::new(4, 3, HaloWidths::uniform(2));
        assert!(g.try_set(-2, 4, 9.0).is_ok());
        assert_eq!(g.try_get(-2, 4).unwrap(), 9.0);
        let e = g.try_get(0, 5).unwrap_err();
        assert!(
            matches!(
                e,
                MeshError::OutOfBounds {
                    axis: 'y',
                    index: 5,
                    ..
                }
            ),
            "{e}"
        );
    }
}
