//! Error types of the mesh crate.

use std::fmt;

/// Errors arising from grid or decomposition construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// Grid extents too small for the discretization.
    InvalidGrid {
        /// Longitude points requested.
        nx: usize,
        /// Latitude rows requested.
        ny: usize,
        /// Vertical levels requested.
        nz: usize,
    },
    /// σ interfaces are malformed.
    InvalidSigma(String),
    /// A process-grid dimension was zero.
    InvalidProcessGrid {
        /// Processes along x.
        px: usize,
        /// Processes along y.
        py: usize,
        /// Processes along z.
        pz: usize,
    },
    /// A field access outside interior + halo (checked accessors only; the
    /// unchecked hot-path accessors debug-assert instead).
    OutOfBounds {
        /// Axis name: `'x'`, `'y'` or `'z'`.
        axis: char,
        /// The offending index.
        index: isize,
        /// Valid range start (inclusive, may be negative into the halo).
        lo: isize,
        /// Valid range end (exclusive).
        hi: isize,
    },
    /// More processes than mesh points along some axis.
    Oversubscribed {
        /// Longitude points.
        nx: usize,
        /// Latitude rows.
        ny: usize,
        /// Vertical levels.
        nz: usize,
        /// Processes along x.
        px: usize,
        /// Processes along y.
        py: usize,
        /// Processes along z.
        pz: usize,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::InvalidGrid { nx, ny, nz } => {
                write!(
                    f,
                    "grid {nx}x{ny}x{nz} is too small (need nx,ny >= 4, nz >= 1)"
                )
            }
            MeshError::InvalidSigma(msg) => write!(f, "invalid sigma levels: {msg}"),
            MeshError::InvalidProcessGrid { px, py, pz } => {
                write!(f, "process grid {px}x{py}x{pz} has a zero dimension")
            }
            MeshError::OutOfBounds {
                axis,
                index,
                lo,
                hi,
            } => {
                write!(f, "{axis} index {index} outside [{lo}, {hi})")
            }
            MeshError::Oversubscribed {
                nx,
                ny,
                nz,
                px,
                py,
                pz,
            } => write!(
                f,
                "process grid {px}x{py}x{pz} oversubscribes mesh {nx}x{ny}x{nz}"
            ),
        }
    }
}

impl std::error::Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MeshError::InvalidGrid {
            nx: 1,
            ny: 2,
            nz: 3,
        };
        assert!(e.to_string().contains("1x2x3"));
        let e = MeshError::Oversubscribed {
            nx: 8,
            ny: 8,
            nz: 2,
            px: 1,
            py: 1,
            pz: 4,
        };
        assert!(e.to_string().contains("oversubscribes"));
        let e = MeshError::InvalidSigma("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = MeshError::InvalidProcessGrid {
            px: 0,
            py: 1,
            pz: 1,
        };
        assert!(e.to_string().contains("zero"));
    }
}
