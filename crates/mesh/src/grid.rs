//! Global latitude–longitude mesh geometry.
//!
//! The dynamical core discretizes the sphere with a regular
//! latitude–longitude mesh (the paper's §2.2): `nx` points around each
//! latitude circle, `ny` latitude rows between the poles and `nz`
//! terrain-following σ levels, with Arakawa C staggering in the horizontal.
//!
//! Conventions (matching the paper's index notation):
//!
//! * `x` = longitude, index `i ∈ [0, nx)`, periodic, `λ_i = i·Δλ`,
//!   `Δλ = 2π/nx`.  `U` lives at `λ_{i-1/2}`.
//! * `y` = latitude expressed as **colatitude** `θ` (0 at the north pole, π
//!   at the south pole — the equations use `sin θ` which is positive in the
//!   interior).  Scalar rows sit at `θ_j = (j + 1/2)·Δθ` with `Δθ = π/ny`,
//!   so no scalar row sits exactly on a pole and `sin θ_j > 0` everywhere.
//!   `V` lives at `θ_{j+1/2} = (j+1)·Δθ`.
//! * `z` = σ level, index `k ∈ [0, nz)`, cell centres `σ_k = (k + 1/2)·Δσ`,
//!   interfaces `σ_{k±1/2}`, uniform `Δσ = 1/nz` by default (the general
//!   non-uniform case is supported through [`SigmaLevels::from_interfaces`]).
//!
//! All trigonometric tables are precomputed once per grid; the inner loops
//! of the operators only ever index into slices.

use crate::error::MeshError;

/// Physical and model constants of the dynamical core (§2.1 of the paper).
pub mod constants {
    /// Earth radius `a` \[m\].
    pub const EARTH_RADIUS: f64 = 6.371e6;
    /// Angular velocity of the earth rotation `Ω` \[s⁻¹\].
    pub const EARTH_OMEGA: f64 = 7.292e-5;
    /// Gas constant for dry air `R` \[J kg⁻¹ K⁻¹\].
    pub const R_DRY: f64 = 287.04;
    /// Specific heat of dry air at constant pressure `c_p` \[J kg⁻¹ K⁻¹\].
    pub const CP_DRY: f64 = 1004.64;
    /// `κ = R/c_p`.
    pub const KAPPA: f64 = R_DRY / CP_DRY;
    /// Characteristic velocity of gravity wave propagation `b` \[m s⁻¹\]
    /// (Eq. 1 of the paper).
    pub const B_GRAVITY_WAVE: f64 = 87.8;
    /// Pressure at the model top layer `p_t` \[Pa\] (2.2 hPa).
    pub const P_TOP: f64 = 220.0;
    /// Reference pressure `p_0` \[Pa\] (1000 hPa).
    pub const P_REF: f64 = 100_000.0;
    /// Dissipation coefficient `k_sa` of the surface-pressure diffusion
    /// term `D_sa` (Eq. 6).
    pub const K_SA: f64 = 0.1;
    /// Gravitational acceleration \[m s⁻²\] (used by the Held–Suarez setup).
    pub const GRAVITY: f64 = 9.80616;
}

/// Vertical σ coordinate levels.
///
/// `σ = (p - p_t)/p_es` runs from 0 at the model top to 1 at the surface.
/// Cell centres carry the prognostic variables; interfaces carry the vertical
/// velocity `σ̇` used by the vertical convection term `L₃`.
#[derive(Debug, Clone, PartialEq)]
pub struct SigmaLevels {
    /// Interface values `σ_{k-1/2}`, length `nz + 1`, `σ_{-1/2} = 0`,
    /// `σ_{nz-1/2} = 1`, strictly increasing.
    interfaces: Vec<f64>,
    /// Centre values `σ_k`, length `nz`.
    centers: Vec<f64>,
    /// Layer thicknesses `Δσ_k`, length `nz`.
    thickness: Vec<f64>,
}

impl SigmaLevels {
    /// Uniform levels: `Δσ_k = 1/nz`.
    pub fn uniform(nz: usize) -> Self {
        assert!(nz >= 1, "need at least one vertical level");
        let interfaces: Vec<f64> = (0..=nz).map(|k| k as f64 / nz as f64).collect();
        Self::from_interfaces(interfaces).expect("uniform interfaces are valid")
    }

    /// Build from explicit interface values.  Must start at 0, end at 1 and
    /// be strictly increasing.
    pub fn from_interfaces(interfaces: Vec<f64>) -> Result<Self, MeshError> {
        if interfaces.len() < 2 {
            return Err(MeshError::InvalidSigma("need at least 2 interfaces".into()));
        }
        if (interfaces[0]).abs() > 1e-14 {
            return Err(MeshError::InvalidSigma("first interface must be 0".into()));
        }
        if (interfaces[interfaces.len() - 1] - 1.0).abs() > 1e-14 {
            return Err(MeshError::InvalidSigma("last interface must be 1".into()));
        }
        for w in interfaces.windows(2) {
            if w[1] <= w[0] {
                return Err(MeshError::InvalidSigma(
                    "interfaces must be strictly increasing".into(),
                ));
            }
        }
        let nz = interfaces.len() - 1;
        let centers: Vec<f64> = (0..nz)
            .map(|k| 0.5 * (interfaces[k] + interfaces[k + 1]))
            .collect();
        let thickness: Vec<f64> = (0..nz).map(|k| interfaces[k + 1] - interfaces[k]).collect();
        Ok(SigmaLevels {
            interfaces,
            centers,
            thickness,
        })
    }

    /// Number of levels `nz`.
    pub fn nz(&self) -> usize {
        self.centers.len()
    }

    /// Interface values `σ_{k-1/2}`, length `nz + 1`.
    pub fn interfaces(&self) -> &[f64] {
        &self.interfaces
    }

    /// Centre values `σ_k`, length `nz`.
    pub fn centers(&self) -> &[f64] {
        &self.centers
    }

    /// Thicknesses `Δσ_k`, length `nz`.
    pub fn thickness(&self) -> &[f64] {
        &self.thickness
    }
}

/// Global latitude–longitude mesh with Arakawa C staggering.
///
/// Construction precomputes every geometric table the operators need; the
/// struct is immutable afterwards and cheap to share (`Arc<LatLonGrid>` in
/// multi-rank runs).
#[derive(Debug, Clone)]
pub struct LatLonGrid {
    nx: usize,
    ny: usize,
    sigma: SigmaLevels,
    /// Longitude spacing `Δλ`.
    dlambda: f64,
    /// Colatitude spacing `Δθ`.
    dtheta: f64,
    /// Colatitude of scalar rows `θ_j = (j+1/2)Δθ`, length `ny`.
    theta_c: Vec<f64>,
    /// Colatitude of V rows `θ_{j+1/2} = (j+1)Δθ`, length `ny` (the last row
    /// sits on the south pole and is treated as a boundary).
    theta_v: Vec<f64>,
    /// `sin θ_j` at scalar rows.
    sin_c: Vec<f64>,
    /// `cos θ_j` at scalar rows.
    cos_c: Vec<f64>,
    /// `sin θ_{j+1/2}` at V rows.
    sin_v: Vec<f64>,
    /// `cos θ_{j+1/2}` at V rows.
    cos_v: Vec<f64>,
}

impl LatLonGrid {
    /// Create a grid with `nx × ny` horizontal points and uniform σ levels.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Result<Self, MeshError> {
        Self::with_sigma(nx, ny, SigmaLevels::uniform(nz))
    }

    /// Create a grid with explicit σ levels.
    pub fn with_sigma(nx: usize, ny: usize, sigma: SigmaLevels) -> Result<Self, MeshError> {
        if nx < 4 || ny < 4 || sigma.nz() < 1 {
            return Err(MeshError::InvalidGrid {
                nx,
                ny,
                nz: sigma.nz(),
            });
        }
        let dlambda = 2.0 * std::f64::consts::PI / nx as f64;
        let dtheta = std::f64::consts::PI / ny as f64;
        let theta_c: Vec<f64> = (0..ny).map(|j| (j as f64 + 0.5) * dtheta).collect();
        let theta_v: Vec<f64> = (0..ny).map(|j| (j as f64 + 1.0) * dtheta).collect();
        let sin_c = theta_c.iter().map(|t| t.sin()).collect();
        let cos_c = theta_c.iter().map(|t| t.cos()).collect();
        let sin_v = theta_v.iter().map(|t| t.sin()).collect();
        let cos_v = theta_v.iter().map(|t| t.cos()).collect();
        Ok(LatLonGrid {
            nx,
            ny,
            sigma,
            dlambda,
            dtheta,
            theta_c,
            theta_v,
            sin_c,
            cos_c,
            sin_v,
            cos_v,
        })
    }

    /// The 50 km-resolution mesh of the paper's evaluation:
    /// `n_x × n_y × n_z = 720 × 360 × 30`.
    pub fn paper_50km() -> Self {
        Self::new(720, 360, 30).expect("paper grid is valid")
    }

    /// Number of longitude points.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of latitude rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of vertical levels.
    pub fn nz(&self) -> usize {
        self.sigma.nz()
    }

    /// Total number of mesh points `n = nx·ny·nz`.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz()
    }

    /// Grids are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// σ levels.
    pub fn sigma(&self) -> &SigmaLevels {
        &self.sigma
    }

    /// Longitude spacing `Δλ` \[rad\].
    pub fn dlambda(&self) -> f64 {
        self.dlambda
    }

    /// Colatitude spacing `Δθ` \[rad\].
    pub fn dtheta(&self) -> f64 {
        self.dtheta
    }

    /// Longitude of the scalar column `i`: `λ_i = i·Δλ`.
    pub fn lambda(&self, i: usize) -> f64 {
        i as f64 * self.dlambda
    }

    /// Colatitude of scalar row `j`.
    pub fn theta_center(&self, j: usize) -> f64 {
        self.theta_c[j]
    }

    /// Colatitude of the V row `j+1/2`.
    pub fn theta_vface(&self, j: usize) -> f64 {
        self.theta_v[j]
    }

    /// `sin θ` at scalar rows (length `ny`).
    pub fn sin_center(&self) -> &[f64] {
        &self.sin_c
    }

    /// `cos θ` at scalar rows (length `ny`).
    pub fn cos_center(&self) -> &[f64] {
        &self.cos_c
    }

    /// `sin θ` at V rows (length `ny`; entry `ny-1` is the south pole and is
    /// ~0 — V is pinned to zero there by the boundary conditions).
    pub fn sin_vface(&self) -> &[f64] {
        &self.sin_v
    }

    /// `cos θ` at V rows (length `ny`).
    pub fn cos_vface(&self) -> &[f64] {
        &self.cos_v
    }

    /// Latitude (geographic, radians, positive north) of scalar row `j`.
    pub fn latitude(&self, j: usize) -> f64 {
        std::f64::consts::FRAC_PI_2 - self.theta_c[j]
    }

    /// Approximate grid resolution at the equator in kilometres.
    pub fn equatorial_resolution_km(&self) -> f64 {
        constants::EARTH_RADIUS * self.dlambda / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn uniform_sigma_levels() {
        let s = SigmaLevels::uniform(4);
        assert_eq!(s.nz(), 4);
        assert_eq!(s.interfaces(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(s.centers(), &[0.125, 0.375, 0.625, 0.875]);
        assert!(s.thickness().iter().all(|&d| (d - 0.25).abs() < 1e-15));
    }

    #[test]
    fn custom_sigma_levels() {
        let s = SigmaLevels::from_interfaces(vec![0.0, 0.1, 0.4, 1.0]).unwrap();
        assert_eq!(s.nz(), 3);
        assert!((s.thickness()[0] - 0.1).abs() < 1e-15);
        assert!((s.thickness()[2] - 0.6).abs() < 1e-15);
        assert!((s.centers()[1] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn invalid_sigma_levels_rejected() {
        assert!(SigmaLevels::from_interfaces(vec![0.0]).is_err());
        assert!(SigmaLevels::from_interfaces(vec![0.1, 1.0]).is_err());
        assert!(SigmaLevels::from_interfaces(vec![0.0, 0.9]).is_err());
        assert!(SigmaLevels::from_interfaces(vec![0.0, 0.5, 0.5, 1.0]).is_err());
        assert!(SigmaLevels::from_interfaces(vec![0.0, 0.7, 0.3, 1.0]).is_err());
    }

    #[test]
    fn grid_geometry() {
        let g = LatLonGrid::new(8, 6, 3).unwrap();
        assert_eq!(g.nx(), 8);
        assert_eq!(g.ny(), 6);
        assert_eq!(g.nz(), 3);
        assert_eq!(g.len(), 8 * 6 * 3);
        assert!((g.dlambda() - 2.0 * PI / 8.0).abs() < 1e-15);
        assert!((g.dtheta() - PI / 6.0).abs() < 1e-15);
        // scalar rows avoid the poles: sinθ strictly positive
        assert!(g.sin_center().iter().all(|&s| s > 0.0));
        // colatitude increases monotonically
        for j in 1..g.ny() {
            assert!(g.theta_center(j) > g.theta_center(j - 1));
        }
        // V row j sits between scalar rows j and j+1
        for j in 0..g.ny() - 1 {
            assert!(g.theta_vface(j) > g.theta_center(j));
            assert!(g.theta_vface(j) < g.theta_center(j + 1));
        }
        // last V row is the south pole
        assert!((g.theta_vface(g.ny() - 1) - PI).abs() < 1e-12);
        assert!(g.sin_vface()[g.ny() - 1].abs() < 1e-12);
    }

    #[test]
    fn grid_symmetry_about_equator() {
        let g = LatLonGrid::new(16, 10, 2).unwrap();
        for j in 0..g.ny() {
            let jj = g.ny() - 1 - j;
            assert!((g.sin_center()[j] - g.sin_center()[jj]).abs() < 1e-12);
            assert!((g.cos_center()[j] + g.cos_center()[jj]).abs() < 1e-12);
            assert!((g.latitude(j) + g.latitude(jj)).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_grid() {
        let g = LatLonGrid::paper_50km();
        assert_eq!((g.nx(), g.ny(), g.nz()), (720, 360, 30));
        // 720 points around the equator ≈ 55.6 km spacing: "50 km resolution"
        let res = g.equatorial_resolution_km();
        assert!((40.0..70.0).contains(&res), "res = {res}");
    }

    #[test]
    fn too_small_grid_rejected() {
        assert!(LatLonGrid::new(2, 6, 3).is_err());
        assert!(LatLonGrid::new(8, 2, 3).is_err());
    }

    #[test]
    fn kappa_constant() {
        assert!((constants::KAPPA - 2.0 / 7.0).abs() < 2e-3);
    }
}
