//! Minimal complex arithmetic for the FFT.
//!
//! Implemented in-crate (rather than pulling in an external numerics crate)
//! because the FFT itself is part of the reproduction: the Fourier polar
//! filtering `F` is one of the five operators of the paper's calculating
//! flow (Eq. 8), and its data movement — not just its result — matters.

use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in cartesian form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Zero.
    #[inline]
    pub const fn zero() -> Self {
        Complex { re: 0.0, im: 0.0 }
    }

    /// One.
    #[inline]
    pub const fn one() -> Self {
        Complex { re: 1.0, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.norm_sqr(), 5.0);
        assert_eq!(Complex::from(2.0), Complex::new(2.0, 0.0));
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
    }

    #[test]
    fn cis_unit_circle() {
        use std::f64::consts::PI;
        let q = Complex::cis(PI / 2.0);
        assert!((q.re).abs() < 1e-15);
        assert!((q.im - 1.0).abs() < 1e-15);
        assert!((Complex::cis(0.3).abs() - 1.0).abs() < 1e-15);
    }
}
