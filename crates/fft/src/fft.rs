//! Mixed-radix fast Fourier transform.
//!
//! A recursive Cooley–Tukey decimation-in-time transform that factors the
//! length into small radices (2, 3, 5, 7, …) and falls back to the naive
//! O(n²) DFT for any remaining large prime factor.  Latitude–longitude
//! meshes use smooth `n_x` (the paper's mesh has `n_x = 720 = 2⁴·3²·5`), so
//! the fallback only triggers on deliberately adversarial sizes.
//!
//! Conventions: forward transform `X[k] = Σ_j x[j]·e^{-2πi jk/n}` without
//! normalization; the inverse carries the `1/n` factor, so
//! `ifft(fft(x)) = x`.

use crate::complex::Complex;

/// Naive O(n²) discrete Fourier transform — the testing oracle and the
/// large-prime fallback.  `sign = -1.0` is forward, `+1.0` inverse-style
/// (without normalization).
pub fn dft_naive(x: &[Complex], sign: f64) -> Vec<Complex> {
    let n = x.len();
    let mut out = vec![Complex::zero(); n];
    if n == 0 {
        return out;
    }
    let w = sign * 2.0 * std::f64::consts::PI / n as f64;
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &xj) in x.iter().enumerate() {
            acc += xj * Complex::cis(w * ((j * k) % n) as f64);
        }
        *o = acc;
    }
    out
}

/// Smallest prime factor of `n` (n ≥ 2).
fn smallest_factor(n: usize) -> usize {
    for r in [2usize, 3, 5, 7, 11, 13] {
        if n.is_multiple_of(r) {
            return r;
        }
    }
    let mut r = 17;
    while r * r <= n {
        if n.is_multiple_of(r) {
            return r;
        }
        r += 2;
    }
    n
}

/// Recursive mixed-radix kernel.
fn fft_rec(x: &[Complex], sign: f64) -> Vec<Complex> {
    let n = x.len();
    if n <= 1 {
        return x.to_vec();
    }
    let r = smallest_factor(n);
    if r == n {
        // prime length: fall back to naive DFT (O(n²) — only hit for prime n)
        return dft_naive(x, sign);
    }
    let m = n / r;
    // decimate: sub l takes x[l], x[l+r], x[l+2r], ...
    let subs: Vec<Vec<Complex>> = (0..r)
        .map(|l| {
            let stride: Vec<Complex> = (0..m).map(|j| x[l + j * r]).collect();
            fft_rec(&stride, sign)
        })
        .collect();
    // combine: X[k] = Σ_l e^{sign·2πi·lk/n} · Sub_l[k mod m]
    let w = sign * 2.0 * std::f64::consts::PI / n as f64;
    let mut out = vec![Complex::zero(); n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (l, sub) in subs.iter().enumerate() {
            acc += sub[k % m] * Complex::cis(w * ((l * k) % n) as f64);
        }
        *o = acc;
    }
    out
}

/// Memoized twiddle tables, one per transform length and direction.
///
/// Every root-of-unity the recursion evaluates has the form
/// `cis(sign·2π/n · t)` with `t ∈ 0..n`, so a table of exactly those values
/// — computed with the *same expression* on the *same argument* — substitutes
/// bitwise for the inline `cis` calls while moving sin/cos out of the
/// per-point combine loops.  The lengths a transform of size `n` needs form
/// the factor chain `n, n/r₁, n/(r₁r₂), …` (all subsequences at one level
/// share a length), so the whole set is precomputed before recursing.
#[derive(Debug, Clone, Default)]
struct TwiddleCache {
    /// `(n, forward?, table)` — a handful of entries (one chain per length
    /// used), linear scan is cheaper than hashing
    tables: Vec<(usize, bool, Vec<Complex>)>,
}

impl TwiddleCache {
    /// Precompute tables for the whole factor chain of `n` in direction
    /// `sign`.  Allocates only the first time a length is seen.
    fn ensure(&mut self, mut n: usize, sign: f64) {
        let fwd = sign < 0.0;
        while n > 1 {
            if !self.tables.iter().any(|(m, f, _)| *m == n && *f == fwd) {
                let w = sign * 2.0 * std::f64::consts::PI / n as f64;
                let table: Vec<Complex> = (0..n).map(|t| Complex::cis(w * t as f64)).collect();
                self.tables.push((n, fwd, table));
            }
            let r = smallest_factor(n);
            if r == n {
                break;
            }
            n /= r;
        }
    }

    fn get(&self, n: usize, sign: f64) -> &[Complex] {
        let fwd = sign < 0.0;
        self.tables
            .iter()
            .find(|(m, f, _)| *m == n && *f == fwd)
            .map(|(_, _, t)| t.as_slice())
            .expect("twiddle table prepared by ensure()")
    }
}

/// Naive DFT writing into a caller-provided buffer (`out.len() == x.len()`).
/// Bitwise-identical to [`dft_naive`] — same accumulation order, twiddles
/// looked up from the precomputed table instead of recomputed.
fn dft_naive_into(x: &[Complex], sign: f64, out: &mut [Complex], tw: &TwiddleCache) {
    let n = x.len();
    debug_assert_eq!(out.len(), n);
    if n == 0 {
        return;
    }
    let table = tw.get(n, sign);
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for (j, &xj) in x.iter().enumerate() {
            acc += xj * table[(j * k) % n];
        }
        *o = acc;
    }
}

/// Allocation-free recursive mixed-radix kernel.
///
/// Writes the transform of `x` into `out` (`out.len() == x.len()`), using
/// `arena` as recursion scratch.  `arena.len() >= 2 * x.len()` suffices: each
/// level parks its `r` transformed subsequences in the first `n` slots and
/// recurses into the remainder (`n + n/2 + n/4 + … < 2n`).  The sequence of
/// floating-point operations is exactly that of [`fft_rec`] (twiddles come
/// from the table, computed by the same expression), so results are bitwise
/// identical.
fn fft_rec_into(
    x: &[Complex],
    sign: f64,
    out: &mut [Complex],
    arena: &mut [Complex],
    tw: &TwiddleCache,
) {
    let n = x.len();
    debug_assert_eq!(out.len(), n);
    if n == 0 {
        return;
    }
    if n == 1 {
        out[0] = x[0];
        return;
    }
    let r = smallest_factor(n);
    if r == n {
        // prime length: fall back to naive DFT (O(n²) — only hit for prime n)
        dft_naive_into(x, sign, out, tw);
        return;
    }
    let m = n / r;
    // decimate: sub l takes x[l], x[l+r], x[l+2r], ...  `out` doubles as the
    // strided staging buffer; the transformed subs land contiguously in the
    // first n slots of the arena.
    let (subs_buf, rest) = arena.split_at_mut(n);
    for l in 0..r {
        let stage = &mut out[..m];
        for (j, s) in stage.iter_mut().enumerate() {
            *s = x[l + j * r];
        }
        fft_rec_into(&out[..m], sign, &mut subs_buf[l * m..(l + 1) * m], rest, tw);
    }
    // combine: X[k] = Σ_l e^{sign·2πi·lk/n} · Sub_l[k mod m]
    let table = tw.get(n, sign);
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::zero();
        for l in 0..r {
            acc += subs_buf[l * m + k % m] * table[(l * k) % n];
        }
        *o = acc;
    }
}

/// Reusable buffers for the allocation-free transform entry points.
///
/// Steady-state calls at a fixed length perform no heap allocation: buffers
/// are grown once and reused (`clear` + `resize` keeps capacity).
#[derive(Debug, Clone, Default)]
pub struct FftScratch {
    /// Full-length staging input (complexified signal / mirrored spectrum).
    a: Vec<Complex>,
    /// Full-length transform output.
    b: Vec<Complex>,
    /// Recursion arena (`2n`).
    arena: Vec<Complex>,
    /// Roots of unity per transform length and direction.
    tw: TwiddleCache,
}

impl FftScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize, sign: f64) {
        // `a` and `b` are fully overwritten before being read and stale
        // arena slots are written before the combine reads them, so a
        // same-length reuse skips the re-zeroing entirely
        if self.a.len() != n {
            self.a.clear();
            self.a.resize(n, Complex::zero());
            self.b.clear();
            self.b.resize(n, Complex::zero());
            self.arena.clear();
            self.arena.resize(2 * n, Complex::zero());
        }
        self.tw.ensure(n, sign);
    }

    /// Forward real-to-complex FFT into `out` (resized to `n/2 + 1`).
    /// Bitwise-identical to [`rfft`]; allocation-free once warmed up at a
    /// given length.
    pub fn rfft_into(&mut self, x: &[f64], out: &mut Vec<Complex>) {
        let n = x.len();
        self.ensure(n, -1.0);
        for (a, &v) in self.a.iter_mut().zip(x) {
            *a = Complex::from(v);
        }
        fft_rec_into(&self.a, -1.0, &mut self.b, &mut self.arena, &self.tw);
        out.clear();
        out.extend_from_slice(&self.b[..=n / 2]);
    }

    /// Inverse of [`FftScratch::rfft_into`]: reconstruct `out.len()` real
    /// samples from the half spectrum (`spectrum.len() == n/2 + 1`).
    /// Bitwise-identical to [`irfft`].
    pub fn irfft_into(&mut self, spectrum: &[Complex], out: &mut [f64]) {
        let n = out.len();
        assert_eq!(
            spectrum.len(),
            n / 2 + 1,
            "half spectrum of length n/2+1 required"
        );
        self.ensure(n, 1.0);
        self.a[..spectrum.len()].copy_from_slice(spectrum);
        for k in spectrum.len()..n {
            self.a[k] = spectrum[n - k].conj();
        }
        fft_rec_into(&self.a, 1.0, &mut self.b, &mut self.arena, &self.tw);
        let s = 1.0 / n as f64;
        for (o, c) in out.iter_mut().zip(&self.b) {
            *o = c.scale(s).re;
        }
    }
}

/// Forward FFT (no normalization).
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    fft_rec(x, -1.0)
}

/// Inverse FFT (with `1/n` normalization), so `ifft(fft(x)) == x`.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    let mut out = fft_rec(x, 1.0);
    if n > 0 {
        let s = 1.0 / n as f64;
        for v in &mut out {
            *v = v.scale(s);
        }
    }
    out
}

/// Forward real-to-complex FFT: returns the non-redundant half spectrum
/// `X[0..=n/2]` (`n/2 + 1` coefficients).  The remaining coefficients are
/// determined by conjugate symmetry `X[n-k] = conj(X[k])`.
pub fn rfft(x: &[f64]) -> Vec<Complex> {
    let n = x.len();
    let cx: Vec<Complex> = x.iter().map(|&v| Complex::from(v)).collect();
    let full = fft(&cx);
    full[..=n / 2].to_vec()
}

/// Inverse of [`rfft`]: reconstruct `n` real samples from the half spectrum.
/// `spectrum.len()` must be `n/2 + 1`.
pub fn irfft(spectrum: &[Complex], n: usize) -> Vec<f64> {
    assert_eq!(
        spectrum.len(),
        n / 2 + 1,
        "half spectrum of length n/2+1 required"
    );
    let mut full = vec![Complex::zero(); n];
    full[..spectrum.len()].copy_from_slice(spectrum);
    for k in spectrum.len()..n {
        full[k] = spectrum[n - k].conj();
    }
    ifft(&full).into_iter().map(|c| c.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "mismatch at {i}: {x:?} vs {y:?}");
        }
    }

    fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
        // simple deterministic LCG so the test needs no RNG dependency here
        let mut s = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| Complex::new(next(), next())).collect()
    }

    #[test]
    fn fft_matches_naive_dft_smooth_sizes() {
        for n in [
            1usize, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 24, 30, 45, 60, 64,
        ] {
            let x = random_signal(n, n as u64);
            assert_close(&fft(&x), &dft_naive(&x, -1.0), 1e-9 * (n as f64 + 1.0));
        }
    }

    #[test]
    fn fft_handles_prime_and_semi_prime_sizes() {
        for n in [7usize, 11, 13, 17, 19, 23, 34, 51] {
            let x = random_signal(n, n as u64);
            assert_close(&fft(&x), &dft_naive(&x, -1.0), 1e-9 * n as f64);
        }
    }

    #[test]
    fn ifft_roundtrip() {
        for n in [2usize, 12, 30, 720] {
            let x = random_signal(n, 42 + n as u64);
            let back = ifft(&fft(&x));
            assert_close(&back, &x, 1e-10 * n as f64);
        }
    }

    #[test]
    fn fft_of_delta_is_flat() {
        let mut x = vec![Complex::zero(); 16];
        x[0] = Complex::one();
        for c in fft(&x) {
            assert!((c - Complex::one()).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_single_mode() {
        // x[j] = e^{2πi·3j/n} → spike at k = 3 of height n
        let n = 20;
        let x: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        let s = fft(&x);
        for (k, c) in s.iter().enumerate() {
            if k == 3 {
                assert!((c.re - n as f64).abs() < 1e-9);
            } else {
                assert!(c.abs() < 1e-9, "leak at {k}");
            }
        }
    }

    #[test]
    fn parseval() {
        let n = 48;
        let x = random_signal(n, 7);
        let s = fft(&x);
        let time_energy: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let freq_energy: f64 = s.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 30;
        let x = random_signal(n, 1);
        let y = random_signal(n, 2);
        let z: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(&a, &b)| a.scale(2.0) + b.scale(-3.0))
            .collect();
        let fz = fft(&z);
        let fx = fft(&x);
        let fy = fft(&y);
        for i in 0..n {
            let want = fx[i].scale(2.0) + fy[i].scale(-3.0);
            assert!((fz[i] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn rfft_roundtrip_even_and_odd() {
        for n in [8usize, 9, 30, 720] {
            let x: Vec<f64> = (0..n).map(|i| ((i * i + 3) % 17) as f64 - 8.0).collect();
            let spec = rfft(&x);
            assert_eq!(spec.len(), n / 2 + 1);
            let back = irfft(&spec, n);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn rfft_dc_and_nyquist_real() {
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let spec = rfft(&x);
        assert!((spec[0].re - 21.0).abs() < 1e-12); // DC = sum
        assert!(spec[0].im.abs() < 1e-12);
        assert!(spec[3].im.abs() < 1e-9); // Nyquist is real for even n
    }

    #[test]
    fn scratch_paths_bitwise_match_allocating_paths() {
        let mut scratch = FftScratch::new();
        let mut spec = Vec::new();
        for n in [2usize, 7, 9, 12, 30, 34, 64, 720] {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * i * 31 + 5) % 23) as f64 - 11.0)
                .collect();
            let want_spec = rfft(&x);
            scratch.rfft_into(&x, &mut spec);
            assert_eq!(spec.len(), want_spec.len(), "n={n}");
            for (a, b) in spec.iter().zip(&want_spec) {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "n={n}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "n={n}");
            }
            let want_back = irfft(&want_spec, n);
            let mut back = vec![0.0; n];
            scratch.irfft_into(&spec, &mut back);
            for (a, b) in back.iter().zip(&want_back) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(fft(&[]).is_empty());
        let one = [Complex::new(3.0, 1.0)];
        assert_eq!(fft(&one), one.to_vec());
        assert_eq!(ifft(&one), one.to_vec());
    }
}
