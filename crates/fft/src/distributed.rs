//! Distributed Fourier filtering for decompositions that split longitude.
//!
//! Under the X-Y decomposition each latitude circle is spread over `p_x`
//! ranks, so the per-circle FFT of the polar filter requires collective
//! communication along x — the cost the paper's Theorem 4.1 bounds below by
//! `Ω(2 n_x log n_x / (p_x log(n_x/p_x)))` and the Y-Z decomposition
//! eliminates by setting `p_x = 1`.
//!
//! This module implements the standard **transpose** method: the ranks of
//! an x-axis communicator exchange blocks (`alltoallv`) so that each rank
//! temporarily owns a subset of *complete* circles, filters them locally
//! with the serial kernel, and transposes back.  Two all-to-alls move
//! (roughly) every value twice — matching the volume the X-Y baseline is
//! charged in the cost model.

use crate::filter::FourierFilter;
use agcm_comm::{CommResult, Communicator};

/// Balanced block partition (same convention used across the workspace).
fn block(n: usize, p: usize, r: usize) -> std::ops::Range<usize> {
    let base = n / p;
    let rem = n % p;
    let start = r * base + r.min(rem);
    start..start + base + usize::from(r < rem)
}

/// Filter a batch of latitude-circle rows that are split along x across the
/// ranks of `comm`.
///
/// * `comm` — the x-axis communicator; rank `q` owns the x-block
///   `block(nx, p_x, q)` of every row,
/// * `nx` — global circle length,
/// * `rows` — this rank's data, row-major `[n_rows][nx_local]`,
/// * `row_j` — global latitude index of each row (length `n_rows`, the same
///   on every rank of the communicator),
/// * `filter` — the damping profiles.
///
/// All ranks of `comm` must call this collectively with consistent
/// arguments.
pub fn filter_rows_distributed(
    comm: &Communicator,
    nx: usize,
    rows: &mut [f64],
    row_j: &[usize],
    filter: &FourierFilter,
) -> CommResult<()> {
    let px = comm.size();
    let q = comm.rank();
    let my_x = block(nx, px, q);
    let nx_local = my_x.len();
    let n_rows = row_j.len();
    assert_eq!(
        rows.len(),
        n_rows * nx_local,
        "rows buffer must be n_rows x nx_local"
    );
    if px == 1 {
        // full circles already local — the Y-Z fast path
        for (r, &j) in row_j.iter().enumerate() {
            filter.apply_row(j, &mut rows[r * nx..(r + 1) * nx]);
        }
        return Ok(());
    }

    // ---- forward transpose: ship my x-block of rank s's assigned rows ----
    let send: Vec<Vec<f64>> = (0..px)
        .map(|s| {
            let rs = block(n_rows, px, s);
            let mut buf = Vec::with_capacity(rs.len() * nx_local);
            for r in rs {
                buf.extend_from_slice(&rows[r * nx_local..(r + 1) * nx_local]);
            }
            buf
        })
        .collect();
    let recv = comm.alltoallv(&send)?;

    // ---- assemble my assigned rows as full circles and filter them ----
    let my_rows = block(n_rows, px, q);
    let n_mine = my_rows.len();
    let mut full = vec![0.0; n_mine * nx];
    for (s, part) in recv.iter().enumerate() {
        let xs = block(nx, px, s);
        let w = xs.len();
        debug_assert_eq!(part.len(), n_mine * w);
        for m in 0..n_mine {
            full[m * nx + xs.start..m * nx + xs.end].copy_from_slice(&part[m * w..(m + 1) * w]);
        }
    }
    for (m, r) in my_rows.clone().enumerate() {
        filter.apply_row(row_j[r], &mut full[m * nx..(m + 1) * nx]);
    }

    // ---- reverse transpose: return each rank's x-block of my rows ----
    let send_back: Vec<Vec<f64>> = (0..px)
        .map(|s| {
            let xs = block(nx, px, s);
            let mut buf = Vec::with_capacity(n_mine * xs.len());
            for m in 0..n_mine {
                buf.extend_from_slice(&full[m * nx + xs.start..m * nx + xs.end]);
            }
            buf
        })
        .collect();
    let recv_back = comm.alltoallv(&send_back)?;
    for (s, part) in recv_back.iter().enumerate() {
        let rs = block(n_rows, px, s);
        debug_assert_eq!(part.len(), rs.len() * nx_local);
        for (m, r) in rs.enumerate() {
            rows[r * nx_local..(r + 1) * nx_local]
                .copy_from_slice(&part[m * nx_local..(m + 1) * nx_local]);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use agcm_comm::Universe;

    fn latitudes(ny: usize) -> Vec<f64> {
        (0..ny)
            .map(|j| {
                std::f64::consts::FRAC_PI_2 - (j as f64 + 0.5) * std::f64::consts::PI / ny as f64
            })
            .collect()
    }

    /// deterministic pseudo-random field value
    fn val(r: usize, i: usize) -> f64 {
        ((r * 31 + i * 17 + 5) % 23) as f64 - 11.0
    }

    fn check_against_serial(px: usize, nx: usize, n_rows: usize) {
        let ny = 12;
        let lats = latitudes(ny);
        // rows map to polar latitudes so the filter actually does something
        let row_j: Vec<usize> = (0..n_rows).map(|r| r % 2 * (ny - 1)).collect();

        // serial reference
        let filter = FourierFilter::with_default_cutoff(nx, &lats);
        let mut reference: Vec<Vec<f64>> = (0..n_rows)
            .map(|r| (0..nx).map(|i| val(r, i)).collect())
            .collect();
        for (r, row) in reference.iter_mut().enumerate() {
            filter.apply_row(row_j[r], row);
        }

        let results = Universe::run(px, |comm| {
            let filter = FourierFilter::with_default_cutoff(nx, &latitudes(ny));
            let row_j: Vec<usize> = (0..n_rows).map(|r| r % 2 * (ny - 1)).collect();
            let xs = block(nx, px, comm.rank());
            let mut rows: Vec<f64> = (0..n_rows)
                .flat_map(|r| xs.clone().map(move |i| val(r, i)))
                .collect();
            filter_rows_distributed(comm, nx, &mut rows, &row_j, &filter).unwrap();
            (xs, rows)
        });

        for (xs, rows) in results {
            let w = xs.len();
            for r in 0..n_rows {
                for (c, i) in xs.clone().enumerate() {
                    let got = rows[r * w + c];
                    let want = reference[r][i];
                    assert!(
                        (got - want).abs() < 1e-9,
                        "px={px} row={r} i={i}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_serial_px1() {
        check_against_serial(1, 24, 5);
    }

    #[test]
    fn matches_serial_px2() {
        check_against_serial(2, 24, 5);
    }

    #[test]
    fn matches_serial_px3_uneven() {
        // 24 % 3 == 0 but 5 rows % 3 != 0: uneven row assignment
        check_against_serial(3, 24, 5);
    }

    #[test]
    fn matches_serial_px4_uneven_x() {
        // nx = 30 over 4 ranks: uneven x blocks (8,8,7,7)
        check_against_serial(4, 30, 6);
    }

    #[test]
    fn more_ranks_than_rows() {
        // 4 ranks, 2 rows: some ranks filter nothing but still transpose
        check_against_serial(4, 16, 2);
    }

    #[test]
    fn transpose_traffic_counted() {
        let nx = 24;
        let n_rows = 4;
        let ny = 8;
        let results = Universe::run(2, |comm| {
            let filter = FourierFilter::with_default_cutoff(nx, &latitudes(ny));
            let row_j = vec![0usize; n_rows];
            let xs = block(nx, 2, comm.rank());
            let mut rows = vec![1.0; n_rows * xs.len()];
            filter_rows_distributed(comm, nx, &mut rows, &row_j, &filter).unwrap();
            comm.stats().snapshot()
        });
        for s in results {
            assert_eq!(s.collective_calls, 2, "two alltoallv transposes");
            // each transpose contributes ~ n_rows * nx_local values
            assert!(s.collective_elems as usize >= n_rows * (nx / 2));
        }
    }
}
