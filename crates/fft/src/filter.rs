//! Fourier polar filtering — the operator `F` of the calculating flow.
//!
//! Near the poles the longitude grid lines of a latitude–longitude mesh
//! cluster, which makes the CFL limit on the time step collapse.  The
//! classical cure (the paper's reference \[21\], Umscheid & Sankar-Rao 1971)
//! is to damp the high zonal wavenumbers of every latitude circle poleward
//! of a critical latitude `φ_c`: transform the circle with a 1-D FFT,
//! multiply wavenumber `m` by
//!
//! ```text
//! d(m, φ) = min{ 1, (cos φ / cos φ_c) · sin(Δλ/2) / sin(m·Δλ/2) }
//! ```
//!
//! and transform back.  Equatorward of `φ_c` the damping is identically 1.
//!
//! The filter is applied per `(j, k)` row, and the FFT needs the *full*
//! latitude circle: under an X-Y decomposition this forces the collective
//! communication along x that the paper's Theorem 4.1 bounds from below —
//! and that the Y-Z decomposition (`p_x = 1`) eliminates entirely (§4.2.1).

use crate::complex::Complex;
use crate::fft::{irfft, rfft, FftScratch};

/// Reusable buffers for allocation-free row filtering.
///
/// One `FilterScratch` per worker thread; steady-state
/// [`FourierFilter::apply_row_with`] calls at a fixed `nx` allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct FilterScratch {
    fft: FftScratch,
    spec: Vec<Complex>,
}

impl FilterScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Precomputed per-latitude damping profiles for `F`.
#[derive(Debug, Clone)]
pub struct FourierFilter {
    nx: usize,
    /// `damping[j][m]` for `m ∈ 0..=nx/2`; rows equatorward of the critical
    /// latitude hold `None` (identity).
    damping: Vec<Option<Vec<f64>>>,
}

impl FourierFilter {
    /// Build the filter for `nx` longitudes and the given geographic
    /// latitudes (radians, one per mesh row).  `critical_latitude` is in
    /// radians; rows with `|φ| < φ_c` are untouched.
    pub fn new(nx: usize, latitudes: &[f64], critical_latitude: f64) -> Self {
        assert!(nx >= 2, "need at least two longitudes");
        assert!(
            critical_latitude > 0.0 && critical_latitude < std::f64::consts::FRAC_PI_2,
            "critical latitude must be in (0, π/2)"
        );
        let dl2 = std::f64::consts::PI / nx as f64; // Δλ/2
        let cos_c = critical_latitude.cos();
        let damping = latitudes
            .iter()
            .map(|&phi| {
                if phi.abs() < critical_latitude {
                    None
                } else {
                    let ratio = phi.cos().max(0.0) / cos_c;
                    let prof: Vec<f64> = (0..=nx / 2)
                        .map(|m| {
                            if m == 0 {
                                1.0
                            } else {
                                (ratio * dl2.sin() / (m as f64 * dl2).sin()).min(1.0)
                            }
                        })
                        .collect();
                    Some(prof)
                }
            })
            .collect();
        FourierFilter { nx, damping }
    }

    /// The paper's default: filtering poleward of 70°.
    pub fn with_default_cutoff(nx: usize, latitudes: &[f64]) -> Self {
        Self::new(nx, latitudes, 70.0_f64.to_radians())
    }

    /// Number of longitudes.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of latitude rows.
    pub fn ny(&self) -> usize {
        self.damping.len()
    }

    /// Whether row `j` is actually damped (poleward of `φ_c`).
    pub fn is_active(&self, j: usize) -> bool {
        self.damping[j].is_some()
    }

    /// Number of damped rows.
    pub fn active_rows(&self) -> usize {
        self.damping.iter().filter(|d| d.is_some()).count()
    }

    /// Damping profile of row `j` (`None` = identity).
    pub fn profile(&self, j: usize) -> Option<&[f64]> {
        self.damping[j].as_deref()
    }

    /// Filter one latitude circle in place.  `row.len()` must equal `nx`.
    ///
    /// Allocates per call; hot paths should hold a [`FilterScratch`] and use
    /// [`FourierFilter::apply_row_with`] instead (bitwise-identical result).
    pub fn apply_row(&self, j: usize, row: &mut [f64]) {
        assert_eq!(row.len(), self.nx, "row must span the full circle");
        let Some(prof) = &self.damping[j] else {
            return;
        };
        let mut spec: Vec<Complex> = rfft(row);
        for (c, &d) in spec.iter_mut().zip(prof) {
            *c = c.scale(d);
        }
        let out = irfft(&spec, self.nx);
        row.copy_from_slice(&out);
    }

    /// Filter one latitude circle in place using reusable buffers.
    ///
    /// Bitwise-identical to [`FourierFilter::apply_row`]; performs no heap
    /// allocation once `scratch` has warmed up at this `nx`.
    pub fn apply_row_with(&self, j: usize, row: &mut [f64], scratch: &mut FilterScratch) {
        assert_eq!(row.len(), self.nx, "row must span the full circle");
        let Some(prof) = &self.damping[j] else {
            return;
        };
        scratch.fft.rfft_into(row, &mut scratch.spec);
        for (c, &d) in scratch.spec.iter_mut().zip(prof) {
            *c = c.scale(d);
        }
        scratch.fft.irfft_into(&scratch.spec, row);
    }

    /// Apply the damping profile of row `j` directly to a half spectrum
    /// (used by the distributed filter, which owns the transform steps).
    pub fn apply_spectrum(&self, j: usize, spec: &mut [Complex]) {
        if let Some(prof) = &self.damping[j] {
            assert_eq!(spec.len(), prof.len());
            for (c, &d) in spec.iter_mut().zip(prof) {
                *c = c.scale(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mesh-row latitudes like the grid crate produces: (j+1/2)Δθ colatitude.
    fn latitudes(ny: usize) -> Vec<f64> {
        (0..ny)
            .map(|j| {
                std::f64::consts::FRAC_PI_2 - (j as f64 + 0.5) * std::f64::consts::PI / ny as f64
            })
            .collect()
    }

    #[test]
    fn equator_rows_untouched() {
        let lats = latitudes(18);
        let f = FourierFilter::with_default_cutoff(24, &lats);
        let mut row: Vec<f64> = (0..24).map(|i| (i as f64 * 0.7).sin() + 2.0).collect();
        let orig = row.clone();
        let j_eq = 9;
        assert!(!f.is_active(j_eq));
        f.apply_row(j_eq, &mut row);
        assert_eq!(row, orig);
    }

    #[test]
    fn polar_rows_active_and_symmetric() {
        let lats = latitudes(18);
        let f = FourierFilter::with_default_cutoff(24, &lats);
        assert!(f.is_active(0), "northernmost row must be filtered");
        assert!(f.is_active(17), "southernmost row must be filtered");
        assert_eq!(f.active_rows() % 2, 0, "hemispheric symmetry");
        // symmetric profiles north/south
        let n = f.profile(0).unwrap();
        let s = f.profile(17).unwrap();
        for (a, b) in n.iter().zip(s) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn damping_monotone_in_wavenumber() {
        let lats = latitudes(36);
        let f = FourierFilter::with_default_cutoff(48, &lats);
        let prof = f.profile(0).unwrap();
        assert_eq!(prof[0], 1.0, "zonal mean never damped");
        for w in prof[1..].windows(2) {
            assert!(w[1] <= w[0] + 1e-15, "profile must not increase with m");
        }
        assert!(prof[prof.len() - 1] < 0.5, "shortest waves strongly damped");
    }

    #[test]
    fn closer_to_pole_damps_more() {
        let lats = latitudes(36);
        let f = FourierFilter::with_default_cutoff(48, &lats);
        let near_pole = f.profile(0).unwrap();
        let less_polar = f.profile(3).unwrap();
        let m = 10;
        assert!(near_pole[m] < less_polar[m]);
    }

    #[test]
    fn preserves_zonal_mean() {
        let lats = latitudes(18);
        let f = FourierFilter::with_default_cutoff(24, &lats);
        let mut row: Vec<f64> = (0..24).map(|i| ((i * 7 + 3) % 11) as f64).collect();
        let mean_before: f64 = row.iter().sum::<f64>() / 24.0;
        f.apply_row(0, &mut row);
        let mean_after: f64 = row.iter().sum::<f64>() / 24.0;
        assert!((mean_before - mean_after).abs() < 1e-10);
    }

    #[test]
    fn removes_high_frequency_noise() {
        let lats = latitudes(18);
        let f = FourierFilter::with_default_cutoff(32, &lats);
        // smooth signal + Nyquist noise
        let smooth: Vec<f64> = (0..32)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / 32.0).cos())
            .collect();
        let mut noisy: Vec<f64> = smooth
            .iter()
            .enumerate()
            .map(|(i, &v)| v + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        f.apply_row(0, &mut noisy);
        // Nyquist amplitude after: |x[0]-x[1]| shrinks strongly
        let rough_after: f64 = noisy.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>();
        let rough_before: f64 = 32.0; // 0.5 jumps of 1.0 each, 32 windows
        assert!(rough_after < 0.7 * rough_before);
    }

    #[test]
    fn filter_is_linear() {
        let lats = latitudes(18);
        let f = FourierFilter::with_default_cutoff(24, &lats);
        let a: Vec<f64> = (0..24).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..24).map(|i| (i as f64 * 1.3).cos()).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 2.0 * x - y).collect();
        f.apply_row(0, &mut fa);
        f.apply_row(0, &mut fb);
        f.apply_row(0, &mut fab);
        for i in 0..24 {
            assert!((fab[i] - (2.0 * fa[i] - fb[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn idempotent_only_where_saturated() {
        // applying twice damps at least as much as once
        let lats = latitudes(18);
        let f = FourierFilter::with_default_cutoff(24, &lats);
        let mut once: Vec<f64> = (0..24).map(|i| ((i * 5) % 7) as f64).collect();
        let mut twice = once.clone();
        f.apply_row(0, &mut once);
        f.apply_row(0, &mut twice);
        f.apply_row(0, &mut twice);
        let energy = |r: &[f64]| {
            let m = r.iter().sum::<f64>() / r.len() as f64;
            r.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
        };
        assert!(energy(&twice) <= energy(&once) + 1e-12);
    }

    #[test]
    fn apply_row_with_is_bitwise_identical() {
        let lats = latitudes(18);
        let f = FourierFilter::with_default_cutoff(24, &lats);
        let mut scratch = FilterScratch::new();
        for j in [0usize, 1, 9, 17] {
            let mut a: Vec<f64> = (0..24)
                .map(|i| ((i * 13 + j * 7) % 19) as f64 - 9.0)
                .collect();
            let mut b = a.clone();
            f.apply_row(j, &mut a);
            f.apply_row_with(j, &mut b, &mut scratch);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {j}");
            }
        }
    }

    #[test]
    #[should_panic]
    fn wrong_row_length_panics() {
        let lats = latitudes(8);
        let f = FourierFilter::with_default_cutoff(16, &lats);
        let mut row = vec![0.0; 8];
        f.apply_row(0, &mut row);
    }

    #[test]
    fn custom_cutoff_covers_more_rows() {
        let lats = latitudes(36);
        let strict = FourierFilter::new(16, &lats, 80.0_f64.to_radians());
        let loose = FourierFilter::new(16, &lats, 40.0_f64.to_radians());
        assert!(loose.active_rows() > strict.active_rows());
    }
}
