//! # agcm-fft — FFT and Fourier polar filtering
//!
//! A from-scratch mixed-radix FFT, the polar Fourier filter `F` of the
//! dynamical core's calculating flow (Eq. 8 of Xiao et al., ICPP 2018), and
//! the transpose-based distributed filter the X-Y-decomposition baseline
//! needs when latitude circles are split across ranks.
//!
//! The FFT is implemented in this workspace rather than imported because the
//! *communication* of the distributed transform is part of the paper's
//! subject (Theorem 4.1 lower-bounds it; §4.2.1 eliminates it).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod complex;
pub mod distributed;
pub mod fft;
pub mod filter;

pub use complex::Complex;
pub use distributed::filter_rows_distributed;
pub use fft::{dft_naive, fft, ifft, irfft, rfft, FftScratch};
pub use filter::{FilterScratch, FourierFilter};
