//! Property-based tests of the FFT and polar filter, driven by a
//! deterministic case generator.

use agcm_fft::{dft_naive, fft, ifft, irfft, rfft, Complex, FourierFilter};

/// splitmix64 — deterministic case generator for the property loops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    /// uniform in `[lo, hi)`
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
    }
    fn signal(&mut self, max_n: usize) -> Vec<Complex> {
        let n = self.usize_in(1, max_n);
        (0..n)
            .map(|_| Complex::new(self.f64_in(-100.0, 100.0), self.f64_in(-100.0, 100.0)))
            .collect()
    }
    fn real_signal(&mut self, lo_n: usize, max_n: usize) -> Vec<f64> {
        let n = self.usize_in(lo_n, max_n);
        (0..n).map(|_| self.f64_in(-50.0, 50.0)).collect()
    }
}

const CASES: u64 = 64;

fn close(a: Complex, b: Complex, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[test]
fn fft_matches_dft() {
    // FFT equals the O(n²) DFT on arbitrary (including prime) lengths.
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let x = rng.signal(48);
        let fast = fft(&x);
        let slow = dft_naive(&x, -1.0);
        let tol = 1e-8 * (1.0 + x.len() as f64) * 100.0;
        for (a, b) in fast.iter().zip(&slow) {
            assert!(close(*a, *b, tol), "{a:?} vs {b:?}");
        }
    }
}

#[test]
fn roundtrip() {
    // ifft inverts fft.
    for case in 0..CASES {
        let mut rng = Rng::new(100 + case);
        let x = rng.signal(64);
        let back = ifft(&fft(&x));
        let tol = 1e-9 * (1.0 + x.len() as f64) * 100.0;
        for (a, b) in back.iter().zip(&x) {
            assert!(close(*a, *b, tol));
        }
    }
}

#[test]
fn parseval() {
    // Parseval: energy is preserved up to the 1/n convention.
    for case in 0..CASES {
        let mut rng = Rng::new(200 + case);
        let x = rng.signal(64);
        let n = x.len() as f64;
        let s = fft(&x);
        let te: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let fe: f64 = s.iter().map(|c| c.norm_sqr()).sum::<f64>() / n;
        assert!((te - fe).abs() <= 1e-8 * te.max(1.0));
    }
}

#[test]
fn linearity() {
    // FFT is linear.
    for case in 0..CASES {
        let mut rng = Rng::new(300 + case);
        let x = rng.signal(32);
        let a = rng.f64_in(-5.0, 5.0);
        let b = rng.f64_in(-5.0, 5.0);
        let n = x.len();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let z: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(&p, &q)| p.scale(a) + q.scale(b))
            .collect();
        let fz = fft(&z);
        let fx = fft(&x);
        let fy = fft(&y);
        for i in 0..n {
            let want = fx[i].scale(a) + fy[i].scale(b);
            assert!(close(fz[i], want, 1e-7 * (1.0 + n as f64) * 100.0));
        }
    }
}

#[test]
fn rfft_roundtrip() {
    // real FFT round-trips arbitrary real signals of any parity.
    for case in 0..CASES {
        let mut rng = Rng::new(400 + case);
        let v = rng.real_signal(2, 64);
        let spec = rfft(&v);
        assert_eq!(spec.len(), v.len() / 2 + 1);
        let back = irfft(&spec, v.len());
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() <= 1e-8 * (1.0 + v.len() as f64));
        }
    }
}

#[test]
fn rfft_dc() {
    // the rfft spectrum of a real signal has a real DC coefficient equal
    // to the sum.
    for case in 0..CASES {
        let mut rng = Rng::new(500 + case);
        let v = rng.real_signal(2, 48);
        let spec = rfft(&v);
        let sum: f64 = v.iter().sum();
        assert!((spec[0].re - sum).abs() <= 1e-9 * (1.0 + sum.abs()));
        assert!(spec[0].im.abs() <= 1e-9 * (1.0 + sum.abs()));
    }
}

#[test]
fn filter_row_properties() {
    // the polar filter is linear and preserves the zonal mean on every
    // row, and is a contraction in deviation energy.
    for case in 0..CASES {
        let mut rng = Rng::new(600 + case);
        let row: Vec<f64> = (0..16).map(|_| rng.f64_in(-30.0, 30.0)).collect();
        let j = rng.usize_in(0, 18);
        let ny = 18;
        let lats: Vec<f64> = (0..ny)
            .map(|j| {
                std::f64::consts::FRAC_PI_2 - (j as f64 + 0.5) * std::f64::consts::PI / ny as f64
            })
            .collect();
        let f = FourierFilter::with_default_cutoff(16, &lats);
        let mut out = row.clone();
        f.apply_row(j, &mut out);
        // mean preserved
        let m0: f64 = row.iter().sum::<f64>() / 16.0;
        let m1: f64 = out.iter().sum::<f64>() / 16.0;
        assert!((m0 - m1).abs() <= 1e-9 * (1.0 + m0.abs()));
        // deviation energy never grows
        let e = |r: &[f64], m: f64| r.iter().map(|v| (v - m) * (v - m)).sum::<f64>();
        assert!(e(&out, m1) <= e(&row, m0) + 1e-9);
        // linearity: filter(2x) = 2 filter(x)
        let mut twice: Vec<f64> = row.iter().map(|v| 2.0 * v).collect();
        f.apply_row(j, &mut twice);
        for (a, b) in twice.iter().zip(&out) {
            assert!((a - 2.0 * b).abs() <= 1e-8);
        }
    }
}
