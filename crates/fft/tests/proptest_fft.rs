//! Property-based tests of the FFT and polar filter.

use agcm_fft::{dft_naive, fft, ifft, irfft, rfft, Complex, FourierFilter};
use proptest::prelude::*;

fn signal_strategy(max_n: usize) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 1..max_n)
        .prop_map(|v| v.into_iter().map(|(re, im)| Complex::new(re, im)).collect())
}

fn close(a: Complex, b: Complex, tol: f64) -> bool {
    (a - b).abs() <= tol
}

proptest! {
    /// FFT equals the O(n²) DFT on arbitrary (including prime) lengths.
    #[test]
    fn fft_matches_dft(x in signal_strategy(48)) {
        let fast = fft(&x);
        let slow = dft_naive(&x, -1.0);
        let tol = 1e-8 * (1.0 + x.len() as f64) * 100.0;
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!(close(*a, *b, tol), "{:?} vs {:?}", a, b);
        }
    }

    /// ifft inverts fft.
    #[test]
    fn roundtrip(x in signal_strategy(64)) {
        let back = ifft(&fft(&x));
        let tol = 1e-9 * (1.0 + x.len() as f64) * 100.0;
        for (a, b) in back.iter().zip(&x) {
            prop_assert!(close(*a, *b, tol));
        }
    }

    /// Parseval: energy is preserved up to the 1/n convention.
    #[test]
    fn parseval(x in signal_strategy(64)) {
        let n = x.len() as f64;
        let s = fft(&x);
        let te: f64 = x.iter().map(|c| c.norm_sqr()).sum();
        let fe: f64 = s.iter().map(|c| c.norm_sqr()).sum::<f64>() / n;
        prop_assert!((te - fe).abs() <= 1e-8 * te.max(1.0));
    }

    /// FFT is linear.
    #[test]
    fn linearity(
        x in signal_strategy(32),
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
    ) {
        let n = x.len();
        let y: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let z: Vec<Complex> = x
            .iter()
            .zip(&y)
            .map(|(&p, &q)| p.scale(a) + q.scale(b))
            .collect();
        let fz = fft(&z);
        let fx = fft(&x);
        let fy = fft(&y);
        for i in 0..n {
            let want = fx[i].scale(a) + fy[i].scale(b);
            prop_assert!(close(fz[i], want, 1e-7 * (1.0 + n as f64) * 100.0));
        }
    }

    /// real FFT round-trips arbitrary real signals of any parity.
    #[test]
    fn rfft_roundtrip(v in proptest::collection::vec(-50.0f64..50.0, 2..64)) {
        let spec = rfft(&v);
        prop_assert_eq!(spec.len(), v.len() / 2 + 1);
        let back = irfft(&spec, v.len());
        for (a, b) in v.iter().zip(&back) {
            prop_assert!((a - b).abs() <= 1e-8 * (1.0 + v.len() as f64));
        }
    }

    /// the rfft spectrum of a real signal has a real DC coefficient equal
    /// to the sum.
    #[test]
    fn rfft_dc(v in proptest::collection::vec(-50.0f64..50.0, 2..48)) {
        let spec = rfft(&v);
        let sum: f64 = v.iter().sum();
        prop_assert!((spec[0].re - sum).abs() <= 1e-9 * (1.0 + sum.abs()));
        prop_assert!(spec[0].im.abs() <= 1e-9 * (1.0 + sum.abs()));
    }

    /// the polar filter is linear and preserves the zonal mean on every
    /// row, and is a contraction in deviation energy.
    #[test]
    fn filter_row_properties(
        row in proptest::collection::vec(-30.0f64..30.0, 16..17),
        j in 0usize..18,
    ) {
        let ny = 18;
        let lats: Vec<f64> = (0..ny)
            .map(|j| std::f64::consts::FRAC_PI_2
                - (j as f64 + 0.5) * std::f64::consts::PI / ny as f64)
            .collect();
        let f = FourierFilter::with_default_cutoff(16, &lats);
        let mut out = row.clone();
        f.apply_row(j, &mut out);
        // mean preserved
        let m0: f64 = row.iter().sum::<f64>() / 16.0;
        let m1: f64 = out.iter().sum::<f64>() / 16.0;
        prop_assert!((m0 - m1).abs() <= 1e-9 * (1.0 + m0.abs()));
        // deviation energy never grows
        let e = |r: &[f64], m: f64| r.iter().map(|v| (v - m) * (v - m)).sum::<f64>();
        prop_assert!(e(&out, m1) <= e(&row, m0) + 1e-9);
        // linearity: filter(2x) = 2 filter(x)
        let mut twice: Vec<f64> = row.iter().map(|v| 2.0 * v).collect();
        f.apply_row(j, &mut twice);
        for (a, b) in twice.iter().zip(&out) {
            prop_assert!((a - 2.0 * b).abs() <= 1e-8);
        }
    }
}
