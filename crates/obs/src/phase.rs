//! Operator phases of the dynamical core.
//!
//! The paper's accounting is per operator: the adaptation stencil `Â`, the
//! z-collective summation `Ĉ`, the Fourier filter `F̃`, the advection
//! stencil `L̃` and the two halves of the split smoothing `S = S₁ + S₂`
//! (§4.3.2: the *former* smoothing overlaps the deep exchange, the *later*
//! smoothing completes edge and halo rows after the messages arrive).
//! Every trace span and every [`agcm_comm`-recorded] collective event is
//! tagged with the phase active when it happened, so per-figure deltas no
//! longer rely on snapshot bracketing alone.
//!
//! The current phase is a per-thread cell maintained by span guards
//! ([`crate::span_phase`]); reading it ([`current_phase`]) is how the
//! communication layer tags its events without knowing any model code.

#[cfg(feature = "trace")]
use std::cell::Cell;

/// The operator a span or communication event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Adaptation stencil `Â`.
    A,
    /// Summation collective `Ĉ` (z-direction global computation).
    C,
    /// Fourier filter `F̃`.
    F,
    /// Advection stencil `L̃`.
    L,
    /// Former smoothing `S₁` (full smoothing in Algorithm 1; the
    /// exchange-overlapped interior part in Algorithm 2).
    S1,
    /// Later smoothing `S₂` (Algorithm 2 only: edge + halo completion).
    S2,
    /// Outside any operator (setup, gather, harness).
    #[default]
    Other,
}

impl Phase {
    /// Short stable label (used in exporter output and metric names).
    pub fn label(self) -> &'static str {
        match self {
            Phase::A => "A",
            Phase::C => "C",
            Phase::F => "F",
            Phase::L => "L",
            Phase::S1 => "S1",
            Phase::S2 => "S2",
            Phase::Other => "other",
        }
    }

    /// All operator phases (excludes [`Phase::Other`]).
    pub const OPERATORS: [Phase; 6] =
        [Phase::A, Phase::C, Phase::F, Phase::L, Phase::S1, Phase::S2];
}

#[cfg(feature = "trace")]
thread_local! {
    static CURRENT: Cell<Phase> = const { Cell::new(Phase::Other) };
}

/// The operator phase currently active on this thread ([`Phase::Other`]
/// outside any phase span).
#[inline]
pub fn current_phase() -> Phase {
    #[cfg(feature = "trace")]
    {
        CURRENT.with(|c| c.get())
    }
    #[cfg(not(feature = "trace"))]
    {
        Phase::Other
    }
}

/// Set the current phase, returning the previous one (span guards restore
/// it on drop).
#[cfg(feature = "trace")]
#[inline]
pub(crate) fn swap_phase(p: Phase) -> Phase {
    CURRENT.with(|c| c.replace(p))
}
