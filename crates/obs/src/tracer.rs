//! The span tracer.
//!
//! A global, process-wide recorder of **spans** (intervals with wall-clock
//! *and* logical timestamps) and **instant samples**.  Rank threads are
//! identified by a per-thread rank id set by the communication runtime
//! ([`set_rank`]); model code stamps the current time step ([`set_step`]).
//!
//! Cost discipline:
//!
//! * tracing **disabled** (the default): every instrumentation site is one
//!   relaxed atomic load and a branch — no clock read, no allocation, no
//!   lock (`< 2 ns`, proven by `agcm-bench`'s `obs_overhead` bench),
//! * tracing **enabled**: each span costs two monotonic clock reads and a
//!   push into one of [`SHARDS`] sharded buffers (a short uncontended lock
//!   — ranks hash to different shards),
//! * feature `trace` **off**: everything here compiles to nothing.
//!
//! Buffers grow until [`drain`]; runs that trace should drain per run.

use crate::phase::Phase;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// What a trace event describes (the exporter's `cat` field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One whole time step of an integrator.
    Step,
    /// One nonlinear iteration inside a step.
    Iter,
    /// One operator application (`A`, `C`, `F`, `L`, `S1`, `S2`).
    Op,
    /// Posting the sends of a halo exchange.
    ExchangePost,
    /// Waiting for + unpacking the receives of a halo exchange.  One such
    /// span per completed exchange — the static-schedule cross-check
    /// counts these.
    ExchangeWait,
    /// Computation deliberately placed between post and wait (§4.3.1);
    /// the overlap-efficiency profile sums these against the wait spans.
    OverlapCompute,
    /// A collective operation (allreduce, allgather, …).
    Collective,
    /// An instant gauge sample (`value` holds the sample).
    Gauge,
    /// Fault recovery: a rollback + degraded re-run window.
    Recovery,
    /// One intra-rank worker executing a `(j, k)` band of a kernel sweep
    /// (the `AGCM_THREADS` pool).  Never counted by the schedule
    /// cross-check — worker fan-out is an implementation detail below the
    /// operator level.
    Worker,
    /// Transport-layer activity below the exchange level: the socket
    /// handshake (listen / dial / hello), and per-connection reader-thread
    /// frame receipt.  Like [`SpanKind::Worker`], never counted by the
    /// schedule cross-check.
    Transport,
}

impl SpanKind {
    /// Stable label for exporters.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Step => "step",
            SpanKind::Iter => "iter",
            SpanKind::Op => "op",
            SpanKind::ExchangePost => "exchange_post",
            SpanKind::ExchangeWait => "exchange_wait",
            SpanKind::OverlapCompute => "overlap_compute",
            SpanKind::Collective => "collective",
            SpanKind::Gauge => "gauge",
            SpanKind::Recovery => "recovery",
            SpanKind::Worker => "worker",
            SpanKind::Transport => "transport",
        }
    }
}

/// One recorded event.  For spans `t1_ns >= t0_ns`; for instants they are
/// equal and `value` carries the sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Rank of the recording thread ([`set_rank`]; 0 when never set).
    pub rank: usize,
    /// Time step active when the event was recorded ([`set_step`]).
    pub step: u64,
    /// Event kind.
    pub kind: SpanKind,
    /// Operator phase the event belongs to.
    pub phase: Phase,
    /// Site name (static, e.g. `"apply_c"`, `"halo.wait"`).
    pub name: &'static str,
    /// Wall-clock start, nanoseconds since the process trace epoch.
    pub t0_ns: u64,
    /// Wall-clock end.
    pub t1_ns: u64,
    /// Logical timestamp: globally ordered event sequence number,
    /// allocated at span *end* (record time).
    pub seq: u64,
    /// Payload bytes moved (exchanges, collectives), else 0.
    pub bytes: u64,
    /// Gauge sample value (0.0 for spans).
    pub value: f64,
}

impl Event {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.t1_ns.saturating_sub(self.t0_ns)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Number of event-buffer shards (threads hash across them, so rank
/// threads rarely contend on the same lock).
pub const SHARDS: usize = 16;

fn shards() -> &'static [Mutex<Vec<Event>>; SHARDS] {
    static BUFS: OnceLock<[Mutex<Vec<Event>>; SHARDS]> = OnceLock::new();
    BUFS.get_or_init(|| std::array::from_fn(|_| Mutex::new(Vec::new())))
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first use).
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static RANK: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    static STEP: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static SHARD: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// Whether tracing is currently recording.  The single relaxed load every
/// instrumentation site pays when tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Start recording trace events.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
    let _ = epoch(); // pin the epoch before the first span
}

/// Stop recording (buffers keep their events until [`drain`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Tag this thread as `rank` for all subsequent events.  Called by the
/// communication runtime when it spawns rank threads; harness threads
/// default to rank 0.
#[inline]
pub fn set_rank(rank: usize) {
    #[cfg(feature = "trace")]
    RANK.with(|c| c.set(rank));
    #[cfg(not(feature = "trace"))]
    let _ = rank;
}

/// Stamp the time step subsequent events on this thread belong to.
#[inline]
pub fn set_step(step: u64) {
    #[cfg(feature = "trace")]
    STEP.with(|c| c.set(step));
    #[cfg(not(feature = "trace"))]
    let _ = step;
}

#[cfg(feature = "trace")]
fn my_shard() -> usize {
    SHARD.with(|c| {
        let s = c.get();
        if s != usize::MAX {
            return s;
        }
        // cheap per-thread hash: address of a thread-local
        let addr = c as *const _ as usize;
        let s = (addr >> 6) % SHARDS;
        c.set(s);
        s
    })
}

#[cfg(feature = "trace")]
fn push(ev: Event) {
    let shard = &shards()[my_shard()];
    shard.lock().unwrap_or_else(|p| p.into_inner()).push(ev);
}

/// Record a fully-formed span (used by [`Span`]'s drop; also available to
/// code that measured an interval itself).
#[inline]
pub fn record_span(kind: SpanKind, phase: Phase, name: &'static str, t0_ns: u64, bytes: u64) {
    #[cfg(feature = "trace")]
    {
        if !enabled() {
            return;
        }
        let t1 = now_ns();
        let ev = Event {
            rank: RANK.with(|c| c.get()),
            step: STEP.with(|c| c.get()),
            kind,
            phase,
            name,
            t0_ns,
            t1_ns: t1,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            bytes,
            value: 0.0,
        };
        push(ev);
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (kind, phase, name, t0_ns, bytes);
    }
}

/// Record an instant gauge sample (`value` at now).
#[inline]
pub fn record_value(name: &'static str, value: f64) {
    #[cfg(feature = "trace")]
    {
        if !enabled() {
            return;
        }
        let t = now_ns();
        push(Event {
            rank: RANK.with(|c| c.get()),
            step: STEP.with(|c| c.get()),
            kind: SpanKind::Gauge,
            phase: crate::phase::current_phase(),
            name,
            t0_ns: t,
            t1_ns: t,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            bytes: 0,
            value,
        });
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (name, value);
    }
}

/// An in-flight span; records itself on drop.  Construct with [`span`] or
/// [`span_phase`].
#[must_use = "a span records its interval when dropped"]
pub struct Span {
    #[cfg(feature = "trace")]
    state: Option<SpanState>,
}

#[cfg(feature = "trace")]
struct SpanState {
    kind: SpanKind,
    phase: Phase,
    name: &'static str,
    t0_ns: u64,
    bytes: u64,
    restore_phase: Option<Phase>,
}

impl Span {
    /// Attribute moved payload bytes to this span (no-op when disabled).
    #[inline]
    pub fn add_bytes(&mut self, n: u64) {
        #[cfg(feature = "trace")]
        if let Some(s) = self.state.as_mut() {
            s.bytes += n;
        }
        #[cfg(not(feature = "trace"))]
        let _ = n;
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        #[cfg(feature = "trace")]
        if let Some(s) = self.state.take() {
            if let Some(prev) = s.restore_phase {
                crate::phase::swap_phase(prev);
            }
            record_span(s.kind, s.phase, s.name, s.t0_ns, s.bytes);
        }
    }
}

/// Open a span tagged with the thread's *current* phase.  One relaxed
/// atomic load when tracing is disabled.
#[inline]
pub fn span(kind: SpanKind, name: &'static str) -> Span {
    #[cfg(feature = "trace")]
    {
        if !enabled() {
            return Span { state: None };
        }
        Span {
            state: Some(SpanState {
                kind,
                phase: crate::phase::current_phase(),
                name,
                t0_ns: now_ns(),
                bytes: 0,
                restore_phase: None,
            }),
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (kind, name);
        Span {}
    }
}

/// Open a span for operator `phase` and make it the thread's current phase
/// for the span's lifetime, so nested communication events inherit the tag.
///
/// The phase is switched even when tracing is disabled (a thread-local
/// `Cell` store, ~1 ns) so that [`crate::current_phase`]-based tagging —
/// e.g. `agcm-comm`'s collective-event log — works without the tracer.
#[inline]
pub fn span_phase(kind: SpanKind, phase: Phase, name: &'static str) -> Span {
    #[cfg(feature = "trace")]
    {
        let prev = crate::phase::swap_phase(phase);
        if !enabled() {
            // keep the phase switched; drop restores it
            return Span {
                state: Some(SpanState {
                    kind,
                    phase,
                    name,
                    t0_ns: 0,
                    bytes: 0,
                    restore_phase: Some(prev),
                }),
            };
        }
        Span {
            state: Some(SpanState {
                kind,
                phase,
                name,
                t0_ns: now_ns(),
                bytes: 0,
                restore_phase: Some(prev),
            }),
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (kind, phase, name);
        Span {}
    }
}

/// Remove and return every event recorded so far, ordered by wall-clock
/// start time (ties by logical sequence number).
pub fn drain() -> Vec<Event> {
    let mut out = Vec::new();
    for shard in shards() {
        let mut buf = shard.lock().unwrap_or_else(|p| p.into_inner());
        out.append(&mut buf);
    }
    out.sort_by_key(|e| (e.t0_ns, e.seq));
    out
}

/// How many events are buffered right now, without draining them — a
/// cheap progress figure for live telemetry snapshots.
pub fn pending_events() -> usize {
    shards()
        .iter()
        .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
        .sum()
}

/// Drop all buffered events and reset the logical clock (the wall-clock
/// epoch is process-wide and never resets).
pub fn reset() {
    for shard in shards() {
        shard.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
    SEQ.store(0, Ordering::Relaxed);
}

/// Serialize access to the global tracer for tests: the tracer is
/// process-wide, so concurrent tests inside one test binary must hold this
/// lock around enable/run/drain sequences.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

// The behavioral tests exercise recording, which requires the compiled-in
// tracer; without the feature every call is a no-op by design.
#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let _g = exclusive();
        disable();
        reset();
        {
            let mut s = span(SpanKind::Op, "noop");
            s.add_bytes(10);
        }
        record_value("g", 1.0);
        assert!(drain().is_empty());
    }

    #[test]
    fn span_records_interval_and_bytes() {
        let _g = exclusive();
        reset();
        enable();
        set_rank(3);
        set_step(7);
        {
            let mut s = span_phase(SpanKind::Op, Phase::C, "apply_c");
            s.add_bytes(64);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disable();
        let evs = drain();
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        assert_eq!(e.rank, 3);
        assert_eq!(e.step, 7);
        assert_eq!(e.phase, Phase::C);
        assert_eq!(e.name, "apply_c");
        assert_eq!(e.bytes, 64);
        assert!(e.dur_ns() >= 1_000_000, "dur {}", e.dur_ns());
        set_rank(0);
        set_step(0);
    }

    #[test]
    fn phase_nests_and_restores() {
        let _g = exclusive();
        reset();
        enable();
        assert_eq!(crate::phase::current_phase(), Phase::Other);
        {
            let _a = span_phase(SpanKind::Op, Phase::A, "adapt");
            assert_eq!(crate::phase::current_phase(), Phase::A);
            {
                let _c = span_phase(SpanKind::Op, Phase::C, "apply_c");
                assert_eq!(crate::phase::current_phase(), Phase::C);
            }
            assert_eq!(crate::phase::current_phase(), Phase::A);
            // plain spans inherit the current phase
            let _s = span(SpanKind::Collective, "allgather");
        }
        assert_eq!(crate::phase::current_phase(), Phase::Other);
        disable();
        let evs = drain();
        assert_eq!(evs.len(), 3);
        let coll = evs.iter().find(|e| e.kind == SpanKind::Collective).unwrap();
        assert_eq!(coll.phase, Phase::A);
    }

    #[test]
    fn phase_switch_works_while_disabled() {
        let _g = exclusive();
        disable();
        reset();
        {
            let _a = span_phase(SpanKind::Op, Phase::S1, "former");
            assert_eq!(crate::phase::current_phase(), Phase::S1);
        }
        assert_eq!(crate::phase::current_phase(), Phase::Other);
        assert!(drain().is_empty());
    }

    #[test]
    fn events_from_threads_merge_ordered() {
        let _g = exclusive();
        reset();
        enable();
        std::thread::scope(|s| {
            for r in 0..4 {
                s.spawn(move || {
                    set_rank(r);
                    for _ in 0..10 {
                        let _sp = span(SpanKind::Iter, "work");
                    }
                });
            }
        });
        disable();
        let evs = drain();
        assert_eq!(evs.len(), 40);
        assert!(evs.windows(2).all(|w| w[0].t0_ns <= w[1].t0_ns));
        for r in 0..4 {
            assert_eq!(evs.iter().filter(|e| e.rank == r).count(), 10);
        }
    }
}
