//! Distributed trace collection: codecs, clock alignment, and merging.
//!
//! A multi-process run (one OS process per rank, `agcm-run`) records spans
//! into per-process tracers whose wall clocks share no epoch — each
//! process's [`crate::now_ns`] counts from its own first use.  This module
//! supplies the pieces that turn those per-rank streams into one coherent
//! timeline on rank 0:
//!
//! * **codec** ([`encode_events`] / [`decode_events`],
//!   [`encode_metrics`] / [`decode_metrics`]) — a compact, versioned
//!   binary encoding of a drained event stream and a metrics snapshot.
//!   Event names are deduplicated through a string table and re-interned
//!   on decode (names are `&'static str`; unseen names are leaked once
//!   per distinct name, bounded by the instrumentation-site count);
//! * **word packing** ([`bytes_to_words`] / [`words_to_bytes`]) — the
//!   transport moves `f64` payloads whose bit patterns round-trip exactly
//!   (checksummed frames, NaN-safe), so arbitrary bytes ride in `u64` bit
//!   patterns, length-prefixed;
//! * **clock alignment** ([`ClockSample`], [`estimate_offset`]) — a
//!   Cristian-style offset estimator over ping/pong samples: each round
//!   brackets the server's timestamp between local send and receive; the
//!   minimum-RTT round gives the tightest bracket, and its midpoint the
//!   offset, with error bounded by half that round's RTT;
//! * **merging** ([`merge_events`]) — applies per-rank offsets, rebases
//!   the union to a zero origin and re-sorts, yielding a stream the
//!   existing [`crate::chrome_trace_json`] exporter renders with one
//!   track per rank.

use crate::metrics::{HistogramSummary, MetricsSnapshot};
use crate::phase::Phase;
use crate::tracer::{Event, SpanKind};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Codec magic + version for an encoded event stream.
const EVENTS_MAGIC: &[u8; 8] = b"AGCMTRC1";
/// Codec magic + version for an encoded metrics snapshot.
const METRICS_MAGIC: &[u8; 8] = b"AGCMMET1";

// ---------------------------------------------------------------------------
// bytes <-> f64 words
// ---------------------------------------------------------------------------

/// Pack a byte string into `f64` words for transport payloads: a length
/// word followed by the bytes, 8 per word, little-endian, zero-padded.
///
/// The socket and mpsc transports both move `f64` bit patterns exactly
/// (their tests round-trip NaN payloads), so this is lossless.
pub fn bytes_to_words(bytes: &[u8]) -> Vec<f64> {
    let mut words = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    words.push(f64::from_bits(bytes.len() as u64));
    for chunk in bytes.chunks(8) {
        let mut b = [0u8; 8];
        b[..chunk.len()].copy_from_slice(chunk);
        words.push(f64::from_bits(u64::from_le_bytes(b)));
    }
    words
}

/// Inverse of [`bytes_to_words`].
pub fn words_to_bytes(words: &[f64]) -> Result<Vec<u8>, String> {
    let Some((len_word, data)) = words.split_first() else {
        return Err("word stream empty (missing length word)".to_string());
    };
    let len = len_word.to_bits() as usize;
    if data.len() != len.div_ceil(8) {
        return Err(format!(
            "word stream carries {} data words, want {} for {len} bytes",
            data.len(),
            len.div_ceil(8)
        ));
    }
    let mut out = Vec::with_capacity(len);
    for w in data {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    out.truncate(len);
    Ok(out)
}

// ---------------------------------------------------------------------------
// primitive writers/readers
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .i
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| format!("truncated stream at byte {} (want {n} more)", self.i))?;
        let s = &self.b[self.i..end];
        self.i = end;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| format!("non-utf8 string in stream: {e}"))
    }

    fn done(&self) -> bool {
        self.i == self.b.len()
    }
}

// ---------------------------------------------------------------------------
// enum codes
// ---------------------------------------------------------------------------

fn kind_code(k: SpanKind) -> u8 {
    match k {
        SpanKind::Step => 0,
        SpanKind::Iter => 1,
        SpanKind::Op => 2,
        SpanKind::ExchangePost => 3,
        SpanKind::ExchangeWait => 4,
        SpanKind::OverlapCompute => 5,
        SpanKind::Collective => 6,
        SpanKind::Gauge => 7,
        SpanKind::Recovery => 8,
        SpanKind::Worker => 9,
        SpanKind::Transport => 10,
    }
}

fn kind_from_code(c: u8) -> Result<SpanKind, String> {
    Ok(match c {
        0 => SpanKind::Step,
        1 => SpanKind::Iter,
        2 => SpanKind::Op,
        3 => SpanKind::ExchangePost,
        4 => SpanKind::ExchangeWait,
        5 => SpanKind::OverlapCompute,
        6 => SpanKind::Collective,
        7 => SpanKind::Gauge,
        8 => SpanKind::Recovery,
        9 => SpanKind::Worker,
        10 => SpanKind::Transport,
        _ => return Err(format!("unknown span kind code {c}")),
    })
}

fn phase_code(p: Phase) -> u8 {
    match p {
        Phase::A => 0,
        Phase::C => 1,
        Phase::F => 2,
        Phase::L => 3,
        Phase::S1 => 4,
        Phase::S2 => 5,
        Phase::Other => 6,
    }
}

fn phase_from_code(c: u8) -> Result<Phase, String> {
    Ok(match c {
        0 => Phase::A,
        1 => Phase::C,
        2 => Phase::F,
        3 => Phase::L,
        4 => Phase::S1,
        5 => Phase::S2,
        6 => Phase::Other,
        _ => return Err(format!("unknown phase code {c}")),
    })
}

// ---------------------------------------------------------------------------
// name interning
// ---------------------------------------------------------------------------

/// Intern `name` as a `&'static str`.  Decoded names are almost always
/// instrumentation-site literals already seen by this process; genuinely
/// new names leak once each, bounded by the number of distinct span names
/// in the whole program.
fn intern(name: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let mut t = table.lock().unwrap_or_else(|p| p.into_inner());
    if let Some(s) = t.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    t.insert(name.to_string(), leaked);
    leaked
}

// ---------------------------------------------------------------------------
// event stream codec
// ---------------------------------------------------------------------------

/// Encode a drained event stream into the versioned binary form.
pub fn encode_events(events: &[Event]) -> Vec<u8> {
    let mut names: Vec<&'static str> = Vec::new();
    let mut index: BTreeMap<&'static str, u32> = BTreeMap::new();
    for e in events {
        index.entry(e.name).or_insert_with(|| {
            names.push(e.name);
            (names.len() - 1) as u32
        });
    }
    let mut out = Vec::with_capacity(16 + names.len() * 24 + events.len() * 56);
    out.extend_from_slice(EVENTS_MAGIC);
    put_u32(&mut out, names.len() as u32);
    for n in &names {
        put_str(&mut out, n);
    }
    put_u32(&mut out, events.len() as u32);
    for e in events {
        put_u32(&mut out, e.rank as u32);
        put_u64(&mut out, e.step);
        out.push(kind_code(e.kind));
        out.push(phase_code(e.phase));
        put_u32(&mut out, index[e.name]);
        put_u64(&mut out, e.t0_ns);
        put_u64(&mut out, e.t1_ns);
        put_u64(&mut out, e.seq);
        put_u64(&mut out, e.bytes);
        put_u64(&mut out, e.value.to_bits());
    }
    out
}

/// Decode an event stream encoded by [`encode_events`].
pub fn decode_events(bytes: &[u8]) -> Result<Vec<Event>, String> {
    let mut r = Reader { b: bytes, i: 0 };
    if r.take(8)? != EVENTS_MAGIC {
        return Err("bad event-stream magic".to_string());
    }
    let n_names = r.u32()? as usize;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        names.push(intern(&r.str()?));
    }
    let n_events = r.u32()? as usize;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let rank = r.u32()? as usize;
        let step = r.u64()?;
        let kind = kind_from_code(r.take(1)?[0])?;
        let phase = phase_from_code(r.take(1)?[0])?;
        let ni = r.u32()? as usize;
        let name = *names
            .get(ni)
            .ok_or_else(|| format!("name index {ni} out of range ({n_names} names)"))?;
        let t0_ns = r.u64()?;
        let t1_ns = r.u64()?;
        let seq = r.u64()?;
        let bytes_moved = r.u64()?;
        let value = f64::from_bits(r.u64()?);
        events.push(Event {
            rank,
            step,
            kind,
            phase,
            name,
            t0_ns,
            t1_ns,
            seq,
            bytes: bytes_moved,
            value,
        });
    }
    if !r.done() {
        return Err(format!("trailing bytes after event stream at {}", r.i));
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// metrics snapshot codec
// ---------------------------------------------------------------------------

/// Encode a metrics snapshot into the versioned binary form.
pub fn encode_metrics(snap: &MetricsSnapshot) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(METRICS_MAGIC);
    put_u32(&mut out, snap.counters.len() as u32);
    for (k, v) in &snap.counters {
        put_str(&mut out, k);
        put_u64(&mut out, *v);
    }
    put_u32(&mut out, snap.gauges.len() as u32);
    for (k, v) in &snap.gauges {
        put_str(&mut out, k);
        put_u64(&mut out, v.to_bits());
    }
    put_u32(&mut out, snap.histograms.len() as u32);
    for (k, h) in &snap.histograms {
        put_str(&mut out, k);
        put_u64(&mut out, h.count);
        put_u64(&mut out, h.sum);
        put_u64(&mut out, h.mean.to_bits());
        put_u64(&mut out, h.p50);
        put_u64(&mut out, h.p95);
        put_u64(&mut out, h.p99);
        put_u64(&mut out, h.max);
    }
    out
}

/// Decode a metrics snapshot encoded by [`encode_metrics`].
pub fn decode_metrics(bytes: &[u8]) -> Result<MetricsSnapshot, String> {
    let mut r = Reader { b: bytes, i: 0 };
    if r.take(8)? != METRICS_MAGIC {
        return Err("bad metrics-snapshot magic".to_string());
    }
    let mut snap = MetricsSnapshot::default();
    for _ in 0..r.u32()? {
        let k = r.str()?;
        let v = r.u64()?;
        snap.counters.insert(k, v);
    }
    for _ in 0..r.u32()? {
        let k = r.str()?;
        let v = f64::from_bits(r.u64()?);
        snap.gauges.insert(k, v);
    }
    for _ in 0..r.u32()? {
        let k = r.str()?;
        let h = HistogramSummary {
            count: r.u64()?,
            sum: r.u64()?,
            mean: f64::from_bits(r.u64()?),
            p50: r.u64()?,
            p95: r.u64()?,
            p99: r.u64()?,
            max: r.u64()?,
        };
        snap.histograms.insert(k, h);
    }
    if !r.done() {
        return Err(format!("trailing bytes after metrics snapshot at {}", r.i));
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// clock alignment
// ---------------------------------------------------------------------------

/// One ping/pong round of the clock handshake, all in local trace-epoch
/// nanoseconds except `t_peer_ns`, which is the peer's own clock reading
/// taken between our send and our receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSample {
    /// Local clock when the ping was sent.
    pub t_send_ns: u64,
    /// Peer clock when it handled the ping.
    pub t_peer_ns: u64,
    /// Local clock when the pong arrived.
    pub t_recv_ns: u64,
}

impl ClockSample {
    /// Round-trip time of this sample.
    pub fn rtt_ns(&self) -> u64 {
        self.t_recv_ns.saturating_sub(self.t_send_ns)
    }

    /// Offset estimate of this single sample: `peer_clock - local_clock`
    /// assuming symmetric one-way delays (Cristian's midpoint).
    pub fn offset_ns(&self) -> i64 {
        // midpoint of the local [send, recv] bracket, in i128 to dodge
        // overflow near the u64 range
        let mid = (self.t_send_ns as i128 + self.t_recv_ns as i128) / 2;
        (self.t_peer_ns as i128 - mid) as i64
    }
}

/// The fitted clock relation `peer_clock ≈ local_clock + offset_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetEstimate {
    /// Estimated offset (add to local times to land on the peer clock).
    pub offset_ns: i64,
    /// RTT of the sample the estimate came from — the error bound is half
    /// of this (the true offset lies within ±rtt/2 of the estimate).
    pub rtt_ns: u64,
}

/// Estimate the clock offset to a peer from ping/pong samples.
///
/// Jitter robustness comes from sample selection, not averaging: delayed
/// rounds widen their bracket symmetrically only if the delay is
/// symmetric, so the *minimum-RTT* round — the one least polluted by
/// queueing — is the best single estimator, and its half-RTT bounds the
/// error regardless of how asymmetric the other rounds were.
pub fn estimate_offset(samples: &[ClockSample]) -> Result<OffsetEstimate, String> {
    let best = samples
        .iter()
        .filter(|s| s.t_recv_ns >= s.t_send_ns)
        .min_by_key(|s| s.rtt_ns())
        .ok_or_else(|| "no usable clock samples (all brackets inverted)".to_string())?;
    Ok(OffsetEstimate {
        offset_ns: best.offset_ns(),
        rtt_ns: best.rtt_ns(),
    })
}

// ---------------------------------------------------------------------------
// merging
// ---------------------------------------------------------------------------

/// Merge per-rank event streams into one aligned timeline.
///
/// Each stream carries the offset mapping *its* clock onto the reference
/// (rank 0) clock: `t_ref = t_local + offset_ns`.  The merged stream is
/// rebased so its earliest event starts at 0 and sorted by start time
/// (ties by rank then sequence number), ready for
/// [`crate::chrome_trace_json`].
pub fn merge_events(streams: &[(i64, Vec<Event>)]) -> Vec<Event> {
    let total: usize = streams.iter().map(|(_, evs)| evs.len()).sum();
    let mut aligned: Vec<Event> = Vec::with_capacity(total);
    let mut min_t0 = i128::MAX;
    for (offset, evs) in streams {
        for e in evs {
            min_t0 = min_t0.min(e.t0_ns as i128 + *offset as i128);
        }
    }
    if min_t0 == i128::MAX {
        return aligned;
    }
    for (offset, evs) in streams {
        for e in evs {
            let shift = |t: u64| ((t as i128 + *offset as i128 - min_t0).max(0)) as u64;
            let mut e2 = *e;
            e2.t0_ns = shift(e.t0_ns);
            e2.t1_ns = shift(e.t1_ns).max(e2.t0_ns);
            aligned.push(e2);
        }
    }
    aligned.sort_by_key(|e| (e.t0_ns, e.rank, e.seq));
    aligned
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        rank: usize,
        kind: SpanKind,
        phase: Phase,
        name: &'static str,
        t0: u64,
        t1: u64,
    ) -> Event {
        Event {
            rank,
            step: 2,
            kind,
            phase,
            name,
            t0_ns: t0,
            t1_ns: t1,
            seq: t0,
            bytes: 17,
            value: 0.0,
        }
    }

    #[test]
    fn words_roundtrip_bytes() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let words = bytes_to_words(&bytes);
            assert_eq!(words.len(), 1 + len.div_ceil(8));
            let back = words_to_bytes(&words).expect("roundtrip");
            assert_eq!(back, bytes, "len {len}");
        }
        // NaN-pattern bytes survive (the length word 2047*2^52.. patterns)
        let bytes = vec![0xffu8; 16];
        assert_eq!(words_to_bytes(&bytes_to_words(&bytes)).unwrap(), bytes);
        assert!(words_to_bytes(&[]).is_err());
        assert!(words_to_bytes(&[f64::from_bits(9)]).is_err());
    }

    #[test]
    fn events_roundtrip_all_kinds() {
        let mut evs = Vec::new();
        for (i, kind) in [
            SpanKind::Step,
            SpanKind::Iter,
            SpanKind::Op,
            SpanKind::ExchangePost,
            SpanKind::ExchangeWait,
            SpanKind::OverlapCompute,
            SpanKind::Collective,
            SpanKind::Gauge,
            SpanKind::Recovery,
            SpanKind::Worker,
            SpanKind::Transport,
        ]
        .into_iter()
        .enumerate()
        {
            let mut e = ev(
                i % 4,
                kind,
                Phase::OPERATORS[i % 6],
                "site",
                i as u64,
                i as u64 + 5,
            );
            e.value = if i % 2 == 0 { f64::NAN } else { -1.5e-300 };
            evs.push(e);
        }
        let enc = encode_events(&evs);
        let dec = decode_events(&enc).expect("decode");
        assert_eq!(dec.len(), evs.len());
        for (a, b) in evs.iter().zip(&dec) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.name, b.name);
            assert_eq!(a.t0_ns, b.t0_ns);
            assert_eq!(a.t1_ns, b.t1_ns);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.bytes, b.bytes);
            // NaN-safe value comparison: exact bit patterns
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
        // truncation is rejected, not misread
        assert!(decode_events(&enc[..enc.len() - 1]).is_err());
        assert!(decode_events(b"BADMAGIC").is_err());
    }

    #[test]
    fn events_roundtrip_through_words() {
        let evs = vec![
            ev(0, SpanKind::Op, Phase::A, "adaptation.local", 10, 20),
            ev(1, SpanKind::ExchangeWait, Phase::Other, "halo.wait", 15, 40),
        ];
        let words = bytes_to_words(&encode_events(&evs));
        let dec = decode_events(&words_to_bytes(&words).unwrap()).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[1].name, "halo.wait");
    }

    #[test]
    fn metrics_roundtrip() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("comm.msgs".into(), 42);
        snap.gauges.insert("physics.mass_drift".into(), -3.25e-13);
        snap.histograms.insert(
            "comm.recv_wait_ns".into(),
            HistogramSummary {
                count: 9,
                sum: 900,
                mean: 100.0,
                p50: 96,
                p95: 180,
                p99: 200,
                max: 230,
            },
        );
        let back = decode_metrics(&encode_metrics(&snap)).expect("decode");
        assert_eq!(back.counters["comm.msgs"], 42);
        assert_eq!(back.gauges["physics.mass_drift"], -3.25e-13);
        let h = back.histograms["comm.recv_wait_ns"];
        assert_eq!(h.count, 9);
        assert_eq!(h.p95, 180);
        assert_eq!(h.max, 230);
    }

    #[test]
    fn offset_estimate_recovers_skew_under_jitter() {
        // peer clock runs 5 ms ahead; one-way delays vary 10..500 us with
        // asymmetric queueing on most rounds, but one clean round exists
        let skew: i64 = 5_000_000;
        let mut samples = Vec::new();
        let delays = [
            (400_000u64, 90_000u64),
            (10_000, 12_000), // the clean round
            (250_000, 480_000),
            (500_000, 30_000),
        ];
        let mut t = 1_000_000u64;
        for (d1, d2) in delays {
            let t_send = t;
            let t_peer = (t_send + d1) as i64 + skew;
            let t_recv = t_send + d1 + d2;
            samples.push(ClockSample {
                t_send_ns: t_send,
                t_peer_ns: t_peer as u64,
                t_recv_ns: t_recv,
            });
            t += 1_000_000;
        }
        let est = estimate_offset(&samples).expect("estimate");
        // the clean round's rtt is 22 us: error bound 11 us
        assert_eq!(est.rtt_ns, 22_000);
        assert!(
            (est.offset_ns - skew).abs() <= est.rtt_ns as i64 / 2,
            "offset {} vs true {skew} (bound {})",
            est.offset_ns,
            est.rtt_ns / 2
        );
        // and the error bound is honest even for the noisy rounds alone
        for s in &samples {
            assert!((s.offset_ns() - skew).abs() <= s.rtt_ns() as i64 / 2);
        }
    }

    #[test]
    fn offset_estimate_negative_skew() {
        // peer clock is *behind* by more than the peer's own reading —
        // offsets must go negative without wrapping
        let s = ClockSample {
            t_send_ns: 10_000_000,
            t_peer_ns: 1_000,
            t_recv_ns: 10_020_000,
        };
        let est = estimate_offset(&[s]).unwrap();
        assert!(est.offset_ns < -9_900_000, "offset {}", est.offset_ns);
        assert!(estimate_offset(&[]).is_err());
    }

    #[test]
    fn merge_aligns_rebases_and_sorts() {
        // rank 0 epoch is the reference; rank 1's clock started 1000 ns
        // later, so its local times are 1000 smaller: offset +1000
        let r0 = vec![
            ev(0, SpanKind::Op, Phase::A, "a", 2_000, 2_500),
            ev(0, SpanKind::Op, Phase::C, "c", 3_000, 3_400),
        ];
        let r1 = vec![ev(1, SpanKind::Op, Phase::A, "a", 1_500, 1_900)];
        let merged = merge_events(&[(0, r0), (1_000, r1)]);
        assert_eq!(merged.len(), 3);
        // rank 1's event lands at reference 2500..2900; origin rebased to
        // the earliest aligned time (2000) -> 500..900
        assert_eq!(merged[0].rank, 0);
        assert_eq!(merged[0].t0_ns, 0);
        assert_eq!(merged[1].rank, 1);
        assert_eq!(merged[1].t0_ns, 500);
        assert_eq!(merged[1].t1_ns, 900);
        assert!(merged.windows(2).all(|w| w[0].t0_ns <= w[1].t0_ns));
        assert!(merge_events(&[]).is_empty());
    }

    #[test]
    fn merge_clamps_pre_origin_events() {
        // an event that aligns before the rebased origin clamps to 0
        // rather than wrapping around u64
        let r0 = vec![ev(0, SpanKind::Op, Phase::A, "a", 5_000, 6_000)];
        let r1 = vec![ev(1, SpanKind::Op, Phase::A, "a", 100, 140)];
        let merged = merge_events(&[(0, r0), (-1_000_000, r1)]);
        assert_eq!(merged[0].rank, 1);
        assert_eq!(merged[0].t0_ns, 0);
        assert!(merged[1].t0_ns > 0);
    }
}
